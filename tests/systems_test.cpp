// Integration tests across the whole stack: the AggregationService batch
// flow (reuse across rounds, eager vs lazy, stale-straggler hygiene),
// end-to-end TrainingExperiment runs for every system preset, failure
// injection through the selector, determinism, and real-payload
// hierarchical aggregation of a convolutional model.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/fl/fedavg.hpp"
#include "src/ml/conv.hpp"
#include "src/ml/tensor_pool.hpp"
#include "src/systems/aggregation_service.hpp"
#include "src/systems/system_config.hpp"
#include "src/systems/training_experiment.hpp"

namespace lifl::sys {
namespace {

TrainingConfig small_run(std::size_t rounds = 3) {
  TrainingConfig cfg;
  cfg.model = fl::models::resnet18();
  cfg.cluster_nodes = 3;
  cfg.population = 200;
  cfg.active_per_round = 24;
  cfg.mobile_clients = true;
  cfg.base_train_secs = 10.0;
  cfg.curve = ml::AccuracyModel::resnet18_femnist();
  cfg.max_rounds = rounds;
  cfg.max_hours = 2.0;
  return cfg;
}

struct BatchWorld {
  sim::Simulator sim;
  sim::Cluster cluster;
  dp::DataPlane plane;
  AggregationService service;

  explicit BatchWorld(SystemConfig cfg, std::size_t nodes = 3)
      : cluster(sim, nodes),
        plane(cluster, cfg.plane, sim::Rng(31)),
        service(cluster, plane, cfg) {}

  /// Seeds `n` updates per placement and runs one batch to completion.
  AggregationService::BatchResult run_batch(std::uint32_t n,
                                            std::uint32_t version,
                                            std::size_t bytes) {
    const auto assignment = service.place_updates(n);
    std::vector<std::uint32_t> counts(cluster.size(), 0);
    for (auto node : assignment) counts[node]++;
    for (std::uint32_t i = 0; i < n; ++i) {
      fl::ModelUpdate u;
      u.model_version = version;
      u.producer = 9000 + i;
      u.sample_count = 100;
      u.logical_bytes = bytes;
      plane.seed_update(assignment[i], std::move(u));
    }
    AggregationService::BatchResult result;
    bool done = false;
    service.arm(counts, version, bytes,
                [&](const AggregationService::BatchResult& b) {
                  result = b;
                  done = true;
                });
    sim.run();
    EXPECT_TRUE(done);
    service.finish_batch();
    return result;
  }
};

TEST(AggregationServiceIntegration, GlobalUpdateAggregatesEverything) {
  BatchWorld w(make_lifl());
  const auto r = w.run_batch(24, 1, fl::models::resnet18().bytes());
  EXPECT_EQ(r.updates, 24u);
  EXPECT_EQ(r.global_update.updates_folded, 24u);
  EXPECT_EQ(r.global_update.sample_count, 24u * 100u);
  EXPECT_GT(r.act(), 0.0);
}

TEST(AggregationServiceIntegration, SecondRoundReusesWarmInstances) {
  BatchWorld w(make_lifl());
  const auto r1 = w.run_batch(24, 1, fl::models::resnet18().bytes());
  EXPECT_GT(r1.created, 0u);
  const auto r2 = w.run_batch(24, 2, fl::models::resnet18().bytes());
  // §5.3: the warm pool serves round 2 almost entirely (placement may move
  // a few updates to a node whose pool is short, costing a stray start).
  EXPECT_LT(r2.created, r1.created / 4);
  EXPECT_GT(r2.reused, r1.reused);
}

TEST(AggregationServiceIntegration, ServerlessScalesToZeroBetweenRounds) {
  BatchWorld w(make_serverless());
  w.run_batch(24, 1, fl::models::resnet18().bytes());
  EXPECT_EQ(w.service.live_instances(), 0u);
  EXPECT_EQ(w.service.warm_instances(), 0u);  // terminated, not parked
  const auto r2 = w.run_batch(24, 2, fl::models::resnet18().bytes());
  EXPECT_GT(r2.created, 0u);  // every round cold-starts again
}

TEST(AggregationServiceIntegration, EagerCompletesFasterThanLazy) {
  // Same batch, same plane; lazy defers all processing behind the last
  // arrival while eager overlaps it (§5.4).
  auto run = [&](bool eager) {
    SystemConfig cfg = make_lifl();
    cfg.timing = eager ? fl::AggTiming::kEager : fl::AggTiming::kLazy;
    BatchWorld w(cfg);
    // Spread the arrivals so overlap matters.
    const std::uint32_t n = 12;
    const auto assignment = w.service.place_updates(n);
    std::vector<std::uint32_t> counts(w.cluster.size(), 0);
    for (auto node : assignment) counts[node]++;
    double act = -1;
    w.service.arm(counts, 1, fl::models::resnet152().bytes(),
                  [&](const AggregationService::BatchResult& b) {
                    act = b.act();
                  });
    for (std::uint32_t i = 0; i < n; ++i) {
      w.sim.schedule_after(2.0 * i, [&w, &assignment, i] {
        fl::ModelUpdate u;
        u.model_version = 1;
        u.producer = 9000 + i;
        u.sample_count = 100;
        u.logical_bytes = fl::models::resnet152().bytes();
        w.plane.seed_update(assignment[i], std::move(u));
      });
    }
    w.sim.run();
    EXPECT_GE(act, 0.0);
    return act;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(AggregationServiceIntegration, StaleStragglersAreDroppedNextRound) {
  BatchWorld w(make_lifl());
  w.run_batch(8, 1, fl::models::resnet18().bytes());
  // A round-1 straggler lands after the round closed...
  fl::ModelUpdate stale;
  stale.model_version = 1;
  stale.producer = 777;
  stale.sample_count = 50;
  stale.logical_bytes = fl::models::resnet18().bytes();
  w.plane.seed_update(0, std::move(stale));
  // ...round 2 still aggregates exactly its own 8 updates.
  const auto r2 = w.run_batch(8, 2, fl::models::resnet18().bytes());
  EXPECT_EQ(r2.global_update.updates_folded, 8u);
  EXPECT_EQ(r2.global_update.sample_count, 8u * 100u);
}

TEST(AggregationServiceIntegration, RealPayloadConvParamsAggregateExactly) {
  // Real tensors through the full platform: the hierarchical aggregate of
  // TinyResNet parameter vectors equals the flat weighted mean.
  ml::TinyResNet::Config ncfg;
  ncfg.height = 4;
  ncfg.width = 4;
  ncfg.filters = 2;
  ncfg.blocks = 1;
  ncfg.num_classes = 3;

  SystemConfig cfg = make_lifl();
  cfg.plane = dp::lifl_plane(/*real_payloads=*/true);
  BatchWorld w(cfg);

  const std::uint32_t n = 9;
  std::vector<std::shared_ptr<const ml::Tensor>> params;
  std::vector<std::uint64_t> weights;
  sim::Rng rng(17);
  for (std::uint32_t i = 0; i < n; ++i) {
    ml::TinyResNet net(ncfg);
    net.init(rng);
    params.push_back(std::make_shared<const ml::Tensor>(net.params()));
    weights.push_back(50 + 25 * i);
  }

  const auto assignment = w.service.place_updates(n);
  std::vector<std::uint32_t> counts(w.cluster.size(), 0);
  for (auto node : assignment) counts[node]++;
  for (std::uint32_t i = 0; i < n; ++i) {
    fl::ModelUpdate u;
    u.model_version = 1;
    u.producer = 100 + i;
    u.sample_count = weights[i];
    u.logical_bytes = params[i]->bytes();
    u.tensor = params[i];
    w.plane.seed_update(assignment[i], std::move(u));
  }
  fl::ModelUpdate global;
  w.service.arm(counts, 1, params[0]->bytes(),
                [&](const AggregationService::BatchResult& b) {
                  global = b.global_update;
                });
  w.sim.run();

  ASSERT_TRUE(global.tensor);
  std::vector<std::pair<const ml::Tensor*, std::uint64_t>> ref;
  for (std::uint32_t i = 0; i < n; ++i) {
    ref.emplace_back(params[i].get(), weights[i]);
  }
  const ml::Tensor expected = fl::FedAvgAccumulator::batch_average(ref);
  ASSERT_EQ(global.tensor->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); i += 7) {
    EXPECT_NEAR((*global.tensor)[i], expected[i], 1e-4f);
  }
}

TEST(AggregationServiceIntegration, SteadyStateRealPayloadRoundsAreZeroAlloc) {
  // The kernels-refactor acceptance property at the SERVICE level: after
  // round 1 has populated the tensor pool, every later round's fold path
  // (leaf/middle/top accumulator sums, finalized aggregates) is served
  // entirely from recycled buffers — BatchResult::tensor_allocs == 0.
  SystemConfig cfg = make_lifl();
  cfg.plane = dp::lifl_plane(/*real_payloads=*/true);
  BatchWorld w(cfg);

  constexpr std::uint32_t kUpdates = 9;
  constexpr std::size_t kDim = 2048;
  sim::Rng rng(23);
  auto& pool = ml::TensorPool::global();

  for (std::uint32_t round = 1; round <= 4; ++round) {
    const auto assignment = w.service.place_updates(kUpdates);
    std::vector<std::uint32_t> counts(w.cluster.size(), 0);
    for (auto node : assignment) counts[node]++;
    // Client updates drawn from the pool (as local_train produces them).
    for (std::uint32_t i = 0; i < kUpdates; ++i) {
      auto params = pool.acquire(kDim);
      for (std::size_t j = 0; j < kDim; ++j) {
        (*params)[j] = static_cast<float>(rng.normal(0.0, 1.0));
      }
      fl::ModelUpdate u;
      u.model_version = round;
      u.producer = 100 + i;
      u.sample_count = 60 + i;
      u.logical_bytes = params->bytes();
      u.tensor = std::move(params);
      w.plane.seed_update(assignment[i], std::move(u));
    }
    AggregationService::BatchResult result;
    bool done = false;
    w.service.arm(counts, round, kDim * sizeof(float),
                  [&](const AggregationService::BatchResult& b) {
                    result = b;
                    done = true;
                  });
    w.sim.run();
    ASSERT_TRUE(done) << "round " << round;
    ASSERT_TRUE(result.global_update.tensor);
    w.service.finish_batch();
    if (round >= 2) {
      EXPECT_EQ(result.tensor_allocs, 0u)
          << "round " << round << " fold path heap-allocated a tensor";
      EXPECT_GT(result.tensor_pool_hits, 0u) << "round " << round;
    }
  }
}

TEST(AggregationServiceIntegration, HeterogeneousCapacityIsRespected) {
  // Footnote 6: "With heterogeneous nodes, MC_i may vary." BestFit closes
  // the tight bins first (classic tightest-fit), concentrates the bulk on
  // the big node, and no node exceeds its own MC_i.
  SystemConfig cfg = make_lifl();
  cfg.node_capacities = {30.0, 4.0, 4.0};
  BatchWorld w(cfg);
  const auto assignment = w.service.place_updates(30);
  std::vector<std::uint32_t> counts(3, 0);
  for (auto node : assignment) counts[node]++;
  EXPECT_LE(counts[1], 4u);
  EXPECT_LE(counts[2], 4u);
  EXPECT_EQ(counts[0], 30u - counts[1] - counts[2]);
  EXPECT_GE(counts[0], 22u);  // the big node carries the bulk
}

TEST(AggregationServiceIntegration, HeterogeneousOverflowAggregatesFine) {
  SystemConfig cfg = make_lifl();
  cfg.node_capacities = {20.0, 6.0, 6.0};
  BatchWorld w(cfg);
  const auto assignment = w.service.place_updates(30);
  std::vector<std::uint32_t> counts(3, 0);
  for (auto node : assignment) counts[node]++;
  EXPECT_LE(counts[0], 20u);  // nobody exceeds its MC_i
  EXPECT_LE(counts[1], 6u);
  EXPECT_LE(counts[2], 6u);
  // And the batch still aggregates end to end on the skewed layout.
  for (std::uint32_t i = 0; i < 30; ++i) {
    fl::ModelUpdate u;
    u.model_version = 1;
    u.producer = 9000 + i;
    u.sample_count = 100;
    u.logical_bytes = fl::models::resnet18().bytes();
    w.plane.seed_update(assignment[i], std::move(u));
  }
  std::vector<std::uint32_t> armed(counts.begin(), counts.end());
  bool done = false;
  w.service.arm(armed, 1, fl::models::resnet18().bytes(),
                [&](const AggregationService::BatchResult& b) {
                  EXPECT_EQ(b.global_update.updates_folded, 30u);
                  done = true;
                });
  w.sim.run();
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------- end to end

TEST(TrainingExperimentIntegration, CompletesRoundsOnEverySystem) {
  for (const auto& system :
       {make_serverful(), make_serverless(), make_lifl(), make_sl_h()}) {
    TrainingExperiment exp(system, small_run());
    const auto r = exp.run();
    ASSERT_EQ(r.rounds.size(), 3u) << r.system;
    EXPECT_GT(r.rounds.back().accuracy, r.rounds.front().accuracy * 0.9);
    EXPECT_GT(r.cpu_hours_total, 0.0);
    for (std::size_t i = 1; i < r.rounds.size(); ++i) {
      EXPECT_GT(r.rounds[i].completed_at, r.rounds[i - 1].completed_at);
    }
  }
}

TEST(TrainingExperimentIntegration, LiflCheaperAndNoSlowerThanServerless) {
  TrainingExperiment lifl(make_lifl(), small_run(4));
  TrainingExperiment sl(make_serverless(), small_run(4));
  const auto rl = lifl.run();
  const auto rs = sl.run();
  EXPECT_LT(rl.cpu_hours_total, rs.cpu_hours_total * 0.7);
  EXPECT_LE(rl.wall_secs, rs.wall_secs);
}

TEST(TrainingExperimentIntegration, DeterministicUnderSameSeed) {
  TrainingExperiment a(make_lifl(), small_run());
  TrainingExperiment b(make_lifl(), small_run());
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t i = 0; i < ra.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.rounds[i].completed_at, rb.rounds[i].completed_at);
    EXPECT_DOUBLE_EQ(ra.rounds[i].cpu_secs, rb.rounds[i].cpu_secs);
  }
}

TEST(TrainingExperimentIntegration, SeedChangesTheRun) {
  auto cfg = small_run();
  TrainingExperiment a(make_lifl(), cfg);
  cfg.seed = 1234;
  TrainingExperiment b(make_lifl(), cfg);
  EXPECT_NE(a.run().rounds.back().completed_at,
            b.run().rounds.back().completed_at);
}

TEST(TrainingExperimentIntegration, InjectedDropoutsAreDetectedAndSurvived) {
  auto cfg = small_run();
  cfg.dropout_rate = 0.25;
  // A 5 s detection window is small against U[0,60] s hibernation noise, so
  // "dropouts slow the round" would hinge on the seed; 30 s makes every
  // replacement land safely after the healthy stragglers.
  cfg.heartbeat_timeout_secs = 30.0;
  TrainingExperiment exp(make_lifl(), cfg);
  const auto r = exp.run();
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_GT(r.failures_detected, 0u);
  // Replacement clients cost detection + a fresh local round: rounds get
  // slower, but every round still completes with the full update count.
  TrainingExperiment clean(make_lifl(), small_run());
  EXPECT_GT(r.wall_secs, clean.run().wall_secs);
}

TEST(TrainingExperimentIntegration, TargetAccuracyCrossingIsRecorded) {
  auto cfg = small_run(40);
  cfg.target_accuracy = 0.30;  // reachable within 40 rounds
  TrainingExperiment exp(make_lifl(), cfg);
  const auto r = exp.run();
  ASSERT_GT(r.secs_to_target, 0.0);
  ASSERT_GT(r.cpu_hours_to_target, 0.0);
  EXPECT_LT(r.secs_to_target, r.wall_secs + 1e-9);
}

}  // namespace
}  // namespace lifl::sys
