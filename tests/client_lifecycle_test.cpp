// Edge-client lifecycle: the firmware-grade state machine, the
// deterministic LifecyclePlan schedule, and chunk-wise resumable uploads.
// The load-bearing claims are lossless resume (every disconnect point
// re-sends its partial chunk and delivers the full update exactly once)
// and FaultPlan-grade determinism (pure functions of seed + identifiers).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/dataplane/dataplane.hpp"
#include "src/dataplane/resumable_upload.hpp"
#include "src/workload/device_tier.hpp"
#include "src/workload/lifecycle.hpp"

namespace lifl {
namespace {

using wl::ClientEvent;
using wl::ClientState;

// ----------------------------------------------------- transition table

TEST(ClientStateMachine, HappyPathWalksIdleToDone) {
  ClientState s = ClientState::kIdle;
  s = wl::client_transition(s, ClientEvent::kSelected);
  EXPECT_EQ(s, ClientState::kTraining);
  s = wl::client_transition(s, ClientEvent::kTrained);
  EXPECT_EQ(s, ClientState::kUploading);
  s = wl::client_transition(s, ClientEvent::kChunkAcked);
  EXPECT_EQ(s, ClientState::kUploading);
  s = wl::client_transition(s, ClientEvent::kComplete);
  EXPECT_EQ(s, ClientState::kDone);
}

TEST(ClientStateMachine, DisconnectResumeCycle) {
  ClientState s = ClientState::kUploading;
  s = wl::client_transition(s, ClientEvent::kDisconnect);
  EXPECT_EQ(s, ClientState::kOffline);
  s = wl::client_transition(s, ClientEvent::kReconnect);
  EXPECT_EQ(s, ClientState::kResuming);
  // The resumed session can ack, die again, or complete.
  EXPECT_EQ(wl::client_transition(s, ClientEvent::kChunkAcked),
            ClientState::kUploading);
  EXPECT_EQ(wl::client_transition(s, ClientEvent::kDisconnect),
            ClientState::kOffline);
  EXPECT_EQ(wl::client_transition(s, ClientEvent::kComplete),
            ClientState::kDone);
}

TEST(ClientStateMachine, ForbiddenPairsAreInvalid) {
  // kDone is terminal; no event leaves it.
  for (int e = 0; e < static_cast<int>(ClientEvent::kCount); ++e) {
    EXPECT_EQ(wl::client_transition(ClientState::kDone,
                                    static_cast<ClientEvent>(e)),
              ClientState::kCount);
  }
  // An offline client cannot ack, train, or complete — only reconnect.
  EXPECT_EQ(wl::client_transition(ClientState::kOffline,
                                  ClientEvent::kChunkAcked),
            ClientState::kCount);
  EXPECT_EQ(wl::client_transition(ClientState::kOffline,
                                  ClientEvent::kComplete),
            ClientState::kCount);
  // Selection is only valid from idle.
  EXPECT_EQ(wl::client_transition(ClientState::kUploading,
                                  ClientEvent::kSelected),
            ClientState::kCount);
  // Out-of-range inputs degrade to invalid, never UB.
  EXPECT_EQ(wl::client_transition(ClientState::kCount, ClientEvent::kTrained),
            ClientState::kCount);
  EXPECT_EQ(wl::client_transition(ClientState::kIdle, ClientEvent::kCount),
            ClientState::kCount);
}

TEST(ClientStateMachine, EveryValidTransitionTargetsARealState) {
  for (int s = 0; s < static_cast<int>(ClientState::kCount); ++s) {
    for (int e = 0; e < static_cast<int>(ClientEvent::kCount); ++e) {
      const ClientState next = wl::client_transition(
          static_cast<ClientState>(s), static_cast<ClientEvent>(e));
      EXPECT_LE(static_cast<int>(next), static_cast<int>(ClientState::kCount));
    }
  }
}

// -------------------------------------------------------- LifecyclePlan

wl::LifecyclePlan flaky_plan(double rate, std::uint64_t seed = 99) {
  wl::LifecyclePlan::Config cfg;
  cfg.seed = seed;
  cfg.disconnect_rate = rate;
  return wl::LifecyclePlan(cfg);
}

TEST(LifecyclePlan, DrawsAreDeterministic) {
  const auto plan = flaky_plan(0.5);
  const auto same = flaky_plan(0.5);
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    EXPECT_EQ(plan.disconnect_chunk(3, seq, 0, 8, 1.0),
              same.disconnect_chunk(3, seq, 0, 8, 1.0));
    EXPECT_EQ(plan.offline_secs(3, seq, 1), same.offline_secs(3, seq, 1));
    EXPECT_EQ(plan.partial_fraction(3, seq, 0),
              same.partial_fraction(3, seq, 0));
  }
  // A different seed reshuffles the schedule.
  const auto other = flaky_plan(0.5, /*seed=*/100);
  int diffs = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    diffs += plan.disconnect_chunk(1, seq, 0, 8, 1.0) !=
             other.disconnect_chunk(1, seq, 0, 8, 1.0);
  }
  EXPECT_GT(diffs, 0);
}

TEST(LifecyclePlan, ZeroRateNeverDisconnects) {
  const auto plan = flaky_plan(0.0);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_EQ(plan.disconnect_chunk(0, seq, 0, 16, 2.5), 0u);
  }
}

TEST(LifecyclePlan, DisconnectChunkStaysInRange) {
  const auto plan = flaky_plan(0.9);
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    for (std::uint64_t left : {1ull, 4ull, 16ull}) {
      const std::uint32_t k = plan.disconnect_chunk(2, seq, 0, left, 1.0);
      EXPECT_LE(k, left) << "seq " << seq;
    }
  }
}

TEST(LifecyclePlan, TierScaleRaisesDisconnectOdds) {
  const auto plan = flaky_plan(0.2);
  int iot = 0, flagship = 0;
  const double iot_scale =
      wl::tier_traits(wl::DeviceTier::kIoT).disconnect_scale;
  const double fl_scale =
      wl::tier_traits(wl::DeviceTier::kFlagship).disconnect_scale;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    iot += plan.disconnect_chunk(0, seq, 0, 8, iot_scale) != 0;
    flagship += plan.disconnect_chunk(0, seq, 0, 8, fl_scale) != 0;
  }
  EXPECT_GT(iot, flagship * 2);  // 2.5x vs 0.25x nominal rate
}

TEST(LifecyclePlan, OfflineBackoffIsCappedAndGrows) {
  const auto plan = flaky_plan(0.5);
  const auto& cfg = plan.config();
  double prev = 0.0;
  for (std::uint64_t attempt = 0; attempt < 12; ++attempt) {
    const double d = plan.offline_secs(1, 7, attempt);
    EXPECT_GE(d, cfg.offline_base_secs);
    EXPECT_LE(d, cfg.offline_cap_secs * (1.0 + cfg.offline_jitter));
    if (attempt >= 1 && attempt <= 5) EXPECT_GT(d, prev * 1.2);  // doubling
    prev = d;
  }
}

TEST(LifecyclePlan, GateDelayIsIdempotentAtItsOwnTarget) {
  wl::LifecyclePlan::Config cfg;
  cfg.seed = 5;
  cfg.session_gates = true;
  cfg.connect_period_secs = 60.0;
  cfg.charge_period_secs = 240.0;
  const wl::LifecyclePlan plan(cfg);
  for (std::uint64_t client = 0; client < 64; ++client) {
    const double now = 13.0 * static_cast<double>(client);
    const double d =
        plan.gate_delay(0, client, wl::DeviceTier::kIoT, now);
    EXPECT_GE(d, 0.0);
    // Once the gate opens it is open: re-asking at the target waits 0.
    EXPECT_NEAR(plan.gate_delay(0, client, wl::DeviceTier::kIoT, now + d),
                0.0, 1e-9)
        << "client " << client;
  }
}

TEST(LifecyclePlan, AlwaysOnTiersNeverWait) {
  wl::LifecyclePlan::Config cfg;
  cfg.session_gates = true;
  const wl::LifecyclePlan plan(cfg);
  // Flagship charge_frac is 1.0 and online_frac 0.98: waits are rare and
  // bounded by one connect period.
  for (std::uint64_t client = 0; client < 32; ++client) {
    EXPECT_LE(plan.gate_delay(0, client, wl::DeviceTier::kFlagship, 100.0),
              cfg.connect_period_secs);
  }
}

// ---------------------------------------------------- resumable uploads

struct UploadWorld {
  sim::Simulator sim;
  sim::Cluster cluster;
  dp::DataPlane plane;

  UploadWorld()
      : cluster(sim, 1), plane(cluster, dp::lifl_plane(), sim::Rng(7)) {}
};

fl::ModelUpdate client_update(std::uint64_t producer, std::size_t bytes,
                              std::uint64_t samples) {
  fl::ModelUpdate u;
  u.producer = producer;
  u.sample_count = samples;
  u.logical_bytes = bytes;
  u.from_client = true;
  return u;
}

/// Drive `n` sessions through one plan and return the counters; every
/// session must deposit its full update exactly once no matter where the
/// plan cuts it.
dp::ResumableUpload::Counters drive_sessions(double rate, std::size_t n,
                                             std::size_t bytes,
                                             std::uint64_t* pool_samples,
                                             std::uint64_t* pool_depth) {
  UploadWorld w;
  wl::LifecyclePlan::Config pcfg;
  pcfg.seed = 1234;
  pcfg.disconnect_rate = rate;
  pcfg.chunk_bytes = 10'000;
  pcfg.offline_base_secs = 0.01;
  pcfg.offline_cap_secs = 0.2;
  const wl::LifecyclePlan plan(pcfg);

  dp::ResumableUpload::Counters counters;
  for (std::size_t i = 0; i < n; ++i) {
    dp::ResumableUpload::Config rc;
    rc.node = 0;
    rc.uplink_bytes_per_sec = 1e6;
    rc.plan = &plan;
    rc.group = 0;
    rc.seq = i;
    rc.rate_scale = 1.0;
    rc.counters = &counters;
    dp::ResumableUpload::launch(w.plane, client_update(100 + i, bytes, 50),
                                std::move(rc));
  }
  w.sim.run();
  // No consumer was attached: every deposited update is still buffered, so
  // the pool depth counts deliveries and draining it sums the samples.
  auto& env = w.plane.env(0);
  if (pool_depth != nullptr) *pool_depth = env.pool.depth();
  if (pool_samples != nullptr) {
    std::uint64_t samples = 0;
    fl::ModelUpdate u;
    while (env.pool.try_pop(u)) samples += u.sample_count;
    *pool_samples = samples;
  }
  return counters;
}

TEST(ResumableUpload, CleanSessionDeliversEveryChunkOnce) {
  std::uint64_t samples = 0, depth = 0;
  const auto c = drive_sessions(0.0, 8, 95'000, &samples, &depth);
  EXPECT_EQ(c.sessions, 8u);
  EXPECT_EQ(c.completed, 8u);
  EXPECT_EQ(c.disconnects, 0u);
  EXPECT_EQ(c.resumes, 0u);
  EXPECT_EQ(c.chunks_sent, 8u * 10u);  // ceil(95k / 10k) = 10 chunks each
  EXPECT_EQ(c.chunks_resent, 0u);
  EXPECT_EQ(depth, 8u);
  EXPECT_EQ(samples, 8u * 50u);
}

TEST(ResumableUpload, EveryDisconnectPointResumesLosslessly) {
  // A 90% per-attempt disconnect rate over 200 sessions cuts sessions at
  // essentially every chunk position, repeatedly. Lossless resume means:
  // each session still completes, the unique-chunk count is exact, and
  // each update's samples land in the pool exactly once.
  std::uint64_t samples = 0, depth = 0;
  const auto c = drive_sessions(0.9, 200, 95'000, &samples, &depth);
  EXPECT_EQ(c.completed, 200u);
  EXPECT_GT(c.disconnects, 100u);              // the schedule really fired
  EXPECT_EQ(c.resumes, c.disconnects);         // every drop reconnected
  EXPECT_GT(c.chunks_resent, 0u);              // partial chunks re-sent
  // Every chunk is acked exactly once — a dying transmission never acks,
  // and its re-send (counted in chunks_resent) delivers it once. The
  // partial transmission is billed as wire time, never as a second ack.
  EXPECT_EQ(c.chunks_sent, 200u * 10u);
  EXPECT_LE(c.chunks_resent, c.disconnects);
  EXPECT_EQ(depth, 200u);
  EXPECT_EQ(samples, 200u * 50u);
}

TEST(ResumableUpload, DisconnectsAreBitwiseRepeatable) {
  std::uint64_t s1 = 0, s2 = 0, d1 = 0, d2 = 0;
  const auto a = drive_sessions(0.5, 64, 45'000, &s1, &d1);
  const auto b = drive_sessions(0.5, 64, 45'000, &s2, &d2);
  EXPECT_EQ(a.disconnects, b.disconnects);
  EXPECT_EQ(a.chunks_sent, b.chunks_sent);
  EXPECT_EQ(a.chunks_resent, b.chunks_resent);
  EXPECT_EQ(s1, s2);
}

TEST(ResumableUpload, TinyUpdateIsASingleChunk) {
  std::uint64_t samples = 0, depth = 0;
  const auto c = drive_sessions(0.0, 1, 500, &samples, &depth);
  EXPECT_EQ(c.chunks_sent, 1u);
  EXPECT_EQ(samples, 50u);
}

TEST(ResumableUpload, RequiresAPlan) {
  UploadWorld w;
  dp::ResumableUpload::Config rc;
  rc.plan = nullptr;
  EXPECT_THROW(dp::ResumableUpload::launch(
                   w.plane, client_update(1, 1000, 1), std::move(rc)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lifl
