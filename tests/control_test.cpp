// Unit tests for the control plane: EWMA, placement engine, hierarchy
// planner, metrics server and the TAG abstraction.

#include <gtest/gtest.h>

#include <numeric>

#include "src/control/ewma.hpp"
#include "src/control/hierarchy.hpp"
#include "src/control/metrics_server.hpp"
#include "src/control/placement.hpp"
#include "src/control/tag.hpp"

namespace lifl::ctrl {
namespace {

// ----------------------------------------------------------------- EWMA
TEST(Ewma, FirstObservationInitializes) {
  Ewma e(0.7);
  EXPECT_DOUBLE_EQ(e.observe(10.0), 10.0);
}

TEST(Ewma, PaperFormula) {
  // Q_t = alpha*Q_{t-1} + (1-alpha)*q_t with alpha = 0.7 (§5.2).
  Ewma e(0.7);
  e.observe(10.0);
  EXPECT_NEAR(e.observe(20.0), 0.7 * 10.0 + 0.3 * 20.0, 1e-12);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.7);
  for (int i = 0; i < 200; ++i) e.observe(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, SmoothsSpikes) {
  // A one-sample spike must move the estimate by only (1-alpha) of itself —
  // the §5.2 protection against short-term over-allocation.
  Ewma e(0.7);
  for (int i = 0; i < 50; ++i) e.observe(10.0);
  e.observe(110.0);
  EXPECT_NEAR(e.value(), 10.0 + 0.3 * 100.0, 1e-9);
}

TEST(Ewma, AlphaOneIgnoresNewSamples) {
  Ewma e(1.0);
  e.observe(5.0);
  e.observe(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, AlphaZeroTracksExactly) {
  Ewma e(0.0);
  e.observe(5.0);
  e.observe(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW(Ewma(-0.1), std::invalid_argument);
  EXPECT_THROW(Ewma(1.1), std::invalid_argument);
}

TEST(Ewma, ResetForgets) {
  Ewma e(0.7);
  e.observe(10.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.observe(3.0), 3.0);
}

// ------------------------------------------------------------- placement
std::vector<NodeCapacity> uniform_nodes(std::size_t n, double mc) {
  std::vector<NodeCapacity> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].node = static_cast<sim::NodeId>(i);
    nodes[i].max_capacity = mc;
  }
  return nodes;
}

TEST(Placement, ResidualCapacityFormula) {
  NodeCapacity c{0, 20.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(c.load(), 8.0);     // k*E
  EXPECT_DOUBLE_EQ(c.residual(), 12.0);  // MC - k*E (§5.1)
}

TEST(Placement, BestFitPacksOntoFewestNodes) {
  // The Fig. 8(d) anchor: MC=20, 5 nodes; 20/60/100 updates need 1/3/5.
  PlacementEngine best(PlacementPolicy::kBestFit);
  for (const auto& [updates, expect_nodes] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {20, 1}, {60, 3}, {100, 5}}) {
    const auto r = best.place_units(updates, uniform_nodes(5, 20.0));
    EXPECT_EQ(r.nodes_used, expect_nodes) << updates << " updates";
    EXPECT_EQ(r.overflow, 0u);
  }
}

TEST(Placement, WorstFitSpreadsAcrossAllNodes) {
  // Knative's least-connection behavior: SL-H uses all 5 nodes regardless.
  PlacementEngine worst(PlacementPolicy::kWorstFit);
  for (const std::size_t updates : {20, 60, 100}) {
    const auto r = worst.place_units(updates, uniform_nodes(5, 20.0));
    EXPECT_EQ(r.nodes_used, 5u) << updates << " updates";
  }
}

TEST(Placement, FirstFitFillsInOrder) {
  PlacementEngine first(PlacementPolicy::kFirstFit);
  const auto r = first.place_units(25, uniform_nodes(5, 20.0));
  EXPECT_EQ(r.nodes_used, 2u);
  // First 20 on node 0, the rest on node 1.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(r.assignment[i], 0u);
  for (int i = 20; i < 25; ++i) EXPECT_EQ(r.assignment[i], 1u);
}

TEST(Placement, CapacityNeverExceededWithoutOverflow) {
  for (const auto policy :
       {PlacementPolicy::kBestFit, PlacementPolicy::kFirstFit,
        PlacementPolicy::kWorstFit}) {
    PlacementEngine p(policy);
    const auto r = p.place_units(100, uniform_nodes(5, 20.0));
    EXPECT_EQ(r.overflow, 0u);
    for (double load : r.load_after) EXPECT_LE(load, 20.0 + 1e-9);
  }
}

TEST(Placement, OverflowGoesToLeastLoaded) {
  PlacementEngine best(PlacementPolicy::kBestFit);
  const auto r = best.place_units(12, uniform_nodes(2, 5.0));
  EXPECT_EQ(r.overflow, 2u);
  // Both nodes end up at 6 (5 capacity + 1 overflow each).
  EXPECT_NEAR(r.load_after[0], 6.0, 1e-9);
  EXPECT_NEAR(r.load_after[1], 6.0, 1e-9);
}

TEST(Placement, RespectsExistingLoad) {
  auto nodes = uniform_nodes(2, 10.0);
  nodes[0].arrival_rate = 4.0;
  nodes[0].exec_time = 2.0;  // load 8 => residual 2
  PlacementEngine best(PlacementPolicy::kBestFit);
  const auto r = best.place_units(4, nodes);
  // BestFit fills node0's remaining 2 first (tightest), then node1.
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_EQ(r.assignment[1], 0u);
  EXPECT_EQ(r.assignment[2], 1u);
  EXPECT_EQ(r.assignment[3], 1u);
}

TEST(Placement, NoNodesThrows) {
  PlacementEngine p(PlacementPolicy::kBestFit);
  EXPECT_THROW(p.place_units(1, {}), std::invalid_argument);
}

TEST(Placement, NonUnitDemands) {
  PlacementEngine best(PlacementPolicy::kBestFit);
  const auto r = best.place({3.0, 3.0, 3.0, 3.0}, uniform_nodes(3, 6.0));
  EXPECT_EQ(r.nodes_used, 2u);  // two demands per node
}

// Property: BestFit never uses more nodes than WorstFit, for any load.
class PlacementDominanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlacementDominanceProperty, BestFitUsesNoMoreNodesThanWorstFit) {
  const int n = GetParam();
  PlacementEngine best(PlacementPolicy::kBestFit);
  PlacementEngine worst(PlacementPolicy::kWorstFit);
  const auto rb = best.place_units(n, uniform_nodes(5, 20.0));
  const auto rw = worst.place_units(n, uniform_nodes(5, 20.0));
  EXPECT_LE(rb.nodes_used, rw.nodes_used);
  // Total load is conserved either way.
  EXPECT_NEAR(std::accumulate(rb.load_after.begin(), rb.load_after.end(), 0.0),
              n, 1e-9);
  EXPECT_NEAR(std::accumulate(rw.load_after.begin(), rw.load_after.end(), 0.0),
              n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Loads, PlacementDominanceProperty,
                         ::testing::Values(1, 5, 19, 20, 21, 40, 60, 85, 100));

// -------------------------------------------------------------- hierarchy
TEST(Hierarchy, LeavesAreCeilQOverI) {
  HierarchyPlanner planner(2);
  const auto plan = planner.plan({8.0, 0.0, 5.0}, 0);
  ASSERT_EQ(plan.per_node.size(), 2u);
  EXPECT_EQ(plan.per_node[0].node, 0u);
  EXPECT_EQ(plan.per_node[0].leaves, 4u);  // ceil(8/2)
  EXPECT_TRUE(plan.per_node[0].middle);
  EXPECT_EQ(plan.per_node[1].node, 2u);
  EXPECT_EQ(plan.per_node[1].leaves, 3u);  // ceil(5/2)
  EXPECT_TRUE(plan.per_node[1].middle);
}

TEST(Hierarchy, SingleLeafNeedsNoMiddle) {
  HierarchyPlanner planner(2);
  const auto plan = planner.plan({2.0}, 0);
  EXPECT_EQ(plan.per_node[0].leaves, 1u);
  EXPECT_FALSE(plan.per_node[0].middle);
}

TEST(Hierarchy, ZeroPendingNodesGetNothing) {
  HierarchyPlanner planner(2);
  const auto plan = planner.plan({0.0, 0.0, 4.0}, 2);
  EXPECT_EQ(plan.per_node.size(), 1u);
  EXPECT_EQ(plan.per_node[0].node, 2u);
}

TEST(Hierarchy, AggregatorCountFormula) {
  HierarchyPlanner planner(2);
  const auto plan = planner.plan({8.0, 5.0}, 0);
  // node0: 4 leaves + middle; node1: 3 leaves + middle; + top = 10.
  EXPECT_EQ(plan.total_aggregators(), 10u);
  EXPECT_EQ(plan.top_fanin(), 2u);
  EXPECT_EQ(plan.nodes_used(), 2u);
}

TEST(Hierarchy, TopOnOtherwiseIdleNodeCountsAsUsed) {
  HierarchyPlanner planner(2);
  const auto plan = planner.plan({4.0, 0.0}, 1);
  EXPECT_EQ(plan.nodes_used(), 2u);  // node0 (data) + node1 (top)
}

TEST(Hierarchy, FractionalQRoundsUp) {
  HierarchyPlanner planner(2);
  const auto plan = planner.plan({3.2}, 0);
  EXPECT_EQ(plan.per_node[0].leaves, 2u);  // ceil(3.2/2)
  EXPECT_EQ(plan.per_node[0].expected_updates, 4u);
}

TEST(Hierarchy, ZeroUpdatesPerLeafThrows) {
  EXPECT_THROW(HierarchyPlanner(0), std::invalid_argument);
}

// Property: every pending update has leaf capacity; parallelism is maximal
// (no leaf is assigned more than I updates).
class HierarchyCoverageProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyCoverageProperty, LeafCapacityCoversPending) {
  const int q = GetParam();
  for (const std::uint32_t I : {1u, 2u, 3u, 5u}) {
    HierarchyPlanner planner(I);
    const auto plan = planner.plan({static_cast<double>(q)}, 0);
    if (q == 0) {
      EXPECT_TRUE(plan.per_node.empty());
      continue;
    }
    const auto leaves = plan.per_node[0].leaves;
    EXPECT_GE(leaves * I, static_cast<std::uint32_t>(q));
    EXPECT_LT((leaves - 1) * I, static_cast<std::uint32_t>(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Pending, HierarchyCoverageProperty,
                         ::testing::Values(0, 1, 2, 3, 7, 20, 63, 100));

// ---------------------------------------------------------- metrics server
TEST(MetricsServer, ArrivalRateIsSmoothed) {
  MetricsServer ms(2, 0.5);
  ms.report(0, 10.0, 1.0, 0.0, 0.0);  // 10/s
  ms.report(0, 20.0, 1.0, 0.0, 0.0);  // 20/s
  EXPECT_NEAR(ms.arrival_rate(0), 0.5 * 10 + 0.5 * 20, 1e-12);
}

TEST(MetricsServer, ExecTimeIsCumulativeMean) {
  MetricsServer ms(1);
  ms.report(0, 0.0, 1.0, 6.0, 2.0);
  ms.report(0, 0.0, 1.0, 2.0, 2.0);
  EXPECT_NEAR(ms.exec_time(0), 8.0 / 4.0, 1e-12);
}

TEST(MetricsServer, ExecTimeDefaultBeforeObservations) {
  MetricsServer ms(1);
  EXPECT_DOUBLE_EQ(ms.exec_time(0, 1.5), 1.5);
}

TEST(MetricsServer, QueueEstimateIsRateTimesExec) {
  MetricsServer ms(1, 0.0);  // alpha 0: no smoothing, direct check
  ms.report(0, 8.0, 2.0, 4.0, 4.0);  // k=4/s, E=1s
  EXPECT_NEAR(ms.queue_estimate(0), 4.0, 1e-12);
}

TEST(MetricsServer, ObserveQueueDirect) {
  MetricsServer ms(1, 0.7);
  ms.observe_queue(0, 10.0);
  ms.observe_queue(0, 20.0);
  EXPECT_NEAR(ms.queue_estimate(0), 0.7 * 10 + 0.3 * 20, 1e-12);
}

TEST(MetricsServer, InvalidWindowThrows) {
  MetricsServer ms(1);
  EXPECT_THROW(ms.report(0, 1.0, 0.0, 0.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------------- TAG
TEST(Tag, ValidTwoLevelTree) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});  // top
  tag.add_vertex({2, TagRole::kAggregator, 0});  // leaf
  tag.add_vertex({3, TagRole::kAggregator, 0});  // leaf
  tag.add_channel({2, 1, ChannelKind::kIntraNodeShm, "node0"});
  tag.add_channel({3, 1, ChannelKind::kIntraNodeShm, "node0"});
  EXPECT_TRUE(tag.validate());
  EXPECT_EQ(tag.root(), std::make_optional<fl::ParticipantId>(1));
}

TEST(Tag, TwoSinksIsInvalid) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});
  tag.add_vertex({2, TagRole::kAggregator, 0});
  EXPECT_FALSE(tag.root().has_value());
  EXPECT_FALSE(tag.validate());
}

TEST(Tag, CycleIsInvalid) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});
  tag.add_vertex({2, TagRole::kAggregator, 0});
  tag.add_vertex({3, TagRole::kAggregator, 0});
  tag.add_channel({1, 2, ChannelKind::kIntraNodeShm, ""});
  tag.add_channel({2, 1, ChannelKind::kIntraNodeShm, ""});
  tag.add_channel({2, 3, ChannelKind::kIntraNodeShm, ""});
  EXPECT_FALSE(tag.validate());
}

TEST(Tag, DisconnectedProducerIsInvalid) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});
  tag.add_vertex({2, TagRole::kAggregator, 0});
  tag.add_vertex({3, TagRole::kClient, 0});
  tag.add_channel({2, 1, ChannelKind::kIntraNodeShm, ""});
  // Client 3 has no path to the root.
  EXPECT_FALSE(tag.validate());
}

TEST(Tag, GroupByCollectsAffinityMembers) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});
  tag.add_vertex({2, TagRole::kAggregator, 0});
  tag.add_vertex({3, TagRole::kAggregator, 1});
  tag.add_channel({2, 1, ChannelKind::kIntraNodeShm, "g0"});
  tag.add_channel({3, 1, ChannelKind::kInterNodeKernel, "g1"});
  const auto g0 = tag.group_members("g0");
  EXPECT_EQ(g0.size(), 2u);
  const auto g1 = tag.group_members("g1");
  EXPECT_EQ(g1.size(), 2u);
}

TEST(Tag, DuplicateVertexRejected) {
  Tag tag;
  EXPECT_TRUE(tag.add_vertex({1, TagRole::kAggregator, 0}));
  EXPECT_FALSE(tag.add_vertex({1, TagRole::kAggregator, 1}));
}

TEST(Tag, ChannelWithUnknownEndpointThrows) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});
  EXPECT_THROW(tag.add_channel({1, 99, ChannelKind::kIntraNodeShm, ""}),
               std::invalid_argument);
}

TEST(Tag, ConsumersOfFollowsChannels) {
  Tag tag;
  tag.add_vertex({1, TagRole::kAggregator, 0});
  tag.add_vertex({2, TagRole::kAggregator, 0});
  tag.add_channel({2, 1, ChannelKind::kIntraNodeShm, ""});
  const auto consumers = tag.consumers_of(2);
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0], 1u);
}

}  // namespace
}  // namespace lifl::ctrl
