// Unit tests for the discrete-event simulator core.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace lifl::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(-7.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelReturnsFalseTwice) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelledEventDoesNotBlockOthers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  const EventId id = sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StepRunsExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(3.0, [&] { ++count; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_after(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, DispatchedCountsEvents) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 17u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

// Property sweep: dispatch order equals sorted (time, seq) order for
// randomized schedules of different sizes.
class SimulatorOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorOrderProperty, DispatchOrderIsStableSort) {
  const int n = GetParam();
  Simulator sim;
  std::vector<std::pair<double, int>> fired;
  // Deterministic pseudo-random times with many collisions.
  std::uint64_t x = 0x1234 + n;
  for (int i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double t = static_cast<double>((x >> 33) % 16);
    sim.schedule_at(t, [&fired, t, i] { fired.emplace_back(t, i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    // Non-decreasing time; FIFO within a timestamp (seq increases).
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimulatorOrderProperty,
                         ::testing::Values(1, 2, 10, 100, 1000, 5000));

}  // namespace
}  // namespace lifl::sim
