// Unit tests for the discrete-event simulator core.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.hpp"

namespace lifl::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(10.0, [&] {
    sim.schedule_at(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator sim;
  double fired_at = -1;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(-7.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelReturnsFalseTwice) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelledEventDoesNotBlockOthers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  const EventId id = sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StepRunsExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(3.0, [&] { ++count; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_after(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, DispatchedCountsEvents) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 17u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ScheduleNowRunsAtCurrentInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] {
    order.push_back(1);
    sim.schedule_now([&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ScheduleNowInterleavesFifoWithTimedEvents) {
  // A zero-delay event scheduled *during* an event at time T must not
  // overtake an event already scheduled for T: FIFO is by schedule order,
  // across the fast-path ring and the timed queue.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] {
    order.push_back(1);
    sim.schedule_now([&] { order.push_back(3); });  // ring, seq > B's
  });
  sim.schedule_at(5.0, [&] { order.push_back(2); });  // timed, earlier seq
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ZeroDelayChainsStayFifoUnderLoad) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_after(0.0, [&sim, &order, i] {
      order.push_back(i);
      if (i % 3 == 0) {
        sim.schedule_now([&order, i] { order.push_back(1000 + i); });
      }
    });
  }
  sim.run();
  // The first 100 dispatches are the original events in schedule order.
  ASSERT_GE(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CancelOfDispatchedRingEventReturnsFalse) {
  Simulator sim;
  EventId id = 0;
  sim.schedule_at(1.0, [&] { id = sim.schedule_now([] {}); });
  sim.run();
  EXPECT_FALSE(sim.cancel(id));  // already ran via the fast path
}

TEST(Simulator, CancelOfStaleIdAfterSlotReuseReturnsFalse) {
  // Dispatching recycles the event record; an old EventId whose slot was
  // reused by a newer event must not cancel the newer one.
  Simulator sim;
  const EventId old_id = sim.schedule_at(1.0, [] {});
  sim.run();  // old event runs; its slot returns to the free list
  bool ran = false;
  sim.schedule_at(2.0, [&] { ran = true; });  // likely reuses the slot
  EXPECT_FALSE(sim.cancel(old_id));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelledTombstoneDoesNotResurrect) {
  // Cancel marks the record; the stale queue handle surfacing later must
  // be discarded silently, and double-cancel stays false.
  Simulator sim;
  std::vector<int> order;
  const EventId id = sim.schedule_at(1.0, [&] { order.push_back(-1); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, DaemonsOnFastPathDoNotKeepRunAlive) {
  Simulator sim;
  int daemon_runs = 0;
  sim.schedule_daemon_after(0.0, [&] { ++daemon_runs; });  // ring daemon
  EXPECT_EQ(sim.run(), 0u);  // no regular events: run() must not start
  EXPECT_EQ(daemon_runs, 0);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.pending_regular(), 0u);
}

TEST(Simulator, DaemonRingEventsRunWhileRegularWorkRemains) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    // Daemon wake-up on the ring, then more regular work at this instant.
    sim.schedule_daemon_after(0.0, [&] { order.push_back(10); });
    sim.schedule_now([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.run();
  // The daemon ran (regular work existed behind it), in FIFO position.
  EXPECT_EQ(order, (std::vector<int>{1, 10, 2}));
}

TEST(Simulator, RunStopsWithDaemonsStrandedOnRing) {
  // run() must halt as soon as the last regular event retires even if
  // daemons sit ready on the fast-path ring.
  Simulator sim;
  int daemon_runs = 0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_daemon_now([&]() mutable { ++daemon_runs; });
  });
  sim.run();
  EXPECT_EQ(daemon_runs, 0);
  EXPECT_EQ(sim.pending(), 1u);
  // A later regular event lets the stranded daemon drain first (FIFO).
  bool regular_ran = false;
  sim.schedule_at(2.0, [&] { regular_ran = true; });
  sim.run();
  EXPECT_TRUE(regular_ran);
  EXPECT_EQ(daemon_runs, 1);
}

TEST(Simulator, SparseScheduleCrossesLongGaps) {
  // Exercises the calendar's empty-window jump: events separated by huge
  // gaps relative to the bucket width chosen for the dense prefix.
  Simulator sim;
  std::vector<double> fired;
  for (int i = 0; i < 3000; ++i) {
    sim.schedule_at(i * 0.001, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.schedule_at(1e6, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.schedule_at(2e9, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(fired.size(), 3002u);
  EXPECT_DOUBLE_EQ(fired[3000], 1e6);
  EXPECT_DOUBLE_EQ(fired[3001], 2e9);
  EXPECT_DOUBLE_EQ(sim.now(), 2e9);
}

TEST(Simulator, RunUntilBoundaryWithFastPathEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_now([&] { order.push_back(2); });
  });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run_until(2.0), 2u);  // the ring event at t=1 counts
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Property sweep: dispatch order equals sorted (time, seq) order for
// randomized schedules of different sizes.
class SimulatorOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorOrderProperty, DispatchOrderIsStableSort) {
  const int n = GetParam();
  Simulator sim;
  std::vector<std::pair<double, int>> fired;
  // Deterministic pseudo-random times with many collisions.
  std::uint64_t x = 0x1234 + n;
  for (int i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double t = static_cast<double>((x >> 33) % 16);
    sim.schedule_at(t, [&fired, t, i] { fired.emplace_back(t, i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    // Non-decreasing time; FIFO within a timestamp (seq increases).
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimulatorOrderProperty,
                         ::testing::Values(1, 2, 10, 100, 1000, 5000));

// Calendar-scale property: 50k events over a continuous time range with a
// 25% cancellation mix — dispatch order must still be a stable sort and no
// cancelled event may fire.
TEST(Simulator, LargeChurnDispatchOrderIsStableSort) {
  Simulator sim;
  std::vector<std::pair<double, int>> fired;
  std::vector<EventId> to_cancel;
  std::uint64_t x = 0xC0FFEE;
  auto next = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 11;
  };
  const int n = 50'000;
  std::vector<bool> cancelled(n, false);
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(next() % 1'000'000) / 1000.0;
    const EventId id = sim.schedule_at(t, [&fired, t, i] {
      fired.emplace_back(t, i);
    });
    if (next() % 4 == 0) {
      to_cancel.push_back(id);
      cancelled[i] = true;
    }
  }
  for (const EventId id : to_cancel) EXPECT_TRUE(sim.cancel(id));
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n) - to_cancel.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_FALSE(cancelled[static_cast<std::size_t>(fired[i].second)]);
    if (i == 0) continue;
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);
    }
  }
}

}  // namespace
}  // namespace lifl::sim
