// Tests for the selector (Fig. 2): cohort over-provisioning, diversity,
// keep-alive heartbeat failure detection (§3 resilience), config
// validation, and the pluggable selection strategies (random / scored /
// cluster-scan) over tiered device populations.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "src/control/selection.hpp"
#include "src/control/selector.hpp"
#include "src/workload/device_tier.hpp"

namespace lifl::ctrl {
namespace {

struct World {
  sim::Simulator sim;
  Selector selector;

  explicit World(Selector::Config cfg = {}) : selector(sim, cfg) {}
};

wl::ClientPopulation make_population(std::size_t n) {
  sim::Rng rng(4);
  return wl::ClientPopulation::synthetic(n, /*mobile=*/false, rng);
}

TEST(Selector, OverprovisionsTheCohort) {
  World w;
  const auto pop = make_population(500);
  sim::Rng rng(9);
  const auto cohort = w.selector.select(pop, 100, rng);
  EXPECT_EQ(cohort.goal, 100u);
  EXPECT_EQ(cohort.members.size(), 130u);  // 100 x (1 + 0.3)
}

TEST(Selector, CohortIsBoundedByPopulation) {
  World w;
  const auto pop = make_population(50);
  sim::Rng rng(9);
  const auto cohort = w.selector.select(pop, 48, rng);
  EXPECT_LE(cohort.members.size(), 50u);
}

TEST(Selector, CohortMembersAreDistinct) {
  World w;
  const auto pop = make_population(300);
  sim::Rng rng(10);
  const auto cohort = w.selector.select(pop, 120, rng);
  std::set<std::size_t> unique(cohort.members.begin(), cohort.members.end());
  EXPECT_EQ(unique.size(), cohort.members.size());
}

TEST(Selector, ConsecutiveDrawsDiffer) {
  World w;
  const auto pop = make_population(1000);
  sim::Rng rng(11);
  const auto a = w.selector.select(pop, 50, rng);
  const auto b = w.selector.select(pop, 50, rng);
  EXPECT_NE(a.members, b.members);  // diversity across rounds
}

TEST(Selector, SilentClientIsDeclaredFailed) {
  World w;
  bool failed = false;
  w.selector.track(42, [&] { failed = true; });
  w.sim.run();  // no heartbeats ever arrive
  EXPECT_TRUE(failed);
  EXPECT_EQ(w.selector.failures_detected(), 1u);
  EXPECT_EQ(w.selector.tracked(), 0u);
}

TEST(Selector, HeartbeatsKeepClientAlive) {
  World w;
  bool failed = false;
  w.selector.track(42, [&] { failed = true; });
  // Heartbeats every second for 20 s, then the client reports done.
  for (int s = 1; s <= 20; ++s) {
    w.sim.schedule_after(s, [&] { w.selector.heartbeat(42); });
  }
  w.sim.schedule_after(20.5, [&] { w.selector.report_done(42); });
  w.sim.run();
  EXPECT_FALSE(failed);
  EXPECT_EQ(w.selector.failures_detected(), 0u);
}

TEST(Selector, FailureFiresOnlyAfterTimeoutOfSilence) {
  Selector::Config cfg;
  cfg.heartbeat_timeout_secs = 5.0;
  World w(cfg);
  double failed_at = -1.0;
  w.selector.track(7, [&] { failed_at = w.sim.now(); });
  // One heartbeat at t=3: silence runs 3..8, so failure lands near t=8.
  w.sim.schedule_after(3.0, [&] { w.selector.heartbeat(7); });
  w.sim.run();
  EXPECT_GE(failed_at, 8.0 - 1e-6);
  EXPECT_LE(failed_at, 8.0 + cfg.heartbeat_timeout_secs + 1e-6);
}

TEST(Selector, ReportDoneStopsTracking) {
  World w;
  bool failed = false;
  w.selector.track(1, [&] { failed = true; });
  w.sim.schedule_after(1.0, [&] { w.selector.report_done(1); });
  w.sim.run();
  EXPECT_FALSE(failed);
}

TEST(Selector, TracksManyClientsIndependently) {
  World w;
  int failures = 0;
  for (fl::ParticipantId c = 1; c <= 10; ++c) {
    w.selector.track(c, [&] { ++failures; });
  }
  // Clients 1..5 stay alive (heartbeat + done); 6..10 go silent.
  for (fl::ParticipantId c = 1; c <= 5; ++c) {
    w.sim.schedule_after(1.0, [&w, c] { w.selector.heartbeat(c); });
    w.sim.schedule_after(2.0, [&w, c] { w.selector.report_done(c); });
  }
  w.sim.run();
  EXPECT_EQ(failures, 5);
  EXPECT_EQ(w.selector.failures_detected(), 5u);
}

// ------------------------------------------------------- config checks

TEST(SelectorConfig, RejectsNegativeOverprovision) {
  sim::Simulator sim;
  Selector::Config cfg;
  cfg.overprovision = -0.1;
  EXPECT_THROW(Selector(sim, cfg), std::invalid_argument);
}

TEST(SelectorConfig, RejectsNonPositiveHeartbeatPeriod) {
  sim::Simulator sim;
  Selector::Config cfg;
  cfg.heartbeat_period_secs = 0.0;
  EXPECT_THROW(Selector(sim, cfg), std::invalid_argument);
  cfg.heartbeat_period_secs = -3.0;
  EXPECT_THROW(Selector(sim, cfg), std::invalid_argument);
}

TEST(SelectorConfig, RejectsTimeoutShorterThanPeriod) {
  // A timeout below the heartbeat period declares every client dead
  // between two perfectly healthy heartbeats.
  sim::Simulator sim;
  Selector::Config cfg;
  cfg.heartbeat_period_secs = 10.0;
  cfg.heartbeat_timeout_secs = 5.0;
  EXPECT_THROW(Selector(sim, cfg), std::invalid_argument);
  cfg.heartbeat_timeout_secs = 10.0;  // equal is allowed
  EXPECT_NO_THROW(Selector(sim, cfg));
}

// -------------------------------------------------- selection strategies

wl::ClientPopulation make_tiered(std::size_t n) {
  sim::Rng rng(4);
  return wl::ClientPopulation::tiered(n, wl::TierMix{0.4, 0.3, 0.3}, rng);
}

TEST(SelectionStrategy, ParsesPolicyNames) {
  SelectorPolicy p;
  EXPECT_TRUE(parse_selector_policy("random", p));
  EXPECT_EQ(p, SelectorPolicy::kRandom);
  EXPECT_TRUE(parse_selector_policy("scored", p));
  EXPECT_EQ(p, SelectorPolicy::kScored);
  EXPECT_TRUE(parse_selector_policy("cluster", p));
  EXPECT_EQ(p, SelectorPolicy::kClusterScan);
  EXPECT_TRUE(parse_selector_policy("cluster-scan", p));
  EXPECT_EQ(p, SelectorPolicy::kClusterScan);
  EXPECT_FALSE(parse_selector_policy("fastest", p));
}

TEST(SelectionStrategy, RandomPrimaryDrawMatchesTheLegacyOracle) {
  // The arrival chain's legacy pick is `(seq * 2654435761) % size`; the
  // random strategy's probe-0 draw must reproduce it bitwise so enabling
  // the strategy machinery alone changes nothing.
  const auto pop = make_tiered(5000);
  const auto s = make_selection_strategy(SelectorPolicy::kRandom, {}, 0);
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    EXPECT_EQ(s->pick(pop, 0, seq, 0),
              (seq * 2654435761ull) % pop.size());
  }
}

TEST(SelectionStrategy, RedrawsAreDeterministicAndDiffer) {
  const auto pop = make_tiered(5000);
  const auto a = make_selection_strategy(SelectorPolicy::kScored, {}, 0);
  const auto b = make_selection_strategy(SelectorPolicy::kScored, {}, 0);
  int moved = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    for (std::uint64_t probe = 0; probe < 4; ++probe) {
      EXPECT_EQ(a->pick(pop, 2, seq, probe), b->pick(pop, 2, seq, probe));
    }
    moved += a->pick(pop, 2, seq, 1) != a->pick(pop, 2, seq, 0);
  }
  EXPECT_GT(moved, 150);  // probes genuinely re-draw
}

TEST(SelectionStrategy, ScoredShiftsAwayFromSlowTiers) {
  const auto pop = make_tiered(9000);
  const auto s = make_selection_strategy(SelectorPolicy::kScored, {}, 0);
  // Before any telemetry: picks follow the population shares.
  auto tally = [&](std::uint64_t round) {
    std::array<std::size_t, wl::kTierCount> counts{};
    for (std::uint64_t seq = 0; seq < 6000; ++seq) {
      ++counts[static_cast<std::size_t>(
          pop.tier_of(s->pick(pop, round, seq, 0)))];
    }
    return counts;
  };
  const auto before = tally(0);
  EXPECT_NEAR(static_cast<double>(
                  before[static_cast<std::size_t>(wl::DeviceTier::kIoT)]) /
                  6000.0,
              0.3, 0.05);

  // Feed telemetry: IoT is 100x slower than the others.
  for (int i = 0; i < 50; ++i) {
    s->report(wl::DeviceTier::kFlagship, 1.0, true);
    s->report(wl::DeviceTier::kMidRange, 1.5, true);
    s->report(wl::DeviceTier::kIoT, 100.0, true);
  }
  const auto after = tally(1);
  // IoT's relative score (~0.01) is under the 0.05 exclusion threshold.
  EXPECT_EQ(after[static_cast<std::size_t>(wl::DeviceTier::kIoT)], 0u);
  EXPECT_GT(after[static_cast<std::size_t>(wl::DeviceTier::kFlagship)],
            before[static_cast<std::size_t>(wl::DeviceTier::kFlagship)]);
}

TEST(SelectionStrategy, ClusterScanKeepsATrickleOnStragglers) {
  const auto pop = make_tiered(9000);
  const auto s = make_selection_strategy(SelectorPolicy::kClusterScan, {}, 0);
  for (int i = 0; i < 50; ++i) {
    s->report(wl::DeviceTier::kFlagship, 1.0, true);
    s->report(wl::DeviceTier::kMidRange, 1.2, true);
    s->report(wl::DeviceTier::kIoT, 30.0, true);  // > 2.5x the fastest
  }
  std::array<std::size_t, wl::kTierCount> counts{};
  for (std::uint64_t seq = 0; seq < 20000; ++seq) {
    ++counts[static_cast<std::size_t>(pop.tier_of(s->pick(pop, 1, seq, 0)))];
  }
  const auto iot = counts[static_cast<std::size_t>(wl::DeviceTier::kIoT)];
  // Down-weighted hard (scan_weight = 0.02 of its 0.3 share ~ 0.9%), but
  // never zero: the scan trickle keeps the cluster observable.
  EXPECT_GT(iot, 0u);
  EXPECT_LT(iot, 20000u / 20u);
}

TEST(SelectionStrategy, StateRoundTripsBitwise) {
  const auto s = make_selection_strategy(SelectorPolicy::kScored, {}, 3);
  s->report(wl::DeviceTier::kFlagship, 1.25, true);
  s->report(wl::DeviceTier::kIoT, 17.5, true);
  s->report(wl::DeviceTier::kIoT, 3.0, false);
  const auto snap = s->state();

  const auto t = make_selection_strategy(SelectorPolicy::kScored, {}, 3);
  t->restore(snap);
  const auto pop = make_tiered(5000);
  for (std::uint64_t seq = 0; seq < 300; ++seq) {
    EXPECT_EQ(s->pick(pop, 5, seq, 0), t->pick(pop, 5, seq, 0));
  }
  const auto again = t->state();
  for (std::size_t i = 0; i < wl::kTierCount; ++i) {
    EXPECT_EQ(snap.scores[i].dur, again.scores[i].dur);
    EXPECT_EQ(snap.scores[i].dur_init, again.scores[i].dur_init);
    EXPECT_EQ(snap.scores[i].succ, again.scores[i].succ);
    EXPECT_EQ(snap.scores[i].succ_init, again.scores[i].succ_init);
  }
}

// ---------------------------------------------------- tiered populations

TEST(TieredPopulation, TierRangesAreContiguousAndExact) {
  sim::Rng rng(4);
  const auto pop =
      wl::ClientPopulation::tiered(1000, wl::TierMix{0.4, 0.3, 0.3}, rng);
  EXPECT_TRUE(pop.tiered());
  EXPECT_EQ(pop.tier_count(wl::DeviceTier::kFlagship), 400u);
  EXPECT_EQ(pop.tier_count(wl::DeviceTier::kMidRange), 300u);
  EXPECT_EQ(pop.tier_count(wl::DeviceTier::kIoT), 300u);
  EXPECT_EQ(pop.tier_begin(wl::DeviceTier::kMidRange), 400u);
  EXPECT_EQ(pop.tier_begin(wl::DeviceTier::kIoT), 700u);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_EQ(pop[i].tier, pop.tier_of(i)) << "index " << i;
  }
}

TEST(TieredPopulation, TiersShapeSpeedAndUplink) {
  sim::Rng rng(4);
  const auto pop =
      wl::ClientPopulation::tiered(3000, wl::TierMix{0.4, 0.3, 0.3}, rng);
  const std::size_t iot0 = pop.tier_begin(wl::DeviceTier::kIoT);
  double fl_speed = 0.0, iot_speed = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    fl_speed += pop[i].speed;
    iot_speed += pop[iot0 + i].speed;
  }
  EXPECT_GT(fl_speed / 400.0, 2.0 * (iot_speed / 400.0));
  EXPECT_GT(pop[0].uplink_bytes_per_sec,
            pop[2999].uplink_bytes_per_sec * 4.0);
  EXPECT_FALSE(pop[0].mobile);      // flagship trains without hibernation
  EXPECT_TRUE(pop[2999].mobile);    // IoT hibernates
}

TEST(TieredPopulation, AllMidRangeMixMatchesLegacyMobileBitwise) {
  // A {0,1,0} mix must reproduce the legacy mobile synthetic population
  // exactly — the guarantee that tiering is opt-in.
  sim::Rng rng_a(4), rng_b(4);
  const auto legacy =
      wl::ClientPopulation::synthetic(500, /*mobile=*/true, rng_a);
  const auto tiered =
      wl::ClientPopulation::tiered(500, wl::TierMix{0.0, 1.0, 0.0}, rng_b);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(legacy[i].speed, tiered[i].speed) << "index " << i;
    EXPECT_EQ(legacy[i].samples, tiered[i].samples) << "index " << i;
    EXPECT_EQ(legacy[i].uplink_bytes_per_sec,
              tiered[i].uplink_bytes_per_sec)
        << "index " << i;
    EXPECT_EQ(legacy[i].mobile, tiered[i].mobile) << "index " << i;
  }
}

}  // namespace
}  // namespace lifl::ctrl
