// Tests for the selector (Fig. 2): cohort over-provisioning, diversity,
// and keep-alive heartbeat failure detection (§3 resilience).

#include <gtest/gtest.h>

#include <set>

#include "src/control/selector.hpp"

namespace lifl::ctrl {
namespace {

struct World {
  sim::Simulator sim;
  Selector selector;

  explicit World(Selector::Config cfg = {}) : selector(sim, cfg) {}
};

wl::ClientPopulation make_population(std::size_t n) {
  sim::Rng rng(4);
  return wl::ClientPopulation::synthetic(n, /*mobile=*/false, rng);
}

TEST(Selector, OverprovisionsTheCohort) {
  World w;
  const auto pop = make_population(500);
  sim::Rng rng(9);
  const auto cohort = w.selector.select(pop, 100, rng);
  EXPECT_EQ(cohort.goal, 100u);
  EXPECT_EQ(cohort.members.size(), 130u);  // 100 x (1 + 0.3)
}

TEST(Selector, CohortIsBoundedByPopulation) {
  World w;
  const auto pop = make_population(50);
  sim::Rng rng(9);
  const auto cohort = w.selector.select(pop, 48, rng);
  EXPECT_LE(cohort.members.size(), 50u);
}

TEST(Selector, CohortMembersAreDistinct) {
  World w;
  const auto pop = make_population(300);
  sim::Rng rng(10);
  const auto cohort = w.selector.select(pop, 120, rng);
  std::set<std::size_t> unique(cohort.members.begin(), cohort.members.end());
  EXPECT_EQ(unique.size(), cohort.members.size());
}

TEST(Selector, ConsecutiveDrawsDiffer) {
  World w;
  const auto pop = make_population(1000);
  sim::Rng rng(11);
  const auto a = w.selector.select(pop, 50, rng);
  const auto b = w.selector.select(pop, 50, rng);
  EXPECT_NE(a.members, b.members);  // diversity across rounds
}

TEST(Selector, SilentClientIsDeclaredFailed) {
  World w;
  bool failed = false;
  w.selector.track(42, [&] { failed = true; });
  w.sim.run();  // no heartbeats ever arrive
  EXPECT_TRUE(failed);
  EXPECT_EQ(w.selector.failures_detected(), 1u);
  EXPECT_EQ(w.selector.tracked(), 0u);
}

TEST(Selector, HeartbeatsKeepClientAlive) {
  World w;
  bool failed = false;
  w.selector.track(42, [&] { failed = true; });
  // Heartbeats every second for 20 s, then the client reports done.
  for (int s = 1; s <= 20; ++s) {
    w.sim.schedule_after(s, [&] { w.selector.heartbeat(42); });
  }
  w.sim.schedule_after(20.5, [&] { w.selector.report_done(42); });
  w.sim.run();
  EXPECT_FALSE(failed);
  EXPECT_EQ(w.selector.failures_detected(), 0u);
}

TEST(Selector, FailureFiresOnlyAfterTimeoutOfSilence) {
  Selector::Config cfg;
  cfg.heartbeat_timeout_secs = 5.0;
  World w(cfg);
  double failed_at = -1.0;
  w.selector.track(7, [&] { failed_at = w.sim.now(); });
  // One heartbeat at t=3: silence runs 3..8, so failure lands near t=8.
  w.sim.schedule_after(3.0, [&] { w.selector.heartbeat(7); });
  w.sim.run();
  EXPECT_GE(failed_at, 8.0 - 1e-6);
  EXPECT_LE(failed_at, 8.0 + cfg.heartbeat_timeout_secs + 1e-6);
}

TEST(Selector, ReportDoneStopsTracking) {
  World w;
  bool failed = false;
  w.selector.track(1, [&] { failed = true; });
  w.sim.schedule_after(1.0, [&] { w.selector.report_done(1); });
  w.sim.run();
  EXPECT_FALSE(failed);
}

TEST(Selector, TracksManyClientsIndependently) {
  World w;
  int failures = 0;
  for (fl::ParticipantId c = 1; c <= 10; ++c) {
    w.selector.track(c, [&] { ++failures; });
  }
  // Clients 1..5 stay alive (heartbeat + done); 6..10 go silent.
  for (fl::ParticipantId c = 1; c <= 5; ++c) {
    w.sim.schedule_after(1.0, [&w, c] { w.selector.heartbeat(c); });
    w.sim.schedule_after(2.0, [&w, c] { w.selector.report_done(c); });
  }
  w.sim.run();
  EXPECT_EQ(failures, 5);
  EXPECT_EQ(w.selector.failures_detected(), 5u);
}

}  // namespace
}  // namespace lifl::ctrl
