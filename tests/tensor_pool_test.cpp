// Tests for the pooled zero-copy tensor allocator: recycle stats, handle
// lifetimes, and the acceptance property of the kernels refactor —
// steady-state FedAvg rounds perform ZERO tensor heap allocations.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fl/fedavg.hpp"
#include "src/ml/tensor.hpp"
#include "src/ml/tensor_pool.hpp"
#include "src/sim/random.hpp"

namespace lifl::ml {
namespace {

TEST(TensorPool, FirstAcquireMissesThenRecyclesAndHits) {
  TensorPool pool;
  auto t = pool.acquire(128);
  ASSERT_TRUE(t);
  EXPECT_EQ(t->size(), 128u);
  auto s = pool.stats();
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.pool_hits, 0u);

  (*t)[0] = 42.0f;
  t.reset();  // recycles the whole tensor
  s = pool.stats();
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.buffers_pooled, 1u);
  EXPECT_EQ(s.bytes_pooled, 128 * sizeof(float));

  auto t2 = pool.acquire(128);
  s = pool.stats();
  EXPECT_EQ(s.pool_hits, 1u);
  EXPECT_EQ(s.buffers_pooled, 0u);
  // acquire() contents are unspecified — recycled buffers keep old values.
  EXPECT_FLOAT_EQ((*t2)[0], 42.0f);

  auto tz = pool.acquire_zeroed(128);
  EXPECT_FLOAT_EQ((*tz)[0], 0.0f);
}

TEST(TensorPool, ExactSizeBucketsDoNotCrossMatch) {
  TensorPool pool;
  pool.acquire(64).reset();
  auto t = pool.acquire(65);
  auto s = pool.stats();
  EXPECT_EQ(s.pool_hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.buffers_pooled, 1u);  // the 64-buffer still parked
}

TEST(TensorPool, CapacityOverflowDropsInsteadOfPooling) {
  TensorPool pool(/*capacity_bytes=*/256 * sizeof(float));
  pool.acquire(256).reset();  // fills the pool exactly
  pool.acquire(128).reset();  // would overflow: freed, not parked
  auto s = pool.stats();
  EXPECT_EQ(s.recycles, 1u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.bytes_pooled, 256 * sizeof(float));
}

TEST(TensorPool, HandleMayOutlivePool) {
  std::shared_ptr<Tensor> survivor;
  {
    TensorPool pool;
    survivor = pool.acquire(32);
    (*survivor)[5] = 7.0f;
  }
  EXPECT_FLOAT_EQ((*survivor)[5], 7.0f);
  survivor.reset();  // parks into the (still-alive) shared core, then frees
}

TEST(TensorPool, AdoptRecyclesExternalBuffers) {
  TensorPool pool;
  Tensor t(100, 1.5f);
  auto h = pool.adopt(std::move(t));
  EXPECT_FLOAT_EQ((*h)[99], 1.5f);
  h.reset();
  auto s = pool.stats();
  EXPECT_EQ(s.adopted, 1u);
  EXPECT_EQ(s.recycles, 1u);
  auto reused = pool.acquire(100);
  EXPECT_EQ(pool.stats().pool_hits, 1u);
}

TEST(TensorPool, TrimFreesParkedBuffers) {
  TensorPool pool;
  pool.acquire(64).reset();
  EXPECT_EQ(pool.stats().buffers_pooled, 1u);
  pool.trim();
  EXPECT_EQ(pool.stats().buffers_pooled, 0u);
  EXPECT_EQ(pool.stats().bytes_pooled, 0u);
}

// ---- The acceptance property: steady-state rounds are zero-alloc.
//
// Round 1 populates the pool (misses are expected); every later round's
// fold path — accumulator sum, finalized average, every per-client update
// tensor — must be served entirely from the recycle pool.
TEST(TensorPool, SteadyStateFedAvgRoundsAreZeroAlloc) {
  auto& pool = TensorPool::global();
  constexpr std::size_t kDim = 4096;
  constexpr int kClients = 8;
  constexpr int kRounds = 6;
  sim::Rng rng(99);

  for (int round = 0; round < kRounds; ++round) {
    const TensorPoolStats before = pool.stats();
    fl::FedAvgAccumulator acc;
    {
      // Client updates come from the pool too (as local_train's do).
      std::vector<std::shared_ptr<Tensor>> updates;
      for (int c = 0; c < kClients; ++c) {
        auto u = pool.acquire(kDim);
        (*u)[0] = static_cast<float>(rng.normal(0.0, 1.0));
        updates.push_back(std::move(u));
      }
      for (const auto& u : updates) acc.add(u, 600);
    }
    // Finalize, hand the aggregate out, then drop everything (end of round).
    auto global = acc.result();
    ASSERT_TRUE(global);
    acc.reset();
    global.reset();

    const TensorPoolStats after = pool.stats();
    if (round >= 1) {
      EXPECT_EQ(after.misses, before.misses)
          << "round " << round << " heap-allocated a tensor on the fold path";
      EXPECT_GE(after.pool_hits - before.pool_hits,
                static_cast<std::uint64_t>(kClients))
          << "round " << round;
    }
  }
}

}  // namespace
}  // namespace lifl::ml
