// Unit tests for the deterministic RNG and its distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/random.hpp"

namespace lifl::sim {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(99);
  Rng a1 = root.split(7);
  Rng a2 = root.split(7);
  Rng b = root.split(8);
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  EXPECT_NE(a1.next_u64(), b.next_u64());
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.split(1);
  (void)a.split(2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(42);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) seen[r.uniform_index(10)]++;
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, NormalMoments) {
  Rng r(42);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng r(42);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(42);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng r(42);
  for (const double shape : {0.5, 1.0, 2.0, 7.5}) {
    double sum = 0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) sum += r.gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng r(42);
  for (int i = 0; i < 100; ++i) {
    const auto v = r.dirichlet(0.5, 10);
    double sum = 0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletSkewGrowsAsAlphaShrinks) {
  // Smaller alpha => more mass on fewer classes (more non-IID).
  Rng r(42);
  auto max_mass = [&r](double alpha) {
    double total = 0;
    for (int i = 0; i < 300; ++i) {
      const auto v = r.dirichlet(alpha, 10);
      total += *std::max_element(v.begin(), v.end());
    }
    return total / 300;
  };
  const double skew_low_alpha = max_mass(0.1);
  const double skew_high_alpha = max_mass(10.0);
  EXPECT_GT(skew_low_alpha, skew_high_alpha + 0.2);
}

TEST(Rng, LognormalMedian) {
  Rng r(42);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = r.lognormal(std::log(5.0), 0.8);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 5.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(42);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng r(42);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  r.shuffle(w);
  EXPECT_NE(v, w);
}

}  // namespace
}  // namespace lifl::sim
