// Tests for the centralized-broker plane semantics (Fig. 2(b), §2.3):
// every brokered message transits the single broker service on its node,
// consumption is a real broker delivery (vs free in-place queuing), and
// the broker's fixed worker threads serialize bursts.

#include <gtest/gtest.h>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/model_spec.hpp"

namespace lifl::dp {
namespace {

struct World {
  sim::Simulator sim;
  sim::Cluster cluster;
  DataPlane plane;

  explicit World(DataPlaneConfig cfg, std::size_t nodes = 3,
                 sim::NodeConfig node_cfg = sim::NodeConfig{})
      : cluster(sim, nodes, node_cfg), plane(cluster, cfg, sim::Rng(12)) {}
};

fl::ModelUpdate update(std::size_t bytes = 10'000'000) {
  fl::ModelUpdate u;
  u.model_version = 1;
  u.producer = 1;
  u.sample_count = 10;
  u.logical_bytes = bytes;
  return u;
}

TEST(BrokerPlane, AllBrokerProcessingBillsTheBrokerNode) {
  DataPlaneConfig cfg = serverless_plane();
  cfg.broker_node = 1;
  World w(cfg);
  // Uploads target node 2, yet the broker work lands on node 1.
  w.plane.client_upload(2, update(), 1e9);
  w.plane.client_upload(2, update(), 1e9);
  w.sim.run();
  EXPECT_GT(w.cluster.node(1).cpu().cycles(sim::CostTag::kBroker), 0.0);
  EXPECT_EQ(w.cluster.node(0).cpu().cycles(sim::CostTag::kBroker), 0.0);
  EXPECT_EQ(w.cluster.node(2).cpu().cycles(sim::CostTag::kBroker), 0.0);
}

TEST(BrokerPlane, ConsumeIsFreeOnLiflAndServerfulPlanes) {
  for (const auto cfg : {lifl_plane(), serverful_plane()}) {
    World w(cfg);
    w.plane.seed_update(0, update());
    fl::ModelUpdate got;
    ASSERT_TRUE(w.plane.env(0).pool.try_pop(got));
    bool ready = false;
    const double t0 = w.sim.now();
    w.plane.consume(0, got, [&] { ready = true; });
    w.sim.run();
    EXPECT_TRUE(ready);
    EXPECT_DOUBLE_EQ(w.sim.now(), t0);  // zero simulated time
  }
}

TEST(BrokerPlane, ConsumeCostsTimeOnBrokeredPlanes) {
  World w(serverless_plane());
  w.plane.seed_update(0, update());
  fl::ModelUpdate got;
  ASSERT_TRUE(w.plane.env(0).pool.try_pop(got));
  bool ready = false;
  w.plane.consume(0, got, [&] { ready = true; });
  w.sim.run();
  EXPECT_TRUE(ready);
  EXPECT_GT(w.sim.now(), 0.01);  // dequeue + kernel + sidecar legs
}

TEST(BrokerPlane, CrossNodeConsumePaysTheWire) {
  // Broker on node 0, consumer on node 2: the delivery crosses the NIC.
  auto drain_time = [&](sim::NodeId consumer_node) {
    DataPlaneConfig cfg = serverless_plane();
    cfg.broker_node = 0;
    World w(cfg);
    fl::ModelUpdate u = update(100'000'000);
    bool ready = false;
    w.plane.consume(consumer_node, u, [&] { ready = true; });
    w.sim.run();
    EXPECT_TRUE(ready);
    return w.sim.now();
  };
  EXPECT_GT(drain_time(2), drain_time(0));
}

TEST(BrokerPlane, InterNodeSendRoutesThroughBroker) {
  DataPlaneConfig cfg = serverless_plane();
  cfg.broker_node = 1;
  World w(cfg);
  bool delivered = false;
  w.plane.register_consumer(42, 2, [&](fl::ModelUpdate) { delivered = true; });
  w.plane.send(7, 0, 42, update());
  w.sim.run();
  EXPECT_TRUE(delivered);
  // The broker node did processing even though it is neither src nor dst.
  EXPECT_GT(w.cluster.node(1).cpu().cycles(sim::CostTag::kBroker), 0.0);
}

TEST(BrokerPlane, SameNodeSendStillTransitsBroker) {
  // §2.3 indirect networking: co-located functions still exchange messages
  // through the broker.
  World w(serverless_plane());
  bool delivered = false;
  w.plane.register_consumer(42, 0, [&](fl::ModelUpdate) { delivered = true; });
  w.plane.send(7, 0, 42, update());
  w.sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(w.cluster.node(0).cpu().cycles(sim::CostTag::kBroker), 0.0);
}

/// Property: a burst of B consumes drains no faster than the broker's
/// worker threads allow — and adding threads shortens the drain.
class BrokerCapacitySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BrokerCapacitySweep, DrainScalesWithWorkerThreads) {
  const std::uint32_t cores = GetParam();
  DataPlaneConfig cfg = serverless_plane();
  cfg.broker_cores = cores;
  // The property under test is about the broker's worker threads, so give
  // the node an uncontended kernel path; with the default 2-core kernel
  // budget the kernel stack (not the broker) bounds the drain and no amount
  // of broker threads can shorten it.
  sim::NodeConfig node_cfg;
  node_cfg.kernel_net_cores = 16;
  World w(cfg, 1, node_cfg);
  constexpr int kBurst = 8;
  int ready = 0;
  for (int i = 0; i < kBurst; ++i) {
    w.plane.seed_update(0, update(50'000'000));
  }
  std::vector<fl::ModelUpdate> popped(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(w.plane.env(0).pool.try_pop(popped[i]));
    w.plane.consume(0, popped[i], [&] { ++ready; });
  }
  w.sim.run();
  EXPECT_EQ(ready, kBurst);
  // Record drain time in a map shared across instantiations via statics.
  static std::map<std::uint32_t, double> drains;
  drains[cores] = w.sim.now();
  if (drains.count(1) && drains.count(4)) {
    EXPECT_GT(drains[1], drains[4] * 1.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Cores, BrokerCapacitySweep,
                         ::testing::Values(1u, 2u, 4u));

}  // namespace
}  // namespace lifl::dp
