// Property tests for adaptive horizon widening: under randomized
// cross-post schedules with honest outbound promises, the widened windows
// must never admit a causality violation (every delivery lands exactly at
// its posted time, in nondecreasing order per receiver), and the
// empty-window skipping must be idempotent under pausing — slicing a run
// with `run_to` marks reproduces the unsliced run bit for bit, skipped
// windows included, which is the property campaign checkpoint/resume
// rides on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "src/sim/random.hpp"
#include "src/sim/sharded_simulator.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace {

namespace sys = lifl::sys;
using lifl::sim::Rng;
using lifl::sim::ShardedSimulator;
using lifl::sim::SyncMode;

constexpr double kLookahead = 0.01;

// ---------------------------------------------------------------------------
// A randomized shard model with a precomputed post schedule, so each shard
// can publish an *honest* promise: the minimum delivery time over every
// cross-post it has not yet made (suffix minimum of its schedule).

struct Step {
  double at;        ///< shard-local event time
  int dst;          ///< cross-post target (-1 = no post at this step)
  double delivery;  ///< posted delivery time when dst >= 0
};

struct ShardPlan {
  std::vector<Step> steps;
  std::vector<double> promise_after;  ///< suffix min delivery from step i
  std::size_t cursor = 0;             ///< next step not yet executed
};

std::vector<ShardPlan> make_plans(std::size_t shards, std::uint64_t seed) {
  std::vector<ShardPlan> plans(shards);
  Rng rng(seed);
  for (std::size_t s = 0; s < shards; ++s) {
    double t = rng.uniform(0.1, 0.5);
    for (int i = 0; i < 200; ++i) {
      double gap = rng.uniform(0.001, 0.05);
      // Occasional long idle troughs: hundreds of conservative windows
      // with provably nothing in flight — the windows widening exists to
      // skip.
      if (rng.uniform(0.0, 1.0) < 0.08) gap += rng.uniform(0.5, 2.0);
      t += gap;
      Step st{t, -1, 0.0};
      if (shards > 1 && rng.uniform(0.0, 1.0) < 0.3) {
        st.dst = static_cast<int>(
            (s + 1 + static_cast<std::size_t>(
                         rng.uniform(0.0, static_cast<double>(shards - 1)))) %
            shards);
        st.delivery = t + kLookahead + rng.uniform(0.0, 0.3);
      }
      plans[s].steps.push_back(st);
    }
    // Suffix minimum of the remaining deliveries = the honest promise.
    auto& p = plans[s];
    p.promise_after.assign(p.steps.size() + 1,
                           std::numeric_limits<double>::infinity());
    for (std::size_t i = p.steps.size(); i-- > 0;) {
      p.promise_after[i] = p.promise_after[i + 1];
      if (p.steps[i].dst >= 0) {
        p.promise_after[i] = std::min(p.promise_after[i], p.steps[i].delivery);
      }
    }
  }
  return plans;
}

struct Delivery {
  double receiver_now;  ///< receiver clock inside the delivery callback
  double posted;        ///< delivery time the sender requested
  int dst;
  int id;  ///< global post id (src * steps + step index)
};

bool operator==(const Delivery& a, const Delivery& b) {
  return a.receiver_now == b.receiver_now && a.posted == b.posted &&
         a.dst == b.dst && a.id == b.id;
}

/// Per-receiver delivery logs: each shard's worker appends only to its
/// own vector, so logging is race-free and the order within a vector is
/// the receiver's deterministic execution order (a single global log
/// would interleave receivers by thread timing).
using Logs = std::vector<std::vector<Delivery>>;

/// Install the plans into a fresh simulator. `logs` must outlive the run.
void arm(ShardedSimulator& sharded, std::vector<ShardPlan>& plans,
         Logs* logs, bool with_promises) {
  for (std::size_t s = 0; s < plans.size(); ++s) {
    plans[s].cursor = 0;
    ShardPlan* plan = &plans[s];
    for (std::size_t i = 0; i < plan->steps.size(); ++i) {
      sharded.shard(s).schedule_at(
          plan->steps[i].at, [&sharded, plan, logs, s, i] {
            plan->cursor = i + 1;
            const Step& st = plan->steps[i];
            if (st.dst >= 0) {
              const int id = static_cast<int>(s * 1000 + i);
              sharded.post(
                  s, static_cast<std::size_t>(st.dst), st.delivery,
                  [&sharded, logs, st, id] {
                    (*logs)[static_cast<std::size_t>(st.dst)].push_back(
                        Delivery{sharded.shard(st.dst).now(), st.delivery,
                                 st.dst, id});
                  });
            }
          });
    }
    if (with_promises) {
      sharded.set_promise(s, [plan] { return plan->promise_after[plan->cursor]; });
    }
  }
}

ShardedSimulator::Config adaptive_cfg(std::size_t shards, SyncMode sync) {
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = kLookahead;
  cfg.sync = sync;
  return cfg;
}

TEST(SyncAdaptive, RandomSchedulesNeverAdmitACausalityViolation) {
  // 20 random schedules x 3 shards. For each: the adaptive run must
  // deliver every post exactly at its requested time (a late delivery
  // would mean a widened window admitted a post into a receiver's past —
  // the sharded core would throw, but the exactness check also rules out
  // silent clamping), in nondecreasing order per receiver, and produce
  // the identical delivery sequence to the conservative oracle.
  const std::size_t kShards = 3;
  std::uint64_t skipped_total = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto plans = make_plans(kShards, seed);
    Logs conservative_log(kShards);
    {
      ShardedSimulator sharded(
          adaptive_cfg(kShards, SyncMode::kConservative));
      auto p = plans;
      arm(sharded, p, &conservative_log, /*with_promises=*/false);
      sharded.run();
      EXPECT_EQ(sharded.windows_skipped(), 0u);
    }
    Logs adaptive_log(kShards);
    ShardedSimulator sharded(adaptive_cfg(kShards, SyncMode::kAdaptive));
    arm(sharded, plans, &adaptive_log, /*with_promises=*/true);
    sharded.run();
    skipped_total += sharded.windows_skipped();

    for (std::size_t dst = 0; dst < kShards; ++dst) {
      ASSERT_EQ(adaptive_log[dst].size(), conservative_log[dst].size())
          << "seed " << seed << " dst " << dst;
      double last = 0.0;
      for (std::size_t i = 0; i < adaptive_log[dst].size(); ++i) {
        const Delivery& d = adaptive_log[dst][i];
        EXPECT_EQ(d.receiver_now, d.posted)
            << "seed " << seed << " dst " << dst << " post " << i;
        EXPECT_GE(d.receiver_now, last)
            << "seed " << seed << " dst " << dst << " post " << i;
        last = d.receiver_now;
        EXPECT_TRUE(d == conservative_log[dst][i])
            << "seed " << seed << " dst " << dst << " post " << i;
      }
    }
  }
  // The idle troughs really were skipped somewhere across the seeds.
  EXPECT_GT(skipped_total, 0u);
}

TEST(SyncAdaptive, EmptyWindowSkippingIsIdempotentUnderPausing) {
  // `run_to` slicing must leave the widened-window trajectory — and with
  // it every skip decision — exactly where the unsliced run put it: the
  // delivery log, the dispatch count, and the skipped-window estimate all
  // match bit for bit. This is the sim-level half of checkpoint/resume
  // idempotence.
  const std::size_t kShards = 3;
  for (std::uint64_t seed = 21; seed <= 25; ++seed) {
    auto plans = make_plans(kShards, seed);
    Logs unsliced_log(kShards);
    std::uint64_t unsliced_events = 0;
    std::uint64_t unsliced_skipped = 0;
    {
      ShardedSimulator sharded(adaptive_cfg(kShards, SyncMode::kAdaptive));
      auto p = plans;
      arm(sharded, p, &unsliced_log, /*with_promises=*/true);
      sharded.run();
      unsliced_events = sharded.dispatched();
      unsliced_skipped = sharded.windows_skipped();
    }
    Logs sliced_log(kShards);
    ShardedSimulator sharded(adaptive_cfg(kShards, SyncMode::kAdaptive));
    arm(sharded, plans, &sliced_log, /*with_promises=*/true);
    for (double mark = 0.5; sharded.pending_regular() > 0; mark += 0.5) {
      sharded.run_to(mark);
    }
    sharded.run();
    EXPECT_EQ(sharded.dispatched(), unsliced_events) << "seed " << seed;
    EXPECT_EQ(sharded.windows_skipped(), unsliced_skipped) << "seed " << seed;
    for (std::size_t dst = 0; dst < kShards; ++dst) {
      ASSERT_EQ(sliced_log[dst].size(), unsliced_log[dst].size())
          << "seed " << seed << " dst " << dst;
      for (std::size_t i = 0; i < sliced_log[dst].size(); ++i) {
        EXPECT_TRUE(sliced_log[dst][i] == unsliced_log[dst][i])
            << "seed " << seed << " dst " << dst << " post " << i;
      }
    }
  }
}

TEST(SyncAdaptive, CampaignResumeReproducesSkippingBitwise) {
  // Campaign-level half: an adaptive multi-shard run with checkpoints
  // resumed from a mid-campaign blob reproduces the uninterrupted run —
  // results AND the window-skipping telemetry the promises drove.
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 2;
  cfg.groups = 4;
  cfg.rounds = 2;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 400.0;
  cfg.ramp_secs = 1.0;
  cfg.seed = 77;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 0.5;
  cfg.middle_fanin = 4;
  cfg.sync_mode = lifl::sim::SyncMode::kAdaptive;
  cfg.checkpoint_every_secs = 0.5;

  std::vector<std::vector<std::uint8_t>> blobs;
  auto ref_cfg = cfg;
  ref_cfg.on_checkpoint = [&blobs](const std::vector<std::uint8_t>& blob,
                                   std::uint32_t, double) {
    blobs.push_back(blob);
  };
  const auto reference = sys::run_sharded_campaign(ref_cfg);
  EXPECT_GT(reference.windows_skipped, 0u);
  ASSERT_GE(blobs.size(), 2u);

  auto res_cfg = cfg;
  res_cfg.resume_blob = &blobs[blobs.size() / 2];
  const auto resumed = sys::run_sharded_campaign(res_cfg);

  ASSERT_EQ(resumed.round_completed_at.size(),
            reference.round_completed_at.size());
  for (std::size_t r = 0; r < reference.round_completed_at.size(); ++r) {
    EXPECT_EQ(resumed.round_started_at[r], reference.round_started_at[r]);
    EXPECT_EQ(resumed.round_completed_at[r], reference.round_completed_at[r]);
    EXPECT_EQ(resumed.round_samples[r], reference.round_samples[r]);
    EXPECT_EQ(resumed.round_weight[r], reference.round_weight[r]);
  }
  for (std::size_t g = 0; g < reference.groups.size(); ++g) {
    EXPECT_EQ(resumed.groups[g].uploads, reference.groups[g].uploads);
    EXPECT_EQ(resumed.groups[g].pool_pushed, reference.groups[g].pool_pushed);
    EXPECT_EQ(resumed.groups[g].cpu_cycles, reference.groups[g].cpu_cycles);
  }
  EXPECT_EQ(resumed.events, reference.events);
  EXPECT_EQ(resumed.sim_secs, reference.sim_secs);
  EXPECT_EQ(resumed.checkpoint_marks, reference.checkpoint_marks);
}

}  // namespace
