// Asynchronous campaign mode (HierarchyMode::kAsync): FedBuff buffers that
// seal on count or deadline, FedAsync staleness-weighted folding, and the
// recurring top's version cadence.
//
// The determinism claims are the same as for the synchronous modes and are
// checked the same way: bitwise equality (exact ==, not tolerance) of every
// per-version and per-group statistic between 1 shard and LIFL_TEST_SHARDS
// shards, and between an uninterrupted run and a run crashed mid-buffer and
// resumed from its snapshot blob.

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "src/systems/sharded_campaign.hpp"

namespace {

namespace sys = lifl::sys;

std::size_t env_shards() {
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    return std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  return 2;
}

/// A small async campaign with 30% stragglers arriving 10 s late — long
/// enough past the 2 s seal deadline that partial leaf buffers really are
/// force-sealed while the stragglers are still in flight.
sys::ShardedCampaignConfig async_campaign(std::size_t shards) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 3;  // model versions, not barriers
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 280.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 6.0;
  cfg.seed = 77;
  cfg.hierarchy = sys::HierarchyMode::kAsync;
  cfg.replan_interval_secs = 0.5;
  cfg.middle_fanin = 4;
  cfg.async_deadline_secs = 2.0;
  cfg.straggler_fraction = 0.3;
  cfg.straggler_delay_secs = 10.0;
  return cfg;
}

void expect_identical(const sys::ShardedCampaignResult& a,
                      const sys::ShardedCampaignResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.round_started_at.size(), b.round_started_at.size()) << what;
  for (std::size_t v = 0; v < a.round_started_at.size(); ++v) {
    // EXPECT_EQ on doubles is exact ==: the claim is bitwise, not ULP.
    EXPECT_EQ(a.round_started_at[v], b.round_started_at[v])
        << what << " version " << v + 1;
    EXPECT_EQ(a.round_completed_at[v], b.round_completed_at[v])
        << what << " version " << v + 1;
    EXPECT_EQ(a.round_samples[v], b.round_samples[v])
        << what << " version " << v + 1;
    EXPECT_EQ(a.round_weight[v], b.round_weight[v])
        << what << " version " << v + 1;
    EXPECT_EQ(a.round_spawned[v], b.round_spawned[v])
        << what << " version " << v + 1;
    EXPECT_EQ(a.round_reused[v], b.round_reused[v])
        << what << " version " << v + 1;
  }
  EXPECT_EQ(a.spawned_total, b.spawned_total) << what;
  EXPECT_EQ(a.reused_total, b.reused_total) << what;
  EXPECT_EQ(a.replans, b.replans) << what;
  EXPECT_EQ(a.leaf_drains, b.leaf_drains) << what;
  EXPECT_EQ(a.peak_leaves, b.peak_leaves) << what;
  EXPECT_EQ(a.checkpoint_marks, b.checkpoint_marks) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.sim_secs, b.sim_secs) << what;
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].uploads, b.groups[g].uploads) << what << " g" << g;
    EXPECT_EQ(a.groups[g].pool_pushed, b.groups[g].pool_pushed)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].gateway_busy_secs, b.groups[g].gateway_busy_secs)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].gateway_wait_secs, b.groups[g].gateway_wait_secs)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].cpu_cycles, b.groups[g].cpu_cycles)
        << what << " g" << g;
  }
}

// ---------------------------------------------------------------- cadence

TEST(AsyncCampaign, StreamCompletesWithVersionCadence) {
  const auto cfg = async_campaign(1);
  const auto r = sys::run_sharded_campaign(cfg);

  // One entry per emitted model version; the buffer quota is
  // uploads_per_round(), so the stream yields exactly `rounds` versions
  // when no buffer overshoots (relay flushes can straddle a quota, in
  // which case versions merge — never multiply).
  ASSERT_GE(r.round_started_at.size(), 1u);
  ASSERT_LE(r.round_started_at.size(), cfg.rounds);

  // Every launched update folds exactly once: raw sample mass is exactly
  // the population draw, and version completion times are increasing.
  std::uint64_t uploads = 0;
  for (const auto& g : r.groups) uploads += g.uploads;
  EXPECT_EQ(uploads, cfg.uploads_per_round() * cfg.rounds);
  for (std::size_t v = 1; v < r.round_completed_at.size(); ++v) {
    EXPECT_GT(r.round_completed_at[v], r.round_completed_at[v - 1]);
  }

  // Staleness weighting really engaged: the effective (discounted) weight
  // of the stream is strictly below the raw sample mass, but positive.
  const double weight = std::accumulate(r.round_weight.begin(),
                                        r.round_weight.end(), 0.0);
  double samples = 0.0;
  for (const std::uint64_t s : r.round_samples) {
    samples += static_cast<double>(s);
  }
  EXPECT_GT(weight, 0.0);
  EXPECT_LT(weight, samples);

  // Zero steady-state churn: all spawns happen while the initial fleet
  // ramps (attributed to the first version entry), none after.
  for (std::size_t v = 1; v < r.round_spawned.size(); ++v) {
    EXPECT_EQ(r.round_spawned[v], 0u) << "version " << v + 1;
  }
}

// ---------------------------------------------- seal on count vs deadline

TEST(AsyncCampaign, SealsOnCountWithoutDeadline) {
  // No stragglers, no deadline, no re-planning: every leaf buffer fills to
  // its claimed batch and seals on count — nothing is ever force-sealed.
  auto cfg = async_campaign(1);
  cfg.straggler_fraction = 0.0;
  cfg.async_deadline_secs = 0.0;
  cfg.replan_interval_secs = 0.0;  // isolate drains = forced seals
  const auto r = sys::run_sharded_campaign(cfg);
  EXPECT_EQ(r.leaf_drains, 0u);
  ASSERT_FALSE(r.round_completed_at.empty());
}

TEST(AsyncCampaign, SealsOnDeadlineUnderStragglers) {
  // 30% stragglers pin partial buffers for 10 s; the 2 s deadline must
  // force-seal them (drains > 0), where the identical run without a
  // deadline can only ever seal on count (drains == 0). Force-sealing is
  // lossless: both runs fold the identical raw sample mass.
  auto with_deadline = async_campaign(1);
  with_deadline.replan_interval_secs = 0.0;
  auto without_deadline = with_deadline;
  without_deadline.async_deadline_secs = 0.0;

  const auto a = sys::run_sharded_campaign(with_deadline);
  const auto b = sys::run_sharded_campaign(without_deadline);
  EXPECT_GT(a.leaf_drains, 0u);
  EXPECT_EQ(b.leaf_drains, 0u);
  ASSERT_FALSE(a.round_completed_at.empty());
  ASSERT_FALSE(b.round_completed_at.empty());
  const auto mass = [](const sys::ShardedCampaignResult& r) {
    std::uint64_t samples = 0;
    for (const std::uint64_t s : r.round_samples) samples += s;
    return samples;
  };
  EXPECT_EQ(mass(a), mass(b));
}

// ------------------------------------------------------ shard equivalence

TEST(AsyncCampaign, BitwiseIdenticalAcrossShardCounts) {
  const auto one = sys::run_sharded_campaign(async_campaign(1));
  const auto many = sys::run_sharded_campaign(async_campaign(env_shards()));
  expect_identical(one, many,
                   "1 vs " + std::to_string(env_shards()) + " shards");
}

// ------------------------------------------------- crash-anywhere resume

TEST(AsyncCampaign, CheckpointResumeMidBufferIsBitwise) {
  // Reference run with snapshots every simulated second: marks land while
  // leaf buffers are partially filled and versions are mid-cadence. Crash
  // at several cut points and resume; async blobs always cut at the stream
  // start (round 1) and replay the prefix, so every resumed run must be
  // bitwise identical to the uninterrupted one.
  auto base = async_campaign(1);
  base.checkpoint_every_secs = 1.0;

  struct Blob {
    std::vector<std::uint8_t> bytes;
    std::uint32_t round = 0;
    double mark = 0.0;
  };
  std::vector<Blob> blobs;
  auto with_sink = base;
  with_sink.on_checkpoint = [&blobs](const std::vector<std::uint8_t>& bytes,
                                     std::uint32_t round, double mark) {
    blobs.push_back(Blob{bytes, round, mark});
  };
  const auto reference = sys::run_sharded_campaign(with_sink);
  ASSERT_GE(blobs.size(), 3u) << "stream too short for the cut family";

  const std::size_t cuts = 4;
  for (std::size_t i = 0; i < cuts; ++i) {
    const std::size_t pick = i * (blobs.size() - 1) / (cuts - 1);
    const Blob& blob = blobs[pick];
    EXPECT_EQ(blob.round, 1u) << "async cuts always at the stream boundary";
    auto cfg = base;
    cfg.resume_blob = &blob.bytes;
    const auto resumed = sys::run_sharded_campaign(cfg);
    expect_identical(reference, resumed,
                     "cut at mark " + std::to_string(blob.mark));
    // A resumed process re-emits only the blobs past its cut.
    std::size_t after = 0;
    for (const Blob& b : blobs) {
      if (b.mark > blob.mark) ++after;
    }
    EXPECT_EQ(resumed.checkpoints_written, after);
  }
}

// --------------------------------------------------------- auto-quota

TEST(AsyncCampaign, AutoQuotaShrinksUnderStaleness) {
  // 30% stragglers folding 10 s late drag every version's effective/raw
  // weight ratio below 1; the auto-tuner must shrink the fold quota
  // (fresher, smaller versions) while folding the identical sample mass.
  auto tuned = async_campaign(1);
  tuned.async_auto_quota = true;
  const auto a = sys::run_sharded_campaign(tuned);
  const auto b = sys::run_sharded_campaign(async_campaign(1));

  EXPECT_GT(a.quota_adjustments, 0u);
  EXPECT_LT(a.async_quota_final, tuned.uploads_per_round());
  EXPECT_GE(a.async_quota_final, tuned.uploads_per_round() / 4);  // clamp
  EXPECT_EQ(b.quota_adjustments, 0u);
  EXPECT_EQ(b.async_quota_final, tuned.uploads_per_round());
  // Shrinking the quota re-buckets versions, it never drops samples.
  const auto mass = [](const sys::ShardedCampaignResult& r) {
    std::uint64_t samples = 0;
    for (const std::uint64_t s : r.round_samples) samples += s;
    return samples;
  };
  EXPECT_EQ(mass(a), mass(b));
}

TEST(AsyncCampaign, AutoQuotaRespectsTheMinClamp) {
  // Pinning the lower clamp at the full quota makes the tuner a no-op even
  // under heavy staleness.
  auto pinned = async_campaign(1);
  pinned.async_auto_quota = true;
  pinned.async_min_quota = pinned.uploads_per_round();
  const auto r = sys::run_sharded_campaign(pinned);
  EXPECT_EQ(r.quota_adjustments, 0u);
  EXPECT_EQ(r.async_quota_final, pinned.uploads_per_round());
}

TEST(AsyncCampaign, AutoQuotaIsShardInvariant) {
  auto base = async_campaign(1);
  base.async_auto_quota = true;
  const auto one = sys::run_sharded_campaign(base);
  auto multi = base;
  multi.shards = env_shards();
  const auto many = sys::run_sharded_campaign(multi);
  EXPECT_GT(one.quota_adjustments, 0u);
  EXPECT_EQ(one.quota_adjustments, many.quota_adjustments);
  EXPECT_EQ(one.async_quota_final, many.async_quota_final);
  expect_identical(one, many,
                   "auto-quota, 1 vs " + std::to_string(multi.shards) +
                       " shards");
}

}  // namespace
