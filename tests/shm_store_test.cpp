// Unit tests for the shared-memory object store and object keys (§4.1).

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "src/ml/tensor.hpp"
#include "src/shm/object_key.hpp"
#include "src/shm/object_store.hpp"

namespace lifl::shm {
namespace {

ObjectStore make_store() { return ObjectStore(sim::Rng(42)); }

TEST(ObjectKey, DefaultIsNull) {
  ObjectKey k;
  EXPECT_TRUE(k.is_null());
}

TEST(ObjectKey, GeneratedIsNotNull) {
  sim::Rng rng(1);
  EXPECT_FALSE(ObjectKey::generate(rng).is_null());
}

TEST(ObjectKey, HexIs32Chars) {
  sim::Rng rng(1);
  EXPECT_EQ(ObjectKey::generate(rng).to_hex().size(), 32u);
}

TEST(ObjectKey, EqualityAndHashConsistent) {
  sim::Rng rng(1);
  const ObjectKey a = ObjectKey::generate(rng);
  const ObjectKey b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ObjectKey, TenThousandKeysAreDistinct) {
  sim::Rng rng(7);
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(ObjectKey::generate(rng).to_hex());
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(ObjectStore, PutThenGetReturnsSameObject) {
  auto store = make_store();
  auto t = std::make_shared<const ml::Tensor>(16, 1.5f);
  const ObjectKey key = store.put<ml::Tensor>(t, 64);
  const auto got = store.get<ml::Tensor>(key);
  EXPECT_EQ(got.get(), t.get());  // zero copy: same underlying object
}

TEST(ObjectStore, ContainsAndSize) {
  auto store = make_store();
  const ObjectKey key = store.put_logical(100);
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.size_of(key), 100u);
}

TEST(ObjectStore, GetUnknownKeyThrows) {
  auto store = make_store();
  ObjectKey bogus;
  EXPECT_THROW(store.get<ml::Tensor>(bogus), std::out_of_range);
  EXPECT_THROW(store.size_of(bogus), std::out_of_range);
}

TEST(ObjectStore, ReleaseToZeroRemovesObject) {
  auto store = make_store();
  const ObjectKey key = store.put_logical(100);
  store.release(key);
  EXPECT_FALSE(store.contains(key));
  EXPECT_THROW(store.release(key), std::out_of_range);
}

TEST(ObjectStore, MultipleRefsSurviveRelease) {
  auto store = make_store();
  const ObjectKey key = store.put_logical(100, /*refs=*/3);
  store.release(key);
  store.release(key);
  EXPECT_TRUE(store.contains(key));
  store.release(key);
  EXPECT_FALSE(store.contains(key));
}

TEST(ObjectStore, AddRefsExtendsLifetime) {
  auto store = make_store();
  const ObjectKey key = store.put_logical(100, 1);
  store.add_refs(key, 1);
  store.release(key);
  EXPECT_TRUE(store.contains(key));
  store.release(key);
  EXPECT_FALSE(store.contains(key));
}

TEST(ObjectStore, ZeroRefsPutThrows) {
  auto store = make_store();
  EXPECT_THROW(store.put_logical(10, 0), std::invalid_argument);
}

TEST(ObjectStore, BytesInUseTracksLiveObjects) {
  auto store = make_store();
  const ObjectKey a = store.put_logical(100);
  const ObjectKey b = store.put_logical(50);
  EXPECT_EQ(store.stats().bytes_in_use, 150u);
  store.release(a);
  EXPECT_EQ(store.stats().bytes_in_use, 50u);
  store.release(b);
  EXPECT_EQ(store.stats().bytes_in_use, 0u);
}

TEST(ObjectStore, PeakBytesIsHighWaterMark) {
  auto store = make_store();
  const ObjectKey a = store.put_logical(100);
  store.release(a);
  const ObjectKey b = store.put_logical(30);
  EXPECT_EQ(store.stats().peak_bytes, 100u);
  store.release(b);
}

TEST(ObjectStore, ReleasedBuffersAreRecycled) {
  auto store = make_store();
  const ObjectKey a = store.put_logical(100);
  store.release(a);  // 100 bytes go to the pool
  EXPECT_EQ(store.stats().pool_bytes, 100u);
  store.put_logical(80);  // served from the pool
  EXPECT_EQ(store.stats().recycled_buffers, 1u);
  EXPECT_EQ(store.stats().pool_bytes, 20u);
}

TEST(ObjectStore, PoolIsBounded) {
  ObjectStore store{sim::Rng(42), /*pool_capacity_bytes=*/100};
  const ObjectKey a = store.put_logical(500);
  store.release(a);
  EXPECT_EQ(store.stats().pool_bytes, 100u);
}

TEST(ObjectStore, StatsCountOperations) {
  auto store = make_store();
  const ObjectKey a = store.put_logical(10);
  (void)store.get<int>(a);
  (void)store.get<int>(a);
  store.release(a);
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().gets, 2u);
  EXPECT_EQ(store.stats().releases, 1u);
}

TEST(ObjectStore, ImmutableObjectsAreConst) {
  // The store only hands out shared_ptr<const T>: sharing without locks.
  auto store = make_store();
  auto t = std::make_shared<const ml::Tensor>(4, 2.0f);
  const ObjectKey key = store.put<ml::Tensor>(t, 16);
  auto got = store.get<ml::Tensor>(key);
  static_assert(
      std::is_const_v<std::remove_reference_t<decltype(*got)>>,
      "object store must only expose immutable views");
  store.release(key);
}

TEST(ObjectStore, ManyObjectsIndependentLifetimes) {
  auto store = make_store();
  std::vector<ObjectKey> keys;
  for (int i = 0; i < 100; ++i) keys.push_back(store.put_logical(10 + i));
  EXPECT_EQ(store.size(), 100u);
  for (int i = 0; i < 100; i += 2) store.release(keys[i]);
  EXPECT_EQ(store.size(), 50u);
  for (int i = 1; i < 100; i += 2) EXPECT_TRUE(store.contains(keys[i]));
}

}  // namespace
}  // namespace lifl::shm
