// Integration tests for the data plane: transfer latency/CPU ordering across
// the three architectures (the relations behind Fig. 7 and Fig. 13),
// routing, gateway behavior, shm leases and idle-cost accounting.

#include <gtest/gtest.h>

#include <memory>

#include "src/dataplane/dataplane.hpp"
#include "src/dataplane/probe.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/calibration.hpp"

namespace lifl::dp {
namespace {

namespace calib = sim::calib;

struct World {
  sim::Simulator sim;
  sim::Cluster cluster;
  DataPlane plane;

  explicit World(DataPlaneConfig cfg, std::size_t nodes = 2)
      : cluster(sim, nodes), plane(cluster, cfg, sim::Rng(42)) {}
};

double intra_latency(DataPlaneConfig cfg, std::size_t bytes) {
  World w(cfg);
  double latency = -1;
  measure_transfer(w.plane, 0, 0, bytes, [&](double l) { latency = l; });
  w.sim.run();
  return latency;
}

double inter_latency(DataPlaneConfig cfg, std::size_t bytes) {
  World w(cfg);
  double latency = -1;
  measure_transfer(w.plane, 0, 1, bytes, [&](double l) { latency = l; });
  w.sim.run();
  return latency;
}

double intra_cpu_gcycles(DataPlaneConfig cfg, std::size_t bytes) {
  World w(cfg);
  measure_transfer(w.plane, 0, 0, bytes, nullptr);
  w.sim.run();
  w.plane.settle_idle_costs();
  return w.cluster.total_cpu().total_cycles() / 1e9;
}

// ---- Fig. 7(a) anchor points: LIFL intra-node transfer latency.
TEST(DataPlaneLatency, LiflResNet152MatchesPaperAnchor) {
  const double l = intra_latency(lifl_plane(), fl::models::resnet152().bytes());
  EXPECT_NEAR(l, 0.76, 0.08);  // paper: 0.76 s
}

TEST(DataPlaneLatency, LiflResNet18MatchesPaperAnchor) {
  const double l = intra_latency(lifl_plane(), fl::models::resnet18().bytes());
  EXPECT_NEAR(l, 0.14, 0.04);  // paper: 0.14 s
}

TEST(DataPlaneLatency, LiflResNet34MatchesPaperAnchor) {
  const double l = intra_latency(lifl_plane(), fl::models::resnet34().bytes());
  EXPECT_NEAR(l, 0.25, 0.06);  // paper: 0.25 s
}

// ---- Fig. 7(a) relations: SL ~ 2x SF and ~ 6x LIFL; SF ~ 3x LIFL.
class PlaneLatencyOrdering : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlaneLatencyOrdering, ServerlessWorstLiflBest) {
  const std::size_t bytes = GetParam();
  const double lifl = intra_latency(lifl_plane(), bytes);
  const double sf = intra_latency(serverful_plane(), bytes);
  const double sl = intra_latency(serverless_plane(), bytes);
  EXPECT_LT(lifl, sf);
  EXPECT_LT(sf, sl);
  EXPECT_NEAR(sf / lifl, 3.0, 0.8);   // paper: ~3x
  EXPECT_NEAR(sl / lifl, 6.0, 1.5);   // paper: ~5.8-6x
  EXPECT_NEAR(sl / sf, 2.0, 0.5);     // paper: ~2x
}

INSTANTIATE_TEST_SUITE_P(Models, PlaneLatencyOrdering,
                         ::testing::Values(fl::models::resnet18().bytes(),
                                           fl::models::resnet34().bytes(),
                                           fl::models::resnet152().bytes()));

// ---- Fig. 7(b): CPU ordering matches latency ordering.
TEST(DataPlaneCpu, OrderingLiflServerfulServerless) {
  const std::size_t bytes = fl::models::resnet152().bytes();
  const double lifl = intra_cpu_gcycles(lifl_plane(), bytes);
  const double sf = intra_cpu_gcycles(serverful_plane(), bytes);
  const double sl = intra_cpu_gcycles(serverless_plane(), bytes);
  EXPECT_LT(lifl, sf);
  EXPECT_LT(sf, sl);
  // LIFL's measured transfer cost for ResNet-152 is ~2.45 Gcycles in the
  // paper; ours must be in the same regime (within ~2x).
  EXPECT_GT(lifl, 1.2);
  EXPECT_LT(lifl, 4.9);
}

// ---- §6.1: cross-node ResNet-152 transfer ~4.2 s on LIFL's plane.
TEST(DataPlaneLatency, InterNodeResNet152MatchesPaperAnchor) {
  const double l = inter_latency(lifl_plane(), fl::models::resnet152().bytes());
  EXPECT_NEAR(l, 4.2, 0.5);
}

TEST(DataPlaneLatency, InterNodeCostsMoreThanIntraNode) {
  for (const auto cfg :
       {lifl_plane(), serverful_plane(), serverless_plane()}) {
    const std::size_t bytes = fl::models::resnet18().bytes();
    EXPECT_LT(intra_latency(cfg, bytes), inter_latency(cfg, bytes));
  }
}

TEST(DataPlaneLatency, LatencyMonotonicInBytes) {
  for (const auto cfg :
       {lifl_plane(), serverful_plane(), serverless_plane()}) {
    double prev = 0.0;
    for (const std::size_t mb : {1, 10, 50, 100, 200}) {
      const double l = intra_latency(cfg, mb * 1000000ull);
      EXPECT_GT(l, prev);
      prev = l;
    }
  }
}

// ---- Contention: concurrent kernel transfers slow each other (Fig. 4),
// while LIFL's shm path does not contend on the kernel stack.
TEST(DataPlaneContention, KernelTransfersContend) {
  const std::size_t bytes = fl::models::resnet152().bytes();
  auto run_n = [&](DataPlaneConfig cfg, int n) {
    World w(cfg);
    int remaining = n;
    double last = 0;
    for (int i = 0; i < n; ++i) {
      measure_transfer(w.plane, 0, 0, bytes,
                       [&](double) {
                         last = w.sim.now();
                         --remaining;
                       },
                       900000 + 10 * i);
    }
    w.sim.run();
    EXPECT_EQ(remaining, 0);
    return last;
  };
  const double sf_1 = run_n(serverful_plane(), 1);
  const double sf_8 = run_n(serverful_plane(), 8);
  // 8 concurrent kernel transfers through a 2-core kernel budget: heavy
  // slowdown (near-serialized kernel work).
  EXPECT_GT(sf_8, sf_1 * 2.0);

  const double lifl_1 = run_n(lifl_plane(), 1);
  const double lifl_8 = run_n(lifl_plane(), 8);
  // The shm path's only kernel work is the tiny SKMSG notify: the slowdown
  // must be far smaller than the kernel plane's.
  EXPECT_LT(lifl_8 / lifl_1, sf_8 / sf_1);
}

// ---- Routing.
TEST(DataPlaneRouting, RegisterLookupUnregister) {
  World w(lifl_plane());
  bool delivered = false;
  w.plane.register_consumer(5, 1, [&](fl::ModelUpdate) { delivered = true; });
  EXPECT_EQ(w.plane.node_of(5), std::make_optional<sim::NodeId>(1));
  // Sockmap on node 1 holds the socket; node 0's gateway table routes to 1.
  EXPECT_NE(w.plane.env(1).sockmap.lookup(5), nullptr);
  EXPECT_EQ(w.plane.env(0).remote_routes.lookup(5),
            std::make_optional<sim::NodeId>(1));
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 1000;
  w.plane.send(4, 0, 5, u);
  w.sim.run();
  EXPECT_TRUE(delivered);

  w.plane.unregister_consumer(5);
  EXPECT_FALSE(w.plane.node_of(5).has_value());
  EXPECT_EQ(w.plane.env(1).sockmap.lookup(5), nullptr);
  EXPECT_FALSE(w.plane.env(0).remote_routes.lookup(5).has_value());
}

TEST(DataPlaneRouting, SendToUnknownConsumerThrows) {
  World w(lifl_plane());
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 10;
  EXPECT_THROW(w.plane.send(1, 0, 999, u), std::invalid_argument);
}

TEST(DataPlaneRouting, MidFlightUnregisterFallsBackToPool) {
  World w(lifl_plane());
  w.plane.register_consumer(5, 0, [](fl::ModelUpdate) { FAIL(); });
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 50'000'000;
  w.plane.send(4, 0, 5, u);
  w.plane.unregister_consumer(5);  // disappears while the transfer is in flight
  w.sim.run();
  EXPECT_EQ(w.plane.env(0).pool.depth(), 1u);
}

// ---- Shared-memory behavior of the LIFL plane.
TEST(DataPlaneShm, UploadLandsInStoreAndLeaseReleases) {
  World w(lifl_plane());
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 1000;
  w.plane.client_upload(0, u, 1e9);
  w.sim.run();
  auto& store = w.plane.env(0).store;
  EXPECT_EQ(store.size(), 1u);  // the update sits in shm, queued in place
  {
    fl::ModelUpdate got;
    ASSERT_TRUE(w.plane.env(0).pool.try_pop(got));
    EXPECT_EQ(store.size(), 1u);
  }  // consumer dropped the update => lease released => buffer recycled
  EXPECT_EQ(store.size(), 0u);
  EXPECT_GE(store.stats().pool_bytes, 1000u);
}

TEST(DataPlaneShm, KernelPlanesDoNotTouchStore) {
  World w(serverful_plane());
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 1000;
  w.plane.client_upload(0, u, 1e9);
  w.sim.run();
  EXPECT_EQ(w.plane.env(0).store.size(), 0u);
  EXPECT_EQ(w.plane.env(0).pool.depth(), 1u);
}

TEST(DataPlaneShm, InterNodeSendRematerializesAtDestination) {
  World w(lifl_plane());
  bool delivered = false;
  w.plane.register_consumer(5, 1, [&](fl::ModelUpdate got) {
    delivered = true;
    EXPECT_TRUE(got.lease);
  });
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 1000;
  w.plane.send(4, 0, 5, u);
  w.sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(w.plane.inter_node_bytes(), 1000u);
}

// ---- Broker bookkeeping and always-on costs (serverless plane).
TEST(DataPlaneBroker, BrokerBuffersWholePayloads) {
  World w(serverless_plane());
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 5000;
  w.plane.client_upload(0, u, 1e9);
  w.sim.run();
  EXPECT_EQ(w.plane.env(0).broker.messages(), 1u);
  EXPECT_EQ(w.plane.env(0).broker.total_bytes(), 5000u);
  // The payload rests in the broker's buffers until a consumer drains it —
  // unlike LIFL's in-place queuing, the broker holds whole payloads.
  EXPECT_EQ(w.plane.env(0).broker.bytes_buffered(), 5000u);
  EXPECT_EQ(w.plane.env(0).broker.peak_bytes(), 5000u);

  // Consuming the queued update is a broker delivery: it drains the buffer.
  fl::ModelUpdate queued;
  ASSERT_TRUE(w.plane.env(0).pool.try_pop(queued));
  bool delivered = false;
  w.plane.consume(0, queued, [&] { delivered = true; });
  w.sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(w.plane.env(0).broker.bytes_buffered(), 0u);
}

TEST(DataPlaneBroker, BrokerIdleDrawAccrues) {
  World w(serverless_plane());
  w.sim.run_until(100.0);
  w.plane.settle_idle_costs();
  const double broker_cycles =
      w.cluster.node(0).cpu().cycles(sim::CostTag::kBroker);
  // 100 s of always-on broker draw on node 0.
  EXPECT_NEAR(broker_cycles,
              100.0 * calib::kBrokerIdleCores * calib::kCpuHz,
              1e6);
}

TEST(DataPlaneBroker, LiflPlaneHasNoBrokerDraw) {
  World w(lifl_plane());
  w.sim.run_until(100.0);
  w.plane.settle_idle_costs();
  EXPECT_DOUBLE_EQ(w.cluster.node(0).cpu().cycles(sim::CostTag::kBroker), 0.0);
}

TEST(DataPlaneIdle, RegisterAndRemoveDrawBillsElapsed) {
  World w(lifl_plane());
  const IdleHandle h =
      w.plane.register_idle_draw(0, sim::CostTag::kSidecarContainer, 0.5);
  w.sim.run_until(10.0);
  w.plane.remove_idle_draw(h);
  EXPECT_NEAR(w.cluster.node(0).cpu().cycles(sim::CostTag::kSidecarContainer),
              10.0 * 0.5 * calib::kCpuHz, 1e6);
  // No further accrual after removal.
  w.sim.run_until(20.0);
  w.plane.settle_idle_costs();
  EXPECT_NEAR(w.cluster.node(0).cpu().cycles(sim::CostTag::kSidecarContainer),
              10.0 * 0.5 * calib::kCpuHz, 1e6);
}

// ---- eBPF sidecar: event-driven metrics, zero idle cost (§4.3).
TEST(DataPlaneSidecar, EbpfSidecarWritesMetricsOnSend) {
  World w(lifl_plane());
  w.plane.register_consumer(5, 0, [](fl::ModelUpdate) {});
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = 777;
  w.plane.send(4, 0, 5, u);
  w.sim.run();
  EXPECT_EQ(w.plane.env(0).metrics.get(metric_keys::kSends), 1.0);
  EXPECT_EQ(w.plane.env(0).metrics.get(metric_keys::kSendBytes), 777.0);
}

TEST(DataPlaneSidecar, EbpfSidecarCostsNothingWhenIdle) {
  World w(lifl_plane());
  w.sim.run_until(1000.0);
  w.plane.settle_idle_costs();
  EXPECT_DOUBLE_EQ(
      w.cluster.node(0).cpu().cycles(sim::CostTag::kSidecarEbpf), 0.0);
}

TEST(DataPlaneSidecar, RecordAggExecFeedsMetricsMap) {
  World w(lifl_plane());
  w.plane.record_agg_exec(0, 0.25);
  w.plane.record_agg_exec(0, 0.35);
  EXPECT_NEAR(w.plane.env(0).metrics.get(metric_keys::kAggExecSum), 0.6,
              1e-12);
  EXPECT_EQ(w.plane.env(0).metrics.get(metric_keys::kAggExecCount), 2.0);
}

// ---- Gateway vertical scaling (§4.2).
TEST(DataPlaneGateway, VerticalScalingChangesCapacity) {
  World w(lifl_plane());
  EXPECT_EQ(w.plane.env(0).gateway.capacity(), 2u);
  w.plane.set_gateway_cores(0, 6);
  EXPECT_EQ(w.plane.env(0).gateway.capacity(), 6u);
}

TEST(DataPlaneShm, LeaseOutlivingStoreReleasesSafely) {
  // Regression: a closure parked in a simulator queue at teardown can hold
  // a ModelUpdate whose shm lease outlives the DataPlane. The lease must
  // no-op instead of releasing into a destroyed store.
  fl::ModelUpdate survivor;
  {
    World w(lifl_plane());
    fl::ModelUpdate u;
    u.sample_count = 1;
    u.logical_bytes = 1000;
    w.plane.client_upload(0, u, 1e9);
    w.sim.run();
    ASSERT_TRUE(w.plane.env(0).pool.try_pop(survivor));
    ASSERT_TRUE(survivor.lease);
  }  // plane (and its stores) destroyed here
  survivor = fl::ModelUpdate{};  // must not crash or throw
  SUCCEED();
}

TEST(DataPlaneGateway, MoreGatewayCoresSpeedUpConcurrentIngest) {
  const std::size_t bytes = fl::models::resnet152().bytes();
  auto run_ingest = [&](std::uint32_t cores) {
    World w(lifl_plane());
    w.plane.set_gateway_cores(0, cores);
    for (int i = 0; i < 8; ++i) {
      fl::ModelUpdate u;
      u.sample_count = 1;
      u.logical_bytes = bytes;
      w.plane.client_upload(0, u, 1e12);
    }
    w.sim.run();
    return w.sim.now();
  };
  EXPECT_GT(run_ingest(1), run_ingest(8) * 1.5);
}

}  // namespace
}  // namespace lifl::dp
