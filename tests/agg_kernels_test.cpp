// Unit tests for the fused aggregation-kernel layer (ml::kernels): every
// dispatch level must agree with the scalar reference on every op,
// including non-multiple-of-lane-width tails, and the multi-accumulator
// reductions must stay within double-accumulation error bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/ml/kernels.hpp"
#include "src/ml/tensor.hpp"
#include "src/sim/random.hpp"

namespace lifl::ml::kernels {
namespace {

std::vector<float> random_vec(sim::Rng& rng, std::size_t n, double sd = 1.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, sd));
  return v;
}

/// Sizes that exercise empty, sub-lane, lane-boundary and tail cases for
/// 4/8/16-lane vectorization.
const std::size_t kSizes[] = {0, 1, 3, 4, 7, 8, 15, 16, 17, 63, 64, 65, 1000};

std::vector<Level> available_levels() {
  std::vector<Level> out;
  for (int l = 0; l <= static_cast<int>(max_supported()); ++l) {
    out.push_back(static_cast<Level>(l));
  }
  return out;
}

/// Element-wise closeness: FMA contraction legitimately differs between
/// ISA levels (the baseline ISA has no fma instruction; AVX2/AVX-512 do),
/// so multiply-add ops are compared within a tight relative tolerance.
void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  const char* what, Level level, std::size_t n) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-5f * (1.0f + std::abs(want[i])))
        << what << " level=" << level_name(level) << " n=" << n << " i=" << i;
  }
}

TEST(AggKernels, AllLevelsMatchScalarOnEveryOp) {
  const Ops& ref = ops_for(Level::kScalar);
  for (const Level level : available_levels()) {
    const Ops& ops = ops_for(level);
    for (const std::size_t n : kSizes) {
      sim::Rng rng(17 + static_cast<std::uint64_t>(n));
      const auto x = random_vec(rng, n);
      const auto y = random_vec(rng, n);
      const auto base = random_vec(rng, n);
      const float a = 0.75f, b = -1.25f;

      // fill / scale / scale_into are single-rounding ops: bitwise equal.
      auto got = base, want = base;
      ops.fill(got.data(), 3.5f, n);
      ref.fill(want.data(), 3.5f, n);
      EXPECT_EQ(got, want) << "fill level=" << level_name(level) << " n=" << n;

      got = base;
      want = base;
      ops.scale(got.data(), a, n);
      ref.scale(want.data(), a, n);
      EXPECT_EQ(got, want) << "scale level=" << level_name(level) << " n=" << n;

      got.assign(n, -9.0f);
      want.assign(n, -9.0f);
      ops.scale_into(got.data(), a, x.data(), n);
      ref.scale_into(want.data(), a, x.data(), n);
      EXPECT_EQ(got, want) << "scale_into level=" << level_name(level)
                           << " n=" << n;

      got = base;
      want = base;
      ops.axpy(got.data(), a, x.data(), n);
      ref.axpy(want.data(), a, x.data(), n);
      expect_close(got, want, "axpy", level, n);

      got = base;
      want = base;
      ops.axpby(got.data(), a, b, x.data(), n);
      ref.axpby(want.data(), a, b, x.data(), n);
      expect_close(got, want, "axpby", level, n);

      got = base;
      want = base;
      ops.axpy2(got.data(), a, x.data(), b, y.data(), n);
      ref.axpy2(want.data(), a, x.data(), b, y.data(), n);
      expect_close(got, want, "axpy2", level, n);

      got.assign(n, -9.0f);
      want.assign(n, -9.0f);
      ops.axpby_into(got.data(), a, x.data(), b, y.data(), n);
      ref.axpby_into(want.data(), a, x.data(), b, y.data(), n);
      expect_close(got, want, "axpby_into", level, n);
    }
  }
}

TEST(AggKernels, ReductionsMatchDoubleReferenceEverywhere) {
  for (const Level level : available_levels()) {
    const Ops& ops = ops_for(level);
    for (const std::size_t n : kSizes) {
      sim::Rng rng(31 + static_cast<std::uint64_t>(n));
      const auto x = random_vec(rng, n);
      const auto y = random_vec(rng, n);
      double want_dot = 0.0, want_sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        want_dot += static_cast<double>(x[i]) * static_cast<double>(y[i]);
        want_sq += static_cast<double>(x[i]) * static_cast<double>(x[i]);
      }
      // Multi-accumulator association differs from the serial reference by
      // at most a few double ulps of the running sums.
      const double tol = 1e-9 * (1.0 + std::abs(want_dot) + want_sq);
      EXPECT_NEAR(ops.dot(x.data(), y.data(), n), want_dot, tol)
          << "dot level=" << level_name(level) << " n=" << n;
      EXPECT_NEAR(ops.nrm2(x.data(), n), std::sqrt(want_sq), tol)
          << "nrm2 level=" << level_name(level) << " n=" << n;
    }
  }
}

TEST(AggKernels, FusedFormsEqualTheirUnfusedPairs) {
  // axpby(acc,a,b,x) computes the same per-element expression as
  // scale(acc,a); axpy(acc,b,x) — equal within contraction rounding.
  const Ops& ops = ops_for(max_supported());
  sim::Rng rng(47);
  const std::size_t n = 257;
  const auto x = random_vec(rng, n);
  auto fused = random_vec(rng, n);
  auto paired = fused;
  ops.axpby(fused.data(), 0.625f, 0.25f, x.data(), n);  // exact-scale factors
  ops.scale(paired.data(), 0.625f, n);
  ops.axpy(paired.data(), 0.25f, x.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fused[i], paired[i], 1e-6f * (1.0f + std::abs(paired[i])))
        << i;
  }
}

TEST(AggKernels, SelectClampsToSupportAndReportsLevel) {
  const Level prev = level();
  EXPECT_EQ(select(Level::kScalar), Level::kScalar);
  EXPECT_EQ(level(), Level::kScalar);
  // Requesting more than the CPU has falls back to the best available.
  const Level top = select(Level::kAvx512);
  EXPECT_LE(static_cast<int>(top), static_cast<int>(Level::kAvx512));
  EXPECT_EQ(top, max_supported());
  select(prev);
}

TEST(AggKernels, ParseLevelNamesRoundTrip) {
  Level parsed;
  for (const Level l : {Level::kScalar, Level::kWide, Level::kAvx2,
                        Level::kAvx512}) {
    ASSERT_TRUE(parse_level(level_name(l), parsed)) << level_name(l);
    EXPECT_EQ(parsed, l);
  }
  EXPECT_FALSE(parse_level("sse9", parsed));
  EXPECT_FALSE(parse_level("", parsed));
}

// ---- Tensor delegation (the satellite: dot multi-accumulator + __restrict
// scale/fill land in the kernels layer but keep Tensor semantics).

TEST(AggKernels, TensorOpsDelegateWithSameSemantics) {
  sim::Rng rng(7);
  Tensor a = Tensor::randn(rng, 1003, 1.0f);
  Tensor b = Tensor::randn(rng, 1003, 1.0f);

  double want = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    want += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  EXPECT_NEAR(a.dot(b), want, 1e-9 * (1.0 + std::abs(want)));
  EXPECT_NEAR(a.l2norm(), std::sqrt(a.dot(a)), 1e-12);

  Tensor c = a;
  c.scale(0.5f);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(c[i], a[i] * 0.5f);
  c.fill(2.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[c.size() - 1], 2.0f);

  // Fused axpby == scale-then-axpy (same per-element expression).
  Tensor f1 = a, f2 = a;
  f1.axpby(0.5f, 0.25f, b);
  f2.scale(0.5f);
  f2.axpy(0.25f, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(f1[i], f2[i], 1e-6f * (1.0f + std::abs(f2[i]))) << i;
  }

  EXPECT_THROW(a.dot(Tensor(5)), std::invalid_argument);
  EXPECT_THROW(f1.axpby(1.0f, 1.0f, Tensor(5)), std::invalid_argument);
}

}  // namespace
}  // namespace lifl::ml::kernels
