// Unit and property tests for FedAvg aggregation (Eq. 1): the eager==lazy
// and hierarchical==flat invariants the whole platform relies on.

#include <gtest/gtest.h>

#include <memory>

#include "src/fl/fedavg.hpp"
#include "src/sim/random.hpp"

namespace lifl::fl {
namespace {

std::shared_ptr<const ml::Tensor> tensor_of(std::vector<float> v) {
  ml::Tensor t(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) t[i] = v[i];
  return std::make_shared<const ml::Tensor>(std::move(t));
}

TEST(FedAvg, SingleUpdateIsIdentity) {
  FedAvgAccumulator acc;
  acc.add(tensor_of({1.0f, 2.0f, 3.0f}), 10);
  const auto r = acc.result();
  ASSERT_TRUE(r);
  EXPECT_FLOAT_EQ((*r)[0], 1.0f);
  EXPECT_FLOAT_EQ((*r)[2], 3.0f);
  EXPECT_EQ(acc.total_samples(), 10u);
  EXPECT_EQ(acc.updates_folded(), 1u);
}

TEST(FedAvg, EqualWeightsGiveArithmeticMean) {
  FedAvgAccumulator acc;
  acc.add(tensor_of({0.0f, 4.0f}), 5);
  acc.add(tensor_of({2.0f, 0.0f}), 5);
  const auto r = acc.result();
  EXPECT_NEAR((*r)[0], 1.0f, 1e-6);
  EXPECT_NEAR((*r)[1], 2.0f, 1e-6);
}

TEST(FedAvg, WeightsSkewTheMean) {
  FedAvgAccumulator acc;
  acc.add(tensor_of({0.0f}), 1);
  acc.add(tensor_of({10.0f}), 9);
  EXPECT_NEAR((*acc.result())[0], 9.0f, 1e-5);
}

TEST(FedAvg, ZeroSampleCountThrows) {
  FedAvgAccumulator acc;
  EXPECT_THROW(acc.add(tensor_of({1.0f}), 0), std::invalid_argument);
}

TEST(FedAvg, LogicalOnlyUpdatesTrackWeightAndCount) {
  FedAvgAccumulator acc;
  ModelUpdate u;
  u.sample_count = 600;
  u.logical_bytes = 1000;
  acc.add(u);
  acc.add(u);
  EXPECT_EQ(acc.total_samples(), 1200u);
  EXPECT_EQ(acc.updates_folded(), 2u);
  EXPECT_FALSE(acc.result());
}

TEST(FedAvg, MakeUpdateCarriesAggregateMetadata) {
  FedAvgAccumulator acc;
  acc.add(tensor_of({2.0f}), 30);
  acc.add(tensor_of({4.0f}), 10);
  const ModelUpdate out = acc.make_update(7, 99, 4096);
  EXPECT_EQ(out.model_version, 7u);
  EXPECT_EQ(out.producer, 99u);
  EXPECT_EQ(out.sample_count, 40u);
  EXPECT_EQ(out.updates_folded, 2u);
  EXPECT_EQ(out.logical_bytes, 4096u);
  ASSERT_TRUE(out.tensor);
  EXPECT_NEAR((*out.tensor)[0], 2.5f, 1e-6);
}

TEST(FedAvg, ResetClearsState) {
  FedAvgAccumulator acc;
  acc.add(tensor_of({1.0f}), 5);
  acc.reset();
  EXPECT_EQ(acc.total_samples(), 0u);
  EXPECT_EQ(acc.updates_folded(), 0u);
  EXPECT_FALSE(acc.result());
}

TEST(FedAvg, FoldedUpdatesPropagateCounts) {
  // An intermediate update representing 3 client updates must count as 3.
  FedAvgAccumulator acc;
  ModelUpdate intermediate;
  intermediate.sample_count = 90;
  intermediate.updates_folded = 3;
  intermediate.tensor = tensor_of({6.0f});
  acc.add(intermediate);
  EXPECT_EQ(acc.updates_folded(), 3u);
  EXPECT_EQ(acc.total_samples(), 90u);
}

TEST(FedAvg, BatchAverageMatchesHandComputed) {
  const auto a = tensor_of({1.0f, 0.0f});
  const auto b = tensor_of({0.0f, 1.0f});
  const ml::Tensor avg =
      FedAvgAccumulator::batch_average({{a.get(), 3}, {b.get(), 1}});
  EXPECT_NEAR(avg[0], 0.75f, 1e-6);
  EXPECT_NEAR(avg[1], 0.25f, 1e-6);
}

TEST(FedAvg, SizeMismatchesThrow) {
  const auto a = tensor_of({1.0f, 2.0f});
  const auto b = tensor_of({1.0f});
  EXPECT_THROW(FedAvgAccumulator::batch_average({{a.get(), 1}, {b.get(), 1}}),
               std::invalid_argument);
  FedAvgAccumulator acc;
  acc.add(a, 10);
  EXPECT_THROW(acc.add(b, 10), std::invalid_argument);
}

// ---- Property: eager (cumulative) == lazy (batch), any weights/order.
class FedAvgEagerLazyProperty : public ::testing::TestWithParam<int> {};

TEST_P(FedAvgEagerLazyProperty, CumulativeEqualsBatch) {
  sim::Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_index(20);
  const std::size_t dim = 1 + rng.uniform_index(64);

  std::vector<std::shared_ptr<const ml::Tensor>> tensors;
  std::vector<std::uint64_t> weights;
  for (std::size_t i = 0; i < n; ++i) {
    ml::Tensor t(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      t[j] = static_cast<float>(rng.normal(0.0, 2.0));
    }
    tensors.push_back(std::make_shared<const ml::Tensor>(std::move(t)));
    weights.push_back(1 + rng.uniform_index(1000));
  }

  // Eager: one-at-a-time cumulative averaging (§5.4).
  FedAvgAccumulator eager;
  for (std::size_t i = 0; i < n; ++i) eager.add(tensors[i], weights[i]);

  // Lazy: batch weighted mean.
  std::vector<std::pair<const ml::Tensor*, std::uint64_t>> batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.emplace_back(tensors[i].get(), weights[i]);
  }
  const ml::Tensor lazy = FedAvgAccumulator::batch_average(batch);

  ASSERT_TRUE(eager.result());
  EXPECT_LT(ml::Tensor::max_abs_diff(*eager.result(), lazy), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgEagerLazyProperty,
                         ::testing::Range(1, 21));

// ---- Property: hierarchical aggregation == flat aggregation.
class FedAvgHierarchyProperty : public ::testing::TestWithParam<int> {};

TEST_P(FedAvgHierarchyProperty, TwoLevelEqualsFlat) {
  sim::Rng rng(1000 + GetParam());
  const std::size_t groups = 2 + rng.uniform_index(5);
  const std::size_t dim = 8;

  FedAvgAccumulator top;
  std::vector<std::pair<const ml::Tensor*, std::uint64_t>> flat;
  std::vector<std::shared_ptr<const ml::Tensor>> keep_alive;

  for (std::size_t g = 0; g < groups; ++g) {
    FedAvgAccumulator leaf;
    const std::size_t members = 1 + rng.uniform_index(6);
    for (std::size_t m = 0; m < members; ++m) {
      ml::Tensor t(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        t[j] = static_cast<float>(rng.normal(0.0, 1.0));
      }
      auto sp = std::make_shared<const ml::Tensor>(std::move(t));
      keep_alive.push_back(sp);
      const std::uint64_t w = 1 + rng.uniform_index(500);
      leaf.add(sp, w);
      flat.emplace_back(sp.get(), w);
    }
    // The leaf's intermediate update carries the folded weight, which is
    // exactly what makes the two-level tree equal the flat average.
    top.add(leaf.make_update(1, g, 0));
  }

  const ml::Tensor reference = FedAvgAccumulator::batch_average(flat);
  ASSERT_TRUE(top.result());
  EXPECT_LT(ml::Tensor::max_abs_diff(*top.result(), reference), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgHierarchyProperty,
                         ::testing::Range(1, 16));

// ---- Properties of the sum-form refactor: the fused accumulator must be
// numerically interchangeable with the seed's streaming-mean form,
// bitwise deterministic, and exact in mixed logical/real mode.

/// The seed's streaming-mean algorithm, reproduced as the reference:
///   avg <- avg + (w - avg) * c / (C + c)  via scale(1-λ) + axpy(λ, w),
/// with a logical-weight-aware first fold.
ml::Tensor seed_streaming_mean(
    const std::vector<std::shared_ptr<const ml::Tensor>>& tensors,
    const std::vector<std::uint64_t>& weights) {
  std::unique_ptr<ml::Tensor> avg;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const std::uint64_t c = weights[i];
    const std::uint64_t new_total = total + c;
    if (!avg) {
      avg = std::make_unique<ml::Tensor>(*tensors[i]);
      if (total > 0) {
        avg->scale(static_cast<float>(static_cast<double>(c) /
                                      static_cast<double>(new_total)));
      }
    } else {
      const float lambda = static_cast<float>(
          static_cast<double>(c) / static_cast<double>(new_total));
      avg->scale(1.0f - lambda);
      avg->axpy(lambda, *tensors[i]);
    }
    total = new_total;
  }
  return avg ? *avg : ml::Tensor{};
}

class FedAvgSumFormProperty : public ::testing::TestWithParam<int> {};

TEST_P(FedAvgSumFormProperty, MatchesSeedStreamingMeanAcrossOrders) {
  sim::Rng rng(4000 + GetParam());
  const std::size_t n = 2 + rng.uniform_index(24);
  const std::size_t dim = 1 + rng.uniform_index(100);

  std::vector<std::shared_ptr<const ml::Tensor>> tensors;
  std::vector<std::uint64_t> weights;
  for (std::size_t i = 0; i < n; ++i) {
    ml::Tensor t(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      t[j] = static_cast<float>(rng.normal(0.0, 3.0));
    }
    tensors.push_back(std::make_shared<const ml::Tensor>(std::move(t)));
    weights.push_back(1 + rng.uniform_index(2000));
  }

  // A couple of random fold orders per seed: both forms see the same order.
  std::vector<std::size_t> order(n);
  for (int shuffle = 0; shuffle < 3; ++shuffle) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    rng.shuffle(order);

    std::vector<std::shared_ptr<const ml::Tensor>> ts;
    std::vector<std::uint64_t> ws;
    FedAvgAccumulator acc;
    for (const std::size_t i : order) {
      ts.push_back(tensors[i]);
      ws.push_back(weights[i]);
      acc.add(tensors[i], weights[i]);
    }
    const ml::Tensor seed_ref = seed_streaming_mean(ts, ws);
    const auto sum_form = acc.result();
    ASSERT_TRUE(sum_form);
    for (std::size_t j = 0; j < dim; ++j) {
      EXPECT_NEAR((*sum_form)[j], seed_ref[j],
                  1e-5 * (1.0 + std::abs(seed_ref[j])))
          << "element " << j << " shuffle " << shuffle;
    }
  }
}

TEST_P(FedAvgSumFormProperty, BitwiseDeterministicForFixedOrder) {
  sim::Rng rng(5000 + GetParam());
  const std::size_t n = 2 + rng.uniform_index(16);
  const std::size_t dim = 1 + rng.uniform_index(64);

  std::vector<std::shared_ptr<const ml::Tensor>> tensors;
  std::vector<std::uint64_t> weights;
  for (std::size_t i = 0; i < n; ++i) {
    ml::Tensor t(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      t[j] = static_cast<float>(rng.normal(0.0, 1.0));
    }
    tensors.push_back(std::make_shared<const ml::Tensor>(std::move(t)));
    weights.push_back(1 + rng.uniform_index(999));
  }

  FedAvgAccumulator a, b;
  for (std::size_t i = 0; i < n; ++i) {
    a.add(tensors[i], weights[i]);
    b.add(tensors[i], weights[i]);
  }
  const auto ra = a.result();
  const auto rb = b.result();
  ASSERT_TRUE(ra);
  ASSERT_TRUE(rb);
  EXPECT_TRUE(*ra == *rb);  // bitwise: same order => same result
}

TEST_P(FedAvgSumFormProperty, MixedLogicalWeightInvariant) {
  // A logical-only update is DEFINED to carry a zero tensor: it adds its
  // weight to the divisor and nothing to the sum. In sum form that holds
  // exactly — where the logical updates land in the fold order must not
  // change the result at all (bitwise), and the result must match the
  // zero-tensor weighted mean computed in double precision.
  sim::Rng rng(6000 + GetParam());
  const std::size_t n = 2 + rng.uniform_index(10);
  const std::size_t dim = 1 + rng.uniform_index(32);
  const std::uint64_t logical_weight = 1 + rng.uniform_index(5000);

  std::vector<std::shared_ptr<const ml::Tensor>> tensors;
  std::vector<std::uint64_t> weights;
  for (std::size_t i = 0; i < n; ++i) {
    ml::Tensor t(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      t[j] = static_cast<float>(rng.normal(0.0, 2.0));
    }
    tensors.push_back(std::make_shared<const ml::Tensor>(std::move(t)));
    weights.push_back(1 + rng.uniform_index(800));
  }

  ModelUpdate logical;
  logical.sample_count = logical_weight;
  logical.logical_bytes = dim * sizeof(float);

  // Logical first vs logical in the middle vs logical last.
  FedAvgAccumulator first, middle, last;
  first.add(logical);
  for (std::size_t i = 0; i < n; ++i) first.add(tensors[i], weights[i]);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == n / 2) middle.add(logical);
    middle.add(tensors[i], weights[i]);
  }
  for (std::size_t i = 0; i < n; ++i) last.add(tensors[i], weights[i]);
  last.add(logical);

  const auto rf = first.result();
  const auto rm = middle.result();
  const auto rl = last.result();
  ASSERT_TRUE(rf);
  ASSERT_TRUE(rm);
  ASSERT_TRUE(rl);
  EXPECT_TRUE(*rf == *rm);
  EXPECT_TRUE(*rm == *rl);
  EXPECT_EQ(first.total_samples(), last.total_samples());

  double wsum = static_cast<double>(logical_weight);
  for (const auto w : weights) wsum += static_cast<double>(w);
  for (std::size_t j = 0; j < dim; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s += static_cast<double>(weights[i]) *
           static_cast<double>((*tensors[i])[j]);
    }
    const double want = s / wsum;
    EXPECT_NEAR((*rf)[j], want, 1e-5 * (1.0 + std::abs(want))) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FedAvgSumFormProperty,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace lifl::fl
