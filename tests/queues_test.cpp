// Unit tests for the in-place message queue (§4.2) and the node update pool.

#include <gtest/gtest.h>

#include "src/dataplane/update_pool.hpp"
#include "src/shm/inplace_queue.hpp"
#include "src/shm/object_store.hpp"
#include "src/sim/random.hpp"

namespace lifl {
namespace {

using shm::InPlaceQueue;
using shm::ObjectKey;

ObjectKey make_key(std::uint64_t seed) {
  sim::Rng rng(seed);
  return ObjectKey::generate(rng);
}

TEST(InPlaceQueue, TryPopEmptyFails) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  ObjectKey k;
  EXPECT_FALSE(q.try_pop(k));
}

TEST(InPlaceQueue, PushThenTryPopIsFifo) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  const ObjectKey a = make_key(1), b = make_key(2);
  q.push(a);
  q.push(b);
  ObjectKey out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, a);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, b);
}

TEST(InPlaceQueue, WaiterWokenOnPush) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  ObjectKey got;
  q.pop_async([&](ObjectKey k) { got = k; });
  EXPECT_EQ(q.waiter_count(), 1u);
  const ObjectKey a = make_key(3);
  q.push(a);
  sim.run();
  EXPECT_EQ(got, a);
  EXPECT_EQ(q.waiter_count(), 0u);
}

TEST(InPlaceQueue, BufferedKeyServesWaiterImmediately) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  const ObjectKey a = make_key(4);
  q.push(a);
  ObjectKey got;
  q.pop_async([&](ObjectKey k) { got = k; });
  sim.run();
  EXPECT_EQ(got, a);
}

TEST(InPlaceQueue, WaitersServedFifo) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  std::vector<int> order;
  q.pop_async([&](ObjectKey) { order.push_back(0); });
  q.pop_async([&](ObjectKey) { order.push_back(1); });
  q.push(make_key(5));
  q.push(make_key(6));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(InPlaceQueue, QueueingDelayTracked) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  q.push(make_key(7));
  sim.run_until(5.0);
  ObjectKey out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_DOUBLE_EQ(q.total_queueing_delay(), 5.0);
}

TEST(InPlaceQueue, DepthStats) {
  sim::Simulator sim;
  InPlaceQueue q(sim);
  for (int i = 0; i < 5; ++i) q.push(make_key(10 + i));
  EXPECT_EQ(q.depth(), 5u);
  EXPECT_EQ(q.max_depth(), 5u);
  EXPECT_EQ(q.total_pushed(), 5u);
  ObjectKey out;
  q.try_pop(out);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.max_depth(), 5u);
}

// ---------------------------------------------------------------- pool

fl::ModelUpdate update_of(std::uint32_t version) {
  fl::ModelUpdate u;
  u.model_version = version;
  u.logical_bytes = 128;
  u.sample_count = 1;
  return u;
}

TEST(UpdatePool, FifoOrder) {
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  pool.push(update_of(1));
  pool.push(update_of(2));
  fl::ModelUpdate u;
  ASSERT_TRUE(pool.try_pop(u));
  EXPECT_EQ(u.model_version, 1u);
  ASSERT_TRUE(pool.try_pop(u));
  EXPECT_EQ(u.model_version, 2u);
  EXPECT_FALSE(pool.try_pop(u));
}

TEST(UpdatePool, AsyncPopFiresOnPush) {
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  std::uint32_t got = 0;
  pool.pop_async([&](fl::ModelUpdate u) { got = u.model_version; });
  pool.push(update_of(9));
  sim.run();
  EXPECT_EQ(got, 9u);
}

TEST(UpdatePool, MultipleWaitersMultiplePushes) {
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  std::vector<std::uint32_t> got;
  for (int i = 0; i < 3; ++i) {
    pool.pop_async([&](fl::ModelUpdate u) { got.push_back(u.model_version); });
  }
  for (std::uint32_t v = 1; v <= 3; ++v) pool.push(update_of(v));
  sim.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(UpdatePool, ClearWaitersDropsPending) {
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  bool fired = false;
  pool.pop_async([&](fl::ModelUpdate) { fired = true; });
  pool.clear_waiters();
  pool.push(update_of(1));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(pool.depth(), 1u);
}

TEST(UpdatePool, StatsTrackDepthAndDelay) {
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  pool.push(update_of(1));
  pool.push(update_of(2));
  sim.run_until(3.0);
  fl::ModelUpdate u;
  pool.try_pop(u);
  pool.try_pop(u);
  EXPECT_EQ(pool.max_depth(), 2u);
  EXPECT_EQ(pool.total_pushed(), 2u);
  EXPECT_DOUBLE_EQ(pool.total_queueing_delay(), 6.0);
}

TEST(UpdatePool, LeaseReleasedWhenUpdateDropped) {
  // An update's shm lease must release its store reference when the last
  // copy of the update disappears (RAII recycle).
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  shm::ObjectStore store{sim::Rng(42)};
  {
    fl::ModelUpdate u = update_of(1);
    const ObjectKey key = store.put_logical(64);
    auto* sp = &store;
    u.lease = std::shared_ptr<const void>(
        new ObjectKey(key), [sp](const ObjectKey* k) {
          sp->release(*k);
          delete k;
        });
    pool.push(std::move(u));
    EXPECT_EQ(store.size(), 1u);
    fl::ModelUpdate out;
    pool.try_pop(out);
    // `out` still holds the lease here.
    EXPECT_EQ(store.size(), 1u);
  }
  // All copies gone => object released.
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace lifl
