// Stress test for the UpdatePool fast-path delivery: a 100k-push workload
// with mixed synchronous pops, async waiters and depth watchers must
// produce *exactly* the delivery order of the seed implementation (which
// scheduled one discrete zero-delay event per delivery and one per watcher
// wake-up).

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/dataplane/update_pool.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace lifl::dp {
namespace {

/// The seed UpdatePool, verbatim: every delivery and watcher wake-up is its
/// own schedule_after(0.0) event, watchers fire one event each.
class ReferencePool {
 public:
  using Waiter = std::function<void(fl::ModelUpdate)>;

  explicit ReferencePool(sim::Simulator& sim) : sim_(sim) {}

  void push(fl::ModelUpdate u) {
    if (!waiters_.empty()) {
      Waiter w = std::move(waiters_.front());
      waiters_.pop_front();
      sim_.schedule_after(0.0, [w = std::move(w), u = std::move(u)]() mutable {
        w(std::move(u));
      });
      return;
    }
    entries_.push_back(std::move(u));
    for (std::size_t i = 0; i < depth_watchers_.size();) {
      if (entries_.size() >= depth_watchers_[i].first) {
        sim_.schedule_after(0.0, std::move(depth_watchers_[i].second));
        depth_watchers_.erase(depth_watchers_.begin() +
                              static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  bool try_pop(fl::ModelUpdate& out) {
    if (entries_.empty()) return false;
    out = std::move(entries_.front());
    entries_.pop_front();
    return true;
  }

  void pop_async(Waiter w) {
    if (!entries_.empty()) {
      fl::ModelUpdate u = std::move(entries_.front());
      entries_.pop_front();
      sim_.schedule_after(0.0, [w = std::move(w), u = std::move(u)]() mutable {
        w(std::move(u));
      });
      return;
    }
    waiters_.push_back(std::move(w));
  }

  void when_depth(std::size_t n, std::function<void()> fn) {
    if (entries_.size() >= n) {
      sim_.schedule_after(0.0, std::move(fn));
      return;
    }
    depth_watchers_.emplace_back(n, std::move(fn));
  }

  std::size_t depth() const noexcept { return entries_.size(); }

 private:
  sim::Simulator& sim_;
  std::deque<fl::ModelUpdate> entries_;
  std::deque<Waiter> waiters_;
  std::vector<std::pair<std::size_t, std::function<void()>>> depth_watchers_;
};

fl::ModelUpdate update(fl::ParticipantId producer) {
  fl::ModelUpdate u;
  u.model_version = 1;
  u.producer = producer;
  u.sample_count = 1;
  u.logical_bytes = 1000;
  return u;
}

/// Drives an identical randomized operation schedule against a pool and
/// records every observable delivery in order.
template <typename Pool>
std::vector<std::string> drive(std::size_t pushes, std::uint64_t seed) {
  sim::Simulator sim;
  Pool pool(sim);
  sim::Rng rng(seed);
  std::vector<std::string> log;

  fl::ParticipantId next_producer = 1;
  int watcher_id = 0;
  double t = 0.0;
  for (std::size_t i = 0; i < pushes; ++i) {
    // Operations land at weakly increasing times with frequent same-instant
    // clusters, the regime the fast-path ring serves.
    if (rng.uniform() < 0.3) t += rng.uniform(0.0, 0.01);
    const double op = rng.uniform();
    if (op < 0.55) {
      sim.schedule_at(t, [&pool, id = next_producer++] {
        pool.push(update(id));
      });
    } else if (op < 0.75) {
      sim.schedule_at(t, [&pool, &log] {
        pool.pop_async([&log](fl::ModelUpdate u) {
          log.push_back("waiter:" + std::to_string(u.producer));
        });
      });
    } else if (op < 0.85) {
      sim.schedule_at(t, [&pool, &log] {
        fl::ModelUpdate u;
        if (pool.try_pop(u)) {
          log.push_back("pop:" + std::to_string(u.producer));
        }
      });
    } else {
      const std::size_t depth = 1 + rng.uniform_index(4);
      sim.schedule_at(t, [&pool, &log, depth, id = watcher_id++] {
        pool.when_depth(depth, [&log, id] {
          log.push_back("watch:" + std::to_string(id));
        });
      });
    }
  }
  sim.run();
  // Drain what is left so the buffered tail is compared too.
  fl::ModelUpdate u;
  while (pool.try_pop(u)) log.push_back("drain:" + std::to_string(u.producer));
  return log;
}

TEST(UpdatePoolStress, HundredThousandPushesMatchSeedDeliveryOrder) {
  const std::size_t kOps = 100'000;
  const auto reference = drive<ReferencePool>(kOps, 99);
  const auto fast = drive<UpdatePool>(kOps, 99);
  ASSERT_EQ(reference.size(), fast.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i], fast[i]) << "first divergence at index " << i;
  }
}

TEST(UpdatePoolStress, SeveralSeedsStayEquivalent) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    EXPECT_EQ(drive<ReferencePool>(20'000, seed),
              drive<UpdatePool>(20'000, seed))
        << "seed " << seed;
  }
}

TEST(UpdatePoolStress, BatchedWatchersFireInRegistrationOrder) {
  sim::Simulator sim;
  UpdatePool pool(sim);
  std::vector<int> fired;
  // Watchers registered out of depth order; each becomes due as the pool
  // deepens and must fire in registration order within a wake-up batch.
  pool.when_depth(3, [&] { fired.push_back(3); });
  pool.when_depth(1, [&] { fired.push_back(1); });
  pool.when_depth(2, [&] { fired.push_back(2); });
  pool.push(update(1));
  pool.push(update(2));
  pool.push(update(3));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace lifl::dp
