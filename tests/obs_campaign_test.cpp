// Campaign-level observability guarantees: tracing/metering is PASSIVE.
// Enabling it must leave every campaign result bitwise identical — for
// all three hierarchy modes and for 1 vs LIFL_TEST_SHARDS shards — the
// trace must be deterministic (same config => identical merged event
// sequence), and its contents must reconcile with the campaign result.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace {

using lifl::obs::Ev;
using lifl::obs::TraceEvent;
using lifl::sys::HierarchyMode;
using lifl::sys::ShardedCampaignConfig;
using lifl::sys::ShardedCampaignResult;

std::size_t test_shards() {
  std::size_t shards = 2;
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    shards = std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  return shards;
}

ShardedCampaignConfig small_campaign(HierarchyMode mode, std::size_t shards) {
  ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 2;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 400.0;
  cfg.ramp_secs = 2.0;
  cfg.seed = 77;
  cfg.hierarchy = mode;
  if (mode == HierarchyMode::kAsync) cfg.async_deadline_secs = 2.0;
  return cfg;
}

/// Every deterministic field of the result must match bitwise.
void expect_identical(const ShardedCampaignResult& a,
                      const ShardedCampaignResult& b, const char* what) {
  ASSERT_EQ(a.round_completed_at.size(), b.round_completed_at.size()) << what;
  for (std::size_t r = 0; r < a.round_completed_at.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.round_completed_at[r], b.round_completed_at[r])
        << what << " round " << r;
    EXPECT_EQ(a.round_samples[r], b.round_samples[r]) << what;
    EXPECT_DOUBLE_EQ(a.round_weight[r], b.round_weight[r]) << what;
    EXPECT_EQ(a.round_spawned[r], b.round_spawned[r]) << what;
    EXPECT_EQ(a.round_reused[r], b.round_reused[r]) << what;
  }
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].uploads, b.groups[g].uploads) << what;
    EXPECT_EQ(a.groups[g].pool_pushed, b.groups[g].pool_pushed) << what;
    EXPECT_DOUBLE_EQ(a.groups[g].gateway_busy_secs,
                     b.groups[g].gateway_busy_secs)
        << what;
    EXPECT_DOUBLE_EQ(a.groups[g].gateway_wait_secs,
                     b.groups[g].gateway_wait_secs)
        << what;
    EXPECT_DOUBLE_EQ(a.groups[g].cpu_cycles, b.groups[g].cpu_cycles) << what;
  }
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.spawned_total, b.spawned_total) << what;
  EXPECT_EQ(a.reused_total, b.reused_total) << what;
  EXPECT_DOUBLE_EQ(a.sim_secs, b.sim_secs) << what;
}

// ---------------------------------------------------------------------------
// Passivity: tracing + metrics on vs off, bitwise identical results, for
// every hierarchy mode at 1 shard and at LIFL_TEST_SHARDS shards.

TEST(ObsCampaign, TracingLeavesResultsBitwiseIdentical) {
  for (const HierarchyMode mode :
       {HierarchyMode::kFixed, HierarchyMode::kPlanned,
        HierarchyMode::kAsync}) {
    for (const std::size_t shards : {std::size_t{1}, test_shards()}) {
      auto plain_cfg = small_campaign(mode, shards);
      auto traced_cfg = plain_cfg;
      traced_cfg.obs.trace = true;
      traced_cfg.obs.metrics = true;
      traced_cfg.obs.trace_ring_kb = 512;
      const auto plain = lifl::sys::run_sharded_campaign(plain_cfg);
      const auto traced = lifl::sys::run_sharded_campaign(traced_cfg);
      const std::string what =
          "mode=" + std::to_string(static_cast<int>(mode)) +
          " shards=" + std::to_string(shards);
      expect_identical(plain, traced, what.c_str());
      ASSERT_NE(traced.obs, nullptr) << what;
      EXPECT_GT(traced.obs->trace().recorded_events(), 0u) << what;
      EXPECT_EQ(plain.obs, nullptr) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: two identical traced runs produce the identical merged
// event sequence, field for field.

TEST(ObsCampaign, TraceIsDeterministic) {
  auto cfg = small_campaign(HierarchyMode::kPlanned, test_shards());
  cfg.obs.trace = true;
  const auto r1 = lifl::sys::run_sharded_campaign(cfg);
  const auto r2 = lifl::sys::run_sharded_campaign(cfg);
  const auto m1 = r1.obs->trace().merged();
  const auto m2 = r2.obs->trace().merged();
  ASSERT_EQ(m1.size(), m2.size());
  ASSERT_GT(m1.size(), 0u);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_DOUBLE_EQ(m1[i].t, m2[i].t) << "event " << i;
    EXPECT_DOUBLE_EQ(m1[i].dur, m2[i].dur) << "event " << i;
    EXPECT_EQ(m1[i].b, m2[i].b) << "event " << i;
    EXPECT_EQ(m1[i].a, m2[i].a) << "event " << i;
    EXPECT_EQ(m1[i].track, m2[i].track) << "event " << i;
    EXPECT_EQ(static_cast<int>(m1[i].kind), static_cast<int>(m2[i].kind))
        << "event " << i;
  }
  EXPECT_EQ(r1.obs->trace().dropped_events(), r2.obs->trace().dropped_events());
}

// ---------------------------------------------------------------------------
// Reconciliation: the trace's lifecycle events and the registry's typed
// counters must agree with the campaign result's own telemetry.

TEST(ObsCampaign, TraceReconcilesWithResult) {
  auto cfg = small_campaign(HierarchyMode::kPlanned, 1);
  cfg.obs.trace = true;
  cfg.obs.metrics = true;
  // Lazy leaves defer consumption, so updates buffer in the node pool and
  // the gateway-wait histogram sees real queueing.
  cfg.timing = lifl::fl::AggTiming::kLazy;
  const auto r = lifl::sys::run_sharded_campaign(cfg);
  ASSERT_NE(r.obs, nullptr);
  ASSERT_EQ(r.obs->trace().dropped_events(), 0u);

  std::map<Ev, std::uint64_t> by_kind;
  std::uint64_t round_spans = 0;
  for (const TraceEvent& e : r.obs->trace().merged()) {
    ++by_kind[e.kind];
    if (e.kind == Ev::kRound) {
      EXPECT_GE(e.dur, 0.0);
      ++round_spans;
    }
  }
  // One round span per completed round.
  EXPECT_EQ(round_spans, r.round_completed_at.size());
  // Spawn + re-arm events cover the campaign's churn totals. The top
  // aggregator is driven by the campaign driver (not the per-group
  // hierarchy), so the trace counts the hierarchy side exactly and the
  // driver's top accounts for the remainder.
  const std::uint64_t spawns = by_kind[Ev::kAggSpawn];
  const std::uint64_t rearms = by_kind[Ev::kAggRearm];
  EXPECT_LE(spawns, r.spawned_total);
  EXPECT_LE(rearms, r.reused_total);
  EXPECT_GE(spawns + 2, r.spawned_total);  // top spawn/rearm per run
  EXPECT_GE(rearms + 2, r.reused_total);

  // Typed counters mirror the trace.
  const auto& reg = r.obs->registry();
  const auto& ids = r.obs->ids();
  EXPECT_EQ(reg.counter_total(ids.spawns), spawns);
  EXPECT_EQ(reg.counter_total(ids.rearms), rearms);
  EXPECT_EQ(reg.counter_total(ids.folds), by_kind[Ev::kAggFold]);
  EXPECT_EQ(reg.counter_total(ids.replans), r.replans);
  EXPECT_EQ(reg.hist_total(ids.round_secs).count, r.round_completed_at.size());
  EXPECT_GT(reg.hist_total(ids.gateway_wait_secs).count, 0u);
}

// Crash/recovery events reconcile under fault injection.
TEST(ObsCampaign, FaultEventsReconcile) {
  auto cfg = small_campaign(HierarchyMode::kPlanned, 1);
  cfg.obs.trace = true;
  cfg.obs.metrics = true;
  cfg.fault.seed = 9;
  cfg.fault.leaf_crash_rate = 0.3;
  const auto r = lifl::sys::run_sharded_campaign(cfg);
  ASSERT_GT(r.leaf_crashes, 0u);
  ASSERT_EQ(r.obs->trace().dropped_events(), 0u);
  std::uint64_t crashes = 0, recoveries = 0;
  for (const TraceEvent& e : r.obs->trace().merged()) {
    if (e.kind == Ev::kAggCrash) ++crashes;
    if (e.kind == Ev::kAggRecover) ++recoveries;
  }
  EXPECT_EQ(crashes, r.leaf_crashes + r.middle_crashes);
  EXPECT_EQ(recoveries, crashes);
  const auto& reg = r.obs->registry();
  const auto& ids = r.obs->ids();
  EXPECT_EQ(reg.counter_total(ids.crashes), crashes);
  EXPECT_EQ(reg.counter_total(ids.refolds), r.refolded_updates);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume composition: obs is not snapshotted; a traced resumed
// run completes and still matches the uninterrupted results bitwise.

TEST(ObsCampaign, TracedResumeMatchesUninterrupted) {
  auto cfg = small_campaign(HierarchyMode::kPlanned, 1);
  cfg.checkpoint_every_secs = 1.0;
  std::vector<std::uint8_t> blob;
  cfg.on_checkpoint = [&blob](const std::vector<std::uint8_t>& b,
                              std::uint32_t, double) { blob = b; };
  const auto full = lifl::sys::run_sharded_campaign(cfg);
  ASSERT_FALSE(blob.empty());

  auto rcfg = cfg;
  rcfg.on_checkpoint = nullptr;
  rcfg.resume_blob = &blob;
  rcfg.obs.trace = true;
  rcfg.obs.metrics = true;
  const auto resumed = lifl::sys::run_sharded_campaign(rcfg);
  ASSERT_EQ(full.round_completed_at.size(),
            resumed.round_completed_at.size());
  for (std::size_t r = 0; r < full.round_completed_at.size(); ++r) {
    EXPECT_DOUBLE_EQ(full.round_completed_at[r],
                     resumed.round_completed_at[r]);
    EXPECT_EQ(full.round_samples[r], resumed.round_samples[r]);
  }
  EXPECT_GT(resumed.obs->trace().recorded_events(), 0u);
}

// ---------------------------------------------------------------------------
// Ring cap: a tiny ring drops (oldest-first) but never perturbs results.

TEST(ObsCampaign, TinyRingDropsButStaysPassive) {
  auto plain_cfg = small_campaign(HierarchyMode::kPlanned, 1);
  auto traced_cfg = plain_cfg;
  traced_cfg.obs.trace = true;
  traced_cfg.obs.trace_ring_kb = 1;  // 32 events per ring
  const auto plain = lifl::sys::run_sharded_campaign(plain_cfg);
  const auto traced = lifl::sys::run_sharded_campaign(traced_cfg);
  expect_identical(plain, traced, "tiny-ring");
  EXPECT_GT(traced.obs->trace().dropped_events(), 0u);
  // Ring accounting: recorded size is exactly the cap once overflowing.
  EXPECT_LE(traced.obs->trace().recorded_events(),
            2u * (1024 / sizeof(lifl::obs::TraceEvent)));
}

// ---------------------------------------------------------------------------
// Barrier-stall report: per-shard window stats are always filled and sum
// to the coordinator's window count.

TEST(ObsCampaign, ShardWindowStatsAlwaysFilled) {
  const std::size_t shards = test_shards();
  const auto r = lifl::sys::run_sharded_campaign(
      small_campaign(HierarchyMode::kPlanned, shards));
  ASSERT_EQ(r.shard_windows.size(), shards);
  ASSERT_EQ(r.shard_empty_windows.size(), shards);
  ASSERT_EQ(r.shard_idle_secs.size(), shards);
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_EQ(r.shard_windows[s], r.windows) << "shard " << s;
    EXPECT_LE(r.shard_empty_windows[s], r.shard_windows[s]);
    EXPECT_GE(r.shard_idle_secs[s], 0.0);
  }
  // The 1-shard fast path never runs the barrier: all zero.
  const auto mono = lifl::sys::run_sharded_campaign(
      small_campaign(HierarchyMode::kPlanned, 1));
  ASSERT_EQ(mono.shard_windows.size(), 1u);
  EXPECT_EQ(mono.shard_windows[0], 0u);
}

// ---------------------------------------------------------------------------
// The JSONL emitter writes one parseable-looking row per round plus the
// shard and summary rows (full JSON parsing lives in tools/trace_summary.py).

TEST(ObsCampaign, MetricsJsonlWritesRows) {
  auto cfg = small_campaign(HierarchyMode::kPlanned, 1);
  cfg.obs.trace = true;
  cfg.obs.metrics = true;
  const auto r = lifl::sys::run_sharded_campaign(cfg);
  const std::string path = testing::TempDir() + "obs_metrics.jsonl";
  lifl::sys::write_campaign_metrics_jsonl(r, path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::vector<std::string> lines;
  char buf[65536];
  while (std::fgets(buf, sizeof buf, f) != nullptr) lines.emplace_back(buf);
  std::fclose(f);
  std::remove(path.c_str());
  // rounds + shards + summary.
  ASSERT_EQ(lines.size(), r.round_completed_at.size() + 1 + 1);
  EXPECT_NE(lines.front().find("\"type\": \"round\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"type\": \"summary\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"counters\""), std::string::npos);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l[l.size() - 2], '}');  // trailing newline
  }
  // An untraced result refuses the trace writer.
  const auto plain = lifl::sys::run_sharded_campaign(
      small_campaign(HierarchyMode::kPlanned, 1));
  EXPECT_THROW(lifl::sys::write_campaign_trace(plain, path), std::logic_error);
}

}  // namespace
