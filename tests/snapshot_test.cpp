// Snapshot serializer/deserializer properties (src/sim/snapshot.hpp):
// every serializer round-trips bit-exactly (doubles incl. NaN payloads,
// signed zeros, denormals and infinities; tensors; RNG streams; aggregation
// goals; EWMA slots), and malformed blobs — truncated at *any* byte,
// version-mismatched, or section-drifted — are rejected with a clear
// SnapshotError instead of undefined behavior.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/control/ewma.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/ml/tensor.hpp"
#include "src/sim/random.hpp"
#include "src/sim/snapshot.hpp"

namespace {

using lifl::sim::Deserializer;
using lifl::sim::Rng;
using lifl::sim::Serializer;
using lifl::sim::SnapshotError;

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double double_from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

// ---------------------------------------------------------------- scalars

TEST(Snapshot, ScalarsRoundTrip) {
  Serializer s;
  s.u8(0xab);
  s.boolean(true);
  s.boolean(false);
  s.u32(0xdeadbeefu);
  s.u64(0x0123456789abcdefull);
  s.i64(-42);
  s.str("");
  s.str(std::string("nul\0inside", 10));

  Deserializer d(s.bytes());
  EXPECT_EQ(d.u8(), 0xab);
  EXPECT_TRUE(d.boolean());
  EXPECT_FALSE(d.boolean());
  EXPECT_EQ(d.u32(), 0xdeadbeefu);
  EXPECT_EQ(d.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_EQ(d.str(), "");
  EXPECT_EQ(d.str(), std::string("nul\0inside", 10));
  EXPECT_TRUE(d.at_end());
}

TEST(Snapshot, DoublesRoundTripBitExactly) {
  // The accumulators a campaign snapshot carries are floating-point running
  // sums: restoring them must reproduce the exact bits, not a value that is
  // merely ==. Include every awkward corner of IEEE 754.
  const std::vector<double> specials = {
      0.0,
      -0.0,
      1.0 / 3.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      double_from_bits(0x7ff8dead'beef0001ull),  // NaN with payload
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
  };
  Serializer s;
  for (const double v : specials) s.f64(v);
  Rng rng(99);
  std::vector<double> randoms;
  for (int i = 0; i < 1000; ++i) {
    randoms.push_back(double_from_bits(rng.next_u64()));
    s.f64(randoms.back());
  }

  Deserializer d(s.bytes());
  for (const double v : specials) {
    EXPECT_EQ(bits_of(d.f64()), bits_of(v));
  }
  for (const double v : randoms) {
    EXPECT_EQ(bits_of(d.f64()), bits_of(v));
  }
  EXPECT_TRUE(d.at_end());
}

// ---------------------------------------------------------------- tensors

TEST(Snapshot, TensorRoundTripsBitExactly) {
  Rng rng(7);
  lifl::ml::Tensor t(4097);  // off power-of-two: exercise the tail
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::uint32_t raw = static_cast<std::uint32_t>(rng.next_u64());
    std::memcpy(&t[i], &raw, sizeof(float));  // arbitrary bit patterns
  }
  Serializer s;
  save(s, t);
  Deserializer d(s.bytes());
  lifl::ml::Tensor back;
  load(d, back);
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(std::memcmp(back.data(), t.data(), t.bytes()), 0);
  EXPECT_TRUE(d.at_end());
}

TEST(Snapshot, EmptyTensorRoundTrips) {
  lifl::ml::Tensor t;
  Serializer s;
  save(s, t);
  Deserializer d(s.bytes());
  lifl::ml::Tensor back(5, 1.0f);
  load(d, back);
  EXPECT_TRUE(back.empty());
}

// -------------------------------------------------------------------- rng

TEST(Snapshot, RngStreamResumesBitExactly) {
  Rng rng(123);
  // Warm the stream through every draw kind, leaving a cached Box-Muller
  // spare pending — the subtlest piece of generator state.
  for (int i = 0; i < 100; ++i) (void)rng.next_u64();
  (void)rng.normal();

  Serializer s;
  save(s, rng);

  std::vector<std::uint64_t> expect_raw;
  std::vector<double> expect_norm;
  for (int i = 0; i < 64; ++i) expect_norm.push_back(rng.normal());
  for (int i = 0; i < 64; ++i) expect_raw.push_back(rng.next_u64());

  Rng fresh(999);  // unrelated seed: restore must fully overwrite it
  Deserializer d(s.bytes());
  load(d, fresh);
  for (const double v : expect_norm) {
    EXPECT_EQ(bits_of(fresh.normal()), bits_of(v));
  }
  for (const std::uint64_t v : expect_raw) {
    EXPECT_EQ(fresh.next_u64(), v);
  }
}

// ------------------------------------------------------------------ goals

TEST(Snapshot, AggregationGoalRoundTrips) {
  // The goal triple the hierarchy snapshots: count, kind, open flag.
  Serializer s;
  s.u32(8131524u);
  s.u8(static_cast<std::uint8_t>(lifl::fl::GoalKind::kFoldedUpdates));
  s.boolean(true);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.u32(), 8131524u);
  EXPECT_EQ(static_cast<lifl::fl::GoalKind>(d.u8()),
            lifl::fl::GoalKind::kFoldedUpdates);
  EXPECT_TRUE(d.boolean());
}

// ------------------------------------------------------------------- ewma

TEST(Snapshot, EwmaSlotResumesBitExactly) {
  // Restoring the smoothed value must continue the recurrence on the exact
  // bits — replaying the observations into a fresh slot is the reference.
  lifl::ctrl::Ewma a(0.7);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) a.observe(rng.uniform(0.0, 500.0));

  Serializer s;
  s.f64(a.value());
  s.boolean(a.initialized());

  lifl::ctrl::Ewma b(0.7);
  Deserializer d(s.bytes());
  const double value = d.f64();
  const bool init = d.boolean();
  b.restore(value, init);

  Rng tail(6);
  for (int i = 0; i < 50; ++i) {
    const double sample = tail.uniform(0.0, 500.0);
    EXPECT_EQ(bits_of(a.observe(sample)), bits_of(b.observe(sample)));
  }

  lifl::ctrl::Ewma untouched(0.3);
  untouched.restore(0.0, false);
  EXPECT_FALSE(untouched.initialized());
}

// --------------------------------------------------------------- sections

TEST(Snapshot, SectionsFrameAndValidate) {
  Serializer s;
  s.begin_section(1);
  s.u32(7);
  s.begin_section(2);  // nested
  s.str("inner");
  s.end_section();
  s.end_section();

  Deserializer d(s.bytes());
  d.expect_section(1);
  EXPECT_EQ(d.u32(), 7u);
  d.expect_section(2);
  EXPECT_EQ(d.str(), "inner");
  d.end_section();
  d.end_section();
  EXPECT_TRUE(d.at_end());
}

TEST(Snapshot, SectionTagMismatchIsRejected) {
  Serializer s;
  s.begin_section(1);
  s.u32(7);
  s.end_section();
  Deserializer d(s.bytes());
  EXPECT_THROW(d.expect_section(2), SnapshotError);
}

TEST(Snapshot, SectionLengthDriftIsRejected) {
  Serializer s;
  s.begin_section(1);
  s.u32(7);
  s.u32(8);
  s.end_section();
  // Reader that consumes too little...
  {
    Deserializer d(s.bytes());
    d.expect_section(1);
    (void)d.u32();
    EXPECT_THROW(d.end_section(), SnapshotError);
  }
  // ...and one that consumes too much (bytes beyond the section exist, so
  // the over-read is caught by the section validator, not the blob bound).
  {
    Serializer s2;
    s2.begin_section(1);
    s2.u32(7);
    s2.end_section();
    s2.u32(0x7a11u);
    Deserializer d(s2.bytes());
    d.expect_section(1);
    (void)d.u32();
    (void)d.u32();  // strays into the trailing bytes
    EXPECT_THROW(d.end_section(), SnapshotError);
  }
}

// ------------------------------------------------------------- truncation

TEST(Snapshot, EveryTruncationIsRejectedNotUB) {
  // Property: for EVERY proper prefix of a structured blob, the reader
  // throws SnapshotError (from the bounds check or the section validator) —
  // never reads past the buffer.
  Serializer s;
  s.u64(0x4c49464cu);  // magic-ish header
  s.u32(1);
  s.begin_section(3);
  s.str("group");
  s.f64(1.0 / 3.0);
  s.pod_vec(std::vector<std::uint64_t>{1, 2, 3});
  s.end_section();
  const std::vector<std::uint8_t> whole = s.bytes();

  const auto read_all = [](const std::vector<std::uint8_t>& blob) {
    Deserializer d(blob);
    (void)d.u64();
    (void)d.u32();
    d.expect_section(3);
    (void)d.str();
    (void)d.f64();
    (void)d.pod_vec<std::uint64_t>();
    d.end_section();
    if (!d.at_end()) throw SnapshotError("trailing bytes");
  };
  ASSERT_NO_THROW(read_all(whole));
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(whole.begin(),
                                           whole.begin() + cut);
    EXPECT_THROW(read_all(prefix), SnapshotError) << "prefix length " << cut;
  }
}

TEST(Snapshot, PodVecWithAbsurdCountIsRejected) {
  // A corrupt length prefix must fail the bounds check, not allocate.
  Serializer s;
  s.u64(std::numeric_limits<std::uint64_t>::max());  // "count"
  Deserializer d(s.bytes());
  EXPECT_THROW((void)d.pod_vec<double>(), SnapshotError);

  // A count crafted so count*sizeof(T) wraps to a small number must be
  // caught by the pre-multiplication guard, not drive a huge allocation.
  Serializer s2;
  s2.u64(std::uint64_t{1} << 61);  // *8 wraps to 0
  Deserializer d2(s2.bytes());
  EXPECT_THROW((void)d2.pod_vec<double>(), SnapshotError);
}

}  // namespace
