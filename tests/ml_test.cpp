// Unit tests for the ML substrate: tensors, MLP (with numerical gradient
// checks), synthetic non-IID data, local training and the accuracy model.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/ml/accuracy_model.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/tensor.hpp"
#include "src/ml/train.hpp"

namespace lifl::ml {
namespace {

// ----------------------------------------------------------------- tensor
TEST(Tensor, ConstructFillAndIndex) {
  Tensor t(4, 2.5f);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FLOAT_EQ(t[3], 2.5f);
  EXPECT_EQ(t.bytes(), 16u);
}

TEST(Tensor, AxpyComputesThisPlusAX) {
  Tensor y(3, 1.0f), x(3);
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  y.axpy(2.0f, x);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
}

TEST(Tensor, AxpySizeMismatchThrows) {
  Tensor y(3), x(4);
  EXPECT_THROW(y.axpy(1.0f, x), std::invalid_argument);
}

TEST(Tensor, ScaleAndFill) {
  Tensor t(3, 2.0f);
  t.scale(1.5f);
  EXPECT_FLOAT_EQ(t[0], 3.0f);
  t.fill(0.0f);
  EXPECT_FLOAT_EQ(t[2], 0.0f);
}

TEST(Tensor, DotAndNorm) {
  Tensor a(2), b(2);
  a[0] = 3;
  a[1] = 4;
  b[0] = 1;
  b[1] = 1;
  EXPECT_DOUBLE_EQ(a.dot(b), 7.0);
  EXPECT_DOUBLE_EQ(a.l2norm(), 5.0);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(2), b(2);
  a[0] = 1;
  a[1] = 5;
  b[0] = 1.5;
  b[1] = 4;
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 1.0);
}

TEST(Tensor, RandnMomentsRoughlyGaussian) {
  sim::Rng rng(42);
  const Tensor t = Tensor::randn(rng, 50000, 2.0f);
  double sum = 0, sq = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.05);
  EXPECT_NEAR(sq / t.size(), 4.0, 0.1);
}

// -------------------------------------------------------------------- MLP
TEST(Mlp, ParamCountMatchesArchitecture) {
  Mlp m({4, 8, 3});
  // 4*8 + 8 + 8*3 + 3 = 67
  EXPECT_EQ(m.param_count(), 67u);
}

TEST(Mlp, TooFewDimsThrows) {
  EXPECT_THROW(Mlp({5}), std::invalid_argument);
}

TEST(Mlp, SetParamsSizeMismatchThrows) {
  Mlp m({4, 3});
  EXPECT_THROW(m.set_params(Tensor(7)), std::invalid_argument);
}

TEST(Mlp, LogitsHaveClassDimension) {
  Mlp m({4, 8, 3});
  sim::Rng rng(1);
  m.init(rng);
  const float x[4] = {1, 2, 3, 4};
  EXPECT_EQ(m.logits(x).size(), 3u);
}

TEST(Mlp, GradientMatchesNumericalDifferences) {
  // Central-difference gradient check on a tiny network: the definitive
  // correctness test for backprop.
  Mlp m({3, 5, 4});
  sim::Rng rng(7);
  m.init(rng);

  Dataset d;
  d.feature_dim = 3;
  d.num_classes = 4;
  const float x1[3] = {0.5f, -1.2f, 2.0f};
  const float x2[3] = {1.0f, 0.3f, -0.7f};
  d.push(x1, 2);
  d.push(x2, 0);

  std::vector<std::size_t> idx{0, 1};
  Tensor grad;
  m.gradient(d, idx, grad);

  const double eps = 1e-3;
  int checked = 0;
  for (std::size_t p = 0; p < m.param_count(); p += 7) {  // sample params
    Mlp plus = m, minus = m;
    Tensor pp = m.params(), pm = m.params();
    pp[p] += static_cast<float>(eps);
    pm[p] -= static_cast<float>(eps);
    plus.set_params(pp);
    minus.set_params(pm);
    const double numeric = (plus.loss(d) - minus.loss(d)) / (2 * eps);
    EXPECT_NEAR(grad[p], numeric, 5e-3)
        << "param " << p << " analytic vs numeric";
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(Mlp, SgdStepReducesLossOnBatch) {
  Mlp m({8, 16, 4});
  sim::Rng rng(3);
  m.init(rng);
  SyntheticTaskConfig cfg;
  cfg.feature_dim = 8;
  cfg.num_classes = 4;
  FederatedDataGen gen(cfg, rng.split(1));
  const Dataset d = gen.make_test_set(64);
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), 0);

  const double before = m.loss(d);
  Tensor grad;
  for (int step = 0; step < 30; ++step) {
    m.gradient(d, idx, grad);
    m.sgd_step(grad, 0.05f);
  }
  EXPECT_LT(m.loss(d), before * 0.8);
}

TEST(Mlp, DeterministicGivenSeed) {
  auto make = [] {
    Mlp m({4, 8, 2});
    sim::Rng rng(11);
    m.init(rng);
    return m;
  };
  const Mlp a = make(), b = make();
  EXPECT_EQ(a.params(), b.params());
}

// ------------------------------------------------------------------- data
TEST(Dataset, PushAndRowAccess) {
  Dataset d;
  d.feature_dim = 2;
  d.num_classes = 3;
  const float x[2] = {1.0f, 2.0f};
  d.push(x, 1);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_FLOAT_EQ(d.row(0)[1], 2.0f);
  EXPECT_EQ(d.labels[0], 1);
}

TEST(FederatedDataGen, TestSetHasAllClasses) {
  SyntheticTaskConfig cfg;
  FederatedDataGen gen(cfg, sim::Rng(5));
  const Dataset d = gen.make_test_set(2000);
  const auto hist = FederatedDataGen::class_histogram(d);
  for (std::size_t c = 0; c < cfg.num_classes; ++c) {
    EXPECT_GT(hist[c], 100u) << "class " << c;
  }
}

TEST(FederatedDataGen, LowAlphaShardsAreSkewed) {
  SyntheticTaskConfig cfg;
  FederatedDataGen gen(cfg, sim::Rng(5));
  sim::Rng rng(6);
  // alpha=0.1: most mass on few classes.
  double max_share = 0;
  for (int i = 0; i < 10; ++i) {
    const Dataset shard = gen.make_client_shard(300, 0.1, rng);
    const auto hist = FederatedDataGen::class_histogram(shard);
    const double top = *std::max_element(hist.begin(), hist.end());
    max_share += top / 300.0;
  }
  max_share /= 10;
  EXPECT_GT(max_share, 0.5);  // dominant class holds the majority
}

TEST(FederatedDataGen, HighAlphaShardsAreBalanced) {
  SyntheticTaskConfig cfg;
  FederatedDataGen gen(cfg, sim::Rng(5));
  sim::Rng rng(6);
  double max_share = 0;
  for (int i = 0; i < 10; ++i) {
    const Dataset shard = gen.make_client_shard(1000, 100.0, rng);
    const auto hist = FederatedDataGen::class_histogram(shard);
    max_share += *std::max_element(hist.begin(), hist.end()) / 1000.0;
  }
  max_share /= 10;
  EXPECT_LT(max_share, 0.2);  // near-uniform across 10 classes
}

TEST(FederatedDataGen, TaskIsLearnable) {
  // A linear-ish model must beat chance easily on the synthetic task.
  SyntheticTaskConfig cfg;
  FederatedDataGen gen(cfg, sim::Rng(5));
  const Dataset train = gen.make_test_set(1500);
  const Dataset test = gen.make_test_set(500);
  Mlp m({cfg.feature_dim, 32, cfg.num_classes});
  sim::Rng rng(2);
  m.init(rng);
  std::vector<std::size_t> idx(train.size());
  std::iota(idx.begin(), idx.end(), 0);
  Tensor grad;
  for (int e = 0; e < 40; ++e) {
    m.gradient(train, idx, grad);
    m.sgd_step(grad, 0.1f);
  }
  EXPECT_GT(m.accuracy(test), 0.5);  // chance is 0.1
}

// ---------------------------------------------------------------- training
TEST(LocalTrain, ImprovesLocalLoss) {
  SyntheticTaskConfig cfg;
  FederatedDataGen gen(cfg, sim::Rng(5));
  sim::Rng rng(8);
  const Dataset shard = gen.make_client_shard(400, 0.5, rng);
  Mlp global({cfg.feature_dim, 32, cfg.num_classes});
  global.init(rng);

  LocalTrainConfig tc;
  tc.epochs = 2;
  const LocalUpdate upd = local_train(global, global.params(), shard, tc, rng);

  Mlp after(global.dims());
  after.set_params(*upd.params);
  EXPECT_LT(after.loss(shard), global.loss(shard));
  EXPECT_EQ(upd.sample_count, shard.size());
}

TEST(LocalTrain, DoesNotMutateGlobalParams) {
  SyntheticTaskConfig cfg;
  FederatedDataGen gen(cfg, sim::Rng(5));
  sim::Rng rng(8);
  const Dataset shard = gen.make_client_shard(100, 0.5, rng);
  Mlp global({cfg.feature_dim, 16, cfg.num_classes});
  global.init(rng);
  const Tensor before = global.params();
  (void)local_train(global, global.params(), shard, {}, rng);
  EXPECT_EQ(global.params(), before);
}

// ----------------------------------------------------------- accuracy model
TEST(AccuracyModel, MonotonicallyIncreasing) {
  const auto m = AccuracyModel::resnet18_femnist();
  double prev = -1;
  for (std::uint32_t r = 0; r < 300; r += 10) {
    const double a = m.mean_accuracy(r);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(AccuracyModel, SaturatesBelowAmax) {
  const auto m = AccuracyModel::resnet152_femnist();
  EXPECT_LT(m.mean_accuracy(100000), m.a_max() + 1e-9);
  EXPECT_NEAR(m.mean_accuracy(100000), m.a_max(), 1e-6);
}

TEST(AccuracyModel, StartsAtZero) {
  EXPECT_DOUBLE_EQ(AccuracyModel::resnet18_femnist().mean_accuracy(0), 0.0);
}

TEST(AccuracyModel, RoundsToAccuracyIsConsistent) {
  const auto m = AccuracyModel::resnet18_femnist();
  const std::uint32_t r70 = m.rounds_to_accuracy(0.70);
  EXPECT_GE(m.mean_accuracy(r70), 0.70);
  EXPECT_LT(m.mean_accuracy(r70 - 1), 0.70);
}

TEST(AccuracyModel, Paper70PercentAnchors) {
  // Calibration: the 70% crossing is anchored so LIFL's measured per-round
  // time lands on the paper's time-to-70% (0.9 h for ResNet-18 at ~98 s per
  // round; 1.9 h for ResNet-152 at ~64 s per round).
  EXPECT_NEAR(AccuracyModel::resnet18_femnist().rounds_to_accuracy(0.70), 34,
              3);
  EXPECT_NEAR(AccuracyModel::resnet152_femnist().rounds_to_accuracy(0.70),
              107, 8);
}

TEST(AccuracyModel, UnreachableTargetReturnsZero) {
  EXPECT_EQ(AccuracyModel::resnet18_femnist().rounds_to_accuracy(0.99), 0u);
}

TEST(AccuracyModel, SampleNoiseIsBounded) {
  const auto m = AccuracyModel::resnet18_femnist();
  sim::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double a = m.sample_accuracy(60, rng);
    EXPECT_NEAR(a, m.mean_accuracy(60), 0.05);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

}  // namespace
}  // namespace lifl::ml
