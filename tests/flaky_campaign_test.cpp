// Flaky edge campaigns: tiered device populations, the client-lifecycle
// session layer and heterogeneity-aware selection, end to end through
// `run_sharded_campaign`. The claims mirror the fault-injection suite:
// integer-exact sample conservation under mid-upload disconnects, bitwise
// 1-vs-K-shard equivalence, bitwise checkpoint/resume from any cut in all
// three hierarchy modes, and hard config validation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/systems/sharded_campaign.hpp"

namespace {

namespace sys = lifl::sys;
namespace wl = lifl::wl;
namespace ctrl = lifl::ctrl;

std::size_t env_shards() {
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    return std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  return 2;
}

/// A small tiered campaign: 4 groups x 8 leaves x 10 updates per round
/// over a 40/30/30 flagship/mid/IoT population.
sys::ShardedCampaignConfig tiered_campaign(std::size_t shards) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 3;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 280.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 6.0;
  cfg.seed = 123;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 0.5;
  cfg.middle_fanin = 4;
  cfg.device_tiers = wl::TierMix{0.4, 0.3, 0.3};
  return cfg;
}

sys::ShardedCampaignConfig flaky_campaign(std::size_t shards) {
  auto cfg = tiered_campaign(shards);
  cfg.lifecycle.disconnect_rate = 0.2;
  cfg.lifecycle.chunk_bytes = 10'000;
  cfg.lifecycle.offline_base_secs = 0.05;
  cfg.lifecycle.offline_cap_secs = 1.0;
  return cfg;
}

std::uint64_t total_samples(const sys::ShardedCampaignResult& r) {
  return std::accumulate(r.round_samples.begin(), r.round_samples.end(),
                         std::uint64_t{0});
}

std::uint64_t tier_total(const sys::ShardedCampaignResult& r,
                         std::uint64_t sys::ShardedCampaignResult::TierStats::*
                             field) {
  std::uint64_t n = 0;
  for (const auto& t : r.tiers) n += t.*field;
  return n;
}

void expect_identical(const sys::ShardedCampaignResult& a,
                      const sys::ShardedCampaignResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.round_started_at.size(), b.round_started_at.size()) << what;
  for (std::size_t r = 0; r < a.round_started_at.size(); ++r) {
    // EXPECT_EQ on doubles is exact ==: the claim is bitwise, not ULP.
    EXPECT_EQ(a.round_started_at[r], b.round_started_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_completed_at[r], b.round_completed_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_samples[r], b.round_samples[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_weight[r], b.round_weight[r])
        << what << " round " << r + 1;
  }
  for (std::size_t t = 0; t < wl::kTierCount; ++t) {
    EXPECT_EQ(a.tiers[t].selected, b.tiers[t].selected) << what << " t" << t;
    EXPECT_EQ(a.tiers[t].completed, b.tiers[t].completed)
        << what << " t" << t;
    EXPECT_EQ(a.tiers[t].disconnects, b.tiers[t].disconnects)
        << what << " t" << t;
    EXPECT_EQ(a.tiers[t].stragglers, b.tiers[t].stragglers)
        << what << " t" << t;
  }
  EXPECT_EQ(a.disconnects, b.disconnects) << what;
  EXPECT_EQ(a.resumed_uploads, b.resumed_uploads) << what;
  EXPECT_EQ(a.chunks_sent, b.chunks_sent) << what;
  EXPECT_EQ(a.chunks_resent, b.chunks_resent) << what;
  EXPECT_EQ(a.selection_redraws, b.selection_redraws) << what;
  EXPECT_EQ(a.offline_queue_peak, b.offline_queue_peak) << what;
  EXPECT_EQ(a.gate_wait_secs, b.gate_wait_secs) << what;
  EXPECT_EQ(a.spawned_total, b.spawned_total) << what;
  EXPECT_EQ(a.reused_total, b.reused_total) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.sim_secs, b.sim_secs) << what;
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].uploads, b.groups[g].uploads) << what << " g" << g;
    EXPECT_EQ(a.groups[g].pool_pushed, b.groups[g].pool_pushed)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].cpu_cycles, b.groups[g].cpu_cycles)
        << what << " g" << g;
  }
}

// ------------------------------------------------------- conservation

TEST(FlakyCampaign, DisconnectsLoseNoSamples) {
  // 20% of session attempts die mid-upload; every parked update resumes
  // chunk-wise and lands exactly once, so each round folds the identical
  // sample sum as the reliable-client run.
  const auto flaky = sys::run_sharded_campaign(flaky_campaign(1));
  const auto clean = sys::run_sharded_campaign(tiered_campaign(1));

  EXPECT_GT(flaky.disconnects, 0u);
  EXPECT_EQ(flaky.resumed_uploads, flaky.disconnects);
  EXPECT_GT(flaky.chunks_resent, 0u);
  ASSERT_EQ(flaky.round_samples.size(), clean.round_samples.size());
  for (std::size_t r = 0; r < clean.round_samples.size(); ++r) {
    EXPECT_EQ(flaky.round_samples[r], clean.round_samples[r])
        << "round " << r + 1;
  }
  // Per-tier accounting closes: every selection completed, and the
  // disconnect totals agree between the tier view and the session view.
  EXPECT_EQ(tier_total(flaky, &sys::ShardedCampaignResult::TierStats::selected),
            tier_total(flaky,
                       &sys::ShardedCampaignResult::TierStats::completed));
  EXPECT_EQ(
      tier_total(flaky, &sys::ShardedCampaignResult::TierStats::disconnects),
      flaky.disconnects);
  // IoT's 2.5x disconnect scale vs flagship's 0.25x shows in the split.
  const auto& iot = flaky.tiers[static_cast<std::size_t>(wl::DeviceTier::kIoT)];
  const auto& fl =
      flaky.tiers[static_cast<std::size_t>(wl::DeviceTier::kFlagship)];
  EXPECT_GT(iot.disconnects, fl.disconnects);

  // The reliable run reports zero lifecycle churn.
  EXPECT_EQ(clean.disconnects, 0u);
  EXPECT_EQ(clean.chunks_resent, 0u);
}

TEST(FlakyCampaign, OfflineQueueBoundIsRespected) {
  // A tiny population under a brutal disconnect schedule: clients are
  // re-picked while earlier sessions are still parked, so the cap must
  // actually bind (redraws happen) and must never be exceeded.
  auto cfg = flaky_campaign(1);
  cfg.population = 200;  // 50 clients per group vs 80 picks per round
  cfg.lifecycle.disconnect_rate = 0.6;
  cfg.lifecycle.offline_base_secs = 0.5;
  cfg.lifecycle.offline_cap_secs = 4.0;
  cfg.lifecycle.offline_queue_cap = 1;
  const auto r = sys::run_sharded_campaign(cfg);
  EXPECT_GT(r.disconnects, 0u);
  EXPECT_GT(r.selection_redraws, 0u);
  EXPECT_LE(r.offline_queue_peak, cfg.lifecycle.offline_queue_cap);
  // Redrawn cohorts still deliver everything they selected.
  EXPECT_EQ(tier_total(r, &sys::ShardedCampaignResult::TierStats::selected),
            tier_total(r, &sys::ShardedCampaignResult::TierStats::completed));
  EXPECT_GT(total_samples(r), 0u);
}

TEST(FlakyCampaign, SessionGatesDelayButDeliver) {
  auto cfg = tiered_campaign(1);
  cfg.lifecycle.session_gates = true;
  cfg.lifecycle.connect_period_secs = 4.0;
  cfg.lifecycle.charge_period_secs = 16.0;
  const auto gated = sys::run_sharded_campaign(cfg);
  const auto open = sys::run_sharded_campaign(tiered_campaign(1));
  EXPECT_GT(gated.gate_wait_secs, 0.0);
  EXPECT_EQ(total_samples(gated), total_samples(open));
}

// --------------------------------------------------- shard invariance

TEST(FlakyCampaign, LifecycleIsShardInvariant) {
  for (const auto mode :
       {sys::HierarchyMode::kFixed, sys::HierarchyMode::kPlanned,
        sys::HierarchyMode::kAsync}) {
    auto base = flaky_campaign(1);
    base.hierarchy = mode;
    base.selector = ctrl::SelectorPolicy::kScored;
    if (mode == sys::HierarchyMode::kAsync) base.async_deadline_secs = 2.0;
    const auto one = sys::run_sharded_campaign(base);
    auto multi = base;
    multi.shards = env_shards();
    const auto n = sys::run_sharded_campaign(multi);
    EXPECT_GT(one.disconnects, 0u);
    expect_identical(one, n,
                     "mode " + std::to_string(static_cast<int>(mode)) +
                         ", 1 vs " + std::to_string(multi.shards) +
                         " shards");
  }
}

TEST(FlakyCampaign, SelectorStrategiesAreShardInvariant) {
  for (const auto policy :
       {ctrl::SelectorPolicy::kScored, ctrl::SelectorPolicy::kClusterScan}) {
    auto base = tiered_campaign(1);
    base.selector = policy;
    base.straggler_fraction = 0.2;
    base.straggler_delay_secs = 3.0;
    const auto one = sys::run_sharded_campaign(base);
    auto multi = base;
    multi.shards = env_shards();
    const auto n = sys::run_sharded_campaign(multi);
    expect_identical(one, n,
                     std::string(ctrl::selector_policy_name(policy)) +
                         ", 1 vs " + std::to_string(multi.shards) +
                         " shards");
  }
}

// ---------------------------------------------------- selection shift

TEST(FlakyCampaign, ScoredSelectionLearnsAwayFromStragglerTier) {
  // 30% stragglers, all absorbed by the IoT tier (spill-first coupling):
  // after round 1's telemetry lands, the scored strategy must strongly
  // down-weight IoT while random keeps picking it at its share.
  auto random = tiered_campaign(1);
  random.rounds = 4;
  random.straggler_fraction = 0.3;
  random.straggler_delay_secs = 10.0;
  auto scored = random;
  scored.selector = ctrl::SelectorPolicy::kScored;

  const auto r = sys::run_sharded_campaign(random);
  const auto s = sys::run_sharded_campaign(scored);

  const auto iot = static_cast<std::size_t>(wl::DeviceTier::kIoT);
  using TS = sys::ShardedCampaignResult::TierStats;
  const double r_total =
      static_cast<double>(tier_total(r, &TS::selected));
  const double s_total =
      static_cast<double>(tier_total(s, &TS::selected));
  const double r_iot = static_cast<double>(r.tiers[iot].selected) / r_total;
  const double s_iot = static_cast<double>(s.tiers[iot].selected) / s_total;
  EXPECT_GT(r_iot, 0.25);          // random: ~the 0.3 share
  EXPECT_LT(s_iot, r_iot * 0.5);   // scored: learned exclusion
  // The scored run therefore suffers far fewer straggler delays.
  EXPECT_LT(tier_total(s, &sys::ShardedCampaignResult::TierStats::stragglers),
            tier_total(r, &sys::ShardedCampaignResult::TierStats::stragglers));
}

// --------------------------------------------- checkpoint mid-session

TEST(FlakyCampaign, CheckpointResumeIsBitwiseInAllModes) {
  for (const auto mode :
       {sys::HierarchyMode::kFixed, sys::HierarchyMode::kPlanned,
        sys::HierarchyMode::kAsync}) {
    auto base = flaky_campaign(1);
    base.hierarchy = mode;
    base.selector = ctrl::SelectorPolicy::kScored;
    if (mode == sys::HierarchyMode::kAsync) base.async_deadline_secs = 2.0;
    base.checkpoint_every_secs = 1.0;

    struct Blob {
      std::vector<std::uint8_t> bytes;
      std::uint32_t round = 0;
      double mark = 0.0;
    };
    std::vector<Blob> blobs;
    auto capture = base;
    capture.on_checkpoint = [&blobs](const std::vector<std::uint8_t>& bytes,
                                     std::uint32_t round, double mark) {
      blobs.push_back(Blob{bytes, round, mark});
    };
    const auto reference = sys::run_sharded_campaign(capture);
    EXPECT_GT(reference.disconnects, 0u);
    ASSERT_GE(blobs.size(), 2u);

    const std::size_t picks[] = {0, blobs.size() / 2, blobs.size() - 1};
    for (const std::size_t pick : picks) {
      auto cfg = base;
      cfg.resume_blob = &blobs[pick].bytes;
      const auto resumed = sys::run_sharded_campaign(cfg);
      expect_identical(reference, resumed,
                       "mode " + std::to_string(static_cast<int>(mode)) +
                           " cut at round " +
                           std::to_string(blobs[pick].round) + ", mark " +
                           std::to_string(blobs[pick].mark));
    }
  }
}

// -------------------------------------------------------- validation

TEST(FlakyCampaign, InvalidConfigsAreRejected) {
  // Tier shares must sum to ~1.
  auto bad_mix = tiered_campaign(1);
  bad_mix.device_tiers = wl::TierMix{0.9, 0.4, 0.3};
  EXPECT_THROW((void)sys::run_sharded_campaign(bad_mix),
               std::invalid_argument);

  // The session layer supersedes wire-level upload faults.
  auto mixed = flaky_campaign(1);
  mixed.fault.upload_drop_rate = 0.1;
  EXPECT_THROW((void)sys::run_sharded_campaign(mixed),
               std::invalid_argument);

  // Scored selection needs tier telemetry to learn from.
  auto untier = flaky_campaign(1);
  untier.device_tiers = wl::TierMix{};
  untier.selector = ctrl::SelectorPolicy::kScored;
  EXPECT_THROW((void)sys::run_sharded_campaign(untier),
               std::invalid_argument);

  // A disconnect rate of 1 can never finish a session.
  auto all_drop = flaky_campaign(1);
  all_drop.lifecycle.disconnect_rate = 1.0;
  EXPECT_THROW((void)sys::run_sharded_campaign(all_drop),
               std::invalid_argument);

  // Degenerate lifecycle geometry.
  auto no_chunks = flaky_campaign(1);
  no_chunks.lifecycle.chunk_bytes = 0;
  EXPECT_THROW((void)sys::run_sharded_campaign(no_chunks),
               std::invalid_argument);
  auto no_queue = flaky_campaign(1);
  no_queue.lifecycle.offline_queue_cap = 0;
  EXPECT_THROW((void)sys::run_sharded_campaign(no_queue),
               std::invalid_argument);

  // Bad selection-strategy knobs.
  auto bad_alpha = flaky_campaign(1);
  bad_alpha.selection.alpha = 1.5;
  EXPECT_THROW((void)sys::run_sharded_campaign(bad_alpha),
               std::invalid_argument);

  // Auto-quota is an async-mode control loop.
  auto sync_quota = tiered_campaign(1);
  sync_quota.async_auto_quota = true;
  EXPECT_THROW((void)sys::run_sharded_campaign(sync_quota),
               std::invalid_argument);
}

// Crash faults compose with the lifecycle: aggregators die and recover
// while client sessions disconnect and resume, and nothing is lost.
TEST(FlakyCampaign, CrashFaultsComposeWithLifecycle) {
  auto cfg = flaky_campaign(1);
  cfg.fault.seed = 31;
  cfg.fault.leaf_crash_rate = 0.10;
  cfg.fault.middle_crash_rate = 0.05;
  const auto faulty = sys::run_sharded_campaign(cfg);
  const auto clean = sys::run_sharded_campaign(tiered_campaign(1));
  EXPECT_GT(faulty.leaf_crashes, 0u);
  EXPECT_GT(faulty.disconnects, 0u);
  ASSERT_EQ(faulty.round_samples.size(), clean.round_samples.size());
  for (std::size_t r = 0; r < clean.round_samples.size(); ++r) {
    EXPECT_EQ(faulty.round_samples[r], clean.round_samples[r])
        << "round " << r + 1;
  }
}

}  // namespace
