// Tests for the adaptive server-optimizer extension (Reddi et al., 2020):
// FedAvg passthrough, momentum, the three adaptive second-moment rules,
// and end-to-end convergence on the real ML substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "src/fl/fedavg.hpp"
#include "src/fl/server_optimizer.hpp"
#include "src/ml/dataset.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/train.hpp"

namespace lifl::fl {
namespace {

ServerOptimizer::Config cfg_for(ServerOptimizerKind kind, double lr = 0.5) {
  ServerOptimizer::Config c;
  c.kind = kind;
  c.lr = lr;
  return c;
}

ml::Tensor constant(std::size_t n, float v) { return ml::Tensor(n, v); }

TEST(ServerOptimizer, FedAvgInstallsTheAverageVerbatim) {
  ServerOptimizer opt(cfg_for(ServerOptimizerKind::kFedAvg));
  ml::Tensor global = constant(4, 1.0f);
  const ml::Tensor avg = constant(4, 3.5f);
  opt.step(global, avg);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(global[i], 3.5f);
}

TEST(ServerOptimizer, SizeMismatchThrows) {
  ServerOptimizer opt(cfg_for(ServerOptimizerKind::kFedAdam));
  ml::Tensor global = constant(4, 0.0f);
  const ml::Tensor avg = constant(5, 0.0f);
  EXPECT_THROW(opt.step(global, avg), std::invalid_argument);
}

TEST(ServerOptimizer, MomentumReachesAverageThenOvershoots) {
  ServerOptimizer opt(cfg_for(ServerOptimizerKind::kFedAvgM, /*lr=*/1.0));
  ml::Tensor global = constant(3, 0.0f);
  const ml::Tensor avg = constant(3, 1.0f);
  opt.step(global, avg);
  // Bias-corrected first step applies the full pseudo-gradient: x = avg.
  EXPECT_NEAR(global[0], 1.0f, 1e-6);
  opt.step(global, avg);
  // Zero new delta, but carried momentum overshoots — the momentum
  // signature.
  EXPECT_GT(global[0], 1.0f);
}

TEST(ServerOptimizer, AdaptiveKindsNormalizePerParameterScale) {
  // Two coordinates with very different pseudo-gradient magnitudes end up
  // moving at comparable speed under adaptive rules — the whole point of
  // FedAdagrad/FedAdam.
  for (const auto kind : {ServerOptimizerKind::kFedAdagrad,
                          ServerOptimizerKind::kFedYogi,
                          ServerOptimizerKind::kFedAdam}) {
    ServerOptimizer opt(cfg_for(kind, /*lr=*/0.1));
    ml::Tensor global(2, 0.0f);
    ml::Tensor avg(2, 0.0f);
    avg[0] = 10.0f;   // large-delta coordinate
    avg[1] = 0.01f;   // small-delta coordinate
    for (int r = 0; r < 30; ++r) {
      ml::Tensor target = global;
      target[0] = avg[0];
      target[1] = avg[1];
      opt.step(global, target);
    }
    const double progress0 = global[0] / 10.0;
    const double progress1 = global[1] / 0.01;
    // Un-normalized SGD would advance coord 1 ~1000x slower; adaptive rules
    // keep relative progress within a modest factor.
    EXPECT_GT(progress1, progress0 * 0.1)
        << "kind=" << to_string(kind);
  }
}

TEST(ServerOptimizer, YogiMatchesAdamOnFirstStepThenDiverges) {
  // With v = 0, Yogi's sign-controlled update v -= (1-b2) d^2 sign(v - d^2)
  // equals Adam's v = (1-b2) d^2, so their first steps coincide; once v is
  // above the incoming d^2, Yogi's additive rule departs from Adam's EWMA.
  ServerOptimizer yogi(cfg_for(ServerOptimizerKind::kFedYogi, 0.1));
  ServerOptimizer adam(cfg_for(ServerOptimizerKind::kFedAdam, 0.1));
  ml::Tensor gy = constant(1, 0.0f);
  ml::Tensor ga = constant(1, 0.0f);
  yogi.step(gy, constant(1, 1.0f));
  adam.step(ga, constant(1, 1.0f));
  EXPECT_FLOAT_EQ(gy[0], ga[0]);

  // A sequence of shrinking deltas: Adam's v decays, Yogi's shrinks slower,
  // so their positions separate.
  for (int r = 0; r < 12; ++r) {
    yogi.step(gy, constant(1, gy[0] + 0.01f));
    adam.step(ga, constant(1, ga[0] + 0.01f));
  }
  EXPECT_NE(gy[0], ga[0]);
}

TEST(ServerOptimizer, ResetClearsState) {
  ServerOptimizer opt(cfg_for(ServerOptimizerKind::kFedAdam, 1.0));
  ml::Tensor dirty = constant(2, 0.0f);
  opt.step(dirty, constant(2, 1.0f));  // accumulate momentum / second moment
  opt.reset();
  EXPECT_EQ(opt.rounds(), 0u);

  // After reset, the optimizer must reproduce a fresh optimizer's step.
  ServerOptimizer fresh(cfg_for(ServerOptimizerKind::kFedAdam, 1.0));
  ml::Tensor x = constant(2, 0.0f);
  ml::Tensor y = constant(2, 0.0f);
  opt.step(x, constant(2, 1.0f));
  fresh.step(y, constant(2, 1.0f));
  EXPECT_FLOAT_EQ(x[0], y[0]);
  EXPECT_FLOAT_EQ(x[1], y[1]);
}

TEST(ServerOptimizer, ToStringCoversAllKinds) {
  EXPECT_EQ(to_string(ServerOptimizerKind::kFedAvg), "FedAvg");
  EXPECT_EQ(to_string(ServerOptimizerKind::kFedAvgM), "FedAvgM");
  EXPECT_EQ(to_string(ServerOptimizerKind::kFedAdagrad), "FedAdagrad");
  EXPECT_EQ(to_string(ServerOptimizerKind::kFedYogi), "FedYogi");
  EXPECT_EQ(to_string(ServerOptimizerKind::kFedAdam), "FedAdam");
}

/// End-to-end: federated rounds on the real MLP substrate where the server
/// applies each optimizer to the FedAvg aggregate. All kinds must converge;
/// this guards the optimizer-aggregation integration, not relative ranks.
class ServerOptimizerTraining
    : public ::testing::TestWithParam<ServerOptimizerKind> {};

TEST_P(ServerOptimizerTraining, ConvergesOnFederatedTask) {
  sim::Rng rng(21);
  ml::SyntheticTaskConfig task;
  ml::FederatedDataGen gen(task, rng.split(1));
  const ml::Dataset test = gen.make_test_set(600);
  sim::Rng shard_rng = rng.split(2);
  std::vector<ml::Dataset> shards;
  for (int c = 0; c < 8; ++c) {
    shards.push_back(gen.make_client_shard(200, 0.5, shard_rng));
  }

  ml::Mlp global({task.feature_dim, 32, task.num_classes});
  sim::Rng init_rng = rng.split(3);
  global.init(init_rng);

  ServerOptimizer::Config scfg;
  scfg.kind = GetParam();
  // First-order kinds take the full pseudo-gradient; adaptive kinds use a
  // smaller server rate since their denominators normalize to unit scale.
  scfg.lr = (scfg.kind == ServerOptimizerKind::kFedAvg ||
             scfg.kind == ServerOptimizerKind::kFedAvgM)
                ? 1.0
                : 0.05;
  ServerOptimizer server(scfg);

  ml::LocalTrainConfig tcfg;
  sim::Rng client_rng = rng.split(4);
  const double acc0 = global.accuracy(test);
  for (int round = 0; round < 10; ++round) {
    FedAvgAccumulator acc;
    for (const auto& shard : shards) {
      const auto upd =
          ml::local_train(global, global.params(), shard, tcfg, client_rng);
      acc.add(upd.params, upd.sample_count);
    }
    ml::Tensor params = global.params();
    server.step(params, *acc.result());
    global.set_params(params);
  }
  EXPECT_GT(global.accuracy(test), acc0 + 0.2)
      << "optimizer " << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ServerOptimizerTraining,
    ::testing::Values(ServerOptimizerKind::kFedAvg,
                      ServerOptimizerKind::kFedAvgM,
                      ServerOptimizerKind::kFedAdagrad,
                      ServerOptimizerKind::kFedYogi,
                      ServerOptimizerKind::kFedAdam),
    [](const ::testing::TestParamInfo<ServerOptimizerKind>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace lifl::fl
