// Tests for model checkpointing (Appendix B) and asynchronous buffered
// aggregation (Fig. 11, a *recurring* AggregatorRuntime): checkpoint
// cadence and asynchrony (off the critical path), async version
// production, eager/lazy folding, staleness control, and stateless
// shutdown.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/checkpoint.hpp"
#include "src/fl/model_spec.hpp"

namespace lifl::fl {
namespace {

// ----------------------------------------------------------- checkpoints

struct CheckpointWorld {
  sim::Simulator sim;
  sim::Cluster cluster;

  CheckpointWorld() : cluster(sim, 1) {}
};

TEST(CheckpointManager, HonorsCadence) {
  CheckpointWorld w;
  CheckpointManager::Config cfg;
  cfg.every_n_versions = 5;
  CheckpointManager mgr(w.cluster, 0, cfg);
  EXPECT_FALSE(mgr.maybe_checkpoint(1, 1000));
  EXPECT_FALSE(mgr.maybe_checkpoint(4, 1000));
  EXPECT_TRUE(mgr.maybe_checkpoint(5, 1000));
  EXPECT_FALSE(mgr.maybe_checkpoint(6, 1000));
  EXPECT_TRUE(mgr.maybe_checkpoint(10, 1000));
  w.sim.run();
  EXPECT_EQ(mgr.persisted().size(), 2u);
}

TEST(CheckpointManager, PersistsAsynchronously) {
  // Appendix B: "the aggregator submits a request ... to perform model
  // checkpoints asynchronously in the background" — durability arrives
  // later in simulated time, not inline.
  CheckpointWorld w;
  CheckpointManager::Config cfg;
  cfg.every_n_versions = 1;
  CheckpointManager mgr(w.cluster, 0, cfg);
  bool durable = false;
  ASSERT_TRUE(mgr.maybe_checkpoint(1, fl::models::resnet152().bytes(),
                                   [&] { durable = true; }));
  EXPECT_FALSE(durable);  // not yet: the write is in flight
  EXPECT_EQ(mgr.in_flight(), 1u);
  w.sim.run();
  EXPECT_TRUE(durable);
  EXPECT_EQ(mgr.in_flight(), 0u);
  // A 232 MB checkpoint at 200 MB/s takes over a second of simulated time.
  EXPECT_GT(w.sim.now(), 1.0);
}

TEST(CheckpointManager, CheckpointTimeScalesWithModelSize) {
  auto persist_time = [](std::size_t bytes) {
    CheckpointWorld w;
    CheckpointManager::Config cfg;
    cfg.every_n_versions = 1;
    CheckpointManager mgr(w.cluster, 0, cfg);
    mgr.maybe_checkpoint(1, bytes);
    w.sim.run();
    return w.sim.now();
  };
  EXPECT_GT(persist_time(fl::models::resnet152().bytes()),
            persist_time(fl::models::resnet18().bytes()) * 2);
}

TEST(CheckpointManager, ExposesByteAccounting) {
  CheckpointWorld w;
  CheckpointManager::Config cfg;
  cfg.every_n_versions = 1;
  CheckpointManager mgr(w.cluster, 0, cfg);
  EXPECT_EQ(mgr.started(), 0u);
  EXPECT_EQ(mgr.bytes_in_flight(), 0u);
  EXPECT_EQ(mgr.bytes_written(), 0u);

  ASSERT_TRUE(mgr.maybe_checkpoint(1, 1000));
  mgr.begin_write(2, 500);  // cadence-free path (campaign snapshot marks)
  EXPECT_EQ(mgr.started(), 2u);
  EXPECT_EQ(mgr.in_flight(), 2u);
  EXPECT_EQ(mgr.bytes_in_flight(), 1500u);
  EXPECT_EQ(mgr.bytes_written(), 0u);

  w.sim.run();
  EXPECT_EQ(mgr.in_flight(), 0u);
  EXPECT_EQ(mgr.bytes_in_flight(), 0u);
  EXPECT_EQ(mgr.bytes_written(), 1500u);
  EXPECT_EQ(mgr.persisted().size(), 2u);
}

// The Appendix B claim itself, previously untested: a checkpoint whose
// write overlaps the *next* round must never land on that round's
// aggregation completion time — persistence is marshal (one core, spare
// capacity) plus storage latency off the node, not a pipeline stall.
struct OverlapWorld {
  sim::Simulator sim;
  sim::Cluster cluster;
  dp::DataPlane plane;

  OverlapWorld()
      : cluster(sim, 1), plane(cluster, dp::lifl_plane(), sim::Rng(5)) {}

  /// One pull-from-pool aggregation round; returns its completion time.
  double run_round(std::uint32_t version) {
    double done_at = -1.0;
    AggregatorRuntime::Config c;
    c.id = 1;
    c.node = 0;
    c.goal = 8;
    c.pull_from_pool = true;
    c.result_bytes = 100'000;
    c.expected_version = version;
    c.on_result = [this, &done_at](ModelUpdate) { done_at = sim.now(); };
    AggregatorRuntime rt(plane, c);
    rt.start();
    for (int i = 0; i < 8; ++i) {
      ModelUpdate u;
      u.model_version = version;
      u.producer = 100 + i;
      u.sample_count = 10;
      u.logical_bytes = 100'000;
      plane.client_upload(0, std::move(u), 50e6);
    }
    sim.run();
    return done_at;
  }
};

TEST(CheckpointManager, OverlappingCheckpointNeverDelaysAggregation) {
  // Control: two rounds, no checkpoint.
  OverlapWorld control;
  const double c1 = control.run_round(1);
  const double c2 = control.run_round(2);
  ASSERT_GT(c1, 0.0);
  ASSERT_GT(c2, c1);

  // Treatment: a 232 MB model checkpoint (>1 s of storage latency) starts
  // between the rounds and is still in flight throughout round 2.
  OverlapWorld treated;
  const double t1 = treated.run_round(1);
  CheckpointManager::Config cfg;
  cfg.every_n_versions = 1;
  CheckpointManager mgr(treated.cluster, 0, cfg);
  double persisted_at = -1.0;
  ASSERT_TRUE(mgr.maybe_checkpoint(1, models::resnet152().bytes(),
                                   [&] { persisted_at = treated.sim.now(); }));
  const double t2 = treated.run_round(2);

  // Bitwise: round-2 aggregation completed at the identical instant.
  EXPECT_EQ(t1, c1);
  EXPECT_EQ(t2, c2);
  // And the checkpoint genuinely overlapped it: durability arrived after
  // the aggregation completion, off the critical path.
  EXPECT_GT(persisted_at, t2);
  EXPECT_EQ(mgr.bytes_written(),
            static_cast<std::uint64_t>(models::resnet152().bytes()));
}

// ------------------------------------------- async buffered aggregation
//
// FedBuff-style asynchrony is a *recurring* AggregatorRuntime pulling from
// the node pool: every `goal` accepted updates emit a new global version
// (on_result), the caller owns the version counter, and `live_version` /
// `max_staleness` provide the staleness control. This retired the old
// standalone AsyncEngine — same semantics, one runtime.

struct AsyncWorld {
  sim::Simulator sim;
  sim::Cluster cluster;
  dp::DataPlane plane;

  // Caller-owned version state: bumped by the runtime's on_result.
  std::uint32_t version = 1;
  std::vector<double> version_times;
  std::unique_ptr<AggregatorRuntime> rt;

  AsyncWorld()
      : cluster(sim, 1), plane(cluster, dp::lifl_plane(), sim::Rng(7)) {}

  void start(std::uint32_t goal, AggTiming timing,
             std::uint32_t max_staleness = 1'000'000) {
    AggregatorRuntime::Config c;
    c.id = 1;
    c.node = 0;
    c.role = AggRole::kTop;
    c.timing = timing;
    c.goal = goal;
    c.recurring = true;
    c.pull_from_pool = true;
    c.result_bytes = 1'000'000;
    c.live_version = &version;
    c.max_staleness = max_staleness;
    c.on_result = [this](ModelUpdate) {
      version_times.push_back(sim.now());
      ++version;
    };
    rt = std::make_unique<AggregatorRuntime>(plane, c);
    rt->start();
  }

  void upload(std::uint32_t v, std::size_t bytes = 1'000'000) {
    ModelUpdate u;
    u.model_version = v;
    u.producer = 500;
    u.sample_count = 10;
    u.logical_bytes = bytes;
    plane.seed_update(0, std::move(u));
  }
};

TEST(AsyncAggregation, EmitsVersionEveryGoalUpdates) {
  AsyncWorld w;
  w.start(3, AggTiming::kEager);
  for (int i = 0; i < 7; ++i) w.upload(w.version);
  w.sim.run();
  EXPECT_EQ(w.rt->emissions(), 2u);  // 7 updates / goal 3
  EXPECT_EQ(w.version_times.size(), 2u);
  EXPECT_EQ(w.version, 3u);  // started at 1
}

TEST(AsyncAggregation, LazyAndEagerFoldTheSameUpdates) {
  for (const auto timing : {AggTiming::kEager, AggTiming::kLazy}) {
    AsyncWorld w;
    w.start(4, timing);
    for (int i = 0; i < 8; ++i) w.upload(1);
    w.sim.run();
    EXPECT_EQ(w.rt->emissions(), 2u)
        << "timing=" << static_cast<int>(timing);
  }
}

TEST(AsyncAggregation, DropsUpdatesBeyondMaxStaleness) {
  AsyncWorld w;
  w.start(2, AggTiming::kEager, /*max_staleness=*/1);
  // Advance to version 3.
  for (int i = 0; i < 4; ++i) w.upload(w.version);
  w.sim.run();
  ASSERT_EQ(w.version, 3u);
  // A version-1 update is 2 behind: dropped.
  w.upload(1);
  w.sim.run();
  EXPECT_EQ(w.rt->stale_dropped(), 1u);
  EXPECT_EQ(w.rt->emissions(), 2u);
}

TEST(AsyncAggregation, StopReturnsLazyBufferToPool) {
  AsyncWorld w;
  w.start(5, AggTiming::kLazy);
  w.upload(1);
  w.upload(1);
  w.sim.run();
  w.rt->stop();
  w.sim.run();
  // Under-goal lazy batch: both updates are back in the shared pool.
  EXPECT_EQ(w.plane.env(0).pool.depth(), 2u);
}

TEST(AsyncAggregation, VersionTimesAreMonotone) {
  AsyncWorld w;
  w.start(2, AggTiming::kEager);
  for (int i = 0; i < 10; ++i) {
    w.sim.schedule_after(1.0 * i, [&w] { w.upload(w.version); });
  }
  w.sim.run();
  ASSERT_GE(w.version_times.size(), 3u);
  for (std::size_t i = 1; i < w.version_times.size(); ++i) {
    EXPECT_GT(w.version_times[i], w.version_times[i - 1]);
  }
}

}  // namespace
}  // namespace lifl::fl
