// Tests for the TinyResNet convolutional substrate: shape/layout sanity,
// numerical gradient checks (the ground truth for all backprop code),
// residual behavior, training progress, and the synthetic image task.

#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/conv.hpp"

namespace lifl::ml {
namespace {

TinyResNet::Config tiny_cfg() {
  TinyResNet::Config cfg;
  cfg.height = 5;
  cfg.width = 5;
  cfg.in_channels = 1;
  cfg.filters = 3;
  cfg.blocks = 1;
  cfg.num_classes = 4;
  return cfg;
}

Dataset one_example(const TinyResNet::Config& cfg, int label,
                    std::uint64_t seed) {
  ImageDataGen gen(cfg, sim::Rng(seed));
  Dataset d = gen.make_test_set(8);
  d.labels[0] = label;  // pin the label used by gradient tests
  return d;
}

TEST(TinyResNet, ParamCountMatchesArchitecture) {
  const auto cfg = tiny_cfg();
  TinyResNet net(cfg);
  // stem: 3*1*9 + 3; two block convs: 2*(3*3*9 + 3); dense: 4*3 + 4.
  const std::size_t expected =
      (3 * 1 * 9 + 3) + 2 * (3 * 3 * 9 + 3) + (4 * 3 + 4);
  EXPECT_EQ(net.param_count(), expected);
}

TEST(TinyResNet, ZeroConfigThrows) {
  auto cfg = tiny_cfg();
  cfg.filters = 0;
  EXPECT_THROW(TinyResNet net(cfg), std::invalid_argument);
}

TEST(TinyResNet, SetParamsRejectsWrongSize) {
  TinyResNet net(tiny_cfg());
  EXPECT_THROW(net.set_params(Tensor(3)), std::invalid_argument);
}

TEST(TinyResNet, LogitsAreFiniteAfterInit) {
  TinyResNet net(tiny_cfg());
  sim::Rng rng(1);
  net.init(rng);
  const Dataset d = one_example(tiny_cfg(), 0, 2);
  const auto l = net.logits(d.row(0));
  ASSERT_EQ(l.size(), 4u);
  for (float v : l) EXPECT_TRUE(std::isfinite(v));
}

TEST(TinyResNet, GradientMatchesFiniteDifferences) {
  // The canonical backprop check: analytic gradient vs central differences
  // on a sample of parameters spanning every layer.
  const auto cfg = tiny_cfg();
  TinyResNet net(cfg);
  sim::Rng rng(3);
  net.init(rng);
  Dataset d = one_example(cfg, 2, 4);
  const std::vector<std::size_t> idx = {0, 1, 2};

  Tensor analytic;
  net.gradient(d, idx, analytic);

  Tensor base = net.params();
  const float eps = 1e-3f;
  // Probe parameters spread across the whole flat vector.
  for (std::size_t p = 0; p < net.param_count();
       p += std::max<std::size_t>(1, net.param_count() / 23)) {
    Tensor t = base;
    t[p] = base[p] + eps;
    net.set_params(t);
    const double up = [&] {
      Tensor g;
      return net.gradient(d, idx, g);
    }();
    t[p] = base[p] - eps;
    net.set_params(t);
    const double down = [&] {
      Tensor g;
      return net.gradient(d, idx, g);
    }();
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[p], numeric, 2e-2)
        << "param index " << p << " of " << net.param_count();
    net.set_params(base);
  }
}

TEST(TinyResNet, IdentityBlocksPreserveStemWhenZeroed) {
  // With all block conv weights zero, each residual unit is the identity
  // (ReLU of non-negative input), so logits equal a stem-only network's.
  const auto cfg = tiny_cfg();
  TinyResNet net(cfg);
  sim::Rng rng(5);
  net.init(rng);
  Tensor p = net.params();
  // Zero both convs of the block: they sit between stem and dense head.
  const std::size_t stem_params =
      cfg.filters * cfg.in_channels * 9 + cfg.filters;
  const std::size_t block_params =
      2 * (cfg.filters * cfg.filters * 9 + cfg.filters);
  for (std::size_t i = stem_params; i < stem_params + block_params; ++i) {
    p[i] = 0.0f;
  }
  net.set_params(p);

  const Dataset d = one_example(cfg, 1, 6);
  const auto l = net.logits(d.row(0));
  // Rebuild a zero-block network and manually compare against blocks=0.
  TinyResNet::Config stem_cfg = cfg;
  stem_cfg.blocks = 0;
  TinyResNet stem_net(stem_cfg);
  Tensor sp(stem_net.param_count(), 0.0f);
  for (std::size_t i = 0; i < stem_params; ++i) sp[i] = p[i];
  const std::size_t dense_params =
      cfg.num_classes * cfg.filters + cfg.num_classes;
  for (std::size_t i = 0; i < dense_params; ++i) {
    sp[stem_params + i] = p[stem_params + block_params + i];
  }
  stem_net.set_params(sp);
  const auto sl = stem_net.logits(d.row(0));
  ASSERT_EQ(l.size(), sl.size());
  for (std::size_t i = 0; i < l.size(); ++i) EXPECT_NEAR(l[i], sl[i], 1e-5f);
}

TEST(TinyResNet, SgdReducesLossOnSmallTask) {
  const auto cfg = tiny_cfg();
  TinyResNet net(cfg);
  sim::Rng rng(7);
  net.init(rng);
  ImageDataGen gen(cfg, sim::Rng(8));
  Dataset train = gen.make_test_set(96);

  const double loss0 = net.loss(train);
  std::vector<std::size_t> idx(train.labels.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Tensor grad;
  for (int step = 0; step < 60; ++step) {
    net.gradient(train, idx, grad);
    net.sgd_step(grad, 0.3f);
  }
  EXPECT_LT(net.loss(train), loss0 * 0.7);
}

TEST(TinyResNet, LearnsSpatialTaskBetterThanChance) {
  const auto cfg = tiny_cfg();
  TinyResNet net(cfg);
  sim::Rng rng(9);
  net.init(rng);
  ImageDataGen gen(cfg, sim::Rng(10));
  Dataset train = gen.make_test_set(240);
  Dataset test = gen.make_test_set(120);

  std::vector<std::size_t> idx(train.labels.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Tensor grad;
  for (int step = 0; step < 120; ++step) {
    net.gradient(train, idx, grad);
    net.sgd_step(grad, 0.3f);
  }
  // 4 classes => chance is 0.25.
  EXPECT_GT(net.accuracy(test), 0.6);
}

TEST(ImageDataGen, ShardsAreLabelSkewed) {
  const auto cfg = tiny_cfg();
  ImageDataGen gen(cfg, sim::Rng(11));
  sim::Rng rng(12);
  const Dataset shard = gen.make_client_shard(200, /*alpha=*/0.1, rng);
  ASSERT_EQ(shard.labels.size(), 200u);
  // Strong skew: the most common class should dominate.
  std::vector<int> hist(cfg.num_classes, 0);
  for (int l : shard.labels) hist[static_cast<std::size_t>(l)]++;
  const int top = *std::max_element(hist.begin(), hist.end());
  EXPECT_GT(top, 100);
}

TEST(ImageDataGen, TestSetCoversAllClasses) {
  const auto cfg = tiny_cfg();
  ImageDataGen gen(cfg, sim::Rng(13));
  const Dataset test = gen.make_test_set(400);
  std::vector<int> hist(cfg.num_classes, 0);
  for (int l : test.labels) hist[static_cast<std::size_t>(l)]++;
  for (int h : hist) EXPECT_GT(h, 0);
}

}  // namespace
}  // namespace lifl::ml
