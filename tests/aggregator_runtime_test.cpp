// Tests for the step-based aggregator runtime (Fig. 14): Recv/Agg/Send
// sequencing, eager vs lazy timing, goals, cold starts, role conversion,
// pool pulling, version filtering and stateless failover.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/model_spec.hpp"

namespace lifl::fl {
namespace {

struct World {
  sim::Simulator sim;
  sim::Cluster cluster;
  dp::DataPlane plane;

  explicit World(dp::DataPlaneConfig cfg = dp::lifl_plane(),
                 std::size_t nodes = 2)
      : cluster(sim, nodes), plane(cluster, cfg, sim::Rng(42)) {}

  ModelUpdate update(std::uint32_t version = 1, std::uint64_t samples = 10,
                     std::size_t bytes = 1'000'000) {
    ModelUpdate u;
    u.model_version = version;
    u.sample_count = samples;
    u.logical_bytes = bytes;
    return u;
  }
};

AggregatorRuntime::Config leaf_cfg(ParticipantId id, std::uint32_t goal,
                                   std::size_t bytes = 1'000'000) {
  AggregatorRuntime::Config c;
  c.id = id;
  c.node = 0;
  c.role = AggRole::kLeaf;
  c.goal = goal;
  c.result_bytes = bytes;
  c.pull_from_pool = true;
  return c;
}

TEST(AggregatorRuntime, ZeroGoalThrows) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  c.goal = 0;
  EXPECT_THROW(AggregatorRuntime(w.plane, c), std::invalid_argument);
}

TEST(AggregatorRuntime, PullsFromPoolAndSendsOnGoal) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 2);
  ModelUpdate result;
  bool got = false;
  c.on_result = [&](ModelUpdate u) {
    result = std::move(u);
    got = true;
  };
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update(1, 10));
  w.plane.env(0).pool.push(w.update(1, 30));
  w.sim.run();
  EXPECT_TRUE(got);
  EXPECT_TRUE(rt.done());
  EXPECT_EQ(rt.aggregated(), 2u);
  EXPECT_EQ(result.sample_count, 40u);
  EXPECT_EQ(result.updates_folded, 2u);
}

TEST(AggregatorRuntime, EagerProcessesBeforeAllArrive) {
  // Eager: the first update is Recv+Agg'd while the second is still absent.
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 2);
  c.timing = AggTiming::kEager;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update());
  w.sim.run();  // drains: first update fully aggregated
  EXPECT_EQ(rt.aggregated(), 1u);
  EXPECT_FALSE(rt.done());
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_TRUE(rt.done());
}

TEST(AggregatorRuntime, LazyWaitsForFullBatch) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 2);
  c.timing = AggTiming::kLazy;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  // Lazy just-in-time consumption (Fig. 1): the early update stays queued
  // in the pool (broker / shm), not even pulled into the runtime, until the
  // whole batch is available.
  EXPECT_EQ(rt.aggregated(), 0u);
  EXPECT_EQ(rt.received(), 0u);
  EXPECT_EQ(w.plane.env(0).pool.depth(), 1u);
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_TRUE(rt.done());
  EXPECT_EQ(rt.aggregated(), 2u);
  EXPECT_EQ(w.plane.env(0).pool.depth(), 0u);
}

TEST(AggregatorRuntime, EagerFinishesSoonerThanLazyOnSpreadArrivals) {
  // The §5.4 claim, at runtime granularity: with arrivals spread in time,
  // eager overlaps Recv/Agg with the arrival gaps; lazy pays them serially
  // after the last arrival.
  auto run_with = [&](AggTiming timing) {
    World w;
    AggregatorRuntime::Config c = leaf_cfg(1, 4, 50'000'000);
    c.timing = timing;
    AggregatorRuntime rt(w.plane, c);
    rt.start();
    for (int i = 0; i < 4; ++i) {
      w.sim.schedule_at(i * 1.0, [&w, i] {
        w.plane.env(0).pool.push(w.update(1, 10, 50'000'000));
      });
    }
    w.sim.run();
    return rt.sent_at();
  };
  const double eager = run_with(AggTiming::kEager);
  const double lazy = run_with(AggTiming::kLazy);
  EXPECT_LT(eager, lazy);
}

TEST(AggregatorRuntime, SendsToConsumerThroughDataPlane) {
  World w;
  // Consumer: a "top" runtime with goal 1.
  AggregatorRuntime::Config tc;
  tc.id = 2;
  tc.node = 0;
  tc.role = AggRole::kTop;
  tc.goal = 1;
  bool top_got = false;
  tc.on_result = [&](ModelUpdate) { top_got = true; };
  AggregatorRuntime top(w.plane, tc);
  top.start();

  AggregatorRuntime::Config lc = leaf_cfg(1, 1);
  lc.consumer = 2;
  AggregatorRuntime leaf(w.plane, lc);
  leaf.start();

  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_TRUE(top_got);
  EXPECT_TRUE(leaf.done());
  EXPECT_TRUE(top.done());
}

TEST(AggregatorRuntime, ColdStartOnStartDelaysProcessing) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  c.cold_trigger = ColdStartTrigger::kOnStart;
  c.cold_start_secs = 2.5;
  c.cold_start_cycles = 1e9;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  EXPECT_FALSE(rt.ready());
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_TRUE(rt.done());
  EXPECT_GE(rt.sent_at(), 2.5);
  EXPECT_DOUBLE_EQ(
      w.cluster.node(0).cpu().cycles(sim::CostTag::kStartup), 1e9);
}

TEST(AggregatorRuntime, ReactiveColdStartBeginsAtFirstUpdate) {
  // The cascading-cold-start behavior of reactive control planes (§2.3).
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  c.cold_trigger = ColdStartTrigger::kOnFirstUpdate;
  c.cold_start_secs = 2.0;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.sim.run_until(10.0);
  EXPECT_FALSE(rt.ready());  // nothing arrived: still scaled to zero
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_TRUE(rt.done());
  EXPECT_GE(rt.sent_at(), 12.0);  // cold start began at t=10
}

TEST(AggregatorRuntime, WarmInstanceStartsImmediately) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  c.cold_trigger = ColdStartTrigger::kNone;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  EXPECT_TRUE(rt.ready());
}

TEST(AggregatorRuntime, ConvertRoleIsStatelessAndWarm) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update(1, 25));
  w.sim.run();
  ASSERT_TRUE(rt.done());

  // Promote to middle with a new goal; no cold start, no residual state.
  AggregatorRuntime::Config mc;
  mc.id = 9;
  mc.node = 0;
  mc.role = AggRole::kMiddle;
  mc.goal = 1;
  ModelUpdate out;
  mc.on_result = [&](ModelUpdate u) { out = std::move(u); };
  rt.convert_role(mc);
  EXPECT_TRUE(rt.ready());
  EXPECT_EQ(rt.aggregated(), 0u);
  EXPECT_EQ(rt.config().role, AggRole::kMiddle);

  ModelUpdate u = w.update(1, 7);
  rt.inject(std::move(u));
  w.sim.run();
  EXPECT_TRUE(rt.done());
  EXPECT_EQ(out.sample_count, 7u);  // old 25 samples gone: stateless
}

TEST(AggregatorRuntime, ConvertRoleReregistersRoutes) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  EXPECT_TRUE(w.plane.node_of(1).has_value());
  AggregatorRuntime::Config mc = leaf_cfg(9, 1);
  mc.pull_from_pool = false;
  rt.convert_role(mc);
  EXPECT_FALSE(w.plane.node_of(1).has_value());
  EXPECT_TRUE(w.plane.node_of(9).has_value());
}

TEST(AggregatorRuntime, StaleVersionsDroppedAndRepulled) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  c.expected_version = 5;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update(3));  // stale round-3 straggler
  w.sim.run();
  EXPECT_EQ(rt.stale_dropped(), 1u);
  EXPECT_FALSE(rt.done());
  w.plane.env(0).pool.push(w.update(5));
  w.sim.run();
  EXPECT_TRUE(rt.done());
}

TEST(AggregatorRuntime, StopReturnsBufferedUpdatesToPool) {
  // A lazy *middle* receives directed sends and buffers them in its FIFO
  // until its goal is met; stopping it hands the buffered updates back to
  // the node pool (stateless failover).
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 3);
  c.timing = AggTiming::kLazy;
  c.role = AggRole::kMiddle;
  c.pull_from_pool = false;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.send(50, 0, 1, w.update());
  w.plane.send(51, 0, 1, w.update());
  w.sim.run();
  EXPECT_EQ(rt.received(), 2u);
  rt.stop();  // failure / scale-down: stateless hand-back
  w.sim.run();  // lets any stale pull waiters re-deposit their claims
  EXPECT_EQ(w.plane.env(0).pool.depth(), 2u);
}

TEST(AggregatorRuntime, LazyNeverDrainsPoolBeforeBatchReady) {
  // Under-goal lazy batches stay in the shared queue across a failure: a
  // stopped lazy instance has nothing to hand back because it never pulled.
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 3);
  c.timing = AggTiming::kLazy;
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update());
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_EQ(rt.received(), 0u);
  rt.stop();
  w.sim.run();
  EXPECT_EQ(w.plane.env(0).pool.depth(), 2u);
}

TEST(AggregatorRuntime, SuccessorCompletesAfterPredecessorFailure) {
  // Stateless failover (§3): a replacement aggregator picks up the pool
  // contents a failed instance returned and completes the aggregation.
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 2);
  c.timing = AggTiming::kLazy;
  auto failed = std::make_unique<AggregatorRuntime>(w.plane, c);
  failed->start();
  w.plane.env(0).pool.push(w.update(1, 10));
  w.plane.env(0).pool.push(w.update(1, 20));
  w.sim.run_until(0.0);  // deliveries into the doomed instance's FIFO
  failed->stop();
  failed.reset();

  AggregatorRuntime::Config c2 = leaf_cfg(2, 2);
  ModelUpdate out;
  bool got = false;
  c2.on_result = [&](ModelUpdate u) {
    out = std::move(u);
    got = true;
  };
  AggregatorRuntime successor(w.plane, c2);
  successor.start();
  w.sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(out.sample_count, 30u);
}

TEST(AggregatorRuntime, RecvAggBillsCpuTags) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 1);
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_GT(w.cluster.node(0).cpu().cycles(sim::CostTag::kAggregator), 0.0);
  EXPECT_GT(w.cluster.node(0).cpu().cycles(sim::CostTag::kSerialization), 0.0);
}

TEST(AggregatorRuntime, SidecarObservesExecutionTimes) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 2);
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update());
  w.plane.env(0).pool.push(w.update());
  w.sim.run();
  EXPECT_EQ(w.plane.env(0).metrics.get(dp::metric_keys::kAggExecCount), 2.0);
  EXPECT_GT(w.plane.env(0).metrics.get(dp::metric_keys::kAggExecSum), 0.0);
}

TEST(AggregatorRuntime, InvalidGoalCombinationsThrow) {
  World w;
  // Open goals may start at zero (they cannot complete while open).
  AggregatorRuntime::Config open = leaf_cfg(1, 1);
  open.goal = 0;
  open.goal_open = true;
  open.pull_from_pool = false;
  open.goal_kind = GoalKind::kFoldedUpdates;
  EXPECT_NO_THROW(AggregatorRuntime(w.plane, open));
  // Pool pulls are sized in messages: folded-count goals cannot pull.
  AggregatorRuntime::Config pull = leaf_cfg(2, 4);
  pull.goal_kind = GoalKind::kFoldedUpdates;
  EXPECT_THROW(AggregatorRuntime(w.plane, pull), std::invalid_argument);
  // Lazy batches are bounded in messages too.
  AggregatorRuntime::Config lazy = leaf_cfg(3, 4);
  lazy.pull_from_pool = false;
  lazy.timing = AggTiming::kLazy;
  lazy.goal_kind = GoalKind::kFoldedUpdates;
  EXPECT_THROW(AggregatorRuntime(w.plane, lazy), std::invalid_argument);
}

TEST(AggregatorRuntime, FoldedGoalCompletesOnClientUpdateCount) {
  // A folded-count consumer finishes when the aggregates it folded
  // *represent* `goal` client updates — two messages carrying 3 + 2.
  World w;
  AggregatorRuntime::Config c;
  c.id = 1;
  c.node = 0;
  c.goal = 5;
  c.goal_kind = GoalKind::kFoldedUpdates;
  ModelUpdate out;
  bool got = false;
  c.on_result = [&](ModelUpdate u) {
    out = std::move(u);
    got = true;
  };
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  ModelUpdate a = w.update(1, 30);
  a.updates_folded = 3;
  rt.inject(std::move(a));
  w.sim.run();
  EXPECT_FALSE(got);  // 3 of 5 folded: keep listening
  EXPECT_EQ(rt.folded(), 3u);
  ModelUpdate b = w.update(1, 20);
  b.updates_folded = 2;
  rt.inject(std::move(b));
  w.sim.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(out.updates_folded, 5u);
  EXPECT_EQ(out.sample_count, 50u);
}

TEST(AggregatorRuntime, OpenGoalHoldsSendUntilSealed) {
  World w;
  AggregatorRuntime::Config c;
  c.id = 1;
  c.node = 0;
  c.goal = 0;
  c.goal_open = true;
  c.goal_kind = GoalKind::kFoldedUpdates;
  bool got = false;
  c.on_result = [&](ModelUpdate) { got = true; };
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  rt.inject(w.update(1, 10));
  rt.inject(w.update(1, 20));
  w.sim.run();
  EXPECT_FALSE(got);  // open: folds but never sends
  EXPECT_EQ(rt.folded(), 2u);
  rt.set_goal(2, /*open=*/false);  // seal at what was assigned
  w.sim.run();
  EXPECT_TRUE(got);
}

TEST(AggregatorRuntime, SetGoalShrinkTriggersImmediateSend) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 10);
  ModelUpdate out;
  bool got = false;
  c.on_result = [&](ModelUpdate u) {
    out = std::move(u);
    got = true;
  };
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update(1, 10));
  w.plane.env(0).pool.push(w.update(1, 30));
  w.sim.run();
  EXPECT_FALSE(got);  // 2 of 10 folded, idle
  rt.set_goal(2);
  EXPECT_TRUE(got);   // the shrunken goal is already met
  EXPECT_EQ(out.sample_count, 40u);
}

TEST(AggregatorRuntime, DrainSealsAtReceivedAndSendsPartial) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 10);
  ModelUpdate out;
  bool got = false;
  c.on_result = [&](ModelUpdate u) {
    out = std::move(u);
    got = true;
  };
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  w.plane.env(0).pool.push(w.update(1, 5));
  w.plane.env(0).pool.push(w.update(1, 7));
  w.plane.env(0).pool.push(w.update(1, 9));
  w.sim.run();
  EXPECT_EQ(rt.drain(), 3u);
  w.sim.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(out.updates_folded, 3u);
  EXPECT_EQ(out.sample_count, 21u);
}

TEST(AggregatorRuntime, DrainWithNothingAcceptedSendsNothing) {
  World w;
  AggregatorRuntime::Config c = leaf_cfg(1, 10);
  bool got = false;
  c.on_result = [&](ModelUpdate) { got = true; };
  AggregatorRuntime rt(w.plane, c);
  rt.start();
  EXPECT_EQ(rt.drain(), 0u);
  w.sim.run();
  EXPECT_FALSE(got);
  EXPECT_FALSE(rt.done());
}

TEST(AggregatorRuntime, RearmFromOnResultStreamsBatches) {
  // The streaming-leaf pattern: the on_result hook re-arms the same warm
  // instance for the next batch, so one runtime folds many batches.
  World w;
  int batches = 0;
  std::uint64_t samples = 0;
  std::unique_ptr<AggregatorRuntime> rt;
  std::function<AggregatorRuntime::Config()> make_cfg = [&] {
    AggregatorRuntime::Config c = leaf_cfg(1, 2);
    c.on_result = [&](ModelUpdate u) {
      ++batches;
      samples += u.sample_count;
      if (batches < 3) rt->rearm(make_cfg());  // claim the next batch
    };
    return c;
  };
  rt = std::make_unique<AggregatorRuntime>(w.plane, make_cfg());
  rt->start();
  for (int i = 0; i < 6; ++i) {
    w.plane.env(0).pool.push(w.update(1, 10));
  }
  w.sim.run();
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(samples, 60u);
}

TEST(AggregatorRuntime, HierarchicalRealTensorsEqualFlatAverage) {
  // End-to-end on real payloads: 2 leaves -> top over the data plane must
  // equal the flat weighted mean of the 4 client tensors.
  World w(dp::lifl_plane(/*real_payloads=*/true));
  sim::Rng rng(3);
  std::vector<std::shared_ptr<const ml::Tensor>> tensors;
  std::vector<std::uint64_t> weights{5, 10, 15, 20};
  for (int i = 0; i < 4; ++i) {
    tensors.push_back(std::make_shared<const ml::Tensor>(
        ml::Tensor::randn(rng, 32, 1.0f)));
  }

  AggregatorRuntime::Config tc;
  tc.id = 100;
  tc.node = 0;
  tc.role = AggRole::kTop;
  tc.goal = 2;
  ModelUpdate global;
  bool got = false;
  tc.on_result = [&](ModelUpdate u) {
    global = std::move(u);
    got = true;
  };
  AggregatorRuntime top(w.plane, tc);
  top.start();

  std::vector<std::unique_ptr<AggregatorRuntime>> leaves;
  for (int l = 0; l < 2; ++l) {
    AggregatorRuntime::Config lc = leaf_cfg(200 + l, 2);
    lc.consumer = 100;
    leaves.push_back(std::make_unique<AggregatorRuntime>(w.plane, lc));
    leaves.back()->start();
  }
  for (int i = 0; i < 4; ++i) {
    ModelUpdate u;
    u.model_version = 1;
    u.sample_count = weights[i];
    u.logical_bytes = 128;
    u.tensor = tensors[i];
    w.plane.env(0).pool.push(std::move(u));
  }
  w.sim.run();
  ASSERT_TRUE(got);
  ASSERT_TRUE(global.tensor);
  EXPECT_EQ(global.sample_count, 50u);
  EXPECT_EQ(global.updates_folded, 4u);

  std::vector<std::pair<const ml::Tensor*, std::uint64_t>> flat;
  for (int i = 0; i < 4; ++i) flat.emplace_back(tensors[i].get(), weights[i]);
  const ml::Tensor reference = FedAvgAccumulator::batch_average(flat);
  EXPECT_LT(ml::Tensor::max_abs_diff(*global.tensor, reference), 1e-4);
}

}  // namespace
}  // namespace lifl::fl
