// The speculation differential harness: adaptive and optimistic shard
// synchronization must be invisible in the results. A seeded matrix of
// campaigns (3 hierarchy modes x faults on/off x flaky clients on/off x
// shards {1,2,4} x all three sync modes) is checked bitwise against the
// 1-shard conservative oracle, and targeted unit tests drive
// `sim::ShardedSimulator` straight into the rollback path: a straggling
// post exactly at the horizon, two stragglers in one window, a rollback
// spanning a checkpoint mark, and a rollback while a trace ring is
// mid-overwrite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/sim/sharded_simulator.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/workload/device_tier.hpp"

namespace {

namespace sys = lifl::sys;
namespace wl = lifl::wl;
using lifl::sim::CausalityViolation;
using lifl::sim::ShardedSimulator;
using lifl::sim::SyncMode;

std::size_t env_shards() {
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    return std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  return 2;
}

// ---------------------------------------------------------------------------
// The campaign matrix.

struct Scenario {
  const char* name;
  sys::HierarchyMode hierarchy;
  bool faults;
  bool flaky;
};

/// Every valid cell of hierarchy x faults x flaky. Faults require the
/// streaming hierarchy (planned/async); with the client lifecycle on they
/// must be crash-only (the session layer supersedes wire-level faults).
const Scenario kScenarios[] = {
    {"fixed", sys::HierarchyMode::kFixed, false, false},
    {"fixed+flaky", sys::HierarchyMode::kFixed, false, true},
    {"planned", sys::HierarchyMode::kPlanned, false, false},
    {"planned+faults", sys::HierarchyMode::kPlanned, true, false},
    {"planned+flaky", sys::HierarchyMode::kPlanned, false, true},
    {"planned+faults+flaky", sys::HierarchyMode::kPlanned, true, true},
    {"async", sys::HierarchyMode::kAsync, false, false},
    {"async+faults", sys::HierarchyMode::kAsync, true, false},
    {"async+flaky", sys::HierarchyMode::kAsync, false, true},
    {"async+faults+flaky", sys::HierarchyMode::kAsync, true, true},
};

sys::ShardedCampaignConfig matrix_campaign(const Scenario& sc,
                                           std::size_t shards,
                                           SyncMode sync) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 2;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 400.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.4;
  cfg.diurnal_period_secs = 4.0;
  cfg.seed = 77;
  cfg.hierarchy = sc.hierarchy;
  if (sc.hierarchy != sys::HierarchyMode::kFixed) {
    cfg.replan_interval_secs = 0.5;
    cfg.middle_fanin = 4;
  }
  if (sc.faults) {
    cfg.fault.seed = 9001;
    cfg.fault.leaf_crash_rate = 0.10;
    cfg.fault.middle_crash_rate = 0.05;
    if (sc.hierarchy == sys::HierarchyMode::kPlanned) {
      cfg.fault.top_crash_rate = 0.25;
    }
    if (!sc.flaky) {
      // Wire-level faults, only without the lifecycle session layer.
      cfg.fault.upload_drop_rate = 0.1;
      cfg.fault.upload_corrupt_rate = 0.05;
      cfg.fault.retry_base_secs = 0.05;
      cfg.fault.retry_cap_secs = 1.0;
    }
  }
  if (sc.flaky) {
    cfg.device_tiers = wl::TierMix{0.4, 0.3, 0.3};
    cfg.lifecycle.disconnect_rate = 0.2;
    cfg.lifecycle.chunk_bytes = 10'000;
    cfg.lifecycle.offline_base_secs = 0.05;
    cfg.lifecycle.offline_cap_secs = 1.0;
  }
  cfg.sync_mode = sync;
  cfg.spec_commit_every_secs = 5.0;
  return cfg;
}

/// The full bitwise claim: everything a result reports that is produced by
/// simulated-event order must be *identical* — exact ==, not ULP — across
/// shard counts and sync modes. Process-local wall/window telemetry is the
/// only thing allowed to differ.
void expect_bitwise(const sys::ShardedCampaignResult& a,
                    const sys::ShardedCampaignResult& b,
                    const std::string& what) {
  ASSERT_EQ(a.round_started_at.size(), b.round_started_at.size()) << what;
  for (std::size_t r = 0; r < a.round_started_at.size(); ++r) {
    EXPECT_EQ(a.round_started_at[r], b.round_started_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_completed_at[r], b.round_completed_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_samples[r], b.round_samples[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_weight[r], b.round_weight[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_spawned[r], b.round_spawned[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_reused[r], b.round_reused[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_refolded[r], b.round_refolded[r])
        << what << " round " << r + 1;
  }
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].uploads, b.groups[g].uploads) << what << " g" << g;
    EXPECT_EQ(a.groups[g].pool_pushed, b.groups[g].pool_pushed)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].gateway_busy_secs, b.groups[g].gateway_busy_secs)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].gateway_wait_secs, b.groups[g].gateway_wait_secs)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].cpu_cycles, b.groups[g].cpu_cycles)
        << what << " g" << g;
  }
  EXPECT_EQ(a.spawned_total, b.spawned_total) << what;
  EXPECT_EQ(a.reused_total, b.reused_total) << what;
  EXPECT_EQ(a.replans, b.replans) << what;
  EXPECT_EQ(a.leaf_drains, b.leaf_drains) << what;
  EXPECT_EQ(a.peak_leaves, b.peak_leaves) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.sim_secs, b.sim_secs) << what;
  EXPECT_EQ(a.checkpoint_marks, b.checkpoint_marks) << what;
  // Fault/recovery telemetry.
  EXPECT_EQ(a.faults_injected, b.faults_injected) << what;
  EXPECT_EQ(a.leaf_crashes, b.leaf_crashes) << what;
  EXPECT_EQ(a.middle_crashes, b.middle_crashes) << what;
  EXPECT_EQ(a.top_crashes, b.top_crashes) << what;
  EXPECT_EQ(a.refolded_updates, b.refolded_updates) << what;
  EXPECT_EQ(a.reinjected_partials, b.reinjected_partials) << what;
  EXPECT_EQ(a.upload_retries, b.upload_retries) << what;
  EXPECT_EQ(a.upload_drops, b.upload_drops) << what;
  EXPECT_EQ(a.upload_corruptions, b.upload_corruptions) << what;
  EXPECT_EQ(a.recovery_secs, b.recovery_secs) << what;
  // Lifecycle / tier telemetry.
  for (std::size_t t = 0; t < wl::kTierCount; ++t) {
    EXPECT_EQ(a.tiers[t].selected, b.tiers[t].selected) << what << " t" << t;
    EXPECT_EQ(a.tiers[t].completed, b.tiers[t].completed)
        << what << " t" << t;
    EXPECT_EQ(a.tiers[t].disconnects, b.tiers[t].disconnects)
        << what << " t" << t;
    EXPECT_EQ(a.tiers[t].stragglers, b.tiers[t].stragglers)
        << what << " t" << t;
  }
  EXPECT_EQ(a.disconnects, b.disconnects) << what;
  EXPECT_EQ(a.resumed_uploads, b.resumed_uploads) << what;
  EXPECT_EQ(a.chunks_sent, b.chunks_sent) << what;
  EXPECT_EQ(a.chunks_resent, b.chunks_resent) << what;
  EXPECT_EQ(a.selection_redraws, b.selection_redraws) << what;
  EXPECT_EQ(a.offline_queue_peak, b.offline_queue_peak) << what;
  EXPECT_EQ(a.gate_wait_secs, b.gate_wait_secs) << what;
}

TEST(SyncEquivalence, MatrixBitwiseEqualToOneShardConservative) {
  const std::size_t env = env_shards();
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  if (std::find(shard_counts.begin(), shard_counts.end(), env) ==
      shard_counts.end()) {
    shard_counts.push_back(env);
  }
  const SyncMode modes[] = {SyncMode::kConservative, SyncMode::kAdaptive,
                            SyncMode::kOptimistic};
  std::uint64_t total_skipped = 0;
  for (const Scenario& sc : kScenarios) {
    const auto oracle = sys::run_sharded_campaign(
        matrix_campaign(sc, 1, SyncMode::kConservative));
    EXPECT_EQ(oracle.windows, 0u) << sc.name;
    for (const std::size_t shards : shard_counts) {
      for (const SyncMode sync : modes) {
        if (shards == 1 && sync == SyncMode::kConservative) continue;
        const std::string label =
            std::string(sc.name) + " shards=" + std::to_string(shards) +
            " sync=" +
            (sync == SyncMode::kConservative ? "conservative"
             : sync == SyncMode::kAdaptive   ? "adaptive"
                                             : "optimistic");
        const auto r =
            sys::run_sharded_campaign(matrix_campaign(sc, shards, sync));
        expect_bitwise(oracle, r, label);
        if (shards == 1) {
          // Sync modes are a no-op without barriers.
          EXPECT_EQ(r.windows, 0u) << label;
          EXPECT_EQ(r.windows_skipped, 0u) << label;
          EXPECT_EQ(r.rollbacks, 0u) << label;
        } else if (sync == SyncMode::kConservative) {
          EXPECT_EQ(r.windows_skipped, 0u) << label;
          EXPECT_EQ(r.rollbacks, 0u) << label;
        } else {
          if (sync == SyncMode::kAdaptive) {
            EXPECT_EQ(r.rollbacks, 0u) << label;  // adaptive is sound
          }
          total_skipped += r.windows_skipped;
        }
      }
    }
  }
  // The widening actually engaged somewhere in the matrix.
  EXPECT_GT(total_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Targeted rollback units, driving the sharded core directly.

ShardedSimulator::Config toy(std::size_t shards, double fence = 0.0) {
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = 0.5;
  cfg.sync = SyncMode::kOptimistic;
  cfg.spec_fence = fence;
  return cfg;
}

// A post whose delivery time t satisfies t <= receiver-clock is a
// violation even at exact equality: the receiver already executed its
// event *at* t, so injecting another one there would reorder history.
TEST(SyncRollback, LatePostExactlyAtTheHorizonRaisesViolation) {
  // First quiet window speculates one lookahead past the sound horizon
  // (t_min 1.0, conservative 1.5, speculative 2.0): shard 0 runs its
  // event at 1.6 before the barrier surfaces shard 1's delivery at 1.6.
  bool delivered = false;
  {
    ShardedSimulator sharded(toy(2));
    sharded.shard(0).schedule_at(1.0, [] {});
    sharded.shard(0).schedule_at(1.6, [] {});
    sharded.shard(1).schedule_at(1.1, [&] {
      sharded.post(1, 0, 1.6, [&] { delivered = true; });
    });
    try {
      sharded.run();
      FAIL() << "expected CausalityViolation";
    } catch (const CausalityViolation& v) {
      EXPECT_EQ(v.post_time, 1.6);
      EXPECT_EQ(v.receiver_now, 1.6);
      EXPECT_EQ(v.src, 1u);
      EXPECT_EQ(v.dst, 0u);
      // The speculative window must not have delivered the straggler.
      EXPECT_FALSE(delivered);
    }
  }
  // Replay with the fence raised to the violated clock: windows below the
  // fence never speculate, so the same model now runs to completion and
  // the straggler lands exactly at its posted time.
  double delivered_at = -1.0;
  ShardedSimulator replay(toy(2, /*fence=*/1.6));
  replay.shard(0).schedule_at(1.0, [] {});
  replay.shard(0).schedule_at(1.6, [] {});
  replay.shard(1).schedule_at(1.1, [&] {
    replay.post(1, 0, 1.6, [&] { delivered_at = replay.shard(0).now(); });
  });
  replay.run();
  EXPECT_EQ(delivered_at, 1.6);
}

TEST(SyncRollback, TwoStragglersInOneWindowFenceIsMaxViolatedClock) {
  // Shard 2 posts into the past of BOTH other shards in the same
  // speculative window. The violation must report the first straggler in
  // (t, src, seq) order but carry the maximum violated receiver clock —
  // a fence that only cleared the first would just violate again on the
  // second during replay.
  ShardedSimulator sharded(toy(3));
  sharded.shard(0).schedule_at(1.0, [] {});
  sharded.shard(0).schedule_at(1.8, [] {});
  sharded.shard(1).schedule_at(1.05, [] {});
  sharded.shard(1).schedule_at(1.9, [] {});
  sharded.shard(2).schedule_at(1.1, [&] {
    sharded.post(2, 0, 1.6, [] {});
    sharded.post(2, 1, 1.65, [] {});
  });
  try {
    sharded.run();
    FAIL() << "expected CausalityViolation";
  } catch (const CausalityViolation& v) {
    EXPECT_EQ(v.post_time, 1.6);  // first straggler in sort order...
    EXPECT_EQ(v.src, 2u);
    EXPECT_EQ(v.dst, 0u);
    EXPECT_EQ(v.receiver_now, 1.9);  // ...but the max violated clock
  }

  // One replay with that fence clears both stragglers at once.
  std::vector<std::pair<double, int>> landed;
  ShardedSimulator replay(toy(3, /*fence=*/1.9));
  replay.shard(0).schedule_at(1.0, [] {});
  replay.shard(0).schedule_at(1.8, [] {});
  replay.shard(1).schedule_at(1.05, [] {});
  replay.shard(1).schedule_at(1.9, [] {});
  replay.shard(2).schedule_at(1.1, [&] {
    replay.post(2, 0, 1.6,
                [&] { landed.emplace_back(replay.shard(0).now(), 0); });
    replay.post(2, 1, 1.65,
                [&] { landed.emplace_back(replay.shard(1).now(), 1); });
  });
  replay.run();
  ASSERT_EQ(landed.size(), 2u);
  EXPECT_EQ(landed[0], (std::pair<double, int>{1.6, 0}));
  EXPECT_EQ(landed[1], (std::pair<double, int>{1.65, 1}));
}

// ---------------------------------------------------------------------------
// Campaign-level rollbacks composed with checkpointing and tracing.

/// A planned campaign tuned so optimistic multi-shard runs actually roll
/// back: sparse cross traffic (one relay per group per round) and diurnal
/// troughs let the speculation bonus ramp, then a relay lands in the top
/// shard's past.
sys::ShardedCampaignConfig rollback_campaign(std::size_t shards,
                                             SyncMode sync) {
  Scenario sc{"planned", sys::HierarchyMode::kPlanned, false, false};
  auto cfg = matrix_campaign(sc, shards, sync);
  cfg.rounds = 3;
  return cfg;
}

TEST(SyncRollback, RollbackSpanningACheckpointMarkKeepsBlobsAndResume) {
  struct Cut {
    std::uint32_t round;
    double mark;
  };
  const double every = 0.5;  // several marks inside each ~1.4 s round

  auto with_ck = [&](std::size_t shards, SyncMode sync,
                     std::vector<Cut>* cuts,
                     std::vector<std::vector<std::uint8_t>>* blobs) {
    auto cfg = rollback_campaign(shards, sync);
    cfg.checkpoint_every_secs = every;
    cfg.on_checkpoint = [cuts, blobs](const std::vector<std::uint8_t>& blob,
                                      std::uint32_t round, double mark) {
      if (cuts != nullptr) cuts->push_back(Cut{round, mark});
      if (blobs != nullptr) blobs->push_back(blob);
    };
    return cfg;
  };

  // Oracle: conservative sync at the SAME shard count. Checkpoint blobs
  // serialize one clock entry per shard, so their size — and with it the
  // in-sim marshal billing on group 0's node — legitimately depends on K;
  // cross-K equivalence without checkpoints is the matrix test's job.
  std::vector<Cut> mono_cuts;
  const auto mono = sys::run_sharded_campaign(
      with_ck(env_shards(), SyncMode::kConservative, &mono_cuts, nullptr));

  std::vector<Cut> opt_cuts;
  std::vector<std::vector<std::uint8_t>> opt_blobs;
  const auto opt = sys::run_sharded_campaign(
      with_ck(env_shards(), SyncMode::kOptimistic, &opt_cuts, &opt_blobs));

  expect_bitwise(mono, opt, "optimistic+checkpoints");
  EXPECT_GT(opt.rollbacks, 0u);
  EXPECT_GT(opt.checkpoint_marks, 0u);

  // Rollbacks must not duplicate or drop checkpoint emissions: the blob
  // stream is exactly the oracle's cut sequence, strictly increasing.
  ASSERT_EQ(opt_cuts.size(), mono_cuts.size());
  for (std::size_t i = 0; i < opt_cuts.size(); ++i) {
    EXPECT_EQ(opt_cuts[i].round, mono_cuts[i].round) << "blob " << i;
    EXPECT_EQ(opt_cuts[i].mark, mono_cuts[i].mark) << "blob " << i;
    if (i > 0) {
      EXPECT_TRUE(opt_cuts[i - 1].round < opt_cuts[i].round ||
                  (opt_cuts[i - 1].round == opt_cuts[i].round &&
                   opt_cuts[i - 1].mark < opt_cuts[i].mark))
          << "duplicate or reordered emission at blob " << i;
    }
  }

  // Resuming an optimistic run from a mid-campaign user blob replays the
  // tail — rollbacks and all — to the same bitwise result.
  ASSERT_GE(opt_blobs.size(), 2u);
  const auto& middle = opt_blobs[opt_blobs.size() / 2];
  auto rcfg = with_ck(env_shards(), SyncMode::kOptimistic, nullptr, nullptr);
  rcfg.resume_blob = &middle;
  const auto resumed = sys::run_sharded_campaign(rcfg);
  expect_bitwise(mono, resumed, "optimistic resume from mid-campaign blob");
}

TEST(SyncRollback, RollbackWhileTraceRingIsMidOverwriteStaysPassive) {
  // A deliberately tiny ring (1 KiB per shard) wraps long before the
  // first rollback, so the rollback's squashed window had already
  // overwritten live ring slots. Results must stay bitwise — the rings
  // are wall-side observers, never inputs.
  const auto mono =
      sys::run_sharded_campaign(rollback_campaign(1, SyncMode::kConservative));

  auto cfg = rollback_campaign(env_shards(), SyncMode::kOptimistic);
  cfg.obs.trace = true;
  cfg.obs.trace_ring_kb = 1;
  const auto traced = sys::run_sharded_campaign(cfg);

  expect_bitwise(mono, traced, "optimistic+tiny-trace-ring");
  EXPECT_GT(traced.rollbacks, 0u);
  ASSERT_NE(traced.obs, nullptr);
  // The ring really was mid-overwrite: more events were recorded than a
  // 1 KiB ring holds.
  EXPECT_GT(traced.obs->trace().dropped_events(), 0u);
}

}  // namespace
