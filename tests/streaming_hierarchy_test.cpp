// Streaming hierarchy orchestrator: claim-based streaming leaves, warm
// reuse, mid-round re-planning with partial drains, and the re-plan
// equivalence property — identical arrivals yield a bitwise-identical
// final model whether re-planning fires 0, 1, or N times mid-round.
//
// The campaign-level tests honour LIFL_TEST_SHARDS (CI runs them at 2 and
// 4) and additionally pin the multi-shard runs to the 1-shard results.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/control/campaign_planner.hpp"
#include "src/dataplane/config.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/fl/fedavg.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/streaming_hierarchy.hpp"

namespace {

using namespace lifl;

std::size_t env_shards() {
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    const std::size_t s = std::strtoul(env, nullptr, 10);
    if (s >= 1) return s;
  }
  return 2;
}

// ---------------------------------------------------------------------------
// Single-group harness: one node, one StreamingHierarchy, seeded arrivals.

struct GroupWorld {
  sim::Simulator sim;
  sim::Cluster cluster;
  dp::DataPlane plane;
  ctrl::CampaignPlanner planner;
  sys::StreamingHierarchy hier;
  fl::ModelUpdate relay_out;
  bool relay_got = false;

  GroupWorld(ctrl::CampaignPlanner::Config pcfg,
             sys::StreamingHierarchy::Config hcfg, bool real_payloads = false)
      : cluster(sim, 1),
        plane(cluster, dp::lifl_plane(real_payloads), sim::Rng(7)),
        planner(pcfg, 1),
        hier(plane, planner, [&] {
          hcfg.on_relay_result = [this](fl::ModelUpdate u) {
            relay_out = std::move(u);
            relay_got = true;
          };
          return hcfg;
        }()) {}

  /// Seed `n` logical updates for `round`, one every `gap` seconds.
  void seed_arrivals(std::uint32_t round, std::uint32_t n, double gap,
                     double start = 0.0) {
    for (std::uint32_t i = 0; i < n; ++i) {
      sim.schedule_at(start + gap * i, [this, round, i] {
        fl::ModelUpdate u;
        u.model_version = round;
        u.producer = 10'000 + i;
        u.sample_count = 1 + (i % 5);
        u.logical_bytes = 40'000;
        plane.seed_update(0, std::move(u));
      });
    }
  }
};

ctrl::CampaignPlanner::Config small_planner() {
  ctrl::CampaignPlanner::Config p;
  p.updates_per_leaf = 10;
  p.middle_fanin = 4;
  p.max_leaves = 32;
  return p;
}

sys::StreamingHierarchy::Config small_hier() {
  sys::StreamingHierarchy::Config h;
  h.group = 0;
  h.node = 0;
  h.updates_per_leaf = 10;
  h.result_bytes = 40'000;
  h.cold_start_spawns = false;  // unit tests: no cold-start latency noise
  return h;
}

TEST(StreamingHierarchy, AggregatesEveryClaimedUpdate) {
  GroupWorld w(small_planner(), small_hier());
  const std::uint32_t n = 95;  // not a multiple of the batch size
  w.hier.begin_round(1, n, w.planner.plan_round({double(n)}).groups[0]);
  w.seed_arrivals(1, n, 0.01);
  w.sim.run();
  ASSERT_TRUE(w.relay_got);
  EXPECT_EQ(w.relay_out.updates_folded, n);
  EXPECT_TRUE(w.hier.round_done());
  EXPECT_EQ(w.hier.claimed(), n);
  EXPECT_EQ(w.hier.active_leaves(), 0u);  // everything parked itself
  w.hier.end_round();
  EXPECT_GT(w.hier.warm_pool_size(), 0u);
}

TEST(StreamingHierarchy, FanInSmallerThanBatchUsesOneLeaf) {
  GroupWorld w(small_planner(), small_hier());
  w.hier.begin_round(1, 3, w.planner.plan_round({3.0}).groups[0]);
  EXPECT_EQ(w.hier.round_stats().peak_leaves, 1u);
  w.seed_arrivals(1, 3, 0.01);
  w.sim.run();
  ASSERT_TRUE(w.relay_got);
  EXPECT_EQ(w.relay_out.updates_folded, 3u);
}

TEST(StreamingHierarchy, ZeroTargetCompletesImmediately) {
  GroupWorld w(small_planner(), small_hier());
  w.hier.begin_round(1, 0, w.planner.plan_round({0.0}).groups[0]);
  EXPECT_TRUE(w.hier.round_done());
  EXPECT_EQ(w.hier.round_stats().spawned, 0u);
  w.sim.run();
  EXPECT_FALSE(w.relay_got);  // nothing to relay
}

TEST(StreamingHierarchy, SteadyStateRoundsSpawnZeroRuntimes) {
  GroupWorld w(small_planner(), small_hier());
  for (std::uint32_t round = 1; round <= 3; ++round) {
    w.relay_got = false;
    w.hier.begin_round(round, 60, w.planner.plan_round({60.0}).groups[0]);
    w.seed_arrivals(round, 60, 0.005, w.sim.now());
    w.sim.run();
    ASSERT_TRUE(w.relay_got) << "round " << round;
    if (round == 1) {
      EXPECT_GT(w.hier.round_stats().spawned, 0u);
    } else {
      // The whole fleet was parked warm after round 1: re-arms only.
      EXPECT_EQ(w.hier.round_stats().spawned, 0u) << "round " << round;
      EXPECT_GT(w.hier.round_stats().reused, 0u);
    }
    w.hier.end_round();
  }
}

TEST(StreamingHierarchy, ReuseOffRespawnsEveryRound) {
  auto h = small_hier();
  h.reuse = false;
  GroupWorld w(small_planner(), h);
  for (std::uint32_t round = 1; round <= 2; ++round) {
    w.relay_got = false;
    w.hier.begin_round(round, 40, w.planner.plan_round({40.0}).groups[0]);
    w.seed_arrivals(round, 40, 0.005, w.sim.now());
    w.sim.run();
    ASSERT_TRUE(w.relay_got);
    EXPECT_GT(w.hier.round_stats().spawned, 0u) << "round " << round;
    EXPECT_EQ(w.hier.round_stats().reused, 0u) << "round " << round;
    w.hier.end_round();
  }
}

TEST(StreamingHierarchy, ShrinkDrainsPartialAccumulatorsIntoParent) {
  GroupWorld w(small_planner(), small_hier());
  const std::uint32_t n = 100;
  ctrl::GroupPlan plan;
  plan.leaves = 2;
  plan.middles = 0;
  w.hier.begin_round(1, n, plan);
  ASSERT_EQ(w.hier.active_leaves(), 2u);
  // 15 arrivals: leaf 1 completes its 10-update batch and re-arms; leaf 2
  // sits on a half-filled accumulator (5 of 10) when the arrivals pause.
  w.seed_arrivals(1, 15, 0.01);
  // Shrink to one leaf while leaf 2 is mid-batch: its partial aggregate
  // must drain into the relay and the unfilled remainder of its claim must
  // be released for the survivor.
  w.sim.schedule_at(1.0, [&] { w.hier.apply_leaf_target(1); });
  // Resume the remaining 85 arrivals; the surviving leaf re-claims and
  // folds everything.
  w.seed_arrivals(1, 85, 0.01, 1.5);
  w.sim.run();
  ASSERT_TRUE(w.relay_got);
  // Lossless shrink: every update still reached the relay, through the
  // drained partial plus re-claimed remainders.
  EXPECT_EQ(w.relay_out.updates_folded, n);
  EXPECT_EQ(w.relay_out.sample_count, [&] {
    std::uint64_t s = 0;
    for (std::uint32_t i = 0; i < 15; ++i) s += 1 + (i % 5);
    for (std::uint32_t i = 0; i < 85; ++i) s += 1 + (i % 5);
    return s;
  }());
  EXPECT_EQ(w.hier.round_stats().drains, 1u);
  EXPECT_GT(w.hier.round_stats().replans, 0u);
}

TEST(StreamingHierarchy, GrowActivatesParkedLeavesMidRound) {
  GroupWorld w(small_planner(), small_hier());
  const std::uint32_t n = 200;
  ctrl::GroupPlan plan;
  plan.leaves = 1;  // start minimal, grow mid-round
  plan.middles = 0;
  w.hier.begin_round(1, n, plan);
  EXPECT_EQ(w.hier.active_leaves(), 1u);
  w.seed_arrivals(1, n, 0.002);
  w.sim.schedule_at(0.1, [&] { w.hier.apply_leaf_target(6); });
  w.sim.run();
  ASSERT_TRUE(w.relay_got);
  EXPECT_EQ(w.relay_out.updates_folded, n);
  EXPECT_GE(w.hier.round_stats().peak_leaves, 6u);
}

// ---------------------------------------------------------------------------
// Re-plan equivalence on real tensors. Hierarchical FedAvg re-divides at
// every level (intermediates carry the weighted *average*), so bitwise
// identity across tree shapes holds exactly for the exact-arithmetic
// payload class: identical update tensors with small-integer values, where
// every partial average reproduces the common value bit for bit whatever
// subset a leaf folded. Distinct payloads are checked against the flat
// reference within float tolerance for every re-plan cadence.

fl::ModelUpdate tensor_update(std::uint32_t i, std::size_t dim,
                              bool distinct) {
  fl::ModelUpdate u;
  u.model_version = 1;
  u.producer = 10'000 + i;
  u.sample_count = 1 + (i % 4);
  u.logical_bytes = 4 * dim;
  auto t = std::make_shared<ml::Tensor>(dim, 0.0f);
  for (std::size_t j = 0; j < dim; ++j) {
    t->data()[j] = static_cast<float>(((distinct ? i : 0) + 3 * j) % 17);
  }
  u.tensor = std::move(t);
  return u;
}

struct ReplanOutcome {
  std::vector<float> model;
  std::uint64_t samples = 0;
  std::uint32_t folded = 0;
  std::uint64_t drains = 0;
};

/// Run one round of 80 tensor updates with a scripted re-plan pattern.
ReplanOutcome run_tensor_round(
    const std::vector<std::pair<double, int>>& replan_script, bool distinct) {
  const std::uint32_t n = 80;
  const std::size_t dim = 64;
  GroupWorld w(small_planner(), small_hier(), /*real_payloads=*/true);
  w.hier.begin_round(1, n, w.planner.plan_round({double(n)}).groups[0]);
  for (std::uint32_t i = 0; i < n; ++i) {
    w.sim.schedule_at(0.015 * i, [&w, i, dim, distinct] {
      w.plane.seed_update(0, tensor_update(i, dim, distinct));
    });
  }
  for (const auto& [at, target] : replan_script) {
    w.sim.schedule_at(at, [&w, t = target] {
      w.hier.apply_leaf_target(static_cast<std::uint32_t>(t));
    });
  }
  w.sim.run();
  EXPECT_TRUE(w.relay_got);
  ReplanOutcome out;
  EXPECT_TRUE(w.relay_out.tensor != nullptr);
  if (w.relay_out.tensor) {
    out.model.assign(w.relay_out.tensor->data(),
                     w.relay_out.tensor->data() + w.relay_out.tensor->size());
  }
  out.samples = w.relay_out.sample_count;
  out.folded = w.relay_out.updates_folded;
  out.drains = w.hier.round_stats().drains;
  return out;
}

const std::vector<std::pair<double, int>> kOnce = {{0.4, 2}};
const std::vector<std::pair<double, int>> kMany = {
    {0.2, 1}, {0.4, 7}, {0.6, 2}, {0.8, 5}, {1.0, 1}};

TEST(StreamingHierarchy, ReplanEquivalenceBitwiseFinalModel) {
  const ReplanOutcome none = run_tensor_round({}, /*distinct=*/false);
  const ReplanOutcome once = run_tensor_round(kOnce, false);
  const ReplanOutcome many = run_tensor_round(kMany, false);
  ASSERT_EQ(none.folded, 80u);
  EXPECT_EQ(once.folded, 80u);
  EXPECT_EQ(many.folded, 80u);
  EXPECT_EQ(once.samples, none.samples);
  EXPECT_EQ(many.samples, none.samples);
  EXPECT_GT(many.drains, 0u);  // the scripted shrinks really drained
  ASSERT_EQ(none.model.size(), once.model.size());
  ASSERT_EQ(none.model.size(), many.model.size());
  for (std::size_t j = 0; j < none.model.size(); ++j) {
    // Bitwise: exact folds at every level make the model order-invariant.
    EXPECT_EQ(none.model[j], once.model[j]) << "elem " << j;
    EXPECT_EQ(none.model[j], many.model[j]) << "elem " << j;
  }
}

TEST(StreamingHierarchy, ReplanPreservesWeightedAverageOnDistinctPayloads) {
  std::vector<std::shared_ptr<const ml::Tensor>> keep;
  std::vector<std::pair<const ml::Tensor*, std::uint64_t>> flat;
  for (std::uint32_t i = 0; i < 80; ++i) {
    auto u = tensor_update(i, 64, /*distinct=*/true);
    keep.push_back(u.tensor);
    flat.emplace_back(keep.back().get(), u.sample_count);
  }
  const ml::Tensor reference = fl::FedAvgAccumulator::batch_average(flat);
  for (const auto* script : {&kOnce, &kMany}) {
    const ReplanOutcome got = run_tensor_round(*script, /*distinct=*/true);
    ASSERT_EQ(got.folded, 80u);
    ASSERT_EQ(got.model.size(), reference.size());
    for (std::size_t j = 0; j < got.model.size(); ++j) {
      EXPECT_NEAR(got.model[j], reference.data()[j], 1e-4) << "elem " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign level: planned mode across shards and re-plan cadences.

sys::ShardedCampaignConfig planned_campaign(std::size_t shards,
                                            double replan_interval) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 3;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 400.0;
  cfg.ramp_secs = 2.0;
  cfg.seed = 77;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = replan_interval;
  cfg.middle_fanin = 4;
  return cfg;
}

TEST(PlannedCampaign, ShardCountEquivalence) {
  const auto mono = sys::run_sharded_campaign(planned_campaign(1, 1.0));
  const auto multi =
      sys::run_sharded_campaign(planned_campaign(env_shards(), 1.0));
  ASSERT_EQ(mono.round_completed_at.size(), multi.round_completed_at.size());
  for (std::size_t r = 0; r < mono.round_completed_at.size(); ++r) {
    EXPECT_DOUBLE_EQ(mono.round_completed_at[r], multi.round_completed_at[r])
        << "round " << r;
    EXPECT_EQ(mono.round_samples[r], multi.round_samples[r]) << "round " << r;
    EXPECT_EQ(mono.round_spawned[r], multi.round_spawned[r]) << "round " << r;
    EXPECT_EQ(mono.round_reused[r], multi.round_reused[r]) << "round " << r;
  }
  EXPECT_EQ(mono.replans, multi.replans);
  EXPECT_EQ(mono.leaf_drains, multi.leaf_drains);
  EXPECT_EQ(mono.events, multi.events);
  for (std::size_t g = 0; g < mono.groups.size(); ++g) {
    EXPECT_EQ(mono.groups[g].uploads, multi.groups[g].uploads);
    EXPECT_DOUBLE_EQ(mono.groups[g].cpu_cycles, multi.groups[g].cpu_cycles);
  }
}

TEST(PlannedCampaign, SteadyStateRoundsSpawnZeroRuntimes) {
  const auto r = sys::run_sharded_campaign(planned_campaign(env_shards(), 1.0));
  ASSERT_EQ(r.round_spawned.size(), 3u);
  EXPECT_GT(r.round_spawned[0], 0u);  // round 1 builds the fleet
  for (std::size_t i = 1; i < r.round_spawned.size(); ++i) {
    EXPECT_EQ(r.round_spawned[i], 0u) << "round " << i + 1;
    EXPECT_GT(r.round_reused[i], 0u) << "round " << i + 1;
  }
  EXPECT_EQ(r.spawned_total, r.round_spawned[0]);
}

TEST(PlannedCampaign, FinalModelInvariantUnderReplanCadence) {
  // The re-plan-equivalence property at campaign scale: the global FedAvg
  // weights must be identical whether re-planning never fires, fires a few
  // times, or fires every half second of simulated time.
  const auto none = sys::run_sharded_campaign(planned_campaign(1, 0.0));
  const auto coarse =
      sys::run_sharded_campaign(planned_campaign(env_shards(), 2.5));
  const auto fine =
      sys::run_sharded_campaign(planned_campaign(env_shards(), 0.5));
  ASSERT_EQ(none.round_samples.size(), coarse.round_samples.size());
  ASSERT_EQ(none.round_samples.size(), fine.round_samples.size());
  for (std::size_t r = 0; r < none.round_samples.size(); ++r) {
    EXPECT_EQ(none.round_samples[r], coarse.round_samples[r]) << "round " << r;
    EXPECT_EQ(none.round_samples[r], fine.round_samples[r]) << "round " << r;
  }
  // Every round folded the full per-group fan-in on every cadence.
  for (const auto& g : fine.groups) {
    EXPECT_EQ(g.uploads, 3u * 8u * 10u);
  }
}

TEST(PlannedCampaign, ReuseOffChurnsEveryRound) {
  auto cfg = planned_campaign(1, 1.0);
  cfg.reuse = false;
  const auto r = sys::run_sharded_campaign(cfg);
  for (std::size_t i = 0; i < r.round_spawned.size(); ++i) {
    EXPECT_GT(r.round_spawned[i], 0u) << "round " << i + 1;
    EXPECT_EQ(r.round_reused[i], 0u) << "round " << i + 1;
  }
}

TEST(PlannedCampaign, FixedModeStillReportsChurn) {
  auto cfg = planned_campaign(1, 0.0);
  cfg.hierarchy = sys::HierarchyMode::kFixed;
  const auto r = sys::run_sharded_campaign(cfg);
  for (std::size_t i = 0; i < r.round_spawned.size(); ++i) {
    // The fixed baseline rebuilds the whole tree every round.
    EXPECT_EQ(r.round_spawned[i], 1u + 4u * 8u) << "round " << i + 1;
    EXPECT_EQ(r.round_reused[i], 0u);
  }
  EXPECT_EQ(r.reused_total, 0u);
}

}  // namespace
