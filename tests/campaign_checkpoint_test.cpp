// Campaign checkpoint/restore: the crash-anywhere differential harness.
//
// A reference campaign runs with checkpointing enabled and every emitted
// blob captured. The campaign is then "crashed" at each of N evenly spaced
// cut points — snapshot marks that land mid-round, mid-re-plan and in
// rounds with live leaf drains — and resumed from the captured blob. The
// resumed run must be *bitwise* identical to the reference in round start/
// completion times, sample sums, per-round spawned/reused telemetry,
// re-plan/drain totals, per-group data-plane statistics, and even the
// total dispatched event count (the blob carries the boundary image, so
// the replayed round is executed exactly once). Honours LIFL_TEST_SHARDS.
//
// Malformed blobs — truncated at any byte, version-flipped, or cut under a
// different config — must be rejected with sim::SnapshotError, never UB.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/sim/snapshot.hpp"
#include "src/systems/campaign_checkpoint.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace {

namespace sys = lifl::sys;

std::size_t env_shards() {
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    return std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  return 2;
}

struct Blob {
  std::vector<std::uint8_t> bytes;
  std::uint32_t round = 0;
  double mark = 0.0;
};

/// A small diurnal campaign with enough arrival-rate swing that the
/// planner re-plans mid-round and shrinks drain partial leaf accumulators
/// — so the cut-point family genuinely covers mid-re-plan and mid-drain
/// rounds, not just quiet stretches.
sys::ShardedCampaignConfig churny_campaign(std::size_t shards) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 3;
  // Target 620 updates/group vs ~35 arrivals per 0.5 s sample: rounds 2+
  // plan a small initial fleet from the carried EWMA, then the diurnal
  // swing (±60% over 6 s, inside a ~9 s round) forces mid-round grows and
  // shrinks — shrink retires partially filled leaves, i.e. drains.
  cfg.leaves_per_group = 62;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 280.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.6;
  cfg.diurnal_period_secs = 6.0;
  cfg.seed = 77;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 0.5;
  cfg.middle_fanin = 4;
  cfg.checkpoint_every_secs = 1.0;
  return cfg;
}

sys::ShardedCampaignConfig with_sink(sys::ShardedCampaignConfig cfg,
                                     std::vector<Blob>* out) {
  cfg.on_checkpoint = [out](const std::vector<std::uint8_t>& bytes,
                            std::uint32_t round, double mark) {
    out->push_back(Blob{bytes, round, mark});
  };
  return cfg;
}

void expect_identical(const sys::ShardedCampaignResult& a,
                      const sys::ShardedCampaignResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.round_started_at.size(), b.round_started_at.size()) << what;
  for (std::size_t r = 0; r < a.round_started_at.size(); ++r) {
    // EXPECT_EQ on doubles is exact ==: the claim is bitwise, not ULP.
    EXPECT_EQ(a.round_started_at[r], b.round_started_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_completed_at[r], b.round_completed_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_samples[r], b.round_samples[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_spawned[r], b.round_spawned[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_reused[r], b.round_reused[r])
        << what << " round " << r + 1;
  }
  EXPECT_EQ(a.spawned_total, b.spawned_total) << what;
  EXPECT_EQ(a.reused_total, b.reused_total) << what;
  EXPECT_EQ(a.replans, b.replans) << what;
  EXPECT_EQ(a.leaf_drains, b.leaf_drains) << what;
  EXPECT_EQ(a.peak_leaves, b.peak_leaves) << what;
  EXPECT_EQ(a.checkpoint_marks, b.checkpoint_marks) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.sim_secs, b.sim_secs) << what;
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].uploads, b.groups[g].uploads) << what << " g" << g;
    EXPECT_EQ(a.groups[g].pool_pushed, b.groups[g].pool_pushed)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].gateway_busy_secs, b.groups[g].gateway_busy_secs)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].gateway_wait_secs, b.groups[g].gateway_wait_secs)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].cpu_cycles, b.groups[g].cpu_cycles)
        << what << " g" << g;
  }
}

/// The harness: run the reference, then crash+resume at N evenly spaced
/// blobs and demand bitwise equality.
void run_differential(const sys::ShardedCampaignConfig& base,
                      std::size_t cuts) {
  std::vector<Blob> blobs;
  const auto reference = sys::run_sharded_campaign(with_sink(base, &blobs));
  ASSERT_GE(blobs.size(), cuts) << "campaign too short for the cut family";
  ASSERT_EQ(reference.checkpoints_written, blobs.size());

  // Evenly spaced cut points, always including the first and last blob.
  for (std::size_t i = 0; i < cuts; ++i) {
    const std::size_t pick = i * (blobs.size() - 1) / (cuts - 1);
    const Blob& blob = blobs[pick];
    auto cfg = base;
    cfg.resume_blob = &blob.bytes;
    const auto resumed = sys::run_sharded_campaign(cfg);
    expect_identical(reference, resumed,
                     "cut at round " + std::to_string(blob.round) +
                         ", mark " + std::to_string(blob.mark));
    // A resumed process re-emits only the blobs past its cut.
    std::size_t after = 0;
    for (const Blob& b : blobs) {
      if (b.round > blob.round ||
          (b.round == blob.round && b.mark > blob.mark)) {
        ++after;
      }
    }
    EXPECT_EQ(resumed.checkpoints_written, after);
  }
}

// ---------------------------------------------------------------------------

TEST(CampaignCheckpoint, CrashAnywherePlannedSingleShard) {
  const auto base = churny_campaign(1);
  std::vector<Blob> probe;
  const auto reference = sys::run_sharded_campaign(with_sink(base, &probe));
  // The cut family must cover the interesting regimes: marks exist in
  // every round (mid-round cuts), the reference really re-planned
  // mid-round, and really drained partial accumulators on shrink.
  EXPECT_GT(reference.replans, 0u);
  EXPECT_GT(reference.leaf_drains, 0u);
  std::vector<bool> seen(base.rounds + 1, false);
  for (const Blob& b : probe) seen.at(b.round) = true;
  for (std::size_t r = 1; r <= base.rounds; ++r) {
    EXPECT_TRUE(seen[r]) << "no mid-round cut point in round " << r;
  }

  run_differential(base, 6);
}

TEST(CampaignCheckpoint, CrashAnywherePlannedMultiShard) {
  run_differential(churny_campaign(env_shards()), 4);
}

TEST(CampaignCheckpoint, CrashAnywhereFixedMode) {
  auto cfg = churny_campaign(1);
  cfg.hierarchy = sys::HierarchyMode::kFixed;
  cfg.rounds = 2;
  run_differential(cfg, 4);
}

TEST(CampaignCheckpoint, BlobEncodingIsDeterministic) {
  // Same campaign, run twice: every emitted blob must be byte-identical —
  // the property that makes the in-sim billing size and the post-resume
  // re-emitted blobs match the uninterrupted timeline.
  std::vector<Blob> a, b;
  (void)sys::run_sharded_campaign(with_sink(churny_campaign(1), &a));
  (void)sys::run_sharded_campaign(with_sink(churny_campaign(1), &b));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].mark, b[i].mark);
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "blob " << i;
  }
}

// ------------------------------------------------------ malformed blobs

std::vector<std::uint8_t> one_blob(const sys::ShardedCampaignConfig& base) {
  std::vector<Blob> blobs;
  (void)sys::run_sharded_campaign(with_sink(base, &blobs));
  return blobs.front().bytes;
}

TEST(CampaignCheckpoint, TruncatedBlobsAreRejected) {
  const auto base = churny_campaign(1);
  const auto blob = one_blob(base);
  // Every 13th prefix (plus the last few bytes) to keep the loop brisk:
  // each must throw SnapshotError, never crash or resume garbage.
  for (std::size_t cut = 0; cut < blob.size();
       cut += (cut + 13 < blob.size() ? 13 : 1)) {
    std::vector<std::uint8_t> prefix(blob.begin(), blob.begin() + cut);
    auto cfg = base;
    cfg.resume_blob = &prefix;
    EXPECT_THROW((void)sys::run_sharded_campaign(cfg),
                 lifl::sim::SnapshotError)
        << "prefix length " << cut;
  }
}

TEST(CampaignCheckpoint, VersionMismatchIsRejected) {
  const auto base = churny_campaign(1);
  auto blob = one_blob(base);
  // The version field sits right after the 8-byte magic.
  std::uint32_t bad = 0xfeedu;
  std::memcpy(blob.data() + 8, &bad, sizeof bad);
  auto cfg = base;
  cfg.resume_blob = &blob;
  EXPECT_THROW((void)sys::run_sharded_campaign(cfg),
               lifl::sim::SnapshotError);
}

TEST(CampaignCheckpoint, ConfigDriftIsRejected) {
  const auto base = churny_campaign(1);
  const auto blob = one_blob(base);

  auto other_seed = base;
  other_seed.seed = 78;
  other_seed.resume_blob = &blob;
  EXPECT_THROW((void)sys::run_sharded_campaign(other_seed),
               lifl::sim::SnapshotError);

  auto other_shards = churny_campaign(2);
  other_shards.resume_blob = &blob;
  EXPECT_THROW((void)sys::run_sharded_campaign(other_shards),
               lifl::sim::SnapshotError);

  auto other_grid = base;
  other_grid.checkpoint_every_secs = 2.0;
  other_grid.resume_blob = &blob;
  EXPECT_THROW((void)sys::run_sharded_campaign(other_grid),
               lifl::sim::SnapshotError);
}

}  // namespace
