// Unit tests for the FIFO multi-server Resource (contention model).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/resource.hpp"

namespace lifl::sim {
namespace {

TEST(Resource, SingleServerSerializesJobs) {
  Simulator sim;
  Resource r(sim, "r", 1);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    r.acquire(2.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(done, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Resource, MultiServerRunsInParallel) {
  Simulator sim;
  Resource r(sim, "r", 3);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    r.acquire(2.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(done, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(Resource, QueueIsFifo) {
  Simulator sim;
  Resource r(sim, "r", 1);
  std::vector<int> order;
  r.acquire(1.0, [&] { order.push_back(0); });
  r.acquire(5.0, [&] { order.push_back(1); });
  r.acquire(0.5, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, TwoServersEightJobs) {
  // 8 jobs x 1s on 2 servers => makespan 4s. This is exactly the kernel
  // contention pattern of Fig. 4 (8 trainer transfers over 2 kernel cores).
  Simulator sim;
  Resource r(sim, "knet", 2);
  double last = 0;
  for (int i = 0; i < 8; ++i) {
    r.acquire(1.0, [&] { last = sim.now(); });
  }
  sim.run();
  EXPECT_DOUBLE_EQ(last, 4.0);
}

TEST(Resource, ZeroDurationJobsCompleteRespectingOrder) {
  Simulator sim;
  Resource r(sim, "r", 1);
  std::vector<int> order;
  r.acquire(0.0, [&] { order.push_back(0); });
  r.acquire(0.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Resource, BusyTimeIntegralIsExact) {
  Simulator sim;
  Resource r(sim, "r", 2);
  r.acquire(3.0, [] {});
  r.acquire(5.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(r.busy_time(), 8.0);
  EXPECT_EQ(r.completed(), 2u);
}

TEST(Resource, UtilizationOverWindow) {
  Simulator sim;
  Resource r(sim, "r", 2);
  r.acquire(5.0, [] {});  // one of two servers busy for 5s
  sim.run_until(10.0);
  EXPECT_NEAR(r.utilization(), 5.0 / 20.0, 1e-12);
}

TEST(Resource, WaitTimeAccounted) {
  Simulator sim;
  Resource r(sim, "r", 1);
  r.acquire(4.0, [] {});
  r.acquire(1.0, [] {});  // waits 4s
  sim.run();
  EXPECT_DOUBLE_EQ(r.total_wait_time(), 4.0);
}

TEST(Resource, GrowCapacityStartsQueuedJobs) {
  Simulator sim;
  Resource r(sim, "r", 1);
  std::vector<double> done;
  r.acquire(10.0, [&] { done.push_back(sim.now()); });
  r.acquire(1.0, [&] { done.push_back(sim.now()); });
  sim.schedule_at(2.0, [&] { r.set_capacity(2); });  // vertical scale-up
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 3.0);   // queued job starts at 2.0
  EXPECT_DOUBLE_EQ(done[1], 10.0);
}

TEST(Resource, ShrinkCapacityDoesNotPreempt) {
  Simulator sim;
  Resource r(sim, "r", 2);
  std::vector<double> done;
  r.acquire(5.0, [&] { done.push_back(sim.now()); });
  r.acquire(7.0, [&] { done.push_back(sim.now()); });
  r.acquire(1.0, [&] { done.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { r.set_capacity(1); });
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  // Both in-service jobs run to completion despite the shrink at t=1.
  EXPECT_DOUBLE_EQ(done[0], 5.0);
  EXPECT_DOUBLE_EQ(done[1], 7.0);
  // The queued job starts only once busy(1) < capacity(1), i.e. at t=7.
  EXPECT_DOUBLE_EQ(done[2], 8.0);
}

TEST(Resource, ResetStatsClearsCounters) {
  Simulator sim;
  Resource r(sim, "r", 1);
  r.acquire(2.0, [] {});
  sim.run();
  r.reset_stats();
  EXPECT_DOUBLE_EQ(r.busy_time(), 0.0);
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_DOUBLE_EQ(r.total_wait_time(), 0.0);
}

TEST(Resource, QueueLengthReflectsBacklog) {
  Simulator sim;
  Resource r(sim, "r", 1);
  for (int i = 0; i < 5; ++i) r.acquire(1.0, [] {});
  EXPECT_EQ(r.busy(), 1u);
  EXPECT_EQ(r.queue_length(), 4u);
  sim.run();
  EXPECT_EQ(r.queue_length(), 0u);
  EXPECT_EQ(r.busy(), 0u);
}

// Property: makespan of n identical jobs on c servers = ceil(n/c) * t.
class ResourceMakespan
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ResourceMakespan, MatchesClosedForm) {
  const auto [n, c] = GetParam();
  Simulator sim;
  Resource r(sim, "r", c);
  for (int i = 0; i < n; ++i) r.acquire(2.5, [] {});
  sim.run();
  const double expect = std::ceil(static_cast<double>(n) / c) * 2.5;
  EXPECT_NEAR(sim.now(), expect, 1e-9);
  EXPECT_NEAR(r.busy_time(), n * 2.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ResourceMakespan,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 64),
                       ::testing::Values(1, 2, 4, 8)));

// ---------------------------------------------------------------------------
// RSS multi-queue resource (gateway-parallel ingest).

TEST(MultiQueueResource, SingleQueueMatchesPlainResource) {
  // queues=1 must behave exactly like a Resource with `cores` servers.
  Simulator sim;
  MultiQueueResource mq(sim, "gw", 2, 1);
  Resource plain(sim, "ref", 2);
  std::vector<double> mq_done, plain_done;
  for (int i = 0; i < 5; ++i) {
    mq.acquire(/*flow=*/i, 2.0, [&] { mq_done.push_back(sim.now()); });
    plain.acquire(2.0, [&] { plain_done.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(mq_done, plain_done);
  EXPECT_EQ(mq.capacity(), 2u);
  EXPECT_EQ(mq.queue_count(), 1u);
  EXPECT_NEAR(mq.busy_time(), plain.busy_time(), 1e-12);
}

TEST(MultiQueueResource, FlowsStayOrderedOnTheirQueue) {
  Simulator sim;
  MultiQueueResource mq(sim, "gw", 4, 4);
  // One hot flow: its jobs serialize on one queue regardless of 4 cores.
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    mq.acquire(/*flow=*/42, 1.0, [&] { done.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(done, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(MultiQueueResource, ScaleUpRedistributesAcrossQueues) {
  Simulator sim;
  MultiQueueResource mq(sim, "gw", 2, 2);
  mq.set_capacity(8);
  EXPECT_EQ(mq.capacity(), 8u);
  // 64 distinct flows over 2 queues x 4 cores: 8 in service at once.
  int started = 0;
  for (int i = 0; i < 64; ++i) {
    mq.acquire(/*flow=*/i, 1.0, [&] { ++started; });
  }
  EXPECT_EQ(mq.busy(), 8u);
  sim.run();
  EXPECT_EQ(started, 64);
}

TEST(MultiQueueResource, ScaleDownNarrowsSteeringAndDrains) {
  Simulator sim;
  MultiQueueResource mq(sim, "gw", 4, 4);
  // Park a job on every queue, then scale down to 1 core.
  for (int f = 0; f < 64; ++f) mq.acquire(f, 10.0, [] {});
  mq.set_capacity(1);
  EXPECT_EQ(mq.capacity(), 1u);
  // In-flight jobs are not preempted and queued jobs must not stall:
  // everything completes.
  std::uint64_t before = mq.completed();
  sim.run();
  EXPECT_EQ(mq.completed() - before, 64u);
  // After draining, a further set_capacity reclaims surplus servers and
  // new flows land only on the live queue.
  mq.set_capacity(1);
  std::uint32_t live_busy = 0;
  for (int f = 0; f < 16; ++f) mq.acquire(f, 1.0, [] {});
  live_busy = mq.busy();
  EXPECT_EQ(live_busy, 1u);  // one live queue, one server
  sim.run();
}

}  // namespace
}  // namespace lifl::sim
