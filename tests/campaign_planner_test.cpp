// CampaignPlanner: the streaming-hierarchy planner — per-group EWMA
// estimates, hysteresis-banded re-planning, multi-level sizing, and the
// edge cases of the ISSUE (zero pending everywhere, single-node group,
// fan-in smaller than updates_per_leaf).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/control/campaign_planner.hpp"

namespace {

using lifl::ctrl::CampaignPlan;
using lifl::ctrl::CampaignPlanner;

CampaignPlanner::Config base_config() {
  CampaignPlanner::Config cfg;
  cfg.updates_per_leaf = 10;
  cfg.middle_fanin = 4;
  cfg.min_leaves = 1;
  cfg.max_leaves = 64;
  cfg.ewma_alpha = 0.7;
  cfg.hysteresis = 0.25;
  return cfg;
}

TEST(CampaignPlanner, InvalidConfigThrows) {
  EXPECT_THROW(CampaignPlanner(base_config(), 0), std::invalid_argument);
  auto cfg = base_config();
  cfg.middle_fanin = 0;
  EXPECT_THROW(CampaignPlanner(cfg, 1), std::invalid_argument);
  cfg = base_config();
  cfg.min_leaves = 0;
  EXPECT_THROW(CampaignPlanner(cfg, 1), std::invalid_argument);
  cfg = base_config();
  cfg.min_leaves = 8;
  cfg.max_leaves = 4;
  EXPECT_THROW(CampaignPlanner(cfg, 1), std::invalid_argument);
}

TEST(CampaignPlanner, LeafSizingIsCeilQOverIClamped) {
  CampaignPlanner p(base_config(), 1);
  EXPECT_EQ(p.leaves_for(0.0), 0u);     // no work, no aggregators
  EXPECT_EQ(p.leaves_for(-3.0), 0u);
  EXPECT_EQ(p.leaves_for(1.0), 1u);
  EXPECT_EQ(p.leaves_for(10.0), 1u);
  EXPECT_EQ(p.leaves_for(11.0), 2u);
  EXPECT_EQ(p.leaves_for(95.0), 10u);
  EXPECT_EQ(p.leaves_for(1e9), 64u);    // clamped to max_leaves
}

TEST(CampaignPlanner, FanInSmallerThanUpdatesPerLeaf) {
  // A round target below I still yields one leaf, which claims the whole
  // (short) batch.
  CampaignPlanner p(base_config(), 1);
  EXPECT_EQ(p.leaves_for(3.0), 1u);
  const CampaignPlan plan = p.plan_round({3.0});
  EXPECT_EQ(plan.groups[0].leaves, 1u);
  EXPECT_EQ(plan.groups[0].middles, 0u);
}

TEST(CampaignPlanner, MiddleLevelAppearsAboveFanInThreshold) {
  CampaignPlanner p(base_config(), 1);
  EXPECT_EQ(p.middles_for(0), 0u);
  EXPECT_EQ(p.middles_for(4), 0u);   // relay can fold 4 directly
  EXPECT_EQ(p.middles_for(5), 2u);   // ceil(5/4)
  EXPECT_EQ(p.middles_for(16), 4u);
  EXPECT_EQ(p.middles_for(17), 5u);
}

TEST(CampaignPlanner, ZeroPendingOnAllGroupsPlansNothing) {
  CampaignPlanner p(base_config(), 3);
  const CampaignPlan plan = p.plan_round({0.0, 0.0, 0.0});
  ASSERT_EQ(plan.groups.size(), 3u);
  for (const auto& g : plan.groups) {
    EXPECT_EQ(g.leaves, 0u);
    EXPECT_EQ(g.middles, 0u);
  }
  EXPECT_EQ(plan.total_leaves(), 0u);
}

TEST(CampaignPlanner, SingleNodeGroupPlans) {
  CampaignPlanner p(base_config(), 1);
  const CampaignPlan plan = p.plan_round({100.0});
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].leaves, 10u);
  EXPECT_EQ(plan.groups[0].middles, 3u);  // ceil(10/4)
  EXPECT_EQ(p.current(0), 10u);
}

TEST(CampaignPlanner, FirstRoundPlansFromTargetThenFromEstimate) {
  CampaignPlanner p(base_config(), 1);
  // No history: size from the round target (maximal parallelism).
  EXPECT_EQ(p.plan_round({200.0}).groups[0].leaves, 20u);
  // Mid-round observations initialize the estimate; the next boundary plan
  // follows it instead of the raw target.
  (void)p.replan(0, 40.0);
  ASSERT_TRUE(p.estimate_initialized(0));
  const CampaignPlan plan = p.plan_round({200.0});
  EXPECT_EQ(plan.groups[0].leaves, 4u);  // ceil(40/10)
}

TEST(CampaignPlanner, EstimateIsEwmaSmoothed) {
  CampaignPlanner p(base_config(), 1);
  (void)p.replan(0, 100.0);
  EXPECT_DOUBLE_EQ(p.estimate(0), 100.0);  // first sample initializes
  (void)p.replan(0, 0.0);
  EXPECT_DOUBLE_EQ(p.estimate(0), 70.0);   // 0.7 * 100 + 0.3 * 0
  (void)p.replan(0, 0.0);
  EXPECT_DOUBLE_EQ(p.estimate(0), 49.0);
}

TEST(CampaignPlanner, HysteresisBandSuppressesSmallDrift) {
  auto cfg = base_config();
  cfg.ewma_alpha = 0.0;  // track samples exactly: isolate the band logic
  CampaignPlanner p(cfg, 1);
  p.set_current(0, 10);
  // Desired 9..12 leaves sit inside [7.5, 12.5] of current 10: no re-plan.
  EXPECT_FALSE(p.replan(0, 90.0).has_value());
  EXPECT_FALSE(p.replan(0, 115.0).has_value());
  EXPECT_EQ(p.current(0), 10u);
  EXPECT_EQ(p.replans(0), 0u);
  // Desired 20 breaks the band: re-plan fires and becomes the new current.
  const auto grown = p.replan(0, 200.0);
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(*grown, 20u);
  EXPECT_EQ(p.current(0), 20u);
  EXPECT_EQ(p.replans(0), 1u);
  // Shrink below the band fires too.
  const auto shrunk = p.replan(0, 30.0);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(*shrunk, 3u);
  EXPECT_EQ(p.replans(0), 2u);
}

TEST(CampaignPlanner, ReplanFromZeroLeavesAlwaysFires) {
  auto cfg = base_config();
  cfg.ewma_alpha = 0.0;
  CampaignPlanner p(cfg, 1);
  ASSERT_EQ(p.current(0), 0u);
  const auto t = p.replan(0, 10.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 1u);
}

TEST(CampaignPlanner, GroupSlotsAreIndependent) {
  CampaignPlanner p(base_config(), 2);
  (void)p.replan(0, 100.0);
  EXPECT_TRUE(p.estimate_initialized(0));
  EXPECT_FALSE(p.estimate_initialized(1));
  EXPECT_EQ(p.replans(1), 0u);
}

}  // namespace
