// Unit tests for the observability layer (src/obs): trace ring overflow
// accounting, deterministic merged ordering, the Chrome-JSON exporter's
// structure, the log2 histogram / registry, and the MetricsMap interned
// fast slots staying byte-compatible with the string-keyed map.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/dataplane/metrics_map.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/obs/trace.hpp"

namespace {

using lifl::obs::Ev;
using lifl::obs::ShardTrace;
using lifl::obs::TraceEvent;
using lifl::obs::TraceRecorder;

TEST(ShardTraceTest, RecordsInEmissionOrder) {
  ShardTrace ring;
  ring.init(8);
  for (int i = 0; i < 5; ++i) {
    ring.instant(static_cast<double>(i), Ev::kAggSpawn, /*track=*/0,
                 static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped_events(), 0u);
  const auto ev = ring.events();
  ASSERT_EQ(ev.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(ev[static_cast<std::size_t>(i)].t,
                     static_cast<double>(i));
  }
}

TEST(ShardTraceTest, OverflowDropsOldestAndCounts) {
  ShardTrace ring;
  ring.init(4);
  for (int i = 0; i < 10; ++i) {
    ring.instant(static_cast<double>(i), Ev::kAggFold, /*track=*/0,
                 static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped_events(), 6u);
  // The oldest surviving event is the one emitted right after the last
  // overwrite: emissions 6..9 survive, 0..5 were overwritten.
  const auto ev = ring.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_DOUBLE_EQ(ev.front().t, 6.0);
  EXPECT_DOUBLE_EQ(ev.back().t, 9.0);
}

TEST(ShardTraceTest, ZeroCapacityDisablesStorage) {
  ShardTrace ring;  // never init'd: capacity 0
  ring.instant(1.0, Ev::kWindow, 0, 0);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped_events(), 0u);
}

TEST(TraceRecorderTest, MergedOrderIsDeterministic) {
  // Interleave emissions across rings out of time order; merged() must
  // sort by (t, track, kind, a, b, dur) regardless of emission order.
  const auto fill = [](TraceRecorder& r) {
    r.shard(1)->instant(2.0, Ev::kAggFold, 5, 11);
    r.shard(0)->instant(1.0, Ev::kAggSpawn, 3, 7);
    r.coordinator()->span(0.5, 2.5, Ev::kRound, lifl::obs::kCampaignTrack, 1);
    r.shard(0)->instant(1.0, Ev::kAggSpawn, 2, 9);
  };
  TraceRecorder a, b;
  a.init(/*shards=*/2, /*ring_kb=*/1);
  b.init(2, 1);
  fill(a);
  fill(b);
  const auto ma = a.merged();
  const auto mb = b.merged();
  ASSERT_EQ(ma.size(), 4u);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_DOUBLE_EQ(ma[i].t, mb[i].t);
    EXPECT_EQ(ma[i].track, mb[i].track);
    EXPECT_EQ(static_cast<int>(ma[i].kind), static_cast<int>(mb[i].kind));
    EXPECT_EQ(ma[i].a, mb[i].a);
  }
  // Sorted by t first, then track (2 before 5 at t=1? no: t=0.5 span
  // first, then the two t=1 instants ordered by track 2 < 3).
  EXPECT_DOUBLE_EQ(ma[0].t, 0.5);
  EXPECT_DOUBLE_EQ(ma[1].t, 1.0);
  EXPECT_EQ(ma[1].track, 2);
  EXPECT_EQ(ma[2].track, 3);
  EXPECT_DOUBLE_EQ(ma[3].t, 2.0);
}

TEST(TraceRecorderTest, ChromeJsonIsStructurallyValid) {
  TraceRecorder r;
  r.init(2, 1);
  r.shard(0)->instant(1.0, Ev::kAggSpawn, 0, 42);
  r.shard(1)->span(1.0, 2.0, Ev::kAggFold, 1, 7, 3);
  r.coordinator()->instant(2.0, Ev::kWindow, lifl::obs::shard_track(0), 0, 5);

  std::string path = testing::TempDir() + "obs_trace.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  r.write_chrome_json(f, /*groups=*/2);
  std::fclose(f);

  f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  // Structural checks: balanced braces/brackets outside strings, the
  // required top-level keys, and one "X" phase for the span.
  int brace = 0, bracket = 0;
  bool in_str = false, esc = false;
  for (const char c : body) {
    if (esc) {
      esc = false;
      continue;
    }
    if (c == '\\') {
      esc = true;
      continue;
    }
    if (c == '"') {
      in_str = !in_str;
      continue;
    }
    if (in_str) continue;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    EXPECT_GE(brace, 0);
    EXPECT_GE(bracket, 0);
  }
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(body.find("agg_fold"), std::string::npos);
  EXPECT_NE(body.find("\"dropped_events\": 0"), std::string::npos);
  // Metadata names every track family.
  EXPECT_NE(body.find("node groups"), std::string::npos);
  EXPECT_NE(body.find("campaign"), std::string::npos);
}

TEST(HistTest, Log2BucketsAndMoments) {
  lifl::obs::Hist h;
  h.observe(0.5);   // exponent 0 -> bucket kExpOffset
  h.observe(0.75);  // same bucket
  h.observe(3.0);   // exponent 2 -> kExpOffset + 2
  h.observe(0.0);   // non-positive -> bucket 0
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 4.25);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_EQ(h.buckets[lifl::obs::Hist::kExpOffset], 2u);
  EXPECT_EQ(h.buckets[lifl::obs::Hist::kExpOffset + 2], 1u);
  EXPECT_EQ(h.buckets[0], 1u);

  lifl::obs::Hist other;
  other.observe(1024.0);
  h.merge(other);
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.max, 1024.0);
}

TEST(RegistryTest, SlottedCountersGaugesHists) {
  lifl::obs::Registry reg(/*slots=*/3);
  const auto c = reg.counter("folds");
  const auto g = reg.gauge("idle");
  const auto h = reg.hist("secs");
  reg.add(0, c);
  reg.add(0, c, 4);
  reg.add(2, c, 10);
  reg.set(1, g, 2.5);
  reg.observe(1, h, 0.25);
  EXPECT_EQ(reg.counter_value(0, c), 5u);
  EXPECT_EQ(reg.counter_value(1, c), 0u);
  EXPECT_EQ(reg.counter_total(c), 15u);
  EXPECT_DOUBLE_EQ(reg.gauge_value(1, g), 2.5);
  EXPECT_EQ(reg.hist_value(1, h).count, 1u);
  EXPECT_EQ(reg.hist_total(h).count, 1u);
  EXPECT_EQ(reg.counter_name(c), "folds");
}

TEST(GroupObsTest, DisabledHandleIsInert) {
  // A default-constructed handle must swallow every emit, including the
  // pointer-to-member forms (ids is null — must not be dereferenced).
  lifl::obs::GroupObs o;
  o.instant(1.0, Ev::kAggSpawn, 1);
  o.span(1.0, 2.0, Ev::kAggFold, 1);
  o.count_id(&lifl::obs::Ids::folds);
  o.observe_id(&lifl::obs::Ids::fold_secs, 0.5);
  EXPECT_FALSE(o.tracing());
  EXPECT_FALSE(o.metering());
  EXPECT_FALSE(static_cast<bool>(o.hist_slot(lifl::obs::HistId{})));
}

TEST(CampaignObsTest, SlotAndTrackLayout) {
  lifl::obs::Config cfg;
  cfg.trace = true;
  cfg.metrics = true;
  cfg.trace_ring_kb = 1;
  lifl::obs::CampaignObs co(cfg, /*shards=*/2, /*groups=*/4);
  EXPECT_EQ(co.group_slot(3), 3u);
  EXPECT_EQ(co.shard_slot(1), 5u);
  EXPECT_EQ(co.campaign_slot(), 6u);
  EXPECT_EQ(co.registry().slots(), 7u);

  auto g = co.group_obs(2, /*shard=*/1);
  EXPECT_TRUE(g.tracing());
  EXPECT_TRUE(g.metering());
  EXPECT_EQ(g.track, 2);
  g.count_id(&lifl::obs::Ids::folds, 3);
  EXPECT_EQ(co.registry().counter_value(2, co.ids().folds), 3u);

  auto coord = co.coordinator_obs();
  EXPECT_EQ(coord.track, lifl::obs::kCampaignTrack);
  coord.instant(1.0, Ev::kRound, 1);
  EXPECT_EQ(co.trace().coordinator()->size(), 1u);
}

// ---------------------------------------------------------------------------
// MetricsMap: the interned fast slots must be indistinguishable from the
// old string-hashed entries through every public API.

TEST(MetricsMapTest, InternedAndStringApisAreOneStore) {
  lifl::dp::MetricsMap m;
  m.add(lifl::dp::MetricsMap::kSends);
  m.add(lifl::dp::MetricsMap::kSendBytes, 100.0);
  m.increment("sends");         // string API routes to the same slot
  m.increment("custom_key", 2.0);
  EXPECT_DOUBLE_EQ(m.get("sends"), 2.0);
  EXPECT_DOUBLE_EQ(m.get("send_bytes"), 100.0);
  EXPECT_DOUBLE_EQ(m.get("custom_key"), 2.0);
  EXPECT_EQ(m.size(), 3u);
}

TEST(MetricsMapTest, DrainKeepsEntryAtZero) {
  lifl::dp::MetricsMap m;
  m.add(lifl::dp::MetricsMap::kArrivals, 7.0);
  EXPECT_DOUBLE_EQ(m.drain("arrivals"), 7.0);
  EXPECT_DOUBLE_EQ(m.get("arrivals"), 0.0);
  // The drained entry still exists (at zero), exactly like the old
  // unordered_map behaviour — sorted_entries must include it.
  EXPECT_EQ(m.size(), 1u);
  const auto entries = m.sorted_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "arrivals");
  EXPECT_DOUBLE_EQ(entries[0].second, 0.0);
}

TEST(MetricsMapTest, SortedEntriesAndRestoreRoundTrip) {
  lifl::dp::MetricsMap m;
  m.add(lifl::dp::MetricsMap::kAggExecSum, 1.5);
  m.add(lifl::dp::MetricsMap::kAggExecCount, 3.0);
  m.increment("zz_custom", 9.0);
  m.set("agg_exec_sum", 2.5);  // string set overwrites the fast slot
  const auto entries = m.sorted_entries();
  ASSERT_EQ(entries.size(), 3u);
  // Key-sorted, fast and slow entries interleaved by name.
  EXPECT_EQ(entries[0].first, "agg_exec_count");
  EXPECT_EQ(entries[1].first, "agg_exec_sum");
  EXPECT_DOUBLE_EQ(entries[1].second, 2.5);
  EXPECT_EQ(entries[2].first, "zz_custom");

  lifl::dp::MetricsMap m2;
  m2.restore(entries);
  EXPECT_EQ(m2.sorted_entries(), entries);
  EXPECT_DOUBLE_EQ(m2.get("agg_exec_count"), 3.0);
}

}  // namespace
