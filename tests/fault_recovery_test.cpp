// Fault injection and lossless recovery (sim::FaultPlan + the lease/ack
// protocol): crashed aggregators must lose nothing — their un-acked pool
// claims return and are re-folded by replacements — client uploads retry
// through drops/corruption/outages/overflow until delivered, and quorum
// sealing degrades a stalled synchronous round instead of hanging it.
//
// The determinism claims are the usual ones, checked with exact ==: a
// fixed FaultPlan yields bitwise-identical campaigns at 1 shard and at
// LIFL_TEST_SHARDS shards (sync and async), and a checkpoint cut landing
// mid-recovery resumes bitwise-identically to the uninterrupted run.
// Conservation is integer-exact: per-round folded sample sums under faults
// equal the fault-free run's (nothing lost, nothing double-folded).

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/systems/campaign_checkpoint.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace {

namespace sys = lifl::sys;

std::size_t env_shards() {
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    return std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  return 2;
}

/// A small planned campaign: 4 groups x 8 leaves x 10 updates per round,
/// enough diurnal swing that the planner shrinks (drains) mid-round, so
/// crash recovery and drains genuinely coexist.
sys::ShardedCampaignConfig planned_campaign(std::size_t shards) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 3;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 280.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 6.0;
  cfg.seed = 77;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 0.5;
  cfg.middle_fanin = 4;
  return cfg;
}

sys::ShardedCampaignConfig async_campaign(std::size_t shards) {
  auto cfg = planned_campaign(shards);
  cfg.hierarchy = sys::HierarchyMode::kAsync;
  cfg.async_deadline_secs = 2.0;
  return cfg;
}

/// The standard crash mix: ~10% of leaf claim batches crash mid-fold, some
/// middles crash mid-round, the top crashes when the plan says so.
void add_crashes(sys::ShardedCampaignConfig& cfg) {
  cfg.fault.seed = 9001;
  cfg.fault.leaf_crash_rate = 0.10;
  cfg.fault.middle_crash_rate = 0.05;
  cfg.fault.top_crash_rate = 0.5;
}

std::uint64_t total_samples(const sys::ShardedCampaignResult& r) {
  return std::accumulate(r.round_samples.begin(), r.round_samples.end(),
                         std::uint64_t{0});
}

void expect_identical(const sys::ShardedCampaignResult& a,
                      const sys::ShardedCampaignResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.round_started_at.size(), b.round_started_at.size()) << what;
  for (std::size_t r = 0; r < a.round_started_at.size(); ++r) {
    // EXPECT_EQ on doubles is exact ==: the claim is bitwise, not ULP.
    EXPECT_EQ(a.round_started_at[r], b.round_started_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_completed_at[r], b.round_completed_at[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_samples[r], b.round_samples[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_weight[r], b.round_weight[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_spawned[r], b.round_spawned[r])
        << what << " round " << r + 1;
    EXPECT_EQ(a.round_refolded[r], b.round_refolded[r])
        << what << " round " << r + 1;
  }
  EXPECT_EQ(a.spawned_total, b.spawned_total) << what;
  EXPECT_EQ(a.reused_total, b.reused_total) << what;
  EXPECT_EQ(a.replans, b.replans) << what;
  EXPECT_EQ(a.leaf_drains, b.leaf_drains) << what;
  EXPECT_EQ(a.peak_leaves, b.peak_leaves) << what;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << what;
  EXPECT_EQ(a.leaf_crashes, b.leaf_crashes) << what;
  EXPECT_EQ(a.middle_crashes, b.middle_crashes) << what;
  EXPECT_EQ(a.top_crashes, b.top_crashes) << what;
  EXPECT_EQ(a.refolded_updates, b.refolded_updates) << what;
  EXPECT_EQ(a.reinjected_partials, b.reinjected_partials) << what;
  EXPECT_EQ(a.upload_retries, b.upload_retries) << what;
  EXPECT_EQ(a.upload_drops, b.upload_drops) << what;
  EXPECT_EQ(a.upload_corruptions, b.upload_corruptions) << what;
  EXPECT_EQ(a.overflow_rejects, b.overflow_rejects) << what;
  EXPECT_EQ(a.outage_rejects, b.outage_rejects) << what;
  EXPECT_EQ(a.quorum_seals, b.quorum_seals) << what;
  EXPECT_EQ(a.quorum_abandoned, b.quorum_abandoned) << what;
  EXPECT_EQ(a.recovery_secs, b.recovery_secs) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.sim_secs, b.sim_secs) << what;
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].uploads, b.groups[g].uploads) << what << " g" << g;
    EXPECT_EQ(a.groups[g].pool_pushed, b.groups[g].pool_pushed)
        << what << " g" << g;
    EXPECT_EQ(a.groups[g].cpu_cycles, b.groups[g].cpu_cycles)
        << what << " g" << g;
  }
}

// ------------------------------------------------------- conservation

TEST(FaultRecovery, SyncCrashesLoseNoSamples) {
  auto faulty = planned_campaign(1);
  add_crashes(faulty);
  const auto with_faults = sys::run_sharded_campaign(faulty);
  const auto fault_free = sys::run_sharded_campaign(planned_campaign(1));

  // The plan really fired: crashes happened, recovery really re-folded.
  EXPECT_GT(with_faults.leaf_crashes, 0u);
  EXPECT_GT(with_faults.top_crashes, 0u);
  EXPECT_GT(with_faults.refolded_updates, 0u);
  EXPECT_GT(with_faults.faults_injected, 0u);
  EXPECT_GT(with_faults.recovery_secs, 0.0);

  // Lossless: every round folds exactly the fault-free sample sum — the
  // crashed aggregators' claims came back and were re-folded, none lost,
  // none double-counted.
  ASSERT_EQ(with_faults.round_samples.size(),
            fault_free.round_samples.size());
  for (std::size_t r = 0; r < fault_free.round_samples.size(); ++r) {
    EXPECT_EQ(with_faults.round_samples[r], fault_free.round_samples[r])
        << "round " << r + 1;
  }

  // The fault-free run reports zero everywhere in the fault telemetry.
  EXPECT_EQ(fault_free.faults_injected, 0u);
  EXPECT_EQ(fault_free.refolded_updates, 0u);
  EXPECT_EQ(fault_free.recovery_secs, 0.0);
}

TEST(FaultRecovery, UploadFaultsRetryUntilDelivered) {
  auto faulty = planned_campaign(1);
  faulty.fault.seed = 4242;
  faulty.fault.upload_drop_rate = 0.2;
  faulty.fault.upload_corrupt_rate = 0.1;
  faulty.fault.outage_rate = 0.5;
  faulty.fault.outage_secs = 2.0;
  faulty.fault.outage_start_max_secs = 2.0;  // inside the arrival burst
  faulty.fault.retry_base_secs = 0.05;
  faulty.fault.retry_cap_secs = 1.0;
  const auto with_faults = sys::run_sharded_campaign(faulty);
  const auto fault_free = sys::run_sharded_campaign(planned_campaign(1));

  EXPECT_GT(with_faults.upload_drops, 0u);
  EXPECT_GT(with_faults.upload_corruptions, 0u);
  EXPECT_GT(with_faults.outage_rejects, 0u);
  // Every faulted attempt scheduled a retry, and every upload eventually
  // delivered: integer sample conservation, round by round.
  EXPECT_GE(with_faults.upload_retries,
            with_faults.upload_drops + with_faults.upload_corruptions +
                with_faults.outage_rejects);
  ASSERT_EQ(with_faults.round_samples.size(),
            fault_free.round_samples.size());
  for (std::size_t r = 0; r < fault_free.round_samples.size(); ++r) {
    EXPECT_EQ(with_faults.round_samples[r], fault_free.round_samples[r])
        << "round " << r + 1;
  }
}

TEST(FaultRecovery, AsyncCrashesLoseNoSamples) {
  // Async: crashes race the seal-deadline timers — a leaf that crashes
  // between buffer fill and timer fire must not let the stale timer touch
  // its replacement (generation-counted timers), and diurnal shrink keeps
  // draining leaves while others recover.
  auto faulty = async_campaign(1);
  add_crashes(faulty);
  faulty.fault.top_crash_rate = 0.0;  // top crashes are planned-mode only
  faulty.async_adaptive_deadline = true;
  const auto with_faults = sys::run_sharded_campaign(faulty);
  const auto fault_free = sys::run_sharded_campaign(async_campaign(1));

  EXPECT_GT(with_faults.leaf_crashes, 0u);
  EXPECT_GT(with_faults.refolded_updates, 0u);
  // Version boundaries shift under faults (order-dependent), but the
  // stream folds exactly the same client updates: totals are conserved.
  EXPECT_EQ(total_samples(with_faults), total_samples(fault_free));
}

// --------------------------------------------------- shard invariance

TEST(FaultRecovery, SyncFaultsAreShardInvariant) {
  auto base = planned_campaign(1);
  add_crashes(base);
  base.fault.upload_drop_rate = 0.1;
  base.fault.upload_corrupt_rate = 0.05;
  const auto one = sys::run_sharded_campaign(base);
  auto multi = base;
  multi.shards = env_shards();
  const auto n = sys::run_sharded_campaign(multi);
  EXPECT_GT(one.leaf_crashes, 0u);
  expect_identical(one, n, "sync faults, 1 vs " +
                               std::to_string(multi.shards) + " shards");
}

TEST(FaultRecovery, AsyncFaultsAreShardInvariant) {
  auto base = async_campaign(1);
  add_crashes(base);
  base.fault.top_crash_rate = 0.0;
  base.async_adaptive_deadline = true;
  const auto one = sys::run_sharded_campaign(base);
  auto multi = base;
  multi.shards = env_shards();
  const auto n = sys::run_sharded_campaign(multi);
  EXPECT_GT(one.leaf_crashes, 0u);
  expect_identical(one, n, "async faults, 1 vs " +
                               std::to_string(multi.shards) + " shards");
}

// --------------------------------------------- checkpoint mid-recovery

TEST(FaultRecovery, CheckpointResumeMidRecoveryIsBitwise) {
  // Crash-anywhere under an active fault plan: cuts land while crashed
  // aggregators are being replaced and retries are in flight; the resumed
  // run must replay the identical fault schedule and recovery.
  auto base = planned_campaign(1);
  add_crashes(base);
  base.checkpoint_every_secs = 1.0;

  struct Blob {
    std::vector<std::uint8_t> bytes;
    std::uint32_t round = 0;
    double mark = 0.0;
  };
  std::vector<Blob> blobs;
  auto capture = base;
  capture.on_checkpoint = [&blobs](const std::vector<std::uint8_t>& bytes,
                                   std::uint32_t round, double mark) {
    blobs.push_back(Blob{bytes, round, mark});
  };
  const auto reference = sys::run_sharded_campaign(capture);
  EXPECT_GT(reference.leaf_crashes, 0u);
  ASSERT_GE(blobs.size(), 3u);

  const std::size_t picks[] = {0, blobs.size() / 2, blobs.size() - 1};
  for (const std::size_t pick : picks) {
    auto cfg = base;
    cfg.resume_blob = &blobs[pick].bytes;
    const auto resumed = sys::run_sharded_campaign(cfg);
    expect_identical(reference, resumed,
                     "cut at round " + std::to_string(blobs[pick].round) +
                         ", mark " + std::to_string(blobs[pick].mark));
  }
}

// ------------------------------------------------------ quorum sealing

TEST(FaultRecovery, QuorumSealsStalledRound) {
  // 30% stragglers arriving 500 s late would stall every synchronous
  // round; a 0.6 quorum with a 5 s deadline seals instead.
  auto cfg = planned_campaign(1);
  cfg.straggler_fraction = 0.3;
  cfg.straggler_delay_secs = 500.0;
  cfg.quorum = 0.6;
  cfg.round_deadline_secs = 5.0;
  const auto r = sys::run_sharded_campaign(cfg);

  EXPECT_GT(r.quorum_seals, 0u);
  EXPECT_GT(r.quorum_abandoned, 0u);
  ASSERT_EQ(r.round_completed_at.size(), std::size_t{cfg.rounds});
  for (std::size_t i = 0; i < r.round_completed_at.size(); ++i) {
    // Each round sealed within its deadline neighbourhood, not at the
    // straggler horizon.
    EXPECT_LT(r.round_completed_at[i] - r.round_started_at[i], 100.0)
        << "round " << i + 1;
  }
}

TEST(FaultRecovery, QuorumIsShardInvariant) {
  auto base = planned_campaign(1);
  base.straggler_fraction = 0.3;
  base.straggler_delay_secs = 500.0;
  base.quorum = 0.6;
  base.round_deadline_secs = 5.0;
  const auto one = sys::run_sharded_campaign(base);
  auto multi = base;
  multi.shards = env_shards();
  const auto n = sys::run_sharded_campaign(multi);
  EXPECT_GT(one.quorum_seals, 0u);
  expect_identical(one, n, "quorum, 1 vs " +
                               std::to_string(multi.shards) + " shards");
}

// -------------------------------------------------------- validation

TEST(FaultRecovery, InvalidFaultConfigsAreRejected) {
  // Faults need the streaming hierarchy's recovery machinery.
  auto fixed = planned_campaign(1);
  fixed.hierarchy = sys::HierarchyMode::kFixed;
  fixed.fault.leaf_crash_rate = 0.1;
  EXPECT_THROW((void)sys::run_sharded_campaign(fixed),
               std::invalid_argument);

  // A drop rate of 1 can never deliver (every retry fails too).
  auto all_drop = planned_campaign(1);
  all_drop.fault.upload_drop_rate = 1.0;
  EXPECT_THROW((void)sys::run_sharded_campaign(all_drop),
               std::invalid_argument);

  // Quorum sealing is a synchronous-round mechanism...
  auto qasync = async_campaign(1);
  qasync.quorum = 0.5;
  qasync.round_deadline_secs = 5.0;
  EXPECT_THROW((void)sys::run_sharded_campaign(qasync),
               std::invalid_argument);

  // ...needs a deadline to probe at...
  auto no_deadline = planned_campaign(1);
  no_deadline.quorum = 0.5;
  EXPECT_THROW((void)sys::run_sharded_campaign(no_deadline),
               std::invalid_argument);

  // ...and abandoning uploads breaks the checkpoint quiescence invariant.
  auto qck = planned_campaign(1);
  qck.quorum = 0.5;
  qck.round_deadline_secs = 5.0;
  qck.checkpoint_every_secs = 1.0;
  EXPECT_THROW((void)sys::run_sharded_campaign(qck), std::invalid_argument);
}

}  // namespace
