// Sharded simulator core: conservative time windows, cross-shard mailbox
// ordering, and the shard-count equivalence of a group-partitioned
// campaign.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/calibration.hpp"
#include "src/sim/random.hpp"
#include "src/sim/sharded_simulator.hpp"
#include "src/sim/simulator.hpp"
#include "src/systems/sharded_campaign.hpp"

namespace {

using lifl::sim::ShardedSimulator;
using lifl::sim::SimTime;
using lifl::sim::Simulator;

// ---------------------------------------------------------------------------
// Plain-simulator window primitives used by the sharded protocol.

TEST(SimWindow, RunWindowIsStrict) {
  Simulator sim;
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  EXPECT_EQ(sim.run_window(3.0), 2u);  // t=1, t=2; t=3 is NOT below 3.0
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.0);  // clock stays at the last dispatched event
  EXPECT_EQ(sim.run_window(4.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(SimWindow, RunWindowIncludesSameInstantChains) {
  Simulator sim;
  int ring_fired = 0;
  sim.schedule_at(1.0, [&] {
    // Zero-delay chain at t=1 must complete within a window ending at 2.
    sim.schedule_now([&] {
      ++ring_fired;
      sim.schedule_now([&] { ++ring_fired; });
    });
  });
  sim.schedule_at(5.0, [] {});
  sim.run_window(2.0);
  EXPECT_EQ(ring_fired, 2);
  EXPECT_EQ(sim.pending_regular(), 1u);  // the t=5 event
}

TEST(SimWindow, NextEventTimeFindsCalendarFront) {
  Simulator sim;
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
  // Enough events to trigger a calendar build, then drain most of them.
  lifl::sim::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    sim.schedule_at(rng.uniform(10.0, 100.0), [] {});
  }
  sim.schedule_at(7.25, [] {});
  EXPECT_EQ(sim.next_event_time(), 7.25);
  sim.run_window(50.0);
  const SimTime next = sim.next_event_time();
  EXPECT_GE(next, 50.0);
  EXPECT_LT(next, 100.0);
  sim.run();
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
}

// ---------------------------------------------------------------------------
// Sharded runtime.

TEST(ShardedSim, SingleShardMatchesPlainSimulator) {
  // The degenerate mode must be the plain core, bit for bit: same event
  // count, same final clock, same dispatch order.
  std::vector<int> plain_order;
  Simulator plain;
  ShardedSimulator sharded(ShardedSimulator::Config{1, 1e-3});
  std::vector<int> sharded_order;

  lifl::sim::Rng rng1(9);
  lifl::sim::Rng rng2(9);
  for (int i = 0; i < 1000; ++i) {
    const double t = rng1.uniform(0.0, 10.0);
    plain.schedule_at(t, [&plain_order, i] { plain_order.push_back(i); });
  }
  for (int i = 0; i < 1000; ++i) {
    const double t = rng2.uniform(0.0, 10.0);
    sharded.shard(0).schedule_at(
        t, [&sharded_order, i] { sharded_order.push_back(i); });
  }
  plain.run();
  sharded.run();
  EXPECT_EQ(plain_order, sharded_order);
  EXPECT_EQ(plain.now(), sharded.shard(0).now());
  EXPECT_EQ(plain.dispatched(), sharded.dispatched());
  EXPECT_EQ(sharded.windows(), 0u);  // no barriers in single-shard mode
}

TEST(ShardedSim, CrossShardPostDeliversAtPostedTime) {
  ShardedSimulator sharded(ShardedSimulator::Config{2, 0.5});
  std::vector<double> delivered_at;
  sharded.shard(1).schedule_at(1.0, [&] {
    sharded.post(1, 0, 2.0, [&] {
      delivered_at.push_back(sharded.shard(0).now());
    });
  });
  // Keep shard 0 alive past the delivery.
  sharded.shard(0).schedule_at(3.0, [] {});
  sharded.run();
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at[0], 2.0);
  EXPECT_EQ(sharded.cross_posts(), 1u);
}

TEST(ShardedSim, PostClampsToLookahead) {
  ShardedSimulator sharded(ShardedSimulator::Config{2, 0.5});
  double delivered_at = -1.0;
  sharded.shard(1).schedule_at(1.0, [&] {
    // Posted "now": must be pushed out to now + lookahead.
    sharded.post(1, 0, 1.0, [&] { delivered_at = sharded.shard(0).now(); });
  });
  sharded.shard(0).schedule_at(9.0, [] {});
  sharded.run();
  EXPECT_EQ(delivered_at, 1.5);
}

TEST(ShardedSim, CallbackExceptionPropagatesFromThreadedRun) {
  // A model error on a worker shard must surface as an exception on the
  // caller, exactly like 1-shard mode — not std::terminate.
  ShardedSimulator sharded(ShardedSimulator::Config{2, 0.5});
  sharded.shard(1).schedule_at(1.0, [] {
    throw std::runtime_error("model callback failed");
  });
  sharded.shard(0).schedule_at(2.0, [] {});
  EXPECT_THROW(sharded.run(), std::runtime_error);
}

// The mailbox ordering property of the ISSUE: cross-shard events must be
// delivered in timestamp order across window boundaries, with ties broken
// by (source shard, post order) — never by thread timing.
TEST(ShardedSim, MailboxDeliversInTimestampOrderAcrossWindows) {
  const std::size_t kShards = 3;
  const double kLookahead = 0.01;
  ShardedSimulator sharded(
      ShardedSimulator::Config{kShards, kLookahead});

  struct Delivery {
    double t;        ///< receiver clock at delivery
    double posted;   ///< timestamp the sender requested
    int src;
  };
  std::vector<Delivery> log;

  // Shards 1..2 run busy event chains that post to shard 0 at
  // pseudo-random future offsets, spanning many windows. The chains are
  // owned here (raw captures into the closures) so no shared_ptr cycle
  // survives the run.
  const int kPostsPerShard = 500;
  std::vector<std::shared_ptr<std::function<void(int)>>> chains;
  std::vector<std::shared_ptr<lifl::sim::Rng>> rngs;
  for (std::size_t s = 1; s < kShards; ++s) {
    rngs.push_back(std::make_shared<lifl::sim::Rng>(100 + s));
    chains.push_back(std::make_shared<std::function<void(int)>>());
    lifl::sim::Rng* rng = rngs.back().get();
    std::function<void(int)>* chain = chains.back().get();
    *chain = [&sharded, &log, rng, chain, s, kLookahead](int remaining) {
      if (remaining == 0) return;
      const double offset = kLookahead + rng->uniform(0.0, 0.2);
      const double t = sharded.shard(s).now() + offset;
      sharded.post(s, 0, t, [&sharded, &log, t, s] {
        log.push_back(Delivery{sharded.shard(0).now(), t,
                               static_cast<int>(s)});
      });
      sharded.shard(s).schedule_after(rng->uniform(0.001, 0.05),
                                      [chain, remaining] {
                                        (*chain)(remaining - 1);
                                      });
    };
    sharded.shard(s).schedule_now([chain] { (*chain)(kPostsPerShard); });
  }
  // Shard 0 idles on a long horizon so it is alive for every delivery.
  sharded.shard(0).schedule_at(1000.0, [] {});
  sharded.run();

  ASSERT_EQ(log.size(), (kShards - 1) * kPostsPerShard);
  for (std::size_t i = 0; i < log.size(); ++i) {
    // Delivered exactly at the requested timestamp...
    EXPECT_EQ(log[i].t, log[i].posted);
    // ...and in nondecreasing timestamp order.
    if (i > 0) EXPECT_GE(log[i].t, log[i - 1].t);
  }
  EXPECT_GT(sharded.windows(), 10u);
}

// ---------------------------------------------------------------------------
// Adversarial churn stress: ~50k events across 8 logical groups whose
// cross-posts land exactly on window-boundary grid points, exactly at the
// conservative horizon (now + lookahead), and one tick inside the
// speculation horizon — the three places a sync-mode bug would first
// corrupt delivery order. Every (shard count x sync mode) combination must
// reproduce the 1-shard oracle's per-group delivery log bitwise; the
// optimistic runs recover from real rollbacks by whole-model replay with
// the fence raised (the toy equivalent of the campaign driver's
// commit-restore loop, with t = 0 as the only commit).

struct ChurnStep {
  double at;        ///< group-local event time
  int dst;          ///< target group (-1 = no post)
  double delivery;  ///< posted delivery time when dst >= 0
};

constexpr double kChurnLookahead = 0.01;
constexpr std::size_t kChurnGroups = 8;

std::vector<std::vector<ChurnStep>> churn_plans() {
  std::vector<std::vector<ChurnStep>> plans(kChurnGroups);
  // Same-instant deliveries to one group from *different* sources are
  // tie-broken by (source shard, post seq) — deterministic for a fixed
  // shard count but legitimately dependent on the group->shard mapping,
  // so the boundary-hugging schedule must keep (dst, delivery) unique for
  // the cross-K bitwise claim to be the protocol's own. A one-ulp nudge
  // keeps colliding posts on (practically) the boundary.
  std::set<std::pair<int, double>> taken;
  for (std::size_t g = 0; g < kChurnGroups; ++g) {
    lifl::sim::Rng rng(1000 + g);
    double t = rng.uniform(0.0, 0.02);
    for (int i = 0; i < 4500; ++i) {
      // Dense bursts on a lookahead-aligned grid, with occasional idle
      // troughs long enough for the optimistic speculation bonus to ramp.
      const double u = rng.uniform(0.0, 1.0);
      if (u < 0.5) {
        t += kChurnLookahead *
             static_cast<double>(1 + static_cast<int>(rng.uniform(0.0, 3.0)));
      } else if (u < 0.95) {
        t += rng.uniform(0.0005, 0.03);
      } else {
        t += rng.uniform(0.5, 2.0);
      }
      ChurnStep st{t, -1, 0.0};
      if (rng.uniform(0.0, 1.0) < 0.5) {
        st.dst = static_cast<int>(
            (g + 1 + static_cast<std::size_t>(rng.uniform(
                         0.0, static_cast<double>(kChurnGroups - 1)))) %
            kChurnGroups);
        const double v = rng.uniform(0.0, 1.0);
        const double floor_t = t + kChurnLookahead;
        if (v < 0.4) {
          // Exactly on a window-boundary grid point at/after the clamp.
          st.delivery = kChurnLookahead *
                        std::ceil(floor_t / kChurnLookahead);
        } else if (v < 0.7) {
          st.delivery = floor_t;  // exactly at the conservative horizon
        } else if (v < 0.9) {
          st.delivery = floor_t + kChurnLookahead * 1e-9;  // one tick inside
        } else {
          st.delivery = floor_t + rng.uniform(0.0, 5.0 * kChurnLookahead);
        }
        while (!taken.insert({st.dst, st.delivery}).second) {
          st.delivery = std::nextafter(
              st.delivery, std::numeric_limits<double>::infinity());
        }
      }
      plans[g].push_back(st);
    }
  }
  return plans;
}

struct ChurnDelivery {
  double t;
  int id;
  bool operator==(const ChurnDelivery& o) const {
    return t == o.t && id == o.id;
  }
};

/// One full run of the churn model on `shards` shards (groups dealt round
/// robin). Returns per-group delivery logs; each group's log is written
/// only by its owning shard's thread, in that shard's deterministic
/// execution order.
std::vector<std::vector<ChurnDelivery>> churn_run(
    const std::vector<std::vector<ChurnStep>>& plans, std::size_t shards,
    lifl::sim::SyncMode sync, double fence, std::uint64_t* dispatched,
    std::uint64_t* skipped) {
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = kChurnLookahead;
  cfg.sync = sync;
  cfg.spec_fence = fence;
  ShardedSimulator sharded(cfg);
  std::vector<std::vector<ChurnDelivery>> logs(kChurnGroups);
  const auto shard_of = [shards](std::size_t g) { return g % shards; };
  for (std::size_t g = 0; g < kChurnGroups; ++g) {
    const std::size_t s = shard_of(g);
    for (std::size_t i = 0; i < plans[g].size(); ++i) {
      const ChurnStep& st = plans[g][i];
      sharded.shard(s).schedule_at(st.at, [&sharded, &logs, &st, &shard_of,
                                           s, g, i] {
        if (st.dst >= 0) {
          const std::size_t dg = static_cast<std::size_t>(st.dst);
          const int id = static_cast<int>(g * 10000 + i);
          sharded.post(s, shard_of(dg), st.delivery, [&sharded, &logs,
                                                      &shard_of, dg, id] {
            logs[dg].push_back(
                ChurnDelivery{sharded.shard(shard_of(dg)).now(), id});
          });
        }
      });
    }
  }
  sharded.run();
  if (dispatched != nullptr) *dispatched = sharded.dispatched();
  if (skipped != nullptr) *skipped = sharded.windows_skipped();
  return logs;
}

TEST(ShardedSim, AdversarialChurnMatchesOneShardOracleAcrossSyncModes) {
  std::size_t multi = 2;
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    multi = std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  const auto plans = churn_plans();
  std::uint64_t oracle_events = 0;
  const auto oracle = churn_run(plans, 1, lifl::sim::SyncMode::kConservative,
                                0.0, &oracle_events, nullptr);
  EXPECT_GE(oracle_events, 50'000u);

  const auto expect_match = [&oracle](
                                const std::vector<std::vector<ChurnDelivery>>&
                                    got,
                                const std::string& what) {
    for (std::size_t g = 0; g < kChurnGroups; ++g) {
      ASSERT_EQ(got[g].size(), oracle[g].size()) << what << " group " << g;
      for (std::size_t i = 0; i < got[g].size(); ++i) {
        EXPECT_TRUE(got[g][i] == oracle[g][i])
            << what << " group " << g << " delivery " << i;
        EXPECT_GE(got[g][i].t, i > 0 ? got[g][i - 1].t : 0.0)
            << what << " group " << g << " delivery " << i;
      }
    }
  };

  for (const std::size_t shards : {std::size_t{2}, multi}) {
    std::uint64_t events = 0;
    expect_match(churn_run(plans, shards, lifl::sim::SyncMode::kConservative,
                           0.0, &events, nullptr),
                 "conservative K=" + std::to_string(shards));
    EXPECT_EQ(events, oracle_events);
    expect_match(churn_run(plans, shards, lifl::sim::SyncMode::kAdaptive, 0.0,
                           &events, nullptr),
                 "adaptive K=" + std::to_string(shards));
    EXPECT_EQ(events, oracle_events);

    // Optimistic: replay the whole model with the fence raised after each
    // CausalityViolation — fences only grow, so the loop terminates.
    double fence = 0.0;
    int rollbacks = 0;
    for (;; ++rollbacks) {
      ASSERT_LT(rollbacks, 200) << "optimistic churn failed to converge";
      try {
        std::uint64_t skipped = 0;
        expect_match(churn_run(plans, shards, lifl::sim::SyncMode::kOptimistic,
                               fence, &events, &skipped),
                     "optimistic K=" + std::to_string(shards));
        EXPECT_EQ(events, oracle_events);
        break;
      } catch (const lifl::sim::CausalityViolation& v) {
        EXPECT_GT(v.receiver_now, fence);  // progress, or the loop spins
        fence = v.receiver_now;
      }
    }
    if (shards == 2) {
      // The boundary-hugging schedule really does trip speculation.
      EXPECT_GT(rollbacks, 0) << "stress never exercised a rollback";
    }
  }
}

// ---------------------------------------------------------------------------
// Shard-count equivalence of the group-partitioned campaign: a seeded
// 2-shard run must produce identical round-completion times and aggregate
// metrics to the 1-shard run (and, via LIFL_TEST_SHARDS, to any count).

lifl::sys::ShardedCampaignConfig small_campaign(std::size_t shards) {
  lifl::sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 4;
  cfg.rounds = 2;
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 400.0;
  cfg.ramp_secs = 2.0;
  cfg.seed = 77;
  return cfg;
}

TEST(ShardedCampaign, TwoShardsEquivalentToOne) {
  std::size_t shards = 2;
  if (const char* env = std::getenv("LIFL_TEST_SHARDS")) {
    shards = std::max<std::size_t>(2, std::strtoul(env, nullptr, 10));
  }
  const auto mono = lifl::sys::run_sharded_campaign(small_campaign(1));
  const auto multi = lifl::sys::run_sharded_campaign(small_campaign(shards));

  ASSERT_EQ(mono.round_completed_at.size(), multi.round_completed_at.size());
  for (std::size_t r = 0; r < mono.round_completed_at.size(); ++r) {
    EXPECT_DOUBLE_EQ(mono.round_completed_at[r], multi.round_completed_at[r])
        << "round " << r;
    EXPECT_EQ(mono.round_samples[r], multi.round_samples[r]) << "round " << r;
  }
  ASSERT_EQ(mono.groups.size(), multi.groups.size());
  for (std::size_t g = 0; g < mono.groups.size(); ++g) {
    EXPECT_EQ(mono.groups[g].uploads, multi.groups[g].uploads) << "group " << g;
    EXPECT_EQ(mono.groups[g].pool_pushed, multi.groups[g].pool_pushed)
        << "group " << g;
    EXPECT_DOUBLE_EQ(mono.groups[g].gateway_busy_secs,
                     multi.groups[g].gateway_busy_secs)
        << "group " << g;
    EXPECT_DOUBLE_EQ(mono.groups[g].gateway_wait_secs,
                     multi.groups[g].gateway_wait_secs)
        << "group " << g;
    EXPECT_DOUBLE_EQ(mono.groups[g].cpu_cycles, multi.groups[g].cpu_cycles)
        << "group " << g;
  }
  // The same logical events ran on both sides (the multi-shard run adds no
  // events of its own — cross posts are the same schedule calls).
  EXPECT_EQ(mono.events, multi.events);
  EXPECT_DOUBLE_EQ(mono.sim_secs, multi.sim_secs);
  // And the threaded run really was threaded.
  EXPECT_GT(multi.windows, 0u);
  EXPECT_GT(multi.cross_posts, 0u);
}

TEST(ShardedCampaign, GatewayRssQueuesPreserveEquivalence) {
  // RSS fan-out (one queue per gateway core) must not break the shard
  // equivalence: steering is by client id, which is group-local.
  auto cfg1 = small_campaign(1);
  cfg1.gateway_cores = 4;
  cfg1.gateway_queues = 0;  // one queue per core
  auto cfg2 = cfg1;
  cfg2.shards = 2;
  const auto mono = lifl::sys::run_sharded_campaign(cfg1);
  const auto multi = lifl::sys::run_sharded_campaign(cfg2);
  ASSERT_EQ(mono.round_completed_at.size(), multi.round_completed_at.size());
  for (std::size_t r = 0; r < mono.round_completed_at.size(); ++r) {
    EXPECT_DOUBLE_EQ(mono.round_completed_at[r], multi.round_completed_at[r]);
  }
  for (std::size_t g = 0; g < mono.groups.size(); ++g) {
    EXPECT_DOUBLE_EQ(mono.groups[g].gateway_busy_secs,
                     multi.groups[g].gateway_busy_secs);
  }
}

}  // namespace
