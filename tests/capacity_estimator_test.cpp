// Tests for the Appendix-E offline capacity estimator: knee detection,
// scaling properties (more slots => more capacity; slower service => less
// throughput headroom), and curve monotonicity under load.

#include <gtest/gtest.h>

#include "src/control/capacity_estimator.hpp"

namespace lifl::ctrl {
namespace {

CapacityEstimator::Config profile(std::uint32_t slots, double service) {
  CapacityEstimator::Config cfg;
  cfg.slots = slots;
  cfg.service_secs = service;
  return cfg;
}

TEST(CapacityEstimator, InvalidProfileThrows) {
  EXPECT_THROW(CapacityEstimator::estimate(profile(0, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(CapacityEstimator::estimate(profile(4, 0.0)),
               std::invalid_argument);
}

TEST(CapacityEstimator, FindsAKneeUnderOverload) {
  const auto r = CapacityEstimator::estimate(profile(8, 0.5));
  EXPECT_TRUE(r.knee_found);
  EXPECT_GT(r.max_capacity, 0.0);
  // The knee must sit beyond the uncontended region: E' > baseline E.
  EXPECT_GT(r.knee_exec_secs, 0.5);
}

TEST(CapacityEstimator, CapacityNearSlotServiceProduct) {
  // MC = k' x E' should land in the ballpark of the true concurrent
  // capacity (slots), since saturation begins around rho = 1 where
  // k ~ slots / service and E ~ service (paper's MC_i = 20 on its nodes).
  const auto r = CapacityEstimator::estimate(profile(8, 0.5));
  EXPECT_GT(r.max_capacity, 4.0);
  EXPECT_LT(r.max_capacity, 24.0);
}

TEST(CapacityEstimator, MoreSlotsMeanMoreCapacity) {
  const auto small = CapacityEstimator::estimate(profile(4, 0.5));
  const auto big = CapacityEstimator::estimate(profile(16, 0.5));
  EXPECT_GT(big.max_capacity, small.max_capacity * 1.5);
}

TEST(CapacityEstimator, SlowerServiceSaturatesAtLowerRate) {
  const auto fast = CapacityEstimator::estimate(profile(8, 0.25));
  const auto slow = CapacityEstimator::estimate(profile(8, 1.0));
  EXPECT_GT(fast.knee_rate, slow.knee_rate * 1.5);
}

TEST(CapacityEstimator, CurveIsRecordedAndRatesIncrease) {
  const auto r = CapacityEstimator::estimate(profile(8, 0.5));
  ASSERT_GE(r.curve.size(), 2u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GT(r.curve[i].arrival_rate, r.curve[i - 1].arrival_rate);
    EXPECT_GT(r.curve[i].exec_secs, 0.0);
  }
  // The last probe is the knee.
  EXPECT_DOUBLE_EQ(r.curve.back().arrival_rate, r.knee_rate);
}

TEST(CapacityEstimator, UncontendedExecTimeNearService) {
  const auto r = CapacityEstimator::estimate(profile(8, 0.5));
  EXPECT_NEAR(r.curve.front().exec_secs, 0.5, 0.1);
}

TEST(CapacityEstimator, HonorsProbeCapWithoutKnee) {
  // An absurdly tolerant knee ratio never triggers: the estimator must
  // terminate at max_probes and report a lower bound.
  auto cfg = profile(4, 0.1);
  cfg.knee_ratio = 1e9;
  cfg.max_probes = 6;
  const auto r = CapacityEstimator::estimate(cfg);
  EXPECT_FALSE(r.knee_found);
  EXPECT_EQ(r.curve.size(), 6u);
  EXPECT_GT(r.max_capacity, 0.0);
}

/// Property sweep: for any (slots, service) profile, the estimate is
/// positive, the knee (when found) is past the first probe, and capacity
/// scales no worse than linearly with slots.
class CapacityProfileSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(CapacityProfileSweep, EstimateIsSane) {
  const auto [slots, service] = GetParam();
  const auto r = CapacityEstimator::estimate(profile(slots, service));
  EXPECT_GT(r.max_capacity, 0.0);
  EXPECT_GT(r.knee_rate, 0.0);
  EXPECT_GE(r.knee_exec_secs, service * 0.9);
  // MC should not exceed a generous multiple of the true slot count.
  EXPECT_LT(r.max_capacity, static_cast<double>(slots) * 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, CapacityProfileSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 20u),
                       ::testing::Values(0.1, 0.5, 2.0)));

}  // namespace
}  // namespace lifl::ctrl
