file(REMOVE_RECURSE
  "CMakeFiles/capacity_estimator_test.dir/tests/capacity_estimator_test.cpp.o"
  "CMakeFiles/capacity_estimator_test.dir/tests/capacity_estimator_test.cpp.o.d"
  "capacity_estimator_test"
  "capacity_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
