# Empty dependencies file for capacity_estimator_test.
# This may be replaced when dependencies are built.
