file(REMOVE_RECURSE
  "CMakeFiles/aggregator_runtime_test.dir/tests/aggregator_runtime_test.cpp.o"
  "CMakeFiles/aggregator_runtime_test.dir/tests/aggregator_runtime_test.cpp.o.d"
  "aggregator_runtime_test"
  "aggregator_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
