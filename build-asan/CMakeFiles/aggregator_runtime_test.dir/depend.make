# Empty dependencies file for aggregator_runtime_test.
# This may be replaced when dependencies are built.
