file(REMOVE_RECURSE
  "CMakeFiles/server_optimizer_test.dir/tests/server_optimizer_test.cpp.o"
  "CMakeFiles/server_optimizer_test.dir/tests/server_optimizer_test.cpp.o.d"
  "server_optimizer_test"
  "server_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
