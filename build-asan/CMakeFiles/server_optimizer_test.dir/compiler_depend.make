# Empty compiler generated dependencies file for server_optimizer_test.
# This may be replaced when dependencies are built.
