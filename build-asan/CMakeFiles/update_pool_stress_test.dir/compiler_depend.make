# Empty compiler generated dependencies file for update_pool_stress_test.
# This may be replaced when dependencies are built.
