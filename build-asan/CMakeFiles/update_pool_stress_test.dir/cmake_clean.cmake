file(REMOVE_RECURSE
  "CMakeFiles/update_pool_stress_test.dir/tests/update_pool_stress_test.cpp.o"
  "CMakeFiles/update_pool_stress_test.dir/tests/update_pool_stress_test.cpp.o.d"
  "update_pool_stress_test"
  "update_pool_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_pool_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
