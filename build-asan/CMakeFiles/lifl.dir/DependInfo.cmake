
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/agent.cpp" "CMakeFiles/lifl.dir/src/control/agent.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/agent.cpp.o.d"
  "/root/repo/src/control/capacity_estimator.cpp" "CMakeFiles/lifl.dir/src/control/capacity_estimator.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/capacity_estimator.cpp.o.d"
  "/root/repo/src/control/hierarchy.cpp" "CMakeFiles/lifl.dir/src/control/hierarchy.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/hierarchy.cpp.o.d"
  "/root/repo/src/control/metrics_server.cpp" "CMakeFiles/lifl.dir/src/control/metrics_server.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/metrics_server.cpp.o.d"
  "/root/repo/src/control/placement.cpp" "CMakeFiles/lifl.dir/src/control/placement.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/placement.cpp.o.d"
  "/root/repo/src/control/selector.cpp" "CMakeFiles/lifl.dir/src/control/selector.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/selector.cpp.o.d"
  "/root/repo/src/control/tag.cpp" "CMakeFiles/lifl.dir/src/control/tag.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/control/tag.cpp.o.d"
  "/root/repo/src/dataplane/cost.cpp" "CMakeFiles/lifl.dir/src/dataplane/cost.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/dataplane/cost.cpp.o.d"
  "/root/repo/src/dataplane/dataplane.cpp" "CMakeFiles/lifl.dir/src/dataplane/dataplane.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/dataplane/dataplane.cpp.o.d"
  "/root/repo/src/fl/aggregator_runtime.cpp" "CMakeFiles/lifl.dir/src/fl/aggregator_runtime.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/fl/aggregator_runtime.cpp.o.d"
  "/root/repo/src/fl/async_engine.cpp" "CMakeFiles/lifl.dir/src/fl/async_engine.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/fl/async_engine.cpp.o.d"
  "/root/repo/src/fl/checkpoint.cpp" "CMakeFiles/lifl.dir/src/fl/checkpoint.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/fl/checkpoint.cpp.o.d"
  "/root/repo/src/fl/fedavg.cpp" "CMakeFiles/lifl.dir/src/fl/fedavg.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/fl/fedavg.cpp.o.d"
  "/root/repo/src/fl/server_optimizer.cpp" "CMakeFiles/lifl.dir/src/fl/server_optimizer.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/fl/server_optimizer.cpp.o.d"
  "/root/repo/src/ml/accuracy_model.cpp" "CMakeFiles/lifl.dir/src/ml/accuracy_model.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/ml/accuracy_model.cpp.o.d"
  "/root/repo/src/ml/conv.cpp" "CMakeFiles/lifl.dir/src/ml/conv.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/ml/conv.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "CMakeFiles/lifl.dir/src/ml/dataset.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "CMakeFiles/lifl.dir/src/ml/mlp.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/tensor.cpp" "CMakeFiles/lifl.dir/src/ml/tensor.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/ml/tensor.cpp.o.d"
  "/root/repo/src/ml/train.cpp" "CMakeFiles/lifl.dir/src/ml/train.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/ml/train.cpp.o.d"
  "/root/repo/src/sim/cpu_accounting.cpp" "CMakeFiles/lifl.dir/src/sim/cpu_accounting.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/sim/cpu_accounting.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "CMakeFiles/lifl.dir/src/sim/resource.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/sim/resource.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/lifl.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/systems/aggregation_service.cpp" "CMakeFiles/lifl.dir/src/systems/aggregation_service.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/systems/aggregation_service.cpp.o.d"
  "/root/repo/src/systems/system_config.cpp" "CMakeFiles/lifl.dir/src/systems/system_config.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/systems/system_config.cpp.o.d"
  "/root/repo/src/systems/training_experiment.cpp" "CMakeFiles/lifl.dir/src/systems/training_experiment.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/systems/training_experiment.cpp.o.d"
  "/root/repo/src/workload/population.cpp" "CMakeFiles/lifl.dir/src/workload/population.cpp.o" "gcc" "CMakeFiles/lifl.dir/src/workload/population.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
