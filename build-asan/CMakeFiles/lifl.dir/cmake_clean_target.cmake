file(REMOVE_RECURSE
  "liblifl.a"
)
