# Empty dependencies file for lifl.
# This may be replaced when dependencies are built.
