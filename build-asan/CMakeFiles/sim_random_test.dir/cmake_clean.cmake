file(REMOVE_RECURSE
  "CMakeFiles/sim_random_test.dir/tests/sim_random_test.cpp.o"
  "CMakeFiles/sim_random_test.dir/tests/sim_random_test.cpp.o.d"
  "sim_random_test"
  "sim_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
