file(REMOVE_RECURSE
  "CMakeFiles/broker_plane_test.dir/tests/broker_plane_test.cpp.o"
  "CMakeFiles/broker_plane_test.dir/tests/broker_plane_test.cpp.o.d"
  "broker_plane_test"
  "broker_plane_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
