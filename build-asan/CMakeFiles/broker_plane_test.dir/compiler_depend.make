# Empty compiler generated dependencies file for broker_plane_test.
# This may be replaced when dependencies are built.
