# Empty dependencies file for checkpoint_async_test.
# This may be replaced when dependencies are built.
