file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_async_test.dir/tests/checkpoint_async_test.cpp.o"
  "CMakeFiles/checkpoint_async_test.dir/tests/checkpoint_async_test.cpp.o.d"
  "checkpoint_async_test"
  "checkpoint_async_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
