# Empty compiler generated dependencies file for dataplane_test.
# This may be replaced when dependencies are built.
