file(REMOVE_RECURSE
  "CMakeFiles/fedavg_test.dir/tests/fedavg_test.cpp.o"
  "CMakeFiles/fedavg_test.dir/tests/fedavg_test.cpp.o.d"
  "fedavg_test"
  "fedavg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedavg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
