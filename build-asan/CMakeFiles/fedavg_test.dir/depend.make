# Empty dependencies file for fedavg_test.
# This may be replaced when dependencies are built.
