file(REMOVE_RECURSE
  "CMakeFiles/shm_store_test.dir/tests/shm_store_test.cpp.o"
  "CMakeFiles/shm_store_test.dir/tests/shm_store_test.cpp.o.d"
  "shm_store_test"
  "shm_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shm_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
