// Reproduces the Appendix-E experiment: offline estimation of a worker
// node's maximum service capacity MC_i. The estimator drives increasing
// arrival rates into a node profile, watches the measured per-update
// execution time E, stops at the knee, and reports MC_i = k' x E'.
// (§6.1 uses MC_i = 20 for the paper's 64-core testbed nodes.)

#include <cstdio>

#include "src/control/capacity_estimator.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

void run_profile(const std::string& label, std::uint32_t slots,
                 double service_secs) {
  ctrl::CapacityEstimator::Config cfg;
  cfg.slots = slots;
  cfg.service_secs = service_secs;
  const auto r = ctrl::CapacityEstimator::estimate(cfg);

  sys::Table t({"arrival rate k (upd/s)", "measured E (s)"});
  // Print a condensed curve: every third probe plus the knee.
  for (std::size_t i = 0; i < r.curve.size(); ++i) {
    if (i % 3 != 0 && i + 1 != r.curve.size()) continue;
    t.row({sys::fmt(r.curve[i].arrival_rate, 2),
           sys::fmt(r.curve[i].exec_secs, 3)});
  }
  t.print(label + " — E(k) load curve (knee at the last row)");
  std::printf("%s: knee at k'=%.2f upd/s, E'=%.3f s  =>  MC = k' x E' = %.1f "
              "(%s)\n",
              label.c_str(), r.knee_rate, r.knee_exec_secs, r.max_capacity,
              r.knee_found ? "knee found" : "rate cap reached");
}

}  // namespace

int main() {
  std::printf("Appendix E — offline maximum-service-capacity estimation\n");
  // A testbed-like profile: enough aggregation slots that MC lands near the
  // paper's MC_i = 20, plus smaller/larger nodes to show the scaling.
  run_profile("testbed-like node (18 slots, 1.0 s/update)", 18, 1.0);
  run_profile("small node (4 slots, 0.5 s/update)", 4, 0.5);
  run_profile("fast node (8 slots, 0.1 s/update)", 8, 0.1);
  return 0;
}
