// Fault-recovery microbench: lossless-recovery overhead for a 1M-client,
// 8-node-group planned-mode mega-campaign under a fixed sim::FaultPlan
// with a 10% per-round leaf crash rate (plus middle and top crashes).
//
// The campaign runs twice — fault-free and faulted — and the bench
// reports crash/recovery telemetry and the *simulated* round-time
// overhead recovery adds. Two properties gate:
//   1. Conservation: every round folds exactly the fault-free sample sum
//      (crashed aggregators' un-acked pool claims return and re-fold;
//      nothing lost, nothing double-counted).
//   2. Overhead: mean simulated round time under faults stays within 25%
//      of fault-free — recovery re-claims from the warm pool instead of
//      restarting the round.
//
// Emits BENCH_fault_recovery.json. CI runs it in Release and fails the
// job on a gate miss (LIFL_FAULT_BENCH_GATE=0 disables the gate).
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_fault_recovery

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

sys::ShardedCampaignConfig bench_campaign() {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 1;  // sim time is shard-count invariant; keep wall cost low
  cfg.groups = 8;  // the paper's 8-node cluster
  cfg.rounds = 2;
  cfg.leaves_per_group = 62;
  cfg.updates_per_leaf = 500;  // 248k uploads/round, 1M-client population
  cfg.model_bytes = 100'000;
  cfg.population = 1'000'000;
  cfg.peak_per_sec = 2500.0;
  cfg.ramp_secs = 60.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 600.0;
  cfg.seed = 2026;
  cfg.gateway_queues = 0;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 5.0;
  return cfg;
}

double mean_round_secs(const sys::ShardedCampaignResult& r) {
  double sum = 0.0;
  for (std::size_t i = 0; i < r.round_completed_at.size(); ++i) {
    sum += r.round_completed_at[i] - r.round_started_at[i];
  }
  return sum / static_cast<double>(r.round_completed_at.size());
}

}  // namespace

int main() {
  const bench::BenchMeta meta;
  const auto base = bench_campaign();
  std::printf(
      "fault-recovery microbench: %zu clients, %zu node groups, %zu rounds, "
      "10%% per-round leaf crash rate\n\n",
      base.population, base.groups, base.rounds);

  const auto fault_free = sys::run_sharded_campaign(base);

  auto faulted_cfg = base;
  faulted_cfg.fault.seed = 404;
  faulted_cfg.fault.leaf_crash_rate = 0.10;
  faulted_cfg.fault.middle_crash_rate = 0.05;
  faulted_cfg.fault.top_crash_rate = 1.0;  // one top crash every round
  const auto faulted = sys::run_sharded_campaign(faulted_cfg);

  // ---- conservation: zero lost client samples, round by round.
  bool conserved =
      faulted.round_samples.size() == fault_free.round_samples.size();
  for (std::size_t r = 0; conserved && r < fault_free.round_samples.size();
       ++r) {
    conserved = faulted.round_samples[r] == fault_free.round_samples[r];
  }
  if (!conserved) {
    std::fprintf(stderr,
                 "FAIL: recovery lost client samples (faulted round sums "
                 "differ from fault-free)\n");
    return 1;
  }
  if (faulted.leaf_crashes == 0 || faulted.refolded_updates == 0) {
    std::fprintf(stderr,
                 "FAIL: the fault plan injected no leaf crashes — the bench "
                 "measured nothing\n");
    return 1;
  }

  const double free_round = mean_round_secs(fault_free);
  const double faulted_round = mean_round_secs(faulted);
  const double overhead = (faulted_round - free_round) / free_round;

  sys::Table t({"metric", "fault-free", "faulted"});
  t.row({"round sim time (s, mean)", sys::fmt(free_round, 3),
         sys::fmt(faulted_round, 3)});
  t.row({"leaf crashes", "0", std::to_string(faulted.leaf_crashes)});
  t.row({"middle crashes", "0", std::to_string(faulted.middle_crashes)});
  t.row({"top crashes", "0", std::to_string(faulted.top_crashes)});
  t.row({"updates re-folded", "0",
         std::to_string(faulted.refolded_updates)});
  t.row({"partials re-injected", "0",
         std::to_string(faulted.reinjected_partials)});
  t.row({"recovery cold-start (s)", "0",
         sys::fmt(faulted.recovery_secs, 3)});
  t.row({"runtimes spawned", std::to_string(fault_free.spawned_total),
         std::to_string(faulted.spawned_total)});
  t.print("Lossless recovery at 1M clients, 10% leaf crash rate");
  std::printf("round-time overhead: %.2f%%  (samples conserved: yes)\n",
              overhead * 100.0);

  FILE* out = std::fopen("BENCH_fault_recovery.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"fault_recovery\",\n"
                 "  \"population\": %zu,\n"
                 "  \"groups\": %zu,\n"
                 "  \"rounds\": %zu,\n"
                 "  \"leaf_crash_rate\": %.3f,\n"
                 "  \"leaf_crashes\": %llu,\n"
                 "  \"middle_crashes\": %llu,\n"
                 "  \"top_crashes\": %llu,\n"
                 "  \"refolded_updates\": %llu,\n"
                 "  \"reinjected_partials\": %llu,\n"
                 "  \"recovery_secs\": %.6f,\n"
                 "  \"round_secs_fault_free\": %.6f,\n"
                 "  \"round_secs_faulted\": %.6f,\n"
                 "  \"round_overhead_frac\": %.6f,\n"
                 "  \"samples_conserved\": true\n"
                 "}\n",
                 base.population, base.groups, base.rounds,
                 faulted_cfg.fault.leaf_crash_rate,
                 static_cast<unsigned long long>(faulted.leaf_crashes),
                 static_cast<unsigned long long>(faulted.middle_crashes),
                 static_cast<unsigned long long>(faulted.top_crashes),
                 static_cast<unsigned long long>(faulted.refolded_updates),
                 static_cast<unsigned long long>(
                     faulted.reinjected_partials),
                 faulted.recovery_secs, free_round, faulted_round, overhead);
    std::fclose(out);
    std::printf("wrote BENCH_fault_recovery.json\n");
  }

  // ---- gate: recovery must stay cheap — re-claiming from the warm pool
  // bounds the damage of a crash to the crashed instance's partial work,
  // so a 10% leaf crash rate should cost far less than 25% of round time.
  bool gate = true;
  if (const char* env = std::getenv("LIFL_FAULT_BENCH_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf("gate SKIPPED (LIFL_FAULT_BENCH_GATE=0)\n");
    return 0;
  }
  if (overhead > 0.25) {
    std::fprintf(stderr,
                 "FAIL: faulted round time %.3f s is %.1f%% over the "
                 "fault-free %.3f s (gate: 25%%)\n",
                 faulted_round, overhead * 100.0, free_round);
    return 1;
  }
  std::printf("gate OK: %.2f%% round-time overhead <= 25%%\n",
              overhead * 100.0);
  return 0;
}
