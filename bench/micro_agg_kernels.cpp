// Aggregation-kernel microbench: folds/s and bytes/s of the FedAvg fold
// path over real parameter tensors, seed form vs fused form.
//
//   baseline — the seed's streaming-mean fold: a deep copy to start, then a
//              full `scale` sweep plus a full `axpy` sweep per folded
//              update (two read-modify-write passes over the accumulator).
//   fused    — the production path after the kernels refactor: sum-form
//              `FedAvgAccumulator` folding with the fused single-pass
//              kernels (`axpy` / dual-fold `axpy2`), pooled zero-alloc
//              buffers, and ONE finalize divide per aggregation goal.
//
// Both paths run on the same dispatched ISA level (`LIFL_KERNEL` selects
// it), so the comparison isolates the *fusion*, not the instruction set.
// A second table A/Bs the dispatch levels themselves on the raw kernels.
//
// Emits BENCH_agg_kernels.json. CI uploads it as an artifact and the bench
// fails if the fused path folds < 2x the baseline at 1M params; set
// LIFL_AGG_BENCH_GATE=0 to disable the gate (it is on by default — the
// fold path is single-threaded, so the floor needs no minimum core count).
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_agg_kernels

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/fl/fedavg.hpp"
#include "src/ml/kernels.hpp"
#include "src/ml/tensor.hpp"
#include "src/ml/tensor_pool.hpp"
#include "src/sim/random.hpp"
#include "src/systems/table.hpp"

using namespace lifl;
namespace k = ml::kernels;

namespace {

double now_secs() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FoldSample {
  std::size_t params = 0;
  std::uint32_t folds = 0;
  double baseline_secs = 0.0;
  double fused_secs = 0.0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;

  double baseline_folds_per_sec() const { return folds / baseline_secs; }
  double fused_folds_per_sec() const { return folds / fused_secs; }
  double speedup() const { return baseline_secs / fused_secs; }
  /// Update-payload bytes folded per second (the figure-of-merit the
  /// aggregation plane is sized by).
  double baseline_gb_per_sec() const {
    return folds * params * sizeof(float) / baseline_secs / 1e9;
  }
  double fused_gb_per_sec() const {
    return folds * params * sizeof(float) / fused_secs / 1e9;
  }
};

/// The seed fold loop, reproduced verbatim: deep-copy first, then
/// scale+axpy (two full sweeps) per update, rescaling the mean every fold.
double run_baseline(const std::vector<std::shared_ptr<const ml::Tensor>>& xs,
                    std::uint32_t folds) {
  const double t0 = now_secs();
  ml::Tensor avg(*xs[0]);  // copy-on-write start of the running average
  std::uint64_t total = 600;
  for (std::uint32_t i = 1; i < folds; ++i) {
    const ml::Tensor& x = *xs[i % xs.size()];
    const std::uint64_t c = 600;
    const float lambda = static_cast<float>(
        static_cast<double>(c) / static_cast<double>(total + c));
    avg.scale(1.0f - lambda);
    avg.axpy(lambda, x);
    total += c;
  }
  // Keep the result observable so the loop cannot be dead-code eliminated.
  volatile float sink = avg[folds % avg.size()];
  (void)sink;
  return now_secs() - t0;
}

/// The production fold path: sum-form accumulator, fused/dual-fold kernels,
/// pooled buffers, one finalize per goal.
double run_fused(const std::vector<std::shared_ptr<const ml::Tensor>>& xs,
                 std::uint32_t folds) {
  const double t0 = now_secs();
  fl::FedAvgAccumulator acc;
  for (std::uint32_t i = 0; i < folds; ++i) {
    acc.add(xs[i % xs.size()], 600);
  }
  const auto result = acc.result();
  volatile float sink = (*result)[folds % result->size()];
  (void)sink;
  acc.reset();
  return now_secs() - t0;
}

FoldSample measure_folds(std::size_t params, std::uint32_t folds, int reps) {
  sim::Rng rng(11);
  std::vector<std::shared_ptr<const ml::Tensor>> xs;
  for (int i = 0; i < 4; ++i) {
    xs.push_back(std::make_shared<const ml::Tensor>(
        ml::Tensor::randn(rng, params, 0.05f)));
  }
  FoldSample s;
  s.params = params;
  s.folds = folds;
  // Warm both paths once (page faults, pool population), then best-of-reps.
  (void)run_baseline(xs, std::max<std::uint32_t>(folds / 4, 2));
  (void)run_fused(xs, std::max<std::uint32_t>(folds / 4, 2));
  const ml::TensorPoolStats before = ml::TensorPool::global().stats();
  s.baseline_secs = run_baseline(xs, folds);
  s.fused_secs = run_fused(xs, folds);
  for (int r = 1; r < reps; ++r) {
    s.baseline_secs = std::min(s.baseline_secs, run_baseline(xs, folds));
    s.fused_secs = std::min(s.fused_secs, run_fused(xs, folds));
  }
  const ml::TensorPoolStats after = ml::TensorPool::global().stats();
  s.pool_hits = after.pool_hits - before.pool_hits;
  s.pool_misses = after.misses - before.misses;
  return s;
}

struct LevelSample {
  k::Level level;
  double axpy_gb_per_sec = 0.0;
  double dot_gb_per_sec = 0.0;
};

/// Raw-kernel ISA A/B: one axpy sweep and one dot at `params`, per level.
LevelSample measure_level(k::Level level, std::size_t params, int reps) {
  sim::Rng rng(13);
  ml::Tensor acc = ml::Tensor::randn(rng, params, 0.05f);
  const ml::Tensor x = ml::Tensor::randn(rng, params, 0.05f);
  const k::Ops& ops = k::ops_for(level);
  LevelSample s;
  s.level = level;
  const double bytes_axpy = 3.0 * params * sizeof(float);  // r+w acc, r x
  const double bytes_dot = 2.0 * params * sizeof(float);
  double best_axpy = 1e30, best_dot = 1e30;
  volatile double sink = 0.0;
  for (int r = 0; r < reps + 1; ++r) {  // first rep warms, then best-of
    double t0 = now_secs();
    ops.axpy(acc.data(), 1e-6f, x.data(), params);
    const double axpy_secs = now_secs() - t0;
    t0 = now_secs();
    sink = ops.dot(acc.data(), x.data(), params);
    const double dot_secs = now_secs() - t0;
    if (r == 0) continue;
    best_axpy = std::min(best_axpy, axpy_secs);
    best_dot = std::min(best_dot, dot_secs);
  }
  (void)sink;
  s.axpy_gb_per_sec = bytes_axpy / best_axpy / 1e9;
  s.dot_gb_per_sec = bytes_dot / best_dot / 1e9;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t folds_1m = 64;
  if (argc > 1) {
    char* end = nullptr;
    folds_1m = static_cast<std::uint32_t>(std::strtoul(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || folds_1m < 4) {
      std::fprintf(stderr, "usage: %s [folds >= 4]\n", argv[0]);
      return 2;
    }
  }

  const bench::BenchMeta meta;
  const k::Level level = k::level();
  std::printf(
      "aggregation-kernel microbench: kernel level %s (max supported %s, "
      "override with LIFL_KERNEL)\n\n",
      k::level_name(level), k::level_name(k::max_supported()));

  // ---- fold-path comparison at 1M and 25M params.
  std::vector<FoldSample> samples;
  samples.push_back(measure_folds(1'000'000, folds_1m, 3));
  samples.push_back(
      measure_folds(25'000'000, std::max<std::uint32_t>(folds_1m / 8, 4), 2));

  sys::Table t({"params", "folds", "seed folds/s", "fused folds/s", "speedup",
                "seed GB/s", "fused GB/s", "pool hit/miss"});
  for (const auto& s : samples) {
    t.row({std::to_string(s.params), std::to_string(s.folds),
           sys::fmt(s.baseline_folds_per_sec(), 1),
           sys::fmt(s.fused_folds_per_sec(), 1), sys::fmt(s.speedup(), 2) + "x",
           sys::fmt(s.baseline_gb_per_sec(), 2),
           sys::fmt(s.fused_gb_per_sec(), 2),
           std::to_string(s.pool_hits) + "/" + std::to_string(s.pool_misses)});
  }
  t.print("FedAvg fold path: seed scale+axpy vs fused sum-form kernels");

  // ---- raw-kernel ISA ladder at 1M params.
  std::vector<LevelSample> levels;
  for (int l = 0; l <= static_cast<int>(k::max_supported()); ++l) {
    levels.push_back(measure_level(static_cast<k::Level>(l), 1'000'000, 3));
  }
  sys::Table lt({"level", "axpy GB/s", "dot GB/s"});
  for (const auto& s : levels) {
    lt.row({k::level_name(s.level), sys::fmt(s.axpy_gb_per_sec, 2),
            sys::fmt(s.dot_gb_per_sec, 2)});
  }
  lt.print("Raw kernels by dispatch level (1M params)");

  FILE* out = std::fopen("BENCH_agg_kernels.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"agg_kernels\",\n"
                 "  \"kernel_level\": \"%s\",\n"
                 "  \"sizes\": [\n",
                 k::level_name(level));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto& s = samples[i];
      std::fprintf(
          out,
          "    {\"params\": %zu, \"folds\": %u, "
          "\"baseline_folds_per_sec\": %.2f, \"fused_folds_per_sec\": %.2f, "
          "\"speedup\": %.3f, \"baseline_gb_per_sec\": %.3f, "
          "\"fused_gb_per_sec\": %.3f, \"pool_hits\": %llu, "
          "\"pool_misses\": %llu}%s\n",
          s.params, s.folds, s.baseline_folds_per_sec(),
          s.fused_folds_per_sec(), s.speedup(), s.baseline_gb_per_sec(),
          s.fused_gb_per_sec(), static_cast<unsigned long long>(s.pool_hits),
          static_cast<unsigned long long>(s.pool_misses),
          i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"levels\": [\n");
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const auto& s = levels[i];
      std::fprintf(out,
                   "    {\"level\": \"%s\", \"axpy_gb_per_sec\": %.3f, "
                   "\"dot_gb_per_sec\": %.3f}%s\n",
                   k::level_name(s.level), s.axpy_gb_per_sec,
                   s.dot_gb_per_sec, i + 1 < levels.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_agg_kernels.json\n");
  }

  // ---- gate: fused >= 2x seed folds/s at 1M params.
  bool gate = true;
  if (const char* env = std::getenv("LIFL_AGG_BENCH_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  const double speedup_1m = samples[0].speedup();
  if (!gate) {
    std::printf("gate SKIPPED (LIFL_AGG_BENCH_GATE=0); 1M-param speedup "
                "%.2fx\n",
                speedup_1m);
    return 0;
  }
  if (speedup_1m < 2.0) {
    std::fprintf(stderr,
                 "FAIL: fused fold speedup %.2fx at 1M params below the 2x "
                 "floor the kernels layer is held to\n",
                 speedup_1m);
    return 1;
  }
  std::printf("gate OK: fused fold speedup %.2fx >= 2x at 1M params\n",
              speedup_1m);
  return 0;
}
