// Ablation of LIFL's hierarchy-planning parameters (§5.2):
//   (a) I, the updates per leaf aggregator. The paper keeps I small ("e.g.,
//       at 2") so a leaf "experiences minimal waiting time after receiving
//       the initial update from the first client". Sweeping I shows the
//       parallelism-vs-instances trade-off and why I = 2 is the default.
//   (b) the EWMA coefficient alpha (paper: 0.7 "yielding the best results")
//       used to smooth queue estimates before re-planning: small alpha
//       chases short-term spikes and over-provisions; large alpha reacts
//       too slowly and under-provisions after load shifts.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/control/ewma.hpp"
#include "src/control/hierarchy.hpp"
#include "src/fl/model_spec.hpp"
#include "src/systems/aggregation_service.hpp"
#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

/// ACT and instance count of one 60-update LIFL batch with fan-in I.
std::pair<double, std::uint32_t> run_with_fanin(std::uint32_t fanin) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 5);
  sys::SystemConfig cfg = sys::make_lifl();
  cfg.updates_per_leaf = fanin;
  dp::DataPlane plane(cluster, cfg.plane, sim::Rng(5));
  sys::AggregationService service(cluster, plane, cfg);

  const std::uint32_t updates = 60;
  const auto assignment = service.place_updates(updates);
  std::vector<std::uint32_t> counts(cluster.size(), 0);
  for (auto n : assignment) counts[n]++;
  for (std::uint32_t i = 0; i < updates; ++i) {
    fl::ModelUpdate u;
    u.model_version = 1;
    u.producer = 5000 + i;
    u.sample_count = 600;
    u.logical_bytes = fl::models::resnet152().bytes();
    plane.seed_update(assignment[i], std::move(u));
  }
  double act = 0;
  std::uint32_t instances = 0;
  service.arm(counts, 1, fl::models::resnet152().bytes(),
              [&](const sys::AggregationService::BatchResult& b) {
                act = b.act();
                instances = b.created + b.reused;
              });
  sim.run();
  return {act, instances};
}

/// Provisioning behaviour of an EWMA-smoothed planner on a bursty queue
/// series: returns (peak leaves planned, total leaf-plan churn).
std::pair<std::uint32_t, std::uint32_t> plan_with_alpha(double alpha) {
  // A spiky arrival pattern: calm base load with short bursts.
  const std::vector<double> raw_q = {4,  4,  40, 4,  4,  36, 4,  4, 4, 44,
                                     4,  4,  4,  32, 4,  4,  4,  4, 40, 4};
  ctrl::Ewma ewma(alpha);
  ctrl::HierarchyPlanner planner(sim::calib::kUpdatesPerLeaf);
  std::uint32_t peak = 0;
  std::uint32_t churn = 0;
  std::uint32_t prev = 0;
  for (const double q : raw_q) {
    const double smoothed = ewma.observe(q);
    const auto plan = planner.plan({smoothed}, 0);
    const std::uint32_t leaves = plan.per_node.empty()
                                     ? 0
                                     : plan.per_node.front().leaves;
    peak = std::max(peak, leaves);
    churn += leaves > prev ? leaves - prev : prev - leaves;
    prev = leaves;
  }
  return {peak, churn};
}

}  // namespace

int main() {
  const lifl::bench::BenchMeta meta;
  std::printf("Ablation — hierarchy-planning parameters (§5.2)\n");

  const std::vector<std::uint32_t> fanins{1, 2, 4, 8, 16};
  std::vector<std::pair<double, std::uint32_t>> fanin_rows;
  sys::Table fanin({"I (updates/leaf)", "ACT(s)", "instances used"});
  for (const std::uint32_t i : fanins) {
    const auto [act, instances] = run_with_fanin(i);
    fanin_rows.emplace_back(act, instances);
    fanin.row({std::to_string(i), sys::fmt(act, 1),
               std::to_string(instances)});
  }
  fanin.print(
      "Leaf fan-in sweep, 60 ResNet-152 updates on 5 nodes "
      "(paper default I=2: near-minimal ACT at half the instances of I=1)");

  const std::vector<double> alphas{0.0, 0.3, 0.5, 0.7, 0.9};
  std::vector<std::pair<std::uint32_t, std::uint32_t>> alpha_rows;
  sys::Table alpha({"alpha", "peak leaves planned", "plan churn (leaves)"});
  for (const double a : alphas) {
    const auto [peak, churn] = plan_with_alpha(a);
    alpha_rows.emplace_back(peak, churn);
    alpha.row({sys::fmt(a, 1), std::to_string(peak), std::to_string(churn)});
  }
  alpha.print(
      "EWMA coefficient sweep on a bursty queue series "
      "(paper alpha=0.7: spikes damped, churn low, capacity tracks load)");

  FILE* out = std::fopen("BENCH_abl_hierarchy_params.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"abl_hierarchy_params\",\n"
                 "  \"fanin_sweep\": [\n");
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      std::fprintf(out,
                   "    {\"updates_per_leaf\": %u, \"act_secs\": %.4f, "
                   "\"instances\": %u}%s\n",
                   fanins[i], fanin_rows[i].first, fanin_rows[i].second,
                   i + 1 < fanins.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"alpha_sweep\": [\n");
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      std::fprintf(out,
                   "    {\"alpha\": %.1f, \"peak_leaves\": %u, "
                   "\"plan_churn\": %u}%s\n",
                   alphas[i], alpha_rows[i].first, alpha_rows[i].second,
                   i + 1 < alphas.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_abl_hierarchy_params.json\n");
  }
  return 0;
}
