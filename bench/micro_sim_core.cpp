// Event-core throughput: the seed's priority_queue + unordered_map event
// loop vs the current slab/calendar-queue core, on the operation mixes a
// million-client campaign produces:
//
//   campaign — the headline mix (gated at >= 3x): a standing backlog of 1M
//              armed client timers (round deadlines, mostly cancelled when
//              the client returns) behind foreground burst traffic of
//              near-term hops and same-instant pool deliveries. The legacy
//              core drags every foreground push/pop through the
//              million-deep heap; the calendar core parks the backlog in
//              O(1) buckets and serves the foreground from a cache-resident
//              window heap plus the zero-delay ring.
//   churn    — 1M events at uniform random times, 25% cancelled before
//              firing: the adversarial all-pending-at-once shape.
//   ring     — a pure zero-delay storm (the ingest fast path: every
//              UpdatePool delivery is a same-instant wake-up).
//
// Throughput counts core operations (schedule + cancel + dispatch) over the
// full mix, identical for both cores. Emits BENCH_sim_core.json; CI uploads
// it as an artifact and fails the run if the campaign speedup drops below
// 3x.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_sim_core

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace {

using lifl::sim::EventId;
using lifl::sim::SimTime;

/// The seed event core, kept verbatim as the benchmark baseline: one heap
/// entry plus one hash-map insert/find/erase per event, and no zero-delay
/// fast path.
class LegacySimulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  EventId schedule_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*daemon=*/false);
  }
  EventId schedule_after(SimTime dt, Callback cb) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::move(cb));
  }

  bool cancel(EventId id) {
    auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return false;
    if (!it->second.daemon) --regular_pending_;
    callbacks_.erase(it);  // lazy removal from the heap
    return true;
  }

  std::size_t run() {
    std::size_t n = 0;
    while (regular_pending_ > 0 && dispatch_next(0, /*bounded=*/false)) ++n;
    return n;
  }

  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Entry {
    SimTime t;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };
  struct Pending {
    Callback cb;
    bool daemon = false;
  };

  EventId schedule_impl(SimTime t, Callback cb, bool daemon) {
    if (t < now_) t = now_;
    const EventId id = next_id_++;
    heap_.push(Entry{t, id});
    callbacks_.emplace(id, Pending{std::move(cb), daemon});
    if (!daemon) ++regular_pending_;
    return id;
  }

  bool dispatch_next(SimTime limit, bool bounded) {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      auto it = callbacks_.find(e.id);
      if (it == callbacks_.end()) {
        heap_.pop();  // cancelled
        continue;
      }
      if (bounded && e.t > limit) return false;
      heap_.pop();
      Callback cb = std::move(it->second.cb);
      if (!it->second.daemon) --regular_pending_;
      callbacks_.erase(it);
      now_ = e.t;
      ++dispatched_;
      cb();
      return true;
    }
    return false;
  }

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t regular_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Pending> callbacks_;
};

struct Run {
  std::uint64_t ops = 0;  ///< schedules + cancels + dispatches
  double secs = 0.0;
  double ops_per_sec() const { return ops / secs; }
};

/// Shared state of one campaign-mix run; hop callbacks capture a single
/// pointer to it, so the callable fits every core's inline buffer and the
/// measurement stays on the event queues rather than on allocator traffic.
template <typename Sim>
struct CampaignCtx {
  Sim sim;
  lifl::sim::Rng rng{42};
  std::vector<EventId> deadlines;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t steps = 0;
  std::uint64_t retired = 0;
  std::size_t foreground = 0;
};

/// One upload hop: a few same-instant deliveries, one deadline retired and
/// re-armed, then the next hop.
template <typename Sim>
struct CampaignHop {
  CampaignCtx<Sim>* c;
  void operator()() const {
    if (++c->steps >= c->foreground) return;
    // One upload fans out into same-instant events: the pool waiter
    // wake-up, the depth-watcher batch, the aggregator pump, the metrics
    // flush (mega_campaign measures ~7 events per upload, mostly
    // same-instant).
    for (int d = 0; d < 4; ++d) c->sim.schedule_after(0.0, [] {});
    c->scheduled += 5;
    // The client returned: retire this round's deadline and arm the next
    // one, so the million-timer backlog stands for the whole campaign.
    if (c->sim.cancel(c->deadlines[c->retired])) {
      ++c->cancelled;
      c->deadlines[c->retired] =
          c->sim.schedule_after(c->rng.uniform(60.0, 3600.0), [] {});
      ++c->scheduled;
    }
    c->retired = (c->retired + 1) % c->deadlines.size();
    c->sim.schedule_after(c->rng.uniform(0.001, 0.1), CampaignHop{c});
  }
};

/// The million-client regime: `clients` armed deadline timers as backlog,
/// `foreground` chained hops each doing same-instant deliveries and
/// retiring (cancelling) one client's deadline.
template <typename Sim>
Run campaign_mix(std::size_t clients, std::size_t foreground) {
  auto ctx = std::make_unique<CampaignCtx<Sim>>();
  ctx->foreground = foreground;

  const auto t0 = std::chrono::steady_clock::now();
  ctx->deadlines.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    ctx->deadlines.push_back(
        ctx->sim.schedule_at(ctx->rng.uniform(60.0, 3600.0), [] {}));
    ++ctx->scheduled;
  }
  for (int i = 0; i < 8; ++i) {
    ++ctx->scheduled;
    const double jitter = ctx->rng.uniform(0.0, 0.01);
    ctx->sim.schedule_after(jitter, CampaignHop<Sim>{ctx.get()});
  }
  ctx->sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.ops = ctx->scheduled + ctx->cancelled + ctx->sim.dispatched();
  r.secs = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

/// All-pending-at-once churn: n events at uniform random times, 25%
/// cancelled before the run.
template <typename Sim>
Run churn_mix(std::size_t n) {
  Sim sim;
  lifl::sim::Rng rng(7);
  std::vector<EventId> cancellable;
  cancellable.reserve(n / 4);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    const EventId id = sim.schedule_at(rng.uniform(0.0, 1000.0), [] {});
    if (rng.uniform() < 0.25) cancellable.push_back(id);
  }
  for (const EventId id : cancellable) sim.cancel(id);
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.ops = n + cancellable.size() + sim.dispatched();
  r.secs = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

/// Zero-delay storm: batches of same-instant wake-ups scheduled from within
/// events — the shape of the ingest path.
template <typename Sim>
Run ring_mix(std::size_t n) {
  Sim sim;
  const std::size_t kBatch = 64;
  std::uint64_t fired = 0;
  std::function<void()> wave = [&] {
    for (std::size_t i = 0; i < kBatch; ++i) {
      sim.schedule_after(0.0, [&fired] { ++fired; });
    }
    if (fired < n) sim.schedule_after(0.0, wave);
  };

  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule_after(0.0, wave);
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  Run r;
  r.ops = 2 * sim.dispatched();  // every dispatch was also a schedule
  r.secs = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

/// Best of `reps` runs (single-core CI runners are noisy).
template <typename Fn>
Run best_of(int reps, Fn fn) {
  Run best = fn();
  for (int i = 1; i < reps; ++i) {
    const Run r = fn();
    if (r.ops_per_sec() > best.ops_per_sec()) best = r;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1'000'000;
  if (argc > 1) {
    char* end = nullptr;
    n = std::strtoul(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || n == 0) {
      std::fprintf(stderr, "usage: %s [event_count > 0]\n", argv[0]);
      return 2;
    }
  }

  const lifl::bench::BenchMeta meta;
  std::printf("sim-core microbench, %zu-event mixes\n\n", n);

  // One armed deadline per client, one foreground hop per client.
  const Run c_old =
      best_of(3, [&] { return campaign_mix<LegacySimulator>(n, n); });
  const Run c_new =
      best_of(3, [&] { return campaign_mix<lifl::sim::Simulator>(n, n); });
  const Run h_old = best_of(2, [&] { return churn_mix<LegacySimulator>(n); });
  const Run h_new =
      best_of(2, [&] { return churn_mix<lifl::sim::Simulator>(n); });
  const Run r_old = best_of(2, [&] { return ring_mix<LegacySimulator>(n); });
  const Run r_new =
      best_of(2, [&] { return ring_mix<lifl::sim::Simulator>(n); });

  const double c_speedup = c_new.ops_per_sec() / c_old.ops_per_sec();
  const double h_speedup = h_new.ops_per_sec() / h_old.ops_per_sec();
  const double r_speedup = r_new.ops_per_sec() / r_old.ops_per_sec();

  std::printf("campaign: legacy %9.0f op/s | new %9.0f op/s | %.2fx\n",
              c_old.ops_per_sec(), c_new.ops_per_sec(), c_speedup);
  std::printf("churn:    legacy %9.0f op/s | new %9.0f op/s | %.2fx\n",
              h_old.ops_per_sec(), h_new.ops_per_sec(), h_speedup);
  std::printf("ring:     legacy %9.0f op/s | new %9.0f op/s | %.2fx\n",
              r_old.ops_per_sec(), r_new.ops_per_sec(), r_speedup);

  FILE* out = std::fopen("BENCH_sim_core.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(
        out,
        "  \"bench\": \"sim_core\",\n"
        "  \"events\": %zu,\n"
        "  \"campaign\": {\"legacy_ops_per_sec\": %.0f, "
        "\"new_ops_per_sec\": %.0f, \"speedup\": %.3f},\n"
        "  \"churn\": {\"legacy_ops_per_sec\": %.0f, "
        "\"new_ops_per_sec\": %.0f, \"speedup\": %.3f},\n"
        "  \"ring\": {\"legacy_ops_per_sec\": %.0f, "
        "\"new_ops_per_sec\": %.0f, \"speedup\": %.3f}\n"
        "}\n",
        n, c_old.ops_per_sec(), c_new.ops_per_sec(), c_speedup,
        h_old.ops_per_sec(), h_new.ops_per_sec(), h_speedup,
        r_old.ops_per_sec(), r_new.ops_per_sec(), r_speedup);
    std::fclose(out);
    std::printf("\nwrote BENCH_sim_core.json\n");
  }

  if (c_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: campaign-mix speedup %.2fx below the 3x floor the "
                 "core refactor is held to\n",
                 c_speedup);
    return 1;
  }
  return 0;
}
