// Reproduces Fig. 8: the contribution of each LIFL orchestration mechanism,
// applied cumulatively to a baseline serverless control plane (SL-H) that
// already runs on LIFL's shared-memory data plane:
//   (1) locality-aware placement        (§5.1, BestFit bin-packing)
//   (2) hierarchy planning              (§5.2, proactive two-level trees)
//   (3) opportunistic aggregator reuse  (§5.3, warm role promotion)
//   (4) eager aggregation               (§5.4)
// Metrics, for 20/60/100 concurrently arriving ResNet-152 updates on a
// 5-node cluster with MC_i = 20:
//   (a) aggregation completion time, (b) cumulative CPU time,
//   (c) aggregators created,          (d) nodes used.

#include <cstdio>
#include <memory>

#include "src/fl/model_spec.hpp"
#include "src/sim/calibration.hpp"
#include "src/systems/aggregation_service.hpp"
#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

struct Outcome {
  double act = 0;
  double cpu_secs = 0;
  std::uint32_t created = 0;
  std::size_t nodes_used = 0;
};

Outcome run_batch(sys::SystemConfig cfg, std::uint32_t updates) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 5);
  dp::DataPlane plane(cluster, cfg.plane, sim::Rng(42));
  cfg.node_max_capacity = 20.0;  // MC_i of the testbed (§6.1)
  sys::AggregationService service(cluster, plane, cfg);

  if (cfg.reuse) {
    // §6.1: "the importance of having warm aggregators based on the
    // pre-planned hierarchy" — reuse experiments start with a warm pool.
    service.prewarm(std::vector<std::uint32_t>(5, 6));
  }

  const auto assignment = service.place_updates(updates);
  std::vector<std::uint32_t> counts(cluster.size(), 0);
  for (auto n : assignment) counts[n]++;

  // §6.1: "we assume the estimated Q_{i,t} is equal to the actual queue
  // length on each active node" — updates are already queued in place when
  // aggregation starts, so ACT measures the aggregation service itself.
  for (std::uint32_t i = 0; i < updates; ++i) {
    fl::ModelUpdate u;
    u.model_version = 1;
    u.producer = 5000 + i;
    u.sample_count = 600;
    u.logical_bytes = fl::models::resnet152().bytes();
    plane.seed_update(assignment[i], std::move(u));
  }

  Outcome out;
  bool done = false;
  service.arm(counts, 1, fl::models::resnet152().bytes(),
              [&](const sys::AggregationService::BatchResult& b) {
                out.act = b.act();
                out.created = b.created;
                out.nodes_used = b.nodes_used;
                done = true;
              });
  sim.run();
  if (!done) {
    std::fprintf(stderr, "batch for %s/%u did not complete\n",
                 cfg.name.c_str(), updates);
    std::exit(1);
  }
  plane.settle_idle_costs();
  out.cpu_secs = cluster.total_cpu().total_seconds(sim::calib::kCpuHz);
  return out;
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, sys::SystemConfig>> systems = {
      {"SL-H", sys::make_lifl_ablation(false, false, false, false)},
      {"+(1)", sys::make_lifl_ablation(true, false, false, false)},
      {"+(1)(2)", sys::make_lifl_ablation(true, true, false, false)},
      {"+(1)(2)(3)", sys::make_lifl_ablation(true, true, true, false)},
      {"+(1)(2)(3)(4)", sys::make_lifl_ablation(true, true, true, true)},
  };
  const std::vector<std::uint32_t> loads = {20, 60, 100};

  std::printf("Fig. 8 — improvement with LIFL's orchestration "
              "(5 nodes, MC=20, ResNet-152 updates)\n");
  std::printf("(1)=locality-aware placement (2)=hierarchy planning "
              "(3)=aggregator reuse (4)=eager aggregation\n");

  sys::Table a({"system", "20 upd ACT(s)", "60 upd ACT(s)", "100 upd ACT(s)"});
  sys::Table b({"system", "20 upd CPU(s)", "60 upd CPU(s)", "100 upd CPU(s)"});
  sys::Table c({"system", "20 upd #agg", "60 upd #agg", "100 upd #agg"});
  sys::Table d({"system", "20 upd #nodes", "60 upd #nodes", "100 upd #nodes"});

  for (const auto& [label, cfg] : systems) {
    std::vector<Outcome> outs;
    for (const auto n : loads) outs.push_back(run_batch(cfg, n));
    a.row({label, sys::fmt(outs[0].act, 1), sys::fmt(outs[1].act, 1),
           sys::fmt(outs[2].act, 1)});
    b.row({label, sys::fmt(outs[0].cpu_secs, 1), sys::fmt(outs[1].cpu_secs, 1),
           sys::fmt(outs[2].cpu_secs, 1)});
    c.row({label, std::to_string(outs[0].created),
           std::to_string(outs[1].created), std::to_string(outs[2].created)});
    d.row({label, std::to_string(outs[0].nodes_used),
           std::to_string(outs[1].nodes_used),
           std::to_string(outs[2].nodes_used)});
  }

  a.print("Fig. 8(a) — aggregation completion time "
          "(paper: +(1) cuts SL-H by ~2.1x @20, ~1.13x @60; "
          "+(2)(3) ~1.22x more; +(4) ~1.2x more; benefits fade @100)");
  b.print("Fig. 8(b) — cumulative CPU time (paper: placement saves most; "
          "reuse avoids startup CPU)");
  c.print("Fig. 8(c) — aggregators created "
          "(paper: reuse creates far fewer)");
  d.print("Fig. 8(d) — nodes used "
          "(paper: locality packs 20/60/100 updates into 1/3/5 nodes; "
          "SL-H always uses 5)");
  return 0;
}
