// Reproduces the Fig. 1 / Fig. 11 comparison: eager vs lazy aggregation
// timing for synchronous FL (and the asynchronous-FL extension), at the
// aggregator-runtime level. Four updates arrive spread over time; eager
// folds each on arrival, lazy queues them until the goal is met (§2.1,
// §5.4; paper: eager cuts ~20% of ACT).

#include <cstdio>
#include <vector>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/calibration.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

double run_sync(fl::AggTiming timing, int updates, double spacing_secs,
                std::size_t bytes) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, dp::lifl_plane(), sim::Rng(42));

  fl::AggregatorRuntime::Config c;
  c.id = 1;
  c.node = 0;
  c.role = fl::AggRole::kTop;
  c.timing = timing;
  c.goal = updates;
  c.result_bytes = bytes;
  c.pull_from_pool = true;
  double done_at = -1;
  c.on_result = [&](fl::ModelUpdate) { done_at = sim.now(); };
  fl::AggregatorRuntime rt(plane, c);
  rt.start();

  for (int i = 0; i < updates; ++i) {
    sim.schedule_at(i * spacing_secs, [&plane, bytes] {
      fl::ModelUpdate u;
      u.model_version = 1;
      u.sample_count = 600;
      u.logical_bytes = bytes;
      plane.seed_update(0, std::move(u));
    });
  }
  sim.run();
  return done_at;
}

}  // namespace

int main() {
  const std::size_t bytes = fl::models::resnet152().bytes();

  std::printf("Fig. 1 — synchronous FL, eager vs lazy aggregation timing\n");
  sys::Table t({"arrival spacing(s)", "lazy ACT(s)", "eager ACT(s)",
                "eager saves"});
  for (const double spacing : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double lazy = run_sync(fl::AggTiming::kLazy, 4, spacing, bytes);
    const double eager = run_sync(fl::AggTiming::kEager, 4, spacing, bytes);
    t.row({sys::fmt(spacing, 1), sys::fmt(lazy), sys::fmt(eager),
           sys::fmt(100.0 * (lazy - eager) / lazy, 0) + "%"});
  }
  t.print("4 ResNet-152 updates, goal=4 "
          "(paper: eager ~20% ACT reduction when arrivals are spread)");

  // ---- Fig. 11: the asynchronous-FL extension (paper future work) — a
  // recurring AggregatorRuntime emitting a version every `goal` updates.
  std::printf("\nFig. 11 — asynchronous FL (FedBuff-style), eager vs lazy\n");
  sys::Table at({"timing", "versions produced in 60s", "mean gap(s)"});
  for (const auto timing : {fl::AggTiming::kEager, fl::AggTiming::kLazy}) {
    sim::Simulator sim;
    sim::Cluster cluster(sim, 1);
    dp::DataPlane plane(cluster, dp::lifl_plane(), sim::Rng(7));
    std::vector<double> versions;
    fl::AggregatorRuntime::Config ac;
    ac.id = 1;
    ac.node = 0;
    ac.role = fl::AggRole::kTop;
    ac.timing = timing;
    ac.goal = 2;  // Fig. 11: goal 2
    ac.recurring = true;
    ac.pull_from_pool = true;
    ac.result_bytes = bytes;
    ac.on_result = [&](fl::ModelUpdate) { versions.push_back(sim.now()); };
    fl::AggregatorRuntime rt(plane, ac);
    rt.start();
    // A steady stream of client updates every ~1.5 s.
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(1.5 * i, [&plane, bytes, i] {
        fl::ModelUpdate u;
        u.model_version = 1;  // async: any version folds (staleness-aware)
        u.producer = 100 + i;
        u.sample_count = 600;
        u.logical_bytes = bytes;
        plane.seed_update(0, std::move(u));
      });
    }
    sim.run_until(60.0);
    double gap = 0;
    for (std::size_t i = 1; i < versions.size(); ++i) {
      gap += versions[i] - versions[i - 1];
    }
    at.row({timing == fl::AggTiming::kEager ? "eager" : "lazy",
            std::to_string(versions.size()),
            versions.size() > 1
                ? sys::fmt(gap / (versions.size() - 1))
                : "-"});
    rt.stop();
  }
  at.print("goal=2, concurrency=4 "
           "(eager produces versions sooner and more steadily)");
  return 0;
}
