// Trace-overhead microbench: wall-clock cost of full observability
// (sim-time trace rings + typed metric registry) on the million-client
// planned-mode campaign, traced vs untraced.
//
// The workload is the mega-campaign mix of micro_shard_scaling — 8 node
// groups over a 1M-client population driving the streaming-hierarchy
// orchestrator — on the single-threaded core (1 shard), where a wall
// comparison is not confounded by barrier scheduling noise. Observability
// is strictly passive (tests/obs_campaign_test.cpp proves results bitwise
// identical), so the only legitimate cost is the emit path itself: a null
// check plus a 32-byte ring store per event, and interned-id registry
// bumps. This bench holds that cost to a ceiling.
//
// Emits BENCH_trace_overhead.json plus trace_sample.json (the traced
// run's Perfetto-loadable trace; CI uploads both as artifacts). The bench
// fails if the best-of-N traced wall exceeds the best-of-N untraced wall
// by more than 2%, or if the trace does not reconcile with the campaign
// result (round spans vs rounds, registry spawns vs spawned_total).
// LIFL_TRACE_BENCH_GATE=0 disables the overhead gate (the reconciliation
// checks always run).
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_trace_overhead

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.hpp"
#include "src/obs/obs.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

sys::ShardedCampaignConfig bench_campaign(std::size_t scale, bool traced) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 1;
  cfg.groups = 8;
  cfg.rounds = 2;
  cfg.leaves_per_group = 62;
  cfg.updates_per_leaf = static_cast<std::uint32_t>(scale);
  cfg.model_bytes = 100'000;
  cfg.population = 1'000'000;
  cfg.peak_per_sec = 50'000.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.0;
  cfg.seed = 4242;
  cfg.gateway_cores = 4;
  cfg.gateway_queues = 0;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.obs.trace = traced;
  cfg.obs.metrics = traced;
  return cfg;
}

/// Best-of-`reps` wall seconds for one variant (alternation happens in
/// main so thermal/cache drift hits both variants evenly).
struct Variant {
  double best_wall = 1e300;
  sys::ShardedCampaignResult last;
};

int fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 300;  // updates per leaf => ~298k uploads total
  if (argc > 1) {
    char* end = nullptr;
    scale = std::strtoul(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || scale == 0) {
      std::fprintf(stderr, "usage: %s [updates_per_leaf > 0]\n", argv[0]);
      return 2;
    }
  }

  const bench::BenchMeta meta;
  const int reps = 7;
  std::printf(
      "trace-overhead microbench: planned-mode mega-campaign mix, "
      "1M-client population, %zu updates/leaf, best of %d\n\n",
      scale, reps);

  // Interleave traced/untraced reps so machine drift hits both variants
  // alike, then compare best-of walls: scheduler/frequency noise on a
  // shared runner only ever adds time, so each variant's minimum over the
  // reps is the estimate of its noise-free floor.
  Variant off;
  Variant on;
  double off_worst = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto r_off = sys::run_sharded_campaign(bench_campaign(scale, false));
    if (r_off.wall_secs < off.best_wall) off.best_wall = r_off.wall_secs;
    if (r_off.wall_secs > off_worst) off_worst = r_off.wall_secs;
    auto r_on = sys::run_sharded_campaign(bench_campaign(scale, true));
    if (r_on.wall_secs < on.best_wall) on.best_wall = r_on.wall_secs;
    std::printf("  rep %d: untraced %.4fs  traced %.4fs\n", i + 1,
                r_off.wall_secs, r_on.wall_secs);
    if (i + 1 == reps) {
      off.last = std::move(r_off);
      on.last = std::move(r_on);
    }
  }

  // ---- reconciliation: the trace must agree with the result -----------
  if (!on.last.obs) return fail("traced run surfaced no obs state");
  const obs::CampaignObs& co = *on.last.obs;
  if (co.trace().dropped_events() != 0) {
    return fail("default ring dropped events on the bench workload");
  }
  std::uint64_t round_spans = 0;
  for (const auto& e : co.trace().merged()) {
    if (e.kind == obs::Ev::kRound && e.dur >= 0.0) ++round_spans;
  }
  if (round_spans != on.last.round_started_at.size()) {
    return fail("trace round spans != campaign rounds");
  }
  // Group-path churn vs campaign totals. The driver-side top runtime is
  // not on the group emit path, so the registry may undercount by at most
  // one spawn/re-arm per round.
  const obs::Registry& reg = co.registry();
  const std::uint64_t rounds = on.last.round_started_at.size();
  const std::uint64_t spawns = reg.counter_total(co.ids().spawns);
  const std::uint64_t rearms = reg.counter_total(co.ids().rearms);
  if (spawns > on.last.spawned_total ||
      on.last.spawned_total - spawns > rounds ||
      rearms > on.last.reused_total ||
      on.last.reused_total - rearms > rounds ||
      reg.counter_total(co.ids().replans) != on.last.replans) {
    return fail("registry churn counters != campaign result totals");
  }
  // Passivity spot check (the full matrix lives in obs_campaign_test).
  for (std::size_t r = 0; r < on.last.round_completed_at.size(); ++r) {
    if (on.last.round_completed_at[r] != off.last.round_completed_at[r] ||
        on.last.round_samples[r] != off.last.round_samples[r]) {
      return fail("traced round telemetry diverged from untraced");
    }
  }
  std::printf(
      "reconciled: %llu trace events, %llu round spans, churn counters "
      "match result; traced rounds bitwise equal untraced\n",
      static_cast<unsigned long long>(co.trace().recorded_events()),
      static_cast<unsigned long long>(round_spans));

  sys::write_campaign_trace(on.last, "trace_sample.json");
  std::printf("wrote trace_sample.json (open in https://ui.perfetto.dev)\n");

  const double overhead_pct = (on.best_wall / off.best_wall - 1.0) * 100.0;
  sys::Table t({"variant", "best_wall(s)", "events", "trace_events"});
  t.row({"untraced", sys::fmt(off.best_wall, 4),
         std::to_string(off.last.events), "0"});
  t.row({"traced", sys::fmt(on.best_wall, 4),
         std::to_string(on.last.events),
         std::to_string(co.trace().recorded_events())});
  t.print("Full observability (trace + metrics) vs off");
  std::printf("overhead (best of %d each): %+.2f%%\n", reps, overhead_pct);

  FILE* out = std::fopen("BENCH_trace_overhead.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(
        out,
        "  \"bench\": \"trace_overhead\",\n"
        "  \"updates_per_leaf\": %zu,\n"
        "  \"reps\": %d,\n"
        "  \"untraced_wall_secs\": %.6f,\n"
        "  \"traced_wall_secs\": %.6f,\n"
        "  \"overhead_pct\": %.3f,\n"
        "  \"sim_events\": %llu,\n"
        "  \"trace_events\": %llu,\n"
        "  \"trace_dropped\": %llu\n"
        "}\n",
        scale, reps, off.best_wall, on.best_wall, overhead_pct,
        static_cast<unsigned long long>(on.last.events),
        static_cast<unsigned long long>(co.trace().recorded_events()),
        static_cast<unsigned long long>(co.trace().dropped_events()));
    std::fclose(out);
    std::printf("wrote BENCH_trace_overhead.json\n");
  }

  // The gate compares wall clocks, so it is only meaningful when the
  // machine's own run-to-run spread is below the 2% threshold — the
  // spread of the untraced reps estimates that noise floor.
  const double noise_pct = (off_worst / off.best_wall - 1.0) * 100.0;
  bool gate = noise_pct <= 2.0;
  if (const char* env = std::getenv("LIFL_TRACE_BENCH_GATE")) {
    if (std::strcmp(env, "0") == 0) {
      std::printf("gate SKIPPED (LIFL_TRACE_BENCH_GATE=0)\n");
      return 0;
    }
    gate = true;
  }
  if (!gate) {
    std::printf(
        "gate SKIPPED: untraced run-to-run spread %.2f%% swamps the 2%% "
        "threshold (set LIFL_TRACE_BENCH_GATE=1 to force)\n",
        noise_pct);
    return 0;
  }
  if (overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the 2%% "
                 "ceiling the passive emit path is held to\n",
                 overhead_pct);
    return 1;
  }
  std::printf("gate OK: overhead %.2f%% <= 2%%\n", overhead_pct);
  return 0;
}
