// Hierarchy-replan microbench: round-completion time of the streaming
// hierarchy orchestrator (planned mode: EWMA-sized trees, mid-round
// re-planning, warm cross-round reuse) vs the fixed two-level
// destroy-and-respawn baseline, under a bursty arrival ramp dense enough
// that aggregation — not the arrival tail — bounds the round.
//
// The fixed baseline pays the LIFL function cold start for its whole tree
// every round; the orchestrator pays it once, in round 1, and re-arms the
// warm fleet thereafter (zero steady-state spawns). Both runs execute the
// identical arrival streams, so per-round simulated durations compare
// exactly (the simulator is deterministic).
//
// Emits BENCH_hierarchy_replan.json. CI runs it in Release and fails the
// job if the planned steady-state mean round time exceeds the fixed one at
// 4 groups (LIFL_REPLAN_BENCH_GATE=0 disables the gate).
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_hierarchy_replan

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

sys::ShardedCampaignConfig bench_campaign(sys::HierarchyMode mode,
                                          std::size_t groups) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 1;  // sim time is shard-count invariant; keep wall cost low
  cfg.groups = groups;
  cfg.rounds = 4;
  cfg.leaves_per_group = 24;
  cfg.updates_per_leaf = 100;
  cfg.model_bytes = 100'000;
  cfg.population = 200'000;
  // Bursty ramp: the whole wave lands faster than a cold start completes,
  // so round time is bounded by aggregation capacity and instance
  // readiness — the regime the planner exists for. The fixed baseline's
  // freshly spawned tree sits in its cold start while the burst queues;
  // the orchestrator's warm fleet folds it as it arrives.
  cfg.peak_per_sec = 200'000.0;
  cfg.ramp_secs = 0.2;
  cfg.diurnal_amplitude = 0.0;
  cfg.seed = 20'26;
  cfg.gateway_cores = 4;
  cfg.gateway_queues = 0;
  cfg.hierarchy = mode;
  cfg.replan_interval_secs = 0.25;
  cfg.middle_fanin = 8;
  return cfg;
}

struct ModeResult {
  std::vector<double> round_secs;
  std::uint64_t spawned = 0;
  std::uint64_t reused = 0;
  std::uint64_t replans = 0;
  std::uint64_t drains = 0;
  double wall_secs = 0.0;

  /// Mean over steady-state rounds (round 1 builds the fleet in both
  /// modes; the orchestrator's advantage is everything after it).
  double steady_mean() const {
    double total = 0.0;
    for (std::size_t i = 1; i < round_secs.size(); ++i) {
      total += round_secs[i];
    }
    return round_secs.size() > 1 ? total / (round_secs.size() - 1) : 0.0;
  }
};

ModeResult run_mode(sys::HierarchyMode mode, std::size_t groups) {
  const auto r = sys::run_sharded_campaign(bench_campaign(mode, groups));
  ModeResult out;
  for (std::size_t i = 0; i < r.round_completed_at.size(); ++i) {
    out.round_secs.push_back(r.round_completed_at[i] - r.round_started_at[i]);
  }
  out.spawned = r.spawned_total;
  out.reused = r.reused_total;
  out.replans = r.replans;
  out.drains = r.leaf_drains;
  out.wall_secs = r.wall_secs;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t groups = 4;  // the gate's configuration
  if (argc > 1) {
    char* end = nullptr;
    groups = std::strtoul(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || groups == 0) {
      std::fprintf(stderr, "usage: %s [groups > 0]\n", argv[0]);
      return 2;
    }
  }

  const lifl::bench::BenchMeta meta;
  std::printf(
      "hierarchy-replan microbench: %zu groups, bursty ramp, fixed "
      "(respawn-per-round) vs planned (streaming orchestrator)\n\n",
      groups);

  const ModeResult fixed = run_mode(sys::HierarchyMode::kFixed, groups);
  const ModeResult planned = run_mode(sys::HierarchyMode::kPlanned, groups);

  sys::Table t({"round", "fixed(sim s)", "planned(sim s)", "delta"});
  for (std::size_t i = 0; i < fixed.round_secs.size(); ++i) {
    t.row({std::to_string(i + 1), sys::fmt(fixed.round_secs[i], 3),
           sys::fmt(planned.round_secs[i], 3),
           sys::fmt(fixed.round_secs[i] - planned.round_secs[i], 3)});
  }
  t.print("Round-completion time under the bursty ramp");
  std::printf(
      "steady-state mean: fixed %.3f s, planned %.3f s "
      "(planned: %llu spawned / %llu reused, %llu re-plans, %llu drains)\n",
      fixed.steady_mean(), planned.steady_mean(),
      static_cast<unsigned long long>(planned.spawned),
      static_cast<unsigned long long>(planned.reused),
      static_cast<unsigned long long>(planned.replans),
      static_cast<unsigned long long>(planned.drains));

  FILE* out = std::fopen("BENCH_hierarchy_replan.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"hierarchy_replan\",\n"
                 "  \"groups\": %zu,\n"
                 "  \"fixed_steady_mean_secs\": %.6f,\n"
                 "  \"planned_steady_mean_secs\": %.6f,\n"
                 "  \"planned_spawned\": %llu,\n"
                 "  \"planned_reused\": %llu,\n"
                 "  \"planned_replans\": %llu,\n"
                 "  \"planned_drains\": %llu,\n"
                 "  \"fixed_spawned\": %llu,\n"
                 "  \"rounds\": [\n",
                 groups, fixed.steady_mean(), planned.steady_mean(),
                 static_cast<unsigned long long>(planned.spawned),
                 static_cast<unsigned long long>(planned.reused),
                 static_cast<unsigned long long>(planned.replans),
                 static_cast<unsigned long long>(planned.drains),
                 static_cast<unsigned long long>(fixed.spawned));
    for (std::size_t i = 0; i < fixed.round_secs.size(); ++i) {
      std::fprintf(out,
                   "    {\"round\": %zu, \"fixed_secs\": %.6f, "
                   "\"planned_secs\": %.6f}%s\n",
                   i + 1, fixed.round_secs[i], planned.round_secs[i],
                   i + 1 < fixed.round_secs.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_hierarchy_replan.json\n");
  }

  // ---- gate: at 4+ groups, the orchestrator must not lose to the fixed
  // baseline on steady-state round-completion time. The comparison is
  // between two deterministic simulations, so no noise margin is needed.
  bool gate = groups >= 4;
  if (const char* env = std::getenv("LIFL_REPLAN_BENCH_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf("gate SKIPPED (groups < 4 or LIFL_REPLAN_BENCH_GATE=0)\n");
    return 0;
  }
  if (planned.steady_mean() > fixed.steady_mean()) {
    std::fprintf(stderr,
                 "FAIL: planned steady-state mean %.3f s exceeds fixed "
                 "%.3f s — the orchestrator must beat per-round churn\n",
                 planned.steady_mean(), fixed.steady_mean());
    return 1;
  }
  std::printf("gate OK: planned %.3f s <= fixed %.3f s steady-state\n",
              planned.steady_mean(), fixed.steady_mean());
  return 0;
}
