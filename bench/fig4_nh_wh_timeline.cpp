// Reproduces Fig. 4: the impact of data-plane performance on hierarchical
// aggregation over *kernel networking*. Eight trainers train ResNet-152;
// the aggregation service runs either as a single aggregator (NH) or as a
// 1-top + 4-leaf hierarchy (WH) on one node. The paper's point: with a
// kernel-based data plane, WH barely beats NH (57 s vs 59.8 s per round)
// because leaf aggregators contend for kernel network processing.

#include <cstdio>

#include "bench/bench_util.hpp"

int main() {
  using namespace lifl;
  const std::size_t bytes = fl::models::resnet152().bytes();
  const double train_mean = 40.0, train_sd = 1.2;
  const double uplink = sim::calib::kServerUplinkBytesPerSec;
  const int rounds = 4, trainers = 8;

  std::printf("Fig. 4 — hierarchical aggregation on the kernel data plane\n");
  std::printf("(8 trainers, ResNet-152, one aggregation node; paper: "
              "NH ~59.8 s/round, WH ~57 s/round)\n");

  const auto nh = bench::run_trainer_rounds(
      dp::serverful_plane(), /*hierarchy=*/false, rounds, trainers, bytes,
      train_mean, train_sd, uplink, /*seed=*/11);
  bench::print_timeline("No hierarchy (NH), kernel data plane", nh);

  const auto wh = bench::run_trainer_rounds(
      dp::serverful_plane(), /*hierarchy=*/true, rounds, trainers, bytes,
      train_mean, train_sd, uplink, /*seed=*/11);
  bench::print_timeline("With hierarchy (WH), kernel data plane", wh);

  const double nh_mean = bench::mean_round_secs(nh);
  const double wh_mean = bench::mean_round_secs(wh);
  std::printf("\nmean round time: NH %.1f s | WH %.1f s   (paper: 59.8 | 57)\n",
              nh_mean, wh_mean);
  std::printf("shape check: hierarchy alone gains only %.0f%% on the kernel "
              "plane (paper: ~5%%)\n",
              100.0 * (nh_mean - wh_mean) / nh_mean);
  return 0;
}
