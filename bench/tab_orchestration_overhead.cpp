// Reproduces the §6.1 "Orchestration overhead of LIFL" numbers with *real
// measured wall time* of our C++ control-plane implementation (these are
// the only results in the paper that are direct code measurements rather
// than cluster behavior):
//   - locality-aware placement finishes in < 17 ms even with 10K clients
//     (the largest client count in Google's production FL stack);
//   - the EWMA estimator takes ~0.2 ms per estimate;
//   - aggregator reuse and eager aggregation add no control-plane work.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/control/ewma.hpp"
#include "src/control/hierarchy.hpp"
#include "src/control/placement.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/random.hpp"

namespace {

using namespace lifl;

std::vector<ctrl::NodeCapacity> make_nodes(std::size_t count,
                                           double capacity_per_node) {
  std::vector<ctrl::NodeCapacity> nodes(count);
  sim::Rng rng(7);
  for (std::size_t i = 0; i < count; ++i) {
    nodes[i].node = static_cast<sim::NodeId>(i);
    nodes[i].max_capacity = capacity_per_node;
    nodes[i].arrival_rate = rng.uniform() * 0.4;
    nodes[i].exec_time = 0.5 + rng.uniform();
  }
  return nodes;
}

/// §6.1: "The time for completing the locality-aware placement in LIFL is
/// less than 17 milliseconds, even with 10K clients." Cluster sized so the
/// population fits (MC = 20 per node, §6.1).
void BM_LocalityAwarePlacement(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const std::size_t node_count = (clients + 19) / 20;
  const ctrl::PlacementEngine engine(ctrl::PlacementPolicy::kBestFit);
  const auto nodes = make_nodes(node_count, 20.0);
  for (auto _ : state) {
    auto result = engine.place_units(clients, nodes);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("paper bound: < 17 ms at 10K clients");
}
BENCHMARK(BM_LocalityAwarePlacement)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WorstFitPlacement(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const ctrl::PlacementEngine engine(ctrl::PlacementPolicy::kWorstFit);
  const auto nodes = make_nodes((clients + 19) / 20, 20.0);
  for (auto _ : state) {
    auto result = engine.place_units(clients, nodes);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_WorstFitPlacement)->Arg(10000);

/// §6.1: "The EWMA estimator for hierarchy-planning takes 0.2 milliseconds
/// per estimate" — ours is a handful of flops; the paper bound holds with
/// orders of magnitude to spare.
void BM_EwmaEstimate(benchmark::State& state) {
  ctrl::Ewma ewma(sim::calib::kEwmaAlpha);
  double q = 17.0;
  for (auto _ : state) {
    q = ewma.observe(q * 1.01);
    benchmark::DoNotOptimize(q);
  }
  state.SetLabel("paper bound: ~0.2 ms per estimate");
}
BENCHMARK(BM_EwmaEstimate);

/// Hierarchy planning across a 500-node cluster (every 2-minute cycle).
void BM_HierarchyPlan(benchmark::State& state) {
  const auto node_count = static_cast<std::size_t>(state.range(0));
  ctrl::HierarchyPlanner planner(sim::calib::kUpdatesPerLeaf);
  std::vector<double> pending(node_count);
  sim::Rng rng(11);
  for (auto& p : pending) p = rng.uniform() * 20.0;
  for (auto _ : state) {
    auto plan = planner.plan(pending, 0);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_HierarchyPlan)->Arg(5)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();
