#pragma once

// Shared helpers for the figure-reproduction benches.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/systems/table.hpp"

namespace lifl::bench {

/// Peak resident set size of this process, in bytes (0 where unsupported).
inline std::size_t peak_rss_bytes() {
#if defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::size_t>(ru.ru_maxrss);  // macOS reports bytes
#elif defined(__unix__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // Linux: KiB
#else
  return 0;
#endif
}

/// Run-wide metadata every BENCH_*.json records, so the perf trajectory
/// (throughput *and* footprint) is comparable across PRs: construct at the
/// top of main(), call `write_json_fields` while emitting the JSON body.
class BenchMeta {
 public:
  BenchMeta() : start_(std::chrono::steady_clock::now()) {}

  /// Wall-clock seconds since construction.
  double wall_secs() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Emit the standard `"peak_rss_bytes"` / `"bench_wall_secs"` fields
  /// (with a trailing comma — call just after the opening '{' line).
  void write_json_fields(std::FILE* out) const {
    std::fprintf(out,
                 "  \"peak_rss_bytes\": %zu,\n"
                 "  \"bench_wall_secs\": %.3f,\n",
                 peak_rss_bytes(), wall_secs());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Timeline row of one aggregator in one round (Fig. 4 / Fig. 7(c) style).
struct AggSpan {
  std::string name;
  double first_arrival = -1;
  double completed = -1;
  double busy = 0;
};

struct RoundTrace {
  double started = 0;
  double completed = 0;     ///< top aggregator done (incl. eval)
  std::vector<AggSpan> spans;
  double duration() const { return completed - started; }
};

/// Runs `rounds` synchronous rounds of the Fig. 4 motivating experiment:
/// `trainers` remote clients train a model (normal(train_mean, train_sd)
/// seconds), upload to one aggregation node, and a fixed hierarchy (either
/// a single aggregator, NH, or 1 top + `leaves` leaf aggregators, WH)
/// aggregates them. Returns one trace per round.
inline std::vector<RoundTrace> run_trainer_rounds(
    dp::DataPlaneConfig plane_cfg, bool hierarchy, int rounds, int trainers,
    std::size_t model_bytes, double train_mean, double train_sd,
    double uplink, std::uint64_t seed, int leaves = 4,
    fl::AggTiming timing = fl::AggTiming::kEager,
    std::uint32_t gateway_cores = 4) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, plane_cfg, sim::Rng(seed));
  plane.set_gateway_cores(0, gateway_cores);
  sim::Rng rng(seed * 77 + 1);

  std::vector<RoundTrace> traces;
  for (int r = 1; r <= rounds; ++r) {
    RoundTrace trace;
    trace.started = sim.now();

    // Build the (warm) hierarchy for this round.
    std::vector<std::unique_ptr<fl::AggregatorRuntime>> aggs;
    bool done = false;
    fl::AggregatorRuntime::Config tc;
    tc.id = 1;
    tc.node = 0;
    tc.role = fl::AggRole::kTop;
    tc.timing = timing;
    tc.goal = hierarchy ? leaves : trainers;
    tc.result_bytes = model_bytes;
    tc.pull_from_pool = !hierarchy;
    tc.expected_version = static_cast<std::uint32_t>(r);
    tc.on_result = [&done](fl::ModelUpdate) { done = true; };
    aggs.push_back(std::make_unique<fl::AggregatorRuntime>(plane, tc));
    aggs.back()->start();
    if (hierarchy) {
      const int per_leaf = trainers / leaves;
      for (int l = 0; l < leaves; ++l) {
        fl::AggregatorRuntime::Config lc;
        lc.id = 10 + l;
        lc.node = 0;
        lc.role = fl::AggRole::kLeaf;
        lc.timing = timing;
        lc.goal = per_leaf;
        lc.consumer = 1;
        lc.result_bytes = model_bytes;
        lc.pull_from_pool = true;
        lc.expected_version = static_cast<std::uint32_t>(r);
        aggs.push_back(std::make_unique<fl::AggregatorRuntime>(plane, lc));
        aggs.back()->start();
      }
    }

    // Trainers: local training time, then upload.
    for (int t = 0; t < trainers; ++t) {
      const double delay = std::max(1.0, rng.normal(train_mean, train_sd));
      fl::ModelUpdate u;
      u.model_version = static_cast<std::uint32_t>(r);
      u.producer = 1000 + t;
      u.sample_count = 600;
      u.logical_bytes = model_bytes;
      sim.schedule_after(delay, [&plane, u, uplink]() mutable {
        plane.client_upload(0, std::move(u), uplink);
      });
    }
    sim.run();
    if (!done) {
      std::fprintf(stderr, "round %d did not complete\n", r);
      std::exit(1);
    }
    // Evaluation task (Fig. 4 "Eval." span).
    sim::Node& node = cluster.node(0);
    node.cores().acquire(sim::calib::kEvalSecs, [&node] {
      node.cpu().add(sim::CostTag::kEvaluation,
                     sim::calib::kEvalSecs * node.config().cpu_hz);
    });
    sim.run();

    for (const auto& a : aggs) {
      AggSpan s;
      s.name = a->config().role == fl::AggRole::kTop
                   ? "Top"
                   : "LF" + std::to_string(a->config().id - 9);
      s.first_arrival = a->first_arrival_at();
      s.completed = a->sent_at();
      s.busy = a->busy_secs();
      trace.spans.push_back(s);
    }
    trace.completed = sim.now();
    traces.push_back(trace);
  }
  return traces;
}

/// Prints Fig. 4-style timeline rows for a set of round traces.
inline void print_timeline(const std::string& title,
                           const std::vector<RoundTrace>& traces) {
  sys::Table t({"round", "aggregator", "first_arrival(s)", "agg_done(s)",
                "busy(s)", "round_time(s)"});
  int r = 1;
  for (const auto& trace : traces) {
    for (const auto& s : trace.spans) {
      t.row({std::to_string(r), s.name, sys::fmt(s.first_arrival),
             sys::fmt(s.completed), sys::fmt(s.busy),
             s.name == "Top" ? sys::fmt(trace.duration()) : ""});
    }
    ++r;
  }
  t.print(title);
}

/// Mean round duration across traces.
inline double mean_round_secs(const std::vector<RoundTrace>& traces) {
  double total = 0;
  for (const auto& t : traces) total += t.duration();
  return traces.empty() ? 0.0 : total / traces.size();
}

}  // namespace lifl::bench
