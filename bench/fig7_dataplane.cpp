// Reproduces Fig. 7: data-plane improvement for hierarchical aggregation.
//  (a) latency of a single intra-node model-update transfer (leaf -> top)
//      for ResNet-18/34/152 under LIFL / SF / SL, with the serverless
//      sidecar (+SC) and broker (+MB) shares broken out;
//  (b) CPU cycles of the same transfer;
//  (c) LIFL's aggregation timing with the Fig. 4 hierarchy (paper: round
//      completes in ~44.9 s vs ~57 s serverful).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/dataplane/probe.hpp"

using namespace lifl;

namespace {

struct TransferCost {
  double latency = 0;
  double gcycles = 0;
  double sidecar_gcycles = 0;
  double broker_gcycles = 0;
};

TransferCost measure(dp::DataPlaneConfig cfg, std::size_t bytes) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, cfg, sim::Rng(42));
  TransferCost out;
  dp::measure_transfer(plane, 0, 0, bytes,
                       [&](double l) { out.latency = l; });
  sim.run();
  plane.settle_idle_costs();
  const auto& cpu = cluster.node(0).cpu();
  out.gcycles = cpu.total_cycles() / 1e9;
  out.sidecar_gcycles = cpu.cycles(sim::CostTag::kSidecarContainer) / 1e9;
  out.broker_gcycles = cpu.cycles(sim::CostTag::kBroker) / 1e9;
  return out;
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, fl::ModelSpec>> models = {
      {"ResNet-18", fl::models::resnet18()},
      {"ResNet-34", fl::models::resnet34()},
      {"ResNet-152", fl::models::resnet152()},
  };

  std::printf("Fig. 7 — data plane improvement for hierarchical aggregation\n");

  // ---- (a) + (b): single intra-node transfer.
  sys::Table a({"model", "LIFL(s)", "SF(s)", "SL(s)", "SL:+SC(s)",
                "SL:+MB(s)", "SF/LIFL", "SL/LIFL"});
  sys::Table b({"model", "LIFL(Gcyc)", "SF(Gcyc)", "SL(Gcyc)", "SL +SC share",
                "SL +MB share"});
  for (const auto& [name, spec] : models) {
    const auto lifl = measure(dp::lifl_plane(), spec.bytes());
    const auto sf = measure(dp::serverful_plane(), spec.bytes());
    const auto sl = measure(dp::serverless_plane(), spec.bytes());
    // Latency shares of the serverless extras, attributed by their cycle
    // shares of the end-to-end path.
    const double sc_lat = sl.latency * sl.sidecar_gcycles / sl.gcycles;
    const double mb_lat = sl.latency * sl.broker_gcycles / sl.gcycles;
    a.row({name, sys::fmt(lifl.latency), sys::fmt(sf.latency),
           sys::fmt(sl.latency), sys::fmt(sc_lat), sys::fmt(mb_lat),
           sys::fmt(sf.latency / lifl.latency, 1),
           sys::fmt(sl.latency / lifl.latency, 1)});
    b.row({name, sys::fmt(lifl.gcycles), sys::fmt(sf.gcycles),
           sys::fmt(sl.gcycles),
           sys::fmt(100 * sl.sidecar_gcycles / sl.gcycles, 0) + "%",
           sys::fmt(100 * sl.broker_gcycles / sl.gcycles, 0) + "%"});
  }
  a.print("Fig. 7(a) — intra-node transfer latency "
          "(paper LIFL: 0.14 / 0.25 / 0.76 s; SF ~3x, SL ~6x LIFL)");
  b.print("Fig. 7(b) — intra-node transfer CPU "
          "(paper LIFL: 0.21 / 0.24 / 2.45 Gcycles; SL worst)");

  // ---- (c): the Fig. 4 experiment on LIFL's data plane.
  const auto lifl_wh = bench::run_trainer_rounds(
      dp::lifl_plane(), /*hierarchy=*/true, 4, 8,
      fl::models::resnet152().bytes(), 40.0, 1.2,
      sim::calib::kServerUplinkBytesPerSec, /*seed=*/11);
  bench::print_timeline("Fig. 7(c) — LIFL aggregation timing (ResNet-152)",
                        lifl_wh);
  std::printf("\nmean round time on LIFL: %.1f s   "
              "(paper: 44.9 s vs 57 s serverful WH)\n",
              bench::mean_round_secs(lifl_wh));
  return 0;
}
