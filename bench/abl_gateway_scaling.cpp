// Ablation of the gateway's vertical scaling (§4.2): "We apply vertical
// scaling of the gateway by dynamically adjusting the number of assigned
// CPU cores based on the load level. This avoids the gateway becoming the
// dataplane bottleneck and impacting the aggregation speed."
//
// A burst of client uploads hits one LIFL node; the gateway performs the
// one-time payload processing for each. With a fixed single core the
// gateway serializes the burst; scaled to match the load it disappears
// from the critical path.
//
// The second and third tables sweep the gateway's RSS receive queues
// (multi-queue ingest): uploads steer to queues by client-id hash, each
// queue draining on its own core share. With one queue the gateway is the
// classic single work-conserving pool; with N queues a hot node's ingest
// fans out across its cores while each client's uploads stay in order —
// and, as real RSS, a few elephant flows can only use as many cores as
// they have queues.

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/random.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

struct IngestOutcome {
  double last_enqueued_secs = 0.0;  ///< burst fully queued in shm
  double gateway_wait_secs = 0.0;   ///< total queueing at the gateway
};

/// `flows` distinct clients send `uploads / flows` uploads each.
IngestOutcome run_burst(std::uint32_t gateway_cores,
                        std::uint32_t gateway_queues, std::uint32_t uploads,
                        std::uint32_t flows, std::size_t bytes) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlaneConfig pcfg = dp::lifl_plane();
  pcfg.gateway_cores = gateway_cores;
  pcfg.gateway_queues = gateway_queues;
  dp::DataPlane plane(cluster, pcfg, sim::Rng(3));

  std::uint32_t done = 0;
  IngestOutcome out;
  for (std::uint32_t i = 0; i < uploads; ++i) {
    fl::ModelUpdate u;
    u.model_version = 1;
    u.producer = 100 + (i % flows);
    u.sample_count = 600;
    u.logical_bytes = bytes;
    plane.client_upload(0, std::move(u), /*uplink=*/1e9, [&] {
      ++done;
      out.last_enqueued_secs = sim.now();
    });
  }
  sim.run();
  out.gateway_wait_secs = plane.env(0).gateway.total_wait_time();
  if (done != uploads) {
    std::fprintf(stderr, "burst did not finish\n");
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const lifl::bench::BenchMeta meta;
  struct Row {
    const char* sweep;
    std::uint32_t cores;
    std::uint32_t queues;
    IngestOutcome out;
  };
  std::vector<Row> rows;
  const std::uint32_t uploads = 16;
  const std::size_t bytes = fl::models::resnet152().bytes();
  std::printf(
      "Ablation — gateway vertical scaling (§4.2): %u concurrent ResNet-152 "
      "uploads into one node\n",
      uploads);

  sys::Table t({"gateway cores", "burst ingested by (s)",
                "total gateway queueing (s)"});
  for (const std::uint32_t cores : {1u, 2u, 4u, 8u}) {
    // Single queue, `cores` servers: the pre-RSS vertically scaled gateway.
    const auto out = run_burst(cores, 1, uploads, uploads, bytes);
    rows.push_back({"vertical", cores, 1, out});
    t.row({std::to_string(cores), sys::fmt(out.last_enqueued_secs, 2),
           sys::fmt(out.gateway_wait_secs, 2)});
  }
  t.print(
      "Fixed-size gateways serialize the burst; vertical scaling removes "
      "the gateway from the critical path");

  // ---- RSS queue sweep: many distinct flows, fixed 8 gateway cores.
  const std::uint32_t burst = 64;
  std::printf(
      "\nRSS multi-queue ingest: %u uploads from %u distinct clients, "
      "8 gateway cores\n",
      burst, burst);
  sys::Table tq({"rss queues", "burst ingested by (s)",
                 "total gateway queueing (s)"});
  for (const std::uint32_t queues : {1u, 2u, 4u, 8u}) {
    const auto out = run_burst(8, queues, burst, burst, bytes);
    rows.push_back({"rss", 8, queues, out});
    tq.row({std::to_string(queues), sys::fmt(out.last_enqueued_secs, 2),
            sys::fmt(out.gateway_wait_secs, 2)});
  }
  tq.print(
      "With enough distinct flows, hash steering keeps all 8 cores busy at "
      "any queue count (small hash-imbalance tax at high queue counts)");

  // ---- Skewed flows: 4 hot clients own the burst.
  std::printf(
      "\nSkewed ingest: %u uploads from only 4 clients, 8 gateway cores\n",
      burst);
  sys::Table ts({"rss queues", "burst ingested by (s)",
                 "total gateway queueing (s)"});
  for (const std::uint32_t queues : {1u, 2u, 4u, 8u}) {
    const auto out = run_burst(8, queues, burst, 4, bytes);
    rows.push_back({"skewed", 8, queues, out});
    ts.row({std::to_string(queues), sys::fmt(out.last_enqueued_secs, 2),
            sys::fmt(out.gateway_wait_secs, 2)});
  }
  ts.print(
      "Per-flow ordering caps a hot flow at one queue: 4 elephants use at "
      "most 4 of the 8 cores however many queues exist — the single-queue "
      "pool hides this, real RSS does not");

  FILE* out = std::fopen("BENCH_abl_gateway_scaling.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"abl_gateway_scaling\",\n"
                 "  \"samples\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "    {\"sweep\": \"%s\", \"cores\": %u, \"queues\": %u, "
                   "\"ingested_by_secs\": %.4f, \"wait_secs\": %.4f}%s\n",
                   r.sweep, r.cores, r.queues, r.out.last_enqueued_secs,
                   r.out.gateway_wait_secs,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_abl_gateway_scaling.json\n");
  }
  return 0;
}
