// Ablation of the gateway's vertical scaling (§4.2): "We apply vertical
// scaling of the gateway by dynamically adjusting the number of assigned
// CPU cores based on the load level. This avoids the gateway becoming the
// dataplane bottleneck and impacting the aggregation speed."
//
// A burst of client uploads hits one LIFL node; the gateway performs the
// one-time payload processing for each. With a fixed single core the
// gateway serializes the burst; scaled to match the load it disappears
// from the critical path.

#include <cstdio>
#include <vector>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/random.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

struct IngestOutcome {
  double last_enqueued_secs = 0.0;  ///< burst fully queued in shm
  double gateway_wait_secs = 0.0;   ///< total queueing at the gateway
};

IngestOutcome run_burst(std::uint32_t gateway_cores, std::uint32_t uploads,
                        std::size_t bytes) {
  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, dp::lifl_plane(), sim::Rng(3));
  plane.set_gateway_cores(0, gateway_cores);

  std::uint32_t done = 0;
  IngestOutcome out;
  for (std::uint32_t i = 0; i < uploads; ++i) {
    fl::ModelUpdate u;
    u.model_version = 1;
    u.producer = 100 + i;
    u.sample_count = 600;
    u.logical_bytes = bytes;
    plane.client_upload(0, std::move(u), /*uplink=*/1e9, [&] {
      ++done;
      out.last_enqueued_secs = sim.now();
    });
  }
  sim.run();
  out.gateway_wait_secs = plane.env(0).gateway.total_wait_time();
  if (done != uploads) {
    std::fprintf(stderr, "burst did not finish\n");
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const std::uint32_t uploads = 16;
  const std::size_t bytes = fl::models::resnet152().bytes();
  std::printf(
      "Ablation — gateway vertical scaling (§4.2): %u concurrent ResNet-152 "
      "uploads into one node\n",
      uploads);

  sys::Table t({"gateway cores", "burst ingested by (s)",
                "total gateway queueing (s)"});
  for (const std::uint32_t cores : {1u, 2u, 4u, 8u}) {
    const auto out = run_burst(cores, uploads, bytes);
    t.row({std::to_string(cores), sys::fmt(out.last_enqueued_secs, 2),
           sys::fmt(out.gateway_wait_secs, 2)});
  }
  t.print(
      "Fixed-size gateways serialize the burst; vertical scaling removes "
      "the gateway from the critical path");
  return 0;
}
