// Client-lifecycle microbench: lossless resumable uploads for a 1M-client
// tiered edge population (40% flagship / 30% mid-range / 30% IoT) running
// an 8-node-group planned-mode mega-campaign with a 20% base mid-upload
// disconnect rate.
//
// The campaign runs twice — always-connected and flaky — and the bench
// reports per-tier participation plus the disconnect/resume telemetry.
// Properties gated:
//   1. Conservation: every round folds exactly the always-connected sample
//      sum (a disconnect parks the update in the client's offline queue;
//      reconnection resumes chunk-wise from the last acked offset —
//      nothing lost, nothing double-counted).
//   2. Coverage: the flaky run actually disconnected sessions and every
//      disconnect produced a resume (`resumed == disconnects`).
//
// Emits BENCH_client_lifecycle.json. CI runs it in Release and fails the
// job on a gate miss (LIFL_LIFECYCLE_BENCH_GATE=0 disables the gate).
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_client_lifecycle

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"
#include "src/workload/device_tier.hpp"

using namespace lifl;

namespace {

sys::ShardedCampaignConfig bench_campaign() {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 1;  // sim time is shard-count invariant; keep wall cost low
  cfg.groups = 8;  // the paper's 8-node cluster
  cfg.rounds = 2;
  cfg.leaves_per_group = 62;
  cfg.updates_per_leaf = 500;  // 248k uploads/round, 1M-client population
  cfg.model_bytes = 100'000;
  cfg.population = 1'000'000;
  cfg.peak_per_sec = 2500.0;
  cfg.ramp_secs = 60.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 600.0;
  cfg.seed = 2026;
  cfg.gateway_queues = 0;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 5.0;
  cfg.device_tiers = {0.4, 0.3, 0.3};
  return cfg;
}

double mean_round_secs(const sys::ShardedCampaignResult& r) {
  double sum = 0.0;
  for (std::size_t i = 0; i < r.round_completed_at.size(); ++i) {
    sum += r.round_completed_at[i] - r.round_started_at[i];
  }
  return sum / static_cast<double>(r.round_completed_at.size());
}

}  // namespace

int main() {
  const bench::BenchMeta meta;
  const auto base = bench_campaign();
  std::printf(
      "client-lifecycle microbench: %zu tiered clients "
      "(40%%/30%%/30%% flagship/mid/IoT), %zu node groups, %zu rounds, "
      "20%% base mid-upload disconnect rate\n\n",
      base.population, base.groups, base.rounds);

  const auto steady = sys::run_sharded_campaign(base);

  auto flaky_cfg = base;
  flaky_cfg.lifecycle.seed = 404;
  flaky_cfg.lifecycle.disconnect_rate = 0.20;
  flaky_cfg.lifecycle.chunk_bytes = 25'000;
  flaky_cfg.lifecycle.offline_base_secs = 0.05;
  flaky_cfg.lifecycle.offline_cap_secs = 1.0;
  const auto flaky = sys::run_sharded_campaign(flaky_cfg);

  // ---- conservation: zero lost client samples, round by round.
  bool conserved = flaky.round_samples.size() == steady.round_samples.size();
  for (std::size_t r = 0; conserved && r < steady.round_samples.size(); ++r) {
    conserved = flaky.round_samples[r] == steady.round_samples[r];
  }
  if (!conserved) {
    std::fprintf(stderr,
                 "FAIL: resumable uploads lost client samples (flaky round "
                 "sums differ from always-connected)\n");
    return 1;
  }

  const double steady_round = mean_round_secs(steady);
  const double flaky_round = mean_round_secs(flaky);
  const double overhead = (flaky_round - steady_round) / steady_round;

  sys::Table tiers({"tier", "selected", "completed", "disconnects"});
  for (std::size_t i = 0; i < wl::kTierCount; ++i) {
    const auto& ts = flaky.tiers[i];
    tiers.row({wl::tier_name(static_cast<wl::DeviceTier>(i)),
               std::to_string(ts.selected), std::to_string(ts.completed),
               std::to_string(ts.disconnects)});
  }
  tiers.print("Per-tier participation under 20% disconnects");

  sys::Table t({"metric", "always-on", "flaky"});
  t.row({"round sim time (s, mean)", sys::fmt(steady_round, 3),
         sys::fmt(flaky_round, 3)});
  t.row({"disconnects", "0", std::to_string(flaky.disconnects)});
  t.row({"resumed uploads", "0", std::to_string(flaky.resumed_uploads)});
  t.row({"chunks acked", std::to_string(steady.chunks_sent),
         std::to_string(flaky.chunks_sent)});
  t.row({"chunks re-sent", "0", std::to_string(flaky.chunks_resent)});
  t.row({"selection redraws", "0",
         std::to_string(flaky.selection_redraws)});
  t.row({"offline queue peak", "0",
         std::to_string(flaky.offline_queue_peak)});
  t.print("Lossless resumable uploads at 1M clients, 20% disconnect rate");
  std::printf("round-time overhead: %.2f%%  (samples conserved: yes)\n",
              overhead * 100.0);

  FILE* out = std::fopen("BENCH_client_lifecycle.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(
        out,
        "  \"bench\": \"client_lifecycle\",\n"
        "  \"population\": %zu,\n"
        "  \"groups\": %zu,\n"
        "  \"rounds\": %zu,\n"
        "  \"disconnect_rate\": %.3f,\n"
        "  \"disconnects\": %llu,\n"
        "  \"resumed_uploads\": %llu,\n"
        "  \"chunks_sent\": %llu,\n"
        "  \"chunks_resent\": %llu,\n"
        "  \"selection_redraws\": %llu,\n"
        "  \"offline_queue_peak\": %llu,\n"
        "  \"iot_disconnects\": %llu,\n"
        "  \"flagship_disconnects\": %llu,\n"
        "  \"round_secs_always_on\": %.6f,\n"
        "  \"round_secs_flaky\": %.6f,\n"
        "  \"round_overhead_frac\": %.6f,\n"
        "  \"samples_conserved\": true\n"
        "}\n",
        base.population, base.groups, base.rounds,
        flaky_cfg.lifecycle.disconnect_rate,
        static_cast<unsigned long long>(flaky.disconnects),
        static_cast<unsigned long long>(flaky.resumed_uploads),
        static_cast<unsigned long long>(flaky.chunks_sent),
        static_cast<unsigned long long>(flaky.chunks_resent),
        static_cast<unsigned long long>(flaky.selection_redraws),
        static_cast<unsigned long long>(flaky.offline_queue_peak),
        static_cast<unsigned long long>(
            flaky.tiers[static_cast<std::size_t>(wl::DeviceTier::kIoT)]
                .disconnects),
        static_cast<unsigned long long>(
            flaky.tiers[static_cast<std::size_t>(wl::DeviceTier::kFlagship)]
                .disconnects),
        steady_round, flaky_round, overhead);
    std::fclose(out);
    std::printf("wrote BENCH_client_lifecycle.json\n");
  }

  // ---- gate: the flaky run must have actually exercised the machinery
  // (disconnects happened, every one resumed) without losing a sample.
  bool gate = true;
  if (const char* env = std::getenv("LIFL_LIFECYCLE_BENCH_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf("gate SKIPPED (LIFL_LIFECYCLE_BENCH_GATE=0)\n");
    return 0;
  }
  if (flaky.disconnects == 0 || flaky.resumed_uploads != flaky.disconnects) {
    std::fprintf(stderr,
                 "FAIL: %llu disconnects but %llu resumes — the lifecycle "
                 "plan injected nothing or dropped a parked update\n",
                 static_cast<unsigned long long>(flaky.disconnects),
                 static_cast<unsigned long long>(flaky.resumed_uploads));
    return 1;
  }
  std::printf(
      "gate OK: %llu disconnects, all resumed, zero lost samples "
      "(%.2f%% round-time overhead)\n",
      static_cast<unsigned long long>(flaky.disconnects), overhead * 100.0);
  return 0;
}
