// Campaign checkpoint microbench: snapshot cost and restore cost for a
// 1M-client, 8-node-group planned-mode mega-campaign.
//
// The campaign runs with the checkpoint driver on (snapshot marks every
// `every` simulated seconds): each mark bills the CheckpointManager cost
// model in-sim and emits a versioned blob at the next quiescent barrier.
// The bench reports the blob size and the *wall* cost of producing one
// (boundary encode + cut trailer), then resumes from the final blob and
// verifies the resumed rounds are bitwise identical to the reference —
// measuring the restore wall cost (decode + apply + deterministic replay
// of the in-progress round's prefix).
//
// Emits BENCH_checkpoint.json. CI runs it in Release and fails the job if
// the mean per-snapshot wall cost exceeds 10% of the steady-state round
// wall time (LIFL_CKPT_BENCH_GATE=0 disables the gate).
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_checkpoint

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

sys::ShardedCampaignConfig bench_campaign() {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 1;  // sim time is shard-count invariant; keep wall cost low
  cfg.groups = 8;  // the paper's 8-node cluster
  cfg.rounds = 2;
  cfg.leaves_per_group = 62;
  cfg.updates_per_leaf = 500;  // 248k uploads/round, 1M-client population
  cfg.model_bytes = 100'000;
  cfg.population = 1'000'000;
  cfg.peak_per_sec = 2500.0;
  cfg.ramp_secs = 60.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 600.0;
  cfg.seed = 2026;
  cfg.gateway_queues = 0;
  cfg.hierarchy = sys::HierarchyMode::kPlanned;
  cfg.replan_interval_secs = 5.0;
  cfg.checkpoint_every_secs = 20.0;
  return cfg;
}

struct Blob {
  std::vector<std::uint8_t> bytes;
  std::uint32_t round = 0;
  double mark = 0.0;
};

}  // namespace

int main() {
  const bench::BenchMeta meta;
  const auto cfg_base = bench_campaign();
  std::printf(
      "checkpoint microbench: %zu clients, %zu node groups, %zu rounds, "
      "snapshot mark every %.0f sim s\n\n",
      cfg_base.population, cfg_base.groups, cfg_base.rounds,
      cfg_base.checkpoint_every_secs);

  // ---- reference: checkpointed run, every blob captured.
  std::vector<Blob> blobs;
  auto cfg = cfg_base;
  cfg.on_checkpoint = [&blobs](const std::vector<std::uint8_t>& bytes,
                               std::uint32_t round, double mark) {
    blobs.push_back(Blob{bytes, round, mark});
  };
  const auto reference = sys::run_sharded_campaign(cfg);
  if (blobs.empty()) {
    std::fprintf(stderr, "FAIL: campaign emitted no snapshots\n");
    return 1;
  }

  const double round_wall_mean =
      reference.wall_secs / static_cast<double>(cfg_base.rounds);
  const double encode_mean_secs =
      reference.checkpoint_encode_secs /
      static_cast<double>(reference.checkpoints_written);
  const double blob_mean_bytes =
      static_cast<double>(reference.checkpoint_bytes) /
      static_cast<double>(reference.checkpoints_written);

  // ---- restore: resume from the last blob; the replay re-executes the
  // final round's prefix, so this is the worst-case restore cost.
  const Blob& last = blobs.back();
  auto rcfg = cfg_base;
  rcfg.resume_blob = &last.bytes;
  const auto resumed = sys::run_sharded_campaign(rcfg);
  bool identical = resumed.round_completed_at.size() ==
                   reference.round_completed_at.size();
  for (std::size_t r = 0; identical && r < reference.round_samples.size();
       ++r) {
    identical = reference.round_completed_at[r] ==
                    resumed.round_completed_at[r] &&
                reference.round_samples[r] == resumed.round_samples[r];
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: resumed campaign diverged from reference\n");
    return 1;
  }

  sys::Table t({"metric", "value"});
  t.row({"snapshots emitted",
         std::to_string(reference.checkpoints_written)});
  t.row({"marks billed (in-sim)",
         std::to_string(reference.checkpoint_marks)});
  t.row({"blob size (bytes, mean)", sys::fmt(blob_mean_bytes, 0)});
  t.row({"snapshot wall (us, mean)", sys::fmt(encode_mean_secs * 1e6, 1)});
  t.row({"round wall (s, mean)", sys::fmt(round_wall_mean, 3)});
  t.row({"snapshot/round wall",
         sys::fmt(encode_mean_secs / round_wall_mean * 100.0, 4) + "%"});
  t.row({"restore+replay wall (s)", sys::fmt(resumed.wall_secs, 3)});
  t.row({"resume cut", "round " + std::to_string(last.round) + ", mark " +
                           sys::fmt(last.mark, 0) + " sim s"});
  t.print("Campaign snapshot/restore at 1M clients, 8 node groups");
  std::printf("resumed run bitwise-identical to reference: yes\n");

  FILE* out = std::fopen("BENCH_checkpoint.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"checkpoint\",\n"
                 "  \"population\": %zu,\n"
                 "  \"groups\": %zu,\n"
                 "  \"rounds\": %zu,\n"
                 "  \"checkpoint_every_secs\": %.3f,\n"
                 "  \"snapshots\": %llu,\n"
                 "  \"marks_billed\": %llu,\n"
                 "  \"blob_bytes_mean\": %.1f,\n"
                 "  \"snapshot_wall_secs_mean\": %.9f,\n"
                 "  \"round_wall_secs_mean\": %.6f,\n"
                 "  \"snapshot_round_frac\": %.9f,\n"
                 "  \"restore_replay_wall_secs\": %.6f,\n"
                 "  \"resumed_identical\": true\n"
                 "}\n",
                 cfg_base.population, cfg_base.groups, cfg_base.rounds,
                 cfg_base.checkpoint_every_secs,
                 static_cast<unsigned long long>(
                     reference.checkpoints_written),
                 static_cast<unsigned long long>(reference.checkpoint_marks),
                 blob_mean_bytes, encode_mean_secs, round_wall_mean,
                 encode_mean_secs / round_wall_mean, resumed.wall_secs);
    std::fclose(out);
    std::printf("wrote BENCH_checkpoint.json\n");
  }

  // ---- gate: a snapshot must cost well under 10% of a steady-state round
  // (it is a boundary-image encode of O(groups) counters, not a model
  // dump, so the margin is enormous; the gate catches regressions that
  // would make the cadence unaffordable at diurnal-week scale).
  bool gate = true;
  if (const char* env = std::getenv("LIFL_CKPT_BENCH_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf("gate SKIPPED (LIFL_CKPT_BENCH_GATE=0)\n");
    return 0;
  }
  if (encode_mean_secs > 0.10 * round_wall_mean) {
    std::fprintf(stderr,
                 "FAIL: snapshot wall %.6f s exceeds 10%% of the %.3f s "
                 "steady-state round wall\n",
                 encode_mean_secs, round_wall_mean);
    return 1;
  }
  std::printf("gate OK: snapshot %.1f us <= 10%% of %.3f s round wall\n",
              encode_mean_secs * 1e6, round_wall_mean);
  return 0;
}
