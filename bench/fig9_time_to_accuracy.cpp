// Reproduces Fig. 9: end-to-end time-to-accuracy and cost-to-accuracy of
// SF (serverful), SL (serverless baseline), and LIFL on the two §6.2
// workloads:
//   (a,b) ResNet-18, 120 simultaneously active mobile clients per round
//         drawn from a 2,800-client population, hibernation U[0,60] s;
//   (c,d) ResNet-152, 15 always-on server clients per round.
// Paper anchors (70% accuracy):
//   ResNet-18 : LIFL 0.9 h / 4.5 CPU-h, SF 1.4 h / 8 CPU-h, SL 2.4 h / 26
//   ResNet-152: LIFL 1.9 h / 4.76 CPU-h, SF 2.2 h / 6.81, SL 3.2 h / 20.4
//
// Plus the async extension A/B: the same campaign run synchronously
// (HierarchyMode::kPlanned, round barriers) and asynchronously
// (HierarchyMode::kAsync, FedBuff buffers + FedAsync staleness weights)
// under 30% stragglers. Emits BENCH_fig9_async.json; CI runs it in Release
// and fails the job if async time-to-accuracy regresses above synchronous
// (LIFL_FIG9_GATE=0 disables the gate).
//
// Plus the selection extension A/B: the same campaign on a tiered device
// population (flagship/mid-range/IoT) under 30% stragglers, selected by
// the legacy random oracle vs the scored heterogeneity-aware strategy.
// Emits BENCH_fig9_selector.json and gates scored at >= 15% faster
// time-to-70%-accuracy (same LIFL_FIG9_GATE switch).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/ml/accuracy_model.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"
#include "src/systems/training_experiment.hpp"

using namespace lifl;

namespace {

sys::TrainingConfig resnet18_setup() {
  sys::TrainingConfig cfg;
  cfg.model = fl::models::resnet18();
  cfg.cluster_nodes = 5;
  cfg.population = 2800;
  cfg.active_per_round = 120;
  cfg.mobile_clients = true;
  cfg.base_train_secs = sim::calib::kTrainSecsResNet18;
  cfg.curve = ml::AccuracyModel::resnet18_femnist();
  cfg.target_accuracy = 0.70;
  cfg.max_rounds = 100;
  cfg.max_hours = 6.0;
  return cfg;
}

sys::TrainingConfig resnet152_setup() {
  sys::TrainingConfig cfg;
  cfg.model = fl::models::resnet152();
  cfg.cluster_nodes = 5;
  cfg.population = 2800;
  cfg.active_per_round = 15;
  cfg.mobile_clients = false;
  cfg.base_train_secs = sim::calib::kTrainSecsResNet152;
  cfg.curve = ml::AccuracyModel::resnet152_femnist();
  cfg.target_accuracy = 0.70;
  cfg.max_rounds = 170;
  cfg.max_hours = 6.0;
  return cfg;
}

struct SetupSpec {
  std::string label;
  sys::TrainingConfig cfg;
};

/// Prints accuracy-vs-wall-clock and accuracy-vs-CPU curves plus the
/// 70%-crossing summary for one workload across the three systems.
void run_workload(const SetupSpec& setup) {
  const std::vector<sys::SystemConfig> systems = {
      sys::make_serverful(), sys::make_serverless(), sys::make_lifl()};

  std::vector<sys::TrainingResult> results;
  for (const auto& system : systems) {
    sys::TrainingExperiment exp(system, setup.cfg);
    results.push_back(exp.run());
  }

  // Sampled accuracy curves: one row per round milestone, per system.
  sys::Table curve({"system", "round", "wall(h)", "cpu(h)", "accuracy(%)"});
  for (const auto& r : results) {
    const std::size_t step = r.rounds.size() > 12 ? r.rounds.size() / 12 : 1;
    double cpu_running = 0.0;
    for (std::size_t i = 0; i < r.rounds.size(); ++i) {
      cpu_running += r.rounds[i].cpu_secs;
      if (i % step != 0 && i + 1 != r.rounds.size()) continue;
      const auto& rec = r.rounds[i];
      curve.row({r.system, std::to_string(rec.round),
                 sys::fmt(rec.completed_at / 3600.0, 2),
                 sys::fmt(cpu_running / 3600.0, 2),
                 sys::fmt(rec.accuracy * 100.0, 1)});
    }
  }
  curve.print("Fig. 9 — " + setup.label + " accuracy trajectories");

  sys::Table summary({"system", "time to 70% (h)", "CPU to 70% (h)",
                      "rounds", "final acc(%)"});
  for (const auto& r : results) {
    summary.row({r.system,
                 r.secs_to_target >= 0 ? sys::fmt(r.secs_to_target / 3600.0, 2)
                                       : "n/a",
                 r.cpu_hours_to_target >= 0 ? sys::fmt(r.cpu_hours_to_target, 2)
                                            : "n/a",
                 std::to_string(r.rounds.size()),
                 sys::fmt(r.final_accuracy * 100.0, 1)});
  }
  summary.print("Fig. 9 — " + setup.label + " time/cost to 70% accuracy");
}

// ---- sync vs async under stragglers (the Fig. 11 extension A/B) ---------

/// The shared campaign: 30% of arrivals upload 30 s late. Synchronous
/// rounds stall on them (a round cannot close without its full cohort);
/// async versions keep sealing on count/deadline and fold the late updates
/// at the FedAsync staleness discount when they finally land.
sys::ShardedCampaignConfig ab_campaign() {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = 1;
  cfg.groups = 4;
  cfg.rounds = 5;  // async: model versions
  cfg.leaves_per_group = 8;
  cfg.updates_per_leaf = 10;
  cfg.model_bytes = 50'000;
  cfg.population = 20'000;
  cfg.peak_per_sec = 280.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.3;
  cfg.diurnal_period_secs = 6.0;
  cfg.seed = 77;
  cfg.middle_fanin = 4;
  cfg.replan_interval_secs = 0.0;
  cfg.straggler_fraction = 0.3;
  cfg.straggler_delay_secs = 30.0;
  return cfg;
}

struct AbOutcome {
  double sim_secs = 0.0;        ///< last round/version completion (sim s)
  double eff_rounds = 0.0;      ///< staleness-discounted round equivalents
  double rate = 0.0;            ///< effective rounds per simulated second
  double secs_to_target = 0.0;  ///< extrapolated time to 70% accuracy
  std::size_t versions = 0;
};

/// Progress model shared by both arms: a round/version that folds raw
/// sample mass S at effective (discounted) weight W advances training by
/// W/S round equivalents — exactly 1.0 for a synchronous round, <1.0 for
/// an async version that folded stale updates. Steady-state cadence then
/// extrapolates through the calibrated ResNet-18 curve to time-to-70%.
AbOutcome measure(const sys::ShardedCampaignConfig& cfg,
                  const ml::AccuracyModel& curve, double target) {
  const auto r = sys::run_sharded_campaign(cfg);
  AbOutcome out;
  out.versions = r.round_completed_at.size();
  out.sim_secs = r.round_completed_at.empty() ? 0.0
                                              : r.round_completed_at.back();
  for (std::size_t v = 0; v < r.round_weight.size(); ++v) {
    const double samples = static_cast<double>(r.round_samples[v]);
    if (samples > 0.0) out.eff_rounds += r.round_weight[v] / samples;
  }
  if (out.sim_secs > 0.0) out.rate = out.eff_rounds / out.sim_secs;
  const std::uint32_t need = curve.rounds_to_accuracy(target);
  if (out.rate > 0.0 && need > 0) out.secs_to_target = need / out.rate;
  return out;
}

/// Runs the A/B, prints the comparison, writes BENCH_fig9_async.json, and
/// returns the gate verdict (async at-or-better time-to-accuracy).
int run_async_ab() {
  const bench::BenchMeta meta;
  const auto curve = ml::AccuracyModel::resnet18_femnist();
  constexpr double kTarget = 0.70;

  auto sync_cfg = ab_campaign();
  sync_cfg.hierarchy = sys::HierarchyMode::kPlanned;
  auto async_cfg = ab_campaign();
  async_cfg.hierarchy = sys::HierarchyMode::kAsync;
  async_cfg.async_deadline_secs = 2.0;

  std::printf(
      "\nFig. 9 (async extension) — sync vs async aggregation, "
      "30%% stragglers +%gs\n",
      sync_cfg.straggler_fraction > 0 ? sync_cfg.straggler_delay_secs : 0.0);
  const AbOutcome sync_ab = measure(sync_cfg, curve, kTarget);
  const AbOutcome async_ab = measure(async_cfg, curve, kTarget);

  sys::Table t({"mode", "rounds/versions", "sim(s)", "eff rounds",
                "eff rounds/s", "secs to 70%"});
  const auto row = [&t](const char* label, const AbOutcome& o) {
    t.row({label, std::to_string(o.versions), sys::fmt(o.sim_secs, 2),
           sys::fmt(o.eff_rounds, 3), sys::fmt(o.rate, 4),
           sys::fmt(o.secs_to_target, 1)});
  };
  row("sync (planned)", sync_ab);
  row("async (FedBuff)", async_ab);
  t.print("Same campaign, same arrivals; async seals buffers on "
          "count/deadline instead of waiting on the straggler tail");
  const double speedup = async_ab.secs_to_target > 0.0
                             ? sync_ab.secs_to_target / async_ab.secs_to_target
                             : 0.0;
  std::printf("async speedup to 70%%: %.2fx\n", speedup);

  FILE* out = std::fopen("BENCH_fig9_async.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"fig9_async\",\n"
                 "  \"straggler_fraction\": %.2f,\n"
                 "  \"straggler_delay_secs\": %.1f,\n"
                 "  \"sync_sim_secs\": %.6f,\n"
                 "  \"async_sim_secs\": %.6f,\n"
                 "  \"sync_eff_rounds\": %.6f,\n"
                 "  \"async_eff_rounds\": %.6f,\n"
                 "  \"sync_secs_to_target\": %.3f,\n"
                 "  \"async_secs_to_target\": %.3f,\n"
                 "  \"speedup\": %.4f\n"
                 "}\n",
                 sync_cfg.straggler_fraction, sync_cfg.straggler_delay_secs,
                 sync_ab.sim_secs, async_ab.sim_secs, sync_ab.eff_rounds,
                 async_ab.eff_rounds, sync_ab.secs_to_target,
                 async_ab.secs_to_target, speedup);
    std::fclose(out);
    std::printf("wrote BENCH_fig9_async.json\n");
  }

  // ---- gate: under a 30% straggler tail, async must reach the target
  // accuracy no later than the synchronous barrier — that is the whole
  // point of removing the barrier (ISSUE 6 acceptance).
  bool gate = true;
  if (const char* env = std::getenv("LIFL_FIG9_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf("gate SKIPPED (LIFL_FIG9_GATE=0)\n");
    return 0;
  }
  if (sync_ab.secs_to_target <= 0.0 || async_ab.secs_to_target <= 0.0 ||
      async_ab.secs_to_target > sync_ab.secs_to_target) {
    std::fprintf(stderr,
                 "gate FAILED: async %.1f s to 70%% vs sync %.1f s "
                 "(async must be at-or-better under stragglers)\n",
                 async_ab.secs_to_target, sync_ab.secs_to_target);
    return 1;
  }
  std::printf("gate OK: async %.1f s <= sync %.1f s to 70%% accuracy\n",
              async_ab.secs_to_target, sync_ab.secs_to_target);
  return 0;
}

// ---- heterogeneity-aware selection A/B (the PR-8 extension) -------------

/// Runs the same tiered campaign under 30% stragglers with the legacy
/// random selector and with the scored (Apodotiko-style) strategy, prints
/// the comparison, writes BENCH_fig9_selector.json, and returns the gate
/// verdict (scored at least 15% faster to 70% accuracy).
///
/// Mechanism: on a tiered population the straggler mass lands IoT-first,
/// so at a 30% fraction every IoT arrival uploads 30 s late. Random keeps
/// picking them and every round stalls on the tail; scored learns the
/// tier's duration EWMA after round 1 and hard-excludes it
/// (`exclude_below`), so later rounds close without the straggler delay.
int run_selector_ab() {
  const bench::BenchMeta meta;
  const auto curve = ml::AccuracyModel::resnet18_femnist();
  constexpr double kTarget = 0.70;

  auto random_cfg = ab_campaign();
  random_cfg.hierarchy = sys::HierarchyMode::kPlanned;
  random_cfg.rounds = 6;  // round 1 pays the learning cost either way
  random_cfg.device_tiers = {0.4, 0.3, 0.3};
  auto scored_cfg = random_cfg;
  scored_cfg.selector = ctrl::SelectorPolicy::kScored;

  std::printf(
      "\nFig. 9 (selection extension) — random vs scored selection, "
      "tiered population, 30%% stragglers +%gs\n",
      random_cfg.straggler_delay_secs);
  const AbOutcome random_ab = measure(random_cfg, curve, kTarget);
  const AbOutcome scored_ab = measure(scored_cfg, curve, kTarget);

  sys::Table t({"selector", "rounds", "sim(s)", "eff rounds", "eff rounds/s",
                "secs to 70%"});
  const auto row = [&t](const char* label, const AbOutcome& o) {
    t.row({label, std::to_string(o.versions), sys::fmt(o.sim_secs, 2),
           sys::fmt(o.eff_rounds, 3), sys::fmt(o.rate, 4),
           sys::fmt(o.secs_to_target, 1)});
  };
  row("random (legacy oracle)", random_ab);
  row("scored (telemetry)", scored_ab);
  t.print("Same campaign, same arrival process; scored learns the "
          "straggler tier from round-1 telemetry and stops picking it");
  const double speedup = scored_ab.secs_to_target > 0.0
                             ? random_ab.secs_to_target /
                                   scored_ab.secs_to_target
                             : 0.0;
  std::printf("scored speedup to 70%%: %.2fx\n", speedup);

  FILE* out = std::fopen("BENCH_fig9_selector.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"fig9_selector\",\n"
                 "  \"straggler_fraction\": %.2f,\n"
                 "  \"straggler_delay_secs\": %.1f,\n"
                 "  \"random_sim_secs\": %.6f,\n"
                 "  \"scored_sim_secs\": %.6f,\n"
                 "  \"random_secs_to_target\": %.3f,\n"
                 "  \"scored_secs_to_target\": %.3f,\n"
                 "  \"speedup\": %.4f\n"
                 "}\n",
                 random_cfg.straggler_fraction,
                 random_cfg.straggler_delay_secs, random_ab.sim_secs,
                 scored_ab.sim_secs, random_ab.secs_to_target,
                 scored_ab.secs_to_target, speedup);
    std::fclose(out);
    std::printf("wrote BENCH_fig9_selector.json\n");
  }

  // ---- gate: heterogeneity-aware selection must beat blind random by at
  // least 15% time-to-accuracy under a 30% straggler tail (PR-8
  // acceptance; the learned exclusion typically lands well above 2x).
  bool gate = true;
  if (const char* env = std::getenv("LIFL_FIG9_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf("gate SKIPPED (LIFL_FIG9_GATE=0)\n");
    return 0;
  }
  if (random_ab.secs_to_target <= 0.0 || scored_ab.secs_to_target <= 0.0 ||
      scored_ab.secs_to_target > 0.85 * random_ab.secs_to_target) {
    std::fprintf(stderr,
                 "gate FAILED: scored %.1f s to 70%% vs random %.1f s "
                 "(gate: scored <= 85%% of random)\n",
                 scored_ab.secs_to_target, random_ab.secs_to_target);
    return 1;
  }
  std::printf("gate OK: scored %.1f s <= 85%% of random %.1f s to 70%% "
              "accuracy (%.2fx)\n",
              scored_ab.secs_to_target, random_ab.secs_to_target, speedup);
  return 0;
}

}  // namespace

int main() {
  std::printf(
      "Fig. 9 — time-to-accuracy and cost-to-accuracy, SF vs SL vs LIFL\n"
      "(paper: ResNet-18  LIFL 0.9h/4.5CPUh, SF 1.4h/8CPUh, SL 2.4h/26CPUh;\n"
      "        ResNet-152 LIFL 1.9h/4.76CPUh, SF 2.2h/6.81, SL 3.2h/20.4)\n");
  run_workload({"ResNet-18, 120 active mobile clients", resnet18_setup()});
  run_workload({"ResNet-152, 15 active server clients", resnet152_setup()});
  const int async_rc = run_async_ab();
  const int selector_rc = run_selector_ab();
  return async_rc != 0 ? async_rc : selector_rc;
}
