// Reproduces Fig. 9: end-to-end time-to-accuracy and cost-to-accuracy of
// SF (serverful), SL (serverless baseline), and LIFL on the two §6.2
// workloads:
//   (a,b) ResNet-18, 120 simultaneously active mobile clients per round
//         drawn from a 2,800-client population, hibernation U[0,60] s;
//   (c,d) ResNet-152, 15 always-on server clients per round.
// Paper anchors (70% accuracy):
//   ResNet-18 : LIFL 0.9 h / 4.5 CPU-h, SF 1.4 h / 8 CPU-h, SL 2.4 h / 26
//   ResNet-152: LIFL 1.9 h / 4.76 CPU-h, SF 2.2 h / 6.81, SL 3.2 h / 20.4

#include <cstdio>
#include <string>
#include <vector>

#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"
#include "src/systems/training_experiment.hpp"

using namespace lifl;

namespace {

sys::TrainingConfig resnet18_setup() {
  sys::TrainingConfig cfg;
  cfg.model = fl::models::resnet18();
  cfg.cluster_nodes = 5;
  cfg.population = 2800;
  cfg.active_per_round = 120;
  cfg.mobile_clients = true;
  cfg.base_train_secs = sim::calib::kTrainSecsResNet18;
  cfg.curve = ml::AccuracyModel::resnet18_femnist();
  cfg.target_accuracy = 0.70;
  cfg.max_rounds = 100;
  cfg.max_hours = 6.0;
  return cfg;
}

sys::TrainingConfig resnet152_setup() {
  sys::TrainingConfig cfg;
  cfg.model = fl::models::resnet152();
  cfg.cluster_nodes = 5;
  cfg.population = 2800;
  cfg.active_per_round = 15;
  cfg.mobile_clients = false;
  cfg.base_train_secs = sim::calib::kTrainSecsResNet152;
  cfg.curve = ml::AccuracyModel::resnet152_femnist();
  cfg.target_accuracy = 0.70;
  cfg.max_rounds = 170;
  cfg.max_hours = 6.0;
  return cfg;
}

struct SetupSpec {
  std::string label;
  sys::TrainingConfig cfg;
};

/// Prints accuracy-vs-wall-clock and accuracy-vs-CPU curves plus the
/// 70%-crossing summary for one workload across the three systems.
void run_workload(const SetupSpec& setup) {
  const std::vector<sys::SystemConfig> systems = {
      sys::make_serverful(), sys::make_serverless(), sys::make_lifl()};

  std::vector<sys::TrainingResult> results;
  for (const auto& system : systems) {
    sys::TrainingExperiment exp(system, setup.cfg);
    results.push_back(exp.run());
  }

  // Sampled accuracy curves: one row per round milestone, per system.
  sys::Table curve({"system", "round", "wall(h)", "cpu(h)", "accuracy(%)"});
  for (const auto& r : results) {
    const std::size_t step = r.rounds.size() > 12 ? r.rounds.size() / 12 : 1;
    double cpu_running = 0.0;
    for (std::size_t i = 0; i < r.rounds.size(); ++i) {
      cpu_running += r.rounds[i].cpu_secs;
      if (i % step != 0 && i + 1 != r.rounds.size()) continue;
      const auto& rec = r.rounds[i];
      curve.row({r.system, std::to_string(rec.round),
                 sys::fmt(rec.completed_at / 3600.0, 2),
                 sys::fmt(cpu_running / 3600.0, 2),
                 sys::fmt(rec.accuracy * 100.0, 1)});
    }
  }
  curve.print("Fig. 9 — " + setup.label + " accuracy trajectories");

  sys::Table summary({"system", "time to 70% (h)", "CPU to 70% (h)",
                      "rounds", "final acc(%)"});
  for (const auto& r : results) {
    summary.row({r.system,
                 r.secs_to_target >= 0 ? sys::fmt(r.secs_to_target / 3600.0, 2)
                                       : "n/a",
                 r.cpu_hours_to_target >= 0 ? sys::fmt(r.cpu_hours_to_target, 2)
                                            : "n/a",
                 std::to_string(r.rounds.size()),
                 sys::fmt(r.final_accuracy * 100.0, 1)});
  }
  summary.print("Fig. 9 — " + setup.label + " time/cost to 70% accuracy");
}

}  // namespace

int main() {
  std::printf(
      "Fig. 9 — time-to-accuracy and cost-to-accuracy, SF vs SL vs LIFL\n"
      "(paper: ResNet-18  LIFL 0.9h/4.5CPUh, SF 1.4h/8CPUh, SL 2.4h/26CPUh;\n"
      "        ResNet-152 LIFL 1.9h/4.76CPUh, SF 2.2h/6.81, SL 3.2h/20.4)\n");
  run_workload({"ResNet-18, 120 active mobile clients", resnet18_setup()});
  run_workload({"ResNet-152, 15 active server clients", resnet152_setup()});
  return 0;
}
