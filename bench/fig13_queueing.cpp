// Reproduces Fig. 13 (Appendix F): message-queuing overheads of the four
// designs in Fig. 5 for a single client->aggregator update:
//   SF-mono  — monolithic serverful aggregator with an in-memory queue,
//   SF-micro — stateless serverful microservices behind a message broker,
//   SL-B     — basic serverless: container sidecar + message broker,
//   LIFL     — gateway + in-place queuing in shared memory.
// Metrics: CPU cost, queuing memory (normalized to SF-mono), end-to-end
// delay (client-side excluded). Also quantifies the stateful "tax" (F.1).

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/dataplane/probe.hpp"
#include "src/fl/model_spec.hpp"
#include "src/sim/calibration.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

struct QueueCost {
  double delay = 0;
  double gcycles = 0;
  double mem_bytes = 0;   ///< bytes buffered along the queuing pipeline
  double idle_cores = 0;  ///< stateful always-on draw ("tax", F.1)
};

QueueCost measure(const std::string& which, std::size_t bytes) {
  dp::DataPlaneConfig cfg;
  double idle_cores = 0;
  if (which == "SF-mono") {
    cfg = dp::serverful_plane();
    // The monolith itself is the stateful component: its reservation is the
    // tax (one aggregator process always on).
    idle_cores = 0.10;
  } else if (which == "SF-micro") {
    cfg = dp::serverful_micro_plane();
    idle_cores = sim::calib::kBrokerIdleCores;
  } else if (which == "SL-B") {
    cfg = dp::serverless_plane();
    idle_cores = sim::calib::kBrokerIdleCores +
                 sim::calib::kContainerSidecarIdleCores;
  } else {
    cfg = dp::lifl_plane();
    idle_cores = 0.04;  // the per-node gateway (stateful, but lean)
  }

  sim::Simulator sim;
  sim::Cluster cluster(sim, 1);
  dp::DataPlane plane(cluster, cfg, sim::Rng(42));

  QueueCost out;
  out.idle_cores = idle_cores;
  dp::measure_ingest(plane, 0, bytes, sim::calib::kServerUplinkBytesPerSec,
                     [&](double d) { out.delay = d; });
  sim.run();
  plane.settle_idle_costs();
  out.gcycles = cluster.total_cpu().total_cycles() / 1e9;

  // Queuing memory: every stage that holds the whole payload counts once.
  const auto b = static_cast<double>(bytes);
  if (which == "SF-mono") {
    out.mem_bytes = b;  // the aggregator's in-memory queue
  } else if (which == "SF-micro") {
    out.mem_bytes = b + b;  // broker buffer + aggregator queue
  } else if (which == "SL-B") {
    out.mem_bytes = 3 * b;  // broker + sidecar + aggregator queue
  } else {
    out.mem_bytes = static_cast<double>(plane.env(0).store.stats().peak_bytes);
  }
  return out;
}

}  // namespace

int main() {
  const lifl::bench::BenchMeta meta;
  struct JsonRow {
    std::string model;
    std::string design;
    QueueCost cost;
  };
  std::vector<JsonRow> json_rows;
  const std::vector<std::pair<std::string, fl::ModelSpec>> models = {
      {"M1 (ResNet-18)", fl::models::resnet18()},
      {"M2 (ResNet-34)", fl::models::resnet34()},
      {"M3 (ResNet-152)", fl::models::resnet152()},
  };
  const std::vector<std::string> designs = {"SF-mono", "LIFL", "SF-micro",
                                            "SL-B"};

  std::printf("Fig. 13 — message-queuing overheads of the Fig. 5 designs\n");

  sys::Table cpu({"model", "SF-mono(Gcyc)", "LIFL(Gcyc)", "SF-micro(Gcyc)",
                  "SL-B(Gcyc)"});
  sys::Table mem({"model", "SF-mono", "LIFL", "SF-micro", "SL-B"});
  sys::Table delay({"model", "SF-mono(s)", "LIFL(s)", "SF-micro(s)",
                    "SL-B(s)", "SL-B/LIFL", "SF-micro/LIFL"});

  for (const auto& [name, spec] : models) {
    std::vector<QueueCost> costs;
    for (const auto& d : designs) {
      costs.push_back(measure(d, spec.bytes()));
      json_rows.push_back({name, d, costs.back()});
    }
    const double mono_mem = costs[0].mem_bytes;
    cpu.row({name, sys::fmt(costs[0].gcycles), sys::fmt(costs[1].gcycles),
             sys::fmt(costs[2].gcycles), sys::fmt(costs[3].gcycles)});
    mem.row({name, sys::fmt(costs[0].mem_bytes / mono_mem, 1),
             sys::fmt(costs[1].mem_bytes / mono_mem, 1),
             sys::fmt(costs[2].mem_bytes / mono_mem, 1),
             sys::fmt(costs[3].mem_bytes / mono_mem, 1)});
    delay.row({name, sys::fmt(costs[0].delay), sys::fmt(costs[1].delay),
               sys::fmt(costs[2].delay), sys::fmt(costs[3].delay),
               sys::fmt(costs[3].delay / costs[1].delay, 2),
               sys::fmt(costs[2].delay / costs[1].delay, 2)});
  }

  cpu.print("Fig. 13(a) — CPU cost per queued update "
            "(paper: LIFL ~1.5x less than SL-B, ~1.9x less than SF-micro)");
  mem.print("Fig. 13(b) — queuing memory, normalized to SF-mono "
            "(paper: SL-B ~3x; LIFL ~1x)");
  delay.print("Fig. 13(c) — end-to-end client->aggregator delay "
              "(paper: LIFL ~1.3x/1.7x less than SL-B/SF-micro, "
              "equivalent-class to SF-mono)");

  sys::Table tax({"design", "stateful component", "always-on draw (cores)"});
  tax.row({"SF-mono", "the aggregator monolith", sys::fmt(0.10, 2)});
  tax.row({"SF-micro", "message broker",
           sys::fmt(sim::calib::kBrokerIdleCores, 2)});
  tax.row({"SL-B", "broker + container sidecar",
           sys::fmt(sim::calib::kBrokerIdleCores +
                        sim::calib::kContainerSidecarIdleCores,
                    2)});
  tax.row({"LIFL", "per-node gateway", sys::fmt(0.04, 2)});
  tax.print("F.1 — the stateful \"tax\" (paper: LIFL's is the lowest)");

  FILE* out = std::fopen("BENCH_fig13_queueing.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"fig13_queueing\",\n"
                 "  \"samples\": [\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      std::fprintf(out,
                   "    {\"model\": \"%s\", \"design\": \"%s\", "
                   "\"delay_secs\": %.4f, \"gcycles\": %.4f, "
                   "\"mem_bytes\": %.0f, \"idle_cores\": %.2f}%s\n",
                   r.model.c_str(), r.design.c_str(), r.cost.delay,
                   r.cost.gcycles, r.cost.mem_bytes, r.cost.idle_cores,
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_fig13_queueing.json\n");
  }
  return 0;
}
