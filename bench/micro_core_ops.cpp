// Core-operation microbenchmarks (real measured wall time, not simulated):
// throughput of the primitives everything else is built on —
//   - FedAvg cumulative accumulation over real tensors,
//   - shared-memory object store put/get/release cycles,
//   - sockmap route lookups (the eBPF fast path of Appendix A),
//   - in-place queue push/pop,
//   - the discrete-event simulator's event throughput.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/dataplane/routing.hpp"
#include "src/dataplane/update_pool.hpp"
#include "src/fl/fedavg.hpp"
#include "src/ml/tensor.hpp"
#include "src/shm/object_store.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace lifl;

/// Streaming FedAvg over real float32 parameter vectors: add one update of
/// `range(0)` parameters into the running average.
void BM_FedAvgAccumulate(benchmark::State& state) {
  const auto params = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(3);
  auto update = std::make_shared<const ml::Tensor>(
      ml::Tensor::randn(rng, params, 0.1f));
  fl::FedAvgAccumulator acc;
  acc.add(update, 600);
  for (auto _ : state) {
    acc.add(update, 600);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params) *
                          static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_FedAvgAccumulate)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

/// One producer/consumer shm hand-off: put with one expected consumer, get,
/// release (buffer recycles into the pool).
void BM_ShmStorePutGetRelease(benchmark::State& state) {
  sim::Rng rng(5);
  shm::ObjectStore store{sim::Rng(5)};
  auto payload = std::make_shared<const ml::Tensor>(
      ml::Tensor::randn(rng, 1024, 0.1f));
  for (auto _ : state) {
    const shm::ObjectKey key = store.put(payload, payload->bytes());
    auto read = store.get<ml::Tensor>(key);
    benchmark::DoNotOptimize(read);
    store.release(key);
  }
}
BENCHMARK(BM_ShmStorePutGetRelease);

/// Sockmap route lookup with `range(0)` registered aggregators — the
/// in-kernel hot path every SKMSG delivery takes (Appendix A).
void BM_SockmapLookup(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  dp::Sockmap map;
  for (std::size_t i = 0; i < entries; ++i) {
    map.update_elem(static_cast<fl::ParticipantId>(i + 1),
                    [](fl::ModelUpdate) {});
  }
  fl::ParticipantId probe = 1;
  for (auto _ : state) {
    const auto* fn = map.lookup(probe);
    benchmark::DoNotOptimize(fn);
    probe = probe % entries + 1;
  }
}
BENCHMARK(BM_SockmapLookup)->Arg(16)->Arg(256)->Arg(4096);

/// In-place queue push+pop pair (the object-key FIFO of §4.2).
void BM_UpdatePoolPushPop(benchmark::State& state) {
  sim::Simulator sim;
  dp::UpdatePool pool(sim);
  fl::ModelUpdate u;
  u.logical_bytes = 1000;
  for (auto _ : state) {
    pool.push(u);
    fl::ModelUpdate out;
    const bool ok = pool.try_pop(out);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_UpdatePoolPushPop);

/// Simulator event throughput: schedule + dispatch of `range(0)` events.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_after(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
