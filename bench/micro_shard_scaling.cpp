// Shard-scaling microbench: aggregate event throughput of the sharded
// simulator core vs shard count, on the mega-campaign event mix.
//
// The workload is the group-partitioned million-client campaign
// (src/systems/sharded_campaign): 8 node groups of LIFL data plane + leaf
// hierarchy ingesting a dense client-upload wave (the fan-in regime of
// §5/Fig. 9), with leaf aggregates crossing groups through the
// conservative-window mailboxes. The *same* wiring runs at every shard
// count — results are bitwise identical (tests/sharded_sim_test.cpp) — so
// the sweep isolates pure execution scaling: 1 shard is the single-threaded
// calendar core, K shards run K event loops under time-window barriers.
//
// Emits BENCH_shard_scaling.json, including per-shard barrier accounting
// (windows run, empty windows, idle wall seconds) so a regression in load
// balance shows up in the artifact even when aggregate throughput holds.
// CI uploads it as an artifact and the
// bench fails if 4 shards deliver < 3x the 1-shard events/s — on machines
// with >= 4 hardware threads; on smaller machines the gate is skipped
// (physical parallelism cannot be demonstrated without cores) unless
// LIFL_SHARD_BENCH_GATE=1 forces it. LIFL_SHARD_BENCH_GATE=0 disables it.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/bench/micro_shard_scaling

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/systems/sharded_campaign.hpp"
#include "src/systems/table.hpp"

using namespace lifl;

namespace {

sys::ShardedCampaignConfig bench_campaign(std::size_t shards,
                                          std::size_t scale,
                                          sim::SyncMode sync) {
  sys::ShardedCampaignConfig cfg;
  cfg.shards = shards;
  cfg.groups = 8;
  cfg.rounds = 2;
  cfg.leaves_per_group = 62;
  cfg.updates_per_leaf = static_cast<std::uint32_t>(scale);
  cfg.model_bytes = 100'000;
  cfg.population = 1'000'000;
  // Dense fan-in: the arrival wave saturates the per-node gateways, the
  // regime the sharded core exists for (events per window >> barrier cost).
  cfg.peak_per_sec = 50'000.0;
  cfg.ramp_secs = 1.0;
  cfg.diurnal_amplitude = 0.0;
  cfg.seed = 4242;
  cfg.gateway_cores = 4;
  cfg.gateway_queues = 0;  // one RSS queue per gateway core
  cfg.sync_mode = sync;
  return cfg;
}

const char* sync_name(sim::SyncMode m) {
  switch (m) {
    case sim::SyncMode::kConservative:
      return "conservative";
    case sim::SyncMode::kAdaptive:
      return "adaptive";
    case sim::SyncMode::kOptimistic:
      return "optimistic";
  }
  return "?";
}

struct Sample {
  std::size_t shards = 0;
  sim::SyncMode sync = sim::SyncMode::kConservative;
  std::uint64_t events = 0;
  double wall_secs = 0.0;
  std::uint64_t windows = 0;
  std::uint64_t windows_skipped = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t cross_posts = 0;
  // Per-shard barrier accounting: windows a shard participated in, windows
  // where it had nothing to run, and wall seconds it sat idle at barriers.
  std::vector<std::uint64_t> shard_windows;
  std::vector<std::uint64_t> shard_empty_windows;
  std::vector<double> shard_idle_secs;
  double events_per_sec() const { return events / wall_secs; }
};

Sample run_once(std::size_t shards, std::size_t scale, sim::SyncMode sync) {
  const auto r =
      sys::run_sharded_campaign(bench_campaign(shards, scale, sync));
  Sample s;
  s.shards = shards;
  s.sync = sync;
  s.events = r.events;
  s.wall_secs = r.wall_secs;
  s.windows = r.windows;
  s.windows_skipped = r.windows_skipped;
  s.rollbacks = r.rollbacks;
  s.cross_posts = r.cross_posts;
  s.shard_windows = r.shard_windows;
  s.shard_empty_windows = r.shard_empty_windows;
  s.shard_idle_secs = r.shard_idle_secs;
  return s;
}

/// Best of `reps` (CI runners are noisy; parallel speedups doubly so).
Sample best_of(int reps, std::size_t shards, std::size_t scale,
               sim::SyncMode sync) {
  Sample best = run_once(shards, scale, sync);
  for (int i = 1; i < reps; ++i) {
    const Sample s = run_once(shards, scale, sync);
    if (s.events_per_sec() > best.events_per_sec()) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 100;  // updates per leaf => ~99k uploads total
  if (argc > 1) {
    char* end = nullptr;
    scale = std::strtoul(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || scale == 0) {
      std::fprintf(stderr, "usage: %s [updates_per_leaf > 0]\n", argv[0]);
      return 2;
    }
  }

  const lifl::bench::BenchMeta meta;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "shard-scaling microbench: mega-campaign mix, 8 node groups, "
      "%zu updates/leaf, %u hardware threads\n\n",
      scale, hw);

  // Best-of-3: parallel speedups on shared CI runners are noisy, and the
  // 4-shard sample feeds a hard gate. Multi-shard counts additionally run
  // the adaptive and optimistic sync modes — results are bitwise identical
  // (tests/sync_equivalence_test.cpp), so the deltas are pure barrier cost.
  const std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  const sim::SyncMode modes[] = {sim::SyncMode::kConservative,
                                 sim::SyncMode::kAdaptive,
                                 sim::SyncMode::kOptimistic};
  std::vector<Sample> samples;
  for (const std::size_t k : shard_counts) {
    for (const sim::SyncMode m : modes) {
      if (k == 1 && m != sim::SyncMode::kConservative) {
        continue;  // sync modes are a no-op without barriers
      }
      samples.push_back(best_of(3, k, scale, m));
    }
  }

  const double base = samples[0].events_per_sec();
  sys::Table t({"shards", "sync", "events", "wall(s)", "events/s", "speedup",
                "windows", "skipped", "rollbacks", "cross_posts"});
  for (const auto& s : samples) {
    t.row({std::to_string(s.shards), sync_name(s.sync),
           std::to_string(s.events), sys::fmt(s.wall_secs, 3),
           sys::fmt(s.events_per_sec() / 1e6, 2) + "M",
           sys::fmt(s.events_per_sec() / base, 2) + "x",
           std::to_string(s.windows), std::to_string(s.windows_skipped),
           std::to_string(s.rollbacks), std::to_string(s.cross_posts)});
  }
  t.print("Sharded simulator core: aggregate throughput vs shard count");

  FILE* out = std::fopen("BENCH_shard_scaling.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"shard_scaling\",\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"updates_per_leaf\": %zu,\n"
                 "  \"samples\": [\n",
                 hw, scale);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto& s = samples[i];
      std::fprintf(out,
                   "    {\"shards\": %zu, \"sync\": \"%s\", "
                   "\"events\": %llu, "
                   "\"wall_secs\": %.6f, \"events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"windows\": %llu, "
                   "\"windows_skipped\": %llu, \"rollbacks\": %llu, "
                   "\"cross_posts\": %llu,\n     \"per_shard\": [",
                   s.shards, sync_name(s.sync),
                   static_cast<unsigned long long>(s.events),
                   s.wall_secs, s.events_per_sec(),
                   s.events_per_sec() / base,
                   static_cast<unsigned long long>(s.windows),
                   static_cast<unsigned long long>(s.windows_skipped),
                   static_cast<unsigned long long>(s.rollbacks),
                   static_cast<unsigned long long>(s.cross_posts));
      for (std::size_t p = 0; p < s.shard_windows.size(); ++p) {
        std::fprintf(
            out,
            "%s{\"windows\": %llu, \"empty_windows\": %llu, "
            "\"idle_secs\": %.6f}",
            p == 0 ? "" : ", ",
            static_cast<unsigned long long>(s.shard_windows[p]),
            static_cast<unsigned long long>(s.shard_empty_windows[p]),
            s.shard_idle_secs[p]);
      }
      std::fprintf(out, "]}%s\n", i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_shard_scaling.json\n");
  }

  // ---- gate: >= 3x at 4 shards (best sync mode), where the hardware can
  // express it. The adaptive/optimistic modes exist to push past the
  // barrier ceiling, so the gate holds the best of the three to the floor.
  double speedup4 = 0.0;
  const char* mode4 = "";
  for (const auto& s : samples) {
    if (s.shards == 4 && s.events_per_sec() / base > speedup4) {
      speedup4 = s.events_per_sec() / base;
      mode4 = sync_name(s.sync);
    }
  }
  bool gate = hw >= 4;
  if (const char* env = std::getenv("LIFL_SHARD_BENCH_GATE")) {
    gate = std::strcmp(env, "0") != 0;
  }
  if (!gate) {
    std::printf(
        "gate SKIPPED: %u hardware threads cannot express a 4-shard "
        "speedup (set LIFL_SHARD_BENCH_GATE=1 to force)\n",
        hw);
    return 0;
  }
  if (speedup4 < 3.0) {
    std::fprintf(stderr,
                 "FAIL: 4-shard speedup %.2fx below the 3x floor the "
                 "sharded core is held to\n",
                 speedup4);
    return 1;
  }
  std::printf("gate OK: 4-shard speedup %.2fx (%s sync) >= 3x\n", speedup4,
              mode4);
  return 0;
}
