// Reproduces Fig. 10: time series of the two §6.2 workloads —
//   (a)/(d) arrival rate of model updates per minute,
//   (b)/(e) number of active aggregators over time (SF flat/always-on,
//           SL and LIFL tracking load, LIFL lowest),
//   (c)/(f) cumulative CPU time (seconds) per round (SL highest; LIFL
//           well under SF for the same aggregation work).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/systems/system_config.hpp"
#include "src/systems/table.hpp"
#include "src/systems/training_experiment.hpp"

using namespace lifl;

namespace {

sys::TrainingConfig setup_for(bool resnet18) {
  sys::TrainingConfig cfg;
  if (resnet18) {
    cfg.model = fl::models::resnet18();
    cfg.active_per_round = 120;
    cfg.mobile_clients = true;
    cfg.base_train_secs = sim::calib::kTrainSecsResNet18;
    cfg.curve = ml::AccuracyModel::resnet18_femnist();
  } else {
    cfg.model = fl::models::resnet152();
    cfg.active_per_round = 15;
    cfg.mobile_clients = false;
    cfg.base_train_secs = sim::calib::kTrainSecsResNet152;
    cfg.curve = ml::AccuracyModel::resnet152_femnist();
  }
  cfg.cluster_nodes = 5;
  cfg.population = 2800;
  // Fig. 10 plots the first ~1.5 h of each run.
  cfg.max_hours = 1.5;
  cfg.max_rounds = 100;
  cfg.sample_period_secs = 60.0;
  return cfg;
}

/// Active-aggregator count at time `t` from a sampled series.
std::size_t active_at(
    const std::vector<std::pair<double, std::size_t>>& series, double t) {
  std::size_t last = 0;
  for (const auto& [when, count] : series) {
    if (when > t) break;
    last = count;
  }
  return last;
}

/// Per-system summary row of one workload, for the BENCH JSON.
struct SystemSummary {
  std::string workload;
  std::string system;
  std::size_t rounds = 0;
  double wall_secs = 0.0;
  double cpu_hours = 0.0;
  std::size_t peak_active_aggs = 0;
};

std::vector<SystemSummary> run_workload(const std::string& label,
                                        bool resnet18) {
  const auto cfg = setup_for(resnet18);
  const std::vector<sys::SystemConfig> systems = {
      sys::make_serverful(), sys::make_serverless(), sys::make_lifl()};

  std::vector<sys::TrainingResult> results;
  std::vector<SystemSummary> summaries;
  for (const auto& system : systems) {
    sys::TrainingExperiment exp(system, cfg);
    results.push_back(exp.run());
    const auto& r = results.back();
    SystemSummary s;
    s.workload = label;
    s.system = r.system;
    s.rounds = r.rounds.size();
    s.wall_secs = r.wall_secs;
    s.cpu_hours = r.cpu_hours_total;
    for (const auto& [when, count] : r.active_aggs) {
      (void)when;
      s.peak_active_aggs = std::max(s.peak_active_aggs, count);
    }
    summaries.push_back(s);
  }

  // (a)/(d) Arrival rate per minute — workload property, shown once (LIFL's
  // run; all systems see statistically identical client behavior).
  {
    const auto& bins = results.back().arrivals_per_min;
    sys::Table t({"minute", "updates/min"});
    for (std::size_t i = 0; i < bins.size(); ++i) {
      t.row({std::to_string(i), std::to_string(bins[i])});
    }
    t.print("Fig. 10 — " + label + " arrival rate per minute" +
            (resnet18 ? " (mobile: bursty)" : " (server: stable)"));
  }

  // (b)/(e) Active aggregators sampled every 5 minutes.
  {
    double horizon = 0.0;
    for (const auto& r : results) horizon = std::max(horizon, r.wall_secs);
    sys::Table t({"t(min)", results[0].system, results[1].system,
                  results[2].system});
    for (double ts = 0.0; ts <= horizon; ts += 300.0) {
      t.row({sys::fmt(ts / 60.0, 0),
             std::to_string(active_at(results[0].active_aggs, ts)),
             std::to_string(active_at(results[1].active_aggs, ts)),
             std::to_string(active_at(results[2].active_aggs, ts))});
    }
    t.print("Fig. 10 — " + label +
            " active aggregators over time (SF flat; LIFL lowest)");
  }

  // (c)/(f) Cumulative CPU seconds per round.
  {
    std::size_t rounds = 0;
    for (const auto& r : results) rounds = std::max(rounds, r.rounds.size());
    sys::Table t({"round", results[0].system + " cpu(s)",
                  results[1].system + " cpu(s)",
                  results[2].system + " cpu(s)"});
    const std::size_t step = rounds > 16 ? rounds / 16 : 1;
    for (std::size_t i = 0; i < rounds; i += step) {
      std::vector<std::string> row{std::to_string(i + 1)};
      for (const auto& r : results) {
        row.push_back(i < r.rounds.size() ? sys::fmt(r.rounds[i].cpu_secs, 1)
                                          : "");
      }
      t.row(row);
    }
    t.print("Fig. 10 — " + label +
            " cumulative CPU time (s) per round (SL highest)");
  }
  return summaries;
}

}  // namespace

int main() {
  const lifl::bench::BenchMeta meta;
  std::printf(
      "Fig. 10 — time series: arrival rate, active aggregators, CPU/round\n");
  std::vector<SystemSummary> all = run_workload("ResNet-18", true);
  const auto heavy = run_workload("ResNet-152", false);
  all.insert(all.end(), heavy.begin(), heavy.end());

  FILE* out = std::fopen("BENCH_fig10_timeseries.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    meta.write_json_fields(out);
    std::fprintf(out,
                 "  \"bench\": \"fig10_timeseries\",\n"
                 "  \"systems\": [\n");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const SystemSummary& s = all[i];
      std::fprintf(out,
                   "    {\"workload\": \"%s\", \"system\": \"%s\", "
                   "\"rounds\": %zu, \"sim_wall_secs\": %.1f, "
                   "\"cpu_hours\": %.3f, \"peak_active_aggs\": %zu}%s\n",
                   s.workload.c_str(), s.system.c_str(), s.rounds,
                   s.wall_secs, s.cpu_hours, s.peak_active_aggs,
                   i + 1 < all.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_fig10_timeseries.json\n");
  }
  return 0;
}
