#!/usr/bin/env python3
"""Documentation consistency checks (the CI `docs` job).

1. Every repo-relative markdown link in the checked documents resolves to
   an existing file or directory (anchors and external URLs are ignored).
2. Every bench target (`bench/*.cpp`) is mentioned in docs/BENCHMARKS.md,
   so the bench catalogue cannot silently drift from the tree.

Exits non-zero with one line per violation.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = [
    REPO / "README.md",
    REPO / "docs" / "ARCHITECTURE.md",
    REPO / "docs" / "BENCHMARKS.md",
]

# [text](target) — excluding images and in-page/external targets.
LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")


def check_links(doc: pathlib.Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}:{lineno}: broken link "
                    f"'{target}' -> {resolved}"
                )
    return errors


def check_bench_catalogue() -> list[str]:
    benchmarks_md = (REPO / "docs" / "BENCHMARKS.md").read_text()
    errors = []
    for src in sorted((REPO / "bench").glob("*.cpp")):
        if src.stem not in benchmarks_md:
            errors.append(
                f"docs/BENCHMARKS.md: bench target '{src.stem}' "
                f"(bench/{src.name}) is not documented"
            )
    return errors


def main() -> int:
    errors = []
    for doc in DOCS:
        if not doc.exists():
            errors.append(f"missing document: {doc.relative_to(REPO)}")
            continue
        errors.extend(check_links(doc))
    errors.extend(check_bench_catalogue())
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"docs OK: {len(DOCS)} documents, links resolve, "
              "bench catalogue complete")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
