#!/usr/bin/env python3
"""Summarize a campaign trace exported by write_campaign_trace.

Reads the Chrome trace-event JSON (the file you would load in Perfetto)
and prints, per track, a table of event kinds: span counts with total /
mean / max sim-time duration, and instant counts. Also reports the ring
drop accounting from the exporter's otherData block.

Stdlib only. Usage:

    python3 tools/trace_summary.py trace.json [--kind KIND] [--track NAME]
"""

import argparse
import json
import sys
from collections import defaultdict


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def track_names(events):
    """Map (pid, tid) -> 'process/thread' from the metadata events."""
    procs, threads = {}, {}
    for e in events:
        if e.get("ph") != "M":
            continue
        key = (e["pid"], e["tid"])
        if e["name"] == "process_name":
            procs[e["pid"]] = e["args"]["name"]
        elif e["name"] == "thread_name":
            threads[key] = e["args"]["name"]
    names = {}
    for (pid, tid), tname in threads.items():
        names[(pid, tid)] = f"{procs.get(pid, pid)}/{tname}"
    return names


class KindStats:
    __slots__ = ("spans", "instants", "total_us", "max_us")

    def __init__(self):
        self.spans = 0
        self.instants = 0
        self.total_us = 0.0
        self.max_us = 0.0

    def add(self, event):
        if event.get("ph") == "X":
            self.spans += 1
            dur = float(event.get("dur", 0.0))
            self.total_us += dur
            self.max_us = max(self.max_us, dur)
        else:
            self.instants += 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace JSON written by --trace/write_campaign_trace")
    ap.add_argument("--kind", help="only this event kind (e.g. round, agg_fold)")
    ap.add_argument("--track", help="only tracks whose name contains this substring")
    args = ap.parse_args()

    doc = load(args.trace)
    events = doc.get("traceEvents", [])
    names = track_names(events)

    # (track_name, kind) -> stats
    stats = defaultdict(KindStats)
    t_min, t_max = float("inf"), float("-inf")
    for e in events:
        if e.get("ph") not in ("X", "i"):
            continue
        track = names.get((e["pid"], e["tid"]), f"{e['pid']}/{e['tid']}")
        if args.track and args.track not in track:
            continue
        if args.kind and e["name"] != args.kind:
            continue
        stats[(track, e["name"])].add(e)
        ts = float(e["ts"])
        t_min = min(t_min, ts)
        t_max = max(t_max, ts + max(0.0, float(e.get("dur", 0.0))))

    if not stats:
        print("no matching events")
        return 1

    rows = [("track", "kind", "spans", "instants", "total(s)", "mean(s)", "max(s)")]
    for (track, kind), s in sorted(stats.items()):
        mean = s.total_us / s.spans if s.spans else 0.0
        rows.append(
            (
                track,
                kind,
                str(s.spans),
                str(s.instants),
                f"{s.total_us / 1e6:.3f}",
                f"{mean / 1e6:.4f}",
                f"{s.max_us / 1e6:.4f}",
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    for i, r in enumerate(rows):
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))

    total = sum(s.spans + s.instants for s in stats.values())
    print(
        f"\n{total} events across {len({t for t, _ in stats})} tracks, "
        f"sim-time window [{t_min / 1e6:.3f}s, {t_max / 1e6:.3f}s]"
    )
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    if dropped:
        print(
            f"WARNING: {dropped} events dropped by full rings "
            "(raise --trace-ring-kb)"
        )
    else:
        print("no ring drops")
    return 0


if __name__ == "__main__":
    sys.exit(main())
