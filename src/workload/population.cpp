#include "src/workload/population.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lifl::wl {

namespace calib = lifl::sim::calib;

ClientPopulation ClientPopulation::synthetic(std::size_t count, bool mobile,
                                             sim::Rng& rng,
                                             fl::ParticipantId first_id) {
  ClientPopulation pop;
  pop.clients_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ClientProfile c;
    c.id = first_id + i;
    // Lognormal heterogeneity: most clients near nominal speed, a tail of
    // slow stragglers (sigma larger for mobile devices).
    const double sigma = mobile ? 0.45 : 0.2;
    c.speed = std::clamp(rng.lognormal(0.0, sigma), 0.25, 4.0);
    // Dataset sizes: lognormal around ~600 samples (FEMNIST-like shards).
    c.samples = static_cast<std::uint32_t>(
        std::clamp(rng.lognormal(std::log(600.0), 0.5), 50.0, 5000.0));
    c.mobile = mobile;
    c.uplink_bytes_per_sec = mobile ? calib::kClientUplinkBytesPerSec
                                    : calib::kServerUplinkBytesPerSec;
    pop.clients_.push_back(c);
  }
  return pop;
}

std::vector<std::size_t> ClientPopulation::sample(std::size_t k,
                                                  sim::Rng& rng) const {
  k = std::min(k, clients_.size());
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(clients_.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_index(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

double ClientPopulation::round_delay_secs(const ClientProfile& c,
                                          double base_train_secs,
                                          sim::Rng& rng) {
  double delay = 0.0;
  if (c.mobile) {
    // §6.2: mobile clients hibernate for a random interval in [0, 60] s,
    // emulating dynamic availability.
    delay += rng.uniform(0.0, calib::kHibernateMaxSecs);
  }
  const double jitter =
      std::max(0.1, rng.normal(1.0, calib::kTrainTimeJitter));
  delay += base_train_secs / c.speed * jitter;
  return delay;
}

}  // namespace lifl::wl
