#include "src/workload/population.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace lifl::wl {

namespace calib = lifl::sim::calib;

ClientPopulation ClientPopulation::synthetic(std::size_t count, bool mobile,
                                             sim::Rng& rng,
                                             fl::ParticipantId first_id) {
  ClientPopulation pop;
  pop.count_ = count;
  pop.mobile_ = mobile;
  pop.first_id_ = first_id;
  // Derive an independent root stream, consuming one draw from the caller
  // so successive populations built from the same rng (e.g. the §6.2
  // mobile/server split) get decorrelated profile streams.
  pop.base_ = rng.split(rng.next_u64());
  return pop;
}

ClientPopulation ClientPopulation::tiered(std::size_t count,
                                          const TierMix& mix, sim::Rng& rng,
                                          fl::ParticipantId first_id) {
  ClientPopulation pop = synthetic(count, /*mobile=*/true, rng, first_id);
  pop.tiered_ = true;
  // Contiguous tier layout from rounded shares; IoT absorbs the remainder.
  pop.n_flagship_ = std::min(
      count, static_cast<std::size_t>(
                 std::llround(mix.flagship * static_cast<double>(count))));
  pop.n_mid_ = std::min(
      count - pop.n_flagship_,
      static_cast<std::size_t>(
          std::llround(mix.mid * static_cast<double>(count))));
  return pop;
}

ClientProfile ClientPopulation::operator[](std::size_t i) const {
  sim::Rng r = base_.split(i);
  ClientProfile c;
  c.id = first_id_ + i;
  if (tiered_) {
    // Tiered profile: distributions come from the device-class trait table.
    // The draw order (speed, then samples) matches the legacy path, so a
    // {0,1,0} mix is bitwise-identical to the legacy mobile population.
    c.tier = tier_of(i);
    const TierTraits& tt = tier_traits(c.tier);
    c.speed = std::clamp(r.lognormal(tt.speed_mu, tt.speed_sigma),
                         tt.speed_lo, tt.speed_hi);
    c.samples = static_cast<std::uint32_t>(std::clamp(
        r.lognormal(tt.samples_mu, tt.samples_sigma), tt.samples_lo,
        tt.samples_hi));
    // Flagship devices are effectively always-on (no hibernation draw);
    // mid-range and IoT keep the §6.2 mobile availability behavior.
    c.mobile = c.tier != DeviceTier::kFlagship;
    c.uplink_bytes_per_sec = tt.uplink_bytes_per_sec;
    return c;
  }
  // Lognormal heterogeneity: most clients near nominal speed, a tail of
  // slow stragglers (sigma larger for mobile devices).
  const double sigma = mobile_ ? 0.45 : 0.2;
  c.speed = std::clamp(r.lognormal(0.0, sigma), 0.25, 4.0);
  // Dataset sizes: lognormal around ~600 samples (FEMNIST-like shards).
  c.samples = static_cast<std::uint32_t>(
      std::clamp(r.lognormal(std::log(600.0), 0.5), 50.0, 5000.0));
  c.mobile = mobile_;
  c.uplink_bytes_per_sec = mobile_ ? calib::kClientUplinkBytesPerSec
                                   : calib::kServerUplinkBytesPerSec;
  return c;
}

std::vector<std::size_t> ClientPopulation::sample(std::size_t k,
                                                  sim::Rng& rng) const {
  k = std::min(k, count_);
  // Floyd's sampling without replacement: uniform k-subset in O(k) memory,
  // with no index vector over the (possibly million-client) population.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  for (std::size_t j = count_ - k; j < count_; ++j) {
    const auto t = static_cast<std::size_t>(rng.uniform_index(j + 1));
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

double ClientPopulation::round_delay_secs(const ClientProfile& c,
                                          double base_train_secs,
                                          sim::Rng& rng) {
  double delay = 0.0;
  if (c.mobile) {
    // §6.2: mobile clients hibernate for a random interval in [0, 60] s,
    // emulating dynamic availability.
    delay += rng.uniform(0.0, calib::kHibernateMaxSecs);
  }
  const double jitter =
      std::max(0.1, rng.normal(1.0, calib::kTrainTimeJitter));
  delay += base_train_secs / c.speed * jitter;
  return delay;
}

double ArrivalProcess::rate(double t) const noexcept {
  if (t < 0) return 0.0;
  double r = cfg_.peak_per_sec;
  if (cfg_.ramp_secs > 0 && t < cfg_.ramp_secs) r *= t / cfg_.ramp_secs;
  if (cfg_.diurnal_amplitude > 0) {
    r *= 1.0 + cfg_.diurnal_amplitude *
                   std::sin(2.0 * M_PI * t / cfg_.diurnal_period_secs);
  }
  return std::max(0.0, r);
}

double ArrivalProcess::next_after(double t, sim::Rng& rng) const {
  // Lewis-Shedler thinning against the envelope rate. The envelope is tight
  // (peak * (1 + amplitude)), so the expected number of rejections per
  // arrival is a small constant.
  const double envelope = cfg_.peak_per_sec * (1.0 + cfg_.diurnal_amplitude);
  for (;;) {
    t += rng.exponential(envelope);
    if (rng.uniform() * envelope <= rate(t)) return t;
  }
}

}  // namespace lifl::wl
