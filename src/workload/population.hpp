#pragma once

#include <cstdint>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/random.hpp"

namespace lifl::wl {

/// One FL client as the platform sees it (FedScale-style heterogeneous
/// population, §6.2).
struct ClientProfile {
  fl::ParticipantId id = 0;
  /// Relative compute speed (1.0 = nominal); training time divides by this.
  double speed = 1.0;
  /// Local dataset size (FedAvg weight c_k).
  std::uint32_t samples = 0;
  /// Mobile clients hibernate before training (§6.2 ResNet-18 setup);
  /// server clients are always-on (§6.2 ResNet-152 setup).
  bool mobile = false;
  /// Upload bandwidth to the cluster ingress.
  double uplink_bytes_per_sec = sim::calib::kServerUplinkBytesPerSec;
};

/// A synthetic client population standing in for FedScale's 2,800 real
/// clients: lognormal compute speeds and dataset sizes, plus the
/// mobile/server availability split of §6.2.
class ClientPopulation {
 public:
  /// Build `count` clients. Mobile clients get mobile-grade uplinks and the
  /// hibernation behavior; ids start at `first_id`.
  static ClientPopulation synthetic(std::size_t count, bool mobile,
                                    sim::Rng& rng,
                                    fl::ParticipantId first_id = 1'000'000);

  const ClientProfile& operator[](std::size_t i) const { return clients_[i]; }
  std::size_t size() const noexcept { return clients_.size(); }

  /// Sample `k` distinct client indices (the selector's diversity draw).
  std::vector<std::size_t> sample(std::size_t k, sim::Rng& rng) const;

  /// Per-round client latency: hibernation (mobile only) + local training,
  /// with heterogeneity from the profile's speed and multiplicative jitter.
  static double round_delay_secs(const ClientProfile& c,
                                 double base_train_secs, sim::Rng& rng);

 private:
  std::vector<ClientProfile> clients_;
};

/// Bins events into fixed windows — the arrival-rate-per-minute series of
/// Fig. 10(a)/(d).
class ArrivalTracker {
 public:
  explicit ArrivalTracker(double bin_secs = 60.0) : bin_secs_(bin_secs) {}

  void record(double t_secs) {
    const auto bin = static_cast<std::size_t>(t_secs / bin_secs_);
    if (bins_.size() <= bin) bins_.resize(bin + 1, 0);
    ++bins_[bin];
    ++total_;
  }

  const std::vector<std::uint32_t>& bins() const noexcept { return bins_; }
  std::uint64_t total() const noexcept { return total_; }
  double bin_secs() const noexcept { return bin_secs_; }

 private:
  double bin_secs_;
  std::vector<std::uint32_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace lifl::wl
