#pragma once

#include <cstdint>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/random.hpp"
#include "src/workload/device_tier.hpp"

namespace lifl::wl {

/// One FL client as the platform sees it (FedScale-style heterogeneous
/// population, §6.2).
struct ClientProfile {
  fl::ParticipantId id = 0;
  /// Relative compute speed (1.0 = nominal); training time divides by this.
  double speed = 1.0;
  /// Local dataset size (FedAvg weight c_k).
  std::uint32_t samples = 0;
  /// Mobile clients hibernate before training (§6.2 ResNet-18 setup);
  /// server clients are always-on (§6.2 ResNet-152 setup).
  bool mobile = false;
  /// Upload bandwidth to the cluster ingress.
  double uplink_bytes_per_sec = sim::calib::kServerUplinkBytesPerSec;
  /// Device class (meaningful only for tiered populations; legacy
  /// synthetic populations report every client as mid-range).
  DeviceTier tier = DeviceTier::kMidRange;
};

/// A synthetic client population standing in for FedScale's real clients:
/// lognormal compute speeds and dataset sizes, plus the mobile/server
/// availability split of §6.2.
///
/// Profiles are *lazy*: the population stores only its parameters and an RNG
/// root, and `operator[]` derives client `i`'s profile from an independent
/// per-index RNG stream. A 1M-client campaign therefore holds O(1) memory
/// per population and O(active clients) in flight, never a resident vector
/// of one million `ClientProfile`s.
class ClientPopulation {
 public:
  ClientPopulation() = default;

  /// Describe `count` clients. Mobile clients get mobile-grade uplinks and
  /// the hibernation behavior; ids start at `first_id`.
  static ClientPopulation synthetic(std::size_t count, bool mobile,
                                    sim::Rng& rng,
                                    fl::ParticipantId first_id = 1'000'000);

  /// Describe `count` clients split into flagship / mid-range / IoT device
  /// classes per `mix` (shares must sum to ~1). Tiers occupy contiguous
  /// index ranges — flagship first, then mid-range, then IoT — so
  /// tier-of-index and uniform-within-tier draws are O(1) arithmetic.
  /// Profiles stay lazy exactly like `synthetic`.
  static ClientPopulation tiered(std::size_t count, const TierMix& mix,
                                 sim::Rng& rng,
                                 fl::ParticipantId first_id = 1'000'000);

  /// Client `i`'s profile, computed on demand (deterministic per index).
  ClientProfile operator[](std::size_t i) const;
  std::size_t size() const noexcept { return count_; }

  bool tiered() const noexcept { return tiered_; }
  /// Device class of index `i`. Untiered populations report every client
  /// as mid-range (matching the profile's default tier).
  DeviceTier tier_of(std::size_t i) const noexcept {
    if (!tiered_) return DeviceTier::kMidRange;
    if (i < n_flagship_) return DeviceTier::kFlagship;
    if (i < n_flagship_ + n_mid_) return DeviceTier::kMidRange;
    return DeviceTier::kIoT;
  }
  /// First index of tier `t`'s contiguous range.
  std::size_t tier_begin(DeviceTier t) const noexcept {
    if (!tiered_) return 0;
    switch (t) {
      case DeviceTier::kFlagship:
        return 0;
      case DeviceTier::kMidRange:
        return n_flagship_;
      case DeviceTier::kIoT:
        return n_flagship_ + n_mid_;
    }
    return count_;
  }
  std::size_t tier_count(DeviceTier t) const noexcept {
    if (!tiered_) return t == DeviceTier::kMidRange ? count_ : 0;
    switch (t) {
      case DeviceTier::kFlagship:
        return n_flagship_;
      case DeviceTier::kMidRange:
        return n_mid_;
      case DeviceTier::kIoT:
        return count_ - n_flagship_ - n_mid_;
    }
    return 0;
  }

  /// Sample `k` distinct client indices (the selector's diversity draw).
  /// O(k) time and memory (Floyd's algorithm), independent of `size()`.
  std::vector<std::size_t> sample(std::size_t k, sim::Rng& rng) const;

  /// Per-round client latency: hibernation (mobile only) + local training,
  /// with heterogeneity from the profile's speed and multiplicative jitter.
  static double round_delay_secs(const ClientProfile& c,
                                 double base_train_secs, sim::Rng& rng);

 private:
  std::size_t count_ = 0;
  bool mobile_ = false;
  fl::ParticipantId first_id_ = 0;
  sim::Rng base_{0};  ///< root of the per-client profile streams
  bool tiered_ = false;
  std::size_t n_flagship_ = 0;  ///< indices [0, n_flagship_)
  std::size_t n_mid_ = 0;       ///< indices [n_flagship_, n_flagship_+n_mid_)
};

/// Arrival-process generator for open-loop campaign traffic: a
/// nonhomogeneous Poisson process whose rate ramps up linearly over
/// `ramp_secs` and then oscillates with a diurnal wave,
///
///   rate(t) = peak_per_sec * min(1, t/ramp) *
///             (1 + diurnal_amplitude * sin(2*pi*t/diurnal_period)).
///
/// Campaigns pull one arrival time at a time (Lewis-Shedler thinning), so a
/// million-client workload keeps a single pending arrival event rather than
/// pre-materializing the full schedule.
class ArrivalProcess {
 public:
  struct Config {
    double peak_per_sec = 100.0;     ///< plateau arrival rate
    double ramp_secs = 0.0;          ///< linear warm-up to the plateau
    double diurnal_amplitude = 0.0;  ///< in [0, 1); 0 = flat plateau
    double diurnal_period_secs = 86'400.0;
  };

  explicit ArrivalProcess(Config cfg) : cfg_(cfg) {}

  /// Instantaneous arrival rate at time `t`.
  double rate(double t) const noexcept;

  /// Next arrival strictly after time `t` (thinning against the peak rate).
  double next_after(double t, sim::Rng& rng) const;

  const Config& config() const noexcept { return cfg_; }

 private:
  Config cfg_;
};

/// Bins events into fixed windows — the arrival-rate-per-minute series of
/// Fig. 10(a)/(d).
class ArrivalTracker {
 public:
  explicit ArrivalTracker(double bin_secs = 60.0) : bin_secs_(bin_secs) {}

  void record(double t_secs) {
    const auto bin = static_cast<std::size_t>(t_secs / bin_secs_);
    if (bins_.size() <= bin) bins_.resize(bin + 1, 0);
    ++bins_[bin];
    ++total_;
  }

  const std::vector<std::uint32_t>& bins() const noexcept { return bins_; }
  std::uint64_t total() const noexcept { return total_; }
  double bin_secs() const noexcept { return bin_secs_; }

 private:
  double bin_secs_;
  std::vector<std::uint32_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace lifl::wl
