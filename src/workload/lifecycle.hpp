#pragma once

#include <algorithm>
#include <cstdint>

#include "src/sim/random.hpp"
#include "src/workload/device_tier.hpp"

namespace lifl::wl {

// ---------------------------------------------------------------------------
// Firmware-grade client state machine (idle → training → uploading →
// offline → resuming → done), table-driven like an embedded OCPP stack:
// the transition table is the single source of truth, every driver walks
// it, and an event that has no row is a hard protocol error rather than a
// silent fallthrough.
// ---------------------------------------------------------------------------

#define LIFL_FOREACH_CLIENT_STATE(X) \
  X(kIdle, "idle")                   \
  X(kTraining, "training")           \
  X(kUploading, "uploading")         \
  X(kOffline, "offline")             \
  X(kResuming, "resuming")           \
  X(kDone, "done")

enum class ClientState : std::uint8_t {
#define LIFL_STATE_ENUM(name, str) name,
  LIFL_FOREACH_CLIENT_STATE(LIFL_STATE_ENUM)
#undef LIFL_STATE_ENUM
      kCount  ///< sentinel: also the "invalid transition" result
};

inline const char* client_state_name(ClientState s) noexcept {
  switch (s) {
#define LIFL_STATE_NAME(name, str) \
  case ClientState::name:          \
    return str;
    LIFL_FOREACH_CLIENT_STATE(LIFL_STATE_NAME)
#undef LIFL_STATE_NAME
    default:
      return "?";
  }
}

enum class ClientEvent : std::uint8_t {
  kSelected,    ///< the selector picked the client for a round
  kTrained,     ///< local training finished; the update is ready to ship
  kChunkAcked,  ///< the gateway acked one upload chunk
  kDisconnect,  ///< the session died mid-upload (radio loss, battery)
  kReconnect,   ///< the device came back online with a parked update
  kComplete,    ///< the final chunk acked; the update is fully delivered
  kCount
};

/// The transition table. `ClientState::kCount` marks an invalid (state,
/// event) pair. A disconnect always parks the client offline; a reconnect
/// always re-enters through kResuming (the re-send of the partially
/// transmitted chunk); only kComplete reaches kDone.
inline ClientState client_transition(ClientState s, ClientEvent e) noexcept {
  constexpr auto X = ClientState::kCount;  // invalid
  using S = ClientState;
  // Rows: state. Columns: kSelected, kTrained, kChunkAcked, kDisconnect,
  // kReconnect, kComplete.
  static constexpr ClientState kTable[6][6] = {
      /* kIdle      */ {S::kTraining, X, X, X, X, X},
      /* kTraining  */ {X, S::kUploading, X, X, X, X},
      /* kUploading */ {X, X, S::kUploading, S::kOffline, X, S::kDone},
      /* kOffline   */ {X, X, X, X, S::kResuming, X},
      /* kResuming  */ {X, X, S::kUploading, S::kOffline, X, S::kDone},
      /* kDone      */ {X, X, X, X, X, X},
  };
  if (s >= S::kCount || e >= ClientEvent::kCount) return X;
  return kTable[static_cast<std::size_t>(s)][static_cast<std::size_t>(e)];
}

// ---------------------------------------------------------------------------
// LifecyclePlan: the deterministic session-behavior schedule.
// ---------------------------------------------------------------------------

/// Seeded, stateless schedule of client-session behavior: mid-upload
/// disconnects, offline durations, partial-chunk fractions and
/// connectivity/charging gate delays. Like `sim::FaultPlan`, the plan holds
/// no mutable state — every decision is a pure function of the plan seed
/// and group-local identifiers (group, upload sequence, session attempt),
/// each draw seeding a fresh `Rng` from a SplitMix-style hash. K-shard runs
/// therefore stay bitwise equal and checkpoint replay re-derives the
/// identical session schedule with nothing serialized.
class LifecyclePlan {
 public:
  struct Config {
    std::uint64_t seed = 1u;

    /// Per-session-attempt probability of a mid-upload disconnect, scaled
    /// by the client tier's `disconnect_scale` (clamped below 1 so every
    /// session terminates with probability 1). 0 disables disconnects.
    double disconnect_rate = 0.0;
    /// Resumable-upload chunk size in bytes: the gateway acks per chunk and
    /// a reconnecting client resumes from the last acked offset.
    std::size_t chunk_bytes = 25'000;
    /// Bound on each client's offline queue: a client already holding this
    /// many live upload sessions is skipped (deterministic re-draw) until
    /// one drains — parked updates can never exceed the cap.
    std::size_t offline_queue_cap = 4;

    // ---- offline duration: capped exponential backoff + jitter ----------
    double offline_base_secs = 0.5;
    double offline_cap_secs = 30.0;
    double offline_jitter = 0.25;

    // ---- connectivity / battery duty cycles -----------------------------
    /// Gate upload starts on the tier's connect/charge windows (hibernating
    /// IoT radios, battery-charging gates). Off by default.
    bool session_gates = false;
    double connect_period_secs = 60.0;
    double charge_period_secs = 240.0;

    bool enabled() const noexcept {
      return disconnect_rate > 0.0 || session_gates;
    }
  };

  LifecyclePlan() = default;
  explicit LifecyclePlan(Config cfg) : cfg_(cfg) {}

  const Config& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled(); }

  /// Which chunk of session attempt `attempt` dies mid-transmission:
  /// 0 = the attempt completes, else k in [1, chunks_left] — the k-th chunk
  /// this attempt sends is cut short and never acked. `rate_scale` is the
  /// client tier's disconnect multiplier.
  std::uint32_t disconnect_chunk(std::uint64_t group, std::uint64_t seq,
                                 std::uint64_t attempt,
                                 std::uint64_t chunks_left,
                                 double rate_scale) const noexcept {
    if (cfg_.disconnect_rate <= 0.0 || chunks_left == 0) return 0;
    const double rate =
        std::min(0.95, cfg_.disconnect_rate * std::max(0.0, rate_scale));
    sim::Rng r(key(0xd15cull, group, seq, attempt));
    if (r.uniform() >= rate) return 0;
    return static_cast<std::uint32_t>(1 + r.uniform_index(chunks_left));
  }

  /// Fraction of the dying chunk that was on the wire before the session
  /// dropped, in [0, 1). The client re-sends the whole chunk on resume, so
  /// this fraction is billed twice — partial-chunk re-send, never a
  /// double-counted sample.
  double partial_fraction(std::uint64_t group, std::uint64_t seq,
                          std::uint64_t attempt) const noexcept {
    sim::Rng r(key(0xf2acull, group, seq, attempt));
    return r.uniform();
  }

  /// Offline duration before the reconnect of session attempt `attempt`:
  /// min(base * 2^attempt, cap) * (1 + jitter * u) — capped deterministic
  /// backoff with per-session jitter, so reconnect storms de-synchronize.
  double offline_secs(std::uint64_t group, std::uint64_t seq,
                      std::uint64_t attempt) const noexcept {
    const double exp =
        cfg_.offline_base_secs *
        static_cast<double>(1ull << std::min<std::uint64_t>(attempt, 32));
    double d = std::min(exp, cfg_.offline_cap_secs);
    if (cfg_.offline_jitter > 0.0) {
      sim::Rng r(key(0x0ffull, group, seq, attempt));
      d *= 1.0 + cfg_.offline_jitter * r.uniform();
    }
    return d;
  }

  /// Seconds from `now` until client `client`'s next window where it is
  /// both connected and (for battery-gated tiers) charging — 0 if both
  /// gates are open now. Each client gets a deterministic hash-derived
  /// phase per cycle, so the fleet's windows interleave instead of
  /// thundering. Pure in (seed, group, client, tier, now): shard-invariant
  /// and replay-safe.
  double gate_delay(std::uint64_t group, std::uint64_t client, DeviceTier tier,
                    double now) const noexcept {
    if (!cfg_.session_gates) return 0.0;
    const TierTraits& tt = tier_traits(tier);
    double t = now;
    // Iterate until a time satisfies both windows; the windows overlap
    // within a few cycles for any open fractions > 0, but bound the walk.
    for (int i = 0; i < 16; ++i) {
      const double cw = window_wait(key(0xc0ddull, group, client, 0), t,
                                    cfg_.connect_period_secs, tt.online_frac);
      if (cw > 0.0) {
        t += cw;
        continue;
      }
      const double bw = window_wait(key(0xba77ull, group, client, 0), t,
                                    cfg_.charge_period_secs, tt.charge_frac);
      if (bw > 0.0) {
        t += bw;
        continue;
      }
      break;
    }
    return t - now;
  }

 private:
  /// Wait until the periodic window (phase-shifted per client, open for
  /// `frac` of each `period`) is next open at or after time `t`.
  static double window_wait(std::uint64_t phase_key, double t, double period,
                            double frac) noexcept {
    if (frac >= 1.0 || period <= 0.0) return 0.0;
    sim::Rng r(phase_key);
    const double phase = r.uniform() * period;
    const double pos = std::fmod(t + phase, period);
    const double open = frac * period;
    return pos < open ? 0.0 : period - pos;
  }

  /// SplitMix64-style key mix: seed + tagged identifiers -> Rng seed.
  std::uint64_t key(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) const noexcept {
    std::uint64_t x = cfg_.seed;
    for (std::uint64_t v : {tag, a, b, c}) {
      x ^= v + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 29;
    }
    return x;
  }

  Config cfg_;
};

}  // namespace lifl::wl
