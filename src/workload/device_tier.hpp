#pragma once

#include <cstddef>
#include <cstdint>

namespace lifl::wl {

/// Edge-device class of a client (compute + uplink + availability). The
/// X-macro keeps the enum, its printable names and its count in lockstep —
/// the same table-driven idiom as the firmware state machines this
/// lifecycle is modeled on.
#define LIFL_FOREACH_DEVICE_TIER(X) \
  X(kFlagship, "flagship")          \
  X(kMidRange, "mid-range")         \
  X(kIoT, "iot")

enum class DeviceTier : std::uint8_t {
#define LIFL_TIER_ENUM(name, str) name,
  LIFL_FOREACH_DEVICE_TIER(LIFL_TIER_ENUM)
#undef LIFL_TIER_ENUM
};

inline constexpr std::size_t kTierCount = 3;

inline const char* tier_name(DeviceTier t) noexcept {
  switch (t) {
#define LIFL_TIER_NAME(name, str) \
  case DeviceTier::name:          \
    return str;
    LIFL_FOREACH_DEVICE_TIER(LIFL_TIER_NAME)
#undef LIFL_TIER_NAME
  }
  return "?";
}

/// Population shares of the three tiers. All-zero (the default) means the
/// population is not tiered (the legacy synthetic profiles). Shares must
/// sum to ~1 when enabled; `ClientPopulation::tiered` lays the tiers out in
/// contiguous index ranges so tier-of-index and uniform-within-tier draws
/// stay O(1) with no hashing or rejection.
struct TierMix {
  double flagship = 0.0;
  double mid = 0.0;
  double iot = 0.0;

  bool enabled() const noexcept { return flagship + mid + iot > 0.0; }
  double share(DeviceTier t) const noexcept {
    switch (t) {
      case DeviceTier::kFlagship:
        return flagship;
      case DeviceTier::kMidRange:
        return mid;
      case DeviceTier::kIoT:
        return iot;
    }
    return 0.0;
  }
};

/// Per-tier profile distributions and session behavior. Speeds and dataset
/// sizes are lognormal like the legacy synthetic profiles; uplinks and
/// duty cycles separate the tiers: a flagship phone uploads a 100 KB
/// update in ~4 ms and is almost always reachable, an IoT node takes ~70 ms
/// on a constrained radio, sleeps on a connectivity duty cycle and only
/// uploads while its battery gate (charging window) is open.
struct TierTraits {
  double speed_mu;        ///< lognormal log-mean of relative compute speed
  double speed_sigma;
  double speed_lo;
  double speed_hi;
  double uplink_bytes_per_sec;
  double samples_mu;      ///< lognormal log-mean of local dataset size
  double samples_sigma;
  double samples_lo;
  double samples_hi;
  /// Multiplier on the campaign's base mid-upload disconnect rate.
  double disconnect_scale;
  /// Fraction of the connectivity duty cycle the device is reachable.
  double online_frac;
  /// Fraction of the charge cycle the battery gate is open (1 = always).
  double charge_frac;
};

inline const TierTraits& tier_traits(DeviceTier t) noexcept {
  // flagship / mid-range / IoT compute+uplink classes. The mid-range row
  // matches the legacy mobile synthetic profile, so a tiered population
  // with mix {0,1,0} is distribution-identical to the old one.
  static constexpr TierTraits kTraits[kTierCount] = {
      {0.6931471805599453, 0.25, 0.5, 6.0, 24e6,      // flagship
       6.684611727667927, 0.4, 50.0, 5000.0, 0.25, 0.98, 1.0},
      {0.0, 0.45, 0.25, 4.0, 12e6,                    // mid-range
       6.396929655216146, 0.5, 50.0, 5000.0, 1.0, 0.90, 0.85},
      {-0.916290731874155, 0.5, 0.1, 1.5, 1.5e6,      // IoT
       5.298317366548036, 0.5, 50.0, 2000.0, 2.5, 0.60, 0.50},
  };
  return kTraits[static_cast<std::size_t>(t)];
}

}  // namespace lifl::wl
