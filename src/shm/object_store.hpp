#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "src/shm/object_key.hpp"
#include "src/sim/random.hpp"

namespace lifl::shm {

/// Usage statistics of a node's shared-memory object store.
struct ObjectStoreStats {
  std::uint64_t puts = 0;            ///< objects created
  std::uint64_t gets = 0;            ///< reads by key
  std::uint64_t releases = 0;        ///< reference drops
  std::uint64_t recycled_buffers = 0;///< allocations served from the pool
  std::size_t bytes_in_use = 0;      ///< live object bytes
  std::size_t peak_bytes = 0;        ///< high-water mark of live bytes
  std::size_t pool_bytes = 0;        ///< recycled-buffer pool size
};

/// Per-node shared-memory object store (§4.1).
///
/// Objects are immutable once written — the invariant LIFL relies on to share
/// model updates between aggregators without locks — and reference counted:
/// the producer `put`s an object with an initial reference count equal to the
/// number of expected consumers, each consumer `get`s it by key (zero copy)
/// and `release`s it when done. Fully released buffers are recycled into a
/// bounded pool, matching the agent's allocate/recycle/destroy role.
///
/// Values are held as `shared_ptr<const T>`: handing out a key copies
/// nothing, which is exactly the zero-copy discipline of the paper. The
/// `logical_bytes` of an object may exceed the bytes actually held in this
/// process (e.g. a ResNet-152 update is 240 MB logically but carries no real
/// tensor in pure system-level simulations).
///
/// The store's recycle pool accounts *logical* bytes; its physical
/// counterpart for real tensor payloads is `ml::TensorPool` — a pooled
/// tensor `put` here recycles into that pool automatically when its last
/// shm lease drops (the shared_ptr deleter is the recycler), so the two
/// pools describe the same allocate/recycle/destroy lifecycle at the two
/// levels the platform models.
class ObjectStore {
 public:
  explicit ObjectStore(sim::Rng rng,
                       std::size_t pool_capacity_bytes = 2ull << 30)
      : rng_(rng), pool_capacity_(pool_capacity_bytes) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Liveness token for deferred releases. A lease against this store may
  /// legally outlive it — e.g. a closure parked in a simulator queue when
  /// the world is torn down. Lease deleters lock the token and skip the
  /// release once the store is gone instead of touching freed memory.
  std::weak_ptr<ObjectStore*> liveness() const noexcept { return self_; }

  /// Store an immutable object; returns its freshly generated key.
  /// `refs` is the number of consumers expected to release it.
  template <typename T>
  ObjectKey put(std::shared_ptr<const T> value, std::size_t logical_bytes,
                std::uint32_t refs = 1) {
    if (refs == 0) throw std::invalid_argument("ObjectStore::put: refs == 0");
    ObjectKey key = ObjectKey::generate(rng_);
    while (objects_.count(key) != 0) key = ObjectKey::generate(rng_);
    Entry e;
    e.data = std::static_pointer_cast<const void>(std::move(value));
    e.bytes = logical_bytes;
    e.refs = refs;
    objects_.emplace(key, std::move(e));
    ++stats_.puts;
    if (stats_.pool_bytes >= logical_bytes) {
      stats_.pool_bytes -= logical_bytes;
      ++stats_.recycled_buffers;
    }
    stats_.bytes_in_use += logical_bytes;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_in_use);
    return key;
  }

  /// Store a size-only object (no real payload behind it).
  ObjectKey put_logical(std::size_t logical_bytes, std::uint32_t refs = 1) {
    return put<int>(nullptr, logical_bytes, refs);
  }

  /// True if the key addresses a live object.
  bool contains(const ObjectKey& key) const noexcept {
    return objects_.count(key) != 0;
  }

  /// Read an object (zero copy). Throws if the key is unknown.
  template <typename T>
  std::shared_ptr<const T> get(const ObjectKey& key) {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      throw std::out_of_range("ObjectStore::get: unknown key " + key.to_hex());
    }
    ++stats_.gets;
    return std::static_pointer_cast<const T>(it->second.data);
  }

  /// Logical size of an object in bytes. Throws if the key is unknown.
  std::size_t size_of(const ObjectKey& key) const {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      throw std::out_of_range("ObjectStore::size_of: unknown key");
    }
    return it->second.bytes;
  }

  /// Add consumers to an existing object (e.g. fan-out routing).
  void add_refs(const ObjectKey& key, std::uint32_t extra) {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      throw std::out_of_range("ObjectStore::add_refs: unknown key");
    }
    it->second.refs += extra;
  }

  /// Drop one reference; when the count reaches zero the buffer is recycled
  /// into the pool (up to the pool capacity). Throws on unknown key.
  void release(const ObjectKey& key) {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      throw std::out_of_range("ObjectStore::release: unknown key");
    }
    ++stats_.releases;
    if (--it->second.refs == 0) {
      stats_.bytes_in_use -= it->second.bytes;
      stats_.pool_bytes =
          std::min(pool_capacity_, stats_.pool_bytes + it->second.bytes);
      objects_.erase(it);
    }
  }

  /// Number of live objects.
  std::size_t size() const noexcept { return objects_.size(); }

  const ObjectStoreStats& stats() const noexcept { return stats_; }

  /// Key-generator state, for checkpointing.
  sim::Rng::State rng_state() const noexcept { return rng_.state(); }

  /// Restore a checkpointed generator + statistics onto a *quiescent* store
  /// (no live objects — every lease released); throws std::logic_error
  /// otherwise. Live entries hold process-local shared_ptrs and cannot
  /// survive a process boundary, which is exactly why snapshots are taken
  /// at quiescent points.
  void restore(const sim::Rng::State& rng, const ObjectStoreStats& stats) {
    if (!objects_.empty()) {
      throw std::logic_error(
          "ObjectStore::restore: store holds live objects");
    }
    rng_.restore(rng);
    stats_ = stats;
  }

 private:
  struct Entry {
    std::shared_ptr<const void> data;
    std::size_t bytes = 0;
    std::uint32_t refs = 0;
  };

  sim::Rng rng_;
  std::size_t pool_capacity_;
  std::unordered_map<ObjectKey, Entry, ObjectKeyHash> objects_;
  ObjectStoreStats stats_;
  std::shared_ptr<ObjectStore*> self_{
      std::make_shared<ObjectStore*>(this)};
};

}  // namespace lifl::shm
