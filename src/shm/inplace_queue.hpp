#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "src/shm/object_key.hpp"
#include "src/sim/simulator.hpp"

namespace lifl::shm {

/// In-place message queue (§4.2): a FIFO of *object keys* whose payloads stay
/// put in the shared-memory store.
///
/// This is the multiple-producer / single-consumer queue in front of each
/// aggregator (Fig. 14): the gateway (or a lower-level aggregator via SKMSG)
/// pushes keys; the aggregator's Recv step pops them. Because only 16-byte
/// keys move, enqueueing is free of data copies — the "in-place" property
/// that eliminates the dedicated broker queue of baseline serverless stacks.
///
/// Popping is event-driven: a consumer registers a waiter and is woken as
/// soon as a key arrives (enabling eager aggregation); keys that arrive with
/// no waiter are buffered, and per-key queueing delay is tracked.
class InPlaceQueue {
 public:
  using Waiter = std::function<void(ObjectKey)>;

  explicit InPlaceQueue(sim::Simulator& sim) : sim_(sim) {}

  /// Enqueue a key. If a consumer is waiting, it is scheduled to run at the
  /// current instant (still via the event queue, preserving determinism).
  void push(ObjectKey key) {
    ++total_pushed_;
    if (!waiters_.empty()) {
      Waiter w = std::move(waiters_.front());
      waiters_.pop_front();
      sim_.schedule_after(0.0, [w = std::move(w), key]() { w(key); });
      return;
    }
    entries_.push_back(Entry{key, sim_.now()});
    max_depth_ = std::max(max_depth_, entries_.size());
  }

  /// Synchronously pop if non-empty. Returns false otherwise.
  bool try_pop(ObjectKey& out) {
    if (entries_.empty()) return false;
    out = take_front();
    return true;
  }

  /// Pop asynchronously: `w` fires with the next key — immediately (as an
  /// event at the current instant) if one is buffered, otherwise when the
  /// next push happens. Waiters are served FIFO.
  void pop_async(Waiter w) {
    if (!entries_.empty()) {
      const ObjectKey key = take_front();
      sim_.schedule_after(0.0, [w = std::move(w), key]() { w(key); });
      return;
    }
    waiters_.push_back(std::move(w));
  }

  std::size_t depth() const noexcept { return entries_.size(); }
  std::size_t waiter_count() const noexcept { return waiters_.size(); }
  std::size_t max_depth() const noexcept { return max_depth_; }
  std::uint64_t total_pushed() const noexcept { return total_pushed_; }

  /// Sum over popped keys of time spent buffered (seconds).
  double total_queueing_delay() const noexcept { return total_delay_; }

 private:
  struct Entry {
    ObjectKey key;
    double enqueued_at;
  };

  ObjectKey take_front() {
    Entry e = entries_.front();
    entries_.pop_front();
    total_delay_ += sim_.now() - e.enqueued_at;
    return e.key;
  }

  sim::Simulator& sim_;
  std::deque<Entry> entries_;
  std::deque<Waiter> waiters_;
  std::size_t max_depth_ = 0;
  std::uint64_t total_pushed_ = 0;
  double total_delay_ = 0.0;
};

}  // namespace lifl::shm
