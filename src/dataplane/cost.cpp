#include "src/dataplane/cost.hpp"

#include <memory>
#include <utility>

namespace lifl::dp {

CostStep cpu_step(StepResource where, const sim::Node& node, double cycles,
                  sim::CostTag tag) {
  CostStep s;
  s.where = where;
  s.node = node.id();
  s.seconds = cycles / node.config().cpu_hz;
  s.tag = tag;
  s.cycles = cycles;
  return s;
}

void StepRunner::run(std::vector<CostStep> steps, std::function<void()> done) {
  auto steps_ptr = std::make_shared<std::vector<CostStep>>(std::move(steps));
  auto done_ptr = std::make_shared<std::function<void()>>(std::move(done));
  run_from(std::move(steps_ptr), 0, std::move(done_ptr));
}

void StepRunner::run_from(std::shared_ptr<std::vector<CostStep>> steps,
                          std::size_t i,
                          std::shared_ptr<std::function<void()>> done) {
  if (i >= steps->size()) {
    if (*done) (*done)();
    return;
  }
  const CostStep& s = (*steps)[i];
  sim::Node& node = cluster_.node(s.node);
  auto next = [this, steps, i, done, &node, tag = s.tag, cycles = s.cycles]() {
    if (cycles > 0) node.cpu().add(tag, cycles);
    run_from(steps, i + 1, done);
  };
  switch (s.where) {
    case StepResource::kCores:
      node.cores().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kKernelNet:
      node.kernel_net().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kNic:
      node.nic().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kGateway:
      gateways_(s.node).acquire(s.seconds, std::move(next));
      break;
    case StepResource::kBroker:
      broker_().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kLatency:
      cluster_.sim().schedule_after(s.seconds, std::move(next));
      break;
  }
}

}  // namespace lifl::dp
