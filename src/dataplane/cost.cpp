#include "src/dataplane/cost.hpp"

#include <memory>
#include <utility>

namespace lifl::dp {

CostStep cpu_step(StepResource where, const sim::Node& node, double cycles,
                  sim::CostTag tag, std::uint64_t flow) {
  CostStep s;
  s.where = where;
  s.node = node.id();
  s.seconds = cycles / node.config().cpu_hz;
  s.tag = tag;
  s.cycles = cycles;
  s.flow = flow;
  return s;
}

void StepRunner::run(std::vector<CostStep> steps, sim::Task done) {
  auto flight = std::make_shared<Flight>();
  flight->steps = std::move(steps);
  flight->done = std::move(done);
  dispatch(flight);
}

void StepRunner::advance(const std::shared_ptr<Flight>& f) {
  // The step that just finished service bills its cycles to the node it
  // ran on, then the pipeline moves to the next hop.
  const CostStep& s = f->steps[f->i];
  if (s.cycles > 0) cluster_.node(s.node).cpu().add(s.tag, s.cycles);
  ++f->i;
  dispatch(f);
}

void StepRunner::dispatch(const std::shared_ptr<Flight>& f) {
  if (f->i >= f->steps.size()) {
    if (f->done) f->done();
    return;
  }
  const CostStep& s = f->steps[f->i];
  sim::Node& node = cluster_.node(s.node);
  NextFn next{this, f};
  switch (s.where) {
    case StepResource::kCores:
      node.cores().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kKernelNet:
      node.kernel_net().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kNic:
      node.nic().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kGateway:
      gateways_(s.node, s.flow).acquire(s.seconds, std::move(next));
      break;
    case StepResource::kBroker:
      broker_().acquire(s.seconds, std::move(next));
      break;
    case StepResource::kLatency:
      cluster_.sim().schedule_after(s.seconds, std::move(next));
      break;
  }
}

}  // namespace lifl::dp
