#pragma once

#include <functional>
#include <vector>

#include "src/sim/cpu_accounting.hpp"
#include "src/sim/node.hpp"
#include "src/sim/resource.hpp"

namespace lifl::dp {

/// Which contended resource a cost step executes on.
enum class StepResource : std::uint8_t {
  kCores,      ///< the node's general core pool (userspace work)
  kKernelNet,  ///< the node's kernel network-processing budget
  kNic,        ///< the node's NIC wire
  kGateway,    ///< the node's gateway cores (vertically scaled)
  kBroker,     ///< the cluster's message-broker service threads
  kLatency,    ///< pure delay, no resource (e.g. client uplink wire time)
};

/// One step of a data-plane pipeline: a service time on a resource plus the
/// CPU cycles it bills. Transfers are sequences of steps executed
/// store-and-forward, so queueing/contention at any hop shows up end to end
/// (this is what reproduces Fig. 4).
struct CostStep {
  StepResource where = StepResource::kCores;
  sim::NodeId node = 0;
  double seconds = 0.0;  ///< service time on the resource
  sim::CostTag tag = sim::CostTag::kKernelNet;
  double cycles = 0.0;   ///< billed to the node's CPU ledger
  /// Flow key for RSS-steered resources (kGateway): the client/participant
  /// id whose queue this step must execute on.
  std::uint64_t flow = 0;
};

/// Convenience: make a CPU-type step from cycles (service time = cycles/hz).
CostStep cpu_step(StepResource where, const sim::Node& node, double cycles,
                  sim::CostTag tag, std::uint64_t flow = 0);

/// Runs `steps` sequentially on the cluster's resources, then `done`.
///
/// The gateway and broker resources are external to `sim::Node`, so callers
/// provide resolvers mapping StepResource::kGateway (per node and flow —
/// the gateway is an RSS multi-queue) and StepResource::kBroker
/// (cluster-wide) to the right Resource.
class StepRunner {
 public:
  using GatewayResolver =
      std::function<sim::Resource&(sim::NodeId, std::uint64_t flow)>;
  using BrokerResolver = std::function<sim::Resource&()>;

  StepRunner(sim::Cluster& cluster, GatewayResolver gateways,
             BrokerResolver broker)
      : cluster_(cluster),
        gateways_(std::move(gateways)),
        broker_(std::move(broker)) {}

  void run(std::vector<CostStep> steps, sim::Task done);

 private:
  /// One in-flight pipeline: a single allocation carries the steps and the
  /// completion across every hop (the continuation each Resource holds is
  /// a 16-byte {runner, flight} trampoline — Task-inline, so a transfer
  /// costs one allocation total instead of one per step).
  struct Flight {
    std::vector<CostStep> steps;
    std::size_t i = 0;
    sim::Task done;
  };
  struct NextFn {
    StepRunner* r;
    std::shared_ptr<Flight> f;
    void operator()() const { r->advance(f); }
  };

  void advance(const std::shared_ptr<Flight>& f);
  void dispatch(const std::shared_ptr<Flight>& f);

  sim::Cluster& cluster_;
  GatewayResolver gateways_;
  BrokerResolver broker_;
};

}  // namespace lifl::dp
