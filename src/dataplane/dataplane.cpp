#include "src/dataplane/dataplane.hpp"

#include <stdexcept>
#include <utility>

#include "src/sim/calibration.hpp"

namespace lifl::dp {

namespace calib = sim::calib;
using sim::CostTag;

DataPlane::DataPlane(sim::Cluster& cluster, DataPlaneConfig cfg, sim::Rng rng)
    : cluster_(cluster),
      cfg_(cfg),
      broker_svc_(cluster.sim(), "broker", cfg.broker_cores),
      runner_(
          cluster,
          [this](sim::NodeId id, std::uint64_t flow) -> sim::Resource& {
            return env(id).gateway.queue_for(flow);
          },
          [this]() -> sim::Resource& { return broker_svc_; }) {
  envs_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    envs_.push_back(std::make_unique<NodeEnv>(
        cluster.sim(), static_cast<sim::NodeId>(i), rng.split(i),
        cfg_.gateway_cores, cfg_.gateway_queues));
  }
  if (cfg_.use_broker) {
    // The broker is the single stateful, always-on component of the plane
    // (Fig. 2(b)); it lives on — and draws idle CPU from — the broker node.
    register_idle_draw(cfg_.broker_node, CostTag::kBroker,
                       calib::kBrokerIdleCores);
  }
}

void DataPlane::register_consumer(fl::ParticipantId id, sim::NodeId node,
                                  Sockmap::DeliverFn deliver) {
  consumers_[id] = node;
  env(node).sockmap.update_elem(id, std::move(deliver));
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    if (static_cast<sim::NodeId>(i) != node) {
      envs_[i]->remote_routes.update_elem(id, node);
    }
  }
}

void DataPlane::unregister_consumer(fl::ParticipantId id) {
  auto it = consumers_.find(id);
  if (it == consumers_.end()) return;
  env(it->second).sockmap.delete_elem(id);
  for (auto& e : envs_) e->remote_routes.delete_elem(id);
  consumers_.erase(it);
}

std::optional<sim::NodeId> DataPlane::node_of(fl::ParticipantId id) const {
  auto it = consumers_.find(id);
  if (it == consumers_.end()) return std::nullopt;
  return it->second;
}

double DataPlane::recv_cycles(const fl::ModelUpdate& update) const noexcept {
  const auto bytes = static_cast<double>(update.logical_bytes);
  if (cfg_.plane == PlaneKind::kLifl) {
    // Zero-copy: the consumer maps the shm object and walks it once.
    return calib::kShmReadCyclesPerByte * bytes;
  }
  // Kernel planes: the (single-threaded) consumer deserializes the payload,
  // and terminates the raw client stream if nothing did so upstream.
  double cycles =
      calib::kDeserializeCyclesPerByte * bytes + calib::kKernelFixedCycles;
  if (update.from_client) {
    cycles += calib::kClientStreamExtraCyclesPerByte * bytes;
  }
  return cycles;
}

void DataPlane::attach_shm_lease(sim::NodeId node, fl::ModelUpdate& update) {
  auto& store = env(node).store;
  shm::ObjectKey key;
  if (cfg_.real_payloads && update.tensor) {
    key = store.put<ml::Tensor>(update.tensor, update.logical_bytes);
  } else {
    key = store.put_logical(update.logical_bytes);
  }
  // RAII recycle: when the last copy of the update drops, the reference is
  // released and the buffer returns to the store's pool. The lease may
  // legally outlive the store (closures parked in simulator queues during
  // teardown), so it releases through the store's liveness token.
  update.lease = std::shared_ptr<const void>(
      new shm::ObjectKey(key),
      [token = store.liveness()](const shm::ObjectKey* k) {
        if (const auto store_ptr = token.lock()) {
          (*store_ptr)->release(*k);
        }
        delete k;
      });
}

void DataPlane::append_broker_leg(std::vector<CostStep>& steps, sim::Node& src,
                                  sim::Node& dst, std::size_t bytes,
                                  double extra_broker_cycles_per_byte) {
  const auto b = static_cast<double>(bytes);
  sim::Node& broker = cluster_.node(cfg_.broker_node);
  if (src.id() != broker.id()) {
    CostStep wire;
    wire.where = StepResource::kNic;
    wire.node = src.id();
    wire.seconds = b / src.config().nic_bytes_per_sec;
    steps.push_back(wire);
  }
  steps.push_back(cpu_step(StepResource::kKernelNet, broker,
                           calib::kKernelRxCyclesPerByte * b,
                           CostTag::kKernelNet));
  // Enqueue + dequeue processing on the broker's (fixed) worker threads:
  // every brokered message in the cluster serializes through here.
  steps.push_back(cpu_step(
      StepResource::kBroker, broker,
      (calib::kBrokerCyclesPerByte + extra_broker_cycles_per_byte) * b,
      CostTag::kBroker));
  steps.push_back(cpu_step(
      StepResource::kKernelNet, broker,
      calib::kKernelTxCyclesPerByte * b + calib::kKernelFixedCycles,
      CostTag::kKernelNet));
  if (broker.id() != dst.id()) {
    CostStep wire;
    wire.where = StepResource::kNic;
    wire.node = broker.id();
    wire.seconds = b / broker.config().nic_bytes_per_sec;
    steps.push_back(wire);
  }
  steps.push_back(cpu_step(StepResource::kKernelNet, dst,
                           calib::kKernelRxCyclesPerByte * b,
                           CostTag::kKernelNet));
}

std::vector<CostStep> DataPlane::intra_node_steps(sim::Node& node,
                                                  std::size_t bytes) {
  const auto b = static_cast<double>(bytes);
  std::vector<CostStep> steps;
  switch (cfg_.plane) {
    case PlaneKind::kLifl:
      // Producer writes the update into the shm object store; the 16-byte
      // key is then delivered via SKMSG + sockmap (event-driven sidecar).
      steps.push_back(cpu_step(StepResource::kCores, node,
                               calib::kShmWriteCyclesPerByte * b,
                               CostTag::kSerialization));
      steps.push_back(cpu_step(
          StepResource::kKernelNet, node,
          calib::kSkmsgNotifyCycles + calib::kEbpfSidecarEventCycles,
          CostTag::kSidecarEbpf));
      break;
    case PlaneKind::kServerful:
    case PlaneKind::kServerless:
      steps.push_back(cpu_step(StepResource::kCores, node,
                               calib::kSerializeCyclesPerByte * b,
                               CostTag::kSerialization));
      if (cfg_.sidecar == SidecarKind::kContainer) {
        steps.push_back(cpu_step(StepResource::kCores, node,
                                 calib::kContainerSidecarCyclesPerByte * b,
                                 CostTag::kSidecarContainer));
      }
      steps.push_back(cpu_step(
          StepResource::kKernelNet, node,
          calib::kKernelTxCyclesPerByte * b + calib::kKernelFixedCycles,
          CostTag::kKernelNet));
      if (cfg_.use_broker) {
        // Indirect networking (§2.3): even same-node functions exchange
        // messages through the broker.
        append_broker_leg(steps, node, node, bytes);
      } else {
        steps.push_back(cpu_step(StepResource::kKernelNet, node,
                                 calib::kKernelRxCyclesPerByte * b,
                                 CostTag::kKernelNet));
      }
      if (cfg_.sidecar == SidecarKind::kContainer) {
        steps.push_back(cpu_step(StepResource::kCores, node,
                                 calib::kContainerSidecarCyclesPerByte * b,
                                 CostTag::kSidecarContainer));
      }
      break;
  }
  return steps;
}

std::vector<CostStep> DataPlane::inter_node_steps(sim::Node& src,
                                                  sim::Node& dst,
                                                  std::size_t bytes,
                                                  std::uint64_t flow) {
  const auto b = static_cast<double>(bytes);
  std::vector<CostStep> steps;
  const bool lifl = cfg_.plane == PlaneKind::kLifl;

  if (lifl) {
    // Source gateway: read the object out of shm, transform, serialize.
    steps.push_back(cpu_step(StepResource::kGateway, src,
                             (calib::kShmReadCyclesPerByte +
                              calib::kGatewayTransformCyclesPerByte +
                              calib::kSerializeCyclesPerByte) *
                                 b,
                             CostTag::kGateway, flow));
  } else {
    steps.push_back(cpu_step(StepResource::kCores, src,
                             calib::kSerializeCyclesPerByte * b,
                             CostTag::kSerialization));
    if (cfg_.sidecar == SidecarKind::kContainer) {
      steps.push_back(cpu_step(StepResource::kCores, src,
                               calib::kContainerSidecarCyclesPerByte * b,
                               CostTag::kSidecarContainer));
    }
  }

  // Kernel tx on the source.
  steps.push_back(cpu_step(
      StepResource::kKernelNet, src,
      calib::kKernelTxCyclesPerByte * b + calib::kKernelFixedCycles,
      CostTag::kKernelNet));

  if (!lifl && cfg_.use_broker) {
    // src -> broker -> dst indirection (Fig. 2(b)).
    append_broker_leg(steps, src, dst, bytes);
  } else {
    // Direct: wire time on the source NIC, kernel rx at the destination.
    CostStep wire;
    wire.where = StepResource::kNic;
    wire.node = src.id();
    wire.seconds = b / src.config().nic_bytes_per_sec;
    wire.cycles = 0.0;
    steps.push_back(wire);
    steps.push_back(cpu_step(StepResource::kKernelNet, dst,
                             calib::kKernelRxCyclesPerByte * b,
                             CostTag::kKernelNet));
  }

  if (lifl) {
    // Destination gateway: deserialize, transform, write into shm; then the
    // SKMSG notification reaches the destination aggregator.
    steps.push_back(cpu_step(StepResource::kGateway, dst,
                             (calib::kDeserializeCyclesPerByte +
                              calib::kGatewayTransformCyclesPerByte +
                              calib::kShmWriteCyclesPerByte) *
                                 b,
                             CostTag::kGateway, flow));
    steps.push_back(cpu_step(
        StepResource::kKernelNet, dst,
        calib::kSkmsgNotifyCycles + calib::kEbpfSidecarEventCycles,
        CostTag::kSidecarEbpf));
  } else if (cfg_.sidecar == SidecarKind::kContainer) {
    steps.push_back(cpu_step(StepResource::kCores, dst,
                             calib::kContainerSidecarCyclesPerByte * b,
                             CostTag::kSidecarContainer));
  }
  return steps;
}

std::vector<CostStep> DataPlane::ingest_steps(sim::Node& node,
                                              std::size_t bytes,
                                              std::uint64_t flow) {
  const auto b = static_cast<double>(bytes);
  std::vector<CostStep> steps;
  switch (cfg_.plane) {
    case PlaneKind::kLifl:
      // Kernel receive path for the client's TCP stream, then one-time
      // payload processing at the gateway (§4.2 / Appendix C): terminate
      // the client stream, deserialize + convert, then write the NumpyArray
      // into shm. Consumers only pay a cheap shm read after. The gateway
      // step executes on the RSS queue the client's flow hashes to.
      steps.push_back(cpu_step(
          StepResource::kKernelNet, node,
          calib::kKernelRxCyclesPerByte * b + calib::kKernelFixedCycles,
          CostTag::kKernelNet));
      steps.push_back(cpu_step(StepResource::kGateway, node,
                               (calib::kClientStreamExtraCyclesPerByte +
                                calib::kDeserializeCyclesPerByte +
                                calib::kShmWriteCyclesPerByte) *
                                   b,
                               CostTag::kGateway, flow));
      break;
    case PlaneKind::kServerful:
    case PlaneKind::kServerless:
      if (cfg_.use_broker) {
        // The client publishes to the broker, which terminates the stream
        // and buffers the payload (Fig. 2(b)). Delivery toward the consumer
        // happens at consumption time (`consume`), the dequeue half of the
        // broker's message-queue role.
        sim::Node& broker = cluster_.node(cfg_.broker_node);
        steps.push_back(cpu_step(
            StepResource::kKernelNet, broker,
            calib::kKernelRxCyclesPerByte * b + calib::kKernelFixedCycles,
            CostTag::kKernelNet));
        steps.push_back(cpu_step(StepResource::kBroker, broker,
                                 (calib::kBrokerCyclesPerByte +
                                  calib::kClientStreamExtraCyclesPerByte) *
                                     b,
                                 CostTag::kBroker));
      } else {
        steps.push_back(cpu_step(
            StepResource::kKernelNet, node,
            calib::kKernelRxCyclesPerByte * b + calib::kKernelFixedCycles,
            CostTag::kKernelNet));
        if (cfg_.sidecar == SidecarKind::kContainer) {
          steps.push_back(cpu_step(StepResource::kCores, node,
                                   calib::kContainerSidecarCyclesPerByte * b,
                                   CostTag::kSidecarContainer));
        }
      }
      break;
  }
  return steps;
}

void DataPlane::send(fl::ParticipantId src, sim::NodeId src_node,
                     fl::ParticipantId dst, fl::ModelUpdate update,
                     sim::Task on_delivered) {
  auto it = consumers_.find(dst);
  if (it == consumers_.end()) {
    throw std::invalid_argument("DataPlane::send: unknown destination " +
                                std::to_string(dst));
  }
  const sim::NodeId dst_node = it->second;
  const std::size_t bytes = update.logical_bytes;
  update.hops += 1;
  update.producer = src;

  sim::Node& snode = cluster_.node(src_node);
  sim::Node& dnode = cluster_.node(dst_node);
  NodeEnv& senv = env(src_node);

  // Event-driven sidecar bookkeeping on send (§4.3) — interned ids, no
  // string hashing on the per-send path.
  if (cfg_.sidecar == SidecarKind::kEbpf) {
    senv.metrics.add(MetricsMap::kSends);
    senv.metrics.add(MetricsMap::kSendBytes, static_cast<double>(bytes));
  }

  std::vector<CostStep> steps;
  if (src_node == dst_node) {
    if (cfg_.plane == PlaneKind::kLifl) {
      attach_shm_lease(src_node, update);
      ++shm_deliveries_;
    }
    steps = intra_node_steps(snode, bytes);
  } else {
    inter_node_bytes_ += bytes;
    if (cfg_.plane == PlaneKind::kLifl) {
      // The payload is re-materialized in the destination node's store by
      // the remote gateway (Appendix A).
      attach_shm_lease(dst_node, update);
    }
    // Gateway hops steer by the destination participant: one aggregator's
    // inbound transfers stay ordered on one queue.
    steps = inter_node_steps(snode, dnode, bytes, dst);
  }
  if (cfg_.use_broker) {
    env(cfg_.broker_node).broker.buffer(bytes);
  }

  runner_.run(std::move(steps),
              [this, dst_node, dst, u = std::move(update), bytes,
               done = std::move(on_delivered)]() mutable {
                if (cfg_.use_broker) {
                  env(cfg_.broker_node).broker.unbuffer(bytes);
                }
                deliver(dst_node, dst, std::move(u), std::move(done));
              });
}

void DataPlane::deliver(sim::NodeId dst_node, fl::ParticipantId dst,
                        fl::ModelUpdate update, sim::Task done) {
  Sockmap::DeliverFn* sock = env(dst_node).sockmap.lookup(dst);
  if (sock == nullptr) {
    // Destination disappeared mid-flight (scale-down / failure): the update
    // falls back into the node pool so a successor can aggregate it.
    env(dst_node).pool.push(std::move(update));
    if (done) done();
    return;
  }
  (*sock)(std::move(update));
  if (done) done();
}

void DataPlane::client_upload(sim::NodeId dst_node, fl::ModelUpdate update,
                              double uplink_bytes_per_sec,
                              sim::Task on_enqueued) {
  const std::size_t bytes = update.logical_bytes;
  sim::Node& dnode = cluster_.node(dst_node);
  // Gateways and brokers terminate the client stream; on a bare serverful
  // plane the consuming aggregator pays that cost in its Recv step.
  update.from_client =
      cfg_.plane != PlaneKind::kLifl && !cfg_.use_broker;

  std::vector<CostStep> steps;
  // Wire time from the client to the cluster ingress (pure latency: the
  // client's uplink is not a cluster resource).
  CostStep wire;
  wire.where = StepResource::kLatency;
  wire.node = dst_node;
  wire.seconds = static_cast<double>(bytes) / uplink_bytes_per_sec;
  steps.push_back(wire);
  auto ingest = ingest_steps(dnode, bytes, update.producer);
  steps.insert(steps.end(), ingest.begin(), ingest.end());

  // A brokered upload rests in the broker's buffers until a consumer drains
  // it (`consume` unbuffers); LIFL/serverful planes buffer nothing here.
  if (cfg_.use_broker) env(cfg_.broker_node).broker.buffer(bytes);

  runner_.run(std::move(steps), [this, dst_node,
                                 u = std::move(update),
                                 done = std::move(on_enqueued)]() mutable {
    NodeEnv& e = env(dst_node);
    if (cfg_.plane == PlaneKind::kLifl) {
      attach_shm_lease(dst_node, u);
      ++shm_deliveries_;
    }
    // Arrival-rate metric for the control plane (k_{i,t} of §5.1).
    e.metrics.add(MetricsMap::kArrivals);
    e.pool.push(std::move(u));
    if (done) done();
  });
}

void DataPlane::client_upload_chunk(sim::NodeId dst_node, std::uint64_t flow,
                                    std::size_t bytes,
                                    double uplink_bytes_per_sec,
                                    sim::Task on_acked) {
  sim::Node& dnode = cluster_.node(dst_node);
  std::vector<CostStep> steps;
  // Wire time from the client to the cluster ingress (pure latency, as in
  // `client_upload`).
  CostStep wire;
  wire.where = StepResource::kLatency;
  wire.node = dst_node;
  wire.seconds = static_cast<double>(bytes) / uplink_bytes_per_sec;
  steps.push_back(wire);
  auto ingest = ingest_steps(dnode, bytes, flow);
  steps.insert(steps.end(), ingest.begin(), ingest.end());
  runner_.run(std::move(steps), std::move(on_acked));
}

void DataPlane::consume(sim::NodeId node, const fl::ModelUpdate& update,
                        sim::Task ready) {
  if (!cfg_.use_broker) {
    // LIFL: the consumer receives the 16-byte key; the payload stays put in
    // shm. SF monolith: the queue is the aggregator's own in-memory queue.
    ready();
    return;
  }
  const std::size_t bytes = update.logical_bytes;
  const auto b = static_cast<double>(bytes);
  sim::Node& broker = cluster_.node(cfg_.broker_node);
  sim::Node& dst = cluster_.node(node);
  env(cfg_.broker_node).broker.unbuffer(bytes);

  std::vector<CostStep> steps;
  // Dequeue processing on the broker's worker threads.
  steps.push_back(cpu_step(StepResource::kBroker, broker,
                           calib::kBrokerCyclesPerByte * b, CostTag::kBroker));
  steps.push_back(cpu_step(
      StepResource::kKernelNet, broker,
      calib::kKernelTxCyclesPerByte * b + calib::kKernelFixedCycles,
      CostTag::kKernelNet));
  if (broker.id() != dst.id()) {
    CostStep wire;
    wire.where = StepResource::kNic;
    wire.node = broker.id();
    wire.seconds = b / broker.config().nic_bytes_per_sec;
    steps.push_back(wire);
  }
  steps.push_back(cpu_step(StepResource::kKernelNet, dst,
                           calib::kKernelRxCyclesPerByte * b,
                           CostTag::kKernelNet));
  if (cfg_.sidecar == SidecarKind::kContainer) {
    steps.push_back(cpu_step(StepResource::kCores, dst,
                             calib::kContainerSidecarCyclesPerByte * b,
                             CostTag::kSidecarContainer));
  }
  runner_.run(std::move(steps), std::move(ready));
}

void DataPlane::seed_update(sim::NodeId node, fl::ModelUpdate update) {
  update.from_client = false;  // ingest processing already happened
  if (cfg_.plane == PlaneKind::kLifl) {
    attach_shm_lease(node, update);
    ++shm_deliveries_;
  }
  NodeEnv& e = env(node);
  e.metrics.add(MetricsMap::kArrivals);
  e.pool.push(std::move(update));
}

void DataPlane::record_agg_exec(sim::NodeId node, double exec_secs) {
  NodeEnv& e = env(node);
  e.metrics.add(MetricsMap::kAggExecSum, exec_secs);
  e.metrics.add(MetricsMap::kAggExecCount);
  if (cfg_.sidecar == SidecarKind::kEbpf) {
    // The metric write itself is an eBPF event: tiny, billed to the sidecar.
    cluster_.node(node).cpu().add(CostTag::kSidecarEbpf,
                                  calib::kEbpfSidecarEventCycles);
  }
}

IdleHandle DataPlane::register_idle_draw(sim::NodeId node, CostTag tag,
                                         double cores) {
  const IdleHandle h = next_idle_handle_++;
  idle_draws_[h] = IdleDraw{node, tag, cores, cluster_.sim().now()};
  return h;
}

void DataPlane::remove_idle_draw(IdleHandle h) {
  auto it = idle_draws_.find(h);
  if (it == idle_draws_.end()) return;
  IdleDraw& d = it->second;
  const double elapsed = cluster_.sim().now() - d.since;
  cluster_.node(d.node).cpu().add(
      d.tag, elapsed * d.cores * cluster_.node(d.node).config().cpu_hz);
  idle_draws_.erase(it);
}

void DataPlane::settle_idle_costs() {
  const sim::SimTime now = cluster_.sim().now();
  for (auto& [h, d] : idle_draws_) {
    const double elapsed = now - d.since;
    if (elapsed <= 0) continue;
    cluster_.node(d.node).cpu().add(
        d.tag, elapsed * d.cores * cluster_.node(d.node).config().cpu_hz);
    d.since = now;
  }
}

void DataPlane::set_gateway_cores(sim::NodeId node, std::uint32_t cores) {
  env(node).gateway.set_capacity(cores);
}

}  // namespace lifl::dp
