#pragma once

#include <deque>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/obs/registry.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/task.hpp"

namespace lifl::dp {

/// Event-driven FIFO of pending model updates on a node.
///
/// This is the node-level message queue that client updates land in after
/// the gateway's one-time payload processing (§4.2): leaf aggregators pull
/// from it (pull model = the "in fact function chains" consumption order of
/// §5). Under LIFL the payload already sits in shared memory and the entry
/// is effectively just a key (the update's `lease` holds the shm
/// reference); under baseline planes it stands in for the broker queue /
/// aggregator in-memory queue, with costs billed by the plane.
class UpdatePool {
 public:
  /// Consumer callback. A `sim::TaskFn` (24-byte inline, move-only): the
  /// aggregator's pool waiter is a 16-byte {ctx} functor, so parking and
  /// waking a consumer never heap-allocates for the callable itself.
  using Waiter = sim::TaskFn<fl::ModelUpdate>;

  explicit UpdatePool(sim::Simulator& sim) : sim_(sim) {}

  /// Enqueue; wakes the longest-waiting consumer, if any. Delivery happens
  /// at the current instant through the simulator's zero-delay fast path —
  /// no heap traffic per message on the ingest hot path.
  void push(fl::ModelUpdate u) {
    ++total_pushed_;
    if (!waiters_.empty()) {
      Waiter w = std::move(waiters_.front());
      waiters_.pop_front();
      sim_.schedule_now([w = std::move(w), u = std::move(u)]() mutable {
        w(std::move(u));
      });
      return;
    }
    entries_.push_back(Entry{std::move(u), sim_.now()});
    max_depth_ = std::max(max_depth_, entries_.size());
    wake_depth_watchers();
  }

  /// Synchronous pop; false if empty.
  bool try_pop(fl::ModelUpdate& out) {
    if (entries_.empty()) return false;
    out = take_front();
    return true;
  }

  /// Asynchronous pop: fires immediately if buffered, else on next push.
  void pop_async(Waiter w) {
    if (!entries_.empty()) {
      fl::ModelUpdate u = take_front();
      sim_.schedule_now([w = std::move(w), u = std::move(u)]() mutable {
        w(std::move(u));
      });
      return;
    }
    waiters_.push_back(std::move(w));
  }

  /// Remove all unclaimed waiters (e.g. when aggregators are torn down).
  void clear_waiters() {
    waiters_.clear();
    depth_watchers_.clear();
  }

  /// Fire `fn` once the pool holds at least `n` buffered updates
  /// (immediately if it already does). Lazy aggregation tasks use this to
  /// defer consuming until their whole batch is queued (Fig. 1 "lazy":
  /// updates queue at the broker until the aggregator is ready for them).
  void when_depth(std::size_t n, sim::Task fn) {
    if (entries_.size() >= n) {
      sim_.schedule_now(std::move(fn));
      return;
    }
    depth_watchers_.push_back(DepthWatcher{n, std::move(fn)});
  }

  // ---- lease/ack recovery protocol ------------------------------------
  //
  // An aggregator consuming under lease semantics retains a copy of every
  // update it accepts, keyed by its own ParticipantId. The copy is cheap
  // (shared tensor + shm lease refcounts) but keeps the backing shm object
  // alive: the pool is the pool half, the retained lease is the ObjectStore
  // half of "un-acked claims survive their consumer". On Send the consumer
  // acks (drops) its leases; on crash the orchestrator aborts them and the
  // retained copies come back — re-queued to the pool for leaves, or
  // re-injected into the replacement for middles/top — so no client sample
  // is ever lost to a crashed runtime.

  /// Record a retained copy of an accepted update under `owner`'s lease.
  void lease_retain(fl::ParticipantId owner, const fl::ModelUpdate& u) {
    leases_[owner].push_back(u);
    ++total_retained_;
  }

  /// Ack (release) `owner`'s leases, keeping only the `keep_newest` most
  /// recently retained entries — a recurring consumer acks at each Send but
  /// must keep updates still buffered for the *next* emission under lease.
  void lease_ack(fl::ParticipantId owner, std::size_t keep_newest = 0) {
    auto it = leases_.find(owner);
    if (it == leases_.end()) return;
    auto& v = it->second;
    if (v.size() > keep_newest) {
      total_acked_ += v.size() - keep_newest;
      v.erase(v.begin(),
              v.end() - static_cast<std::ptrdiff_t>(keep_newest));
    }
    if (v.empty()) leases_.erase(it);
  }

  /// Abort `owner`'s leases (consumer crashed): returns the retained
  /// copies in retention order for re-fold, clearing the lease.
  std::vector<fl::ModelUpdate> lease_abort(fl::ParticipantId owner) {
    auto it = leases_.find(owner);
    if (it == leases_.end()) return {};
    std::vector<fl::ModelUpdate> v = std::move(it->second);
    leases_.erase(it);
    total_aborted_ += v.size();
    return v;
  }

  /// Total updates currently retained under any lease.
  std::size_t leases() const noexcept {
    std::size_t n = 0;
    for (const auto& [owner, v] : leases_) n += v.size();
    return n;
  }
  std::uint64_t leases_retained() const noexcept { return total_retained_; }
  std::uint64_t leases_acked() const noexcept { return total_acked_; }
  std::uint64_t leases_aborted() const noexcept { return total_aborted_; }

  std::size_t depth() const noexcept { return entries_.size(); }
  std::size_t waiter_count() const noexcept { return waiters_.size(); }
  std::size_t depth_watcher_count() const noexcept {
    return depth_watchers_.size();
  }
  std::size_t max_depth() const noexcept { return max_depth_; }
  std::uint64_t total_pushed() const noexcept { return total_pushed_; }
  double total_queueing_delay() const noexcept { return total_delay_; }

  /// Attach a passive per-pop queue-wait observer (the campaign's
  /// gateway-wait histogram). Observing never touches sim state, so an
  /// attached observer leaves results bitwise identical.
  void set_wait_observer(obs::HistSlot h) noexcept { wait_obs_ = h; }

  /// Restore checkpointed counters onto an idle pool (nothing buffered, no
  /// waiters or depth watchers parked); throws std::logic_error otherwise.
  /// The delay accumulator is a floating-point running sum and restores
  /// verbatim so post-resume accumulation stays bitwise identical.
  void restore_stats(std::size_t max_depth, std::uint64_t total_pushed,
                     double total_delay) {
    if (!entries_.empty() || !waiters_.empty() || !depth_watchers_.empty()) {
      throw std::logic_error("UpdatePool::restore_stats: pool is not idle");
    }
    max_depth_ = max_depth;
    total_pushed_ = total_pushed;
    total_delay_ = total_delay;
  }

 private:
  struct Entry {
    fl::ModelUpdate update;
    double enqueued_at;
  };

  struct DepthWatcher {
    std::size_t depth;
    sim::Task fn;
  };

  /// Fire every watcher satisfied by the current depth as ONE batched
  /// zero-delay event (registration order preserved) instead of an event
  /// per watcher: a push that releases a whole lazy-aggregation fan-in
  /// costs a single wake-up (and the batch vector is 24 bytes — the wake
  /// event's callable stays Task-inline).
  void wake_depth_watchers() {
    const std::size_t depth = entries_.size();
    std::vector<sim::Task> due;
    for (std::size_t i = 0; i < depth_watchers_.size();) {
      if (depth >= depth_watchers_[i].depth) {
        due.push_back(std::move(depth_watchers_[i].fn));
        depth_watchers_.erase(depth_watchers_.begin() +
                              static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (due.empty()) return;
    sim_.schedule_now([due = std::move(due)]() mutable {
      for (auto& fn : due) fn();
    });
  }

  fl::ModelUpdate take_front() {
    Entry e = std::move(entries_.front());
    entries_.pop_front();
    const double wait = sim_.now() - e.enqueued_at;
    total_delay_ += wait;
    wait_obs_.observe(wait);
    return std::move(e.update);
  }

  sim::Simulator& sim_;
  std::deque<Entry> entries_;
  std::deque<Waiter> waiters_;
  std::vector<DepthWatcher> depth_watchers_;
  std::map<fl::ParticipantId, std::vector<fl::ModelUpdate>> leases_;
  std::size_t max_depth_ = 0;
  std::uint64_t total_pushed_ = 0;
  std::uint64_t total_retained_ = 0;
  std::uint64_t total_acked_ = 0;
  std::uint64_t total_aborted_ = 0;
  double total_delay_ = 0.0;
  obs::HistSlot wait_obs_;  ///< passive; disabled by default
};

}  // namespace lifl::dp
