#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "src/fl/model_update.hpp"
#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace lifl::dp {

/// Per-node sockmap (Appendix A): maps a participant id to the local socket
/// — here, a delivery callback into the destination runtime's Recv step.
///
/// Mirrors BPF_MAP_TYPE_SOCKMAP usage in LIFL: the SKMSG program looks up
/// the destination aggregator's socket by id and delivers the object key
/// without leaving the kernel. The `update_elem` / `delete_elem` names
/// follow the eBPF helper API the routing manager uses.
class Sockmap {
 public:
  /// Delivery callback — a move-only `sim::TaskFn`: registering a consumer
  /// (`{runtime}` captures, 8-16 bytes) stays inline, so churning millions
  /// of short-lived leaf aggregators costs no allocator traffic here.
  using DeliverFn = sim::TaskFn<fl::ModelUpdate>;

  void update_elem(fl::ParticipantId id, DeliverFn sock) {
    map_[id] = std::move(sock);
  }

  bool delete_elem(fl::ParticipantId id) { return map_.erase(id) > 0; }

  /// Null if the id has no local socket.
  DeliverFn* lookup(fl::ParticipantId id) {
    auto it = map_.find(id);
    return it == map_.end() ? nullptr : &it->second;
  }

  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<fl::ParticipantId, DeliverFn> map_;
};

/// Per-node inter-node routing table held by the gateway (Appendix A): maps
/// a destination participant to the node hosting it.
class InterNodeRoutes {
 public:
  void update_elem(fl::ParticipantId id, sim::NodeId node) { map_[id] = node; }

  bool delete_elem(fl::ParticipantId id) { return map_.erase(id) > 0; }

  std::optional<sim::NodeId> lookup(fl::ParticipantId id) const {
    auto it = map_.find(id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<fl::ParticipantId, sim::NodeId> map_;
};

}  // namespace lifl::dp
