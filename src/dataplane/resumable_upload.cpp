#include "src/dataplane/resumable_upload.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

namespace lifl::dp {

namespace {

using wl::ClientEvent;
using wl::ClientState;

/// One live upload session. Heap-allocated and shared into its own event
/// callbacks; the last pending event releases it.
struct Session : std::enable_shared_from_this<Session> {
  DataPlane& plane;
  fl::ModelUpdate update;
  ResumableUpload::Config cfg;

  ClientState state = ClientState::kIdle;
  std::uint64_t total_chunks = 0;
  std::uint64_t acked = 0;       ///< chunks delivered so far
  std::uint64_t attempt = 0;     ///< session attempt (0 = first connection)
  bool resend_pending = false;   ///< next chunk re-sends a partial chunk
  std::uint32_t drops = 0;       ///< disconnects survived
  double t0 = 0.0;

  Session(DataPlane& p, fl::ModelUpdate u, ResumableUpload::Config c)
      : plane(p), update(std::move(u)), cfg(std::move(c)) {}

  sim::Simulator& sim() { return plane.cluster().sim(); }

  /// Walk the firmware transition table; an event the table forbids in the
  /// current state is a session-layer protocol bug, not a recoverable
  /// condition.
  void step(ClientEvent e) {
    const ClientState next = wl::client_transition(state, e);
    if (next == ClientState::kCount) {
      throw std::logic_error(std::string("ResumableUpload: invalid event in ") +
                             wl::client_state_name(state));
    }
    state = next;
  }

  std::uint64_t chunk_size(std::uint64_t index) const {
    const std::uint64_t cb = cfg.plan->config().chunk_bytes;
    const std::uint64_t total = update.logical_bytes;
    return std::min<std::uint64_t>(cb, total - index * cb);
  }

  /// Begin (or resume) a connected transmission attempt: draw this
  /// attempt's disconnect point over the remaining chunks, then send.
  void start_attempt() {
    const std::uint64_t left = total_chunks - acked;
    const std::uint32_t die_at = cfg.plan->disconnect_chunk(
        cfg.group, cfg.seq, attempt, left, cfg.rate_scale);
    send_chunk(/*sent_this_attempt=*/0, die_at);
  }

  /// Send the next chunk. `die_at` (1-based within this attempt) marks the
  /// chunk that disconnects mid-transmission; 0 = the attempt completes.
  void send_chunk(std::uint64_t sent_this_attempt, std::uint32_t die_at) {
    const std::uint64_t bytes = chunk_size(acked);
    auto self = shared_from_this();
    if (die_at != 0 && sent_this_attempt + 1 == die_at) {
      // This chunk dies on the wire: bill the partially transmitted bytes
      // as pure client-side latency (the gateway never sees them), then
      // park the session offline.
      const double frac =
          cfg.plan->partial_fraction(cfg.group, cfg.seq, attempt);
      const double partial_secs = frac * static_cast<double>(bytes) /
                                  cfg.uplink_bytes_per_sec;
      sim().schedule_after(partial_secs, [self]() { self->disconnect(); });
      return;
    }
    const bool resend = resend_pending;
    resend_pending = false;
    plane.client_upload_chunk(
        cfg.node, update.producer, static_cast<std::size_t>(bytes),
        cfg.uplink_bytes_per_sec,
        [self, sent_this_attempt, die_at, resend]() {
          if (self->cfg.counters != nullptr) {
            ++self->cfg.counters->chunks_sent;
            if (resend) ++self->cfg.counters->chunks_resent;
          }
          ++self->acked;
          if (self->acked == self->total_chunks) {
            self->finish();
            return;
          }
          self->step(ClientEvent::kChunkAcked);
          self->send_chunk(sent_this_attempt + 1, die_at);
        });
  }

  void disconnect() {
    step(ClientEvent::kDisconnect);
    ++drops;
    // The partial chunk must be re-sent in full after the reconnect.
    resend_pending = true;
    if (cfg.counters != nullptr) ++cfg.counters->disconnects;
    cfg.obs.instant(sim().now(), obs::Ev::kUploadDisconnect,
                    static_cast<std::uint32_t>(update.producer), drops);
    cfg.obs.count_id(&obs::Ids::upload_disconnects);
    if (cfg.on_disconnect) cfg.on_disconnect();
    const double offline =
        cfg.plan->offline_secs(cfg.group, cfg.seq, attempt);
    auto self = shared_from_this();
    sim().schedule_after(offline, [self]() { self->reconnect(); });
  }

  void reconnect() {
    step(ClientEvent::kReconnect);
    ++attempt;
    if (cfg.counters != nullptr) ++cfg.counters->resumes;
    cfg.obs.instant(sim().now(), obs::Ev::kUploadResume,
                    static_cast<std::uint32_t>(update.producer), attempt);
    cfg.obs.count_id(&obs::Ids::upload_resumes);
    if (cfg.on_resume) cfg.on_resume();
    start_attempt();
  }

  void finish() {
    step(ClientEvent::kComplete);
    const double duration = sim().now() - t0;
    if (cfg.counters != nullptr) ++cfg.counters->completed;
    cfg.obs.span(t0, sim().now(), obs::Ev::kUploadSession,
                 static_cast<std::uint32_t>(update.producer), drops);
    cfg.obs.observe_id(&obs::Ids::upload_session_secs, duration);
    // Deposit the assembled update exactly once: the chunks already paid
    // wire + ingest, so the deposit itself is free (like `seed_update`'s
    // pre-ingested semantics).
    DataPlane& p = plane;
    const sim::NodeId node = cfg.node;
    auto on_complete = std::move(cfg.on_complete);
    p.seed_update(node, std::move(update));
    if (on_complete) on_complete(duration, drops);
  }
};

}  // namespace

void ResumableUpload::launch(DataPlane& plane, fl::ModelUpdate update,
                             Config cfg) {
  if (cfg.plan == nullptr) {
    throw std::invalid_argument("ResumableUpload: cfg.plan is required");
  }
  auto s = std::make_shared<Session>(plane, std::move(update), std::move(cfg));
  if (s->cfg.counters != nullptr) ++s->cfg.counters->sessions;
  const std::uint64_t cb = s->cfg.plan->config().chunk_bytes;
  s->total_chunks =
      std::max<std::uint64_t>(1, (s->update.logical_bytes + cb - 1) / cb);
  s->t0 = s->sim().now();
  // The selection and local-training legs happened upstream (the arrival
  // chain); walk the table through them so the session's lifecycle is the
  // full idle → training → uploading → ... → done trace.
  s->step(ClientEvent::kSelected);
  s->step(ClientEvent::kTrained);
  s->start_attempt();
}

}  // namespace lifl::dp
