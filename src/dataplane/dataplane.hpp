#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/dataplane/broker.hpp"
#include "src/dataplane/config.hpp"
#include "src/dataplane/cost.hpp"
#include "src/dataplane/metrics_map.hpp"
#include "src/dataplane/routing.hpp"
#include "src/dataplane/update_pool.hpp"
#include "src/fl/model_update.hpp"
#include "src/shm/object_store.hpp"
#include "src/sim/node.hpp"
#include "src/sim/random.hpp"

namespace lifl::dp {

/// Handle for a registered always-on idle CPU draw.
using IdleHandle = std::uint64_t;

/// The cluster data plane: moves model updates between clients, gateways and
/// aggregators, with costs determined by the configured architecture.
///
/// One instance models one of the planes of Fig. 5 end to end:
///  - **LIFL**: gateway performs one-time payload processing into the
///    per-node shm object store; intra-node hand-off passes 16-byte object
///    keys via the eBPF/SKMSG sidecar and sockmap; inter-node transfers go
///    gateway-to-gateway (Appendix A); the eBPF sidecar writes metrics at
///    event time and costs nothing when idle.
///  - **Serverful**: direct gRPC-style kernel channels (serialize / kernel
///    tx / kernel rx, consumer deserializes).
///  - **Serverless**: every hop additionally traverses the container sidecar
///    and a message broker that buffers whole payloads; broker and sidecar
///    are always-on and draw idle CPU.
///
/// Transfers are sequences of `CostStep`s executed on the owning node's
/// resources, so kernel-stack contention (Fig. 4), gateway saturation and
/// NIC serialization all emerge from queueing rather than being scripted.
class DataPlane {
 public:
  /// Everything the plane keeps per worker node.
  struct NodeEnv {
    NodeEnv(sim::Simulator& sim, sim::NodeId id, sim::Rng rng,
            std::uint32_t gateway_cores, std::uint32_t gateway_queues)
        : store(rng),
          pool(sim),
          gateway(sim, "node" + std::to_string(id) + ".gw", gateway_cores,
                  gateway_queues) {}

    shm::ObjectStore store;     ///< shared-memory object store (§4.1)
    UpdatePool pool;            ///< in-place message queue of the node (§4.2)
    /// Gateway cores behind RSS receive queues (client uploads steer by
    /// client id); vertically scaled (§4.2).
    sim::MultiQueueResource gateway;
    Sockmap sockmap;            ///< local routes (Appendix A)
    InterNodeRoutes remote_routes;  ///< gateway's inter-node routing table
    MetricsMap metrics;         ///< eBPF metrics map (§4.3)
    Broker broker;              ///< broker bookkeeping (baseline planes)
  };

  DataPlane(sim::Cluster& cluster, DataPlaneConfig cfg, sim::Rng rng);
  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  const DataPlaneConfig& config() const noexcept { return cfg_; }
  sim::Cluster& cluster() noexcept { return cluster_; }
  NodeEnv& env(sim::NodeId id) { return *envs_.at(id); }

  // ------------------------------------------------------------- routing
  /// Register a consumer (aggregator) at `node`; `deliver` receives updates
  /// addressed to it. Updates the node's sockmap and every gateway's
  /// inter-node routing table (the routing manager's bpf_map_update_elem).
  void register_consumer(fl::ParticipantId id, sim::NodeId node,
                         Sockmap::DeliverFn deliver);

  /// Remove a consumer from all routing tables.
  void unregister_consumer(fl::ParticipantId id);

  /// Node hosting a registered consumer.
  std::optional<sim::NodeId> node_of(fl::ParticipantId id) const;

  // ----------------------------------------------------------- transfers
  /// Aggregator-to-aggregator transfer; routed intra-node (sockmap) or
  /// inter-node (gateway to gateway). `on_delivered` fires when the update
  /// reaches the destination runtime's queue (before its Recv processing).
  void send(fl::ParticipantId src, sim::NodeId src_node, fl::ParticipantId dst,
            fl::ModelUpdate update, sim::Task on_delivered = {});

  /// Client upload into `dst_node`'s pending pool through the node gateway
  /// (or broker path on baseline planes); the upload steers to the gateway
  /// RSS queue of `update.producer`. Client-side costs are excluded,
  /// matching Appendix F.
  void client_upload(sim::NodeId dst_node, fl::ModelUpdate update,
                     double uplink_bytes_per_sec,
                     sim::Task on_enqueued = {});

  /// One chunk of a resumable client upload: client-wire latency plus the
  /// gateway ingest cost for `bytes`, steered to the RSS queue of `flow`
  /// like the full-stream path. `on_acked` fires when the gateway has
  /// processed (acked) the chunk. No update is deposited — the session
  /// layer assembles acked chunks and deposits the completed update once
  /// (`seed_update`), so samples are never double-counted.
  void client_upload_chunk(sim::NodeId dst_node, std::uint64_t flow,
                           std::size_t bytes, double uplink_bytes_per_sec,
                           sim::Task on_acked);

  /// Deposit an update directly into `node`'s pool as if it had already
  /// been ingested (in-place queued in shm on the LIFL plane), at zero
  /// cost. Used by microbenchmarks that start from a known queue state
  /// (Fig. 8: "the estimated Q equals the actual queue length").
  void seed_update(sim::NodeId node, fl::ModelUpdate update);

  /// CPU cycles a consumer must spend in its Recv step to take ownership of
  /// a delivered update (shm read for LIFL, deserialization for kernel
  /// planes; plus full client-stream decoding if no gateway/broker
  /// terminated the upload). Paid by the runtime, which is single-threaded.
  double recv_cycles(const fl::ModelUpdate& update) const noexcept;

  /// A consumer on `node` takes one queued update out of the node's pending
  /// pool; `ready` fires when the payload is at the consumer. On the LIFL
  /// plane this is free — the update already sits in shared memory and the
  /// consumer holds its key (§4.2 in-place queuing). On a bare serverful
  /// plane the queue is in the aggregator's own memory (Fig. 5 monolith) —
  /// also free. On brokered planes the queue lives in the broker, so every
  /// consumption is a real broker delivery: dequeue processing on the broker
  /// service plus kernel/wire hops to the consumer — the "inefficient
  /// message queuing" overhead of §2.3.
  void consume(sim::NodeId node, const fl::ModelUpdate& update,
               sim::Task ready);

  /// Record an aggregation-task execution time observed by the sidecar
  /// attached to an aggregator on `node` (§4.3): event-driven metric write.
  void record_agg_exec(sim::NodeId node, double exec_secs);

  // ------------------------------------------------- always-on overheads
  /// Register a constant CPU draw (broker, container sidecar) on a node.
  IdleHandle register_idle_draw(sim::NodeId node, sim::CostTag tag,
                                double cores);
  /// Settle and remove a draw.
  void remove_idle_draw(IdleHandle h);
  /// Bill all idle draws up to sim.now(). Call before reading CPU ledgers.
  void settle_idle_costs();

  /// Vertical scaling of a node gateway (§4.2).
  void set_gateway_cores(sim::NodeId node, std::uint32_t cores);

  /// The cluster's message-broker service threads (brokered planes only):
  /// a fixed-capacity resource on `config().broker_node` that every
  /// brokered message transits (Fig. 2(b)).
  sim::Resource& broker_service() noexcept { return broker_svc_; }

  /// Total data moved across nodes (bytes), for locality accounting.
  std::uint64_t inter_node_bytes() const noexcept { return inter_node_bytes_; }
  /// Total intra-node update hand-offs served by shared memory.
  std::uint64_t shm_deliveries() const noexcept { return shm_deliveries_; }

  /// Restore checkpointed transfer counters verbatim.
  void restore_transfer_counters(std::uint64_t inter_node_bytes,
                                 std::uint64_t shm_deliveries) noexcept {
    inter_node_bytes_ = inter_node_bytes;
    shm_deliveries_ = shm_deliveries;
  }

 private:
  void deliver(sim::NodeId dst_node, fl::ParticipantId dst,
               fl::ModelUpdate update, sim::Task done);
  /// Put the update payload into `node`'s store and attach a release lease.
  void attach_shm_lease(sim::NodeId node, fl::ModelUpdate& update);

  std::vector<CostStep> intra_node_steps(sim::Node& node, std::size_t bytes);
  std::vector<CostStep> inter_node_steps(sim::Node& src, sim::Node& dst,
                                         std::size_t bytes,
                                         std::uint64_t flow);
  std::vector<CostStep> ingest_steps(sim::Node& node, std::size_t bytes,
                                     std::uint64_t flow);
  /// Appends the broker leg of a brokered path: hop to the broker node if
  /// needed, broker processing on the broker service threads, then the hop
  /// from the broker to `dst` (Fig. 2(b) indirection).
  void append_broker_leg(std::vector<CostStep>& steps, sim::Node& src,
                         sim::Node& dst, std::size_t bytes,
                         double extra_broker_cycles_per_byte = 0.0);

  sim::Cluster& cluster_;
  DataPlaneConfig cfg_;
  sim::Resource broker_svc_;
  StepRunner runner_;
  std::vector<std::unique_ptr<NodeEnv>> envs_;
  std::unordered_map<fl::ParticipantId, sim::NodeId> consumers_;

  struct IdleDraw {
    sim::NodeId node;
    sim::CostTag tag;
    double cores;
    sim::SimTime since;
  };
  std::unordered_map<IdleHandle, IdleDraw> idle_draws_;
  IdleHandle next_idle_handle_ = 1;

  std::uint64_t inter_node_bytes_ = 0;
  std::uint64_t shm_deliveries_ = 0;
};

}  // namespace lifl::dp
