#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace lifl::dp {

/// Message broker bookkeeping (the stateful, always-on component of the
/// baseline serverless plane, Fig. 2(b)/Fig. 5).
///
/// The broker's processing *cost* is modeled as pipeline steps by the data
/// plane; this class tracks what the paper's Appendix F measures about it:
/// how many bytes it buffers (brokers hold whole payloads, unlike LIFL's
/// in-place keys) and its always-on footprint.
class Broker {
 public:
  /// A payload entered the broker's queue.
  void buffer(std::size_t bytes) noexcept {
    bytes_buffered_ += bytes;
    peak_bytes_ = std::max(peak_bytes_, bytes_buffered_);
    total_bytes_ += bytes;
    ++messages_;
  }

  /// A payload left the broker's queue.
  void unbuffer(std::size_t bytes) noexcept {
    bytes_buffered_ -= std::min(bytes_buffered_, bytes);
  }

  /// Restore checkpointed counters verbatim.
  void restore(std::size_t bytes_buffered, std::size_t peak_bytes,
               std::uint64_t total_bytes, std::uint64_t messages) noexcept {
    bytes_buffered_ = bytes_buffered;
    peak_bytes_ = peak_bytes;
    total_bytes_ = total_bytes;
    messages_ = messages;
  }

  std::size_t bytes_buffered() const noexcept { return bytes_buffered_; }
  std::size_t peak_bytes() const noexcept { return peak_bytes_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t messages() const noexcept { return messages_; }

 private:
  std::size_t bytes_buffered_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace lifl::dp
