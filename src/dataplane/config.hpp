#pragma once

#include <cstdint>

#include "src/sim/time.hpp"

namespace lifl::dp {

/// Which data-plane architecture moves model updates (Fig. 5).
enum class PlaneKind : std::uint8_t {
  kLifl,        ///< shared-memory object store + SKMSG key passing + gateway
  kServerful,   ///< direct gRPC-style kernel channels (SF)
  kServerless,  ///< container sidecar + message broker indirection (SL)
};

/// Which sidecar mediates aggregator traffic.
enum class SidecarKind : std::uint8_t {
  kNone,       ///< serverful monolith: no sidecar
  kContainer,  ///< container-based sidecar: per-byte interception + idle draw
  kEbpf,       ///< LIFL: eBPF/SKMSG, event-driven, zero idle cost
};

/// Data-plane configuration; systems (SF/SL/LIFL) are points in this space.
struct DataPlaneConfig {
  PlaneKind plane = PlaneKind::kLifl;
  SidecarKind sidecar = SidecarKind::kEbpf;
  /// Route traffic through a message broker (always true for the serverless
  /// baseline; true on a serverful plane gives the SF-micro setup of Fig. 5).
  bool use_broker = false;
  /// Carry real tensors through the store (small models) or logical bytes.
  bool real_payloads = false;
  /// Node hosting the message broker. Fig. 2(b) shows a *single* stateful
  /// broker service in the cluster datapath: every brokered message transits
  /// this node, so the broker's processing capacity — not the aggregators' —
  /// can bound the aggregation service (§2.3 "inefficient message queuing").
  sim::NodeId broker_node = 0;
  /// Broker worker threads. Unlike LIFL's gateway (§4.2), the broker is not
  /// vertically scaled with load.
  std::uint32_t broker_cores = 2;
  /// Cores assigned to each node's gateway at start-up (vertically scaled
  /// at runtime via DataPlane::set_gateway_cores, §4.2).
  std::uint32_t gateway_cores = 2;
  /// RSS receive queues per node gateway: client uploads are hash-steered
  /// by client id, so one hot node's ingest drains on all its gateway
  /// cores while each client's uploads stay in order (ordering holds under
  /// a stable core count; rescaling reprograms the steering like a real
  /// RSS indirection-table update and may transiently reorder a flow).
  /// 1 = the classic single-queue gateway (bit-identical to the pre-RSS
  /// model); 0 = one queue per gateway core (full fan-out).
  std::uint32_t gateway_queues = 1;
};

/// Shorthand constructors for the architectures under study (Fig. 5).
inline DataPlaneConfig lifl_plane(bool real_payloads = false) {
  return {PlaneKind::kLifl, SidecarKind::kEbpf, false, real_payloads};
}
inline DataPlaneConfig serverful_plane(bool real_payloads = false) {
  return {PlaneKind::kServerful, SidecarKind::kNone, false, real_payloads};
}
inline DataPlaneConfig serverful_micro_plane(bool real_payloads = false) {
  return {PlaneKind::kServerful, SidecarKind::kNone, true, real_payloads};
}
inline DataPlaneConfig serverless_plane(bool real_payloads = false) {
  DataPlaneConfig c{PlaneKind::kServerless, SidecarKind::kContainer, true,
                    real_payloads};
  // The baseline's broker is a single stateful service process; its
  // (per-message ordered) delivery loop is what queues under bursts.
  c.broker_cores = 1;
  return c;
}

}  // namespace lifl::dp
