#pragma once

#include <functional>

#include "src/dataplane/dataplane.hpp"

namespace lifl::dp {

/// Measurement helper: performs one aggregator-to-aggregator transfer of
/// `bytes` through the plane and reports the end-to-end latency — from
/// send() to the moment the consumer has *taken ownership* of the payload
/// (its Recv-side processing included), which is what Fig. 7(a) measures.
///
/// The probe registers a bare consumer that pays the plane's Recv cost on
/// the destination node's cores, exactly as `AggregatorRuntime` does.
inline void measure_transfer(DataPlane& plane, sim::NodeId src_node,
                             sim::NodeId dst_node, std::size_t bytes,
                             std::function<void(double latency)> done,
                             fl::ParticipantId id_base = 900'000) {
  auto& sim = plane.cluster().sim();
  const fl::ParticipantId src = id_base;
  const fl::ParticipantId dst = id_base + 1;
  const double t0 = sim.now();

  plane.register_consumer(
      dst, dst_node,
      [&plane, dst_node, dst, t0, done = std::move(done)](fl::ModelUpdate u) {
        sim::Node& node = plane.cluster().node(dst_node);
        const double recv_cycles = plane.recv_cycles(u);
        node.cores().acquire(
            recv_cycles / node.config().cpu_hz,
            [&plane, &node, dst, t0, recv_cycles, done = std::move(done)]() {
              node.cpu().add(sim::CostTag::kSerialization, recv_cycles);
              const double latency = plane.cluster().sim().now() - t0;
              plane.unregister_consumer(dst);
              if (done) done(latency);
            });
      });

  fl::ModelUpdate u;
  u.producer = src;
  u.sample_count = 1;
  u.logical_bytes = bytes;
  u.created_at = t0;
  plane.send(src, src_node, dst, std::move(u));
}

/// Measurement helper for the client->aggregator ingest path of Fig. 13:
/// uploads one update of `bytes` into `node`'s pool and reports the latency
/// until a consumer popped and Recv-processed it (client-side excluded).
inline void measure_ingest(DataPlane& plane, sim::NodeId node_id,
                           std::size_t bytes, double uplink_bytes_per_sec,
                           std::function<void(double latency)> done) {
  auto& sim = plane.cluster().sim();
  const double t0 = sim.now();
  fl::ModelUpdate u;
  u.sample_count = 1;
  u.logical_bytes = bytes;
  u.created_at = t0;
  plane.client_upload(node_id, std::move(u), uplink_bytes_per_sec);
  plane.env(node_id).pool.pop_async(
      [&plane, node_id, t0, done = std::move(done)](fl::ModelUpdate got) {
        // Consuming the queued update is a broker delivery on brokered
        // planes (free under in-place queuing) — same path the
        // AggregatorRuntime takes.
        auto shared = std::make_shared<fl::ModelUpdate>(std::move(got));
        plane.consume(node_id, *shared,
                      [&plane, node_id, t0, shared,
                       done = std::move(done)]() mutable {
          sim::Node& node = plane.cluster().node(node_id);
          const double recv_cycles = plane.recv_cycles(*shared);
          node.cores().acquire(
              recv_cycles / node.config().cpu_hz,
              [&plane, &node, t0, recv_cycles, done = std::move(done)]() {
                node.cpu().add(sim::CostTag::kSerialization, recv_cycles);
                if (done) done(plane.cluster().sim().now() - t0);
              });
        });
      });
}

}  // namespace lifl::dp
