#pragma once

#include <algorithm>
#include <array>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lifl::dp {

/// In-kernel, key-value metrics table written by the eBPF sidecar (§4.3).
///
/// Mirrors a BPF map: the sidecar program updates entries at event time
/// (send() invocations) with no userspace involvement; the per-node LIFL
/// agent periodically drains it and feeds the metrics server. Keys are
/// free-form metric names (e.g. "agg_exec_sum", "arrivals").
///
/// The well-known sidecar keys are *interned*: event-time writers on the
/// gateway/aggregator hot paths call `add(Id)` — a flat array index, no
/// string hashing — while the string API (the agent/metrics-server path)
/// keeps working unchanged for every key, well-known or not. The two
/// views are one store: a fast slot surfaces under its string key in
/// `get`/`drain`/`sorted_entries` exactly as the hashed entry used to,
/// so checkpoint encodings are byte-identical to the pre-interned map.
class MetricsMap {
 public:
  /// Interned ids of the well-known hot-path metrics.
  enum Id : std::size_t {
    kArrivals = 0,
    kAggExecSum,
    kAggExecCount,
    kSends,
    kSendBytes,
    kIdCount  // number of interned ids (not a metric)
  };

  /// Hot path: add `delta` to an interned metric (creating it at zero).
  void add(Id id, double delta = 1.0) {
    fast_[id] += delta;
    touched_[id] = true;
  }

  /// Add `delta` to the metric (creating it at zero).
  void increment(const std::string& key, double delta = 1.0) {
    const int f = fast_index(key);
    if (f >= 0) {
      add(static_cast<Id>(f), delta);
    } else {
      values_[key] += delta;
    }
  }

  /// Overwrite a metric.
  void set(const std::string& key, double value) {
    const int f = fast_index(key);
    if (f >= 0) {
      fast_[static_cast<std::size_t>(f)] = value;
      touched_[static_cast<std::size_t>(f)] = true;
    } else {
      values_[key] = value;
    }
  }

  /// Read a metric; 0.0 if absent.
  double get(const std::string& key) const {
    const int f = fast_index(key);
    if (f >= 0) return fast_[static_cast<std::size_t>(f)];
    auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
  }

  /// Read a metric and reset it to zero (the agent's poll-and-drain).
  double drain(const std::string& key) {
    const int f = fast_index(key);
    if (f >= 0) {
      const double v = fast_[static_cast<std::size_t>(f)];
      fast_[static_cast<std::size_t>(f)] = 0.0;
      return v;  // stays touched: a drained entry still exists, at zero
    }
    auto it = values_.find(key);
    if (it == values_.end()) return 0.0;
    const double v = it->second;
    it->second = 0.0;
    return v;
  }

  std::size_t size() const noexcept {
    std::size_t n = values_.size();
    for (const bool t : touched_) n += t ? 1 : 0;
    return n;
  }

  /// Deterministic (key-sorted) view of the map, for checkpoint encoding.
  std::vector<std::pair<std::string, double>> sorted_entries() const {
    std::vector<std::pair<std::string, double>> out(values_.begin(),
                                                    values_.end());
    for (std::size_t i = 0; i < kIdCount; ++i) {
      if (touched_[i]) out.emplace_back(fast_key(i), fast_[i]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Replace the map's contents with a checkpointed view.
  void restore(const std::vector<std::pair<std::string, double>>& entries) {
    values_.clear();
    fast_.fill(0.0);
    touched_.fill(false);
    for (const auto& kv : entries) {
      const int f = fast_index(kv.first);
      if (f >= 0) {
        fast_[static_cast<std::size_t>(f)] = kv.second;
        touched_[static_cast<std::size_t>(f)] = true;
      } else {
        values_[kv.first] = kv.second;
      }
    }
  }

 private:
  static const char* fast_key(std::size_t id);
  static int fast_index(const std::string& key);

  std::array<double, kIdCount> fast_{};
  std::array<bool, kIdCount> touched_{};
  std::unordered_map<std::string, double> values_;
};

/// Metric keys shared between the sidecar/gateway writers and the agent.
namespace metric_keys {
inline constexpr const char* kArrivals = "arrivals";
inline constexpr const char* kAggExecSum = "agg_exec_sum";
inline constexpr const char* kAggExecCount = "agg_exec_count";
inline constexpr const char* kSends = "sends";
inline constexpr const char* kSendBytes = "send_bytes";
}  // namespace metric_keys

inline const char* MetricsMap::fast_key(std::size_t id) {
  switch (static_cast<Id>(id)) {
    case kArrivals:
      return metric_keys::kArrivals;
    case kAggExecSum:
      return metric_keys::kAggExecSum;
    case kAggExecCount:
      return metric_keys::kAggExecCount;
    case kSends:
      return metric_keys::kSends;
    case kSendBytes:
      return metric_keys::kSendBytes;
    case kIdCount:
      break;
  }
  return "";
}

inline int MetricsMap::fast_index(const std::string& key) {
  for (std::size_t i = 0; i < kIdCount; ++i) {
    if (key == fast_key(i)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace lifl::dp
