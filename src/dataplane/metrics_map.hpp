#pragma once

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lifl::dp {

/// In-kernel, key-value metrics table written by the eBPF sidecar (§4.3).
///
/// Mirrors a BPF map: the sidecar program updates entries at event time
/// (send() invocations) with no userspace involvement; the per-node LIFL
/// agent periodically drains it and feeds the metrics server. Keys are
/// free-form metric names (e.g. "agg_exec_sum", "arrivals").
class MetricsMap {
 public:
  /// Add `delta` to the metric (creating it at zero).
  void increment(const std::string& key, double delta = 1.0) {
    values_[key] += delta;
  }

  /// Overwrite a metric.
  void set(const std::string& key, double value) { values_[key] = value; }

  /// Read a metric; 0.0 if absent.
  double get(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
  }

  /// Read a metric and reset it to zero (the agent's poll-and-drain).
  double drain(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) return 0.0;
    const double v = it->second;
    it->second = 0.0;
    return v;
  }

  std::size_t size() const noexcept { return values_.size(); }

  /// Deterministic (key-sorted) view of the map, for checkpoint encoding.
  std::vector<std::pair<std::string, double>> sorted_entries() const {
    std::vector<std::pair<std::string, double>> out(values_.begin(),
                                                    values_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Replace the map's contents with a checkpointed view.
  void restore(const std::vector<std::pair<std::string, double>>& entries) {
    values_.clear();
    for (const auto& kv : entries) values_[kv.first] = kv.second;
  }

 private:
  std::unordered_map<std::string, double> values_;
};

/// Metric keys shared between the sidecar/gateway writers and the agent.
namespace metric_keys {
inline constexpr const char* kArrivals = "arrivals";
inline constexpr const char* kAggExecSum = "agg_exec_sum";
inline constexpr const char* kAggExecCount = "agg_exec_count";
inline constexpr const char* kSends = "sends";
inline constexpr const char* kSendBytes = "send_bytes";
}  // namespace metric_keys

}  // namespace lifl::dp
