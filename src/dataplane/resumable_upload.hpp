#pragma once

#include <cstdint>
#include <functional>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/model_update.hpp"
#include "src/obs/obs.hpp"
#include "src/workload/lifecycle.hpp"

namespace lifl::dp {

/// Chunk-wise resumable client upload driven by the firmware client state
/// machine (`wl::client_transition`). The session sends the update in
/// `chunk_bytes` chunks, stop-and-wait: each chunk is billed through
/// `DataPlane::client_upload_chunk` (client wire + gateway ingest) and the
/// next chunk starts on the previous chunk's ack. The `wl::LifecyclePlan`
/// deterministically schedules mid-upload disconnects: the dying chunk's
/// partially transmitted bytes are billed as pure wire latency and never
/// acked, the session parks offline for the plan's capped backoff, and on
/// reconnect it resumes from the last acked offset — re-sending the partial
/// chunk in full (`chunks_resent`). Only when every chunk has been acked is
/// the assembled update deposited once (`DataPlane::seed_update`), so a
/// sample is never counted twice no matter how many times the session
/// disconnected.
///
/// All randomness comes from the plan's stateless hashes of
/// (group, seq, attempt); the session itself is event-driven on the group's
/// simulator, so flaky campaigns keep bitwise 1-vs-K-shard equivalence.
class ResumableUpload {
 public:
  /// Aggregated session telemetry (owned by the campaign group).
  struct Counters {
    std::uint64_t sessions = 0;       ///< sessions launched
    std::uint64_t completed = 0;      ///< updates fully delivered
    std::uint64_t disconnects = 0;    ///< mid-upload session drops
    std::uint64_t resumes = 0;        ///< successful reconnect+resume events
    std::uint64_t chunks_sent = 0;    ///< chunks acked by the gateway
    std::uint64_t chunks_resent = 0;  ///< acked chunks that were re-sends
  };

  struct Config {
    sim::NodeId node = 0;  ///< ingress node (the group's gateway)
    double uplink_bytes_per_sec = 1.0;
    const wl::LifecyclePlan* plan = nullptr;  ///< required
    std::uint64_t group = 0;
    std::uint64_t seq = 0;      ///< the upload's arrival sequence number
    double rate_scale = 1.0;    ///< tier disconnect multiplier
    Counters* counters = nullptr;
    /// Passive observability sink (tracing + typed metrics). Emitting never
    /// schedules sim events, so an attached sink leaves results bitwise
    /// identical. Default-constructed == disabled.
    obs::GroupObs obs;
    /// Fires when the update is deposited: (upload duration in sim seconds
    /// from launch, number of disconnects the session survived).
    std::function<void(double, std::uint32_t)> on_complete;
    sim::Task on_disconnect;  ///< fires at each mid-upload drop (parking)
    sim::Task on_resume;      ///< fires at each reconnect (un-parking)
  };

  /// Start a session; it owns itself and frees on completion. Throws
  /// `std::invalid_argument` if `cfg.plan` is null.
  static void launch(DataPlane& plane, fl::ModelUpdate update, Config cfg);
};

}  // namespace lifl::dp
