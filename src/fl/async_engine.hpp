#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/model_update.hpp"

namespace lifl::fl {

enum class AggTiming : std::uint8_t;  // defined in aggregator_runtime.hpp

/// Asynchronous FL aggregation engine (Fig. 11; FedBuff/PAPAYA-style
/// buffered asynchronous aggregation). The paper lists asynchronous FL as
/// future work for LIFL; this extension implements it on the same data
/// plane: updates stream in continuously, and every `aggregation_goal`
/// accepted updates produce a new global model version — eagerly (fold on
/// arrival) or lazily (fold per batch).
class AsyncEngine {
 public:
  struct Config {
    sim::NodeId node = 0;
    std::uint32_t aggregation_goal = 2;  ///< updates per version bump
    std::uint32_t concurrency = 4;       ///< concurrently training clients
    AggTiming timing;                    ///< eager or lazy folding
    std::size_t update_bytes = 0;
    /// Updates trained from a version older than (current - max_staleness)
    /// are discarded (basic staleness control).
    std::uint32_t max_staleness = 1'000'000;
  };

  AsyncEngine(dp::DataPlane& plane, Config cfg);
  ~AsyncEngine();
  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Begin consuming updates from the node pool.
  void start();
  /// Stop consuming; buffered updates return to the pool.
  void stop();

  /// Simulated times at which new global versions were produced.
  const std::vector<double>& version_times() const noexcept {
    return version_times_;
  }
  std::uint32_t current_version() const noexcept { return version_; }
  std::uint32_t stale_dropped() const noexcept { return stale_dropped_; }
  /// The latest global parameters (real-payload mode), if any.
  std::shared_ptr<const ml::Tensor> global_params() const noexcept {
    return global_;
  }

 private:
  void pull();
  void on_update(ModelUpdate u);
  void process(ModelUpdate u);
  void maybe_emit_version();

  dp::DataPlane& plane_;
  sim::Simulator& sim_;
  Config cfg_;
  FedAvgAccumulator acc_;
  std::deque<ModelUpdate> lazy_buffer_;
  std::shared_ptr<bool> alive_;
  bool running_ = false;
  bool processing_ = false;
  std::uint32_t version_ = 1;
  std::uint32_t stale_dropped_ = 0;
  std::vector<double> version_times_;
  std::shared_ptr<const ml::Tensor> global_;
};

}  // namespace lifl::fl
