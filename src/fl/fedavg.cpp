#include "src/fl/fedavg.hpp"

#include <stdexcept>

#include "src/ml/kernels.hpp"

namespace lifl::fl {

namespace {

namespace k = ml::kernels;

}  // namespace

void FedAvgAccumulator::add(const ModelUpdate& update, double scale) {
  if (update.sample_count == 0) {
    throw std::invalid_argument("FedAvg: update with zero sample_count");
  }
  if (!(scale > 0.0)) {
    throw std::invalid_argument("FedAvg: fold scale must be positive");
  }
  // Effective weight: the update's carried weight (an intermediate
  // aggregate's discounted total) or its raw sample count, times the
  // caller's staleness factor. scale == 1 with no carried weight reduces
  // to exactly the historical integer coefficient.
  const double eff =
      (update.weight > 0.0 ? update.weight
                           : static_cast<double>(update.sample_count)) *
      scale;
  finalized_.reset();
  if (update.tensor) {
    add_tensor_weighted(update.tensor, static_cast<float>(eff));
  }
  // Logical-only weight: contributes to the divisor and nothing to the sum
  // (the defined zero tensor) — exact in sum form, no rescaling.
  total_samples_ += update.sample_count;
  total_weight_ += eff;
  updates_folded_ += update.updates_folded;
}

void FedAvgAccumulator::add(const std::shared_ptr<const ml::Tensor>& params,
                            std::uint64_t sample_count) {
  if (sample_count == 0) {
    throw std::invalid_argument("FedAvg: zero sample_count");
  }
  finalized_.reset();
  if (params) {
    add_tensor_weighted(params, static_cast<float>(sample_count));
  }
  total_samples_ += sample_count;
  total_weight_ += static_cast<double>(sample_count);
  ++updates_folded_;
}

void FedAvgAccumulator::add_tensor_weighted(
    const std::shared_ptr<const ml::Tensor>& params, float weight) {
  const std::size_t n = params->size();
  std::size_t have = n;
  if (pending_) {
    have = pending_->size();
  } else if (sum_) {
    have = sum_->size();
  }
  if (n != have) {
    throw std::invalid_argument("FedAvg: tensor size mismatch");
  }
  const float w = weight;
  if (!pending_) {
    // Park the update zero-copy (a shared_ptr to the shm-resident tensor)
    // until a partner arrives: two updates then fold in ONE accumulator
    // sweep instead of two.
    pending_ = params;
    pending_weight_ = w;
    return;
  }
  const k::Ops& ops = k::ops();
  if (!sum_) {
    sum_ = ml::TensorPool::global().acquire(n);
    ops.axpby_into(sum_->data(), pending_weight_, pending_->data(), w,
                   params->data(), n);
  } else {
    ops.axpy2(sum_->data(), pending_weight_, pending_->data(), w,
              params->data(), n);
  }
  pending_.reset();
  pending_weight_ = 0.0f;
}

void FedAvgAccumulator::flush_pending() {
  if (!pending_) return;
  const k::Ops& ops = k::ops();
  if (!sum_) {
    sum_ = ml::TensorPool::global().acquire(pending_->size());
    ops.scale_into(sum_->data(), pending_weight_, pending_->data(),
                   pending_->size());
  } else {
    ops.axpy(sum_->data(), pending_weight_, pending_->data(),
             pending_->size());
  }
  pending_.reset();
  pending_weight_ = 0.0f;
}

void FedAvgAccumulator::finalize() const {
  if (finalized_) return;
  auto* self = const_cast<FedAvgAccumulator*>(this);
  self->flush_pending();
  if (!sum_ || total_weight_ <= 0.0) return;
  // Divide by the *effective* weight total. With unit scales this is the
  // exact integer sample total (integer sums are exact in double), so the
  // synchronous path produces bit-identical averages to the historical
  // integer-divisor code.
  const auto inv = static_cast<float>(1.0 / total_weight_);
  auto avg = ml::TensorPool::global().acquire(sum_->size());
  k::ops().scale_into(avg->data(), inv, sum_->data(), sum_->size());
  finalized_ = std::move(avg);
}

std::shared_ptr<const ml::Tensor> FedAvgAccumulator::result() const {
  finalize();
  return finalized_;
}

ModelUpdate FedAvgAccumulator::make_update(std::uint32_t model_version,
                                           ParticipantId producer,
                                           std::size_t logical_bytes) const {
  ModelUpdate u;
  u.model_version = model_version;
  u.producer = producer;
  u.sample_count = total_samples_;
  u.updates_folded = updates_folded_;
  // Carry the effective weight so a parent folds this aggregate at its
  // discounted worth (hierarchical == flat under staleness weighting). In
  // the unweighted case this equals sample_count exactly — same bits.
  u.weight = total_weight_;
  u.logical_bytes = logical_bytes;
  u.tensor = result();
  return u;
}

void FedAvgAccumulator::reset() {
  // Dropping the pooled handles recycles the buffers (unless a consumer
  // still holds the finalized average — then it recycles when they drop).
  sum_.reset();
  pending_.reset();
  pending_weight_ = 0.0f;
  finalized_.reset();
  total_samples_ = 0;
  total_weight_ = 0.0;
  updates_folded_ = 0;
}

ml::Tensor FedAvgAccumulator::batch_average(
    const std::vector<std::pair<const ml::Tensor*, std::uint64_t>>& updates) {
  if (updates.empty()) return {};
  const std::size_t n = updates.front().first->size();
  ml::Tensor out(n, 0.0f);
  double total = 0.0;
  for (const auto& [t, c] : updates) {
    if (t->size() != n) {
      throw std::invalid_argument("FedAvg: batch tensor size mismatch");
    }
    total += static_cast<double>(c);
  }
  const k::Ops& ops = k::ops();
  std::size_t i = 0;
  for (; i + 2 <= updates.size(); i += 2) {
    const auto& [t0, c0] = updates[i];
    const auto& [t1, c1] = updates[i + 1];
    ops.axpy2(out.data(),
              static_cast<float>(static_cast<double>(c0) / total), t0->data(),
              static_cast<float>(static_cast<double>(c1) / total), t1->data(),
              n);
  }
  for (; i < updates.size(); ++i) {
    const auto& [t, c] = updates[i];
    ops.axpy(out.data(), static_cast<float>(static_cast<double>(c) / total),
             t->data(), n);
  }
  return out;
}

}  // namespace lifl::fl
