#include "src/fl/fedavg.hpp"

#include <stdexcept>

namespace lifl::fl {

void FedAvgAccumulator::add(const ModelUpdate& update) {
  if (update.sample_count == 0) {
    throw std::invalid_argument("FedAvg: update with zero sample_count");
  }
  if (update.tensor) {
    add_tensor_weighted(update.tensor, update.sample_count);
  } else {
    total_samples_ += update.sample_count;
  }
  updates_folded_ += update.updates_folded;
}

void FedAvgAccumulator::add(const std::shared_ptr<const ml::Tensor>& params,
                            std::uint64_t sample_count) {
  if (sample_count == 0) {
    throw std::invalid_argument("FedAvg: zero sample_count");
  }
  if (params) {
    add_tensor_weighted(params, sample_count);
  } else {
    total_samples_ += sample_count;
  }
  ++updates_folded_;
}

void FedAvgAccumulator::add_tensor_weighted(
    const std::shared_ptr<const ml::Tensor>& params,
    std::uint64_t sample_count) {
  const std::uint64_t new_total = total_samples_ + sample_count;
  if (!avg_) {
    // First tensor: copy-on-write start of the running average.
    avg_ = std::make_shared<ml::Tensor>(*params);
    if (total_samples_ > 0) {
      // Logical-only weight arrived earlier; it is defined to carry a zero
      // tensor, keeping the weighted-mean invariant exact in mixed mode.
      avg_->scale(static_cast<float>(static_cast<double>(sample_count) /
                                     static_cast<double>(new_total)));
    }
  } else {
    // avg += (w - avg) * c / (C + c)
    const float lambda = static_cast<float>(static_cast<double>(sample_count) /
                                            static_cast<double>(new_total));
    avg_->scale(1.0f - lambda);
    avg_->axpy(lambda, *params);
  }
  total_samples_ = new_total;
}

std::shared_ptr<const ml::Tensor> FedAvgAccumulator::result() const {
  return avg_;
}

ModelUpdate FedAvgAccumulator::make_update(std::uint32_t model_version,
                                           ParticipantId producer,
                                           std::size_t logical_bytes) const {
  ModelUpdate u;
  u.model_version = model_version;
  u.producer = producer;
  u.sample_count = total_samples_;
  u.updates_folded = updates_folded_;
  u.logical_bytes = logical_bytes;
  u.tensor = avg_;
  return u;
}

void FedAvgAccumulator::reset() {
  avg_.reset();
  total_samples_ = 0;
  updates_folded_ = 0;
}

ml::Tensor FedAvgAccumulator::batch_average(
    const std::vector<std::pair<const ml::Tensor*, std::uint64_t>>& updates) {
  if (updates.empty()) return {};
  ml::Tensor out(updates.front().first->size(), 0.0f);
  double total = 0.0;
  for (const auto& [t, c] : updates) total += static_cast<double>(c);
  for (const auto& [t, c] : updates) {
    out.axpy(static_cast<float>(static_cast<double>(c) / total), *t);
  }
  return out;
}

}  // namespace lifl::fl
