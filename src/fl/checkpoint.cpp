#include "src/fl/checkpoint.hpp"

namespace lifl::fl {

bool CheckpointManager::maybe_checkpoint(std::uint32_t version,
                                         std::size_t model_bytes,
                                         std::function<void()> on_persisted) {
  if (cfg_.every_n_versions == 0 || version % cfg_.every_n_versions != 0) {
    return false;
  }
  begin_write(version, model_bytes, std::move(on_persisted));
  return true;
}

void CheckpointManager::begin_write(std::uint32_t version, std::size_t bytes,
                                    std::function<void()> on_persisted) {
  ++in_flight_;
  ++started_;
  bytes_in_flight_ += bytes;
  sim::Node& node = cluster_.node(node_);
  const double marshal_cycles =
      cfg_.marshal_cycles_per_byte * static_cast<double>(bytes);
  const double write_secs =
      static_cast<double>(bytes) / cfg_.storage_bytes_per_sec;
  // Marshal on the node (billed, background priority), then the storage
  // write is pure latency off the node.
  node.cores().acquire(
      marshal_cycles / node.config().cpu_hz,
      [this, &node, marshal_cycles, write_secs, version, bytes,
       done = std::move(on_persisted)]() mutable {
        node.cpu().add(sim::CostTag::kCheckpoint, marshal_cycles);
        cluster_.sim().schedule_after(
            write_secs, [this, version, bytes, done = std::move(done)]() {
              persisted_.push_back(version);
              --in_flight_;
              bytes_in_flight_ -= bytes;
              bytes_written_ += bytes;
              if (done) done();
            });
      });
}

}  // namespace lifl::fl
