#include "src/fl/async_engine.hpp"

#include "src/fl/aggregator_runtime.hpp"
#include "src/sim/calibration.hpp"

namespace lifl::fl {

namespace calib = sim::calib;

AsyncEngine::AsyncEngine(dp::DataPlane& plane, Config cfg)
    : plane_(plane),
      sim_(plane.cluster().sim()),
      cfg_(cfg),
      alive_(std::make_shared<bool>(true)) {}

AsyncEngine::~AsyncEngine() { stop(); }

void AsyncEngine::start() {
  if (running_) return;
  running_ = true;
  *alive_ = true;
  pull();
}

void AsyncEngine::stop() {
  if (!running_) return;
  running_ = false;
  *alive_ = false;
  while (!lazy_buffer_.empty()) {
    plane_.env(cfg_.node).pool.push(std::move(lazy_buffer_.front()));
    lazy_buffer_.pop_front();
  }
}

void AsyncEngine::pull() {
  plane_.env(cfg_.node).pool.pop_async(
      [this, alive = alive_](ModelUpdate u) {
        if (!*alive) {
          plane_.env(cfg_.node).pool.push(std::move(u));
          return;
        }
        on_update(std::move(u));
        pull();  // async: the engine never stops consuming
      });
}

void AsyncEngine::on_update(ModelUpdate u) {
  // Staleness control: an update trained from a version too far behind the
  // current global model is discarded.
  if (version_ > u.model_version &&
      version_ - u.model_version > cfg_.max_staleness) {
    ++stale_dropped_;
    return;
  }
  if (cfg_.timing == AggTiming::kEager) {
    process(std::move(u));
    return;
  }
  lazy_buffer_.push_back(std::move(u));
  if (lazy_buffer_.size() + acc_.updates_folded() >= cfg_.aggregation_goal &&
      !processing_) {
    ModelUpdate next = std::move(lazy_buffer_.front());
    lazy_buffer_.pop_front();
    process(std::move(next));
  }
}

void AsyncEngine::process(ModelUpdate u) {
  processing_ = true;
  sim::Node& node = plane_.cluster().node(cfg_.node);
  const double recv_cycles = plane_.recv_cycles(u);
  const double agg_cycles =
      calib::kAggregateCyclesPerByte * static_cast<double>(u.logical_bytes) +
      calib::kAggregateFixedCycles;
  const double secs = (recv_cycles + agg_cycles) / node.config().cpu_hz;
  node.cores().acquire(secs, [this, &node, u = std::move(u), recv_cycles,
                              agg_cycles, alive = alive_]() mutable {
    if (!*alive) return;
    node.cpu().add(sim::CostTag::kSerialization, recv_cycles);
    node.cpu().add(sim::CostTag::kAggregator, agg_cycles);
    acc_.add(u);
    u = ModelUpdate{};
    processing_ = false;
    maybe_emit_version();
    // Lazy mode: keep draining the batch buffer.
    if (cfg_.timing == AggTiming::kLazy && !lazy_buffer_.empty() &&
        lazy_buffer_.size() + acc_.updates_folded() >=
            cfg_.aggregation_goal) {
      ModelUpdate next = std::move(lazy_buffer_.front());
      lazy_buffer_.pop_front();
      process(std::move(next));
    }
  });
}

void AsyncEngine::maybe_emit_version() {
  if (acc_.updates_folded() < cfg_.aggregation_goal) return;
  ++version_;
  version_times_.push_back(sim_.now());
  global_ = acc_.result();
  acc_.reset();
}

}  // namespace lifl::fl
