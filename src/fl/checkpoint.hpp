#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/node.hpp"

namespace lifl::fl {

/// Asynchronous checkpointing (Appendix B): after the aggregator finishes a
/// round, the agent persists the global model to an external storage
/// service in the background, so checkpoint latency never lands on the
/// aggregation completion time. The same cost model also prices campaign
/// *state* snapshots (sys::CampaignCheckpoint): marshalling bills CPU on
/// the node, the storage write is pure latency off it.
class CheckpointManager {
 public:
  struct Config {
    /// Persist every N-th global model version.
    std::uint32_t every_n_versions = sim::calib::kCheckpointEveryNVersions;
    /// External storage throughput.
    double storage_bytes_per_sec = sim::calib::kCheckpointBytesPerSec;
    /// CPU to marshal a checkpoint, per byte.
    double marshal_cycles_per_byte = 0.5;
  };

  CheckpointManager(sim::Cluster& cluster, sim::NodeId node, Config cfg)
      : cluster_(cluster), node_(node), cfg_(cfg) {}

  /// Request a checkpoint of `version`; a no-op unless the version matches
  /// the cadence. `on_persisted` fires when the write is durable.
  /// Returns true if a checkpoint was started.
  bool maybe_checkpoint(std::uint32_t version, std::size_t model_bytes,
                        std::function<void()> on_persisted = {});

  /// Unconditionally start a checkpoint write of `bytes` (cadence already
  /// decided by the caller — e.g. the campaign's snapshot marks): marshal
  /// on the node's cores (billed as CostTag::kCheckpoint), then the storage
  /// write as pure latency. `on_persisted` fires at durability.
  void begin_write(std::uint32_t version, std::size_t bytes,
                   std::function<void()> on_persisted = {});

  /// Versions persisted so far, in completion order.
  const std::vector<std::uint32_t>& persisted() const noexcept {
    return persisted_;
  }

  /// Checkpoints started but not yet durable.
  std::uint32_t in_flight() const noexcept { return in_flight_; }
  /// Checkpoint writes started so far (durable or not).
  std::uint64_t started() const noexcept { return started_; }
  /// Bytes of checkpoints that have reached durability.
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  /// Bytes of checkpoints started but not yet durable.
  std::uint64_t bytes_in_flight() const noexcept { return bytes_in_flight_; }

 private:
  sim::Cluster& cluster_;
  sim::NodeId node_;
  Config cfg_;
  std::vector<std::uint32_t> persisted_;
  std::uint32_t in_flight_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_in_flight_ = 0;
};

}  // namespace lifl::fl
