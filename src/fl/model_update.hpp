#pragma once

#include <cstdint>
#include <memory>

#include "src/ml/tensor.hpp"
#include "src/sim/time.hpp"

namespace lifl::fl {

/// Identifier of an FL participant (client or aggregator instance).
using ParticipantId = std::uint64_t;

/// A model update message — the (w_k, A_k) pair of Eq. 1.
///
/// `tensor` is optional: small-model runs carry a real parameter tensor
/// (and the platform aggregates it for real); heavyweight-model simulations
/// carry only `logical_bytes`, exercising identical data-plane code paths
/// without materializing 240 MB buffers. `sample_count` is the FedAvg
/// weight; for intermediate (partially aggregated) updates it is the total
/// sample count the aggregate represents, which is what makes hierarchical
/// aggregation equal flat aggregation.
struct ModelUpdate {
  std::uint32_t model_version = 0;   ///< global version it was trained from
  ParticipantId producer = 0;        ///< client or aggregator that sent it
  std::uint64_t sample_count = 0;    ///< FedAvg weight (c_k of Eq. 1)
  std::uint32_t updates_folded = 1;  ///< leaf updates this aggregate contains
  /// Effective FedAvg weight. 0 (the default, and what every client upload
  /// carries) means "use `sample_count`". Intermediate aggregates produced
  /// under staleness-weighted folding (FedAsync-style async mode) carry the
  /// discounted weight here — an exact double, so hierarchical aggregation
  /// still equals flat aggregation — while `sample_count` keeps the raw
  /// sample total for telemetry. In synchronous mode the two are equal and
  /// the folding math is bitwise identical to the unweighted path.
  double weight = 0.0;
  std::size_t logical_bytes = 0;     ///< wire size of the update
  std::shared_ptr<const ml::Tensor> tensor;  ///< optional real payload
  /// True while the update is still in its original client-upload encoding
  /// (stream not yet terminated by a gateway or broker): the consumer's
  /// Recv step then pays full client-stream decoding.
  bool from_client = false;
  /// Payload failed its integrity check in transit (fault injection):
  /// consumers discard it at Recv instead of folding garbage; the client
  /// retransmits with backoff.
  bool corrupted = false;

  // Provenance for latency breakdowns.
  sim::SimTime created_at = 0.0;
  std::uint32_t hops = 0;

  /// Opaque RAII lease on backing resources (e.g. the shared-memory object
  /// holding this update). The data plane attaches a deleter that releases
  /// the shm reference when the last copy of the update is dropped — the
  /// recycle step of the store's allocate/recycle/destroy lifecycle.
  std::shared_ptr<const void> lease;
};

}  // namespace lifl::fl
