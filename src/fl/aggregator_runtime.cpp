#include "src/fl/aggregator_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/sim/calibration.hpp"

namespace lifl::fl {

namespace calib = sim::calib;
using sim::CostTag;

std::string to_string(AggRole role) {
  switch (role) {
    case AggRole::kLeaf: return "leaf";
    case AggRole::kMiddle: return "middle";
    case AggRole::kTop: return "top";
  }
  return "unknown";
}

AggregatorRuntime::AggregatorRuntime(dp::DataPlane& plane, Config cfg)
    : plane_(plane),
      sim_(plane.cluster().sim()),
      cfg_(std::move(cfg)),
      ctx_(std::make_shared<Ctx>(Ctx{this, &plane, cfg_.node})) {
  validate_config();
}

void AggregatorRuntime::validate_config() const {
  if (cfg_.goal == 0 && !cfg_.goal_open) {
    throw std::invalid_argument("AggregatorRuntime: goal must be >= 1");
  }
  if (cfg_.pull_from_pool && cfg_.goal_kind != GoalKind::kMessages) {
    // Pool pulls are accounted per message; a folded-count goal cannot size
    // the number of pop_async waiters to park.
    throw std::invalid_argument(
        "AggregatorRuntime: pull_from_pool requires a message-count goal");
  }
  if (cfg_.timing == AggTiming::kLazy &&
      cfg_.goal_kind != GoalKind::kMessages) {
    // Lazy batching holds the FIFO until `goal` *messages* arrived; a
    // folded-count goal has no well-defined batch boundary.
    throw std::invalid_argument(
        "AggregatorRuntime: lazy timing requires a message-count goal");
  }
}

bool AggregatorRuntime::goal_reached() const noexcept {
  if (cfg_.goal_open || cfg_.goal == 0) return false;
  return cfg_.goal_kind == GoalKind::kMessages
             ? aggregated_ >= cfg_.goal
             : acc_.updates_folded() >= cfg_.goal;
}

void AggregatorRuntime::PoolWaiter::operator()(ModelUpdate u) const {
  if (c->rt == nullptr) {
    // Instance went away; put the update back for a successor.
    c->plane->env(c->node).pool.push(std::move(u));
    return;
  }
  // Taking the update out of the queue is a broker delivery on brokered
  // planes and free under LIFL's in-place queuing (§4.2).
  auto shared = std::make_shared<ModelUpdate>(std::move(u));
  c->plane->consume(c->node, *shared, ConsumeReady{c, shared});
}

void AggregatorRuntime::ConsumeReady::operator()() const {
  if (c->rt == nullptr) {
    c->plane->env(c->node).pool.push(std::move(*u));
    return;
  }
  c->rt->deliver(std::move(*u));
}

void AggregatorRuntime::RecvDone::operator()() const {
  if (c->rt != nullptr) c->rt->on_recv_done();
}

void AggregatorRuntime::AggDone::operator()() const {
  if (c->rt != nullptr) c->rt->on_agg_done();
}

AggregatorRuntime::~AggregatorRuntime() {
  if (started_) stop();
}

void AggregatorRuntime::start() {
  if (started_) return;
  started_ = true;
  ctx_->rt = this;
  // Register the socket so producers can reach us even before we're ready:
  // updates delivered during cold start buffer in the FIFO, exactly like
  // messages queueing while a function boots.
  plane_.register_consumer(cfg_.id, cfg_.node,
                           [this](ModelUpdate u) { deliver(std::move(u)); });
  // Pull requests are armed even before the sandbox is ready: an arriving
  // update is what triggers reactive scale-from-zero, and deliveries during
  // cold start simply buffer (messages queue while the function boots).
  maybe_pull();
  switch (cfg_.cold_trigger) {
    case ColdStartTrigger::kNone:
      on_ready();
      break;
    case ColdStartTrigger::kOnStart:
      begin_cold_start();
      break;
    case ColdStartTrigger::kOnFirstUpdate:
      break;  // wait for the first delivery (reactive scaling)
  }
}

void AggregatorRuntime::begin_cold_start() {
  if (cold_start_begun_) return;
  cold_start_begun_ = true;
  if (cfg_.cold_start_secs <= 0.0 && cfg_.cold_start_cycles <= 0.0) {
    on_ready();
    return;
  }
  sim_.schedule_after(cfg_.cold_start_secs, [c = ctx_]() {
    if (c->rt == nullptr) return;
    AggregatorRuntime& rt = *c->rt;
    rt.plane_.cluster().node(rt.cfg_.node).cpu().add(
        CostTag::kStartup, rt.cfg_.cold_start_cycles);
    rt.on_ready();
  });
}

void AggregatorRuntime::on_ready() {
  ready_ = true;
  pump();
}

void AggregatorRuntime::stop() {
  if (!started_) return;
  started_ = false;
  ready_ = false;
  ctx_->rt = nullptr;  // invalidates in-flight pool waiters and timers
  plane_.unregister_consumer(cfg_.id);
  // Return unprocessed updates to the node pool: the runtime is stateless,
  // so a replacement can pick them up with no state synchronization. An
  // update mid-Recv/Agg is included — its shm object still exists, so a
  // successor simply re-reads it.
  if (in_flight_.has_value()) {
    plane_.env(cfg_.node).pool.push(std::move(*in_flight_));
    in_flight_.reset();
    processing_ = false;
  }
  while (!fifo_.empty()) {
    plane_.env(cfg_.node).pool.push(std::move(fifo_.front()));
    fifo_.pop_front();
  }
  // Everything accepted is accounted for — folded work was (or will be)
  // emitted, the rest just went back to the pool — so the lease clears in
  // full. Leaving it would double-count those updates on a later abort.
  if (cfg_.leased) plane_.env(cfg_.node).pool.lease_ack(cfg_.id);
}

void AggregatorRuntime::fail() {
  if (!started_ || failed_) return;
  failed_ = true;
  started_ = false;
  ready_ = false;
  ctx_->rt = nullptr;  // invalidates in-flight waiters, timers, step events
  plane_.unregister_consumer(cfg_.id);
  // The sandbox is gone: buffered and mid-step updates die with it — no
  // pool pushes, no lease acks. The retained lease copies are the single
  // source of recovery (a stop()-style push-back here would duplicate them
  // against the abort path).
  fifo_.clear();
  in_flight_.reset();
  processing_ = false;
  acc_.reset();
}

void AggregatorRuntime::set_goal(std::uint32_t goal, bool open) {
  cfg_.goal = goal;
  cfg_.goal_open = open;
  if (!started_ || sent_) return;
  // A grown goal may need more pool pulls (the while loop no-ops when the
  // goal shrank below what was already pulled); a shrunken goal may already
  // be met by the folded state, or be reachable from the FIFO alone.
  maybe_pull();
  pump();
  maybe_complete();
}

std::uint32_t AggregatorRuntime::drain() {
  if (!started_ || sent_) return 0;
  std::uint32_t have = 0;
  if (cfg_.goal_kind == GoalKind::kMessages) {
    have = received_;  // folded + mid-step + buffered
  } else {
    have = acc_.updates_folded();
    if (in_flight_.has_value()) have += in_flight_->updates_folded;
    for (const auto& u : fifo_) have += u.updates_folded;
  }
  if (have == 0) return 0;
  set_goal(have, /*open=*/false);
  return have;
}

void AggregatorRuntime::maybe_complete() {
  if (ready_ && !processing_ && !sent_ && goal_reached()) do_send();
}

void AggregatorRuntime::rearm(Config cfg) {
  if (processing_) {
    throw std::logic_error("rearm: runtime is mid-step");
  }
  if (started_) {
    plane_.unregister_consumer(cfg_.id);
  }
  ctx_->rt = nullptr;  // invalidate any stale waiters/timers of the old role
  // Stateless: drop all aggregation state; keep the warm sandbox. Updates
  // still buffered (none, if the caller honored idle()) go back to the pool.
  while (!fifo_.empty()) {
    plane_.env(cfg_.node).pool.push(std::move(fifo_.front()));
    fifo_.pop_front();
  }
  if (cfg_.leased) plane_.env(cfg_.node).pool.lease_ack(cfg_.id);
  acc_.reset();
  cfg_ = std::move(cfg);
  validate_config();
  // A re-armed instance is warm by definition.
  cfg_.cold_trigger = ColdStartTrigger::kNone;
  cfg_.cold_start_secs = 0.0;
  cfg_.cold_start_cycles = 0.0;
  sent_ = false;
  failed_ = false;
  received_ = 0;
  pulled_ = 0;
  aggregated_ = 0;
  emissions_ = 0;
  version_ = 0;
  first_arrival_at_ = -1.0;
  sent_at_ = -1.0;
  started_ = false;
  cold_start_begun_ = false;
  ready_ = false;
  ctx_ = std::make_shared<Ctx>(Ctx{this, &plane_, cfg_.node});
  start();
}

void AggregatorRuntime::maybe_pull() {
  if (!cfg_.pull_from_pool || !started_) return;
  auto& pool = plane_.env(cfg_.node).pool;
  if (cfg_.timing == AggTiming::kLazy && pulled_ == 0 &&
      pool.depth() < cfg_.goal) {
    // Lazy just-in-time consumption (Fig. 1): updates queue in the message
    // broker / shm pool until the aggregation task's whole batch is there,
    // then the task drains it. (Eager tasks consume per arrival instead.)
    pool.when_depth(cfg_.goal, [c = ctx_]() {
      if (c->rt != nullptr) c->rt->maybe_pull();
    });
    return;
  }
  while (pulled_ < cfg_.goal) {
    ++pulled_;
    pool.pop_async(PoolWaiter{ctx_});
  }
}

void AggregatorRuntime::deliver(ModelUpdate u) {
  if (!started_) {
    // Late delivery after stop(): recycle into the pool.
    plane_.env(cfg_.node).pool.push(std::move(u));
    return;
  }
  if (u.corrupted) {
    // Integrity check at Recv: a bit-flipped payload is discarded rather
    // than folded — the client's retry (already scheduled by the fault
    // plan) re-delivers a clean copy.
    ++corrupt_dropped_;
    if (cfg_.pull_from_pool && pulled_ > 0) {
      --pulled_;
      maybe_pull();
    }
    return;
  }
  const bool version_mismatch =
      cfg_.expected_version != 0 && u.model_version != cfg_.expected_version;
  const bool too_stale =
      cfg_.live_version != nullptr && *cfg_.live_version > u.model_version &&
      *cfg_.live_version - u.model_version > cfg_.max_staleness;
  if (version_mismatch || too_stale) {
    // Stale straggler: wrong round under synchronous version gating, or
    // beyond the staleness bound under asynchronous folding. Drop it (its
    // shm lease is released as `u` goes out of scope) and keep listening.
    ++stale_dropped_;
    if (cfg_.pull_from_pool && pulled_ > 0) {
      --pulled_;
      maybe_pull();
    }
    return;
  }
  // Accepting under lease: the retained copy (cheap — shared tensor + shm
  // lease refcounts) is what survives if this instance crashes before
  // emitting the update's contribution.
  if (cfg_.leased) plane_.env(cfg_.node).pool.lease_retain(cfg_.id, u);
  ++received_;
  if (first_arrival_at_ < 0) first_arrival_at_ = sim_.now();
  version_ = std::max(version_, u.model_version);
  fifo_.push_back(std::move(u));
  if (!ready_ && cfg_.cold_trigger == ColdStartTrigger::kOnFirstUpdate) {
    begin_cold_start();
  }
  pump();
}

void AggregatorRuntime::pump() {
  if (!ready_ || processing_ || sent_) return;
  if (fifo_.empty()) return;
  if (cfg_.timing == AggTiming::kLazy && received_ < cfg_.goal) {
    // Lazy: hold the batch until every expected update has arrived.
    return;
  }
  ModelUpdate u = std::move(fifo_.front());
  fifo_.pop_front();
  process_one(std::move(u));
}

void AggregatorRuntime::process_one(ModelUpdate u) {
  processing_ = true;
  in_flight_ = std::move(u);
  sim::Node& node = plane_.cluster().node(cfg_.node);

  // ---- Recv step: take ownership of the payload (shm map / deserialize).
  // The step's cost rides in members (the pipeline has one step in flight
  // at a time), so the completion is a 16-byte functor — no allocation.
  step_cycles_ = plane_.recv_cycles(*in_flight_);
  step_secs_ = step_cycles_ / node.config().cpu_hz;
  node.cores().acquire(step_secs_, RecvDone{ctx_});
}

void AggregatorRuntime::on_recv_done() {
  sim::Node& node = plane_.cluster().node(cfg_.node);
  node.cpu().add(CostTag::kSerialization, step_cycles_);
  busy_secs_ += step_secs_;

  // ---- Agg step: fold into the cumulative weighted average.
  step_cycles_ = calib::kAggregateCyclesPerByte *
                     static_cast<double>(in_flight_->logical_bytes) +
                 calib::kAggregateFixedCycles;
  step_secs_ = step_cycles_ / node.config().cpu_hz;
  node.cores().acquire(step_secs_, AggDone{ctx_});
}

void AggregatorRuntime::on_agg_done() {
  sim::Node& node = plane_.cluster().node(cfg_.node);
  node.cpu().add(CostTag::kAggregator, step_cycles_);
  busy_secs_ += step_secs_;
  // FedAsync staleness weighting: discount by 1/(1+staleness) against the
  // live global version. The factor multiplies into the fold coefficient
  // of the fused axpy sweep — no extra pass over the tensor.
  double scale = 1.0;
  if (cfg_.live_version != nullptr &&
      *cfg_.live_version > in_flight_->model_version) {
    scale = 1.0 / (1.0 + static_cast<double>(*cfg_.live_version -
                                             in_flight_->model_version));
  }
  acc_.add(*in_flight_, scale);
  ++aggregated_;
  // The eBPF sidecar observes the execution and records metrics (§4.3).
  plane_.record_agg_exec(cfg_.node, step_secs_);
  // Dropping the update releases its shm lease (buffer recycled).
  in_flight_.reset();
  processing_ = false;
  if (cfg_.fail_after_folds > 0 && aggregated_ >= cfg_.fail_after_folds &&
      !sent_) {
    // Injected crash, synchronously after the k-th fold and *before* any
    // Send this fold would have triggered — when k equals the goal, the
    // crash lands exactly between the buffer sealing and its emission.
    // The handler is copied out first: fail() leaves cfg_ intact but the
    // handler may rearm this instance, which replaces cfg_ mid-call.
    auto fn = cfg_.on_failed;
    fail();
    if (fn) fn();
    return;
  }
  if (goal_reached()) {
    do_send();
  } else {
    pump();
  }
}

void AggregatorRuntime::do_send() {
  sent_at_ = sim_.now();
  ModelUpdate result = acc_.make_update(version_, cfg_.id, cfg_.result_bytes);
  result.created_at = sim_.now();
  ++emissions_;
  if (cfg_.recurring) {
    // FedBuff emit-and-continue: the buffer resets in place and the
    // instance keeps aggregating toward the (possibly re-set) goal.
    // Updates already queued in the FIFO stay queued and count toward the
    // next buffer.
    acc_.reset();
    aggregated_ = 0;
    received_ = static_cast<std::uint32_t>(fifo_.size());
    version_ = 0;
    for (const auto& f : fifo_) {
      version_ = std::max(version_, f.model_version);
    }
    if (fifo_.empty()) first_arrival_at_ = -1.0;
    // Pool waiters for consumed updates were used up; re-arm enough for
    // the next buffer (buffered deliveries count as already pulled).
    if (cfg_.pull_from_pool) pulled_ = received_;
  } else {
    sent_ = true;
  }
  // Send is the ack point of the lease protocol: everything folded into
  // this emission is now the consumer's responsibility. Updates still
  // buffered for the *next* emission (recurring) or left over past the
  // goal stay retained — they have not been emitted yet.
  if (cfg_.leased) {
    plane_.env(cfg_.node).pool.lease_ack(cfg_.id, fifo_.size());
  }
  if (cfg_.consumer != 0) {
    plane_.send(cfg_.id, cfg_.node, cfg_.consumer, std::move(result));
  } else if (cfg_.on_result) {
    // Invoke through a copy: the callback may `rearm` this instance (the
    // streaming hierarchy's self-re-arm after a batch), which replaces
    // `cfg_` — including the std::function we would otherwise be executing
    // as it is destroyed.
    ResultFn fn = cfg_.on_result;
    fn(std::move(result));
  }
  if (cfg_.recurring && started_ && !processing_ && !sent_) {
    // The callback may have adjusted the goal for the next buffer (a
    // re-arm or stop mid-callback leaves these as no-ops). Keep pulling
    // and folding — the stream continues.
    maybe_pull();
    pump();
    maybe_complete();
  }
}

}  // namespace lifl::fl
