#include "src/fl/aggregator_runtime.hpp"

#include <stdexcept>
#include <utility>

#include "src/sim/calibration.hpp"

namespace lifl::fl {

namespace calib = sim::calib;
using sim::CostTag;

std::string to_string(AggRole role) {
  switch (role) {
    case AggRole::kLeaf: return "leaf";
    case AggRole::kMiddle: return "middle";
    case AggRole::kTop: return "top";
  }
  return "unknown";
}

AggregatorRuntime::AggregatorRuntime(dp::DataPlane& plane, Config cfg)
    : plane_(plane),
      sim_(plane.cluster().sim()),
      cfg_(std::move(cfg)),
      alive_(std::make_shared<bool>(true)) {
  if (cfg_.goal == 0) {
    throw std::invalid_argument("AggregatorRuntime: goal must be >= 1");
  }
}

AggregatorRuntime::~AggregatorRuntime() {
  if (started_) stop();
}

void AggregatorRuntime::start() {
  if (started_) return;
  started_ = true;
  *alive_ = true;
  // Register the socket so producers can reach us even before we're ready:
  // updates delivered during cold start buffer in the FIFO, exactly like
  // messages queueing while a function boots.
  plane_.register_consumer(cfg_.id, cfg_.node,
                           [this](ModelUpdate u) { deliver(std::move(u)); });
  // Pull requests are armed even before the sandbox is ready: an arriving
  // update is what triggers reactive scale-from-zero, and deliveries during
  // cold start simply buffer (messages queue while the function boots).
  maybe_pull();
  switch (cfg_.cold_trigger) {
    case ColdStartTrigger::kNone:
      on_ready();
      break;
    case ColdStartTrigger::kOnStart:
      begin_cold_start();
      break;
    case ColdStartTrigger::kOnFirstUpdate:
      break;  // wait for the first delivery (reactive scaling)
  }
}

void AggregatorRuntime::begin_cold_start() {
  if (cold_start_begun_) return;
  cold_start_begun_ = true;
  if (cfg_.cold_start_secs <= 0.0 && cfg_.cold_start_cycles <= 0.0) {
    on_ready();
    return;
  }
  sim_.schedule_after(cfg_.cold_start_secs, [this, alive = alive_]() {
    if (!*alive) return;
    plane_.cluster().node(cfg_.node).cpu().add(CostTag::kStartup,
                                               cfg_.cold_start_cycles);
    on_ready();
  });
}

void AggregatorRuntime::on_ready() {
  ready_ = true;
  pump();
}

void AggregatorRuntime::stop() {
  if (!started_) return;
  started_ = false;
  ready_ = false;
  *alive_ = false;  // invalidates in-flight pool waiters and timers
  plane_.unregister_consumer(cfg_.id);
  // Return unprocessed updates to the node pool: the runtime is stateless,
  // so a replacement can pick them up with no state synchronization. An
  // update mid-Recv/Agg is included — its shm object still exists, so a
  // successor simply re-reads it.
  if (in_flight_.has_value()) {
    plane_.env(cfg_.node).pool.push(std::move(*in_flight_));
    in_flight_.reset();
    processing_ = false;
  }
  while (!fifo_.empty()) {
    plane_.env(cfg_.node).pool.push(std::move(fifo_.front()));
    fifo_.pop_front();
  }
}

void AggregatorRuntime::convert_role(Config cfg) {
  if (processing_) {
    throw std::logic_error("convert_role: runtime is mid-step");
  }
  if (started_) {
    plane_.unregister_consumer(cfg_.id);
  }
  *alive_ = false;  // invalidate any stale waiters/timers of the old role
  // Stateless: drop all aggregation state; keep the warm sandbox. Updates
  // still buffered (none, if the caller honored idle()) go back to the pool.
  while (!fifo_.empty()) {
    plane_.env(cfg_.node).pool.push(std::move(fifo_.front()));
    fifo_.pop_front();
  }
  acc_.reset();
  cfg_ = std::move(cfg);
  // A converted instance is warm by definition.
  cfg_.cold_trigger = ColdStartTrigger::kNone;
  cfg_.cold_start_secs = 0.0;
  cfg_.cold_start_cycles = 0.0;
  sent_ = false;
  received_ = 0;
  pulled_ = 0;
  aggregated_ = 0;
  version_ = 0;
  first_arrival_at_ = -1.0;
  sent_at_ = -1.0;
  started_ = false;
  cold_start_begun_ = false;
  ready_ = false;
  alive_ = std::make_shared<bool>(true);
  start();
}

void AggregatorRuntime::maybe_pull() {
  if (!cfg_.pull_from_pool || !started_) return;
  auto& pool = plane_.env(cfg_.node).pool;
  if (cfg_.timing == AggTiming::kLazy && pulled_ == 0 &&
      pool.depth() < cfg_.goal) {
    // Lazy just-in-time consumption (Fig. 1): updates queue in the message
    // broker / shm pool until the aggregation task's whole batch is there,
    // then the task drains it. (Eager tasks consume per arrival instead.)
    pool.when_depth(cfg_.goal, [this, alive = alive_]() {
      if (!*alive) return;
      maybe_pull();
    });
    return;
  }
  auto* plane = &plane_;
  const sim::NodeId node = cfg_.node;
  while (pulled_ < cfg_.goal) {
    ++pulled_;
    pool.pop_async([this, plane, node, alive = alive_](ModelUpdate u) {
      if (!*alive) {
        // Instance went away; put the update back for a successor.
        plane->env(node).pool.push(std::move(u));
        return;
      }
      // Taking the update out of the queue is a broker delivery on
      // brokered planes and free under LIFL's in-place queuing (§4.2).
      auto shared = std::make_shared<ModelUpdate>(std::move(u));
      plane->consume(node, *shared, [this, plane, node, alive, shared]() {
        if (!*alive) {
          plane->env(node).pool.push(std::move(*shared));
          return;
        }
        deliver(std::move(*shared));
      });
    });
  }
}

void AggregatorRuntime::deliver(ModelUpdate u) {
  if (!started_) {
    // Late delivery after stop(): recycle into the pool.
    plane_.env(cfg_.node).pool.push(std::move(u));
    return;
  }
  if (cfg_.expected_version != 0 &&
      u.model_version != cfg_.expected_version) {
    // Stale straggler from an earlier round: drop it (its shm lease is
    // released as `u` goes out of scope) and keep listening.
    ++stale_dropped_;
    if (cfg_.pull_from_pool && pulled_ > 0) {
      --pulled_;
      maybe_pull();
    }
    return;
  }
  ++received_;
  if (first_arrival_at_ < 0) first_arrival_at_ = sim_.now();
  version_ = std::max(version_, u.model_version);
  fifo_.push_back(std::move(u));
  if (!ready_ && cfg_.cold_trigger == ColdStartTrigger::kOnFirstUpdate) {
    begin_cold_start();
  }
  pump();
}

void AggregatorRuntime::pump() {
  if (!ready_ || processing_ || sent_) return;
  if (fifo_.empty()) return;
  if (cfg_.timing == AggTiming::kLazy && received_ < cfg_.goal) {
    // Lazy: hold the batch until every expected update has arrived.
    return;
  }
  ModelUpdate u = std::move(fifo_.front());
  fifo_.pop_front();
  process_one(std::move(u));
}

void AggregatorRuntime::process_one(ModelUpdate u) {
  processing_ = true;
  in_flight_ = std::move(u);
  sim::Node& node = plane_.cluster().node(cfg_.node);
  const std::size_t bytes = in_flight_->logical_bytes;

  // ---- Recv step: take ownership of the payload (shm map / deserialize).
  const double recv_cycles = plane_.recv_cycles(*in_flight_);
  const double recv_secs = recv_cycles / node.config().cpu_hz;
  node.cores().acquire(recv_secs, [this, &node, bytes, recv_cycles, recv_secs,
                                   alive = alive_]() {
    if (!*alive) return;
    node.cpu().add(CostTag::kSerialization, recv_cycles);
    busy_secs_ += recv_secs;

    // ---- Agg step: fold into the cumulative weighted average.
    const double agg_cycles =
        calib::kAggregateCyclesPerByte * static_cast<double>(bytes) +
        calib::kAggregateFixedCycles;
    const double agg_secs = agg_cycles / node.config().cpu_hz;
    node.cores().acquire(agg_secs, [this, &node, agg_cycles, agg_secs,
                                    alive]() {
      if (!*alive) return;
      node.cpu().add(CostTag::kAggregator, agg_cycles);
      busy_secs_ += agg_secs;
      acc_.add(*in_flight_);
      ++aggregated_;
      // The eBPF sidecar observes the execution and records metrics (§4.3).
      plane_.record_agg_exec(cfg_.node, agg_secs);
      // Dropping the update releases its shm lease (buffer recycled).
      in_flight_.reset();
      processing_ = false;
      if (aggregated_ >= cfg_.goal) {
        do_send();
      } else {
        pump();
      }
    });
  });
}

void AggregatorRuntime::do_send() {
  sent_ = true;
  sent_at_ = sim_.now();
  ModelUpdate result = acc_.make_update(version_, cfg_.id, cfg_.result_bytes);
  result.created_at = sim_.now();
  if (cfg_.consumer != 0) {
    plane_.send(cfg_.id, cfg_.node, cfg_.consumer, std::move(result));
  } else if (cfg_.on_result) {
    cfg_.on_result(std::move(result));
  }
}

}  // namespace lifl::fl
