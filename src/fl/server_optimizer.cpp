#include "src/fl/server_optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace lifl::fl {

std::string to_string(ServerOptimizerKind kind) {
  switch (kind) {
    case ServerOptimizerKind::kFedAvg: return "FedAvg";
    case ServerOptimizerKind::kFedAvgM: return "FedAvgM";
    case ServerOptimizerKind::kFedAdagrad: return "FedAdagrad";
    case ServerOptimizerKind::kFedYogi: return "FedYogi";
    case ServerOptimizerKind::kFedAdam: return "FedAdam";
  }
  return "unknown";
}

void ServerOptimizer::step(ml::Tensor& global, const ml::Tensor& round_avg) {
  if (global.size() != round_avg.size()) {
    throw std::invalid_argument("ServerOptimizer::step: size mismatch");
  }
  const std::size_t n = global.size();
  ++rounds_;

  if (cfg_.kind == ServerOptimizerKind::kFedAvg) {
    // Plain FedAvg: the average *is* the next global model.
    global = round_avg;
    return;
  }

  // Pseudo-gradient of the round.
  ml::Tensor delta(n);
  for (std::size_t i = 0; i < n; ++i) delta[i] = round_avg[i] - global[i];

  if (momentum_.size() != n) momentum_ = ml::Tensor(n, 0.0f);
  const auto beta1 = static_cast<float>(cfg_.beta1);
  for (std::size_t i = 0; i < n; ++i) {
    momentum_[i] = beta1 * momentum_[i] + (1.0f - beta1) * delta[i];
  }
  // Adam-style bias correction: without it the momentum estimate starts at
  // (1-beta1) of the true pseudo-gradient and needs ~1/(1-beta1) rounds to
  // ramp — far too slow for FL where rounds are expensive.
  const auto bias1 = static_cast<float>(
      1.0 - std::pow(cfg_.beta1, static_cast<double>(rounds_)));

  const auto lr = static_cast<float>(cfg_.lr);
  if (cfg_.kind == ServerOptimizerKind::kFedAvgM) {
    global.axpy(lr / bias1, momentum_);
    return;
  }

  // Adaptive kinds maintain a per-parameter second moment v_t.
  if (second_moment_.size() != n) second_moment_ = ml::Tensor(n, 0.0f);
  const auto beta2 = static_cast<float>(cfg_.beta2);
  const auto tau = static_cast<float>(cfg_.tau);
  for (std::size_t i = 0; i < n; ++i) {
    const float d2 = delta[i] * delta[i];
    float& v = second_moment_[i];
    switch (cfg_.kind) {
      case ServerOptimizerKind::kFedAdagrad:
        v += d2;
        break;
      case ServerOptimizerKind::kFedYogi:
        v -= (1.0f - beta2) * d2 * (v - d2 > 0.0f ? 1.0f : -1.0f);
        break;
      case ServerOptimizerKind::kFedAdam:
        v = beta2 * v + (1.0f - beta2) * d2;
        break;
      case ServerOptimizerKind::kFedAvg:
      case ServerOptimizerKind::kFedAvgM:
        break;  // unreachable
    }
    global[i] += lr * (momentum_[i] / bias1) / (std::sqrt(v) + tau);
  }
}

void ServerOptimizer::reset() {
  momentum_ = ml::Tensor{};
  second_moment_ = ml::Tensor{};
  rounds_ = 0;
}

}  // namespace lifl::fl
