#include "src/fl/server_optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "src/ml/kernels.hpp"
#include "src/ml/tensor_pool.hpp"

namespace lifl::fl {

std::string to_string(ServerOptimizerKind kind) {
  switch (kind) {
    case ServerOptimizerKind::kFedAvg: return "FedAvg";
    case ServerOptimizerKind::kFedAvgM: return "FedAvgM";
    case ServerOptimizerKind::kFedAdagrad: return "FedAdagrad";
    case ServerOptimizerKind::kFedYogi: return "FedYogi";
    case ServerOptimizerKind::kFedAdam: return "FedAdam";
  }
  return "unknown";
}

void ServerOptimizer::step(ml::Tensor& global, const ml::Tensor& round_avg) {
  if (global.size() != round_avg.size()) {
    throw std::invalid_argument("ServerOptimizer::step: size mismatch");
  }
  const std::size_t n = global.size();
  ++rounds_;

  if (cfg_.kind == ServerOptimizerKind::kFedAvg) {
    // Plain FedAvg: the average *is* the next global model.
    global = round_avg;
    return;
  }

  const ml::kernels::Ops& ops = ml::kernels::ops();

  // Pseudo-gradient of the round, in a pooled scratch buffer (released back
  // to the pool when `delta` drops at the end of the step).
  auto delta = ml::TensorPool::global().acquire(n);
  ops.axpby_into(delta->data(), 1.0f, round_avg.data(), -1.0f, global.data(),
                 n);

  if (momentum_.size() != n) momentum_ = ml::Tensor(n, 0.0f);
  const auto beta1 = static_cast<float>(cfg_.beta1);
  // m = β1·m + (1-β1)·Δ — the fused scale+axpy pair in one pass.
  ops.axpby(momentum_.data(), beta1, 1.0f - beta1, delta->data(), n);
  // Adam-style bias correction: without it the momentum estimate starts at
  // (1-beta1) of the true pseudo-gradient and needs ~1/(1-beta1) rounds to
  // ramp — far too slow for FL where rounds are expensive.
  const auto bias1 = static_cast<float>(
      1.0 - std::pow(cfg_.beta1, static_cast<double>(rounds_)));

  const auto lr = static_cast<float>(cfg_.lr);
  if (cfg_.kind == ServerOptimizerKind::kFedAvgM) {
    global.axpy(lr / bias1, momentum_);
    return;
  }

  // Adaptive kinds maintain a per-parameter second moment v_t.
  if (second_moment_.size() != n) second_moment_ = ml::Tensor(n, 0.0f);
  const auto beta2 = static_cast<float>(cfg_.beta2);
  const auto tau = static_cast<float>(cfg_.tau);
  const float* __restrict d = delta->data();
  float* __restrict sm = second_moment_.data();
  float* __restrict g = global.data();
  const float* __restrict m = momentum_.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float d2 = d[i] * d[i];
    float& v = sm[i];
    switch (cfg_.kind) {
      case ServerOptimizerKind::kFedAdagrad:
        v += d2;
        break;
      case ServerOptimizerKind::kFedYogi:
        v -= (1.0f - beta2) * d2 * (v - d2 > 0.0f ? 1.0f : -1.0f);
        break;
      case ServerOptimizerKind::kFedAdam:
        v = beta2 * v + (1.0f - beta2) * d2;
        break;
      case ServerOptimizerKind::kFedAvg:
      case ServerOptimizerKind::kFedAvgM:
        break;  // unreachable
    }
    g[i] += lr * (m[i] / bias1) / (std::sqrt(v) + tau);
  }
}

void ServerOptimizer::reset() {
  momentum_ = ml::Tensor{};
  second_moment_ = ml::Tensor{};
  rounds_ = 0;
}

}  // namespace lifl::fl
