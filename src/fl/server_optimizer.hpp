#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/ml/tensor.hpp"

namespace lifl::fl {

/// Server-side optimizer family from "Adaptive Federated Optimization"
/// (Reddi et al., 2020) — the FL-algorithm layer the paper positions LIFL
/// as the system substrate for (§7: "these efforts are orthogonal to LIFL
/// ... LIFL [is] a good complement ... to bring various FL approaches to
/// the ground").
///
/// Each round, the aggregation hierarchy produces the weighted-average
/// client model x_avg (FedAvg, Eq. 1). The server treats the pseudo-
/// gradient Δ_t = x_avg − x_t as a descent direction and applies a
/// first-order update with optional adaptivity:
///
///   FedAvg     : x_{t+1} = x_t + Δ_t                  (plain averaging)
///   FedAvgM    : m_t = β1 m_{t-1} + Δ_t;  x_{t+1} = x_t + η m_t
///   FedAdagrad : v_t = v_{t-1} + Δ_t²
///   FedYogi    : v_t = v_{t-1} − (1−β2) Δ_t² sign(v_{t-1} − Δ_t²)
///   FedAdam    : v_t = β2 v_{t-1} + (1−β2) Δ_t²
///   (adaptive) : x_{t+1} = x_t + η m_t / (sqrt(v_t) + τ)
///
/// All state lives on the server between rounds; aggregators stay stateless
/// exactly as LIFL requires.
enum class ServerOptimizerKind : std::uint8_t {
  kFedAvg,      ///< apply the average directly (McMahan et al., 2017)
  kFedAvgM,     ///< server momentum
  kFedAdagrad,  ///< adaptive, accumulated second moment
  kFedYogi,     ///< adaptive, sign-controlled second moment
  kFedAdam,     ///< adaptive, EWMA second moment
};

std::string to_string(ServerOptimizerKind kind);

/// Applies a server optimizer step per aggregation round.
class ServerOptimizer {
 public:
  struct Config {
    ServerOptimizerKind kind = ServerOptimizerKind::kFedAvg;
    double lr = 1.0;        ///< server learning rate η
    double beta1 = 0.9;     ///< first-moment decay
    double beta2 = 0.99;    ///< second-moment decay (adaptive kinds)
    double tau = 1e-3;      ///< adaptivity degree (denominator floor)
  };

  explicit ServerOptimizer(Config cfg) : cfg_(cfg) {}

  /// One round: fold the aggregated average `round_avg` into the global
  /// model `global` (updated in place). Both tensors must be equal-sized.
  void step(ml::Tensor& global, const ml::Tensor& round_avg);

  /// Rounds applied so far.
  std::uint32_t rounds() const noexcept { return rounds_; }
  const Config& config() const noexcept { return cfg_; }

  /// Drop all optimizer state (momentum / second moments).
  void reset();

 private:
  Config cfg_;
  ml::Tensor momentum_;       ///< m_t
  ml::Tensor second_moment_;  ///< v_t
  std::uint32_t rounds_ = 0;
};

}  // namespace lifl::fl
