#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/ml/tensor.hpp"

namespace lifl::fl {

/// Streaming FedAvg (Eq. 1): maintains the running sample-weighted average
/// of the updates added so far.
///
/// The cumulative form
///     avg_k = avg_{k-1} + (w_k - avg_{k-1}) * c_k / (C_{k-1} + c_k)
/// is algebraically identical to the batch weighted mean, which is what
/// makes *eager* aggregation (§2.1, §5.4) possible: updates can be folded in
/// as they arrive, in any order, and the result equals lazy batch
/// aggregation. The accumulator also works on logical-only updates (no
/// tensor), where it just tracks weights and counts — the system-simulation
/// mode.
class FedAvgAccumulator {
 public:
  /// Fold one update into the running average.
  void add(const ModelUpdate& update);

  /// Fold a raw (tensor, weight) pair.
  void add(const std::shared_ptr<const ml::Tensor>& params,
           std::uint64_t sample_count);

  /// Number of updates folded in (counting folded sub-updates).
  std::uint32_t updates_folded() const noexcept { return updates_folded_; }

  /// Total sample weight aggregated so far (T of Eq. 1).
  std::uint64_t total_samples() const noexcept { return total_samples_; }

  /// The running weighted average; null if only logical updates were added.
  std::shared_ptr<const ml::Tensor> result() const;

  /// Produce the intermediate/final ModelUpdate for this aggregate.
  ModelUpdate make_update(std::uint32_t model_version, ParticipantId producer,
                          std::size_t logical_bytes) const;

  /// Clear all state (aggregators are stateless across rounds).
  void reset();

  /// Reference batch implementation: weighted mean of (tensor, weight)
  /// pairs. Used by tests to prove eager == lazy and hierarchical == flat.
  static ml::Tensor batch_average(
      const std::vector<std::pair<const ml::Tensor*, std::uint64_t>>& updates);

 private:
  void add_tensor_weighted(const std::shared_ptr<const ml::Tensor>& params,
                           std::uint64_t sample_count);

  std::shared_ptr<ml::Tensor> avg_;  ///< owned mutable running average
  std::uint64_t total_samples_ = 0;
  std::uint32_t updates_folded_ = 0;
};

}  // namespace lifl::fl
