#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/ml/tensor.hpp"
#include "src/ml/tensor_pool.hpp"

namespace lifl::fl {

/// Streaming FedAvg (Eq. 1) in **sum form**: maintains the weighted *sum*
///     S_k = Σ c_i · w_i
/// of the updates added so far and divides once at finalize,
///     avg = S / Σ c_i.
///
/// The seed kept the running *mean* instead, which costs a full `scale`
/// sweep plus a full `axpy` sweep per fold (2× the memory traffic of the
/// fused form) and a per-fold rescaling rounding step. Sum form folds with
/// ONE fused pass (`kernels::axpy`), and — because the accumulator parks
/// each arriving tensor until a second one shows up — usually folds two
/// updates per read-modify-write sweep of the accumulator
/// (`kernels::axpy2`), halving accumulator traffic again. Parking is free:
/// it holds a `shared_ptr` to the shm-resident update, zero copies.
///
/// Eager == lazy still holds (addition commutes), and mixed logical/real
/// mode is now *exact*: a logical-only update (no tensor) contributes its
/// weight to the divisor and nothing to the sum — exactly the "carries a
/// zero tensor" definition, with no rescaling of already-folded state.
///
/// **Staleness weighting** (FedAsync-style async aggregation): `add` takes
/// an optional `scale` multiplied into the update's effective weight; the
/// scaled coefficient rides the same fused `axpy`/`axpy2` sweep, so a
/// staleness-discounted fold costs exactly the same memory traffic as an
/// unweighted one. The divisor becomes the *effective* weight total
/// `total_weight()` (a double; integer sample counts are exact in it, so
/// the synchronous `scale == 1` path is bitwise identical to the historical
/// integer-divisor behaviour).
///
/// All buffers (the running sum, the finalized average) come from
/// `ml::TensorPool::global()`: steady-state rounds perform zero tensor heap
/// allocations.
class FedAvgAccumulator {
 public:
  /// Fold one update into the running aggregate. `scale` discounts the
  /// update's effective weight (1 = plain FedAvg; async mode passes the
  /// FedAsync staleness factor 1/(1+staleness)).
  void add(const ModelUpdate& update, double scale = 1.0);

  /// Fold a raw (tensor, weight) pair.
  void add(const std::shared_ptr<const ml::Tensor>& params,
           std::uint64_t sample_count);

  /// Number of updates folded in (counting folded sub-updates).
  std::uint32_t updates_folded() const noexcept { return updates_folded_; }

  /// Total sample weight aggregated so far (T of Eq. 1) — raw samples,
  /// undiscounted; kept for telemetry.
  std::uint64_t total_samples() const noexcept { return total_samples_; }

  /// Effective weight aggregated so far: Σ (weight_i · scale_i). This is
  /// the divisor of the average. Equals `total_samples()` exactly (and
  /// bitwise, integer sums being exact in double) when every fold used
  /// scale 1 and carried no explicit weight.
  double total_weight() const noexcept { return total_weight_; }

  /// The weighted average of everything added so far; null if only logical
  /// updates were added. Finalizes lazily (flush the parked update, one
  /// divide pass) and caches until the next add().
  std::shared_ptr<const ml::Tensor> result() const;

  /// Produce the intermediate/final ModelUpdate for this aggregate.
  ModelUpdate make_update(std::uint32_t model_version, ParticipantId producer,
                          std::size_t logical_bytes) const;

  /// Clear all state (aggregators are stateless across rounds). Releases
  /// the pooled buffers back to the pool.
  void reset();

  /// Reference batch implementation: weighted mean of (tensor, weight)
  /// pairs. Used by tests to prove eager == lazy and hierarchical == flat.
  static ml::Tensor batch_average(
      const std::vector<std::pair<const ml::Tensor*, std::uint64_t>>& updates);

 private:
  void add_tensor_weighted(const std::shared_ptr<const ml::Tensor>& params,
                           float weight);
  /// Fold the parked update (if any) into the sum — called before finalize
  /// so observable state is always complete.
  void flush_pending();
  /// Compute (and cache) the finalized average.
  void finalize() const;

  std::shared_ptr<ml::Tensor> sum_;  ///< pooled Σ c_i·w_i
  /// One update parked zero-copy, waiting to pair into a dual fold.
  std::shared_ptr<const ml::Tensor> pending_;
  float pending_weight_ = 0.0f;
  mutable std::shared_ptr<const ml::Tensor> finalized_;  ///< cached average
  std::uint64_t total_samples_ = 0;
  double total_weight_ = 0.0;  ///< Σ effective weights — the divisor
  std::uint32_t updates_folded_ = 0;
};

}  // namespace lifl::fl
