#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/dataplane/dataplane.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/model_update.hpp"
#include "src/sim/time.hpp"

namespace lifl::fl {

/// Level of an aggregator in the hierarchy (§2.2, §5.2).
enum class AggRole : std::uint8_t { kLeaf, kMiddle, kTop };

/// When aggregation work is triggered (§2.1, Fig. 1).
enum class AggTiming : std::uint8_t {
  kEager,  ///< fold each update as it arrives (Recv overlaps Agg)
  kLazy,   ///< queue updates; aggregate the whole batch once the goal is met
};

/// What the aggregation goal counts.
enum class GoalKind : std::uint8_t {
  kMessages,       ///< direct updates received by this instance (the classic
                   ///< leaf batch: fold `goal` messages, then Send)
  kFoldedUpdates,  ///< *client* updates the aggregate represents (sum of
                   ///< `ModelUpdate::updates_folded` over the inputs). This
                   ///< makes an upper-level aggregator's completion invariant
                   ///< under the shape of the tree below it — the property
                   ///< the streaming hierarchy's mid-round re-planning rests
                   ///< on: however the leaf set grows or shrinks, the relay
                   ///< finishes exactly when every client update arrived.
};

std::string to_string(AggRole role);

/// When the cold-start clock of a new instance begins.
enum class ColdStartTrigger : std::uint8_t {
  kNone,           ///< warm instance: ready immediately
  kOnStart,        ///< proactive spawn: cold start runs from start()
  kOnFirstUpdate,  ///< reactive (Knative-style) spawn: cold start begins when
                   ///< the first update shows up — the cascading effect of
                   ///< §2.3 when scaling a function chain
};

/// The LIFL aggregator runtime: the step-based processing model of Fig. 14.
///
/// A multiple-producer / single-consumer pipeline of three steps —
///   Recv: take the next update (object key) off the FIFO and map/decode it;
///   Agg:  fold it into the running FedAvg accumulator, repeating until the
///         aggregation goal is met;
///   Send: emit the aggregate to the designated consumer.
/// Steps execute strictly sequentially (the runtime is single-threaded),
/// but Recv and Agg overlap across *updates* under eager timing: each
/// arrival is processed immediately instead of waiting for the batch.
///
/// **Goal semantics.** A goal is *sealed* (goal_open == false) when its
/// count is final: the instance Sends exactly when the count is reached.
/// An *open* goal (goal_open == true) may still grow via `set_goal` — the
/// instance keeps folding but never Sends until the goal is sealed. The
/// streaming hierarchy's middles start open and are sealed once the
/// round's batches are fully assigned; `drain()` is the forced seal — it
/// seals at whatever was already accepted so a partial buffer flushes.
/// Asynchronous leaf buffers reuse exactly this machinery: seal-on-count
/// is the ordinary sealed goal, seal-on-deadline is a timer calling
/// `drain()`.
///
/// The runtime is **stateless** across aggregation tasks: `convert_role`
/// re-purposes a finished instance as a higher-level aggregator with no
/// state synchronization — the opportunistic-reuse mechanism of §5.3.
/// With `Config::recurring` the same instance additionally self-renews
/// *within* a task stream: each filled buffer is emitted and the
/// accumulator resets in place (FedBuff-style buffered asynchronous
/// aggregation, absorbed here from the retired `fl::AsyncEngine`).
class AggregatorRuntime {
 public:
  using ResultFn = std::function<void(ModelUpdate)>;

  struct Config {
    ParticipantId id = 0;
    sim::NodeId node = 0;
    AggRole role = AggRole::kLeaf;
    AggTiming timing = AggTiming::kEager;
    std::uint32_t goal = 1;        ///< updates to fold before Send (see kind)
    GoalKind goal_kind = GoalKind::kMessages;
    /// An *open* goal may still grow (`set_goal`): the instance keeps
    /// folding but never Sends until the goal is sealed (open = false).
    /// Middles in the streaming hierarchy start open and are sealed once
    /// the round's batches are fully assigned.
    bool goal_open = false;
    ParticipantId consumer = 0;    ///< downstream aggregator (0: use on_result)
    std::size_t result_bytes = 0;  ///< wire size of the produced update
    bool pull_from_pool = false;   ///< leaf: pull updates off the node pool
    ResultFn on_result;            ///< sink for the aggregate (top level)
    /// Accept only updates for this global model version (0 = accept any);
    /// stale stragglers from earlier rounds are discarded (§2.1). The
    /// synchronous-round mechanism — asynchronous aggregation accepts any
    /// version and discounts by staleness instead (see `live_version`).
    std::uint32_t expected_version = 0;

    // ---- fault domain (lease/ack recovery + crash injection) ------------
    /// Consume under lease semantics: every accepted update leaves a
    /// retained copy in the node pool's lease table under this instance's
    /// id, acked at Send (all but the still-buffered tail) and at graceful
    /// stop()/rearm(). A crash (`fail()`) acks nothing — the orchestrator
    /// aborts the lease and re-folds the retained copies, so no client
    /// sample is lost to a dead runtime.
    bool leased = false;
    /// Fault injection: crash (`fail()`) synchronously after folding this
    /// many messages, before any Send the fold would have triggered —
    /// including the edge where the crash lands between the buffer filling
    /// and its emission. 0 = never.
    std::uint32_t fail_after_folds = 0;
    /// Invoked (by copy) right after an injected crash; the handler may
    /// re-register a replacement under the same id — in-flight sends
    /// resolve their route at delivery time and reach it — but must not
    /// destroy this runtime mid-callback (park it in a graveyard instead).
    std::function<void()> on_failed;

    // ---- asynchronous aggregation (FedBuff/FedAsync semantics) ----------
    /// Pointer to the live global model version (the campaign's per-group
    /// server-version slot). When set, each fold is weighted by the
    /// FedAsync staleness factor 1/(1 + (*live_version - update.version)):
    /// the factor rides the accumulator's fused axpy sweep, so discounted
    /// folding costs no extra pass. Null = synchronous (unit weights).
    const std::uint32_t* live_version = nullptr;
    /// With `live_version` set: drop updates staler than this many versions
    /// instead of folding them (basic staleness control). Default accepts
    /// everything at discounted weight.
    std::uint32_t max_staleness = UINT32_MAX;
    /// FedBuff buffer semantics: after each Send the runtime *continues* —
    /// the accumulator resets in place and keeps folding toward the same
    /// goal (adjust per emission via `set_goal` from `on_result`), emitting
    /// one aggregate per filled buffer instead of completing once. This is
    /// the absorbed async-engine mechanism: a recurring kFoldedUpdates top
    /// emits a model version every `goal` folded client updates.
    bool recurring = false;

    // Cold-start modelling (filled in by the node agent).
    ColdStartTrigger cold_trigger = ColdStartTrigger::kNone;
    double cold_start_secs = 0.0;
    double cold_start_cycles = 0.0;
  };

  AggregatorRuntime(dp::DataPlane& plane, Config cfg);
  ~AggregatorRuntime();
  AggregatorRuntime(const AggregatorRuntime&) = delete;
  AggregatorRuntime& operator=(const AggregatorRuntime&) = delete;

  /// Register routes and begin operating (subject to cold start).
  void start();

  /// Unregister and stop. Unprocessed updates return to the node pool so a
  /// successor instance can aggregate them (stateless failover, §3).
  void stop();

  /// Re-arm this warm instance in place under a new configuration with zero
  /// start-up cost — the §5.3 reuse mechanism, also the streaming
  /// hierarchy's per-batch / cross-round leaf reuse path. Drops all
  /// aggregation state (buffered updates return to the node pool), keeps
  /// the warm sandbox, re-registers routes, starts immediately. Requires
  /// the runtime not to be mid-step; calling it from inside `on_result` of
  /// the finishing aggregation is supported (self-re-arm after Send).
  void rearm(Config cfg);

  /// Stateless role conversion (§5.3): alias of `rearm` under the paper's
  /// name for cross-level promotion.
  void convert_role(Config cfg) { rearm(std::move(cfg)); }

  /// Crash this instance: the sandbox dies taking its accumulator, FIFO
  /// and in-flight update with it — nothing returns to the pool and no
  /// lease is acked (contrast `stop()`, the graceful path). Recovery runs
  /// through the pool's lease table: `lease_abort(id)` yields every update
  /// this instance had accepted but not yet emitted, for a replacement to
  /// re-fold. Idempotent.
  void fail();

  /// Adjust the goal of a live instance. Growing is always safe; shrinking
  /// to (or below) the work already folded triggers the Send immediately.
  /// `open = true` keeps the goal growable and suppresses the Send.
  void set_goal(std::uint32_t goal, bool open = false);

  /// Force this instance to finish with what it already has: seal the goal
  /// at the updates accepted so far (buffered and mid-step included) so the
  /// partial aggregate is sent to the consumer — the shrink path of the
  /// streaming hierarchy, where a retiring leaf's accumulator drains into
  /// its parent instead of being discarded. Returns the goal it was sealed
  /// at (in this instance's goal units); 0 means nothing was ever accepted
  /// (no Send will happen — the caller can park the instance directly).
  std::uint32_t drain();

  /// Hand an update to this runtime directly, bypassing the data plane —
  /// used when a converted instance keeps its own previous output (the
  /// aggregate is already in its memory; no transfer happens).
  void inject(ModelUpdate u) { deliver(std::move(u)); }

  const Config& config() const noexcept { return cfg_; }
  bool started() const noexcept { return started_; }
  bool ready() const noexcept { return ready_; }
  /// The aggregation goal was met and the result sent. A recurring
  /// instance is never done — it emits and continues.
  bool done() const noexcept { return sent_; }
  /// Started, not processing, nothing buffered (reusable when also done).
  bool idle() const noexcept {
    return started_ && !processing_ && fifo_.empty();
  }

  std::uint32_t received() const noexcept { return received_; }
  std::uint32_t aggregated() const noexcept { return aggregated_; }
  /// Client updates folded into the running aggregate so far.
  std::uint32_t folded() const noexcept { return acc_.updates_folded(); }
  std::uint32_t stale_dropped() const noexcept { return stale_dropped_; }
  /// Updates discarded at Recv for failing their integrity check.
  std::uint32_t corrupt_dropped() const noexcept { return corrupt_dropped_; }
  /// This instance was crashed by `fail()`.
  bool failed() const noexcept { return failed_; }
  /// Aggregates emitted by a recurring instance (model versions, for a
  /// recurring top).
  std::uint32_t emissions() const noexcept { return emissions_; }
  sim::SimTime first_arrival_at() const noexcept { return first_arrival_at_; }
  sim::SimTime sent_at() const noexcept { return sent_at_; }
  /// Total seconds spent in Recv+Agg+Send processing.
  sim::SimTime busy_secs() const noexcept { return busy_secs_; }

 private:
  /// Shared liveness + routing context for callbacks parked in simulator
  /// queues. `rt` is nulled on stop()/convert_role(); `plane`/`node` stay
  /// valid (the plane outlives every runtime), so a late callback can still
  /// recycle its update into the node pool. Hot-path callbacks capture one
  /// shared_ptr to this block (16 bytes — `sim::Task`-inline), replacing
  /// the `std::function` closures that used to heap-allocate per step.
  struct Ctx {
    AggregatorRuntime* rt;
    dp::DataPlane* plane;
    sim::NodeId node;
  };
  /// Pool-waiter callback (16 bytes; UpdatePool waiter slot stays inline).
  struct PoolWaiter {
    std::shared_ptr<Ctx> c;
    void operator()(ModelUpdate u) const;
  };
  /// Broker-consume continuation (carries the drained update).
  struct ConsumeReady {
    std::shared_ptr<Ctx> c;
    std::shared_ptr<ModelUpdate> u;
    void operator()() const;
  };
  /// Recv / Agg step completions (16 bytes; core-pool slab stays inline).
  struct RecvDone {
    std::shared_ptr<Ctx> c;
    void operator()() const;
  };
  struct AggDone {
    std::shared_ptr<Ctx> c;
    void operator()() const;
  };

  void validate_config() const;
  bool goal_reached() const noexcept;
  void maybe_complete();
  void deliver(ModelUpdate u);
  void begin_cold_start();
  void on_ready();
  void pump();
  void process_one(ModelUpdate u);
  void on_recv_done();
  void on_agg_done();
  void do_send();
  void maybe_pull();

  dp::DataPlane& plane_;
  sim::Simulator& sim_;
  Config cfg_;
  FedAvgAccumulator acc_;
  std::deque<ModelUpdate> fifo_;
  std::optional<ModelUpdate> in_flight_;  ///< update mid-Recv/Agg
  std::shared_ptr<Ctx> ctx_;  ///< guards pool waiters across stop()

  // Cost of the step currently in service on the node cores (the runtime
  // is a single-threaded pipeline: at most one step is in flight).
  double step_cycles_ = 0.0;
  double step_secs_ = 0.0;

  bool started_ = false;
  bool ready_ = false;
  bool cold_start_begun_ = false;
  bool processing_ = false;
  bool sent_ = false;
  bool failed_ = false;
  std::uint32_t received_ = 0;
  std::uint32_t pulled_ = 0;
  std::uint32_t aggregated_ = 0;
  std::uint32_t stale_dropped_ = 0;
  std::uint32_t corrupt_dropped_ = 0;
  std::uint32_t emissions_ = 0;
  std::uint32_t version_ = 0;
  sim::SimTime first_arrival_at_ = -1.0;
  sim::SimTime sent_at_ = -1.0;
  sim::SimTime busy_secs_ = 0.0;
};

}  // namespace lifl::fl
