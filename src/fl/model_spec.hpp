#pragma once

#include <cstddef>
#include <string>

namespace lifl::fl {

/// Static description of a trainable model as the platform sees it: a name
/// and a flat parameter count. The data plane only cares about `bytes()` —
/// a model update is `param_count` float32 values on the wire.
struct ModelSpec {
  std::string name;
  std::size_t param_count = 0;

  /// Payload size of one model update (float32 parameters).
  std::size_t bytes() const noexcept { return param_count * 4; }
};

namespace models {

/// ResNet-18: 11.69M parameters, ~46.8 MB update (paper: "~44MB").
inline ModelSpec resnet18() { return {"resnet18", 11'689'512}; }

/// ResNet-34: 21.80M parameters, ~87.2 MB update (paper: "~83MB").
inline ModelSpec resnet34() { return {"resnet34", 21'797'672}; }

/// ResNet-152: 60.19M parameters, ~240.8 MB update (paper: "~232MB").
inline ModelSpec resnet152() { return {"resnet152", 60'192'808}; }

/// A small MLP with a real in-process parameter tensor (quickstart/tests).
inline ModelSpec mlp(std::size_t param_count) {
  return {"mlp", param_count};
}

}  // namespace models

}  // namespace lifl::fl
