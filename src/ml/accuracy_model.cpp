#include "src/ml/accuracy_model.hpp"

#include <algorithm>
#include <cmath>

namespace lifl::ml {

double AccuracyModel::mean_accuracy(std::uint32_t round) const noexcept {
  return a_max_ * (1.0 - std::exp(-static_cast<double>(round) / tau_));
}

double AccuracyModel::sample_accuracy(std::uint32_t round,
                                      sim::Rng& rng) const noexcept {
  const double a = mean_accuracy(round) + rng.normal(0.0, noise_);
  return std::clamp(a, 0.0, 1.0);
}

std::uint32_t AccuracyModel::rounds_to_accuracy(double target) const noexcept {
  if (target >= a_max_) return 0;
  const double r = -tau_ * std::log(1.0 - target / a_max_);
  return static_cast<std::uint32_t>(std::ceil(r));
}

}  // namespace lifl::ml
