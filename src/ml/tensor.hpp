#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/random.hpp"
#include "src/sim/snapshot.hpp"

namespace lifl::ml {

/// Dense float32 vector — the flat parameter/update representation that
/// FedAvg aggregates.
///
/// Model updates in FL are (weighted) linear combinations of parameter
/// vectors, so a flat tensor plus BLAS-1 operations is the entire algebra
/// the aggregation plane needs. Kept deliberately simple and value-semantic.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::size_t n, float value = 0.0f) : data_(n, value) {}

  /// Gaussian-initialized tensor (e.g. He/Xavier-style scaled by caller).
  static Tensor randn(sim::Rng& rng, std::size_t n, float stddev);

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Bytes of the parameter payload (what travels as a model update).
  std::size_t bytes() const noexcept { return data_.size() * sizeof(float); }

  /// this += a * x. Sizes must match.
  void axpy(float a, const Tensor& x);

  /// this = a * this + b * x in ONE read-modify-write pass — the fused form
  /// of the scale-then-axpy pair. Sizes must match.
  void axpby(float a, float b, const Tensor& x);

  /// this *= a.
  void scale(float a) noexcept;

  /// Set every element to `value`.
  void fill(float value) noexcept;

  /// Dot product. Sizes must match.
  double dot(const Tensor& x) const;

  /// Euclidean norm.
  double l2norm() const;

  /// Max |a_i - b_i| between two tensors. Sizes must match.
  static double max_abs_diff(const Tensor& a, const Tensor& b);

  bool operator==(const Tensor& o) const noexcept { return data_ == o.data_; }

 private:
  std::vector<float> data_;
};

/// Bit-exact tensor snapshot: the raw float payload, length-prefixed. Every
/// IEEE bit pattern (NaNs, signed zeros, denormals) round-trips verbatim —
/// see tests/snapshot_test.cpp.
inline void save(sim::Serializer& s, const Tensor& t) {
  s.u64(t.size());
  s.raw(t.data(), t.bytes());
}

inline void load(sim::Deserializer& d, Tensor& t) {
  const std::uint64_t n = d.u64();
  t = Tensor(static_cast<std::size_t>(n));
  d.raw(t.data(), t.bytes());
}

}  // namespace lifl::ml
