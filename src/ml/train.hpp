#pragma once

#include <cstddef>
#include <memory>

#include "src/ml/dataset.hpp"
#include "src/ml/mlp.hpp"
#include "src/ml/tensor.hpp"
#include "src/sim/random.hpp"

namespace lifl::ml {

/// Hyperparameters of one client's local training (§6.2: SGD, batch size 32,
/// one local epoch, learning rate 0.01).
struct LocalTrainConfig {
  std::size_t epochs = 1;
  std::size_t batch_size = 32;
  float learning_rate = 0.01f;
};

/// Result of local training: the new parameters and the sample count that
/// weights them in FedAvg (the auxiliary information A_k of Eq. 1).
///
/// `params` is a pool-recycled shared tensor, ready to ride a ModelUpdate
/// through the data plane with zero further copies: assign it to
/// `ModelUpdate::tensor` and upload.
struct LocalUpdate {
  std::shared_ptr<const Tensor> params;
  std::size_t sample_count = 0;
  double train_loss = 0.0;
};

/// Run local SGD from `global_params` on `shard`; pure function of its
/// inputs plus the RNG stream (mini-batch shuffling).
LocalUpdate local_train(const Mlp& architecture, const Tensor& global_params,
                        const Dataset& shard, const LocalTrainConfig& cfg,
                        sim::Rng& rng);

}  // namespace lifl::ml
