#pragma once

#include <cstddef>
#include <vector>

#include "src/ml/dataset.hpp"
#include "src/ml/tensor.hpp"
#include "src/sim/random.hpp"

namespace lifl::ml {

/// Multi-layer perceptron with ReLU hidden layers and a softmax
/// cross-entropy head, over a *flat* parameter vector.
///
/// The flat layout is the point: an FL model update is exactly this
/// parameter tensor, so the aggregation plane treats MLPs and (simulated)
/// ResNets identically — both are weighted averages of flat float vectors.
class Mlp {
 public:
  /// `dims` = {input, hidden..., classes}; at least {input, classes}.
  explicit Mlp(std::vector<std::size_t> dims);

  /// Number of parameters (weights + biases across all layers).
  std::size_t param_count() const noexcept { return param_count_; }

  /// He-initialize parameters.
  void init(sim::Rng& rng);

  const Tensor& params() const noexcept { return params_; }
  Tensor& mutable_params() noexcept { return params_; }
  void set_params(const Tensor& p);

  /// Forward pass over one example; returns class logits.
  std::vector<float> logits(const float* x) const;

  /// Predicted class of one example.
  int predict(const float* x) const;

  /// Mean cross-entropy loss over a dataset.
  double loss(const Dataset& data) const;

  /// Classification accuracy over a dataset, in [0, 1].
  double accuracy(const Dataset& data) const;

  /// Mean gradient of the cross-entropy loss over the examples with indices
  /// `idx` in `data`, written to `grad` (resized to `param_count()`).
  /// Returns the mean loss over the batch.
  double gradient(const Dataset& data, const std::vector<std::size_t>& idx,
                  Tensor& grad) const;

  /// One SGD step: params -= lr * grad.
  void sgd_step(const Tensor& grad, float lr);

  const std::vector<std::size_t>& dims() const noexcept { return dims_; }

 private:
  struct Layer {
    std::size_t in = 0, out = 0;
    std::size_t w_off = 0, b_off = 0;  ///< offsets into the flat tensor
  };

  // Forward pass keeping activations for backprop.
  void forward(const float* x, std::vector<std::vector<float>>& acts) const;

  std::vector<std::size_t> dims_;
  std::vector<Layer> layers_;
  std::size_t param_count_ = 0;
  Tensor params_;
};

}  // namespace lifl::ml
