#pragma once

#include <cstdint>

#include "src/sim/random.hpp"

namespace lifl::ml {

/// Calibrated accuracy-vs-round curve for the heavyweight ResNet/FEMNIST
/// workloads (substitution for real GPU training; see DESIGN.md §1).
///
/// Synchronous FedAvg produces the *same* accuracy trajectory regardless of
/// which platform (SF/SL/LIFL) aggregates it — the platforms differ only in
/// wall-clock and CPU cost per round. The paper's Fig. 9 comparisons are
/// therefore preserved exactly by giving every system one shared curve and
/// letting per-round *system* time come out of the simulator.
///
/// Shape: acc(r) = a_max * (1 - exp(-r / tau)), a saturating curve fit to
/// the paper's anchors (70% reached near the round counts implied by LIFL's
/// measured per-round time and time-to-70%).
class AccuracyModel {
 public:
  AccuracyModel(double a_max, double tau, double noise_stddev = 0.004)
      : a_max_(a_max), tau_(tau), noise_(noise_stddev) {}

  /// ResNet-18 on FEMNIST: saturates ~82%, 70% around round ~34. The round
  /// count is anchored so that LIFL's measured per-round time (~98 s under
  /// the §6.2 mobile-client workload) lands on the paper's 0.9 h to 70%.
  static AccuracyModel resnet18_femnist() { return {0.82, 17.2}; }

  /// ResNet-152 on FEMNIST: saturates ~80%, 70% around round ~107, anchored
  /// so LIFL's measured ~64 s rounds land on the paper's 1.9 h to 70%.
  static AccuracyModel resnet152_femnist() { return {0.80, 51.2}; }

  /// Mean accuracy after `round` completed rounds (round 0 => untrained).
  double mean_accuracy(std::uint32_t round) const noexcept;

  /// Accuracy sample with bounded evaluation noise.
  double sample_accuracy(std::uint32_t round, sim::Rng& rng) const noexcept;

  /// Smallest round count whose mean accuracy reaches `target`;
  /// returns 0 if unreachable (target >= a_max).
  std::uint32_t rounds_to_accuracy(double target) const noexcept;

  double a_max() const noexcept { return a_max_; }
  double tau() const noexcept { return tau_; }

 private:
  double a_max_;
  double tau_;
  double noise_;
};

}  // namespace lifl::ml
