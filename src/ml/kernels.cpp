#include "src/ml/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>

// Function multi-versioning (one compiled body per ISA, selected at startup)
// is only wired up for x86-64 GCC/Clang; every other toolchain still gets
// the scalar and wide levels, which are ISA-portable.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define LIFL_KERNELS_X86 1
#else
#define LIFL_KERNELS_X86 0
#endif

namespace lifl::ml::kernels {

namespace {

// ---------------------------------------------------------------- scalar
// Reference implementations: one accumulator, no unrolling. `dot` is kept
// deliberately in the seed's single-double-accumulator shape — it is the
// baseline the "multi-accumulator actually vectorizes" claim is benched
// against, and the semantics oracle for the unit tests.

void fill_scalar(float* p, float v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = v;
}

void scale_scalar(float* p, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] *= a;
}

void scale_into_scalar(float* out, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i];
}

void axpy_scalar(float* acc, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += a * x[i];
}

void axpby_scalar(float* acc, float a, float b, const float* x,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = a * acc[i] + b * x[i];
}

void axpy2_scalar(float* acc, float a, const float* x, float b,
                  const float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += a * x[i] + b * y[i];
}

void axpby_into_scalar(float* out, float a, const float* x, float b,
                       const float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b * y[i];
}

double dot_scalar(const float* x, const float* y, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double nrm2_scalar(const float* x, std::size_t n) {
  return std::sqrt(dot_scalar(x, x, n));
}

constexpr Ops kScalarOps = {fill_scalar, scale_scalar, scale_into_scalar,
                            axpy_scalar, axpby_scalar, axpy2_scalar,
                            axpby_into_scalar, dot_scalar, nrm2_scalar};

// ------------------------------------------------------------------ wide
// One loop-body set, stamped out per ISA. The bodies are plain `__restrict`
// loops the compiler auto-vectorizes; the reductions carry four independent
// accumulators so the float->double converts and adds pipeline instead of
// serializing on a single register.
//
// `ATTRS` is a function attribute list: empty for the baseline-ISA build,
// `target("avx2,fma")` / `target("avx512f,fma")` for the multi-versioned
// levels (same source, wider lanes).

#define LIFL_DEFINE_WIDE_KERNELS(SUFFIX, ATTRS)                               \
  ATTRS void fill_##SUFFIX(float* __restrict p, float v, std::size_t n) {     \
    for (std::size_t i = 0; i < n; ++i) p[i] = v;                             \
  }                                                                           \
  ATTRS void scale_##SUFFIX(float* __restrict p, float a, std::size_t n) {    \
    for (std::size_t i = 0; i < n; ++i) p[i] *= a;                            \
  }                                                                           \
  ATTRS void scale_into_##SUFFIX(float* __restrict out, float a,              \
                                 const float* __restrict x, std::size_t n) {  \
    for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i];                    \
  }                                                                           \
  ATTRS void axpy_##SUFFIX(float* __restrict acc, float a,                    \
                           const float* __restrict x, std::size_t n) {        \
    for (std::size_t i = 0; i < n; ++i) acc[i] += a * x[i];                   \
  }                                                                           \
  ATTRS void axpby_##SUFFIX(float* __restrict acc, float a, float b,          \
                            const float* __restrict x, std::size_t n) {       \
    for (std::size_t i = 0; i < n; ++i) acc[i] = a * acc[i] + b * x[i];       \
  }                                                                           \
  ATTRS void axpy2_##SUFFIX(float* __restrict acc, float a,                   \
                            const float* __restrict x, float b,               \
                            const float* __restrict y, std::size_t n) {       \
    for (std::size_t i = 0; i < n; ++i) acc[i] += a * x[i] + b * y[i];        \
  }                                                                           \
  ATTRS void axpby_into_##SUFFIX(float* __restrict out, float a,              \
                                 const float* __restrict x, float b,          \
                                 const float* __restrict y, std::size_t n) {  \
    for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b * y[i];         \
  }                                                                           \
  ATTRS double dot_##SUFFIX(const float* __restrict x,                        \
                            const float* __restrict y, std::size_t n) {       \
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;                            \
    std::size_t i = 0;                                                        \
    for (; i + 4 <= n; i += 4) {                                              \
      a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);            \
      a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);    \
      a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);    \
      a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);    \
    }                                                                         \
    double acc = (a0 + a1) + (a2 + a3);                                       \
    for (; i < n; ++i) {                                                      \
      acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);           \
    }                                                                         \
    return acc;                                                               \
  }                                                                           \
  ATTRS double nrm2_##SUFFIX(const float* __restrict x, std::size_t n) {      \
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;                            \
    std::size_t i = 0;                                                        \
    for (; i + 4 <= n; i += 4) {                                              \
      a0 += static_cast<double>(x[i]) * static_cast<double>(x[i]);            \
      a1 += static_cast<double>(x[i + 1]) * static_cast<double>(x[i + 1]);    \
      a2 += static_cast<double>(x[i + 2]) * static_cast<double>(x[i + 2]);    \
      a3 += static_cast<double>(x[i + 3]) * static_cast<double>(x[i + 3]);    \
    }                                                                         \
    double acc = (a0 + a1) + (a2 + a3);                                       \
    for (; i < n; ++i) {                                                      \
      acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);           \
    }                                                                         \
    return std::sqrt(acc);                                                    \
  }                                                                           \
  constexpr Ops k##SUFFIX##Table = {                                          \
      fill_##SUFFIX, scale_##SUFFIX, scale_into_##SUFFIX,                     \
      axpy_##SUFFIX, axpby_##SUFFIX, axpy2_##SUFFIX,                          \
      axpby_into_##SUFFIX, dot_##SUFFIX, nrm2_##SUFFIX};

LIFL_DEFINE_WIDE_KERNELS(Wide, )

#if LIFL_KERNELS_X86
LIFL_DEFINE_WIDE_KERNELS(Avx2, __attribute__((target("avx2,fma"))))
LIFL_DEFINE_WIDE_KERNELS(Avx512, __attribute__((target("avx512f,fma"))))
#endif

#undef LIFL_DEFINE_WIDE_KERNELS

const Ops* table_of(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return &kScalarOps;
    case Level::kWide: return &kWideTable;
#if LIFL_KERNELS_X86
    case Level::kAvx2: return &kAvx2Table;
    case Level::kAvx512: return &kAvx512Table;
#else
    case Level::kAvx2:
    case Level::kAvx512: return &kWideTable;
#endif
  }
  return &kScalarOps;
}

Level clamp_supported(Level level) noexcept {
  const Level top = max_supported();
  return static_cast<int>(level) > static_cast<int>(top) ? top : level;
}

std::atomic<const Ops*> g_ops{nullptr};
std::atomic<int> g_level{-1};

/// Startup selection: LIFL_KERNEL override, else the best the CPU can run.
Level initial_level() noexcept {
  if (const char* env = std::getenv("LIFL_KERNEL")) {
    Level parsed;
    if (parse_level(env, parsed)) return clamp_supported(parsed);
  }
  return max_supported();
}

void ensure_selected() noexcept {
  if (g_ops.load(std::memory_order_acquire) == nullptr) {
    select(initial_level());  // benign race: all writers agree
  }
}

}  // namespace

Level max_supported() noexcept {
#if LIFL_KERNELS_X86
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kWide;
}

Level select(Level level) noexcept {
  const Level chosen = clamp_supported(level);
  // Level first: ensure_selected() gates on g_ops, so once g_ops is
  // visible the matching g_level must already be too.
  g_level.store(static_cast<int>(chosen), std::memory_order_release);
  g_ops.store(table_of(chosen), std::memory_order_release);
  return chosen;
}

const Ops& ops() noexcept {
  ensure_selected();
  return *g_ops.load(std::memory_order_acquire);
}

const Ops& ops_for(Level level) noexcept {
  return *table_of(clamp_supported(level));
}

Level level() noexcept {
  ensure_selected();
  return static_cast<Level>(g_level.load(std::memory_order_acquire));
}

bool parse_level(const std::string& name, Level& out) noexcept {
  if (name == "scalar") {
    out = Level::kScalar;
  } else if (name == "wide") {
    out = Level::kWide;
  } else if (name == "avx2") {
    out = Level::kAvx2;
  } else if (name == "avx512") {
    out = Level::kAvx512;
  } else {
    return false;
  }
  return true;
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kWide: return "wide";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

}  // namespace lifl::ml::kernels
