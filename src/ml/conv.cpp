#include "src/ml/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lifl::ml {

namespace {

constexpr std::size_t kK = 3;  ///< kernel size (3x3 everywhere)

/// Numerically stable softmax + cross-entropy; returns loss, fills probs.
double softmax_xent(const std::vector<float>& logits, int label,
                    std::vector<float>& probs) {
  probs.resize(logits.size());
  float maxv = logits[0];
  for (float v : logits) maxv = std::max(maxv, v);
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(logits[i] - maxv);
    sum += probs[i];
  }
  for (auto& p : probs) p = static_cast<float>(p / sum);
  const double p_label = std::max(1e-12, static_cast<double>(
                                             probs[static_cast<std::size_t>(
                                                 label)]));
  return -std::log(p_label);
}

}  // namespace

struct TinyResNet::Trace {
  std::vector<float> input;                     ///< C_in x H x W
  std::vector<std::vector<float>> pre;          ///< pre-activation per conv
  std::vector<std::vector<float>> post;         ///< post-ReLU per stage
  std::vector<float> pooled;                    ///< F (global average)
  std::vector<float> logits;                    ///< classes
};

TinyResNet::TinyResNet(Config cfg) : cfg_(cfg) {
  if (cfg_.filters == 0 || cfg_.num_classes == 0 || cfg_.height == 0 ||
      cfg_.width == 0 || cfg_.in_channels == 0) {
    throw std::invalid_argument("TinyResNet: zero-sized dimension");
  }
  std::size_t off = 0;
  auto add_conv = [&](std::size_t in_ch, std::size_t out_ch) {
    ConvParam p;
    p.in_ch = in_ch;
    p.out_ch = out_ch;
    p.w_off = off;
    off += out_ch * in_ch * kK * kK;
    p.b_off = off;
    off += out_ch;
    convs_.push_back(p);
  };
  add_conv(cfg_.in_channels, cfg_.filters);       // stem
  for (std::size_t b = 0; b < cfg_.blocks; ++b) { // residual units
    add_conv(cfg_.filters, cfg_.filters);
    add_conv(cfg_.filters, cfg_.filters);
  }
  dense_w_off_ = off;
  off += cfg_.num_classes * cfg_.filters;
  dense_b_off_ = off;
  off += cfg_.num_classes;
  param_count_ = off;
  params_ = Tensor(param_count_, 0.0f);
}

void TinyResNet::init(sim::Rng& rng) {
  for (const auto& c : convs_) {
    const auto fan_in = static_cast<double>(c.in_ch * kK * kK);
    const auto stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
    for (std::size_t i = 0; i < c.out_ch * c.in_ch * kK * kK; ++i) {
      params_[c.w_off + i] = static_cast<float>(rng.normal(0.0, stddev));
    }
    for (std::size_t i = 0; i < c.out_ch; ++i) params_[c.b_off + i] = 0.0f;
  }
  const auto stddev =
      static_cast<float>(std::sqrt(2.0 / static_cast<double>(cfg_.filters)));
  for (std::size_t i = 0; i < cfg_.num_classes * cfg_.filters; ++i) {
    params_[dense_w_off_ + i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  for (std::size_t i = 0; i < cfg_.num_classes; ++i) {
    params_[dense_b_off_ + i] = 0.0f;
  }
}

void TinyResNet::set_params(const Tensor& p) {
  if (p.size() != param_count_) {
    throw std::invalid_argument("TinyResNet::set_params: size mismatch");
  }
  params_ = p;
}

void TinyResNet::conv3x3(const ConvParam& p, const std::vector<float>& in,
                         std::vector<float>& out) const {
  const std::size_t H = cfg_.height, W = cfg_.width;
  out.assign(p.out_ch * H * W, 0.0f);
  const float* w = params_.data() + p.w_off;
  const float* b = params_.data() + p.b_off;
  for (std::size_t oc = 0; oc < p.out_ch; ++oc) {
    for (std::size_t y = 0; y < H; ++y) {
      for (std::size_t x = 0; x < W; ++x) {
        float acc = b[oc];
        for (std::size_t ic = 0; ic < p.in_ch; ++ic) {
          for (std::size_t ky = 0; ky < kK; ++ky) {
            const auto iy = static_cast<std::ptrdiff_t>(y + ky) - 1;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(H)) continue;
            for (std::size_t kx = 0; kx < kK; ++kx) {
              const auto ix = static_cast<std::ptrdiff_t>(x + kx) - 1;
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(W)) continue;
              acc += w[((oc * p.in_ch + ic) * kK + ky) * kK + kx] *
                     in[(ic * H + static_cast<std::size_t>(iy)) * W +
                        static_cast<std::size_t>(ix)];
            }
          }
        }
        out[(oc * H + y) * W + x] = acc;
      }
    }
  }
}

void TinyResNet::conv3x3_backward(const ConvParam& p,
                                  const std::vector<float>& in,
                                  const std::vector<float>& dout,
                                  std::vector<float>& din,
                                  Tensor& grad) const {
  const std::size_t H = cfg_.height, W = cfg_.width;
  din.assign(p.in_ch * H * W, 0.0f);
  const float* w = params_.data() + p.w_off;
  float* dw = grad.data() + p.w_off;
  float* db = grad.data() + p.b_off;
  for (std::size_t oc = 0; oc < p.out_ch; ++oc) {
    for (std::size_t y = 0; y < H; ++y) {
      for (std::size_t x = 0; x < W; ++x) {
        const float g = dout[(oc * H + y) * W + x];
        if (g == 0.0f) continue;
        db[oc] += g;
        for (std::size_t ic = 0; ic < p.in_ch; ++ic) {
          for (std::size_t ky = 0; ky < kK; ++ky) {
            const auto iy = static_cast<std::ptrdiff_t>(y + ky) - 1;
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(H)) continue;
            for (std::size_t kx = 0; kx < kK; ++kx) {
              const auto ix = static_cast<std::ptrdiff_t>(x + kx) - 1;
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(W)) continue;
              const std::size_t in_idx =
                  (ic * H + static_cast<std::size_t>(iy)) * W +
                  static_cast<std::size_t>(ix);
              dw[((oc * p.in_ch + ic) * kK + ky) * kK + kx] += g * in[in_idx];
              din[in_idx] += g * w[((oc * p.in_ch + ic) * kK + ky) * kK + kx];
            }
          }
        }
      }
    }
  }
}

void TinyResNet::forward(const float* x, Trace& t) const {
  const std::size_t H = cfg_.height, W = cfg_.width;
  const std::size_t map = H * W;
  t.input.assign(x, x + cfg_.in_channels * map);
  t.pre.clear();
  t.post.clear();
  // One stem stage plus two per residual unit. Reserving keeps references
  // to earlier stages (the skip connections) valid across push_backs.
  t.pre.reserve(1 + 2 * cfg_.blocks);
  t.post.reserve(1 + 2 * cfg_.blocks);

  // Stem: conv + ReLU.
  std::vector<float> cur;
  t.pre.emplace_back();
  conv3x3(convs_[0], t.input, t.pre.back());
  cur = t.pre.back();
  for (auto& v : cur) v = std::max(0.0f, v);
  t.post.push_back(cur);

  // Residual units.
  for (std::size_t b = 0; b < cfg_.blocks; ++b) {
    const std::vector<float>& skip = t.post.back();
    t.pre.emplace_back();
    conv3x3(convs_[1 + 2 * b], skip, t.pre.back());
    std::vector<float> mid = t.pre.back();
    for (auto& v : mid) v = std::max(0.0f, v);
    t.post.push_back(mid);

    t.pre.emplace_back();
    conv3x3(convs_[2 + 2 * b], mid, t.pre.back());
    std::vector<float> out = t.pre.back();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += skip[i];
    for (auto& v : out) v = std::max(0.0f, v);
    t.post.push_back(out);
  }

  // Global average pool over each of the F maps.
  const std::vector<float>& trunk = t.post.back();
  t.pooled.assign(cfg_.filters, 0.0f);
  for (std::size_t f = 0; f < cfg_.filters; ++f) {
    double sum = 0.0;
    for (std::size_t i = 0; i < map; ++i) sum += trunk[f * map + i];
    t.pooled[f] = static_cast<float>(sum / static_cast<double>(map));
  }

  // Dense head.
  t.logits.assign(cfg_.num_classes, 0.0f);
  const float* dw = params_.data() + dense_w_off_;
  const float* db = params_.data() + dense_b_off_;
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    float acc = db[c];
    for (std::size_t f = 0; f < cfg_.filters; ++f) {
      acc += dw[c * cfg_.filters + f] * t.pooled[f];
    }
    t.logits[c] = acc;
  }
}

void TinyResNet::backward(const Trace& t, const std::vector<float>& dlogits,
                          Tensor& grad) const {
  const std::size_t H = cfg_.height, W = cfg_.width;
  const std::size_t map = H * W;

  // Dense head.
  const float* dw_params = params_.data() + dense_w_off_;
  float* dW = grad.data() + dense_w_off_;
  float* dB = grad.data() + dense_b_off_;
  std::vector<float> dpooled(cfg_.filters, 0.0f);
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    dB[c] += dlogits[c];
    for (std::size_t f = 0; f < cfg_.filters; ++f) {
      dW[c * cfg_.filters + f] += dlogits[c] * t.pooled[f];
      dpooled[f] += dlogits[c] * dw_params[c * cfg_.filters + f];
    }
  }

  // Global average pool: gradient spreads uniformly over each map.
  std::vector<float> dtrunk(cfg_.filters * map, 0.0f);
  for (std::size_t f = 0; f < cfg_.filters; ++f) {
    const float g = dpooled[f] / static_cast<float>(map);
    for (std::size_t i = 0; i < map; ++i) dtrunk[f * map + i] = g;
  }

  // Residual units, last to first. Stage indices into t.pre/t.post:
  //   pre[0]            stem conv
  //   pre[1+2b], post[1+2b]   first conv of block b (post is ReLU'd mid)
  //   pre[2+2b], post[2+2b]   second conv of block b (post is out)
  std::vector<float> dout = std::move(dtrunk);
  for (std::size_t bi = cfg_.blocks; bi-- > 0;) {
    const std::vector<float>& out_pre = t.pre[2 + 2 * bi];    // conv2 + skip
    const std::vector<float>& skip = t.post[2 * bi];          // block input
    const std::vector<float>& mid = t.post[1 + 2 * bi];       // ReLU(conv1)
    const std::vector<float>& mid_pre = t.pre[1 + 2 * bi];

    // ReLU at the block output: active where conv2(mid) + skip > 0.
    std::vector<float> dsum(dout.size());
    for (std::size_t i = 0; i < dout.size(); ++i) {
      dsum[i] = (out_pre[i] + skip[i]) > 0.0f ? dout[i] : 0.0f;
    }
    // Branch 1: through conv2 and the mid ReLU into conv1.
    std::vector<float> dmid;
    conv3x3_backward(convs_[2 + 2 * bi], mid, dsum, dmid, grad);
    for (std::size_t i = 0; i < dmid.size(); ++i) {
      if (mid_pre[i] <= 0.0f) dmid[i] = 0.0f;
    }
    std::vector<float> dskip_via_conv;
    conv3x3_backward(convs_[1 + 2 * bi], skip, dmid, dskip_via_conv, grad);
    // Branch 2: the identity skip.
    for (std::size_t i = 0; i < dsum.size(); ++i) {
      dskip_via_conv[i] += dsum[i];
    }
    dout = std::move(dskip_via_conv);
  }

  // Stem ReLU + conv.
  const std::vector<float>& stem_pre = t.pre[0];
  for (std::size_t i = 0; i < dout.size(); ++i) {
    if (stem_pre[i] <= 0.0f) dout[i] = 0.0f;
  }
  std::vector<float> dinput;
  conv3x3_backward(convs_[0], t.input, dout, dinput, grad);
}

std::vector<float> TinyResNet::logits(const float* x) const {
  Trace t;
  forward(x, t);
  return t.logits;
}

int TinyResNet::predict(const float* x) const {
  const auto l = logits(x);
  return static_cast<int>(std::max_element(l.begin(), l.end()) - l.begin());
}

double TinyResNet::loss(const Dataset& data) const {
  double total = 0.0;
  std::vector<float> probs;
  for (std::size_t i = 0; i < data.labels.size(); ++i) {
    const auto l = logits(data.features.data() + i * data.feature_dim);
    total += softmax_xent(l, data.labels[i], probs);
  }
  return data.labels.empty() ? 0.0
                             : total / static_cast<double>(data.labels.size());
}

double TinyResNet::accuracy(const Dataset& data) const {
  if (data.labels.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.labels.size(); ++i) {
    if (predict(data.features.data() + i * data.feature_dim) ==
        data.labels[i]) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.labels.size());
}

double TinyResNet::gradient(const Dataset& data,
                            const std::vector<std::size_t>& idx,
                            Tensor& grad) const {
  if (grad.size() != param_count_) grad = Tensor(param_count_, 0.0f);
  grad.fill(0.0f);
  if (idx.empty()) return 0.0;
  double total_loss = 0.0;
  Trace t;
  std::vector<float> probs;
  for (const std::size_t i : idx) {
    forward(data.features.data() + i * data.feature_dim, t);
    total_loss += softmax_xent(t.logits, data.labels[i], probs);
    std::vector<float> dlogits(probs.begin(), probs.end());
    dlogits[static_cast<std::size_t>(data.labels[i])] -= 1.0f;
    const auto inv = 1.0f / static_cast<float>(idx.size());
    for (auto& v : dlogits) v *= inv;
    backward(t, dlogits, grad);
  }
  return total_loss / static_cast<double>(idx.size());
}

void TinyResNet::sgd_step(const Tensor& grad, float lr) {
  params_.axpy(-lr, grad);
}

// ------------------------------------------------------------- ImageDataGen

ImageDataGen::ImageDataGen(TinyResNet::Config cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  // Class-specific blob centers, spread over the image with margin 1.
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    blob_centers_.emplace_back(
        1.0 + rng_.uniform() * (static_cast<double>(cfg_.height) - 2.0),
        1.0 + rng_.uniform() * (static_cast<double>(cfg_.width) - 2.0));
  }
}

void ImageDataGen::render(int cls, sim::Rng& rng,
                          std::vector<float>& out) const {
  const std::size_t H = cfg_.height, W = cfg_.width;
  out.assign(cfg_.in_channels * H * W, 0.0f);
  const auto [cy, cx] = blob_centers_[static_cast<std::size_t>(cls)];
  constexpr double kSigma2 = 1.6;
  for (std::size_t ch = 0; ch < cfg_.in_channels; ++ch) {
    for (std::size_t y = 0; y < H; ++y) {
      for (std::size_t x = 0; x < W; ++x) {
        const double dy = static_cast<double>(y) - cy;
        const double dx = static_cast<double>(x) - cx;
        const double blob = std::exp(-(dy * dy + dx * dx) / (2.0 * kSigma2));
        out[(ch * H + y) * W + x] =
            static_cast<float>(blob + rng.normal(0.0, 0.25));
      }
    }
  }
}

Dataset ImageDataGen::make_test_set(std::size_t samples) {
  Dataset d;
  d.num_classes = cfg_.num_classes;
  d.feature_dim = cfg_.in_channels * cfg_.height * cfg_.width;
  std::vector<float> img;
  for (std::size_t i = 0; i < samples; ++i) {
    const int cls = static_cast<int>(rng_.next_u64() % cfg_.num_classes);
    render(cls, rng_, img);
    d.features.insert(d.features.end(), img.begin(), img.end());
    d.labels.push_back(cls);
  }
  return d;
}

Dataset ImageDataGen::make_client_shard(std::size_t samples, double alpha,
                                        sim::Rng& rng) {
  // Dirichlet(alpha) class mixture via normalized Gamma draws.
  std::vector<double> mix(cfg_.num_classes);
  double sum = 0.0;
  for (auto& m : mix) {
    m = rng.gamma(alpha);
    sum += m;
  }
  for (auto& m : mix) m /= sum;

  Dataset d;
  d.num_classes = cfg_.num_classes;
  d.feature_dim = cfg_.in_channels * cfg_.height * cfg_.width;
  std::vector<float> img;
  for (std::size_t i = 0; i < samples; ++i) {
    double u = rng.uniform();
    int cls = 0;
    for (std::size_t c = 0; c < mix.size(); ++c) {
      if (u < mix[c] || c + 1 == mix.size()) {
        cls = static_cast<int>(c);
        break;
      }
      u -= mix[c];
    }
    render(cls, rng, img);
    d.features.insert(d.features.end(), img.begin(), img.end());
    d.labels.push_back(cls);
  }
  return d;
}

}  // namespace lifl::ml
