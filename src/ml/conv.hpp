#pragma once

#include <cstddef>
#include <vector>

#include "src/ml/dataset.hpp"
#include "src/ml/tensor.hpp"
#include "src/sim/random.hpp"

namespace lifl::ml {

/// A small *real* residual convolutional network — the architecture family
/// of the paper's workloads (He et al., 2016), at a scale a CPU test box
/// trains in seconds.
///
/// Layout: stem conv3x3 (C_in -> F) + ReLU, then `blocks` residual units
/// [conv3x3 -> ReLU -> conv3x3, + identity skip, ReLU], global average
/// pooling over the F feature maps and a dense softmax head. All
/// convolutions are stride-1 with zero "same" padding, so spatial
/// dimensions are preserved end to end.
///
/// Like `Mlp`, parameters live in one flat tensor: a model update *is* the
/// parameter vector, so the FL aggregation plane handles MLPs and ConvNets
/// identically (weighted averages of flat float vectors).
class TinyResNet {
 public:
  struct Config {
    std::size_t height = 8;
    std::size_t width = 8;
    std::size_t in_channels = 1;
    std::size_t filters = 8;    ///< F: channels throughout the trunk
    std::size_t blocks = 2;     ///< residual units
    std::size_t num_classes = 10;
  };

  explicit TinyResNet(Config cfg);

  std::size_t param_count() const noexcept { return param_count_; }
  const Config& config() const noexcept { return cfg_; }

  /// He-initialize all weights (biases zero).
  void init(sim::Rng& rng);

  const Tensor& params() const noexcept { return params_; }
  void set_params(const Tensor& p);

  /// Forward pass over one example (length height*width*in_channels,
  /// channel-major CHW); returns class logits.
  std::vector<float> logits(const float* x) const;
  int predict(const float* x) const;

  double loss(const Dataset& data) const;
  double accuracy(const Dataset& data) const;

  /// Mean softmax cross-entropy gradient over `idx` examples of `data`,
  /// written to `grad` (resized to param_count()); returns the mean loss.
  double gradient(const Dataset& data, const std::vector<std::size_t>& idx,
                  Tensor& grad) const;

  /// One SGD step: params -= lr * grad.
  void sgd_step(const Tensor& grad, float lr);

 private:
  struct ConvParam {
    std::size_t in_ch = 0, out_ch = 0;
    std::size_t w_off = 0, b_off = 0;  ///< offsets into the flat tensor
  };

  /// Activations of one forward pass (kept for backprop).
  struct Trace;

  void forward(const float* x, Trace& t) const;
  /// Backprop one example's logit gradient into `grad` (accumulated).
  void backward(const Trace& t, const std::vector<float>& dlogits,
                Tensor& grad) const;

  void conv3x3(const ConvParam& p, const std::vector<float>& in,
               std::vector<float>& out) const;
  void conv3x3_backward(const ConvParam& p, const std::vector<float>& in,
                        const std::vector<float>& dout,
                        std::vector<float>& din, Tensor& grad) const;

  Config cfg_;
  std::vector<ConvParam> convs_;  ///< stem + 2 per block
  std::size_t dense_w_off_ = 0;
  std::size_t dense_b_off_ = 0;
  std::size_t param_count_ = 0;
  Tensor params_;
};

/// Synthetic image-classification task standing in for FEMNIST: class c is
/// a bright 2-D Gaussian blob at a class-specific position over a noisy
/// background. Spatial structure means convolutions genuinely help, unlike
/// the flat-feature blob task.
class ImageDataGen {
 public:
  ImageDataGen(TinyResNet::Config cfg, sim::Rng rng);

  Dataset make_test_set(std::size_t samples);

  /// Dirichlet(alpha) label-skewed client shard (non-IID, like FedScale).
  Dataset make_client_shard(std::size_t samples, double alpha, sim::Rng& rng);

 private:
  void render(int cls, sim::Rng& rng, std::vector<float>& out) const;

  TinyResNet::Config cfg_;
  sim::Rng rng_;
  std::vector<std::pair<double, double>> blob_centers_;  ///< per class (y, x)
};

}  // namespace lifl::ml
