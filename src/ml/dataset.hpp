#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/random.hpp"

namespace lifl::ml {

/// A labelled dataset with dense features, row-major.
struct Dataset {
  std::size_t feature_dim = 0;
  std::size_t num_classes = 0;
  std::vector<float> features;  ///< size() == rows * feature_dim
  std::vector<int> labels;      ///< size() == rows

  std::size_t size() const noexcept { return labels.size(); }
  const float* row(std::size_t i) const noexcept {
    return features.data() + i * feature_dim;
  }

  /// Append one example.
  void push(const float* x, int y) {
    features.insert(features.end(), x, x + feature_dim);
    labels.push_back(y);
  }
};

/// Parameters of the synthetic classification task used in place of FEMNIST.
///
/// Classes are Gaussian blobs around random class means; difficulty is set
/// by the noise-to-separation ratio. This keeps the FL pipeline *real* — the
/// platform aggregates genuine SGD updates and we measure genuine test
/// accuracy — while remaining CPU-friendly.
struct SyntheticTaskConfig {
  std::size_t feature_dim = 32;
  std::size_t num_classes = 10;
  double class_mean_stddev = 1.0;  ///< spread of class centers
  double sample_noise = 0.85;      ///< within-class noise
};

/// Generator for the synthetic task plus its non-IID federated partition.
class FederatedDataGen {
 public:
  FederatedDataGen(const SyntheticTaskConfig& cfg, sim::Rng rng);

  /// IID test set drawn from the task distribution.
  Dataset make_test_set(std::size_t samples);

  /// A client shard with a Dirichlet(alpha) label-skewed class mixture —
  /// the standard non-IID construction for FL benchmarks (matching the
  /// paper's use of FedScale's non-IID client-data mapping). Smaller alpha
  /// means a more skewed (less IID) shard.
  Dataset make_client_shard(std::size_t samples, double alpha, sim::Rng& rng);

  /// Empirical class histogram of a dataset (for skew tests).
  static std::vector<std::size_t> class_histogram(const Dataset& d);

  const SyntheticTaskConfig& config() const noexcept { return cfg_; }

 private:
  void sample_from_class(int cls, sim::Rng& rng, std::vector<float>& out);

  SyntheticTaskConfig cfg_;
  sim::Rng rng_;
  std::vector<float> class_means_;  ///< num_classes x feature_dim
};

}  // namespace lifl::ml
