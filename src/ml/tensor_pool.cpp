#include "src/ml/tensor_pool.hpp"

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ml/kernels.hpp"

namespace lifl::ml {

/// Free lists + stats behind a mutex. The lock is uncontended on the
/// single-threaded fold path and pennies next to a multi-megabyte sweep.
struct TensorPool::Core {
  explicit Core(std::size_t cap) : capacity_bytes(cap) {}

  std::size_t capacity_bytes;
  mutable std::mutex mu;
  /// Exact-size buckets: aggregation traffic is a few distinct model sizes,
  /// so exact matching recycles everything without fragmentation games.
  std::unordered_map<std::size_t, std::vector<std::unique_ptr<Tensor>>> free;
  TensorPoolStats stats;

  std::unique_ptr<Tensor> take(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    ++stats.acquires;
    auto it = free.find(n);
    if (it == free.end() || it->second.empty()) {
      ++stats.misses;
      return nullptr;
    }
    std::unique_ptr<Tensor> t = std::move(it->second.back());
    it->second.pop_back();
    ++stats.pool_hits;
    stats.bytes_pooled -= t->bytes();
    --stats.buffers_pooled;
    return t;
  }

  void park(std::unique_ptr<Tensor> t) {
    if (t == nullptr || t->empty()) return;
    std::lock_guard<std::mutex> lock(mu);
    if (stats.bytes_pooled + t->bytes() > capacity_bytes) {
      ++stats.dropped;
      return;  // unique_ptr frees it
    }
    ++stats.recycles;
    stats.bytes_pooled += t->bytes();
    stats.buffers_pooled++;
    if (stats.bytes_pooled > stats.peak_bytes_pooled) {
      stats.peak_bytes_pooled = stats.bytes_pooled;
    }
    free[t->size()].push_back(std::move(t));
  }
};

/// shared_ptr deleter: park the whole tensor back into the pool.
struct TensorPool::Recycler {
  std::shared_ptr<Core> core;
  void operator()(Tensor* t) const { core->park(std::unique_ptr<Tensor>(t)); }
};

TensorPool::TensorPool(std::size_t capacity_bytes)
    : core_(std::make_shared<Core>(capacity_bytes)) {}

std::shared_ptr<Tensor> TensorPool::wrap(std::unique_ptr<Tensor> t) {
  return std::shared_ptr<Tensor>(t.release(), Recycler{core_});
}

std::shared_ptr<Tensor> TensorPool::acquire(std::size_t n) {
  std::unique_ptr<Tensor> t = core_->take(n);
  if (t == nullptr) t = std::make_unique<Tensor>(n);
  return wrap(std::move(t));
}

std::shared_ptr<Tensor> TensorPool::acquire_zeroed(std::size_t n) {
  auto t = acquire(n);
  kernels::ops().fill(t->data(), 0.0f, n);
  return t;
}

std::shared_ptr<Tensor> TensorPool::adopt(Tensor&& t) {
  {
    std::lock_guard<std::mutex> lock(core_->mu);
    ++core_->stats.adopted;
  }
  return wrap(std::make_unique<Tensor>(std::move(t)));
}

TensorPoolStats TensorPool::stats() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  return core_->stats;
}

void TensorPool::reset_stats() {
  std::lock_guard<std::mutex> lock(core_->mu);
  const std::size_t bytes = core_->stats.bytes_pooled;
  const std::size_t buffers = core_->stats.buffers_pooled;
  core_->stats = TensorPoolStats{};
  core_->stats.bytes_pooled = bytes;
  core_->stats.peak_bytes_pooled = bytes;
  core_->stats.buffers_pooled = buffers;
}

void TensorPool::trim() {
  std::lock_guard<std::mutex> lock(core_->mu);
  core_->free.clear();
  core_->stats.bytes_pooled = 0;
  core_->stats.buffers_pooled = 0;
}

std::size_t TensorPool::capacity_bytes() const noexcept {
  return core_->capacity_bytes;
}

TensorPool& TensorPool::global() {
  static TensorPool pool;
  return pool;
}

}  // namespace lifl::ml
