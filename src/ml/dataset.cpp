#include "src/ml/dataset.hpp"

namespace lifl::ml {

FederatedDataGen::FederatedDataGen(const SyntheticTaskConfig& cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  class_means_.resize(cfg_.num_classes * cfg_.feature_dim);
  for (auto& v : class_means_) {
    v = static_cast<float>(rng_.normal(0.0, cfg_.class_mean_stddev));
  }
}

void FederatedDataGen::sample_from_class(int cls, sim::Rng& rng,
                                         std::vector<float>& out) {
  out.resize(cfg_.feature_dim);
  const float* mean =
      class_means_.data() + static_cast<std::size_t>(cls) * cfg_.feature_dim;
  for (std::size_t j = 0; j < cfg_.feature_dim; ++j) {
    out[j] = mean[j] + static_cast<float>(rng.normal(0.0, cfg_.sample_noise));
  }
}

Dataset FederatedDataGen::make_test_set(std::size_t samples) {
  Dataset d;
  d.feature_dim = cfg_.feature_dim;
  d.num_classes = cfg_.num_classes;
  std::vector<float> x;
  for (std::size_t i = 0; i < samples; ++i) {
    const int cls = static_cast<int>(rng_.uniform_index(cfg_.num_classes));
    sample_from_class(cls, rng_, x);
    d.push(x.data(), cls);
  }
  return d;
}

Dataset FederatedDataGen::make_client_shard(std::size_t samples, double alpha,
                                            sim::Rng& rng) {
  Dataset d;
  d.feature_dim = cfg_.feature_dim;
  d.num_classes = cfg_.num_classes;
  const std::vector<double> mixture = rng.dirichlet(alpha, cfg_.num_classes);
  // Cumulative distribution for class sampling.
  std::vector<double> cdf(mixture.size());
  double acc = 0.0;
  for (std::size_t c = 0; c < mixture.size(); ++c) {
    acc += mixture[c];
    cdf[c] = acc;
  }
  std::vector<float> x;
  for (std::size_t i = 0; i < samples; ++i) {
    const double u = rng.uniform() * acc;
    int cls = 0;
    while (cls + 1 < static_cast<int>(cdf.size()) && cdf[cls] < u) ++cls;
    sample_from_class(cls, rng, x);
    d.push(x.data(), cls);
  }
  return d;
}

std::vector<std::size_t> FederatedDataGen::class_histogram(const Dataset& d) {
  std::vector<std::size_t> h(d.num_classes, 0);
  for (int y : d.labels) h[static_cast<std::size_t>(y)]++;
  return h;
}

}  // namespace lifl::ml
