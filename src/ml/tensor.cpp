#include "src/ml/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace lifl::ml {

Tensor Tensor::randn(sim::Rng& rng, std::size_t n, float stddev) {
  Tensor t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.data_[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

void Tensor::axpy(float a, const Tensor& x) {
  if (x.size() != size()) {
    throw std::invalid_argument("Tensor::axpy: size mismatch");
  }
  float* __restrict p = data_.data();
  const float* __restrict q = x.data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) p[i] += a * q[i];
}

void Tensor::scale(float a) noexcept {
  for (auto& v : data_) v *= a;
}

void Tensor::fill(float value) noexcept {
  for (auto& v : data_) v = value;
}

double Tensor::dot(const Tensor& x) const {
  if (x.size() != size()) {
    throw std::invalid_argument("Tensor::dot: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * static_cast<double>(x.data_[i]);
  }
  return acc;
}

double Tensor::l2norm() const { return std::sqrt(dot(*this)); }

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Tensor::max_abs_diff: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace lifl::ml
