#include "src/ml/tensor.hpp"

#include <cmath>
#include <stdexcept>

#include "src/ml/kernels.hpp"

namespace lifl::ml {

Tensor Tensor::randn(sim::Rng& rng, std::size_t n, float stddev) {
  Tensor t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.data_[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

void Tensor::axpy(float a, const Tensor& x) {
  if (x.size() != size()) {
    throw std::invalid_argument("Tensor::axpy: size mismatch");
  }
  kernels::ops().axpy(data_.data(), a, x.data_.data(), data_.size());
}

void Tensor::axpby(float a, float b, const Tensor& x) {
  if (x.size() != size()) {
    throw std::invalid_argument("Tensor::axpby: size mismatch");
  }
  kernels::ops().axpby(data_.data(), a, b, x.data_.data(), data_.size());
}

void Tensor::scale(float a) noexcept {
  kernels::ops().scale(data_.data(), a, data_.size());
}

void Tensor::fill(float value) noexcept {
  kernels::ops().fill(data_.data(), value, data_.size());
}

double Tensor::dot(const Tensor& x) const {
  if (x.size() != size()) {
    throw std::invalid_argument("Tensor::dot: size mismatch");
  }
  return kernels::ops().dot(data_.data(), x.data_.data(), data_.size());
}

double Tensor::l2norm() const {
  return kernels::ops().nrm2(data_.data(), data_.size());
}

double Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Tensor::max_abs_diff: size mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(
        m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace lifl::ml
