#pragma once

#include <cstddef>
#include <string>

namespace lifl::ml::kernels {

/// Dispatch level of the fused BLAS-1 aggregation kernels.
///
/// Every level implements the same operation table with identical semantics;
/// they differ only in the instruction set the compiler is allowed to use
/// and in how aggressively the loops are unrolled:
///
///   kScalar  — straight-line reference loops, one accumulator. This is the
///              semantics oracle the unit tests compare everything against.
///   kWide    — `__restrict` multi-accumulator loops the compiler can
///              auto-vectorize at the build's baseline ISA (SSE2 on
///              vanilla x86-64 builds).
///   kAvx2    — the kWide loop bodies compiled for AVX2+FMA via function
///              multi-versioning (256-bit lanes).
///   kAvx512  — the same, compiled for AVX-512F (512-bit lanes).
///
/// The level is selected **once** at startup: the highest level the CPU
/// supports, unless the `LIFL_KERNEL` environment variable names one of
/// {scalar, wide, avx2, avx512} for A/B benching. `select()` can re-pin the
/// level at runtime (used by tests and by `bench/micro_agg_kernels`).
enum class Level : int { kScalar = 0, kWide = 1, kAvx2 = 2, kAvx512 = 3 };

/// The fused aggregation-kernel operation table.
///
/// These are the single-pass primitives the FedAvg hot path is built from.
/// The design rule: a fold of one model update must read the update once and
/// read-modify-write the accumulator once — never two sweeps (the seed's
/// `scale` + `axpy` pair), and never a hidden allocation.
struct Ops {
  /// p[i] = v.
  void (*fill)(float* p, float v, std::size_t n);
  /// p[i] *= a.
  void (*scale)(float* p, float a, std::size_t n);
  /// out[i] = a * x[i] — write-only "first fold" into a pooled buffer.
  void (*scale_into)(float* out, float a, const float* x, std::size_t n);
  /// acc[i] += a * x[i] — the fused weighted accumulate (one fold).
  void (*axpy)(float* acc, float a, const float* x, std::size_t n);
  /// acc[i] = a * acc[i] + b * x[i] — the seed's scale+axpy pair in ONE
  /// read-modify-write pass (streaming-mean form folds, server momentum).
  void (*axpby)(float* acc, float a, float b, const float* x, std::size_t n);
  /// acc[i] += a * x[i] + b * y[i] — dual fold: one RMW pass over the
  /// accumulator folds TWO updates, halving accumulator traffic.
  void (*axpy2)(float* acc, float a, const float* x, float b, const float* y,
                std::size_t n);
  /// out[i] = a * x[i] + b * y[i] — write-only dual "first fold".
  void (*axpby_into)(float* out, float a, const float* x, float b,
                     const float* y, std::size_t n);
  /// Dot product accumulated in double.
  double (*dot)(const float* x, const float* y, std::size_t n);
  /// Euclidean norm accumulated in double.
  double (*nrm2)(const float* x, std::size_t n);
};

/// The operation table of the currently selected level.
const Ops& ops() noexcept;

/// The operation table of a specific level (A/B benching). Falls back to
/// the highest *supported* level at or below `level`.
const Ops& ops_for(Level level) noexcept;

/// Currently selected dispatch level.
Level level() noexcept;

/// Highest level this CPU supports.
Level max_supported() noexcept;

/// Pin the dispatch level (clamped to what the CPU supports); returns the
/// level actually selected.
Level select(Level level) noexcept;

/// Parse a `LIFL_KERNEL` value; returns true and writes `out` on success.
bool parse_level(const std::string& name, Level& out) noexcept;

const char* level_name(Level level) noexcept;

}  // namespace lifl::ml::kernels
