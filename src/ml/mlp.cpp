#include "src/ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lifl::ml {

namespace {

/// Numerically stable in-place softmax.
void softmax(std::vector<float>& v) {
  float mx = v[0];
  for (float x : v) mx = std::max(mx, x);
  float sum = 0.0f;
  for (auto& x : v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : v) x /= sum;
}

}  // namespace

Mlp::Mlp(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output dims");
  }
  std::size_t off = 0;
  for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
    Layer layer;
    layer.in = dims_[l];
    layer.out = dims_[l + 1];
    layer.w_off = off;
    off += layer.in * layer.out;
    layer.b_off = off;
    off += layer.out;
    layers_.push_back(layer);
  }
  param_count_ = off;
  params_ = Tensor(param_count_);
}

void Mlp::init(sim::Rng& rng) {
  for (const Layer& l : layers_) {
    const float stddev = std::sqrt(2.0f / static_cast<float>(l.in));
    for (std::size_t i = 0; i < l.in * l.out; ++i) {
      params_[l.w_off + i] = static_cast<float>(rng.normal(0.0, stddev));
    }
    for (std::size_t i = 0; i < l.out; ++i) params_[l.b_off + i] = 0.0f;
  }
}

void Mlp::set_params(const Tensor& p) {
  if (p.size() != param_count_) {
    throw std::invalid_argument("Mlp::set_params: size mismatch");
  }
  params_ = p;
}

void Mlp::forward(const float* x, std::vector<std::vector<float>>& acts) const {
  acts.assign(layers_.size() + 1, {});
  acts[0].assign(x, x + dims_[0]);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& ly = layers_[l];
    auto& out = acts[l + 1];
    out.assign(ly.out, 0.0f);
    const float* w = params_.data() + ly.w_off;
    const float* b = params_.data() + ly.b_off;
    const auto& in = acts[l];
    for (std::size_t o = 0; o < ly.out; ++o) {
      float s = b[o];
      const float* wrow = w + o * ly.in;
      for (std::size_t i = 0; i < ly.in; ++i) s += wrow[i] * in[i];
      out[o] = s;
    }
    if (l + 1 < layers_.size()) {
      for (auto& v : out) v = std::max(v, 0.0f);  // ReLU on hidden layers
    }
  }
}

std::vector<float> Mlp::logits(const float* x) const {
  std::vector<std::vector<float>> acts;
  forward(x, acts);
  return acts.back();
}

int Mlp::predict(const float* x) const {
  const auto lg = logits(x);
  return static_cast<int>(std::max_element(lg.begin(), lg.end()) - lg.begin());
}

double Mlp::loss(const Dataset& data) const {
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto lg = logits(data.row(i));
    softmax(lg);
    const float p =
        std::max(lg[static_cast<std::size_t>(data.labels[i])], 1e-12f);
    total += -std::log(p);
  }
  return data.size() ? total / static_cast<double>(data.size()) : 0.0;
}

double Mlp::accuracy(const Dataset& data) const {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.row(i)) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double Mlp::gradient(const Dataset& data, const std::vector<std::size_t>& idx,
                     Tensor& grad) const {
  if (grad.size() != param_count_) grad = Tensor(param_count_);
  grad.fill(0.0f);
  if (idx.empty()) return 0.0;

  double total_loss = 0.0;
  std::vector<std::vector<float>> acts;
  std::vector<float> delta, next_delta;
  for (const std::size_t ex : idx) {
    forward(data.row(ex), acts);
    // Output delta: softmax - onehot.
    delta = acts.back();
    softmax(delta);
    const float p =
        std::max(delta[static_cast<std::size_t>(data.labels[ex])], 1e-12f);
    total_loss += -std::log(p);
    delta[static_cast<std::size_t>(data.labels[ex])] -= 1.0f;

    for (std::size_t l = layers_.size(); l-- > 0;) {
      const Layer& ly = layers_[l];
      const auto& in = acts[l];
      float* gw = grad.data() + ly.w_off;
      float* gb = grad.data() + ly.b_off;
      for (std::size_t o = 0; o < ly.out; ++o) {
        const float d = delta[o];
        gb[o] += d;
        float* gwrow = gw + o * ly.in;
        for (std::size_t i = 0; i < ly.in; ++i) gwrow[i] += d * in[i];
      }
      if (l > 0) {
        // Propagate delta through W and the ReLU derivative of acts[l].
        next_delta.assign(ly.in, 0.0f);
        const float* w = params_.data() + ly.w_off;
        for (std::size_t o = 0; o < ly.out; ++o) {
          const float d = delta[o];
          const float* wrow = w + o * ly.in;
          for (std::size_t i = 0; i < ly.in; ++i) next_delta[i] += d * wrow[i];
        }
        for (std::size_t i = 0; i < ly.in; ++i) {
          if (in[i] <= 0.0f) next_delta[i] = 0.0f;
        }
        delta.swap(next_delta);
      }
    }
  }
  grad.scale(1.0f / static_cast<float>(idx.size()));
  return total_loss / static_cast<double>(idx.size());
}

void Mlp::sgd_step(const Tensor& grad, float lr) {
  params_.axpy(-lr, grad);
}

}  // namespace lifl::ml
