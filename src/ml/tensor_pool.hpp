#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/ml/tensor.hpp"

namespace lifl::ml {

/// Usage statistics of a tensor pool.
struct TensorPoolStats {
  std::uint64_t acquires = 0;   ///< buffers requested
  std::uint64_t pool_hits = 0;  ///< requests served from the free list
  std::uint64_t misses = 0;     ///< requests that had to heap-allocate
  std::uint64_t adopted = 0;    ///< externally built tensors taken over
  std::uint64_t recycles = 0;   ///< buffers returned to the free list
  std::uint64_t dropped = 0;    ///< returns freed because the pool was full
  std::size_t bytes_pooled = 0;       ///< bytes currently parked, free
  std::size_t peak_bytes_pooled = 0;  ///< high-water mark of bytes_pooled
  std::size_t buffers_pooled = 0;     ///< buffers currently parked, free
};

/// Recycling allocator for `ml::Tensor` buffers — the physical counterpart
/// of the shared-memory store's allocate/recycle/destroy lifecycle (§4.1).
///
/// Model aggregation is a steady-state loop over a handful of equal-sized
/// parameter buffers: every fold needs an accumulator, every finalize an
/// output, every local-training step a gradient. Allocating them fresh makes
/// the FedAvg hot path allocator-bound (and, worse, page-fault-bound: a new
/// 100 MB buffer is faulted in on first touch). The pool keeps fully
/// released tensors on an exact-size free list, so steady-state rounds
/// perform **zero tensor heap allocations** — pool hits are counted in
/// `TensorPoolStats` and asserted by `tests/tensor_pool_test.cpp`.
///
/// Handles are `shared_ptr<Tensor>` whose deleter parks the whole tensor
/// (object + storage) back into the pool when the last reference drops.
/// This composes with the zero-copy object store: a pooled tensor `put`
/// into `shm::ObjectStore` recycles automatically when its final shm lease
/// is released, wherever in the pipeline that happens. The pool is
/// internally synchronized; handles may be dropped on any thread.
class TensorPool {
 public:
  /// Default free-list capacity: enough for the working set of a 25M-param
  /// round (accumulator + finalized output + in-flight update) with room
  /// to spare, small enough to not matter on laptops.
  static constexpr std::size_t kDefaultCapacityBytes = 1ull << 30;

  explicit TensorPool(std::size_t capacity_bytes = kDefaultCapacityBytes);

  /// Acquire an n-element tensor with **unspecified contents** (recycled
  /// buffers keep their old values; first write must be a pure store, e.g.
  /// `kernels::scale_into`).
  std::shared_ptr<Tensor> acquire(std::size_t n);

  /// Acquire an n-element tensor filled with zeros.
  std::shared_ptr<Tensor> acquire_zeroed(std::size_t n);

  /// Take ownership of an externally built tensor; its buffer recycles
  /// through this pool when the last reference drops.
  std::shared_ptr<Tensor> adopt(Tensor&& t);

  TensorPoolStats stats() const;
  void reset_stats();

  /// Free every parked buffer (keeps stats, minus the parked bytes).
  void trim();

  std::size_t capacity_bytes() const noexcept;

  /// The process-wide pool the FedAvg fold path draws from.
  static TensorPool& global();

 private:
  struct Core;
  struct Recycler;

  std::shared_ptr<Tensor> wrap(std::unique_ptr<Tensor> t);

  /// Shared with every handle's deleter, so handles may outlive the pool.
  std::shared_ptr<Core> core_;
};

}  // namespace lifl::ml
