#include "src/ml/train.hpp"

#include <numeric>

namespace lifl::ml {

LocalUpdate local_train(const Mlp& architecture, const Tensor& global_params,
                        const Dataset& shard, const LocalTrainConfig& cfg,
                        sim::Rng& rng) {
  Mlp model(architecture.dims());
  model.set_params(global_params);

  std::vector<std::size_t> order(shard.size());
  std::iota(order.begin(), order.end(), 0);

  Tensor grad(model.param_count());
  double last_loss = 0.0;
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, order.size());
      const std::vector<std::size_t> batch(order.begin() + start,
                                           order.begin() + end);
      last_loss = model.gradient(shard, batch, grad);
      model.sgd_step(grad, cfg.learning_rate);
    }
  }

  LocalUpdate out;
  out.params = model.params();
  out.sample_count = shard.size();
  out.train_loss = last_loss;
  return out;
}

}  // namespace lifl::ml
