#include "src/ml/train.hpp"

#include <numeric>

#include "src/ml/tensor_pool.hpp"

namespace lifl::ml {

LocalUpdate local_train(const Mlp& architecture, const Tensor& global_params,
                        const Dataset& shard, const LocalTrainConfig& cfg,
                        sim::Rng& rng) {
  Mlp model(architecture.dims());
  model.set_params(global_params);

  std::vector<std::size_t> order(shard.size());
  std::iota(order.begin(), order.end(), 0);

  // Pooled gradient scratch: every client of the round reuses one buffer
  // instead of allocating param_count floats per local_train call.
  // Contents may be stale — Mlp::gradient zero-fills before accumulating.
  auto grad = TensorPool::global().acquire(model.param_count());
  double last_loss = 0.0;
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, order.size());
      const std::vector<std::size_t> batch(order.begin() + start,
                                           order.begin() + end);
      last_loss = model.gradient(shard, batch, *grad);
      model.sgd_step(*grad, cfg.learning_rate);
    }
  }

  LocalUpdate out;
  // Hand the trained parameters over without a copy: the model is dying,
  // so its parameter buffer moves into a pooled handle the caller can
  // attach to a ModelUpdate directly (and that recycles after the fold).
  // Note the buffer itself was allocated by the Mlp constructor — the
  // training path pays one model allocation per call (counted as
  // `adopted`, not a pool miss); the zero-alloc guarantee covers the FOLD
  // path, and donating this buffer is what keeps that pool fed.
  out.params = TensorPool::global().adopt(std::move(model.mutable_params()));
  out.sample_count = shard.size();
  out.train_loss = last_loss;
  return out;
}

}  // namespace lifl::ml
