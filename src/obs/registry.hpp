#pragma once

// Typed metrics behind interned integer IDs: counters, gauges, and
// log2-bucketed histograms, each with one slot per emitting entity
// (node group, shard, campaign). Interning allocates and happens once
// at campaign setup; hot-path writes are two array indexes — no string
// hashing, no locks (each slot has a single writer, mirroring the
// per-shard trace rings).
//
// The paper-facing `dp::MetricsMap` (§4.3 eBPF mirror) is unchanged by
// this layer: it keeps its string keys for the agent/metrics-server
// path, while campaign-level telemetry lands here.

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lifl::obs {

inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

struct CounterId {
  std::uint32_t v = kInvalidId;
  bool valid() const { return v != kInvalidId; }
};
struct GaugeId {
  std::uint32_t v = kInvalidId;
  bool valid() const { return v != kInvalidId; }
};
struct HistId {
  std::uint32_t v = kInvalidId;
  bool valid() const { return v != kInvalidId; }
};

/// Log2-bucketed histogram: bucket i covers values with binary exponent
/// i - kExpOffset, i.e. ~2^-32 .. 2^31 (seconds, bytes, depths — any
/// positive double). Non-positive values land in bucket 0.
struct Hist {
  static constexpr int kBuckets = 64;
  static constexpr int kExpOffset = 32;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  static int bucket_of(double v) {
    if (!(v > 0.0)) return 0;
    int e = 0;
    std::frexp(v, &e);
    e += kExpOffset;
    if (e < 0) e = 0;
    if (e >= kBuckets) e = kBuckets - 1;
    return e;
  }

  void observe(double v) {
    ++buckets[static_cast<std::size_t>(bucket_of(v))];
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  void merge(const Hist& o) {
    for (int i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// The metrics registry. Intern every metric before the hot phase; the
/// write side then never allocates.
class Registry {
 public:
  explicit Registry(std::size_t slots = 0) : slots_(slots) {}

  std::size_t slots() const { return slots_; }

  CounterId counter(std::string name) {
    counter_names_.push_back(std::move(name));
    counters_.emplace_back(slots_, 0);
    return CounterId{static_cast<std::uint32_t>(counters_.size() - 1)};
  }
  GaugeId gauge(std::string name) {
    gauge_names_.push_back(std::move(name));
    gauges_.emplace_back(slots_, 0.0);
    return GaugeId{static_cast<std::uint32_t>(gauges_.size() - 1)};
  }
  HistId hist(std::string name) {
    hist_names_.push_back(std::move(name));
    hists_.emplace_back(slots_);
    return HistId{static_cast<std::uint32_t>(hists_.size() - 1)};
  }

  // ---- hot path (array indexing only) ----
  void add(std::size_t slot, CounterId id, std::uint64_t delta = 1) {
    counters_[id.v][slot] += delta;
  }
  void set(std::size_t slot, GaugeId id, double v) { gauges_[id.v][slot] = v; }
  void observe(std::size_t slot, HistId id, double v) {
    hists_[id.v][slot].observe(v);
  }

  // ---- read side ----
  std::uint64_t counter_value(std::size_t slot, CounterId id) const {
    return counters_[id.v][slot];
  }
  double gauge_value(std::size_t slot, GaugeId id) const {
    return gauges_[id.v][slot];
  }
  const Hist& hist_value(std::size_t slot, HistId id) const {
    return hists_[id.v][slot];
  }

  std::uint64_t counter_total(CounterId id) const {
    std::uint64_t t = 0;
    for (const auto v : counters_[id.v]) t += v;
    return t;
  }
  Hist hist_total(HistId id) const {
    Hist t;
    for (const auto& h : hists_[id.v]) t.merge(h);
    return t;
  }

  const std::string& counter_name(CounterId id) const {
    return counter_names_[id.v];
  }
  const std::string& gauge_name(GaugeId id) const { return gauge_names_[id.v]; }
  const std::string& hist_name(HistId id) const { return hist_names_[id.v]; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t hist_count() const { return hists_.size(); }

 private:
  std::size_t slots_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<std::vector<std::uint64_t>> counters_;  // [id][slot]
  std::vector<std::vector<double>> gauges_;           // [id][slot]
  std::vector<std::vector<Hist>> hists_;              // [id][slot]
};

/// POD observer handle: a (registry, slot, histogram) triple that lower
/// layers (update pool, data plane) can hold without knowing what a
/// campaign is. Null registry => the observe is a single branch.
struct HistSlot {
  Registry* reg = nullptr;
  std::uint32_t slot = 0;
  HistId id{};

  explicit operator bool() const { return reg != nullptr; }
  void observe(double v) const {
    if (reg != nullptr) reg->observe(slot, id, v);
  }
};

}  // namespace lifl::obs
