#include "src/obs/obs.hpp"

namespace lifl::obs {

Ids Ids::intern(Registry& r) {
  Ids ids;
  ids.spawns = r.counter("agg_spawns");
  ids.rearms = r.counter("agg_rearms");
  ids.claims = r.counter("agg_claims");
  ids.folds = r.counter("agg_folds");
  ids.seals = r.counter("agg_seals");
  ids.drains = r.counter("agg_drains");
  ids.crashes = r.counter("agg_crashes");
  ids.recoveries = r.counter("agg_recoveries");
  ids.refolds = r.counter("lease_refolds");
  ids.replans = r.counter("replans");
  ids.quorum_seals = r.counter("quorum_seals");
  ids.upload_retries = r.counter("upload_retries");
  ids.upload_disconnects = r.counter("upload_disconnects");
  ids.upload_resumes = r.counter("upload_resumes");
  ids.ckpt_marks = r.counter("ckpt_marks");
  ids.rollbacks = r.counter("sync_rollbacks");
  ids.skipped_windows = r.counter("sync_windows_skipped");
  ids.windows = r.counter("shard_windows");
  ids.empty_windows = r.counter("shard_empty_windows");
  ids.barrier_idle_secs = r.gauge("shard_barrier_idle_secs");
  ids.round_secs = r.hist("round_secs");
  ids.fold_secs = r.hist("fold_secs");
  ids.gateway_wait_secs = r.hist("gateway_wait_secs");
  ids.retry_depth = r.hist("upload_retry_depth");
  ids.upload_session_secs = r.hist("upload_session_secs");
  return ids;
}

CampaignObs::CampaignObs(const Config& cfg, std::size_t shards,
                         std::size_t groups)
    : cfg_(cfg),
      shards_(shards),
      groups_(groups),
      registry_(groups + shards + 1) {
  if (cfg_.trace) trace_.init(shards, cfg_.trace_ring_kb);
  ids_ = Ids::intern(registry_);
}

}  // namespace lifl::obs
