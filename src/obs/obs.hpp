#pragma once

// Campaign observability bundle: the interned metric id set, the
// per-emitter handle (`GroupObs`) threaded through subsystem configs,
// and the `CampaignObs` aggregate a campaign run owns.

#include <cstddef>
#include <cstdio>

#include "src/obs/registry.hpp"
#include "src/obs/trace.hpp"

namespace lifl::obs {

/// Observability knobs on a campaign config. All off by default: a
/// campaign with default `Config` allocates nothing and emits nothing.
struct Config {
  bool trace = false;    ///< record sim-time trace events
  bool metrics = false;  ///< typed registry + per-round JSONL rows
  std::size_t trace_ring_kb = 4096;  ///< per-shard ring cap (KiB)

  bool enabled() const { return trace || metrics; }
};

/// Every metric the campaign stack emits, interned once at setup.
struct Ids {
  // Counters (group slots unless noted).
  CounterId spawns, rearms, claims, folds, seals, drains;
  CounterId crashes, recoveries, refolds, replans, quorum_seals;
  CounterId upload_retries, upload_disconnects, upload_resumes;
  CounterId ckpt_marks;                   // campaign slot
  CounterId rollbacks, skipped_windows;   // campaign slot (sync modes)
  CounterId windows, empty_windows;       // shard slots
  // Gauges.
  GaugeId barrier_idle_secs;              // shard slots (wall, not sim)
  // Histograms.
  HistId round_secs;                      // campaign slot
  HistId fold_secs, gateway_wait_secs;    // group slots
  HistId retry_depth, upload_session_secs;

  static Ids intern(Registry& r);
};

/// Handle one emitting entity (a node group, or the campaign driver)
/// carries: its shard's trace ring, the registry, and its slot/track.
/// Copyable POD of pointers; a default-constructed handle is disabled
/// and every emit through it is a single branch.
struct GroupObs {
  ShardTrace* ring = nullptr;
  Registry* reg = nullptr;
  const Ids* ids = nullptr;
  std::uint16_t track = 0;
  std::uint32_t slot = 0;

  bool tracing() const { return ring != nullptr; }
  bool metering() const { return reg != nullptr; }

  void instant(double t, Ev kind, std::uint32_t a, std::uint64_t b = 0,
               std::uint8_t flags = 0) const {
    if (ring != nullptr) ring->instant(t, kind, track, a, b, flags);
  }
  void span(double t0, double t1, Ev kind, std::uint32_t a,
            std::uint64_t b = 0) const {
    if (ring != nullptr) ring->span(t0, t1, kind, track, a, b);
  }
  void count(CounterId id, std::uint64_t delta = 1) const {
    if (reg != nullptr) reg->add(slot, id, delta);
  }
  void observe(HistId id, double v) const {
    if (reg != nullptr) reg->observe(slot, id, v);
  }
  /// Pointer-to-member forms, safe to call on a disabled handle (the id
  /// set is only dereferenced once the registry is known non-null).
  void count_id(CounterId Ids::*m, std::uint64_t delta = 1) const {
    if (reg != nullptr && ids != nullptr) reg->add(slot, ids->*m, delta);
  }
  void observe_id(HistId Ids::*m, double v) const {
    if (reg != nullptr && ids != nullptr) reg->observe(slot, ids->*m, v);
  }
  HistSlot hist_slot(HistId id) const {
    if (reg == nullptr) return HistSlot{};
    return HistSlot{reg, slot, id};
  }
};

/// Everything a traced/metered campaign run accumulates. Owned by the
/// driver, surfaced on the campaign result; never checkpointed.
class CampaignObs {
 public:
  CampaignObs(const Config& cfg, std::size_t shards, std::size_t groups);

  const Config& config() const { return cfg_; }
  std::size_t shards() const { return shards_; }
  std::size_t groups() const { return groups_; }

  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  const Ids& ids() const { return ids_; }

  // Slot layout: groups first, then shards, campaign last.
  std::uint32_t group_slot(std::size_t g) const {
    return static_cast<std::uint32_t>(g);
  }
  std::uint32_t shard_slot(std::size_t s) const {
    return static_cast<std::uint32_t>(groups_ + s);
  }
  std::uint32_t campaign_slot() const {
    return static_cast<std::uint32_t>(groups_ + shards_);
  }

  /// Handle for node group `g`, which lives on shard `shard`.
  GroupObs group_obs(std::size_t g, std::size_t shard) {
    GroupObs o;
    o.ring = trace_.shard(shard);
    o.reg = cfg_.metrics ? &registry_ : nullptr;
    o.ids = &ids_;
    o.track = static_cast<std::uint16_t>(g);
    o.slot = group_slot(g);
    return o;
  }

  /// Handle for campaign-level events emitted from shard `shard`'s
  /// thread (checkpoint marks, async versions).
  GroupObs campaign_obs_on_shard(std::size_t shard) {
    GroupObs o;
    o.ring = trace_.shard(shard);
    o.reg = cfg_.metrics ? &registry_ : nullptr;
    o.ids = &ids_;
    o.track = kCampaignTrack;
    o.slot = campaign_slot();
    return o;
  }

  /// Handle for the coordinator thread (between-window emits only).
  GroupObs coordinator_obs() {
    GroupObs o;
    o.ring = trace_.coordinator();
    o.reg = cfg_.metrics ? &registry_ : nullptr;
    o.ids = &ids_;
    o.track = kCampaignTrack;
    o.slot = campaign_slot();
    return o;
  }

  /// Write the Perfetto-loadable trace JSON.
  void write_trace_json(std::FILE* out) const {
    trace_.write_chrome_json(out, groups_);
  }

 private:
  Config cfg_;
  std::size_t shards_;
  std::size_t groups_;
  TraceRecorder trace_;
  Registry registry_;
  Ids ids_;
};

}  // namespace lifl::obs
