#pragma once

// Passive sim-time tracing: per-shard bounded ring buffers of spans and
// instant events, merged deterministically and exported as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Layering: `src/obs` sits below everything (std-only) so any layer may
// emit into it. Passivity rules (docs/ARCHITECTURE.md):
//   - recording never schedules sim events or touches sim state — an
//     emit is a null-check plus a ring store;
//   - each ring has exactly one writer (the worker thread that owns the
//     shard; the coordinator ring is written only between windows), so
//     recording needs no synchronization and cannot perturb the
//     1-vs-K-shard event order;
//   - event payloads carry only sim-deterministic values (sim times,
//     counts, ids — never wall-clock readings), so the merged stream is
//     a pure function of (config, seed, shards);
//   - trace state is not checkpointed: a resumed campaign re-emits from
//     the cut it replays through.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace lifl::obs {

/// Trace event kinds. Span kinds carry a duration; instants do not.
enum class Ev : std::uint8_t {
  // Campaign track.
  kRound = 0,       ///< span: one sync round; a=round, b=samples
  kVersion,         ///< instant: async model version emitted; a=version
  kCkptMark,        ///< instant: checkpoint mark crossed; a=mark index
  kCkptEncode,      ///< instant: blob encoded at a cut; b=blob bytes
  // Group tracks (aggregator lifecycle).
  kAggSpawn,        ///< instant: cold-start construction; a=agg id
  kAggRearm,        ///< instant: warm-pool re-arm; a=agg id
  kAggClaim,        ///< instant: leaf claimed a batch; a=leaf id, b=claimed
  kAggFold,         ///< span: leaf batch fold; a=leaf id, b=updates
  kAggSeal,         ///< instant: middles sealed at target; b=claimed
  kAggDrain,        ///< instant: deadline/shrink drain; a=leaf id
  kAggCrash,        ///< instant: injected crash; a=agg id
  kAggRecover,      ///< instant: replacement armed; a=agg id, b=refolded
  kReplan,          ///< instant: group-local re-plan; b=new leaf target
  kQuorumSeal,      ///< instant: round sealed at quorum; b=abandoned
  // Group tracks (client upload lifecycle).
  kUploadSession,   ///< span: chunked upload session; a=client, b=drops
  kUploadRetry,     ///< instant: upload retry scheduled; a=client, b=attempt
  kUploadDisconnect,///< instant: mid-upload disconnect; a=client
  kUploadResume,    ///< instant: session resumed; a=client
  // Shard tracks.
  kWindow,          ///< instant: barrier window opened; a=window, b=drained
  // Campaign track (optimistic synchronization).
  kRollback,        ///< instant: speculation invalidated by a straggling
                    ///< cross-post; a=rollback index, b=receiving shard
  kCount_           ///< number of kinds (not an event)
};

/// Human-readable name of an event kind (stable across runs).
const char* ev_name(Ev kind);

/// Event flag bits. `kFlagEmpty` marks a barrier window in which the
/// emitting shard ran no events (shard tracks) or the mailbox exchange
/// drained nothing (campaign track).
inline constexpr std::uint8_t kFlagEmpty = 1u << 0;

/// Track ids: groups use their group id directly; shards and the
/// campaign use reserved ranges so one uint16 addresses every track.
inline constexpr std::uint16_t kShardTrackBase = 0x8000;
inline constexpr std::uint16_t kCampaignTrack = 0xFFFF;

inline std::uint16_t shard_track(std::size_t shard) {
  return static_cast<std::uint16_t>(kShardTrackBase + shard);
}

/// One recorded event. 32 bytes; a full ring is a flat array of these.
/// `dur < 0` marks an instant event.
struct TraceEvent {
  double t = 0.0;    ///< sim-time start (seconds)
  double dur = -1.0; ///< sim-time duration; < 0 => instant
  std::uint64_t b = 0;
  std::uint32_t a = 0;
  std::uint16_t track = 0;
  Ev kind = Ev::kRound;
  std::uint8_t flags = 0;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay 32 bytes");

/// Bounded single-writer ring of trace events. When full, the oldest
/// event is overwritten and `dropped_events()` counts the loss.
class ShardTrace {
 public:
  ShardTrace() = default;

  /// Size the ring (events). Capacity 0 disables the ring: emits become
  /// a branch and nothing is stored.
  void init(std::size_t capacity) {
    buf_.assign(capacity, TraceEvent{});
    head_ = size_ = 0;
    dropped_ = 0;
  }

  void emit(const TraceEvent& e) {
    if (buf_.empty()) return;
    buf_[head_] = e;
    if (++head_ == buf_.size()) head_ = 0;
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      ++dropped_;  // overwrote the oldest event
    }
  }

  void instant(double t, Ev kind, std::uint16_t track, std::uint32_t a,
               std::uint64_t b = 0, std::uint8_t flags = 0) {
    TraceEvent e;
    e.t = t;
    e.dur = -1.0;
    e.b = b;
    e.a = a;
    e.track = track;
    e.kind = kind;
    e.flags = flags;
    emit(e);
  }

  void span(double t0, double t1, Ev kind, std::uint16_t track,
            std::uint32_t a, std::uint64_t b = 0, std::uint8_t flags = 0) {
    TraceEvent e;
    e.t = t0;
    e.dur = t1 >= t0 ? t1 - t0 : 0.0;
    e.b = b;
    e.a = a;
    e.track = track;
    e.kind = kind;
    e.flags = flags;
    emit(e);
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t dropped_events() const { return dropped_; }

  /// Events in emission order (oldest surviving first).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start =
        size_ < buf_.size() ? 0 : head_;  // head_ is oldest when full
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(buf_[(start + i) % buf_.size()]);
    }
    return out;
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Scoped span: records [construction sim-time, destruction sim-time]
/// on a ring. The clock is a raw function pointer + context so this
/// layer stays below `src/sim`; build one with `clock_of(sim)`.
struct SpanClock {
  double (*now)(const void*) = nullptr;
  const void* ctx = nullptr;
};

template <class Clock>
SpanClock clock_of(const Clock& c) {
  SpanClock k;
  k.now = [](const void* p) { return static_cast<const Clock*>(p)->now(); };
  k.ctx = &c;
  return k;
}

#if defined(LIFL_OBS_DISABLED)
class ScopedSpan {
 public:
  template <class... Args>
  explicit ScopedSpan(Args&&...) {}
};
#else
class ScopedSpan {
 public:
  ScopedSpan(ShardTrace* ring, SpanClock clock, Ev kind, std::uint16_t track,
             std::uint32_t a, std::uint64_t b = 0)
      : ring_(ring), clock_(clock), kind_(kind), track_(track), a_(a), b_(b) {
    if (ring_ != nullptr && clock_.now != nullptr) {
      t0_ = clock_.now(clock_.ctx);
    } else {
      ring_ = nullptr;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (ring_ != nullptr) {
      ring_->span(t0_, clock_.now(clock_.ctx), kind_, track_, a_, b_);
    }
  }

 private:
  ShardTrace* ring_ = nullptr;
  SpanClock clock_;
  Ev kind_;
  std::uint16_t track_;
  std::uint32_t a_;
  std::uint64_t b_;
  double t0_ = 0.0;
};
#endif

/// Per-shard rings plus one coordinator ring (index = shard count),
/// written only between windows when the workers are parked.
class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// `ring_kb` caps each ring's footprint; events are 32 bytes.
  void init(std::size_t shards, std::size_t ring_kb) {
    shards_ = shards;
    rings_.assign(shards + 1, ShardTrace{});
    const std::size_t cap = ring_kb * 1024 / sizeof(TraceEvent);
    for (auto& r : rings_) r.init(cap);
  }

  bool enabled() const { return !rings_.empty(); }
  std::size_t shards() const { return shards_; }

  ShardTrace* shard(std::size_t s) {
    return rings_.empty() ? nullptr : &rings_[s];
  }
  ShardTrace* coordinator() {
    return rings_.empty() ? nullptr : &rings_[shards_];
  }

  std::uint64_t dropped_events() const {
    std::uint64_t total = 0;
    for (const auto& r : rings_) total += r.dropped_events();
    return total;
  }

  std::uint64_t recorded_events() const {
    std::uint64_t total = 0;
    for (const auto& r : rings_) total += r.size();
    return total;
  }

  /// All surviving events merged into one deterministic order: sorted by
  /// (t, track, kind, a, b, dur). Same config + seed + shards => the
  /// identical sequence, run after run.
  std::vector<TraceEvent> merged() const;

  /// Chrome trace-event JSON (Perfetto-loadable): one named track per
  /// node group, per shard, and for the campaign. `groups` names the
  /// group tracks.
  void write_chrome_json(std::FILE* out, std::size_t groups) const;

 private:
  std::size_t shards_ = 0;
  std::vector<ShardTrace> rings_;
};

}  // namespace lifl::obs
