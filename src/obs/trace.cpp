#include "src/obs/trace.hpp"

#include <algorithm>
#include <string>
#include <tuple>

namespace lifl::obs {

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::kRound:
      return "round";
    case Ev::kVersion:
      return "version";
    case Ev::kCkptMark:
      return "ckpt_mark";
    case Ev::kCkptEncode:
      return "ckpt_encode";
    case Ev::kAggSpawn:
      return "agg_spawn";
    case Ev::kAggRearm:
      return "agg_rearm";
    case Ev::kAggClaim:
      return "agg_claim";
    case Ev::kAggFold:
      return "agg_fold";
    case Ev::kAggSeal:
      return "agg_seal";
    case Ev::kAggDrain:
      return "agg_drain";
    case Ev::kAggCrash:
      return "agg_crash";
    case Ev::kAggRecover:
      return "agg_recover";
    case Ev::kReplan:
      return "replan";
    case Ev::kQuorumSeal:
      return "quorum_seal";
    case Ev::kUploadSession:
      return "upload_session";
    case Ev::kUploadRetry:
      return "upload_retry";
    case Ev::kUploadDisconnect:
      return "upload_disconnect";
    case Ev::kUploadResume:
      return "upload_resume";
    case Ev::kWindow:
      return "window";
    case Ev::kRollback:
      return "rollback";
    case Ev::kCount_:
      break;
  }
  return "unknown";
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  std::vector<TraceEvent> all;
  all.reserve(recorded_events());
  for (const auto& r : rings_) {
    const auto evs = r.events();
    all.insert(all.end(), evs.begin(), evs.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return std::make_tuple(x.t, x.track, static_cast<int>(x.kind),
                                     x.a, x.b, x.dur) <
                     std::make_tuple(y.t, y.track, static_cast<int>(y.kind),
                                     y.a, y.b, y.dur);
            });
  return all;
}

namespace {

// pid groups tracks into Perfetto "processes"; tid is the track lane.
constexpr int kCampaignPid = 0;
constexpr int kGroupPid = 1;
constexpr int kShardPid = 2;

void track_ids(std::uint16_t track, int* pid, int* tid) {
  if (track == kCampaignTrack) {
    *pid = kCampaignPid;
    *tid = 0;
  } else if (track >= kShardTrackBase) {
    *pid = kShardPid;
    *tid = track - kShardTrackBase;
  } else {
    *pid = kGroupPid;
    *tid = track;
  }
}

void write_name_meta(std::FILE* out, const char* what, int pid, int tid,
                     const std::string& name) {
  std::fprintf(out,
               "    {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, "
               "\"tid\": %d, \"args\": {\"name\": \"%s\"}},\n",
               what, pid, tid, name.c_str());
}

}  // namespace

void TraceRecorder::write_chrome_json(std::FILE* out,
                                      std::size_t groups) const {
  const auto all = merged();
  std::fprintf(out, "{\n  \"displayTimeUnit\": \"ms\",\n");
  std::fprintf(out, "  \"traceEvents\": [\n");

  // Track naming metadata: one process per category, one thread (lane)
  // per campaign / group / shard track.
  write_name_meta(out, "process_name", kCampaignPid, 0, "campaign");
  write_name_meta(out, "thread_name", kCampaignPid, 0, "rounds");
  write_name_meta(out, "process_name", kGroupPid, 0, "node groups");
  for (std::size_t g = 0; g < groups; ++g) {
    write_name_meta(out, "thread_name", kGroupPid, static_cast<int>(g),
                    "group " + std::to_string(g));
  }
  write_name_meta(out, "process_name", kShardPid, 0, "shards");
  for (std::size_t s = 0; s < shards_; ++s) {
    write_name_meta(out, "thread_name", kShardPid, static_cast<int>(s),
                    "shard " + std::to_string(s));
  }

  for (std::size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& e = all[i];
    int pid = 0, tid = 0;
    track_ids(e.track, &pid, &tid);
    const double ts_us = e.t * 1e6;
    if (e.dur >= 0.0) {
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                   "\"dur\": %.3f, \"pid\": %d, \"tid\": %d, "
                   "\"args\": {\"a\": %lu, \"b\": %llu, \"flags\": %u}}",
                   ev_name(e.kind), ts_us, e.dur * 1e6, pid, tid,
                   static_cast<unsigned long>(e.a),
                   static_cast<unsigned long long>(e.b), e.flags);
    } else {
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"ph\": \"i\", \"ts\": %.3f, "
                   "\"pid\": %d, \"tid\": %d, \"s\": \"t\", "
                   "\"args\": {\"a\": %lu, \"b\": %llu, \"flags\": %u}}",
                   ev_name(e.kind), ts_us, pid, tid,
                   static_cast<unsigned long>(e.a),
                   static_cast<unsigned long long>(e.b), e.flags);
    }
    std::fprintf(out, "%s\n", i + 1 < all.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"otherData\": {\"dropped_events\": %llu}\n}\n",
               static_cast<unsigned long long>(dropped_events()));
}

}  // namespace lifl::obs
