#include "src/control/selector.hpp"

#include <algorithm>
#include <cmath>

namespace lifl::ctrl {

Selector::Cohort Selector::select(const wl::ClientPopulation& population,
                                  std::uint32_t goal, sim::Rng& rng) const {
  Cohort cohort;
  cohort.goal = goal;
  const auto want = static_cast<std::size_t>(
      std::ceil(static_cast<double>(goal) * (1.0 + cfg_.overprovision)));
  cohort.members = population.sample(std::min(want, population.size()), rng);
  return cohort;
}

void Selector::track(fl::ParticipantId client,
                     std::function<void()> on_failure) {
  Tracked t;
  t.last_heartbeat = sim_.now();
  t.on_failure = std::move(on_failure);
  t.alive = std::make_shared<bool>(true);
  arm_check(client, t.alive);
  tracked_[client] = std::move(t);
}

void Selector::arm_check(fl::ParticipantId client,
                         std::shared_ptr<bool> alive) {
  sim_.schedule_after(cfg_.heartbeat_timeout_secs,
                      [this, client, alive = std::move(alive)]() {
    if (!*alive) return;
    auto it = tracked_.find(client);
    if (it == tracked_.end()) return;
    const double silent_for = sim_.now() - it->second.last_heartbeat;
    if (silent_for + 1e-9 >= cfg_.heartbeat_timeout_secs) {
      // Heartbeats lapsed: declare the client failed and notify (the
      // coordinator substitutes a spare from the over-provisioned cohort).
      ++failures_;
      auto on_failure = std::move(it->second.on_failure);
      *it->second.alive = false;
      tracked_.erase(it);
      if (on_failure) on_failure();
      return;
    }
    // Heard from it recently; re-arm relative to the last heartbeat.
    arm_check(client, it->second.alive);
  });
}

void Selector::heartbeat(fl::ParticipantId client) {
  auto it = tracked_.find(client);
  if (it == tracked_.end()) return;
  it->second.last_heartbeat = sim_.now();
}

void Selector::report_done(fl::ParticipantId client) {
  auto it = tracked_.find(client);
  if (it == tracked_.end()) return;
  *it->second.alive = false;
  tracked_.erase(it);
}

}  // namespace lifl::ctrl
