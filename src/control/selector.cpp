#include "src/control/selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lifl::ctrl {

Selector::Selector(sim::Simulator& sim, Config cfg)
    : sim_(sim), cfg_(cfg) {
  if (!std::isfinite(cfg.overprovision) || cfg.overprovision < 0.0) {
    throw std::invalid_argument(
        "Selector: overprovision must be finite and >= 0");
  }
  if (!std::isfinite(cfg.heartbeat_period_secs) ||
      cfg.heartbeat_period_secs <= 0.0) {
    throw std::invalid_argument(
        "Selector: heartbeat_period_secs must be finite and > 0");
  }
  if (!std::isfinite(cfg.heartbeat_timeout_secs) ||
      cfg.heartbeat_timeout_secs < cfg.heartbeat_period_secs) {
    throw std::invalid_argument(
        "Selector: heartbeat_timeout_secs must be finite and >= "
        "heartbeat_period_secs (a timeout shorter than the heartbeat period "
        "declares every client dead)");
  }
  strategy_ = make_selection_strategy(cfg.policy, cfg.selection, /*group=*/0);
}

Selector::Cohort Selector::select(const wl::ClientPopulation& population,
                                  std::uint32_t goal, sim::Rng& rng) {
  Cohort cohort;
  cohort.goal = goal;
  const auto want = std::min(
      static_cast<std::size_t>(
          std::ceil(static_cast<double>(goal) * (1.0 + cfg_.overprovision))),
      population.size());
  if (cfg_.policy == SelectorPolicy::kRandom) {
    // Legacy oracle path: Floyd's uniform k-subset from the caller's rng,
    // bitwise identical to the pre-strategy selector.
    cohort.members = population.sample(want, rng);
    return cohort;
  }
  // Weighted distinct draw from the strategy's stateless hash family:
  // collisions re-draw with an incremented probe, so the cohort is a pure
  // function of (strategy state, round counter).
  const std::uint64_t round = round_++;
  std::unordered_set<std::size_t> seen;
  seen.reserve(want * 2);
  cohort.members.reserve(want);
  for (std::uint64_t seq = 0; seq < want; ++seq) {
    for (std::uint64_t probe = 0;; ++probe) {
      const std::size_t idx = strategy_->pick(population, round, seq, probe);
      if (seen.insert(idx).second) {
        cohort.members.push_back(idx);
        break;
      }
      if (probe > 64 + 2 * want) {
        // Weighted mass is too concentrated to find another distinct
        // member (tiny tier); accept a shorter cohort.
        seq = want;
        break;
      }
    }
  }
  return cohort;
}

void Selector::track(fl::ParticipantId client,
                     std::function<void()> on_failure) {
  track_impl(client, DeviceTier_None(), /*has_tier=*/false,
             std::move(on_failure));
}

void Selector::track(fl::ParticipantId client, wl::DeviceTier tier,
                     std::function<void()> on_failure) {
  track_impl(client, tier, /*has_tier=*/true, std::move(on_failure));
}

void Selector::track_impl(fl::ParticipantId client, wl::DeviceTier tier,
                          bool has_tier, std::function<void()> on_failure) {
  Tracked t;
  t.last_heartbeat = sim_.now();
  t.started = sim_.now();
  t.tier = tier;
  t.has_tier = has_tier;
  t.on_failure = std::move(on_failure);
  t.alive = std::make_shared<bool>(true);
  arm_check(client, t.alive);
  tracked_[client] = std::move(t);
}

void Selector::arm_check(fl::ParticipantId client,
                         std::shared_ptr<bool> alive) {
  sim_.schedule_after(cfg_.heartbeat_timeout_secs,
                      [this, client, alive = std::move(alive)]() {
    if (!*alive) return;
    auto it = tracked_.find(client);
    if (it == tracked_.end()) return;
    const double silent_for = sim_.now() - it->second.last_heartbeat;
    if (silent_for + 1e-9 >= cfg_.heartbeat_timeout_secs) {
      // Heartbeats lapsed: declare the client failed and notify (the
      // coordinator substitutes a spare from the over-provisioned cohort).
      ++failures_;
      if (it->second.has_tier) {
        strategy_->report(it->second.tier, sim_.now() - it->second.started,
                          /*success=*/false);
      }
      auto on_failure = std::move(it->second.on_failure);
      *it->second.alive = false;
      tracked_.erase(it);
      if (on_failure) on_failure();
      return;
    }
    // Heard from it recently; re-arm relative to the last heartbeat.
    arm_check(client, it->second.alive);
  });
}

void Selector::heartbeat(fl::ParticipantId client) {
  auto it = tracked_.find(client);
  if (it == tracked_.end()) return;
  it->second.last_heartbeat = sim_.now();
}

void Selector::report_done(fl::ParticipantId client) {
  auto it = tracked_.find(client);
  if (it == tracked_.end()) return;
  if (it->second.has_tier) {
    strategy_->report(it->second.tier, sim_.now() - it->second.started,
                      /*success=*/true);
  }
  *it->second.alive = false;
  tracked_.erase(it);
}

}  // namespace lifl::ctrl
