#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/calibration.hpp"
#include "src/sim/time.hpp"

namespace lifl::ctrl {

/// Planned aggregation hierarchy for one re-plan cycle (§5.2).
///
/// LIFL plans a two-level k-ary tree *within* each node — a "central" middle
/// aggregator fed by ceil(Q_i / I) leaf aggregators — and a single top
/// aggregator on a designated node that folds the per-node intermediate
/// updates into the global model. Keeping all leaf→middle traffic on-node
/// means each active node ships exactly one intermediate update across the
/// network per cycle.
struct HierarchyPlan {
  struct NodePlan {
    sim::NodeId node = 0;
    std::uint32_t expected_updates = 0;  ///< Q_i this plan was sized for
    std::uint32_t leaves = 0;            ///< parallel leaf aggregators
    bool middle = false;                 ///< node-local middle aggregator
  };

  std::vector<NodePlan> per_node;   ///< only nodes with work appear
  sim::NodeId top_node = 0;         ///< hosts the top aggregator
  std::uint32_t updates_per_leaf =
      sim::calib::kUpdatesPerLeaf;  ///< I of §5.2

  /// Aggregators this plan instantiates (leaves + middles + one top).
  std::uint32_t total_aggregators() const noexcept;

  /// Nodes with at least one aggregator (including the top node).
  std::size_t nodes_used() const noexcept;

  /// Number of intermediate updates the top aggregator must fold.
  std::uint32_t top_fanin() const noexcept;
};

/// The hierarchy-aware planner of LIFL's autoscaler (§5.2): sizes each
/// node's aggregation tree to the (smoothed) pending-update estimate so
/// every level runs at maximal parallelism, minimizing per-level completion
/// time and hence the aggregation completion time.
class HierarchyPlanner {
 public:
  explicit HierarchyPlanner(
      std::uint32_t updates_per_leaf = sim::calib::kUpdatesPerLeaf);

  /// Plan for `pending_per_node[i]` expected updates on node i; nodes with
  /// zero pending get no aggregators. The top aggregator lands on
  /// `top_node` regardless of its pending count.
  HierarchyPlan plan(const std::vector<double>& pending_per_node,
                     sim::NodeId top_node) const;

  std::uint32_t updates_per_leaf() const noexcept { return updates_per_leaf_; }

 private:
  std::uint32_t updates_per_leaf_;
};

}  // namespace lifl::ctrl
