#pragma once

#include <stdexcept>

namespace lifl::ctrl {

/// Exponentially weighted moving average, the smoother LIFL applies to
/// per-node queue-length estimates before re-planning the hierarchy (§5.2):
///     Q_t = alpha * Q_{t-1} + (1 - alpha) * q_t
/// alpha = 0.7 in the paper ("yielding the best results in our
/// experiments"); a larger alpha damps short-term spikes harder, preventing
/// excess aggregator allocation.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (alpha < 0.0 || alpha > 1.0) {
      throw std::invalid_argument("Ewma: alpha must be in [0, 1]");
    }
  }

  /// Fold in an observation and return the new smoothed value. The first
  /// observation initializes the average directly.
  double observe(double sample) noexcept {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * value_ + (1.0 - alpha_) * sample;
    }
    return value_;
  }

  double value() const noexcept { return value_; }
  bool initialized() const noexcept { return initialized_; }
  double alpha() const noexcept { return alpha_; }

  void reset() noexcept {
    value_ = 0.0;
    initialized_ = false;
  }

  /// Restore a checkpointed slot bit-exactly (the smoothed value is a
  /// floating-point recurrence; replaying observations would not recover
  /// the identical bits).
  void restore(double value, bool initialized) noexcept {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace lifl::ctrl
