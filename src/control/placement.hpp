#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.hpp"

namespace lifl::ctrl {

/// Load-balancing / bin-packing policy for mapping model updates (clients)
/// to worker nodes (§5.1).
enum class PlacementPolicy : std::uint8_t {
  kBestFit,   ///< LIFL: tightest fit — concentrates load on fewest nodes
  kFirstFit,  ///< search-complexity baseline, not locality-aware
  kWorstFit,  ///< most residual capacity — Knative "least connection" spread
};

std::string to_string(PlacementPolicy p);

/// Capacity view of one worker node used by the placement engine.
///
/// `residual()` implements §5.1: RC_{i,t} = MC_i − k_{i,t} · E_{i,t}, the
/// maximum service capacity minus the load implied by the current arrival
/// rate and per-update execution time.
struct NodeCapacity {
  sim::NodeId node = 0;
  double max_capacity = 0.0;   ///< MC_i (updates aggregatable simultaneously)
  double arrival_rate = 0.0;   ///< k_{i,t} (updates/sec directed at the node)
  double exec_time = 0.0;      ///< E_{i,t} (secs to aggregate one update)

  double load() const noexcept { return arrival_rate * exec_time; }
  double residual() const noexcept { return max_capacity - load(); }
};

/// Result of placing a batch of unit demands.
struct PlacementResult {
  std::vector<sim::NodeId> assignment;  ///< node per demand, in input order
  std::vector<double> load_after;       ///< final load per input node
  std::size_t nodes_used = 0;           ///< distinct nodes receiving demand
  std::size_t overflow = 0;             ///< demands placed beyond capacity
};

/// The placement engine (§5.1): treats load balancing as bin-packing of
/// model-update demands into worker nodes under residual-capacity
/// constraints.
///
/// BestFit concentrates demand onto the fewest nodes — maximizing shm reuse
/// and minimizing inter-node transfers, since a pair of nodes exchanges at
/// most one intermediate update per round. WorstFit reproduces Knative's
/// least-connection spreading; FirstFit minimizes search cost only.
class PlacementEngine {
 public:
  explicit PlacementEngine(PlacementPolicy policy) : policy_(policy) {}

  PlacementPolicy policy() const noexcept { return policy_; }

  /// Place `demands` (service-demand units, typically 1.0 per model update)
  /// onto `nodes`. Demands that fit nowhere go to the node with the most
  /// residual capacity and are counted in `overflow`.
  PlacementResult place(const std::vector<double>& demands,
                        std::vector<NodeCapacity> nodes) const;

  /// Convenience: place `count` unit demands.
  PlacementResult place_units(std::size_t count,
                              std::vector<NodeCapacity> nodes) const;

 private:
  PlacementPolicy policy_;
};

}  // namespace lifl::ctrl
