#include "src/control/hierarchy.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace lifl::ctrl {

std::uint32_t HierarchyPlan::total_aggregators() const noexcept {
  std::uint32_t n = 1;  // the top
  for (const auto& p : per_node) {
    n += p.leaves + (p.middle ? 1 : 0);
  }
  return n;
}

std::size_t HierarchyPlan::nodes_used() const noexcept {
  std::unordered_set<sim::NodeId> used{top_node};
  for (const auto& p : per_node) {
    if (p.leaves > 0 || p.middle) used.insert(p.node);
  }
  return used.size();
}

std::uint32_t HierarchyPlan::top_fanin() const noexcept {
  std::uint32_t n = 0;
  for (const auto& p : per_node) {
    // A node with a middle ships one intermediate update; a node whose only
    // aggregator is a single leaf ships that leaf's output directly.
    if (p.middle || p.leaves > 0) ++n;
  }
  return n;
}

HierarchyPlanner::HierarchyPlanner(std::uint32_t updates_per_leaf)
    : updates_per_leaf_(updates_per_leaf) {
  if (updates_per_leaf == 0) {
    throw std::invalid_argument("HierarchyPlanner: updates_per_leaf == 0");
  }
}

HierarchyPlan HierarchyPlanner::plan(
    const std::vector<double>& pending_per_node, sim::NodeId top_node) const {
  HierarchyPlan out;
  out.top_node = top_node;
  out.updates_per_leaf = updates_per_leaf_;
  for (std::size_t i = 0; i < pending_per_node.size(); ++i) {
    const double q = pending_per_node[i];
    if (q <= 0) continue;
    HierarchyPlan::NodePlan p;
    p.node = static_cast<sim::NodeId>(i);
    p.expected_updates = static_cast<std::uint32_t>(std::llround(std::ceil(q)));
    p.leaves = static_cast<std::uint32_t>(
        std::ceil(q / static_cast<double>(updates_per_leaf_)));
    // A middle is worthwhile only when there are multiple leaves to fold;
    // a lone leaf sends its aggregate straight to the top.
    p.middle = p.leaves > 1;
    out.per_node.push_back(p);
  }
  return out;
}

}  // namespace lifl::ctrl
