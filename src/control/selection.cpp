#include "src/control/selection.hpp"

#include <algorithm>
#include <cmath>

namespace lifl::ctrl {

bool parse_selector_policy(std::string_view s, SelectorPolicy& out) noexcept {
  if (s == "random") {
    out = SelectorPolicy::kRandom;
  } else if (s == "scored") {
    out = SelectorPolicy::kScored;
  } else if (s == "cluster" || s == "cluster-scan") {
    out = SelectorPolicy::kClusterScan;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Uniform-random selection — reproduces the legacy arrival-chain oracle
/// bitwise on the primary draw (`probe` = 0), so existing campaigns keep
/// their exact client schedules; redraws fall back to the hash family.
class RandomStrategy final : public SelectionStrategy {
 public:
  RandomStrategy(Config cfg, std::uint64_t group)
      : SelectionStrategy(cfg), group_(group) {}

  SelectorPolicy policy() const noexcept override {
    return SelectorPolicy::kRandom;
  }

  std::size_t pick(const wl::ClientPopulation& pop, std::uint64_t round,
                   std::uint64_t seq, std::uint64_t probe) const override {
    (void)round;
    if (probe == 0) {
      // Legacy oracle: Knuth multiplicative hash over the upload sequence.
      return static_cast<std::size_t>((seq * 2654435761ull) % pop.size());
    }
    sim::Rng r(key(0x7a11ull, group_, seq, probe));
    return static_cast<std::size_t>(r.uniform_index(pop.size()));
  }

  void report(wl::DeviceTier, double, bool) override {}

 private:
  std::uint64_t group_;
};

/// Shared base of the telemetry-driven strategies: per-tier EWMAs of
/// completion duration and success, and a two-draw weighted pick (tier by
/// CDF walk, then uniform within the tier's contiguous index range).
class TierScoredStrategy : public SelectionStrategy {
 public:
  TierScoredStrategy(Config cfg, std::uint64_t group, std::uint64_t tag)
      : SelectionStrategy(cfg),
        group_(group),
        tag_(tag),
        dur_{Ewma(cfg.alpha), Ewma(cfg.alpha), Ewma(cfg.alpha)},
        succ_{Ewma(cfg.alpha), Ewma(cfg.alpha), Ewma(cfg.alpha)} {}

  std::size_t pick(const wl::ClientPopulation& pop, std::uint64_t round,
                   std::uint64_t seq, std::uint64_t probe) const override {
    const std::array<double, wl::kTierCount> w = weights(pop);
    double sum = 0.0;
    for (double x : w) sum += x;
    sim::Rng r(key(tag_, group_ ^ (round << 20), seq, probe));
    // Tier by CDF walk over the weights, then uniform within the tier.
    wl::DeviceTier tier = wl::DeviceTier::kMidRange;
    double u = r.uniform() * sum;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      u -= w[t];
      if (u < 0.0 || t + 1 == wl::kTierCount) {
        tier = static_cast<wl::DeviceTier>(t);
        if (w[t] > 0.0) break;  // else keep walking to a populated tier
      }
    }
    const std::size_t n = pop.tier_count(tier);
    if (n == 0) return static_cast<std::size_t>(r.uniform_index(pop.size()));
    return pop.tier_begin(tier) + static_cast<std::size_t>(r.uniform_index(n));
  }

  void report(wl::DeviceTier tier, double secs, bool success) override {
    const auto t = static_cast<std::size_t>(tier);
    if (success) dur_[t].observe(secs);
    succ_[t].observe(success ? 1.0 : 0.0);
  }

  State state() const override {
    State s;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      s.scores[t] = {dur_[t].value(), dur_[t].initialized(),
                     succ_[t].value(), succ_[t].initialized()};
    }
    return s;
  }

  void restore(const State& s) override {
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      dur_[t].restore(s.scores[t].dur, s.scores[t].dur_init);
      succ_[t].restore(s.scores[t].succ, s.scores[t].succ_init);
    }
  }

 protected:
  /// Per-tier selection weights; a zero-sum result must not escape (the
  /// implementations fall back to population shares).
  virtual std::array<double, wl::kTierCount> weights(
      const wl::ClientPopulation& pop) const = 0;

  std::array<double, wl::kTierCount> shares(
      const wl::ClientPopulation& pop) const {
    std::array<double, wl::kTierCount> s{};
    const double n = static_cast<double>(std::max<std::size_t>(1, pop.size()));
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      s[t] = static_cast<double>(
                 pop.tier_count(static_cast<wl::DeviceTier>(t))) /
             n;
    }
    return s;
  }

  std::uint64_t group_;
  std::uint64_t tag_;
  std::array<Ewma, wl::kTierCount> dur_;
  std::array<Ewma, wl::kTierCount> succ_;
};

/// Apodotiko-style scored selection: tiers are weighted by their success
/// rate per unit duration relative to the best tier, raised to
/// `score_gamma`; tiers below `exclude_below` of the best are cut out
/// entirely. Unobserved tiers keep their neutral population share, so the
/// first round explores and later rounds exploit.
class ScoredStrategy final : public TierScoredStrategy {
 public:
  ScoredStrategy(Config cfg, std::uint64_t group)
      : TierScoredStrategy(cfg, group, 0x5c0dull) {}

  SelectorPolicy policy() const noexcept override {
    return SelectorPolicy::kScored;
  }

 protected:
  std::array<double, wl::kTierCount> weights(
      const wl::ClientPopulation& pop) const override {
    const auto share = shares(pop);
    std::array<double, wl::kTierCount> raw{};
    std::array<bool, wl::kTierCount> scored{};
    double best = 0.0;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      if (!dur_[t].initialized() || !succ_[t].initialized()) continue;
      raw[t] = succ_[t].value() / std::max(1e-9, dur_[t].value());
      scored[t] = true;
      best = std::max(best, raw[t]);
    }
    std::array<double, wl::kTierCount> w{};
    double sum = 0.0;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      if (share[t] <= 0.0) continue;
      if (!scored[t] || best <= 0.0) {
        w[t] = share[t];
      } else {
        const double rel = raw[t] / best;
        w[t] = rel < cfg_.exclude_below
                   ? 0.0
                   : share[t] * std::pow(rel, cfg_.score_gamma);
      }
      sum += w[t];
    }
    if (sum <= 0.0) return share;
    return w;
  }
};

/// FedLesScan-style cluster-scan: tiers whose duration EWMA exceeds
/// `straggler_factor` x the fastest observed tier form the straggler
/// cluster and keep only a `scan_weight` trickle (enough to notice when
/// they recover); everything else keeps its population share.
class ClusterScanStrategy final : public TierScoredStrategy {
 public:
  ClusterScanStrategy(Config cfg, std::uint64_t group)
      : TierScoredStrategy(cfg, group, 0xc1a5ull) {}

  SelectorPolicy policy() const noexcept override {
    return SelectorPolicy::kClusterScan;
  }

 protected:
  std::array<double, wl::kTierCount> weights(
      const wl::ClientPopulation& pop) const override {
    const auto share = shares(pop);
    double min_dur = 0.0;
    bool any = false;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      if (!dur_[t].initialized()) continue;
      min_dur = any ? std::min(min_dur, dur_[t].value()) : dur_[t].value();
      any = true;
    }
    std::array<double, wl::kTierCount> w{};
    double sum = 0.0;
    for (std::size_t t = 0; t < wl::kTierCount; ++t) {
      if (share[t] <= 0.0) continue;
      const bool straggler = any && dur_[t].initialized() &&
                             dur_[t].value() > cfg_.straggler_factor * min_dur;
      w[t] = straggler ? cfg_.scan_weight * share[t] : share[t];
      sum += w[t];
    }
    if (sum <= 0.0) return share;
    return w;
  }
};

}  // namespace

std::unique_ptr<SelectionStrategy> make_selection_strategy(
    SelectorPolicy policy, SelectionStrategy::Config cfg,
    std::uint64_t group) {
  switch (policy) {
    case SelectorPolicy::kRandom:
      return std::make_unique<RandomStrategy>(cfg, group);
    case SelectorPolicy::kScored:
      return std::make_unique<ScoredStrategy>(cfg, group);
    case SelectorPolicy::kClusterScan:
      return std::make_unique<ClusterScanStrategy>(cfg, group);
  }
  return std::make_unique<RandomStrategy>(cfg, group);
}

}  // namespace lifl::ctrl
