#include "src/control/metrics_server.hpp"

#include <stdexcept>

namespace lifl::ctrl {

MetricsServer::MetricsServer(std::size_t node_count, double ewma_alpha) {
  per_node_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    per_node_.emplace_back(ewma_alpha);
  }
}

void MetricsServer::report(sim::NodeId node, double arrivals,
                           double window_secs, double exec_sum,
                           double exec_count) {
  if (window_secs <= 0) {
    throw std::invalid_argument("MetricsServer::report: window_secs <= 0");
  }
  NodeState& s = per_node_.at(node);
  const double rate = arrivals / window_secs;
  s.rate.observe(rate);
  s.exec_total += exec_sum;
  s.exec_count += exec_count;
  // Q = k * E with the freshly smoothed rate.
  const double e =
      s.exec_count > 0 ? s.exec_total / s.exec_count : 0.0;
  s.queue.observe(s.rate.value() * e);
}

double MetricsServer::arrival_rate(sim::NodeId node) const {
  return per_node_.at(node).rate.value();
}

double MetricsServer::exec_time(sim::NodeId node, double default_exec) const {
  const NodeState& s = per_node_.at(node);
  return s.exec_count > 0 ? s.exec_total / s.exec_count : default_exec;
}

double MetricsServer::queue_estimate(sim::NodeId node) const {
  return per_node_.at(node).queue.value();
}

void MetricsServer::observe_queue(sim::NodeId node, double queue_len) {
  per_node_.at(node).queue.observe(queue_len);
}

}  // namespace lifl::ctrl
