#include "src/control/campaign_planner.hpp"

#include <algorithm>
#include <stdexcept>

namespace lifl::ctrl {

CampaignPlanner::CampaignPlanner(Config cfg, std::size_t groups)
    : cfg_(cfg), leaf_planner_(cfg.updates_per_leaf) {
  if (groups == 0) {
    throw std::invalid_argument("CampaignPlanner: groups must be >= 1");
  }
  if (cfg_.middle_fanin == 0) {
    throw std::invalid_argument("CampaignPlanner: middle_fanin must be >= 1");
  }
  if (cfg_.min_leaves == 0 || cfg_.min_leaves > cfg_.max_leaves) {
    throw std::invalid_argument(
        "CampaignPlanner: need 1 <= min_leaves <= max_leaves");
  }
  groups_.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    groups_.emplace_back(cfg_.ewma_alpha);
  }
}

std::uint32_t CampaignPlanner::leaves_for(double pending) const {
  if (pending <= 0.0) return 0;
  // The §5.2 rule, reused verbatim: ceil(Q / I) leaves for Q pending.
  const HierarchyPlan p = leaf_planner_.plan({pending}, 0);
  const std::uint32_t raw = p.per_node.empty() ? 0 : p.per_node.front().leaves;
  return std::clamp(raw, cfg_.min_leaves, cfg_.max_leaves);
}

std::uint32_t CampaignPlanner::middles_for(
    std::uint32_t leaves) const noexcept {
  if (leaves <= cfg_.middle_fanin) return 0;
  return (leaves + cfg_.middle_fanin - 1) / cfg_.middle_fanin;
}

CampaignPlan CampaignPlanner::plan_round(
    const std::vector<double>& expected_per_group) {
  if (expected_per_group.size() != groups_.size()) {
    throw std::invalid_argument("plan_round: group count mismatch");
  }
  CampaignPlan plan;
  plan.groups.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    GroupState& st = groups_[g];
    // Carried estimate when the group was ever observed; the raw round
    // target otherwise (a first round plans for maximal parallelism).
    const double q =
        st.est.initialized()
            ? std::min(st.est.value(), expected_per_group[g])
            : expected_per_group[g];
    GroupPlan& gp = plan.groups[g];
    gp.expected_updates = q;
    // A group with a round target always gets at least min_leaves (a zero
    // smoothed estimate after an idle tail must not stall the next round).
    gp.leaves = expected_per_group[g] > 0.0
                    ? std::max(cfg_.min_leaves, leaves_for(q))
                    : 0;
    gp.middles = middles_for(gp.leaves);
    st.leaves = gp.leaves;
  }
  return plan;
}

std::optional<std::uint32_t> CampaignPlanner::replan(std::size_t g,
                                                     double backlog) {
  GroupState& st = groups_.at(g);
  const double smoothed = st.est.observe(backlog);
  const std::uint32_t desired = leaves_for(smoothed);
  const double cur = static_cast<double>(st.leaves);
  // Hysteresis band: ignore drift that stays within +-h of the current
  // size, so arrival noise does not churn the tree (Fig. 8 stability).
  const double lo = cur * (1.0 - cfg_.hysteresis);
  const double hi = cur * (1.0 + cfg_.hysteresis);
  const double d = static_cast<double>(desired);
  if (st.leaves > 0 && d >= lo && d <= hi) return std::nullopt;
  if (desired == st.leaves) return std::nullopt;
  st.leaves = desired;
  ++st.replans;
  return desired;
}

void CampaignPlanner::set_current(std::size_t g, std::uint32_t leaves) {
  groups_.at(g).leaves = leaves;
}

}  // namespace lifl::ctrl
