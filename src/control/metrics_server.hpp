#pragma once

#include <vector>

#include "src/control/ewma.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/time.hpp"

namespace lifl::ctrl {

/// Cluster-wide metrics server (Fig. 3): aggregates the per-node samples
/// that LIFL agents drain from their eBPF metrics maps, and exposes the
/// smoothed signals the autoscaler and placement engine consume —
/// arrival rate k_{i,t}, mean execution time E_{i,t}, and the EWMA-smoothed
/// queue estimate Q_{i,t} = k_{i,t} · E_{i,t} (§5.1-§5.2).
class MetricsServer {
 public:
  explicit MetricsServer(std::size_t node_count,
                         double ewma_alpha = sim::calib::kEwmaAlpha);

  /// One agent poll window for `node`: `arrivals` updates arrived during
  /// `window_secs`; the sidecar observed `exec_sum` seconds over
  /// `exec_count` aggregation executions.
  void report(sim::NodeId node, double arrivals, double window_secs,
              double exec_sum, double exec_count);

  /// Smoothed arrival rate k_{i,t} (updates/sec).
  double arrival_rate(sim::NodeId node) const;

  /// Mean per-update aggregation execution time E_{i,t} (secs); falls back
  /// to `default_exec` until a node has observed executions.
  double exec_time(sim::NodeId node, double default_exec = 1.0) const;

  /// EWMA-smoothed queue-length estimate Q_{i,t}.
  double queue_estimate(sim::NodeId node) const;

  /// Directly observe a queue-length sample (used when the caller knows the
  /// actual queue, as in the Fig. 8 experiments).
  void observe_queue(sim::NodeId node, double queue_len);

  std::size_t node_count() const noexcept { return per_node_.size(); }

 private:
  struct NodeState {
    Ewma rate;
    Ewma queue;
    double exec_total = 0.0;
    double exec_count = 0.0;
    explicit NodeState(double alpha) : rate(alpha), queue(alpha) {}
  };

  std::vector<NodeState> per_node_;
};

}  // namespace lifl::ctrl
