#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/control/metrics_server.hpp"
#include "src/dataplane/dataplane.hpp"
#include "src/fl/aggregator_runtime.hpp"
#include "src/sim/calibration.hpp"

namespace lifl::ctrl {

/// The per-node LIFL agent (Fig. 3): manages the lifecycle of aggregator
/// instances on its worker node, polls the eBPF metrics map into the
/// cluster metrics server, vertically scales the gateway, and services
/// checkpoint requests — all on instruction from the LIFL control plane.
class NodeAgent {
 public:
  struct Config {
    sim::NodeId node = 0;
    /// Cold-start profile of new instances on this platform.
    double cold_start_secs = sim::calib::kLiflColdStartSecs;
    double cold_start_cycles = sim::calib::kLiflColdStartCycles;
    /// Reactive control planes begin the cold start at first update
    /// (cascading); proactive ones at spawn time.
    fl::ColdStartTrigger cold_trigger = fl::ColdStartTrigger::kOnStart;
    /// Bill a container sidecar's always-on draw per live instance (SL).
    bool container_sidecar = false;
    /// Metrics-map poll period (§4.3).
    double metrics_poll_secs = sim::calib::kMetricsPollSecs;
  };

  NodeAgent(dp::DataPlane& plane, MetricsServer* metrics, Config cfg);
  ~NodeAgent();
  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  /// Create an aggregator instance for `cfg`, reusing an idle warm instance
  /// when `allow_reuse` (§5.3: zero start-up, stateless role conversion).
  /// Returns the runtime; it is started (cold start per agent config unless
  /// reused or `warm` is set, e.g. for always-on serverful deployments).
  fl::AggregatorRuntime& spawn(fl::AggregatorRuntime::Config cfg,
                               bool allow_reuse, bool warm = false);

  /// Park a finished (done + idle) instance into the warm pool for reuse.
  void park(fl::AggregatorRuntime& rt);

  /// Terminate one live instance.
  void terminate(fl::AggregatorRuntime& rt);

  /// Terminate every instance (live and warm).
  void terminate_all();

  /// Terminate warm-pool instances only (scale-down of spare capacity).
  void terminate_warm();

  /// Begin the periodic metrics-map poll loop feeding the metrics server.
  void start_metrics_loop();
  void stop_metrics_loop();

  /// Vertical gateway scaling (§4.2): size gateway cores to the arrival
  /// rate so ingest never becomes the data-plane bottleneck.
  void autoscale_gateway(double arrivals_per_sec, double secs_per_update);

  // ------------------------------------------------------------- stats
  std::uint32_t created() const noexcept { return created_; }
  std::uint32_t reused() const noexcept { return reused_; }
  std::size_t live() const noexcept { return live_.size(); }
  std::size_t warm() const noexcept { return warm_.size(); }
  sim::NodeId node() const noexcept { return cfg_.node; }
  const Config& config() const noexcept { return cfg_; }

 private:
  dp::DataPlane& plane_;
  MetricsServer* metrics_;  ///< may be null (no control-plane feedback)
  Config cfg_;

  struct Instance {
    std::unique_ptr<fl::AggregatorRuntime> runtime;
    dp::IdleHandle sidecar_draw = 0;  ///< container sidecar draw, if any
  };

  Instance make_instance(fl::AggregatorRuntime::Config cfg, bool warm);
  void destroy(Instance& inst);

  std::vector<Instance> live_;
  std::deque<Instance> warm_;
  std::uint32_t created_ = 0;
  std::uint32_t reused_ = 0;
  bool polling_ = false;
  std::shared_ptr<bool> poll_alive_;
  std::shared_ptr<std::function<void()>> tick_;
};

}  // namespace lifl::ctrl
