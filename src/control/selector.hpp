#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/control/selection.hpp"
#include "src/fl/model_update.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/population.hpp"

namespace lifl::ctrl {

/// The selector of Fig. 2 (Bonawitz et al.): per round it (1) draws a
/// diverse cohort of clients from the available population, over-
/// provisioned so stragglers and failures do not stall the round (§3), and
/// (2) acts as the gateway-side mediator that tracks each selected client's
/// keep-alive heartbeats, replacing clients whose heartbeats lapse.
class Selector {
 public:
  struct Config {
    /// Extra clients selected beyond the aggregation goal, as a fraction
    /// (0.3 => select 130% of the goal; Bonawitz et al. report 130%).
    double overprovision = 0.3;
    /// A client is declared failed after this many seconds without a
    /// heartbeat.
    double heartbeat_timeout_secs = 5.0;
    /// Heartbeat period clients are expected to honor.
    double heartbeat_period_secs = 1.0;
    /// Selection strategy; `kRandom` reproduces the legacy uniform draw
    /// bitwise. Scored / cluster-scan weight the cohort by the per-tier
    /// telemetry fed back through `report_done` and heartbeat failures.
    SelectorPolicy policy = SelectorPolicy::kRandom;
    SelectionStrategy::Config selection;
  };

  struct Cohort {
    std::vector<std::size_t> members;  ///< indices into the population
    std::uint32_t goal = 0;            ///< updates the round actually needs
  };

  /// Throws `std::invalid_argument` on a nonsensical config (negative
  /// overprovision, non-positive heartbeat period, timeout shorter than
  /// the period).
  Selector(sim::Simulator& sim, Config cfg);

  /// Draw a cohort for a round with aggregation goal `goal`: goal x
  /// (1 + overprovision) distinct clients (bounded by the population).
  /// Random policy uses the caller's `rng` (Floyd's k-subset, bitwise
  /// compatible with the pre-strategy selector); scored policies draw
  /// deterministically from the strategy's stateless hash family and
  /// advance an internal round counter.
  Cohort select(const wl::ClientPopulation& population, std::uint32_t goal,
                sim::Rng& rng);

  // ---------------------------------------------------------- heartbeats
  /// Start tracking a selected client. `on_failure` fires (once) if its
  /// heartbeats lapse before `report_done` is called.
  void track(fl::ParticipantId client, std::function<void()> on_failure);

  /// Tier-aware overload: completion / failure feeds the selection
  /// strategy's per-tier telemetry.
  void track(fl::ParticipantId client, wl::DeviceTier tier,
             std::function<void()> on_failure);

  /// Record a heartbeat from a tracked client.
  void heartbeat(fl::ParticipantId client);

  /// The client delivered its update (or was deselected): stop tracking.
  void report_done(fl::ParticipantId client);

  /// Clients currently tracked.
  std::size_t tracked() const noexcept { return tracked_.size(); }
  /// Failures detected so far.
  std::uint32_t failures_detected() const noexcept { return failures_; }

  const Config& config() const noexcept { return cfg_; }

  /// The live strategy (never null); exposes the learned per-tier scores.
  SelectionStrategy& strategy() noexcept { return *strategy_; }

 private:
  struct Tracked {
    double last_heartbeat = 0.0;
    double started = 0.0;  ///< selection time, for duration telemetry
    wl::DeviceTier tier = DeviceTier_None();
    bool has_tier = false;
    std::function<void()> on_failure;
    std::shared_ptr<bool> alive;
  };

  static constexpr wl::DeviceTier DeviceTier_None() noexcept {
    return wl::DeviceTier::kMidRange;
  }

  void arm_check(fl::ParticipantId client, std::shared_ptr<bool> alive);
  void track_impl(fl::ParticipantId client, wl::DeviceTier tier,
                  bool has_tier, std::function<void()> on_failure);

  sim::Simulator& sim_;
  Config cfg_;
  std::unique_ptr<SelectionStrategy> strategy_;
  std::uint64_t round_ = 0;  ///< rounds drawn so far (scored policies)
  std::unordered_map<fl::ParticipantId, Tracked> tracked_;
  std::uint32_t failures_ = 0;
};

}  // namespace lifl::ctrl
