#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/workload/population.hpp"

namespace lifl::ctrl {

/// The selector of Fig. 2 (Bonawitz et al.): per round it (1) draws a
/// diverse cohort of clients from the available population, over-
/// provisioned so stragglers and failures do not stall the round (§3), and
/// (2) acts as the gateway-side mediator that tracks each selected client's
/// keep-alive heartbeats, replacing clients whose heartbeats lapse.
class Selector {
 public:
  struct Config {
    /// Extra clients selected beyond the aggregation goal, as a fraction
    /// (0.3 => select 130% of the goal; Bonawitz et al. report 130%).
    double overprovision = 0.3;
    /// A client is declared failed after this many seconds without a
    /// heartbeat.
    double heartbeat_timeout_secs = 5.0;
    /// Heartbeat period clients are expected to honor.
    double heartbeat_period_secs = 1.0;
  };

  struct Cohort {
    std::vector<std::size_t> members;  ///< indices into the population
    std::uint32_t goal = 0;            ///< updates the round actually needs
  };

  Selector(sim::Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg) {}

  /// Draw a cohort for a round with aggregation goal `goal`: goal x
  /// (1 + overprovision) distinct clients (bounded by the population).
  Cohort select(const wl::ClientPopulation& population, std::uint32_t goal,
                sim::Rng& rng) const;

  // ---------------------------------------------------------- heartbeats
  /// Start tracking a selected client. `on_failure` fires (once) if its
  /// heartbeats lapse before `report_done` is called.
  void track(fl::ParticipantId client, std::function<void()> on_failure);

  /// Record a heartbeat from a tracked client.
  void heartbeat(fl::ParticipantId client);

  /// The client delivered its update (or was deselected): stop tracking.
  void report_done(fl::ParticipantId client);

  /// Clients currently tracked.
  std::size_t tracked() const noexcept { return tracked_.size(); }
  /// Failures detected so far.
  std::uint32_t failures_detected() const noexcept { return failures_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  struct Tracked {
    double last_heartbeat = 0.0;
    std::function<void()> on_failure;
    std::shared_ptr<bool> alive;
  };

  void arm_check(fl::ParticipantId client, std::shared_ptr<bool> alive);

  sim::Simulator& sim_;
  Config cfg_;
  std::unordered_map<fl::ParticipantId, Tracked> tracked_;
  std::uint32_t failures_ = 0;
};

}  // namespace lifl::ctrl
