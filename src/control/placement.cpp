#include "src/control/placement.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace lifl::ctrl {

std::string to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kBestFit: return "best_fit";
    case PlacementPolicy::kFirstFit: return "first_fit";
    case PlacementPolicy::kWorstFit: return "worst_fit";
  }
  return "unknown";
}

PlacementResult PlacementEngine::place(const std::vector<double>& demands,
                                       std::vector<NodeCapacity> nodes) const {
  if (nodes.empty()) {
    throw std::invalid_argument("PlacementEngine::place: no nodes");
  }
  PlacementResult result;
  result.assignment.reserve(demands.size());
  // Track running residuals; nodes keep input order for FirstFit stability.
  std::vector<double> residual(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    residual[i] = nodes[i].residual();
  }

  std::unordered_set<sim::NodeId> used;
  for (const double d : demands) {
    std::size_t chosen = nodes.size();
    switch (policy_) {
      case PlacementPolicy::kBestFit: {
        // Tightest fit: the fitting node whose residual is smallest.
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (residual[i] >= d && residual[i] < best) {
            best = residual[i];
            chosen = i;
          }
        }
        break;
      }
      case PlacementPolicy::kFirstFit: {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (residual[i] >= d) {
            chosen = i;
            break;
          }
        }
        break;
      }
      case PlacementPolicy::kWorstFit: {
        // Most residual capacity ("least connection" spreading).
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (residual[i] >= d && residual[i] > best) {
            best = residual[i];
            chosen = i;
          }
        }
        break;
      }
    }
    if (chosen == nodes.size()) {
      // Nothing fits: overload the node with the most residual capacity.
      chosen = static_cast<std::size_t>(
          std::max_element(residual.begin(), residual.end()) -
          residual.begin());
      ++result.overflow;
    }
    residual[chosen] -= d;
    used.insert(nodes[chosen].node);
    result.assignment.push_back(nodes[chosen].node);
  }

  result.load_after.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    result.load_after[i] = nodes[i].residual() - residual[i] + nodes[i].load();
  }
  result.nodes_used = used.size();
  return result;
}

PlacementResult PlacementEngine::place_units(
    std::size_t count, std::vector<NodeCapacity> nodes) const {
  return place(std::vector<double>(count, 1.0), std::move(nodes));
}

}  // namespace lifl::ctrl
