#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/time.hpp"

namespace lifl::ctrl {

/// Offline estimator of a worker node's maximum service capacity MC_i
/// (Appendix E).
///
/// The paper's procedure: "We incrementally increase the arrival rate k_i
/// to node i. Let k'_i and E'_i denote the arrival rate and average
/// execution time at the point we observe a significant increase in E_i.
/// This indicates that node i is becoming overloaded and we estimate MC_i
/// as k'_i x E'_i."
///
/// The estimator reproduces that experiment against a simulated node: it
/// drives Poisson arrivals of aggregation jobs into the node's aggregation
/// slots at increasing rates, measures the average per-update completion
/// time (service + queueing — what the eBPF sidecar of §4.3 would report),
/// and stops at the knee.
class CapacityEstimator {
 public:
  struct Config {
    /// Parallel aggregation slots of the node (cores available to
    /// aggregator runtimes).
    std::uint32_t slots = 8;
    /// Uncontended per-update execution time (Recv + Agg), seconds.
    double service_secs = 0.5;
    /// First probed arrival rate (updates/sec).
    double start_rate = 0.5;
    /// Multiplicative rate increment per probe. Fine-grained so the knee is
    /// caught near saturation onset rather than deep into overload.
    double rate_step = 1.15;
    /// Knee detector: stop when E exceeds this multiple of the baseline.
    double knee_ratio = 1.25;
    /// Samples collected per probe.
    std::uint32_t samples_per_probe = 600;
    /// Safety cap on probes.
    std::uint32_t max_probes = 64;
    std::uint64_t seed = 1;
  };

  struct Probe {
    double arrival_rate = 0.0;  ///< k probed (updates/sec)
    double exec_secs = 0.0;     ///< measured average E at this rate
  };

  struct Result {
    double max_capacity = 0.0;  ///< MC_i = k' x E'
    double knee_rate = 0.0;     ///< k'
    double knee_exec_secs = 0.0;///< E'
    bool knee_found = false;    ///< false: rate cap reached first
    std::vector<Probe> curve;   ///< the measured E(k) curve
  };

  /// Run the Appendix-E experiment and return the capacity estimate.
  static Result estimate(const Config& cfg);
};

}  // namespace lifl::ctrl
