#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/control/ewma.hpp"
#include "src/control/hierarchy.hpp"
#include "src/sim/calibration.hpp"

namespace lifl::ctrl {

/// Planned aggregation tree of one node group for one (re-)plan cycle:
/// `leaves` parallel leaf aggregators pulling client updates off the group
/// pool in batches of `updates_per_leaf`, optionally folded through
/// `middles` middle aggregators, into the group's single relay aggregator
/// whose output is the group's one cross-group message per round.
struct GroupPlan {
  std::uint32_t leaves = 0;
  std::uint32_t middles = 0;
  double expected_updates = 0.0;  ///< the estimate this plan was sized for
};

/// Whole-campaign plan: one GroupPlan per node group. The top aggregator's
/// goal is not part of the plan — it counts *folded client updates*
/// (GoalKind::kFoldedUpdates), so it is fixed by the round target and
/// invariant under every per-group tree shape the planner may choose.
struct CampaignPlan {
  std::vector<GroupPlan> groups;

  std::uint32_t total_leaves() const noexcept {
    std::uint32_t n = 0;
    for (const auto& g : groups) n += g.leaves;
    return n;
  }
};

/// The streaming-hierarchy planner (§5.2 scaled out): extends the per-node
/// `HierarchyPlanner` across node groups into multi-level trees
/// (leaf → middle → group relay → top), sized per group from an
/// EWMA-smoothed pending-update estimate, with a hysteresis band so
/// mid-round re-planning fires on real drift rather than arrival noise.
/// Synchronous rounds feed the estimate from the round's pending backlog;
/// asynchronous campaigns feed it from *buffer pressure* (queued updates
/// plus arrival flux into the leaf buffers) — the sizing rule is the same,
/// only the signal source differs, so one planner serves both modes.
///
/// Thread/shard discipline: `plan_round` runs on the coordinator while the
/// shards are idle (a shard barrier); `replan` is *group-local* — it
/// touches only group `g`'s cache-line-separated slot, so each group's
/// shard may call it mid-round without synchronization, and the resulting
/// decisions are deterministic for any shard count.
class CampaignPlanner {
 public:
  struct Config {
    std::uint32_t updates_per_leaf = sim::calib::kUpdatesPerLeaf;  ///< I
    /// Leaf batches folded per middle; also the growth threshold for the
    /// middle level (no middles until a group runs more leaves than this).
    std::uint32_t middle_fanin = 8;
    std::uint32_t min_leaves = 1;   ///< floor while a group has work
    std::uint32_t max_leaves = 1u << 16;
    double ewma_alpha = sim::calib::kEwmaAlpha;  ///< §5.2 smoothing
    /// Fractional dead band around the current leaf count: a re-plan fires
    /// only when the desired count leaves [cur*(1-h), cur*(1+h)].
    double hysteresis = 0.25;
  };

  CampaignPlanner(Config cfg, std::size_t groups);

  /// Leaves needed for `pending` expected updates: the §5.2 sizing
  /// (ceil(Q / I) via HierarchyPlanner), clamped to [min, max] when there
  /// is work and 0 when there is none.
  std::uint32_t leaves_for(double pending) const;

  /// Middles for a leaf set: 0 until the relay fan-in exceeds the middle
  /// fan-in, then ceil(leaves / middle_fanin).
  std::uint32_t middles_for(std::uint32_t leaves) const noexcept;

  /// Round-boundary plan (coordinator, shards idle): size each group from
  /// its smoothed estimate when one exists (carried across rounds), else
  /// from `expected_per_group` (the round target — maximal parallelism for
  /// a first round with no history).
  CampaignPlan plan_round(const std::vector<double>& expected_per_group);

  /// Mid-round, group-local re-plan check: fold `backlog` (queued + fresh
  /// arrivals observed since the last sample) into group `g`'s EWMA and
  /// return the new leaf target if it drifted outside the hysteresis band
  /// of the current size — std::nullopt means keep the current tree.
  std::optional<std::uint32_t> replan(std::size_t g, double backlog);

  /// Record that the runtime applied a leaf count for group `g` (e.g. the
  /// claim limit cut the activation short of the plan).
  void set_current(std::size_t g, std::uint32_t leaves);

  /// Restore a checkpointed group slot bit-exactly (EWMA value, its
  /// initialized flag, the applied leaf count and the re-plan counter) —
  /// the carried estimate is what sizes the next round's initial tree, so
  /// a resumed campaign must plan from the identical bits.
  void restore_group(std::size_t g, double estimate, bool initialized,
                     std::uint32_t leaves, std::uint64_t replans) {
    GroupState& s = groups_.at(g);
    s.est.restore(estimate, initialized);
    s.leaves = leaves;
    s.replans = replans;
  }

  std::uint32_t current(std::size_t g) const { return groups_.at(g).leaves; }
  double estimate(std::size_t g) const { return groups_.at(g).est.value(); }
  bool estimate_initialized(std::size_t g) const {
    return groups_.at(g).est.initialized();
  }
  /// Re-plans fired for group `g` so far (group-local counter).
  std::uint64_t replans(std::size_t g) const {
    return groups_.at(g).replans;
  }

  // ---- server-version vector (asynchronous campaigns) ------------------
  // In kAsync mode there is no round barrier to carry the global model
  // version, so the planner's cache-line-separated group slots carry it
  // instead: the version-producing top broadcasts each bump to every
  // group's shard (a cross-shard post, so the write lands in that group's
  // event order), and the group's arrivals/leaves read their own slot —
  // group-local on both sides, hence race-free and shard-count invariant.
  // Re-planning and warm-leaf reuse keep working against the same slots,
  // without any round barrier.

  /// Record group `g`'s view of the global model version (runs on `g`'s
  /// shard, or on the coordinator between phases).
  void set_version(std::size_t g, std::uint32_t v) {
    groups_.at(g).version = v;
  }
  std::uint32_t version(std::size_t g) const {
    return groups_.at(g).version;
  }
  /// Stable pointer to group `g`'s version slot — wired into leaf configs
  /// as `AggregatorRuntime::Config::live_version` for staleness-weighted
  /// folding.
  const std::uint32_t* version_ptr(std::size_t g) const {
    return &groups_.at(g).version;
  }
  std::size_t group_count() const noexcept { return groups_.size(); }
  const Config& config() const noexcept { return cfg_; }

 private:
  /// Per-group slot, cache-line separated: touched by the owning group's
  /// shard mid-round, by the coordinator only at round boundaries.
  struct alignas(64) GroupState {
    Ewma est;
    std::uint32_t leaves = 0;
    std::uint64_t replans = 0;
    /// The group's view of the global model version (async campaigns).
    std::uint32_t version = 0;
    GroupState(double alpha) : est(alpha) {}
  };

  Config cfg_;
  HierarchyPlanner leaf_planner_;  ///< the §5.2 per-node sizing rule
  std::vector<GroupState> groups_;
};

}  // namespace lifl::ctrl
