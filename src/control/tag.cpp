#include "src/control/tag.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace lifl::ctrl {

bool Tag::add_vertex(Vertex v) {
  return vertices_.emplace(v.id, v).second;
}

void Tag::add_channel(Channel c) {
  if (vertices_.count(c.from) == 0 || vertices_.count(c.to) == 0) {
    throw std::invalid_argument("Tag::add_channel: unknown endpoint");
  }
  channels_.push_back(std::move(c));
}

const Tag::Vertex* Tag::find(fl::ParticipantId id) const {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? nullptr : &it->second;
}

Tag::Vertex* Tag::find(fl::ParticipantId id) {
  auto it = vertices_.find(id);
  return it == vertices_.end() ? nullptr : &it->second;
}

std::vector<fl::ParticipantId> Tag::consumers_of(fl::ParticipantId id) const {
  std::vector<fl::ParticipantId> out;
  for (const auto& c : channels_) {
    if (c.from == id) out.push_back(c.to);
  }
  return out;
}

std::vector<fl::ParticipantId> Tag::group_members(
    const std::string& label) const {
  std::unordered_set<fl::ParticipantId> set;
  for (const auto& c : channels_) {
    if (c.group_by == label) {
      set.insert(c.from);
      set.insert(c.to);
    }
  }
  return {set.begin(), set.end()};
}

bool Tag::validate() const {
  // Exactly one aggregator sink.
  if (!root().has_value()) return false;

  // Acyclicity via Kahn's algorithm over all vertices.
  std::unordered_map<fl::ParticipantId, std::size_t> indeg;
  for (const auto& [id, v] : vertices_) indeg[id] = 0;
  for (const auto& c : channels_) indeg[c.to] += 1;
  std::deque<fl::ParticipantId> q;
  for (const auto& [id, d] : indeg) {
    if (d == 0) q.push_back(id);
  }
  std::size_t seen = 0;
  while (!q.empty()) {
    const auto id = q.front();
    q.pop_front();
    ++seen;
    for (const auto& c : channels_) {
      if (c.from == id && --indeg[c.to] == 0) q.push_back(c.to);
    }
  }
  if (seen != vertices_.size()) return false;  // cycle

  // Every vertex with a channel must reach the root (weak connectivity of
  // producers): walk consumers transitively.
  const auto sink = *root();
  for (const auto& [id, v] : vertices_) {
    if (id == sink) continue;
    // BFS along channels from id.
    std::unordered_set<fl::ParticipantId> visited{id};
    std::deque<fl::ParticipantId> bfs{id};
    bool reached = false;
    while (!bfs.empty() && !reached) {
      const auto cur = bfs.front();
      bfs.pop_front();
      for (const auto& c : channels_) {
        if (c.from != cur || visited.count(c.to)) continue;
        if (c.to == sink) {
          reached = true;
          break;
        }
        visited.insert(c.to);
        bfs.push_back(c.to);
      }
    }
    if (!reached) return false;
  }
  return true;
}

std::optional<fl::ParticipantId> Tag::root() const {
  std::optional<fl::ParticipantId> sink;
  for (const auto& [id, v] : vertices_) {
    if (v.role != TagRole::kAggregator) continue;
    const bool has_outgoing = std::any_of(
        channels_.begin(), channels_.end(),
        [id = id](const Channel& c) { return c.from == id; });
    if (!has_outgoing) {
      if (sink.has_value()) return std::nullopt;  // multiple sinks
      sink = id;
    }
  }
  return sink;
}

}  // namespace lifl::ctrl
