#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

#include "src/control/ewma.hpp"
#include "src/sim/random.hpp"
#include "src/workload/population.hpp"

namespace lifl::ctrl {

/// Which client-selection strategy a campaign runs.
enum class SelectorPolicy : std::uint8_t {
  kRandom,       ///< today's oracle: uniform hash over the population
  kScored,       ///< Apodotiko-style EWMA score of per-tier duration/success
  kClusterScan,  ///< FedLesScan-style straggler-cluster down-weighting
};

inline const char* selector_policy_name(SelectorPolicy p) noexcept {
  switch (p) {
    case SelectorPolicy::kRandom:
      return "random";
    case SelectorPolicy::kScored:
      return "scored";
    case SelectorPolicy::kClusterScan:
      return "cluster-scan";
  }
  return "?";
}

/// Parse "random" / "scored" / "cluster" / "cluster-scan". Returns false on
/// anything else.
bool parse_selector_policy(std::string_view s, SelectorPolicy& out) noexcept;

/// One tier's behavioral telemetry: EWMA of observed completion duration
/// and of the success indicator (1 = delivered, 0 = failed/timed out).
/// Serialized into campaign snapshots, so resume is bit-exact.
struct TierScore {
  double dur = 0.0;
  bool dur_init = false;
  double succ = 0.0;
  bool succ_init = false;
};

/// A pluggable client-selection strategy. `pick` is a pure function of
/// (strategy seed, learned tier scores, round, seq, probe) — no internal
/// RNG stream — so K-shard campaigns stay bitwise equal to 1-shard and
/// checkpoint replay re-derives identical cohorts once the scores are
/// restored. `probe` > 0 asks for an alternative draw when the previous
/// candidate was refused (e.g. its offline queue is full).
class SelectionStrategy {
 public:
  struct Config {
    std::uint64_t seed = 1u;
    /// EWMA smoothing for the per-tier duration/success telemetry.
    double alpha = 0.3;
    /// Scored: weight ∝ share * (score/best)^gamma — larger gamma leans
    /// harder into the fastest tier.
    double score_gamma = 2.0;
    /// Scored: tiers scoring below this fraction of the best tier are
    /// excluded outright (straggler tail elimination).
    double exclude_below = 0.05;
    /// Cluster-scan: residual weight multiplier kept on the straggler
    /// cluster (a trickle, so its behavior stays observable).
    double scan_weight = 0.02;
    /// Cluster-scan: a tier whose duration EWMA exceeds `straggler_factor`
    /// x the fastest tier's is clustered as a straggler.
    double straggler_factor = 2.5;
  };

  /// Snapshot of the learned state (per-tier scores).
  struct State {
    std::array<TierScore, wl::kTierCount> scores{};
  };

  explicit SelectionStrategy(Config cfg) : cfg_(cfg) {}
  virtual ~SelectionStrategy() = default;

  virtual SelectorPolicy policy() const noexcept = 0;

  /// Pick a population index for upload `seq` of `round`. `probe` = 0 is
  /// the primary draw; `probe` = k the k-th deterministic redraw.
  virtual std::size_t pick(const wl::ClientPopulation& pop,
                           std::uint64_t round, std::uint64_t seq,
                           std::uint64_t probe) const = 0;

  /// Feed back one observed client outcome: `secs` from selection to
  /// delivery (ignored on failure), `success` whether it delivered.
  virtual void report(wl::DeviceTier tier, double secs, bool success) = 0;

  virtual State state() const { return State{}; }
  virtual void restore(const State&) {}

  const Config& config() const noexcept { return cfg_; }

 protected:
  /// FaultPlan-style stateless draw key: every pick seeds a fresh Rng from
  /// a SplitMix64-style mix of (seed, tag, round, seq, probe).
  std::uint64_t key(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) const noexcept {
    std::uint64_t x = cfg_.seed;
    for (std::uint64_t v : {tag, a, b, c}) {
      x ^= v + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 29;
    }
    return x;
  }

  Config cfg_;
};

/// Build a strategy for one campaign group. `group` perturbs the draw seed
/// so groups pick decorrelated cohorts from their own populations.
std::unique_ptr<SelectionStrategy> make_selection_strategy(
    SelectorPolicy policy, SelectionStrategy::Config cfg,
    std::uint64_t group);

}  // namespace lifl::ctrl
