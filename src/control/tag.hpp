#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fl/model_update.hpp"
#include "src/sim/time.hpp"

namespace lifl::ctrl {

/// Role metadata of a TAG vertex (Appendix D).
enum class TagRole : std::uint8_t { kClient, kAggregator };

/// Communication mechanism of a TAG channel (Appendix D).
enum class ChannelKind : std::uint8_t {
  kIntraNodeShm,       ///< same-node shared memory
  kInterNodeKernel,    ///< cross-node kernel networking via gateways
};

/// Topology Abstraction Graph (Appendix D, borrowed from Flame): describes
/// aggregator-to-aggregator and aggregator-client connectivity, with a
/// `group_by` label per channel that expresses placement affinity — vertices
/// sharing a label should land on the same node, which is how the
/// coordinator requests locality-aware placement.
class Tag {
 public:
  struct Vertex {
    fl::ParticipantId id = 0;
    TagRole role = TagRole::kAggregator;
    std::optional<sim::NodeId> placement;  ///< resolved by the placement engine
  };

  struct Channel {
    fl::ParticipantId from = 0;  ///< producer
    fl::ParticipantId to = 0;    ///< consumer
    ChannelKind kind = ChannelKind::kIntraNodeShm;
    std::string group_by;        ///< affinity label; empty = unconstrained
  };

  /// Add a vertex; returns false if the id already exists.
  bool add_vertex(Vertex v);

  /// Add a directed channel; both endpoints must exist.
  void add_channel(Channel c);

  const Vertex* find(fl::ParticipantId id) const;
  Vertex* find(fl::ParticipantId id);

  const std::vector<Channel>& channels() const noexcept { return channels_; }
  std::size_t vertex_count() const noexcept { return vertices_.size(); }

  /// Consumers that `id` produces to.
  std::vector<fl::ParticipantId> consumers_of(fl::ParticipantId id) const;

  /// Vertices sharing a group label.
  std::vector<fl::ParticipantId> group_members(const std::string& label) const;

  /// A valid aggregation DAG: acyclic with exactly one sink (the top
  /// aggregator) among aggregator vertices, and every producer reaches it.
  bool validate() const;

  /// The unique sink if `validate()` holds.
  std::optional<fl::ParticipantId> root() const;

 private:
  std::unordered_map<fl::ParticipantId, Vertex> vertices_;
  std::vector<Channel> channels_;
};

}  // namespace lifl::ctrl
