#include "src/control/agent.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/dataplane/metrics_map.hpp"

namespace lifl::ctrl {

NodeAgent::NodeAgent(dp::DataPlane& plane, MetricsServer* metrics, Config cfg)
    : plane_(plane),
      metrics_(metrics),
      cfg_(cfg),
      poll_alive_(std::make_shared<bool>(false)) {}

NodeAgent::~NodeAgent() {
  stop_metrics_loop();
  terminate_all();
}

NodeAgent::Instance NodeAgent::make_instance(fl::AggregatorRuntime::Config cfg,
                                             bool warm) {
  if (warm) {
    cfg.cold_trigger = fl::ColdStartTrigger::kNone;
    cfg.cold_start_secs = 0.0;
    cfg.cold_start_cycles = 0.0;
  } else {
    cfg.cold_trigger = cfg_.cold_trigger;
    cfg.cold_start_secs = cfg_.cold_start_secs;
    cfg.cold_start_cycles = cfg_.cold_start_cycles;
  }
  Instance inst;
  inst.runtime = std::make_unique<fl::AggregatorRuntime>(plane_, cfg);
  if (cfg_.container_sidecar) {
    inst.sidecar_draw = plane_.register_idle_draw(
        cfg_.node, sim::CostTag::kSidecarContainer,
        sim::calib::kContainerSidecarIdleCores);
  }
  return inst;
}

fl::AggregatorRuntime& NodeAgent::spawn(fl::AggregatorRuntime::Config cfg,
                                        bool allow_reuse, bool warm) {
  cfg.node = cfg_.node;
  if (allow_reuse && !warm_.empty()) {
    // Opportunistic reuse (§5.3): convert an idle warm instance to the new
    // role; no startup, no state synchronization.
    Instance inst = std::move(warm_.front());
    warm_.pop_front();
    inst.runtime->convert_role(std::move(cfg));
    ++reused_;
    live_.push_back(std::move(inst));
    return *live_.back().runtime;
  }
  Instance inst = make_instance(std::move(cfg), warm);
  ++created_;
  inst.runtime->start();
  live_.push_back(std::move(inst));
  return *live_.back().runtime;
}

void NodeAgent::park(fl::AggregatorRuntime& rt) {
  auto it = std::find_if(live_.begin(), live_.end(), [&](const Instance& i) {
    return i.runtime.get() == &rt;
  });
  if (it == live_.end()) return;
  it->runtime->stop();
  warm_.push_back(std::move(*it));
  live_.erase(it);
}

void NodeAgent::terminate(fl::AggregatorRuntime& rt) {
  auto it = std::find_if(live_.begin(), live_.end(), [&](const Instance& i) {
    return i.runtime.get() == &rt;
  });
  if (it == live_.end()) return;
  destroy(*it);
  live_.erase(it);
}

void NodeAgent::destroy(Instance& inst) {
  if (inst.sidecar_draw != 0) {
    plane_.remove_idle_draw(inst.sidecar_draw);
    inst.sidecar_draw = 0;
  }
  inst.runtime.reset();
}

void NodeAgent::terminate_all() {
  for (auto& inst : live_) destroy(inst);
  live_.clear();
  terminate_warm();
}

void NodeAgent::terminate_warm() {
  for (auto& inst : warm_) destroy(inst);
  warm_.clear();
}

void NodeAgent::start_metrics_loop() {
  if (polling_ || metrics_ == nullptr) return;
  polling_ = true;
  poll_alive_ = std::make_shared<bool>(true);
  // Periodic poll-and-drain of the node's eBPF metrics map (§4.3). The
  // agent owns the rescheduling closure; the weak capture breaks the cycle.
  tick_ = std::make_shared<std::function<void()>>();
  *tick_ = [this, alive = poll_alive_,
            wtick = std::weak_ptr<std::function<void()>>(tick_)]() {
    if (!*alive) return;
    auto& m = plane_.env(cfg_.node).metrics;
    const double arrivals = m.drain(dp::metric_keys::kArrivals);
    const double exec_sum = m.drain(dp::metric_keys::kAggExecSum);
    const double exec_count = m.drain(dp::metric_keys::kAggExecCount);
    metrics_->report(cfg_.node, arrivals, cfg_.metrics_poll_secs, exec_sum,
                     exec_count);
    if (auto t = wtick.lock()) {
      plane_.cluster().sim().schedule_daemon_after(cfg_.metrics_poll_secs, *t);
    }
  };
  plane_.cluster().sim().schedule_daemon_after(cfg_.metrics_poll_secs, *tick_);
}

void NodeAgent::stop_metrics_loop() {
  if (poll_alive_) *poll_alive_ = false;
  polling_ = false;
}

void NodeAgent::autoscale_gateway(double arrivals_per_sec,
                                  double secs_per_update) {
  // Cores needed so the gateway keeps up with the offered load, with one
  // spare; clamped to a sane range.
  const double demand = arrivals_per_sec * secs_per_update;
  const auto cores = static_cast<std::uint32_t>(
      std::clamp(std::ceil(demand) + 1.0, 1.0, 8.0));
  plane_.set_gateway_cores(cfg_.node, cores);
}

}  // namespace lifl::ctrl
