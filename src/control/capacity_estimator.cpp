#include "src/control/capacity_estimator.hpp"

#include <stdexcept>

#include "src/sim/random.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace lifl::ctrl {

namespace {

/// One load probe: Poisson arrivals at `rate` into `slots` parallel lanes,
/// each holding a lane for `service_secs`. Returns the mean sojourn
/// (queueing + service) time over the sampled jobs, after a warm-up prefix.
double probe_exec_time(std::uint32_t slots, double service_secs, double rate,
                       std::uint32_t samples, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Resource lanes(sim, "agg-slots", slots);
  sim::Rng rng(seed);

  const std::uint32_t warmup = samples / 5;
  const std::uint32_t total = samples + warmup;
  double measured_sum = 0.0;
  std::uint32_t measured = 0;

  double arrival = 0.0;
  for (std::uint32_t i = 0; i < total; ++i) {
    arrival += rng.exponential(rate);
    sim.schedule_after(arrival, [&, i, submitted = arrival] {
      lanes.acquire(service_secs, [&, i, submitted] {
        if (i >= warmup) {
          measured_sum += sim.now() - submitted;
          ++measured;
        }
      });
    });
  }
  sim.run();
  return measured > 0 ? measured_sum / measured : service_secs;
}

}  // namespace

CapacityEstimator::Result CapacityEstimator::estimate(const Config& cfg) {
  if (cfg.slots == 0 || cfg.service_secs <= 0.0) {
    throw std::invalid_argument("CapacityEstimator: invalid node profile");
  }
  Result result;
  double baseline = 0.0;
  double rate = cfg.start_rate;
  for (std::uint32_t p = 0; p < cfg.max_probes; ++p, rate *= cfg.rate_step) {
    const double exec = probe_exec_time(cfg.slots, cfg.service_secs, rate,
                                        cfg.samples_per_probe, cfg.seed + p);
    result.curve.push_back(Probe{rate, exec});
    if (p == 0) baseline = exec;
    if (exec > cfg.knee_ratio * baseline) {
      // "Significant increase in E_i": the node is saturating here.
      result.knee_found = true;
      result.knee_rate = rate;
      result.knee_exec_secs = exec;
      result.max_capacity = rate * exec;  // MC_i = k' x E'
      return result;
    }
  }
  // Rate cap reached without a knee: report the last probe as a lower bound.
  const Probe& last = result.curve.back();
  result.knee_rate = last.arrival_rate;
  result.knee_exec_secs = last.exec_secs;
  result.max_capacity = last.arrival_rate * last.exec_secs;
  return result;
}

}  // namespace lifl::ctrl
