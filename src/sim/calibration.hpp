#pragma once

/// Calibration constants for the simulated cluster.
///
/// Every constant is derived from a measurement reported in the LIFL paper
/// (MLSys 2024) or from the testbed it describes (§6: CloudLab nodes with a
/// 64-core Cascade Lake @ 2.8 GHz and a 10 Gb NIC). The data-plane pipelines
/// in `src/dataplane` are sums of these per-stage costs; the fits below make
/// the *composed* pipelines land on the paper's measured end-to-end numbers:
///
///  - Fig. 7(a): LIFL intra-node transfer 0.14 / 0.25 / 0.76 s for
///    ResNet-18/34/152  =>  ~3.2 ns/byte total on the shm path.
///  - Fig. 7(a): serverful (gRPC) ~= 3x LIFL  =>  ~9.6 ns/byte.
///  - Fig. 7(a): serverless (broker + sidecar) ~= 6x LIFL => ~19.2 ns/byte,
///    with ~25% sidecar (+SC) and ~25% broker (+MB) shares.
///  - §6.1: a cross-node ResNet-152 transfer takes ~4.2 s.
///  - Fig. 4 / Fig. 7(c): round time ~59.8 s (no hierarchy), ~57 s (kernel
///    hierarchy), ~44.9 s (LIFL hierarchy) with 8 ResNet-152 trainers.
namespace lifl::sim::calib {

// ---------------------------------------------------------------- hardware
inline constexpr double kCpuHz = 2.8e9;           ///< cycles per second
inline constexpr unsigned kCoresPerNode = 64;     ///< Cascade Lake node
inline constexpr double kNicBytesPerSec = 1.25e9; ///< 10 Gb/s full duplex
/// Kernel network processing budget per node (ksoftirqd-style): concurrent
/// kernel transfers contend for this, producing the Fig. 4 effect.
inline constexpr unsigned kKernelNetCores = 2;
/// Minimum latency of any message that crosses node groups: propagation +
/// switching + the receive-side kernel wake-up of a store-and-forward hop
/// (CloudLab-style cluster RTTs sit in the hundreds of microseconds). No
/// cross-group transfer can complete faster, which makes this the
/// conservative time-window *lookahead* of the sharded simulator: a shard
/// may run `lookahead` ahead of the others without missing an incoming
/// event.
inline constexpr double kCrossShardLatencySecs = 500e-6;

// -------------------------------------------------- LIFL shared-memory path
/// Producer-side cost of materializing an update into the shm object store
/// (gateway one-time payload processing or aggregator Send).
inline constexpr double kShmWriteCyclesPerByte = 4.5;
/// Consumer-side cost of reading an update out of shm during aggregation.
inline constexpr double kShmReadCyclesPerByte = 4.5;
/// SKMSG object-key delivery (eBPF sidecar + sockmap lookup), per message.
inline constexpr double kSkmsgNotifyCycles = 25e3;
/// eBPF sidecar metrics-collection cost per send event (strictly
/// event-driven: zero idle cost).
inline constexpr double kEbpfSidecarEventCycles = 8e3;

// ------------------------------------------------------ kernel (gRPC) path
/// Userspace serialization of a model update to the wire format.
inline constexpr double kSerializeCyclesPerByte = 3.5;
/// Userspace deserialization + tensor conversion on receive. Receive-heavy
/// split (vs serialize) reflects where the paper's Fig. 4 contention sits:
/// the single-threaded aggregator pays deserialization per update.
inline constexpr double kDeserializeCyclesPerByte = 11.0;
/// Kernel TCP/IP transmit processing (copy + protocol, per byte).
inline constexpr double kKernelTxCyclesPerByte = 6.4;
/// Kernel TCP/IP receive processing (copy + protocol + interrupts).
inline constexpr double kKernelRxCyclesPerByte = 6.0;
/// Fixed per-message kernel cost (syscalls, connection bookkeeping).
inline constexpr double kKernelFixedCycles = 150e3;
/// Extra per-byte cost of terminating a *client* upload stream (HTTP/2 +
/// TLS + protobuf decode of a fresh remote connection) on top of plain
/// deserialization. On kernel planes the consuming aggregator pays this
/// serially per update — the heavy "Network" receive spans of Fig. 4. On
/// LIFL the gateway absorbs it once, in parallel, during its one-time
/// payload processing (§4.2); brokers likewise terminate the stream.
inline constexpr double kClientStreamExtraCyclesPerByte = 8.0;

// ----------------------------------------------- serverless baseline extras
/// Container sidecar interception, per direction (adds a loopback hop).
/// Fitted so SL ~= 2x SF and ~= 6x LIFL on intra-node transfers (Fig. 7a):
/// 8 + 5.5 + 6.4 + 6 + 3.5 + 6.4 + 6 + 5.5 + 6.5 = 53.8 cycles/B ~= 2x 26.9.
inline constexpr double kContainerSidecarCyclesPerByte = 5.5;
/// Container sidecar idle draw, in cores, while its pod exists (always-on).
inline constexpr double kContainerSidecarIdleCores = 0.02;
/// Message broker enqueue + dequeue processing per byte (on top of the two
/// extra kernel hops the broker adds to the path).
inline constexpr double kBrokerCyclesPerByte = 3.5;
/// Broker idle draw, in cores (stateful always-on component).
inline constexpr double kBrokerIdleCores = 0.05;
/// Gateway payload transformation for inter-node forwarding (Appendix A),
/// per byte and per direction. Fitted so a cross-node ResNet-152 transfer
/// lands at the paper's ~4.2 s.
inline constexpr double kGatewayTransformCyclesPerByte = 3.0;

// --------------------------------------------------------------- cold start
/// Knative-style container cold start: sandbox + runtime init (seconds).
inline constexpr double kContainerColdStartSecs = 2.5;
/// CPU burned by a container cold start.
inline constexpr double kContainerColdStartCycles = 4.0e9;
/// LIFL (SPRIGHT-style) lightweight function cold start (seconds).
inline constexpr double kLiflColdStartSecs = 0.6;
/// CPU burned by a LIFL function start.
inline constexpr double kLiflColdStartCycles = 0.8e9;
/// Extra scale-from-zero reaction latency of the threshold autoscaler in
/// the full Knative-style baseline (SL): the autoscaler must observe the
/// concurrency breach over its stable/panic window and program the
/// deployment before the pod's own cold start even begins (aut, 2023a).
/// §2.3: reactive designs pay this per level of the function chain — the
/// cascading cold-start effect.
inline constexpr double kKnativeReactionSecs = 6.0;
/// CPU burned by a full serverless *pod* start in the SL baseline: image
/// unpack, queue-proxy + service-mesh sidecar boot, Python runtime and ML
/// framework import, gRPC server init. §6.3 attributes much of SL's >5x
/// CPU cost to "the CPU consumed for start-up"; ~20 CPU-seconds per pod
/// matches a torch-import-grade container init.
inline constexpr double kKnativePodStartCycles = 55e9;

// -------------------------------------------------------------- aggregation
/// FedAvg accumulate cost (weighted add of one update into the running
/// average), per byte of model. Fits the "Agg." spans of Fig. 4/7(c).
inline constexpr double kAggregateCyclesPerByte = 2.5;
/// Fixed per-update aggregation overhead (dequeue, bookkeeping).
inline constexpr double kAggregateFixedCycles = 2e6;
/// Global-model evaluation task (Fig. 4 "Eval." spans, a few seconds).
inline constexpr double kEvalSecs = 3.0;

// -------------------------------------------------------------- client side
/// Mean local-training time for a ResNet-152 round on a dedicated server
/// client (fits Fig. 4: rounds ~57-60 s = training + transfers + agg + eval).
inline constexpr double kTrainSecsResNet152 = 35.0;
/// Mean local-training time for ResNet-18 on a 1/8-node mobile client.
inline constexpr double kTrainSecsResNet18 = 14.0;
/// Relative std-dev of training time across heterogeneous clients.
inline constexpr double kTrainTimeJitter = 0.15;
/// Mobile clients hibernate uniformly in [0, 60] s before training (§6.2).
inline constexpr double kHibernateMaxSecs = 60.0;
/// Client upload bandwidth to the cluster ingress (bytes/s). Mobile-grade.
inline constexpr double kClientUplinkBytesPerSec = 12e6;
/// Server-grade client uplink (dedicated node, 10 Gb shared path).
inline constexpr double kServerUplinkBytesPerSec = 300e6;

// ------------------------------------------------------------ control plane
/// EWMA smoothing coefficient for queue-length estimates (§5.2, alpha=0.7).
inline constexpr double kEwmaAlpha = 0.7;
/// Updates per leaf aggregator (I in §5.2); small to maximize parallelism.
inline constexpr unsigned kUpdatesPerLeaf = 2;
/// Hierarchy re-plan period (§6.1: 2-minute cycle).
inline constexpr double kReplanPeriodSecs = 120.0;
/// Metrics-map polling period of the LIFL agent.
inline constexpr double kMetricsPollSecs = 1.0;

// -------------------------------------------------------------- checkpoints
/// Throughput of the external persistent storage service for checkpoints.
inline constexpr double kCheckpointBytesPerSec = 200e6;
/// Checkpoint every N global model versions.
inline constexpr unsigned kCheckpointEveryNVersions = 5;

}  // namespace lifl::sim::calib
