#include "src/sim/resource.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lifl::sim {

Resource::Resource(Simulator& sim, std::string name, std::uint32_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  last_change_ = sim_.now();
  stats_epoch_ = sim_.now();
}

void Resource::account() noexcept {
  const SimTime now = sim_.now();
  busy_integral_ += static_cast<double>(busy_) * (now - last_change_);
  last_change_ = now;
}

void Resource::acquire(SimTime service_time, Callback on_complete) {
  Job job{service_time < 0 ? 0 : service_time, sim_.now(),
          std::move(on_complete)};
  if (busy_ < capacity_) {
    start(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

std::uint32_t Resource::park(Callback done) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    in_service_[slot] = std::move(done);
  } else {
    slot = static_cast<std::uint32_t>(in_service_.size());
    in_service_.push_back(std::move(done));
  }
  return slot;
}

void Resource::start(Job job) {
  account();
  ++busy_;
  total_wait_ += sim_.now() - job.enqueued_at;
  // Park the completion in the slab; the scheduled event is a 12-byte
  // trampoline (always Task-inline), so the hot path never heap-allocates.
  // `this` outlives the simulation by construction (resources are owned by
  // nodes/the cluster).
  const std::uint32_t slot = park(std::move(job.done));
  sim_.schedule_after(job.service, FinishFn{this, slot});
}

void Resource::on_finish(std::uint32_t slot) {
  Callback done = std::move(in_service_[slot]);
  free_slots_.push_back(slot);
  account();
  --busy_;
  ++completed_;
  while (busy_ < capacity_ && !queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
  if (done) done();
}

void Resource::set_capacity(std::uint32_t capacity) {
  account();
  capacity_ = capacity;
  while (busy_ < capacity_ && !queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

SimTime Resource::busy_time() const noexcept {
  const SimTime now = sim_.now();
  return busy_integral_ + static_cast<double>(busy_) * (now - last_change_);
}

double Resource::utilization() const noexcept {
  const SimTime window = sim_.now() - stats_epoch_;
  if (window <= 0 || capacity_ == 0) return 0.0;
  return busy_time() / (window * static_cast<double>(capacity_));
}

void Resource::reset_stats() noexcept {
  account();
  busy_integral_ = 0.0;
  total_wait_ = 0.0;
  completed_ = 0;
  stats_epoch_ = sim_.now();
}

void Resource::restore_stats_image(const StatsImage& img) {
  if (busy_ != 0 || !queue_.empty()) {
    throw std::logic_error("Resource::restore_stats_image(" + name_ +
                           "): resource is not idle");
  }
  busy_integral_ = img.busy_integral;
  total_wait_ = img.total_wait;
  last_change_ = img.last_change;
  stats_epoch_ = img.stats_epoch;
  completed_ = img.completed;
}

// ---------------------------------------------------------------------------

MultiQueueResource::MultiQueueResource(Simulator& sim, std::string name,
                                       std::uint32_t cores,
                                       std::uint32_t queues)
    : sim_(sim), name_(std::move(name)), cores_(std::max(cores, 1u)) {
  std::uint32_t n = queues == 0 ? cores_ : queues;
  n = std::max(1u, std::min(n, cores_));
  queues_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Resource>(
        sim_, n == 1 ? name_ : name_ + ".q" + std::to_string(i), 0));
  }
  distribute();
  stats_epoch_ = sim_.now();
}

void MultiQueueResource::distribute() {
  const std::size_t n = queues_.size();
  live_ = std::min<std::size_t>(n, std::max(cores_, 1u));
  const auto base = cores_ / static_cast<std::uint32_t>(live_);
  const auto extra = cores_ % static_cast<std::uint32_t>(live_);
  for (std::size_t i = 0; i < n; ++i) {
    if (i < live_) {
      queues_[i]->set_capacity(base + (i < extra ? 1 : 0));
    } else {
      // Dropped from the steering domain: no new flows arrive, but jobs
      // already steered here must not stall — keep one server until the
      // queue drains (the surplus is reclaimed on a later set_capacity).
      const bool empty =
          queues_[i]->busy() == 0 && queues_[i]->queue_length() == 0;
      queues_[i]->set_capacity(empty ? 0 : 1);
    }
  }
}

void MultiQueueResource::set_capacity(std::uint32_t cores) {
  cores_ = std::max(cores, 1u);
  distribute();
}

std::uint32_t MultiQueueResource::busy() const noexcept {
  std::uint32_t n = 0;
  for (const auto& q : queues_) n += q->busy();
  return n;
}

std::size_t MultiQueueResource::queue_length() const noexcept {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q->queue_length();
  return n;
}

std::uint64_t MultiQueueResource::completed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& q : queues_) n += q->completed();
  return n;
}

SimTime MultiQueueResource::busy_time() const noexcept {
  SimTime t = 0.0;
  for (const auto& q : queues_) t += q->busy_time();
  return t;
}

SimTime MultiQueueResource::total_wait_time() const noexcept {
  SimTime t = 0.0;
  for (const auto& q : queues_) t += q->total_wait_time();
  return t;
}

double MultiQueueResource::utilization() const noexcept {
  const SimTime window = sim_.now() - stats_epoch_;
  // Denominator counts the servers actually provisioned, including the
  // transient drain servers a scale-down leaves behind — otherwise a
  // utilization read mid-drain could exceed 1.
  std::uint32_t servers = 0;
  for (const auto& q : queues_) servers += q->capacity();
  if (window <= 0 || servers == 0) return 0.0;
  return busy_time() / (window * static_cast<double>(servers));
}

void MultiQueueResource::reset_stats() noexcept {
  for (auto& q : queues_) q->reset_stats();
  stats_epoch_ = sim_.now();
}

}  // namespace lifl::sim
