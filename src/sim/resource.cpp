#include "src/sim/resource.hpp"

#include <utility>

namespace lifl::sim {

Resource::Resource(Simulator& sim, std::string name, std::uint32_t capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  last_change_ = sim_.now();
  stats_epoch_ = sim_.now();
}

void Resource::account() noexcept {
  const SimTime now = sim_.now();
  busy_integral_ += static_cast<double>(busy_) * (now - last_change_);
  last_change_ = now;
}

void Resource::acquire(SimTime service_time, Callback on_complete) {
  Job job{service_time < 0 ? 0 : service_time, sim_.now(), std::move(on_complete)};
  if (busy_ < capacity_) {
    start(std::move(job));
  } else {
    queue_.push_back(std::move(job));
  }
}

void Resource::start(Job job) {
  account();
  ++busy_;
  total_wait_ += sim_.now() - job.enqueued_at;
  // Move the callback into the completion event; `this` outlives the
  // simulation by construction (resources are owned by nodes/the cluster).
  sim_.schedule_after(job.service, [this, done = std::move(job.done)]() mutable {
    on_finish();
    if (done) done();
  });
}

void Resource::on_finish() {
  account();
  --busy_;
  ++completed_;
  while (busy_ < capacity_ && !queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

void Resource::set_capacity(std::uint32_t capacity) {
  account();
  capacity_ = capacity;
  while (busy_ < capacity_ && !queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(next));
  }
}

SimTime Resource::busy_time() const noexcept {
  const SimTime now = sim_.now();
  return busy_integral_ + static_cast<double>(busy_) * (now - last_change_) -
         0.0;
}

double Resource::utilization() const noexcept {
  const SimTime window = sim_.now() - stats_epoch_;
  if (window <= 0 || capacity_ == 0) return 0.0;
  return busy_time() / (window * static_cast<double>(capacity_));
}

void Resource::reset_stats() noexcept {
  account();
  busy_integral_ = 0.0;
  total_wait_ = 0.0;
  completed_ = 0;
  stats_epoch_ = sim_.now();
}

}  // namespace lifl::sim
