#include "src/sim/sharded_simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

namespace lifl::sim {

namespace {
/// Barrier spin budget before falling back to the condition variable. Spins
/// cover the common case (all shards busy, windows microseconds apart);
/// the blocking fallback keeps oversubscribed machines (fewer cores than
/// shards) from melting down.
constexpr int kSpinIters = 4096;
/// Optimistic speculation opens only while the busiest (src,dst) pair's
/// cross-post EWMA sits below this: with `calib::kEwmaAlpha` = 0.7, a
/// single drained post lifts the EWMA to 0.3, so any traffic in the last
/// few windows keeps speculation shut.
constexpr double kSpecQuietEwma = 0.125;
}  // namespace

ShardedSimulator::ShardedSimulator(Config cfg)
    : lookahead_(cfg.lookahead),
      sync_(cfg.sync),
      spec_max_(cfg.spec_max_lookaheads),
      fence_(cfg.spec_fence) {
  if (cfg.shards == 0) {
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  }
  if (!(lookahead_ > 0.0)) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be > 0");
  }
  if (spec_max_ == 0) {
    throw std::invalid_argument(
        "ShardedSimulator: spec_max_lookaheads must be >= 1");
  }
  shards_.resize(cfg.shards);
  for (auto& cell : shards_) cell.sim = std::make_unique<Simulator>();
  mail_.resize(cfg.shards * cfg.shards);
  promises_.resize(cfg.shards);
  promised_.assign(cfg.shards, 0.0);
  pair_count_.assign(cfg.shards * cfg.shards, 0);
  pair_ewma_.assign(cfg.shards * cfg.shards, 0.0);
}

void ShardedSimulator::post(std::size_t from, std::size_t to, SimTime t,
                            Task cb) {
  Simulator& src = *shards_[from].sim;
  // Conservative-window invariant: a cross-shard delivery can never land
  // closer than `lookahead` ahead of the sender's clock. The clamp applies
  // to same-shard posts too, so timing is independent of the group->shard
  // mapping.
  const SimTime tmin = src.now() + lookahead_;
  if (t < tmin) t = tmin;
  if (from == to) {
    src.schedule_at(t, std::move(cb));
    return;
  }
  // Promise enforcement: the adaptive horizon trusted this shard not to
  // deliver before `promised_[from]`. A post below that bound means the
  // installed promise was unsound — a model bug, not a speculation miss —
  // so fail loudly (worker-thread throws ride the record_error path).
  if (t < promised_[from]) {
    throw std::logic_error(
        "ShardedSimulator: cross-shard post below the shard's outbound "
        "promise (unsound promise function)");
  }
  mailbox(from, to).events.push_back(
      CrossEvent{t, static_cast<std::uint32_t>(from),
                 static_cast<std::uint32_t>(to), shards_[from].posted++,
                 std::move(cb)});
}

std::uint64_t ShardedSimulator::cross_posts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& cell : shards_) n += cell.posted;
  return n;
}

std::size_t ShardedSimulator::drain_mailboxes() {
  // Gather into the persistent scratch (capacity survives clear(), so a
  // steady-state barrier allocates nothing).
  drain_scratch_.clear();
  for (auto& box : mail_) {
    for (auto& e : box.events) drain_scratch_.push_back(std::move(e));
    box.events.clear();
  }
  // Deterministic injection order — (time, source shard, source sequence) —
  // so the delivery order of cross events never depends on the shard
  // count or on thread timing.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const CrossEvent& x, const CrossEvent& y) {
              if (x.t != y.t) return x.t < y.t;
              if (x.src != y.src) return x.src < y.src;
              return x.seq < y.seq;
            });
  // Causality audit before injection (`schedule_at` would silently clamp
  // a past delivery to the receiver's clock). A delivery at or below the
  // receiver's clock is impossible under conservative/adaptive horizons
  // (every shard ran strictly below a bound no delivery undercuts), so
  // outside optimistic mode it is an internal invariant failure. Under
  // speculation it is the expected miss: collect the *maximum* violated
  // receiver clock across all stragglers in this drain — the replay fence
  // must clear every one of them at once — and report the first straggler
  // in (t, src, seq) order so the error is deterministic.
  const std::size_t k = shards_.size();
  if (k > 1) {
    const CrossEvent* first = nullptr;
    SimTime fence = 0.0;
    for (const CrossEvent& e : drain_scratch_) {
      ++pair_count_[e.src * k + e.dst];
      const SimTime now = shards_[e.dst].sim->now();
      if (e.t <= now) {
        if (sync_ != SyncMode::kOptimistic) {
          throw std::logic_error(
              "ShardedSimulator: non-speculative window admitted a "
              "cross-shard post into a receiver's past");
        }
        if (first == nullptr) first = &e;
        fence = std::max(fence, now);
      }
    }
    if (first != nullptr) {
      throw CausalityViolation(first->t, fence, first->src, first->dst);
    }
  }
  for (CrossEvent& e : drain_scratch_) {
    shards_[e.dst].sim->schedule_at(e.t, std::move(e.cb));
  }
  const std::size_t drained = drain_scratch_.size();
  drain_scratch_.clear();
  return drained;
}

std::size_t ShardedSimulator::mail_pending() const {
  std::size_t n = 0;
  for (const auto& box : mail_) n += box.events.size();
  return n;
}

std::uint64_t ShardedSimulator::dispatched() const {
  std::uint64_t n = 0;
  for (const auto& cell : shards_) n += cell.sim->dispatched();
  return n;
}

std::size_t ShardedSimulator::pending_regular() const {
  std::size_t n = mail_pending();
  for (const auto& cell : shards_) n += cell.sim->pending_regular();
  return n;
}

void ShardedSimulator::record_error() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
  failed_.store(true, std::memory_order_release);
}

void ShardedSimulator::run_shard_window(std::size_t s) {
  ShardCell& cell = shards_[s];
  const std::uint64_t before = cell.sim->dispatched();
  try {
    cell.sim->run_window(window_end_);
  } catch (...) {
    // The shard's state is torn mid-callback; remember the first error and
    // let the barrier complete so the coordinator can shut down and
    // rethrow (matching the 1-shard mode, where this would propagate).
    record_error();
  }
  // Passive per-window accounting, written only by the owning thread.
  // Dispatch counts are deterministic, so the trace event is too.
  const std::uint64_t ran = cell.sim->dispatched() - before;
  ++cell.stats.windows;
  if (ran == 0) ++cell.stats.empty_windows;
  cell.done_at = std::chrono::steady_clock::now();
  if (trace_ != nullptr) {
    obs::ShardTrace* ring = trace_->shard(s);
    if (ring != nullptr) {
      ring->instant(window_end_, obs::Ev::kWindow, obs::shard_track(s),
                    static_cast<std::uint32_t>(windows_ - 1), ran,
                    ran == 0 ? obs::kFlagEmpty : 0);
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardedSimulator::ensure_workers() {
  if (!workers_.empty()) return;
  // Workers are spawned once, on the first multi-shard run, and persist
  // parked on the epoch wait between runs; epoch_ may already be nonzero,
  // so the coordinator captures the baseline *before* spawning and hands
  // it over — reading epoch_ in the worker would race with the first
  // window's bump.
  const std::uint64_t base_epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t k = shards_.size();
  workers_.reserve(k - 1);
  for (std::size_t s = 1; s < k; ++s) {
    workers_.emplace_back([this, s, base_epoch] {
      worker_loop(s, base_epoch);
    });
  }
}

void ShardedSimulator::worker_loop(std::size_t s, std::uint64_t base_epoch) {
  std::uint64_t seen = base_epoch;
  for (;;) {
    // Wait for the next window (or shutdown).
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen &&
           !stop_.load(std::memory_order_acquire)) {
      if (++spins < kSpinIters) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    run_shard_window(s);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        shards_.size() - 1) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }
}

SimTime ShardedSimulator::plan_window(SimTime t_min, std::size_t drained) {
  const SimTime conservative = t_min + lookahead_;
  if (sync_ == SyncMode::kConservative) return conservative;

  // Tick the per-pair traffic EWMA once per opened window. `run_to`
  // pauses never reach here (the mark check breaks first), so slicing a
  // run leaves the EWMA — and with it every speculation decision — on the
  // exact trajectory of the unsliced run.
  double busiest = 0.0;
  for (std::size_t p = 0; p < pair_ewma_.size(); ++p) {
    pair_ewma_[p] = calib::kEwmaAlpha * pair_ewma_[p] +
                    (1.0 - calib::kEwmaAlpha) *
                        static_cast<double>(pair_count_[p]);
    pair_count_[p] = 0;
    busiest = std::max(busiest, pair_ewma_[p]);
  }

  // Sound horizon: each shard caps the window at the earliest cross-shard
  // delivery it may still cause — the conservative `next event + lookahead`
  // or its installed promise, whichever is later. An empty shard can only
  // react to future deliveries (themselves at or beyond any horizon we
  // pick), so it contributes no cap; the promises are cached for `post`
  // to enforce during the window.
  SimTime sound = std::numeric_limits<SimTime>::infinity();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const SimTime next = shards_[s].sim->next_event_time();
    SimTime bound = next == std::numeric_limits<SimTime>::infinity()
                        ? next
                        : next + lookahead_;
    const SimTime promise = promises_[s] ? promises_[s]() : 0.0;
    promised_[s] = promise;
    if (promise > bound) bound = promise;
    sound = std::min(sound, bound);
  }
  // The cap keeps the window finite when every shard promises forever
  // (the rest of the run is shard-local) and bounds the straddle past a
  // `run_to` mark.
  const SimTime cap =
      conservative + static_cast<double>(spec_max_) * lookahead_;
  SimTime horizon = std::max(conservative, std::min(sound, cap));

  if (sync_ == SyncMode::kOptimistic) {
    if (t_min < fence_) {
      // Replaying through a rolled-back region: stay sound below the
      // fence so the straggler that invalidated the last attempt is
      // delivered conservatively this time.
      spec_bonus_ = 0;
    } else if (drained == 0 && busiest < kSpecQuietEwma) {
      spec_bonus_ =
          spec_bonus_ == 0 ? 1 : std::min(spec_bonus_ * 2, spec_max_);
      horizon += static_cast<double>(spec_bonus_) * lookahead_;
    } else {
      spec_bonus_ = 0;
    }
  }

  windows_skipped_ +=
      static_cast<std::uint64_t>((horizon - conservative) / lookahead_);
  return horizon;
}

std::uint64_t ShardedSimulator::run() {
  return run_impl(std::numeric_limits<SimTime>::infinity());
}

std::uint64_t ShardedSimulator::run_to(SimTime mark) {
  return run_impl(mark);
}

std::uint64_t ShardedSimulator::run_impl(SimTime mark) {
  const bool bounded = mark != std::numeric_limits<SimTime>::infinity();
  const std::uint64_t before = dispatched();
  const std::size_t k = shards_.size();
  if (k == 1) {
    // Deterministic single-shard mode: the plain single-threaded core, bit
    // identical to an unsharded `Simulator` (mailboxes are never used —
    // same-shard posts schedule directly). A bounded run dispatches the
    // strict-< prefix of the same sequence.
    Simulator& s0 = *shards_[0].sim;
    if (!bounded) {
      s0.run();
    } else if (s0.pending_regular() > 0) {
      s0.run_window(mark);
    }
    return s0.dispatched() - before;
  }

  ensure_workers();

  for (;;) {
    if (failed_.load(std::memory_order_acquire)) break;
    // ---- serial phase (coordinator only): exchange + plan the window.
    const std::size_t drained = drain_mailboxes();
    std::size_t regular = 0;
    for (const auto& cell : shards_) regular += cell.sim->pending_regular();
    if (regular == 0) break;
    SimTime t_min = std::numeric_limits<SimTime>::infinity();
    for (const auto& cell : shards_) {
      t_min = std::min(t_min, cell.sim->next_event_time());
    }
    if (t_min == std::numeric_limits<SimTime>::infinity()) break;
    // Bounded run: pause at the barrier once every pending event sits at or
    // beyond the mark. The next `run_impl` call recomputes the identical
    // horizon, so the window sequence — and with it the event order — is
    // the same whether or not the run was paused here.
    if (bounded && t_min >= mark) break;
    window_end_ = plan_window(t_min, drained);
    ++windows_;
    if (trace_ != nullptr) {
      obs::ShardTrace* ring = trace_->coordinator();
      if (ring != nullptr) {
        ring->instant(t_min, obs::Ev::kWindow, obs::kCampaignTrack,
                      static_cast<std::uint32_t>(windows_ - 1), drained,
                      drained == 0 ? obs::kFlagEmpty : 0);
      }
    }

    // ---- parallel phase: all shards execute events below the horizon.
    done_.store(0, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    cv_.notify_all();
    run_shard_window(0);
    int spins = 0;
    while (done_.load(std::memory_order_acquire) != k - 1) {
      if (++spins < kSpinIters) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return done_.load(std::memory_order_acquire) == k - 1;
        });
      }
    }
    // Barrier-idle accounting (serial phase again; workers parked): each
    // shard was idle from its own finish until the slowest shard's.
    std::chrono::steady_clock::time_point last = shards_[0].done_at;
    for (const auto& cell : shards_) {
      if (cell.done_at > last) last = cell.done_at;
    }
    for (auto& cell : shards_) {
      cell.stats.idle_wall_secs +=
          std::chrono::duration<double>(last - cell.done_at).count();
    }
  }

  // Workers stay parked on the epoch wait for the next run; the
  // destructor stops and joins them. Cached promise bounds are only
  // meaningful inside the window that evaluated them — clear them so
  // coordinator-side posts between runs are not checked against stale
  // bounds.
  std::fill(promised_.begin(), promised_.end(), 0.0);
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(mu_);
      err = error_;
      error_ = nullptr;
    }
    failed_.store(false, std::memory_order_release);
    std::rethrow_exception(err);
  }
  return dispatched() - before;
}

}  // namespace lifl::sim
