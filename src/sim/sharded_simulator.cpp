#include "src/sim/sharded_simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

namespace lifl::sim {

namespace {
/// Barrier spin budget before falling back to the condition variable. Spins
/// cover the common case (all shards busy, windows microseconds apart);
/// the blocking fallback keeps oversubscribed machines (fewer cores than
/// shards) from melting down.
constexpr int kSpinIters = 4096;
}  // namespace

ShardedSimulator::ShardedSimulator(Config cfg)
    : lookahead_(cfg.lookahead) {
  if (cfg.shards == 0) {
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  }
  if (!(lookahead_ > 0.0)) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be > 0");
  }
  shards_.resize(cfg.shards);
  for (auto& cell : shards_) cell.sim = std::make_unique<Simulator>();
  mail_.resize(cfg.shards * cfg.shards);
}

void ShardedSimulator::post(std::size_t from, std::size_t to, SimTime t,
                            Task cb) {
  Simulator& src = *shards_[from].sim;
  // Conservative-window invariant: a cross-shard delivery can never land
  // closer than `lookahead` ahead of the sender's clock. The clamp applies
  // to same-shard posts too, so timing is independent of the group->shard
  // mapping.
  const SimTime tmin = src.now() + lookahead_;
  if (t < tmin) t = tmin;
  if (from == to) {
    src.schedule_at(t, std::move(cb));
    return;
  }
  mailbox(from, to).events.push_back(
      CrossEvent{t, static_cast<std::uint32_t>(from),
                 static_cast<std::uint32_t>(to), shards_[from].posted++,
                 std::move(cb)});
}

std::uint64_t ShardedSimulator::cross_posts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& cell : shards_) n += cell.posted;
  return n;
}

std::size_t ShardedSimulator::drain_mailboxes() {
  // Gather into the persistent scratch (capacity survives clear(), so a
  // steady-state barrier allocates nothing).
  drain_scratch_.clear();
  for (auto& box : mail_) {
    for (auto& e : box.events) drain_scratch_.push_back(std::move(e));
    box.events.clear();
  }
  // Deterministic injection order — (time, source shard, source sequence) —
  // so the delivery order of cross events never depends on the shard
  // count or on thread timing.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const CrossEvent& x, const CrossEvent& y) {
              if (x.t != y.t) return x.t < y.t;
              if (x.src != y.src) return x.src < y.src;
              return x.seq < y.seq;
            });
  for (CrossEvent& e : drain_scratch_) {
    shards_[e.dst].sim->schedule_at(e.t, std::move(e.cb));
  }
  const std::size_t drained = drain_scratch_.size();
  drain_scratch_.clear();
  return drained;
}

std::size_t ShardedSimulator::mail_pending() const {
  std::size_t n = 0;
  for (const auto& box : mail_) n += box.events.size();
  return n;
}

std::uint64_t ShardedSimulator::dispatched() const {
  std::uint64_t n = 0;
  for (const auto& cell : shards_) n += cell.sim->dispatched();
  return n;
}

std::size_t ShardedSimulator::pending_regular() const {
  std::size_t n = mail_pending();
  for (const auto& cell : shards_) n += cell.sim->pending_regular();
  return n;
}

void ShardedSimulator::record_error() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
  failed_.store(true, std::memory_order_release);
}

void ShardedSimulator::run_shard_window(std::size_t s) {
  ShardCell& cell = shards_[s];
  const std::uint64_t before = cell.sim->dispatched();
  try {
    cell.sim->run_window(window_end_);
  } catch (...) {
    // The shard's state is torn mid-callback; remember the first error and
    // let the barrier complete so the coordinator can shut down and
    // rethrow (matching the 1-shard mode, where this would propagate).
    record_error();
  }
  // Passive per-window accounting, written only by the owning thread.
  // Dispatch counts are deterministic, so the trace event is too.
  const std::uint64_t ran = cell.sim->dispatched() - before;
  ++cell.stats.windows;
  if (ran == 0) ++cell.stats.empty_windows;
  cell.done_at = std::chrono::steady_clock::now();
  if (trace_ != nullptr) {
    obs::ShardTrace* ring = trace_->shard(s);
    if (ring != nullptr) {
      ring->instant(window_end_, obs::Ev::kWindow, obs::shard_track(s),
                    static_cast<std::uint32_t>(windows_ - 1), ran,
                    ran == 0 ? obs::kFlagEmpty : 0);
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardedSimulator::ensure_workers() {
  if (!workers_.empty()) return;
  // Workers are spawned once, on the first multi-shard run, and persist
  // parked on the epoch wait between runs; epoch_ may already be nonzero,
  // so the coordinator captures the baseline *before* spawning and hands
  // it over — reading epoch_ in the worker would race with the first
  // window's bump.
  const std::uint64_t base_epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t k = shards_.size();
  workers_.reserve(k - 1);
  for (std::size_t s = 1; s < k; ++s) {
    workers_.emplace_back([this, s, base_epoch] {
      worker_loop(s, base_epoch);
    });
  }
}

void ShardedSimulator::worker_loop(std::size_t s, std::uint64_t base_epoch) {
  std::uint64_t seen = base_epoch;
  for (;;) {
    // Wait for the next window (or shutdown).
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen &&
           !stop_.load(std::memory_order_acquire)) {
      if (++spins < kSpinIters) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
      }
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    run_shard_window(s);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        shards_.size() - 1) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }
}

std::uint64_t ShardedSimulator::run() {
  return run_impl(std::numeric_limits<SimTime>::infinity());
}

std::uint64_t ShardedSimulator::run_to(SimTime mark) {
  return run_impl(mark);
}

std::uint64_t ShardedSimulator::run_impl(SimTime mark) {
  const bool bounded = mark != std::numeric_limits<SimTime>::infinity();
  const std::uint64_t before = dispatched();
  const std::size_t k = shards_.size();
  if (k == 1) {
    // Deterministic single-shard mode: the plain single-threaded core, bit
    // identical to an unsharded `Simulator` (mailboxes are never used —
    // same-shard posts schedule directly). A bounded run dispatches the
    // strict-< prefix of the same sequence.
    Simulator& s0 = *shards_[0].sim;
    if (!bounded) {
      s0.run();
    } else if (s0.pending_regular() > 0) {
      s0.run_window(mark);
    }
    return s0.dispatched() - before;
  }

  ensure_workers();

  for (;;) {
    if (failed_.load(std::memory_order_acquire)) break;
    // ---- serial phase (coordinator only): exchange + plan the window.
    const std::size_t drained = drain_mailboxes();
    std::size_t regular = 0;
    for (const auto& cell : shards_) regular += cell.sim->pending_regular();
    if (regular == 0) break;
    SimTime t_min = std::numeric_limits<SimTime>::infinity();
    for (const auto& cell : shards_) {
      t_min = std::min(t_min, cell.sim->next_event_time());
    }
    if (t_min == std::numeric_limits<SimTime>::infinity()) break;
    // Bounded run: pause at the barrier once every pending event sits at or
    // beyond the mark. The next `run_impl` call recomputes the identical
    // horizon, so the window sequence — and with it the event order — is
    // the same whether or not the run was paused here.
    if (bounded && t_min >= mark) break;
    window_end_ = t_min + lookahead_;
    ++windows_;
    if (trace_ != nullptr) {
      obs::ShardTrace* ring = trace_->coordinator();
      if (ring != nullptr) {
        ring->instant(t_min, obs::Ev::kWindow, obs::kCampaignTrack,
                      static_cast<std::uint32_t>(windows_ - 1), drained,
                      drained == 0 ? obs::kFlagEmpty : 0);
      }
    }

    // ---- parallel phase: all shards execute events below the horizon.
    done_.store(0, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
    cv_.notify_all();
    run_shard_window(0);
    int spins = 0;
    while (done_.load(std::memory_order_acquire) != k - 1) {
      if (++spins < kSpinIters) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return done_.load(std::memory_order_acquire) == k - 1;
        });
      }
    }
    // Barrier-idle accounting (serial phase again; workers parked): each
    // shard was idle from its own finish until the slowest shard's.
    std::chrono::steady_clock::time_point last = shards_[0].done_at;
    for (const auto& cell : shards_) {
      if (cell.done_at > last) last = cell.done_at;
    }
    for (auto& cell : shards_) {
      cell.stats.idle_wall_secs +=
          std::chrono::duration<double>(last - cell.done_at).count();
    }
  }

  // Workers stay parked on the epoch wait for the next run; the
  // destructor stops and joins them.
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(mu_);
      err = error_;
      error_ = nullptr;
    }
    failed_.store(false, std::memory_order_release);
    std::rethrow_exception(err);
  }
  return dispatched() - before;
}

}  // namespace lifl::sim
