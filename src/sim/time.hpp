#pragma once

#include <cstdint>

namespace lifl::sim {

/// Simulated time, in seconds since the start of the simulation.
///
/// The simulator is a discrete-event engine: time only advances when the
/// event queue dispatches the next event, so a `SimTime` never refers to
/// wall-clock time.
using SimTime = double;

/// Identifier of a scheduled event; used to cancel pending events.
using EventId = std::uint64_t;

/// Identifier of a worker node in the simulated cluster.
using NodeId = std::uint32_t;

/// Convert seconds to milliseconds (display helper).
constexpr double to_millis(SimTime t) noexcept { return t * 1e3; }

/// Convert seconds to hours (display helper).
constexpr double to_hours(SimTime t) noexcept { return t / 3600.0; }

}  // namespace lifl::sim
