#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"

namespace lifl::sim {

/// Self-rescheduling *plan-apply pulse*: runs `tick` at `first` and then
/// every `interval` simulated seconds until `tick` returns false.
///
/// The streaming hierarchy drives its mid-round re-plan sampling with this:
/// the pulse is a **regular** (non-daemon) event chain, so it is executed
/// identically for every shard count — unlike window-barrier hooks, which
/// do not exist in 1-shard mode — and it is the tick's own return value
/// that ends the chain, so a model using it must make `tick` terminate
/// (e.g. once the round's work is fully claimed) or the simulation never
/// drains. No reference cycle: each scheduled event holds the only
/// shared_ptr to the pulse state, so ending the chain frees it.
inline void schedule_every(Simulator& sim, SimTime first, SimTime interval,
                           std::function<bool()> tick) {
  struct Pulse {
    Simulator& sim;
    SimTime at;
    SimTime interval;
    std::function<bool()> tick;

    void fire(const std::shared_ptr<Pulse>& self) {
      if (!tick()) return;
      at += interval;
      sim.schedule_at(at, [self] { self->fire(self); });
    }
  };
  auto p = std::make_shared<Pulse>(Pulse{sim, first, interval,
                                         std::move(tick)});
  sim.schedule_at(first, [p] { p->fire(p); });
}

}  // namespace lifl::sim
