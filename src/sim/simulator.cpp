#include "src/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace lifl::sim {

namespace {
/// Near-heap size that triggers the first calendar build.
constexpr std::size_t kCalendarBuildThreshold = 2048;
/// Rebuild (grow the bucket array) past this average bucket occupancy.
constexpr std::size_t kMaxAvgOccupancy = 8;
/// Fruitless window advances before jumping straight to the earliest event.
constexpr std::size_t kJumpAfterEmptyWindows = 64;
}  // namespace

std::uint32_t Simulator::alloc_slot(Callback cb, bool daemon) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.daemon = daemon;
    s.next = kNil;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slots_.back().cb = std::move(cb);
    slots_.back().daemon = daemon;
  }
  return slot;
}

void Simulator::near_push(TimedEntry e) {
  near_.push_back(e);
  std::size_t i = near_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry_later(near_[parent], near_[i])) break;
    std::swap(near_[parent], near_[i]);
    i = parent;
  }
}

void Simulator::near_pop() {
  near_[0] = near_.back();
  near_.pop_back();
  const std::size_t n = near_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t next = (r < n && entry_later(near_[l], near_[r])) ? r : l;
    if (!entry_later(near_[i], near_[next])) break;
    std::swap(near_[i], near_[next]);
    i = next;
  }
}

void Simulator::calendar_insert(std::uint32_t slot) {
  const Slot& s = slots_[slot];
  if (buckets_.empty() || s.t < win_end_) {
    near_push(TimedEntry{s.t, s.seq, slot});
    if (buckets_.empty() && near_.size() > kCalendarBuildThreshold) {
      rebuild_calendar();
    }
    return;
  }
  // O(1) intrusive splice; the slot's line is already open from the
  // callback store, so only the 4-byte head write touches new memory.
  std::uint32_t& head = buckets_[bucket_of(s.t)];
  slots_[slot].next = head;
  head = slot;
  if (timed_live_ > buckets_.size() * kMaxAvgOccupancy) rebuild_calendar();
}

void Simulator::rebuild_calendar() {
  // Gather live timed slots; recycle tombstones met along the way.
  std::vector<std::uint32_t> live;
  live.reserve(timed_live_);
  for (const TimedEntry& e : near_) {
    if (slots_[e.slot].tombstone) {
      free_slot(e.slot);
    } else {
      live.push_back(e.slot);
    }
  }
  near_.clear();
  for (std::uint32_t head : buckets_) {
    while (head != kNil) {
      const std::uint32_t next = slots_[head].next;
      if (next != kNil) __builtin_prefetch(&slots_[next]);
      if (slots_[head].tombstone) {
        free_slot(head);
      } else {
        live.push_back(head);
      }
      head = next;
    }
  }

  std::size_t nb = 16;
  while (nb * 2 < live.size()) nb <<= 1;
  buckets_.assign(nb, kNil);

  SimTime hi = now_;
  for (const std::uint32_t s : live) hi = std::max(hi, slots_[s].t);
  const SimTime span = hi - now_;
  bucket_width_ = span > 0 ? span / static_cast<double>(nb) : 1.0;
  // Numeric floor so the absolute window index stays well inside 64 bits.
  bucket_width_ = std::max(bucket_width_, std::max(hi, 1.0) * 1e-12);

  cur_window_ = static_cast<std::uint64_t>(now_ / bucket_width_);
  win_end_ = static_cast<SimTime>(cur_window_ + 1) * bucket_width_;
  for (const std::uint32_t s : live) {
    if (slots_[s].t < win_end_) {
      near_push(TimedEntry{slots_[s].t, slots_[s].seq, s});
    } else {
      std::uint32_t& head = buckets_[bucket_of(slots_[s].t)];
      slots_[s].next = head;
      head = s;
    }
  }
}

void Simulator::open_windows() {
  std::size_t fruitless = 0;
  while (near_.empty() && timed_live_ > 0) {
    ++cur_window_;
    win_end_ = static_cast<SimTime>(cur_window_ + 1) * bucket_width_;
    std::uint32_t& bucket = buckets_[cur_window_ & (buckets_.size() - 1)];
    std::uint32_t chain = bucket;
    std::uint32_t kept = kNil;
    while (chain != kNil) {
      const std::uint32_t next = slots_[chain].next;
      // The chain wanders the slab; start the next line's fetch while this
      // entry is classified (pointer-chase latency dominates the walk).
      if (next != kNil) __builtin_prefetch(&slots_[next]);
      if (slots_[chain].tombstone) {
        free_slot(chain);
      } else if (slots_[chain].t < win_end_) {
        near_push(TimedEntry{slots_[chain].t, slots_[chain].seq, chain});
      } else {
        slots_[chain].next = kept;  // a later "year" of this bucket
        kept = chain;
      }
      chain = next;
    }
    bucket = kept;
    if (!near_.empty()) return;
    if (++fruitless >= kJumpAfterEmptyWindows) {
      // Sparse region: jump the window straight to the earliest live event
      // instead of grinding through empty buckets one by one.
      SimTime min_t = std::numeric_limits<SimTime>::infinity();
      for (std::uint32_t head : buckets_) {
        for (std::uint32_t s = head; s != kNil; s = slots_[s].next) {
          if (!slots_[s].tombstone) min_t = std::min(min_t, slots_[s].t);
        }
      }
      if (min_t == std::numeric_limits<SimTime>::infinity()) return;
      // Every chained event has t >= win_end_, so this lands ahead of the
      // current window and the ++ above reopens exactly its window.
      cur_window_ = static_cast<std::uint64_t>(min_t / bucket_width_) - 1;
      fruitless = 0;
    }
  }
}

void Simulator::ring_push(RingEntry e) {
  if (ring_size_ == ring_.size()) {
    // Grow to the next power of two, unwrapping head..tail.
    std::vector<RingEntry> bigger(ring_.empty() ? 16 : ring_.size() * 2);
    for (std::size_t i = 0; i < ring_size_; ++i) {
      bigger[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
    }
    ring_ = std::move(bigger);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + ring_size_) & (ring_.size() - 1)] = e;
  ++ring_size_;
}

EventId Simulator::schedule_impl(SimTime t, Callback cb, bool daemon) {
  if (t < now_) t = now_;
  const std::uint32_t slot = alloc_slot(std::move(cb), daemon);
  Slot& s = slots_[slot];
  s.t = t;
  s.seq = next_seq_++;
  if (t == now_) {
    s.timed = false;
    ring_push(RingEntry{s.seq, slot});
  } else {
    s.timed = true;
    ++timed_live_;
    calendar_insert(slot);
  }
  ++pending_;
  if (!daemon) ++regular_pending_;
  return (static_cast<EventId>(slots_[slot].gen) << 32) | slot;
}

bool Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || s.tombstone) return false;
  // Destroy the callback now (it may pin resources); the queue handle is
  // recycled when it surfaces, never transiting the dispatch heap.
  s.cb = nullptr;
  s.tombstone = true;
  if (!s.daemon) --regular_pending_;
  if (s.timed) --timed_live_;
  --pending_;
  return true;
}

void Simulator::skim_tombstones() {
  while (ring_size_ > 0) {
    const std::uint32_t slot = ring_[ring_head_].slot;
    if (!slots_[slot].tombstone) break;
    free_slot(slot);
    ring_pop();
  }
  for (;;) {
    while (!near_.empty() && slots_[near_[0].slot].tombstone) {
      free_slot(near_[0].slot);
      near_pop();
    }
    if (!near_.empty() || timed_live_ == 0 || buckets_.empty()) break;
    open_windows();
    if (near_.empty()) break;  // nothing live anywhere in the calendar
  }
}

bool Simulator::dispatch_next(SimTime limit, bool bounded, bool strict) {
  skim_tombstones();
  const bool ring_ok = ring_size_ > 0;
  const bool near_ok = !near_.empty();
  if (!ring_ok && !near_ok) return false;

  // Ring entries are due at `now_` (time cannot advance while any are
  // pending); the near front is due at `now_` or later. When both are due
  // at the same instant, the smaller sequence number was scheduled first.
  bool use_ring;
  if (ring_ok && near_ok) {
    use_ring = near_[0].t > now_ || ring_[ring_head_].seq < near_[0].seq;
  } else {
    use_ring = ring_ok;
  }

  std::uint32_t slot;
  if (use_ring) {
    if (bounded && (now_ > limit || (strict && now_ >= limit))) return false;
    slot = ring_[ring_head_].slot;
    ring_pop();
  } else {
    if (bounded &&
        (near_[0].t > limit || (strict && near_[0].t >= limit))) {
      return false;
    }
    slot = near_[0].slot;
    now_ = near_[0].t;
    near_pop();
    --timed_live_;
  }

  Callback cb = std::move(slots_[slot].cb);
  if (!slots_[slot].daemon) --regular_pending_;
  --pending_;
  free_slot(slot);
  ++dispatched_;
  cb();
  return true;
}

bool Simulator::step() { return dispatch_next(0, /*bounded=*/false); }

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (regular_pending_ > 0 && dispatch_next(0, /*bounded=*/false)) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t n = 0;
  while (dispatch_next(t, /*bounded=*/true)) ++n;
  if (t > now_) now_ = t;
  return n;
}

std::size_t Simulator::run_window(SimTime end) {
  std::size_t n = 0;
  while (dispatch_next(end, /*bounded=*/true, /*strict=*/true)) ++n;
  return n;
}

void Simulator::restore_clock(SimTime t, std::uint64_t dispatched) {
  if (pending_ != 0) {
    throw std::logic_error(
        "Simulator::restore_clock: events are pending; the clock can only "
        "be restored onto an idle core");
  }
  if (t < now_) {
    throw std::logic_error(
        "Simulator::restore_clock: the clock cannot move backwards");
  }
  now_ = t;
  dispatched_ = dispatched;
}

SimTime Simulator::next_event_time() {
  skim_tombstones();
  if (ring_size_ > 0) return now_;  // ring entries are always due at now()
  if (!near_.empty()) return near_[0].t;
  return std::numeric_limits<SimTime>::infinity();
}

}  // namespace lifl::sim
