#include "src/sim/simulator.hpp"

#include <utility>

namespace lifl::sim {

EventId Simulator::schedule_impl(SimTime t, Callback cb, bool daemon) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, Pending{std::move(cb), daemon});
  if (!daemon) ++regular_pending_;
  return id;
}

bool Simulator::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  if (!it->second.daemon) --regular_pending_;
  callbacks_.erase(it);  // lazy removal from the heap
  return true;
}

bool Simulator::dispatch_next(SimTime limit, bool bounded) {
  while (!heap_.empty()) {
    const Entry e = heap_.top();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    if (bounded && e.t > limit) return false;
    heap_.pop();
    Callback cb = std::move(it->second.cb);
    if (!it->second.daemon) --regular_pending_;
    callbacks_.erase(it);
    now_ = e.t;
    ++dispatched_;
    cb();
    return true;
  }
  return false;
}

bool Simulator::step() { return dispatch_next(0, /*bounded=*/false); }

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (regular_pending_ > 0 && dispatch_next(0, /*bounded=*/false)) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t n = 0;
  while (dispatch_next(t, /*bounded=*/true)) ++n;
  if (t > now_) now_ = t;
  return n;
}

}  // namespace lifl::sim
