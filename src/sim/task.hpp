#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lifl::sim {

/// Move-only callable with 24 bytes of inline storage — the event-core
/// replacement for `std::function<void(Args...)>`.
///
/// `std::function`'s 16-byte small-buffer spills a three-pointer capture to
/// a heap allocation, and every queue move pays an indirect manager call.
/// `TaskFn` widens the inline window to 24 bytes while keeping the whole
/// callable at 32 — an event slab record stays one cache line — and moves
/// and invokes through a single static vtable. `Task` (the nullary alias)
/// is the simulator's event callback; `TaskFn<fl::ModelUpdate>` is the
/// update-pool waiter.
template <typename... Args>
class TaskFn {
 public:
  TaskFn() noexcept = default;
  TaskFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  TaskFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = heap_vtable<Fn>();
    }
  }

  TaskFn(TaskFn&& other) noexcept { move_from(other); }
  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  TaskFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  ~TaskFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()(Args... args) {
    vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  static constexpr std::size_t kInlineBytes = 24;

  struct VTable {
    void (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  ///< move into dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static const VTable* inline_vtable() noexcept {
    static constexpr VTable vt = {
        [](void* p, Args&&... args) {
          (*std::launder(reinterpret_cast<Fn*>(p)))(
              std::forward<Args>(args)...);
        },
        [](void* dst, void* src) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() noexcept {
    static constexpr VTable vt = {
        [](void* p, Args&&... args) {
          (**reinterpret_cast<Fn**>(p))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) {
          *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
        },
        [](void* p) { delete *reinterpret_cast<Fn**>(p); }};
    return &vt;
  }

  void move_from(TaskFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

/// The simulator's nullary event callback.
using Task = TaskFn<>;

}  // namespace lifl::sim
