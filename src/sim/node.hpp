#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/sim/calibration.hpp"
#include "src/sim/cpu_accounting.hpp"
#include "src/sim/resource.hpp"
#include "src/sim/simulator.hpp"

namespace lifl::sim {

/// Static description of a worker node's hardware.
struct NodeConfig {
  std::uint32_t cores = calib::kCoresPerNode;
  double cpu_hz = calib::kCpuHz;
  double nic_bytes_per_sec = calib::kNicBytesPerSec;
  std::uint32_t kernel_net_cores = calib::kKernelNetCores;
};

/// A simulated worker node: a pool of cores, a kernel network-processing
/// budget, a NIC, and a CPU ledger.
///
/// Higher layers (object store, gateway, aggregators) attach to a node but
/// are owned elsewhere, keeping the hardware model free of platform policy.
class Node {
 public:
  Node(Simulator& sim, NodeId id, const NodeConfig& cfg)
      : id_(id),
        cfg_(cfg),
        cores_(sim, "node" + std::to_string(id) + ".cores", cfg.cores),
        kernel_net_(sim, "node" + std::to_string(id) + ".knet",
                    cfg.kernel_net_cores),
        nic_tx_(sim, "node" + std::to_string(id) + ".nic", 1) {}

  NodeId id() const noexcept { return id_; }
  const NodeConfig& config() const noexcept { return cfg_; }

  /// General-purpose core pool (aggregation, gateway userspace work, ...).
  Resource& cores() noexcept { return cores_; }
  /// Kernel network-processing budget — the contended resource behind Fig. 4.
  Resource& kernel_net() noexcept { return kernel_net_; }
  /// NIC wire (serializes inter-node byte transmission).
  Resource& nic() noexcept { return nic_tx_; }

  CpuAccountant& cpu() noexcept { return cpu_; }
  const CpuAccountant& cpu() const noexcept { return cpu_; }

  /// Seconds of one core needed for `cycles` of work.
  double cycles_to_secs(double cycles) const noexcept {
    return cycles / cfg_.cpu_hz;
  }

 private:
  NodeId id_;
  NodeConfig cfg_;
  Resource cores_;
  Resource kernel_net_;
  Resource nic_tx_;
  CpuAccountant cpu_;
};

/// The simulated cluster: the simulator plus a fixed set of nodes.
class Cluster {
 public:
  Cluster(Simulator& sim, std::size_t node_count,
          const NodeConfig& cfg = NodeConfig{})
      : sim_(sim) {
    nodes_.reserve(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      nodes_.push_back(
          std::make_unique<Node>(sim, static_cast<NodeId>(i), cfg));
    }
  }

  Simulator& sim() noexcept { return sim_; }
  std::size_t size() const noexcept { return nodes_.size(); }
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }

  /// Sum of all per-node CPU ledgers.
  CpuAccountant total_cpu() const {
    CpuAccountant total;
    for (const auto& n : nodes_) total.merge(n->cpu());
    return total;
  }

 private:
  Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace lifl::sim
