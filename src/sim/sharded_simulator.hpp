#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace lifl::sim {

/// How multi-shard window barriers are synchronized. 1-shard mode ignores
/// the knob entirely (no barriers run), so every mode is trivially
/// bit-identical to the plain core at K = 1.
enum class SyncMode : std::uint8_t {
  /// Every window runs to `t_min + lookahead` — the classic bounded-lag
  /// horizon, one barrier per lookahead of simulated time under load.
  kConservative = 0,
  /// Widen the horizon using per-shard outbound *promises* ("no
  /// cross-shard delivery before T"): provably-empty barriers are
  /// skipped, results stay bitwise identical to conservative. Sound.
  kAdaptive,
  /// Adaptive, plus speculation: when the cross-post traffic EWMA says
  /// the mailboxes are idle, run past the sound horizon. A straggling
  /// post landing in a receiver's past raises `CausalityViolation`; the
  /// driver rolls back to its last commit and replays deterministically.
  kOptimistic,
};

/// Raised by a multi-shard run in `kOptimistic` mode when a speculatively
/// executed window is invalidated: a cross-shard post surfaced at a
/// barrier with a delivery time at or before its receiver's clock. The
/// simulator's state is torn past the violation — the caller must discard
/// it, restore its model from the last commit, and replay with
/// `Config::spec_fence = receiver_now` (speculation stays disabled below
/// the fence, so the replay is sound through the violated region).
class CausalityViolation : public std::runtime_error {
 public:
  CausalityViolation(SimTime post_time, SimTime receiver_now,
                     std::size_t src, std::size_t dst)
      : std::runtime_error(
            "ShardedSimulator: speculative window invalidated by a "
            "straggling cross-shard post"),
        post_time(post_time),
        receiver_now(receiver_now),
        src(src),
        dst(dst) {}

  SimTime post_time;      ///< delivery time of the straggling post
  SimTime receiver_now;   ///< max clock over all violated receivers
  std::size_t src;        ///< posting shard of the first violator
  std::size_t dst;        ///< receiving shard of the first violator
};

/// A sharded discrete-event simulator: K independent `Simulator` cores, one
/// per worker thread, synchronized with conservative time windows.
///
/// The model is partitioned into *shards* (node groups in the cluster): all
/// state of a shard is touched only by that shard's events, so intra-window
/// execution is lock-free — each worker thread drains its own slab/calendar
/// core with zero shared-state traffic. Cross-shard interaction goes
/// through `post`, which enqueues the event into a single-writer mailbox;
/// mailboxes are exchanged at window barriers.
///
/// Window protocol (classic conservative / bounded-lag synchronization):
/// every cross-shard event carries a delivery time at least `lookahead`
/// after the sender's clock — `lookahead` is the minimum cross-shard
/// latency of the model (`calib::kCrossShardLatencySecs`: no network hop
/// between node groups can complete faster). Each window the coordinator
///   1. drains all mailboxes into the destination shards, in deterministic
///      (time, source shard, source sequence) order,
///   2. computes the horizon H = min over shards of the next event time,
///      plus `lookahead`,
///   3. releases all shards to execute events with t < H in parallel.
/// Any event posted during the window happens at a time >= the window's
/// minimum, so its delivery lands at or beyond H — never in a receiver's
/// past. Events therefore always execute in nondecreasing time order per
/// shard, and delivery order of cross events is independent of the shard
/// count.
///
/// `Config::sync` relaxes the horizon beyond the conservative bound:
/// adaptive mode widens H using per-shard outbound promises
/// (`set_promise`) — still provably sound, so results stay bitwise equal —
/// and optimistic mode additionally speculates past the sound horizon
/// when the cross-post EWMA says the mailboxes are idle, detecting any
/// resulting causality violation at the next drain and surfacing it as
/// `CausalityViolation` for the driver to roll back and replay (see
/// docs/ARCHITECTURE.md, "Shard synchronization").
///
/// Determinism: with one shard, `run()` degenerates to the plain
/// single-threaded `Simulator::run()` (no threads, no barriers — bit
/// identical to the unsharded core). With K > 1, a model partitioned so
/// that groups share no state produces identical per-group results for any
/// K: each group's events carry the same timestamps and the same relative
/// order regardless of which shard executes them (see
/// tests/sharded_sim_test.cpp for the 2-shard vs 1-shard campaign
/// equivalence check). One caveat: *daemon* events scheduled between the
/// last regular event and the final window horizon run at K > 1 but not at
/// K = 1 (a single-threaded `run()` stops exactly at the last regular
/// event; windows quantize that cut) — a model that wants cross-K
/// equivalence must not let daemon tails feed back into measured state.
class ShardedSimulator {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Conservative window lookahead — must be a lower bound on the
    /// delivery delay of every `post` (post clamps to it).
    SimTime lookahead = calib::kCrossShardLatencySecs;
    /// Window synchronization mode (see `SyncMode`).
    SyncMode sync = SyncMode::kConservative;
    /// Caps both the adaptive widening and the optimistic speculation
    /// bonus, in lookaheads per window. The cap keeps every window
    /// finite (idle tails and daemon chains would otherwise run
    /// unbounded) and bounds how far a window can straddle a `run_to`
    /// mark.
    std::uint32_t spec_max_lookaheads = 256;
    /// Speculation fence for optimistic rollback-replay: windows whose
    /// minimum next-event time lies below the fence never speculate, so
    /// a replay is sound through the region that was invalidated.
    SimTime spec_fence = 0.0;
  };

  /// Always-on per-shard barrier accounting (the optimistic-sync roadmap
  /// item's baseline data). `idle_wall_secs` is real wall time the shard
  /// spent finished at a window barrier waiting for the slowest shard —
  /// it never feeds back into the simulation, so recording it keeps
  /// results bitwise identical.
  struct WindowStats {
    std::uint64_t windows = 0;        ///< windows this shard executed
    std::uint64_t empty_windows = 0;  ///< windows with zero events to run
    double idle_wall_secs = 0.0;      ///< wall spent waiting on stragglers
  };

  explicit ShardedSimulator(Config cfg);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  std::size_t shard_count() const noexcept { return shards_.size(); }
  SimTime lookahead() const noexcept { return lookahead_; }

  /// The shard-local event core. All scheduling of intra-shard events goes
  /// directly through it (zero overhead vs the unsharded simulator).
  Simulator& shard(std::size_t i) { return *shards_[i].sim; }

  /// Schedule `cb` on shard `to` at absolute time `t`, called from shard
  /// `from` (i.e. from within one of its callbacks during `run()`, or from
  /// the coordinator thread between runs). `t` is clamped up to
  /// `shard(from).now() + lookahead()` — the conservative-window invariant;
  /// the clamp is identical whether or not `from == to`, so a model's
  /// timing does not depend on how its groups map onto shards. Same-shard
  /// posts schedule directly; cross-shard posts ride the mailbox and are
  /// injected at the next window barrier.
  void post(std::size_t from, std::size_t to, SimTime t, Task cb);

  /// Run until no regular (non-daemon) events remain on any shard and all
  /// mailboxes are empty. Returns the number of events dispatched across
  /// all shards during this call. Only the coordinator thread may call it.
  std::uint64_t run();

  /// Run like `run()` but stop at the first quiescent point — a window
  /// barrier (K > 1) or the dispatch loop (K = 1) — at which every pending
  /// event is at or beyond `mark`. Pausing is *bit-transparent*: the window
  /// horizons depend only on next-event times, so interleaving `run_to`
  /// calls (and a final `run()`) dispatches exactly the event sequence an
  /// uninterrupted `run()` would — the property campaign checkpointing
  /// rests on. Two caveats, both inherited from the window protocol: with
  /// K > 1 a window whose horizon straddles the mark finishes (a handful of
  /// events at/after `mark` may run before the pause), and in K = 1 mode
  /// daemon events below the mark run even past the last regular event
  /// (plain `run()` would stop at it) — models that keep cross-K
  /// equivalence must not let daemon tails feed measured state, as already
  /// required by `run()`.
  std::uint64_t run_to(SimTime mark);

  /// Total events dispatched across all shards so far.
  std::uint64_t dispatched() const;
  /// Regular (non-daemon) events pending across all shards + mailboxes.
  std::size_t pending_regular() const;
  /// Cross-shard events posted so far (same-shard posts excluded). Only
  /// meaningful between runs / from the coordinator (per-shard counters are
  /// owned by their worker threads during a window).
  std::uint64_t cross_posts() const noexcept;
  /// Window barriers executed by multi-shard `run()` calls.
  std::uint64_t windows() const noexcept { return windows_; }
  /// Conservative barriers provably skipped by adaptive/optimistic
  /// horizon widening (an estimate: each opened window adds the number of
  /// whole lookaheads it ran beyond the conservative horizon). Zero in
  /// conservative mode.
  std::uint64_t windows_skipped() const noexcept { return windows_skipped_; }
  /// The configured synchronization mode.
  SyncMode sync_mode() const noexcept { return sync_; }

  /// Install shard `s`'s outbound promise for adaptive/optimistic
  /// horizons (an empty function uninstalls it). The function must return
  /// a lower bound on the delivery time of any cross-shard `post` shard
  /// `s` will make from events it has not yet executed — considering the
  /// shard's *entire* future behavior from its current state, not just
  /// its next event. Return 0 for "no promise" (the shard contributes its
  /// conservative bound only) and +infinity for "this shard will never
  /// post again this run". The coordinator evaluates promises in the
  /// serial phase of every opened window, with all workers parked at the
  /// barrier, so the function may freely read the model state of shard
  /// `s` (and, with care, of other shards). Promises must be pure reads:
  /// evaluating one must not change model state, or `run_to` pausing
  /// stops being bit-transparent. A promise that is later contradicted by
  /// an actual post below the promised bound is a model bug and raises
  /// `std::logic_error` at the offending `post`.
  void set_promise(std::size_t s, std::function<SimTime()> fn) {
    promises_[s] = std::move(fn);
  }

  /// Per-shard barrier stats (zero in 1-shard mode — no barriers run).
  /// Only meaningful between runs / from the coordinator.
  const WindowStats& window_stats(std::size_t i) const {
    return shards_[i].stats;
  }

  /// Attach a passive trace recorder (nullptr detaches). Each shard's
  /// worker emits its window events into its own ring; the coordinator
  /// emits the mailbox-exchange events into the coordinator ring between
  /// windows — recording never schedules events or alters the window
  /// protocol, so traced runs stay bitwise identical to untraced runs.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }

 private:
  struct CrossEvent {
    SimTime t;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;  ///< per-source post counter (FIFO tie-break)
    Task cb;
  };

  /// Per-shard state, cache-line separated: `sim` and `posted` (the
  /// per-source cross-post sequence, which doubles as the cross-post
  /// counter) are touched by the owning worker thread during a window, by
  /// the coordinator only between windows.
  struct alignas(64) ShardCell {
    std::unique_ptr<Simulator> sim;
    std::uint64_t posted = 0;
    /// `windows`/`empty_windows` are written by the owning thread inside
    /// `run_shard_window`; `idle_wall_secs` and `done_at` are reconciled
    /// by the coordinator in the serial phase (workers parked).
    WindowStats stats;
    std::chrono::steady_clock::time_point done_at{};
  };

  /// Single-writer mailbox for one (src, dst) pair; the src worker appends
  /// during its window, the coordinator drains at the barrier.
  struct alignas(64) Mailbox {
    std::vector<CrossEvent> events;
  };

  Mailbox& mailbox(std::size_t src, std::size_t dst) {
    return mail_[src * shards_.size() + dst];
  }
  /// Shared body of `run` / `run_to`: windows stop once the minimum next
  /// event time reaches `mark` (+infinity for an unbounded run).
  std::uint64_t run_impl(SimTime mark);
  /// Pick the horizon of the window about to open (serial phase):
  /// conservative `t_min + lookahead`, widened by promises in adaptive /
  /// optimistic mode, plus the speculation bonus when the traffic EWMA
  /// says the mailboxes are idle. Also ticks the EWMA and the
  /// skipped-window estimate — called exactly once per *opened* window,
  /// after the `run_to` mark check, so pausing stays bit-transparent.
  SimTime plan_window(SimTime t_min, std::size_t drained);
  /// Spawn the K-1 worker threads on first multi-shard use; they persist —
  /// parked on the epoch wait — across run/run_to calls (a mark-sliced
  /// checkpointed round would otherwise pay a thread create/join per
  /// slice) and are joined by the destructor.
  void ensure_workers();
  /// Sort all mailboxes by (t, src, seq) and schedule into the targets.
  /// Returns the number of cross events delivered.
  std::size_t drain_mailboxes();
  std::size_t mail_pending() const;
  void worker_loop(std::size_t s, std::uint64_t base_epoch);
  /// Run the shard's window, capturing a model-callback exception so it
  /// can be rethrown on the coordinator after the barrier (in 1-shard mode
  /// exceptions propagate natively; the threaded mode must match instead
  /// of std::terminate-ing).
  void run_shard_window(std::size_t s);
  void record_error() noexcept;

  SimTime lookahead_;
  SyncMode sync_ = SyncMode::kConservative;
  std::uint32_t spec_max_ = 256;
  SimTime fence_ = 0.0;
  std::vector<ShardCell> shards_;
  std::vector<Mailbox> mail_;
  std::vector<CrossEvent> drain_scratch_;
  std::vector<std::thread> workers_;
  std::uint64_t windows_ = 0;
  std::uint64_t windows_skipped_ = 0;
  obs::TraceRecorder* trace_ = nullptr;  ///< passive; not owned

  // ---- adaptive/optimistic horizon state (coordinator-owned) ----------
  /// Per-shard outbound promise functions (empty = no promise).
  std::vector<std::function<SimTime()>> promises_;
  /// Promise bounds cached at window open; `post` enforces them (a post
  /// below its shard's promised bound is an unsound promise). Written by
  /// the coordinator in the serial phase, read by workers during the
  /// window — the barrier orders the accesses. Reset to 0 between runs.
  std::vector<SimTime> promised_;
  /// Per-(src,dst)-pair cross events drained since the last opened
  /// window, and the EWMA of that rate (`calib::kEwmaAlpha`); the
  /// busiest-pair EWMA gates optimistic speculation.
  std::vector<std::uint64_t> pair_count_;
  std::vector<double> pair_ewma_;
  /// Current speculation bonus in lookaheads: doubles every quiet window
  /// up to `spec_max_`, collapses to 0 on any cross traffic.
  std::uint32_t spec_bonus_ = 0;

  // ---- window barrier (used only when shard_count() > 1) --------------
  // The coordinator publishes `window_end_` then bumps `epoch_`; workers
  // run their window and bump `done_`. Waiters spin briefly (windows are
  // typically microseconds apart under load), then block on the condvar so
  // oversubscribed machines don't burn whole scheduler quanta.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;  ///< first callback exception (guarded by mu_)
  SimTime window_end_ = 0.0;
};

}  // namespace lifl::sim
