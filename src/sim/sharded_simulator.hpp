#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace lifl::sim {

/// A sharded discrete-event simulator: K independent `Simulator` cores, one
/// per worker thread, synchronized with conservative time windows.
///
/// The model is partitioned into *shards* (node groups in the cluster): all
/// state of a shard is touched only by that shard's events, so intra-window
/// execution is lock-free — each worker thread drains its own slab/calendar
/// core with zero shared-state traffic. Cross-shard interaction goes
/// through `post`, which enqueues the event into a single-writer mailbox;
/// mailboxes are exchanged at window barriers.
///
/// Window protocol (classic conservative / bounded-lag synchronization):
/// every cross-shard event carries a delivery time at least `lookahead`
/// after the sender's clock — `lookahead` is the minimum cross-shard
/// latency of the model (`calib::kCrossShardLatencySecs`: no network hop
/// between node groups can complete faster). Each window the coordinator
///   1. drains all mailboxes into the destination shards, in deterministic
///      (time, source shard, source sequence) order,
///   2. computes the horizon H = min over shards of the next event time,
///      plus `lookahead`,
///   3. releases all shards to execute events with t < H in parallel.
/// Any event posted during the window happens at a time >= the window's
/// minimum, so its delivery lands at or beyond H — never in a receiver's
/// past. Events therefore always execute in nondecreasing time order per
/// shard, and delivery order of cross events is independent of the shard
/// count.
///
/// Determinism: with one shard, `run()` degenerates to the plain
/// single-threaded `Simulator::run()` (no threads, no barriers — bit
/// identical to the unsharded core). With K > 1, a model partitioned so
/// that groups share no state produces identical per-group results for any
/// K: each group's events carry the same timestamps and the same relative
/// order regardless of which shard executes them (see
/// tests/sharded_sim_test.cpp for the 2-shard vs 1-shard campaign
/// equivalence check). One caveat: *daemon* events scheduled between the
/// last regular event and the final window horizon run at K > 1 but not at
/// K = 1 (a single-threaded `run()` stops exactly at the last regular
/// event; windows quantize that cut) — a model that wants cross-K
/// equivalence must not let daemon tails feed back into measured state.
class ShardedSimulator {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Conservative window lookahead — must be a lower bound on the
    /// delivery delay of every `post` (post clamps to it).
    SimTime lookahead = calib::kCrossShardLatencySecs;
  };

  /// Always-on per-shard barrier accounting (the optimistic-sync roadmap
  /// item's baseline data). `idle_wall_secs` is real wall time the shard
  /// spent finished at a window barrier waiting for the slowest shard —
  /// it never feeds back into the simulation, so recording it keeps
  /// results bitwise identical.
  struct WindowStats {
    std::uint64_t windows = 0;        ///< windows this shard executed
    std::uint64_t empty_windows = 0;  ///< windows with zero events to run
    double idle_wall_secs = 0.0;      ///< wall spent waiting on stragglers
  };

  explicit ShardedSimulator(Config cfg);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  std::size_t shard_count() const noexcept { return shards_.size(); }
  SimTime lookahead() const noexcept { return lookahead_; }

  /// The shard-local event core. All scheduling of intra-shard events goes
  /// directly through it (zero overhead vs the unsharded simulator).
  Simulator& shard(std::size_t i) { return *shards_[i].sim; }

  /// Schedule `cb` on shard `to` at absolute time `t`, called from shard
  /// `from` (i.e. from within one of its callbacks during `run()`, or from
  /// the coordinator thread between runs). `t` is clamped up to
  /// `shard(from).now() + lookahead()` — the conservative-window invariant;
  /// the clamp is identical whether or not `from == to`, so a model's
  /// timing does not depend on how its groups map onto shards. Same-shard
  /// posts schedule directly; cross-shard posts ride the mailbox and are
  /// injected at the next window barrier.
  void post(std::size_t from, std::size_t to, SimTime t, Task cb);

  /// Run until no regular (non-daemon) events remain on any shard and all
  /// mailboxes are empty. Returns the number of events dispatched across
  /// all shards during this call. Only the coordinator thread may call it.
  std::uint64_t run();

  /// Run like `run()` but stop at the first quiescent point — a window
  /// barrier (K > 1) or the dispatch loop (K = 1) — at which every pending
  /// event is at or beyond `mark`. Pausing is *bit-transparent*: the window
  /// horizons depend only on next-event times, so interleaving `run_to`
  /// calls (and a final `run()`) dispatches exactly the event sequence an
  /// uninterrupted `run()` would — the property campaign checkpointing
  /// rests on. Two caveats, both inherited from the window protocol: with
  /// K > 1 a window whose horizon straddles the mark finishes (a handful of
  /// events at/after `mark` may run before the pause), and in K = 1 mode
  /// daemon events below the mark run even past the last regular event
  /// (plain `run()` would stop at it) — models that keep cross-K
  /// equivalence must not let daemon tails feed measured state, as already
  /// required by `run()`.
  std::uint64_t run_to(SimTime mark);

  /// Total events dispatched across all shards so far.
  std::uint64_t dispatched() const;
  /// Regular (non-daemon) events pending across all shards + mailboxes.
  std::size_t pending_regular() const;
  /// Cross-shard events posted so far (same-shard posts excluded). Only
  /// meaningful between runs / from the coordinator (per-shard counters are
  /// owned by their worker threads during a window).
  std::uint64_t cross_posts() const noexcept;
  /// Window barriers executed by multi-shard `run()` calls.
  std::uint64_t windows() const noexcept { return windows_; }

  /// Per-shard barrier stats (zero in 1-shard mode — no barriers run).
  /// Only meaningful between runs / from the coordinator.
  const WindowStats& window_stats(std::size_t i) const {
    return shards_[i].stats;
  }

  /// Attach a passive trace recorder (nullptr detaches). Each shard's
  /// worker emits its window events into its own ring; the coordinator
  /// emits the mailbox-exchange events into the coordinator ring between
  /// windows — recording never schedules events or alters the window
  /// protocol, so traced runs stay bitwise identical to untraced runs.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }

 private:
  struct CrossEvent {
    SimTime t;
    std::uint32_t src;
    std::uint32_t dst;
    std::uint64_t seq;  ///< per-source post counter (FIFO tie-break)
    Task cb;
  };

  /// Per-shard state, cache-line separated: `sim` and `posted` (the
  /// per-source cross-post sequence, which doubles as the cross-post
  /// counter) are touched by the owning worker thread during a window, by
  /// the coordinator only between windows.
  struct alignas(64) ShardCell {
    std::unique_ptr<Simulator> sim;
    std::uint64_t posted = 0;
    /// `windows`/`empty_windows` are written by the owning thread inside
    /// `run_shard_window`; `idle_wall_secs` and `done_at` are reconciled
    /// by the coordinator in the serial phase (workers parked).
    WindowStats stats;
    std::chrono::steady_clock::time_point done_at{};
  };

  /// Single-writer mailbox for one (src, dst) pair; the src worker appends
  /// during its window, the coordinator drains at the barrier.
  struct alignas(64) Mailbox {
    std::vector<CrossEvent> events;
  };

  Mailbox& mailbox(std::size_t src, std::size_t dst) {
    return mail_[src * shards_.size() + dst];
  }
  /// Shared body of `run` / `run_to`: windows stop once the minimum next
  /// event time reaches `mark` (+infinity for an unbounded run).
  std::uint64_t run_impl(SimTime mark);
  /// Spawn the K-1 worker threads on first multi-shard use; they persist —
  /// parked on the epoch wait — across run/run_to calls (a mark-sliced
  /// checkpointed round would otherwise pay a thread create/join per
  /// slice) and are joined by the destructor.
  void ensure_workers();
  /// Sort all mailboxes by (t, src, seq) and schedule into the targets.
  /// Returns the number of cross events delivered.
  std::size_t drain_mailboxes();
  std::size_t mail_pending() const;
  void worker_loop(std::size_t s, std::uint64_t base_epoch);
  /// Run the shard's window, capturing a model-callback exception so it
  /// can be rethrown on the coordinator after the barrier (in 1-shard mode
  /// exceptions propagate natively; the threaded mode must match instead
  /// of std::terminate-ing).
  void run_shard_window(std::size_t s);
  void record_error() noexcept;

  SimTime lookahead_;
  std::vector<ShardCell> shards_;
  std::vector<Mailbox> mail_;
  std::vector<CrossEvent> drain_scratch_;
  std::vector<std::thread> workers_;
  std::uint64_t windows_ = 0;
  obs::TraceRecorder* trace_ = nullptr;  ///< passive; not owned

  // ---- window barrier (used only when shard_count() > 1) --------------
  // The coordinator publishes `window_end_` then bumps `epoch_`; workers
  // run their window and bump `done_`. Waiters spin briefly (windows are
  // typically microseconds apart under load), then block on the condvar so
  // oversubscribed machines don't burn whole scheduler quanta.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;  ///< first callback exception (guarded by mu_)
  SimTime window_end_ = 0.0;
};

}  // namespace lifl::sim
