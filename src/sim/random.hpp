#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace lifl::sim {

/// Deterministic pseudo-random source (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component of the platform draws from an explicitly
/// owned `Rng` so that simulations are reproducible given a seed and
/// independent components can use independent streams (`split()`).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream, keyed by `key`; does not perturb *this.
  [[nodiscard]] Rng split(std::uint64_t key) const noexcept {
    Rng r;
    for (int i = 0; i < 4; ++i) r.state_[i] = state_[i];
    // Mix the key into the copied state and decorrelate with a few steps.
    r.state_[0] ^= 0xD1B54A32D192ED03ull * (key + 1);
    r.state_[3] ^= 0x8CB92BA72F3D8DD7ull * (key + 0x9E37ull);
    for (int i = 0; i < 8; ++i) (void)r.next_u64();
    return r;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Bounded generation via 128-bit multiply (Lemire); slight bias at this
    // scale is irrelevant for simulation purposes but we debias anyway.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (with cached spare).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) noexcept {
    double u = 0.0;
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape) noexcept {
    if (shape < 1.0) {
      // Boost to shape+1 and correct with a power of a uniform.
      const double g = gamma(shape + 1.0);
      double u = 0.0;
      while (u <= 1e-300) u = uniform();
      return g * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (u > 1e-300 &&
          std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }

  /// Complete generator state, for checkpointing. Restoring it resumes the
  /// stream bit-exactly — including the cached Box-Muller spare, which is
  /// part of the observable sequence of `normal()` draws.
  struct State {
    std::uint64_t s[4];
    double spare;
    bool has_spare;
  };

  State state() const noexcept {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.spare = spare_;
    st.has_spare = has_spare_;
    return st;
  }

  void restore(const State& st) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    spare_ = st.spare;
    has_spare_ = st.has_spare;
  }

  /// Symmetric Dirichlet(alpha) over `k` categories; returns a probability
  /// vector. Used for non-IID label-skew partitioning of federated data.
  std::vector<double> dirichlet(double alpha, std::size_t k) noexcept {
    std::vector<double> out(k);
    double sum = 0.0;
    for (auto& v : out) {
      v = gamma(alpha);
      sum += v;
    }
    if (sum <= 0.0) {
      std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(k));
      return out;
    }
    for (auto& v : out) v /= sum;
    return out;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace lifl::sim
