#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace lifl::sim {

/// Discrete-event simulator: a virtual clock plus an event queue.
///
/// Events scheduled for the same instant run in scheduling order (FIFO
/// tie-breaking on a monotonically increasing sequence number), which makes
/// runs fully deterministic. Callbacks may schedule or cancel further events,
/// including at the current instant.
///
/// *Daemon* events model background periodic work (metrics polling,
/// samplers): they execute normally while regular events exist, but do not
/// by themselves keep `run()` alive — exactly like daemon threads.
///
/// The core is built for million-event campaigns:
///  - Every event is one slab record (callback, time, sequence number)
///    allocated off a free list: scheduling performs no per-event heap
///    allocation and no map insert/erase.
///  - Timed events run through a two-stage calendar queue. Far events sit
///    in intrusive bucket chains (a `next` index threaded through the
///    slab, one O(1) pointer splice per event); when a time window opens,
///    its chain is moved into a small binary heap ("near") that serves
///    dispatch, so the heap stays cache-resident instead of growing to the
///    full pending population.
///  - Zero-delay events (`schedule_now`, or any schedule that lands exactly
///    at `now()`) take a FIFO ring fast-path that bypasses the calendar
///    entirely; cross-queue ordering is preserved by comparing sequence
///    numbers whenever a timed event is also due at the current instant.
///  - `cancel` is O(1): it destroys the callback and tombstones the record;
///    the queue entry is discarded (and the slot recycled) when it
///    surfaces, never transiting the dispatch heap.
class Simulator {
 public:
  using Callback = Task;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds).
  SimTime now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `t` (clamped to `now()` if in the past).
  EventId schedule_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*daemon=*/false);
  }

  /// Schedule `cb` after a relative delay `dt >= 0`.
  EventId schedule_after(SimTime dt, Callback cb) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::move(cb));
  }

  /// Schedule `cb` at the current instant, after all events already
  /// scheduled for this instant (same semantics as `schedule_after(0, cb)`
  /// but guaranteed to take the heap-free fast path).
  EventId schedule_now(Callback cb) {
    return schedule_impl(now_, std::move(cb), /*daemon=*/false);
  }

  /// Schedule a daemon event: runs like a normal event but does not keep
  /// `run()` going once all regular events have drained.
  EventId schedule_daemon_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*daemon=*/true);
  }

  /// Daemon variant of `schedule_after`.
  EventId schedule_daemon_after(SimTime dt, Callback cb) {
    return schedule_daemon_at(now_ + (dt > 0 ? dt : 0), std::move(cb));
  }

  /// Daemon variant of `schedule_now`.
  EventId schedule_daemon_now(Callback cb) {
    return schedule_impl(now_, std::move(cb), /*daemon=*/true);
  }

  /// Cancel a pending event. Returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  /// Run a single event (daemon or not). Returns false if the queue is empty.
  bool step();

  /// Run until no regular (non-daemon) events remain; returns the number of
  /// events dispatched (daemons included).
  std::size_t run();

  /// Run events with time <= `t` (regular and daemon), then set the clock
  /// to `t`. Returns the number of events dispatched.
  std::size_t run_until(SimTime t);

  /// Run events with time strictly < `end` (regular and daemon) and stop.
  /// Unlike `run_until` the clock is left at the last dispatched event, not
  /// advanced to `end`. This is the per-window body of the sharded
  /// conservative-time-window protocol: a shard may safely execute
  /// everything below the window horizon because no cross-shard event can
  /// land earlier than the horizon.
  std::size_t run_window(SimTime end);

  /// Timestamp of the earliest pending event (daemons included), or
  /// +infinity when the queue is empty. May rotate calendar windows to find
  /// the front, but never dispatches and never advances the clock.
  SimTime next_event_time();

  /// Restore a checkpointed clock onto an idle simulator: sets `now()` and
  /// the dispatched total so a rebuilt model resumes at its snapshot time.
  /// Only legal while no events are pending (a fresh core, or one that has
  /// fully drained) and the clock does not move backwards; the calendar
  /// re-anchors itself on the restored time at its next build. The sequence
  /// counter is deliberately left alone: FIFO tie-breaking depends only on
  /// the *relative* order of schedule calls, which a deterministic replay
  /// reproduces.
  void restore_clock(SimTime t, std::uint64_t dispatched);

  /// Number of pending (non-cancelled) events, daemons included.
  std::size_t pending() const noexcept { return pending_; }

  /// Number of pending regular (non-daemon) events.
  std::size_t pending_regular() const noexcept { return regular_pending_; }

  /// Total events dispatched so far.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One event record. A slot is owned by exactly one queue entry (bucket
  /// chain link, near-heap handle, or ring handle) from schedule until that
  /// entry surfaces, so cancellation only tombstones it here and the
  /// surfacing code recycles it. Exactly one cache line: the chain link is
  /// written while the line is already open for the callback store, so
  /// scheduling into a bucket costs no extra fill.
  struct alignas(64) Slot {
    Callback cb;
    SimTime t = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;  ///< intrusive bucket-chain link
    std::uint32_t gen = 0;      ///< stale-EventId guard; bumped on recycle
    bool daemon = false;
    bool timed = false;      ///< calendar/near (vs ring)
    bool tombstone = false;  ///< cancelled; recycle on surface
  };
  /// Near-heap handle: plain data, cheap to sift.
  struct TimedEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  EventId schedule_impl(SimTime t, Callback cb, bool daemon);
  /// Dispatch the earliest event. `bounded` restricts dispatch to events at
  /// or below `limit`; `strict` tightens that to strictly below.
  bool dispatch_next(SimTime limit, bool bounded, bool strict = false);

  std::uint32_t alloc_slot(Callback cb, bool daemon);
  void free_slot(std::uint32_t slot) {
    ++slots_[slot].gen;
    slots_[slot].tombstone = false;
    free_.push_back(slot);
  }

  static bool entry_later(const TimedEntry& a, const TimedEntry& b) noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;  // FIFO among equal timestamps
  }
  void near_push(TimedEntry e);
  void near_pop();

  // Calendar stage.
  std::size_t bucket_of(SimTime t) const noexcept {
    return static_cast<std::size_t>(t / bucket_width_) & (buckets_.size() - 1);
  }
  void calendar_insert(std::uint32_t slot);
  /// Move the window forward until the near heap holds a live event (or no
  /// timed events remain). Never touches `now_`.
  void open_windows();
  /// Resize/re-anchor the calendar for the current live population/spread.
  void rebuild_calendar();

  struct RingEntry {
    std::uint64_t seq;
    std::uint32_t slot;
  };
  void ring_push(RingEntry e);
  void ring_pop() noexcept {
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --ring_size_;
  }
  /// Recycle cancelled entries until both queue fronts are live.
  void skim_tombstones();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t pending_ = 0;
  std::size_t regular_pending_ = 0;
  std::size_t timed_live_ = 0;  ///< live events in near heap + calendar

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;

  // Near stage: binary min-heap on (t, seq) for events with t < win_end_.
  // May hold tombstoned handles; `skim_tombstones` recycles them at the top.
  std::vector<TimedEntry> near_;
  // Calendar stage: chain heads, one per bucket of width bucket_width_; an
  // event at t chains into bucket (t / width) mod nbuckets, so far-future
  // "years" share buckets with the current rotation and are filtered out by
  // time when a window opens. Empty until the first calendar build.
  std::vector<std::uint32_t> buckets_;
  double bucket_width_ = 1.0;
  std::uint64_t cur_window_ = 0;  ///< absolute index of the open window
  SimTime win_end_ = 0.0;         ///< exclusive end of the open window

  // Power-of-two circular buffer of same-instant events.
  std::vector<RingEntry> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
};

}  // namespace lifl::sim
