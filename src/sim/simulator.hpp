#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/time.hpp"

namespace lifl::sim {

/// Discrete-event simulator: a virtual clock plus an event queue.
///
/// Events scheduled for the same instant run in scheduling order (FIFO
/// tie-breaking on a monotonically increasing sequence number), which makes
/// runs fully deterministic. Callbacks may schedule or cancel further events,
/// including at the current instant.
///
/// *Daemon* events model background periodic work (metrics polling,
/// samplers): they execute normally while regular events exist, but do not
/// by themselves keep `run()` alive — exactly like daemon threads.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (seconds).
  SimTime now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `t` (clamped to `now()` if in the past).
  EventId schedule_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*daemon=*/false);
  }

  /// Schedule `cb` after a relative delay `dt >= 0`.
  EventId schedule_after(SimTime dt, Callback cb) {
    return schedule_at(now_ + (dt > 0 ? dt : 0), std::move(cb));
  }

  /// Schedule a daemon event: runs like a normal event but does not keep
  /// `run()` going once all regular events have drained.
  EventId schedule_daemon_at(SimTime t, Callback cb) {
    return schedule_impl(t, std::move(cb), /*daemon=*/true);
  }

  /// Daemon variant of `schedule_after`.
  EventId schedule_daemon_after(SimTime dt, Callback cb) {
    return schedule_daemon_at(now_ + (dt > 0 ? dt : 0), std::move(cb));
  }

  /// Cancel a pending event. Returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  /// Run a single event (daemon or not). Returns false if the queue is empty.
  bool step();

  /// Run until no regular (non-daemon) events remain; returns the number of
  /// events dispatched (daemons included).
  std::size_t run();

  /// Run events with time <= `t` (regular and daemon), then set the clock
  /// to `t`. Returns the number of events dispatched.
  std::size_t run_until(SimTime t);

  /// Number of pending (non-cancelled) events, daemons included.
  std::size_t pending() const noexcept { return callbacks_.size(); }

  /// Number of pending regular (non-daemon) events.
  std::size_t pending_regular() const noexcept { return regular_pending_; }

  /// Total events dispatched so far.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Entry {
    SimTime t;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };
  struct Pending {
    Callback cb;
    bool daemon = false;
  };

  EventId schedule_impl(SimTime t, Callback cb, bool daemon);
  bool dispatch_next(SimTime limit, bool bounded);

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t regular_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Pending> callbacks_;
};

}  // namespace lifl::sim
