#pragma once

#include <algorithm>
#include <cstdint>

#include "src/sim/random.hpp"

namespace lifl::sim {

/// Seeded, deterministic schedule of injectable faults.
///
/// A FaultPlan never holds mutable state: every decision — does this leaf
/// activation crash, and after how many folds? is this upload attempt
/// dropped or corrupted? is the node in an outage window? — is a pure
/// function of the plan seed and the *group-local* identifiers of the
/// decision point (group, round, activation sequence, upload sequence,
/// attempt number). Each draw seeds a fresh `Rng` from a SplitMix-style
/// hash of those identifiers, so
///  - K-shard runs stay bitwise equal under a fixed plan (every input to a
///    draw is group-local and shard-count invariant), and
///  - checkpoint replay re-derives the identical fault schedule with
///    nothing to serialize (the counters that key the draws are themselves
///    rebuilt by the deterministic replay).
///
/// Rates are probabilities per decision point, not global fractions: a
/// `leaf_crash_rate` of 0.1 crashes ~10% of leaf activations, each at a
/// uniformly drawn fold index inside its batch ("mid-fold").
class FaultPlan {
 public:
  struct Config {
    std::uint64_t seed = 1u;

    // ---- aggregator runtime crashes (mid-fold) -------------------------
    /// Probability a leaf activation crashes, after a uniform k-th fold of
    /// its batch (k in [1, batch] — k == batch is the crash landing between
    /// the buffer filling and the Send).
    double leaf_crash_rate = 0.0;
    /// Probability a middle aggregator crashes after a uniform k-th folded
    /// leaf partial (k in [1, fanin]).
    double middle_crash_rate = 0.0;
    /// Probability the round's top aggregator crashes, after a uniform
    /// fraction of its folded-update goal (synchronous planned mode).
    double top_crash_rate = 0.0;

    // ---- client upload faults ------------------------------------------
    /// Probability an upload attempt is lost on the wire (retried with
    /// backoff).
    double upload_drop_rate = 0.0;
    /// Probability an upload attempt arrives bit-flipped: the corrupted
    /// copy is delivered (and discarded by the consumer's integrity check),
    /// and the client retransmits with backoff.
    double upload_corrupt_rate = 0.0;

    // ---- node outages ---------------------------------------------------
    /// Probability a group suffers one gateway outage window per round.
    double outage_rate = 0.0;
    /// Outage duration in simulated seconds.
    double outage_secs = 5.0;
    /// Outage start, uniform in [0, outage_start_max_secs) after the round
    /// epoch.
    double outage_start_max_secs = 30.0;

    // ---- gateway overflow -----------------------------------------------
    /// Admission limit on the gateway ingest queue: an upload arriving
    /// while this many requests are already queued is rejected (and
    /// retried with backoff). 0 = unbounded.
    std::size_t gateway_overflow_depth = 0;

    // ---- retry/backoff (client side) ------------------------------------
    double retry_base_secs = 0.5;   ///< first retry delay
    double retry_cap_secs = 16.0;   ///< exponential backoff cap
    double retry_jitter = 0.25;     ///< uniform jitter fraction on top

    bool enabled() const noexcept {
      return leaf_crash_rate > 0.0 || middle_crash_rate > 0.0 ||
             top_crash_rate > 0.0 || upload_drop_rate > 0.0 ||
             upload_corrupt_rate > 0.0 || outage_rate > 0.0 ||
             gateway_overflow_depth > 0;
    }
  };

  FaultPlan() = default;
  explicit FaultPlan(Config cfg) : cfg_(cfg) {}

  const Config& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled(); }

  /// Crash point of a leaf activation: 0 = no crash, else the fold index
  /// k in [1, batch] after which the runtime dies. `seq` is the group's
  /// round-local activation counter (rebuilt identically on replay).
  std::uint32_t leaf_crash_point(std::uint64_t group, std::uint64_t round,
                                 std::uint64_t seq,
                                 std::uint64_t batch) const noexcept {
    if (cfg_.leaf_crash_rate <= 0.0 || batch == 0) return 0;
    Rng r(key(0x1eafull, group, round, seq));
    if (r.uniform() >= cfg_.leaf_crash_rate) return 0;
    return static_cast<std::uint32_t>(1 + r.uniform_index(batch));
  }

  /// Crash point of a middle aggregator arming: 0 = no crash, else the
  /// number of folded leaf partials after which it dies.
  std::uint32_t middle_crash_point(std::uint64_t group, std::uint64_t round,
                                   std::uint64_t seq,
                                   std::uint64_t fanin) const noexcept {
    if (cfg_.middle_crash_rate <= 0.0 || fanin == 0) return 0;
    Rng r(key(0x31dd1eull, group, round, seq));
    if (r.uniform() >= cfg_.middle_crash_rate) return 0;
    return static_cast<std::uint32_t>(1 + r.uniform_index(fanin));
  }

  /// Crash point of the round's top aggregator: 0 = no crash, else the
  /// number of folded messages after which it dies (goal counts folded
  /// client updates; the draw is over received messages so it lands
  /// mid-round for any tree shape).
  std::uint32_t top_crash_point(std::uint64_t round,
                                std::uint64_t messages) const noexcept {
    if (cfg_.top_crash_rate <= 0.0 || messages == 0) return 0;
    Rng r(key(0x70ffull, 0, round, 0));
    if (r.uniform() >= cfg_.top_crash_rate) return 0;
    return static_cast<std::uint32_t>(1 + r.uniform_index(messages));
  }

  /// Is upload attempt `attempt` of group-local client sequence `seq`
  /// dropped on the wire?
  bool upload_dropped(std::uint64_t group, std::uint64_t seq,
                      std::uint64_t attempt) const noexcept {
    if (cfg_.upload_drop_rate <= 0.0) return false;
    Rng r(key(0xd209ull, group, seq, attempt));
    return r.uniform() < cfg_.upload_drop_rate;
  }

  /// Does upload attempt `attempt` of sequence `seq` arrive corrupted?
  bool upload_corrupted(std::uint64_t group, std::uint64_t seq,
                        std::uint64_t attempt) const noexcept {
    if (cfg_.upload_corrupt_rate <= 0.0) return false;
    Rng r(key(0xc024ull, group, seq, attempt));
    return r.uniform() < cfg_.upload_corrupt_rate;
  }

  /// The group's outage window for a round, as offsets from the round
  /// epoch; returns false when the round has no outage. `t` in
  /// [epoch+begin, epoch+end) rejects uploads.
  bool outage_window(std::uint64_t group, std::uint64_t round, double* begin,
                     double* end) const noexcept {
    if (cfg_.outage_rate <= 0.0 || cfg_.outage_secs <= 0.0) return false;
    Rng r(key(0x07a6eull, group, round, 0));
    if (r.uniform() >= cfg_.outage_rate) return false;
    *begin = r.uniform() * cfg_.outage_start_max_secs;
    *end = *begin + cfg_.outage_secs;
    return true;
  }

  /// Capped exponential backoff with deterministic per-client jitter:
  /// min(base * 2^attempt, cap) * (1 + jitter * u), u from the client's
  /// own hash stream — retries de-synchronize instead of thundering.
  double backoff_secs(std::uint64_t group, std::uint64_t seq,
                      std::uint64_t attempt) const noexcept {
    const double exp =
        cfg_.retry_base_secs *
        static_cast<double>(1ull << std::min<std::uint64_t>(attempt, 32));
    double d = std::min(exp, cfg_.retry_cap_secs);
    if (cfg_.retry_jitter > 0.0) {
      Rng r(key(0xbac0ffull, group, seq, attempt));
      d *= 1.0 + cfg_.retry_jitter * r.uniform();
    }
    return d;
  }

 private:
  /// SplitMix64-style key mix: seed + tagged identifiers -> Rng seed.
  std::uint64_t key(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) const noexcept {
    std::uint64_t x = cfg_.seed;
    for (std::uint64_t v : {tag, a, b, c}) {
      x ^= v + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 29;
    }
    return x;
  }

  Config cfg_;
};

}  // namespace lifl::sim
