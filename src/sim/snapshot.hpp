#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/random.hpp"

namespace lifl::sim {

/// Error raised by snapshot readers on any malformed blob: truncation,
/// magic/version mismatch, or a section tag that does not match the
/// expected layout. Deliberately a distinct type so callers can tell a
/// corrupt checkpoint apart from ordinary logic errors and refuse to
/// resume instead of crashing into undefined behavior.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only binary writer for checkpoint blobs.
///
/// The format is host-endian and host-width (a snapshot is a crash-restart
/// artifact for the machine that wrote it, not an interchange format):
/// integers are fixed-width little-endian-as-stored, doubles are raw IEEE
/// bit patterns (so NaN payloads, signed zeros and denormals round-trip
/// bit-exactly), strings and vectors are length-prefixed, and every
/// `begin_section`/`end_section` pair wraps its payload in a
/// {u32 tag, u64 byte length} frame the reader validates before touching
/// the contents.
class Serializer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  /// Raw IEEE-754 bits: round-trips every value bit-exactly, NaNs included.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  /// Length-prefixed vector of a trivially copyable element type.
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable<T>::value,
                  "pod_vec needs a trivially copyable element");
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

  void raw(const void* data, std::size_t n) {
    if (n == 0) return;  // empty payloads may carry a null pointer
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Open a {tag, length} framed section; the length field is patched when
  /// the matching `end_section` runs. Sections may nest.
  void begin_section(std::uint32_t tag) {
    u32(tag);
    open_.push_back(buf_.size());
    u64(0);  // placeholder length
  }

  void end_section() {
    const std::size_t at = open_.back();
    open_.pop_back();
    const std::uint64_t len = buf_.size() - (at + sizeof(std::uint64_t));
    std::memcpy(buf_.data() + at, &len, sizeof len);
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;
};

/// Bounds-checked reader for blobs produced by `Serializer`. Every read
/// verifies the remaining byte count first and throws `SnapshotError` on a
/// short blob, so a truncated or bit-rotted checkpoint is rejected with a
/// clear message instead of reading past the buffer.
class Deserializer {
 public:
  Deserializer(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Deserializer(const std::vector<std::uint8_t>& buf)
      : Deserializer(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[at_++];
  }
  bool boolean() { return u8() != 0; }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + at_),
                  static_cast<std::size_t>(n));
    at_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
  std::vector<T> pod_vec() {
    static_assert(std::is_trivially_copyable<T>::value,
                  "pod_vec needs a trivially copyable element");
    const std::uint64_t n = u64();
    // Guard the multiplication: a corrupt count must not wrap to a small
    // byte total and pass the bounds check (or drive a huge allocation).
    if (n > remaining() / sizeof(T)) {
      throw SnapshotError("snapshot truncated: vector count " +
                          std::to_string(n) + " exceeds remaining bytes");
    }
    const std::uint64_t bytes = n * sizeof(T);
    need(bytes);
    std::vector<T> v(static_cast<std::size_t>(n));
    raw(v.data(), static_cast<std::size_t>(bytes));
    return v;
  }

  void raw(void* out, std::size_t n) {
    if (n == 0) return;  // empty payloads may carry a null pointer
    need(n);
    std::memcpy(out, data_ + at_, n);
    at_ += n;
  }

  /// Read a section frame and verify the tag; the recorded length must fit
  /// in the remaining bytes. `end_section` then checks the payload was
  /// consumed exactly — a reader/writer layout drift surfaces as a
  /// SnapshotError at the first mismatched section, not as garbage reads.
  void expect_section(std::uint32_t tag) {
    const std::uint32_t got = u32();
    if (got != tag) {
      throw SnapshotError("snapshot section mismatch: expected tag " +
                          std::to_string(tag) + ", found " +
                          std::to_string(got));
    }
    const std::uint64_t len = u64();
    need(len);
    ends_.push_back(at_ + static_cast<std::size_t>(len));
  }

  void end_section() {
    const std::size_t end = ends_.back();
    ends_.pop_back();
    if (at_ != end) {
      throw SnapshotError(
          "snapshot section length mismatch: " +
          std::to_string(end > at_ ? end - at_ : at_ - end) + " byte(s) " +
          (end > at_ ? "unread" : "over-read"));
    }
  }

  std::size_t remaining() const noexcept { return size_ - at_; }
  bool at_end() const noexcept { return at_ == size_; }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - at_) {
      throw SnapshotError("snapshot truncated: need " + std::to_string(n) +
                          " byte(s) at offset " + std::to_string(at_) +
                          ", " + std::to_string(size_ - at_) + " remain");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
  std::vector<std::size_t> ends_;
};

// ------------------------------------------------------ typed serializers

/// RNG stream state: the full xoshiro state plus the cached Box-Muller
/// spare — the single definition of the serialized layout, so a future
/// field lands in exactly one place.
inline void save(Serializer& s, const Rng::State& st) {
  for (const std::uint64_t w : st.s) s.u64(w);
  s.f64(st.spare);
  s.boolean(st.has_spare);
}

inline Rng::State load_rng_state(Deserializer& d) {
  Rng::State st;
  for (std::uint64_t& w : st.s) w = d.u64();
  st.spare = d.f64();
  st.has_spare = d.boolean();
  return st;
}

/// A restored generator continues the stream bit-exactly.
inline void save(Serializer& s, const Rng& rng) { save(s, rng.state()); }

inline void load(Deserializer& d, Rng& rng) {
  rng.restore(load_rng_state(d));
}

}  // namespace lifl::sim
