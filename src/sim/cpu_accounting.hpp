#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "src/sim/time.hpp"

namespace lifl::sim {

/// Who is burning CPU. Mirrors the component breakdown the paper reports
/// (e.g. the +SC / +MB shares of Fig. 7 and the per-round CPU of Fig. 10).
enum class CostTag : std::uint8_t {
  kAggregator,        ///< aggregation compute (FedAvg arithmetic)
  kGateway,           ///< per-node gateway payload processing
  kKernelNet,         ///< kernel TCP/IP stack work (copies, protocol)
  kSerialization,     ///< (de)serialization / tensor conversion
  kSidecarContainer,  ///< container-based sidecar interception (SL baseline)
  kSidecarEbpf,       ///< eBPF SKMSG sidecar (LIFL), event-driven
  kBroker,            ///< message broker processing (SL baseline)
  kStartup,           ///< function cold-start / runtime initialization
  kTraining,          ///< client-side local training (not billed to service)
  kEvaluation,        ///< global-model evaluation task
  kControlPlane,      ///< placement / autoscaling / coordinator work
  kCheckpoint,        ///< async model checkpointing
  kIdleReservation,   ///< always-on reservation of serverful components
  kCount
};

/// Human-readable tag name.
std::string_view to_string(CostTag tag) noexcept;

/// Per-node CPU ledger, in cycles, broken down by `CostTag`.
///
/// The ledger records *cycles*; convert with `seconds(hz)` for CPU-time
/// figures. It deliberately has no notion of wall time: contention and
/// queueing are modeled by `Resource`, while this class answers "how much
/// work was done and by whom" (cost-to-accuracy, Fig. 9(b)/(d)).
class CpuAccountant {
 public:
  /// Bill `cycles` of work to `tag`.
  void add(CostTag tag, double cycles) noexcept {
    cycles_[static_cast<std::size_t>(tag)] += cycles;
    total_ += cycles;
  }

  /// Cycles billed to one tag.
  double cycles(CostTag tag) const noexcept {
    return cycles_[static_cast<std::size_t>(tag)];
  }

  /// Total cycles billed.
  double total_cycles() const noexcept { return total_; }

  /// Total CPU-seconds at the given clock rate.
  double total_seconds(double hz) const noexcept { return total_ / hz; }

  /// CPU-seconds for one tag at the given clock rate.
  double seconds(CostTag tag, double hz) const noexcept {
    return cycles(tag) / hz;
  }

  /// Merge another ledger into this one (cluster-wide totals).
  void merge(const CpuAccountant& other) noexcept {
    for (std::size_t i = 0; i < cycles_.size(); ++i) {
      cycles_[i] += other.cycles_[i];
    }
    total_ += other.total_;
  }

  /// Reset all counters to zero.
  void reset() noexcept {
    cycles_.fill(0.0);
    total_ = 0.0;
  }

  /// Restore a checkpointed ledger bit-exactly. The running total is a
  /// floating-point sum whose value depends on the order of `add` calls, so
  /// it is restored verbatim rather than recomputed from the per-tag array.
  void restore(
      const std::array<double, static_cast<std::size_t>(CostTag::kCount)>&
          cycles,
      double total) noexcept {
    cycles_ = cycles;
    total_ = total;
  }

 private:
  std::array<double, static_cast<std::size_t>(CostTag::kCount)> cycles_{};
  double total_ = 0.0;
};

}  // namespace lifl::sim
